# Empty dependencies file for example_xml_search.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/example_xml_search.dir/xml_search.cc.o"
  "CMakeFiles/example_xml_search.dir/xml_search.cc.o.d"
  "example_xml_search"
  "example_xml_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_xml_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/example_dblp_explorer.dir/dblp_explorer.cc.o"
  "CMakeFiles/example_dblp_explorer.dir/dblp_explorer.cc.o.d"
  "example_dblp_explorer"
  "example_dblp_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_dblp_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for example_dblp_explorer.
# This may be replaced when dependencies are built.

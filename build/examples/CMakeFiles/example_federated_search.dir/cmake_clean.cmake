file(REMOVE_RECURSE
  "CMakeFiles/example_federated_search.dir/federated_search.cc.o"
  "CMakeFiles/example_federated_search.dir/federated_search.cc.o.d"
  "example_federated_search"
  "example_federated_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_federated_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

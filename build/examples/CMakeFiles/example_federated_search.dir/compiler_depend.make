# Empty compiler generated dependencies file for example_federated_search.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/example_shop_exploration.dir/shop_exploration.cc.o"
  "CMakeFiles/example_shop_exploration.dir/shop_exploration.cc.o.d"
  "example_shop_exploration"
  "example_shop_exploration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_shop_exploration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for example_shop_exploration.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/infer_forms_test.dir/infer_forms_test.cc.o"
  "CMakeFiles/infer_forms_test.dir/infer_forms_test.cc.o.d"
  "infer_forms_test"
  "infer_forms_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/infer_forms_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

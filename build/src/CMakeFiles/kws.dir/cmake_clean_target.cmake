file(REMOVE_RECURSE
  "libkws.a"
)

# Empty dependencies file for kws.
# This may be replaced when dependencies are built.

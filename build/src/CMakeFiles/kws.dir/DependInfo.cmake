
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/random.cc" "src/CMakeFiles/kws.dir/common/random.cc.o" "gcc" "src/CMakeFiles/kws.dir/common/random.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/kws.dir/common/status.cc.o" "gcc" "src/CMakeFiles/kws.dir/common/status.cc.o.d"
  "/root/repo/src/common/strings.cc" "src/CMakeFiles/kws.dir/common/strings.cc.o" "gcc" "src/CMakeFiles/kws.dir/common/strings.cc.o.d"
  "/root/repo/src/core/analyze/aggregate.cc" "src/CMakeFiles/kws.dir/core/analyze/aggregate.cc.o" "gcc" "src/CMakeFiles/kws.dir/core/analyze/aggregate.cc.o.d"
  "/root/repo/src/core/analyze/clustering.cc" "src/CMakeFiles/kws.dir/core/analyze/clustering.cc.o" "gcc" "src/CMakeFiles/kws.dir/core/analyze/clustering.cc.o.d"
  "/root/repo/src/core/analyze/differentiation.cc" "src/CMakeFiles/kws.dir/core/analyze/differentiation.cc.o" "gcc" "src/CMakeFiles/kws.dir/core/analyze/differentiation.cc.o.d"
  "/root/repo/src/core/analyze/ranking.cc" "src/CMakeFiles/kws.dir/core/analyze/ranking.cc.o" "gcc" "src/CMakeFiles/kws.dir/core/analyze/ranking.cc.o.d"
  "/root/repo/src/core/analyze/snippet.cc" "src/CMakeFiles/kws.dir/core/analyze/snippet.cc.o" "gcc" "src/CMakeFiles/kws.dir/core/analyze/snippet.cc.o.d"
  "/root/repo/src/core/clean/cleaner.cc" "src/CMakeFiles/kws.dir/core/clean/cleaner.cc.o" "gcc" "src/CMakeFiles/kws.dir/core/clean/cleaner.cc.o.d"
  "/root/repo/src/core/cn/candidate_network.cc" "src/CMakeFiles/kws.dir/core/cn/candidate_network.cc.o" "gcc" "src/CMakeFiles/kws.dir/core/cn/candidate_network.cc.o.d"
  "/root/repo/src/core/cn/execute.cc" "src/CMakeFiles/kws.dir/core/cn/execute.cc.o" "gcc" "src/CMakeFiles/kws.dir/core/cn/execute.cc.o.d"
  "/root/repo/src/core/cn/search.cc" "src/CMakeFiles/kws.dir/core/cn/search.cc.o" "gcc" "src/CMakeFiles/kws.dir/core/cn/search.cc.o.d"
  "/root/repo/src/core/cn/semijoin.cc" "src/CMakeFiles/kws.dir/core/cn/semijoin.cc.o" "gcc" "src/CMakeFiles/kws.dir/core/cn/semijoin.cc.o.d"
  "/root/repo/src/core/cn/sharing.cc" "src/CMakeFiles/kws.dir/core/cn/sharing.cc.o" "gcc" "src/CMakeFiles/kws.dir/core/cn/sharing.cc.o.d"
  "/root/repo/src/core/cn/spark.cc" "src/CMakeFiles/kws.dir/core/cn/spark.cc.o" "gcc" "src/CMakeFiles/kws.dir/core/cn/spark.cc.o.d"
  "/root/repo/src/core/cn/stream.cc" "src/CMakeFiles/kws.dir/core/cn/stream.cc.o" "gcc" "src/CMakeFiles/kws.dir/core/cn/stream.cc.o.d"
  "/root/repo/src/core/cn/tuple_sets.cc" "src/CMakeFiles/kws.dir/core/cn/tuple_sets.cc.o" "gcc" "src/CMakeFiles/kws.dir/core/cn/tuple_sets.cc.o.d"
  "/root/repo/src/core/complete/tastier.cc" "src/CMakeFiles/kws.dir/core/complete/tastier.cc.o" "gcc" "src/CMakeFiles/kws.dir/core/complete/tastier.cc.o.d"
  "/root/repo/src/core/engine/engine.cc" "src/CMakeFiles/kws.dir/core/engine/engine.cc.o" "gcc" "src/CMakeFiles/kws.dir/core/engine/engine.cc.o.d"
  "/root/repo/src/core/engine/xml_engine.cc" "src/CMakeFiles/kws.dir/core/engine/xml_engine.cc.o" "gcc" "src/CMakeFiles/kws.dir/core/engine/xml_engine.cc.o.d"
  "/root/repo/src/core/eval/axioms.cc" "src/CMakeFiles/kws.dir/core/eval/axioms.cc.o" "gcc" "src/CMakeFiles/kws.dir/core/eval/axioms.cc.o.d"
  "/root/repo/src/core/eval/metrics.cc" "src/CMakeFiles/kws.dir/core/eval/metrics.cc.o" "gcc" "src/CMakeFiles/kws.dir/core/eval/metrics.cc.o.d"
  "/root/repo/src/core/forms/forms.cc" "src/CMakeFiles/kws.dir/core/forms/forms.cc.o" "gcc" "src/CMakeFiles/kws.dir/core/forms/forms.cc.o.d"
  "/root/repo/src/core/infer/correlation.cc" "src/CMakeFiles/kws.dir/core/infer/correlation.cc.o" "gcc" "src/CMakeFiles/kws.dir/core/infer/correlation.cc.o.d"
  "/root/repo/src/core/infer/iqp.cc" "src/CMakeFiles/kws.dir/core/infer/iqp.cc.o" "gcc" "src/CMakeFiles/kws.dir/core/infer/iqp.cc.o.d"
  "/root/repo/src/core/infer/precis.cc" "src/CMakeFiles/kws.dir/core/infer/precis.cc.o" "gcc" "src/CMakeFiles/kws.dir/core/infer/precis.cc.o.d"
  "/root/repo/src/core/infer/xpath_gen.cc" "src/CMakeFiles/kws.dir/core/infer/xpath_gen.cc.o" "gcc" "src/CMakeFiles/kws.dir/core/infer/xpath_gen.cc.o.d"
  "/root/repo/src/core/lca/interconnection.cc" "src/CMakeFiles/kws.dir/core/lca/interconnection.cc.o" "gcc" "src/CMakeFiles/kws.dir/core/lca/interconnection.cc.o.d"
  "/root/repo/src/core/lca/slca.cc" "src/CMakeFiles/kws.dir/core/lca/slca.cc.o" "gcc" "src/CMakeFiles/kws.dir/core/lca/slca.cc.o.d"
  "/root/repo/src/core/lca/xrank.cc" "src/CMakeFiles/kws.dir/core/lca/xrank.cc.o" "gcc" "src/CMakeFiles/kws.dir/core/lca/xrank.cc.o.d"
  "/root/repo/src/core/lca/xreal.cc" "src/CMakeFiles/kws.dir/core/lca/xreal.cc.o" "gcc" "src/CMakeFiles/kws.dir/core/lca/xreal.cc.o.d"
  "/root/repo/src/core/lca/xseek.cc" "src/CMakeFiles/kws.dir/core/lca/xseek.cc.o" "gcc" "src/CMakeFiles/kws.dir/core/lca/xseek.cc.o.d"
  "/root/repo/src/core/refine/cluster_expand.cc" "src/CMakeFiles/kws.dir/core/refine/cluster_expand.cc.o" "gcc" "src/CMakeFiles/kws.dir/core/refine/cluster_expand.cc.o.d"
  "/root/repo/src/core/refine/data_clouds.cc" "src/CMakeFiles/kws.dir/core/refine/data_clouds.cc.o" "gcc" "src/CMakeFiles/kws.dir/core/refine/data_clouds.cc.o.d"
  "/root/repo/src/core/refine/facets.cc" "src/CMakeFiles/kws.dir/core/refine/facets.cc.o" "gcc" "src/CMakeFiles/kws.dir/core/refine/facets.cc.o.d"
  "/root/repo/src/core/rewrite/keyword_pp.cc" "src/CMakeFiles/kws.dir/core/rewrite/keyword_pp.cc.o" "gcc" "src/CMakeFiles/kws.dir/core/rewrite/keyword_pp.cc.o.d"
  "/root/repo/src/core/rewrite/related_queries.cc" "src/CMakeFiles/kws.dir/core/rewrite/related_queries.cc.o" "gcc" "src/CMakeFiles/kws.dir/core/rewrite/related_queries.cc.o.d"
  "/root/repo/src/core/select/db_selection.cc" "src/CMakeFiles/kws.dir/core/select/db_selection.cc.o" "gcc" "src/CMakeFiles/kws.dir/core/select/db_selection.cc.o.d"
  "/root/repo/src/core/steiner/answer_tree.cc" "src/CMakeFiles/kws.dir/core/steiner/answer_tree.cc.o" "gcc" "src/CMakeFiles/kws.dir/core/steiner/answer_tree.cc.o.d"
  "/root/repo/src/core/steiner/banks.cc" "src/CMakeFiles/kws.dir/core/steiner/banks.cc.o" "gcc" "src/CMakeFiles/kws.dir/core/steiner/banks.cc.o.d"
  "/root/repo/src/core/steiner/semantics.cc" "src/CMakeFiles/kws.dir/core/steiner/semantics.cc.o" "gcc" "src/CMakeFiles/kws.dir/core/steiner/semantics.cc.o.d"
  "/root/repo/src/core/steiner/steiner_dp.cc" "src/CMakeFiles/kws.dir/core/steiner/steiner_dp.cc.o" "gcc" "src/CMakeFiles/kws.dir/core/steiner/steiner_dp.cc.o.d"
  "/root/repo/src/graph/blinks_index.cc" "src/CMakeFiles/kws.dir/graph/blinks_index.cc.o" "gcc" "src/CMakeFiles/kws.dir/graph/blinks_index.cc.o.d"
  "/root/repo/src/graph/data_graph.cc" "src/CMakeFiles/kws.dir/graph/data_graph.cc.o" "gcc" "src/CMakeFiles/kws.dir/graph/data_graph.cc.o.d"
  "/root/repo/src/graph/hub_index.cc" "src/CMakeFiles/kws.dir/graph/hub_index.cc.o" "gcc" "src/CMakeFiles/kws.dir/graph/hub_index.cc.o.d"
  "/root/repo/src/graph/pagerank.cc" "src/CMakeFiles/kws.dir/graph/pagerank.cc.o" "gcc" "src/CMakeFiles/kws.dir/graph/pagerank.cc.o.d"
  "/root/repo/src/graph/shortest_path.cc" "src/CMakeFiles/kws.dir/graph/shortest_path.cc.o" "gcc" "src/CMakeFiles/kws.dir/graph/shortest_path.cc.o.d"
  "/root/repo/src/relational/database.cc" "src/CMakeFiles/kws.dir/relational/database.cc.o" "gcc" "src/CMakeFiles/kws.dir/relational/database.cc.o.d"
  "/root/repo/src/relational/dblp.cc" "src/CMakeFiles/kws.dir/relational/dblp.cc.o" "gcc" "src/CMakeFiles/kws.dir/relational/dblp.cc.o.d"
  "/root/repo/src/relational/query_log.cc" "src/CMakeFiles/kws.dir/relational/query_log.cc.o" "gcc" "src/CMakeFiles/kws.dir/relational/query_log.cc.o.d"
  "/root/repo/src/relational/shop.cc" "src/CMakeFiles/kws.dir/relational/shop.cc.o" "gcc" "src/CMakeFiles/kws.dir/relational/shop.cc.o.d"
  "/root/repo/src/relational/table.cc" "src/CMakeFiles/kws.dir/relational/table.cc.o" "gcc" "src/CMakeFiles/kws.dir/relational/table.cc.o.d"
  "/root/repo/src/relational/value.cc" "src/CMakeFiles/kws.dir/relational/value.cc.o" "gcc" "src/CMakeFiles/kws.dir/relational/value.cc.o.d"
  "/root/repo/src/text/edit_distance.cc" "src/CMakeFiles/kws.dir/text/edit_distance.cc.o" "gcc" "src/CMakeFiles/kws.dir/text/edit_distance.cc.o.d"
  "/root/repo/src/text/inverted_index.cc" "src/CMakeFiles/kws.dir/text/inverted_index.cc.o" "gcc" "src/CMakeFiles/kws.dir/text/inverted_index.cc.o.d"
  "/root/repo/src/text/tokenizer.cc" "src/CMakeFiles/kws.dir/text/tokenizer.cc.o" "gcc" "src/CMakeFiles/kws.dir/text/tokenizer.cc.o.d"
  "/root/repo/src/text/trie.cc" "src/CMakeFiles/kws.dir/text/trie.cc.o" "gcc" "src/CMakeFiles/kws.dir/text/trie.cc.o.d"
  "/root/repo/src/xml/bibgen.cc" "src/CMakeFiles/kws.dir/xml/bibgen.cc.o" "gcc" "src/CMakeFiles/kws.dir/xml/bibgen.cc.o.d"
  "/root/repo/src/xml/parser.cc" "src/CMakeFiles/kws.dir/xml/parser.cc.o" "gcc" "src/CMakeFiles/kws.dir/xml/parser.cc.o.d"
  "/root/repo/src/xml/stats.cc" "src/CMakeFiles/kws.dir/xml/stats.cc.o" "gcc" "src/CMakeFiles/kws.dir/xml/stats.cc.o.d"
  "/root/repo/src/xml/tree.cc" "src/CMakeFiles/kws.dir/xml/tree.cc.o" "gcc" "src/CMakeFiles/kws.dir/xml/tree.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

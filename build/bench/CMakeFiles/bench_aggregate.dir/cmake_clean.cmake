file(REMOVE_RECURSE
  "CMakeFiles/bench_aggregate.dir/bench_aggregate.cc.o"
  "CMakeFiles/bench_aggregate.dir/bench_aggregate.cc.o.d"
  "bench_aggregate"
  "bench_aggregate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_aggregate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_graph_search.dir/bench_graph_search.cc.o"
  "CMakeFiles/bench_graph_search.dir/bench_graph_search.cc.o.d"
  "bench_graph_search"
  "bench_graph_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_graph_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

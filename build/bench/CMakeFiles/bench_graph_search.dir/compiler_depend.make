# Empty compiler generated dependencies file for bench_graph_search.
# This may be replaced when dependencies are built.

# Empty dependencies file for bench_cleaning.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_spark.dir/bench_spark.cc.o"
  "CMakeFiles/bench_spark.dir/bench_spark.cc.o.d"
  "bench_spark"
  "bench_spark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_spark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

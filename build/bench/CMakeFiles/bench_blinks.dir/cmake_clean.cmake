file(REMOVE_RECURSE
  "CMakeFiles/bench_blinks.dir/bench_blinks.cc.o"
  "CMakeFiles/bench_blinks.dir/bench_blinks.cc.o.d"
  "bench_blinks"
  "bench_blinks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_blinks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

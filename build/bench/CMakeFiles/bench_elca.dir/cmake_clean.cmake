file(REMOVE_RECURSE
  "CMakeFiles/bench_elca.dir/bench_elca.cc.o"
  "CMakeFiles/bench_elca.dir/bench_elca.cc.o.d"
  "bench_elca"
  "bench_elca.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_elca.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

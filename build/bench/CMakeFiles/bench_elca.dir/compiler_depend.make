# Empty compiler generated dependencies file for bench_elca.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_facets.dir/bench_facets.cc.o"
  "CMakeFiles/bench_facets.dir/bench_facets.cc.o.d"
  "bench_facets"
  "bench_facets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_facets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_facets.
# This may be replaced when dependencies are built.

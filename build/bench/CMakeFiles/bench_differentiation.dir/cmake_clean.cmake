file(REMOVE_RECURSE
  "CMakeFiles/bench_differentiation.dir/bench_differentiation.cc.o"
  "CMakeFiles/bench_differentiation.dir/bench_differentiation.cc.o.d"
  "bench_differentiation"
  "bench_differentiation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_differentiation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_differentiation.
# This may be replaced when dependencies are built.

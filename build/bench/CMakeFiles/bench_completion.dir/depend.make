# Empty dependencies file for bench_completion.
# This may be replaced when dependencies are built.

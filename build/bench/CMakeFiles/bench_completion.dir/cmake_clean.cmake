file(REMOVE_RECURSE
  "CMakeFiles/bench_completion.dir/bench_completion.cc.o"
  "CMakeFiles/bench_completion.dir/bench_completion.cc.o.d"
  "bench_completion"
  "bench_completion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_completion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

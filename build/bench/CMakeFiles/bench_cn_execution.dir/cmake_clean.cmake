file(REMOVE_RECURSE
  "CMakeFiles/bench_cn_execution.dir/bench_cn_execution.cc.o"
  "CMakeFiles/bench_cn_execution.dir/bench_cn_execution.cc.o.d"
  "bench_cn_execution"
  "bench_cn_execution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cn_execution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

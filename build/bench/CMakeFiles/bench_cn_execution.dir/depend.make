# Empty dependencies file for bench_cn_execution.
# This may be replaced when dependencies are built.

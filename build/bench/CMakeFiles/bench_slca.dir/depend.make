# Empty dependencies file for bench_slca.
# This may be replaced when dependencies are built.

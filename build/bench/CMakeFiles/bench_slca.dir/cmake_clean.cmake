file(REMOVE_RECURSE
  "CMakeFiles/bench_slca.dir/bench_slca.cc.o"
  "CMakeFiles/bench_slca.dir/bench_slca.cc.o.d"
  "bench_slca"
  "bench_slca.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_slca.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

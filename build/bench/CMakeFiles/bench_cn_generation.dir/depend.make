# Empty dependencies file for bench_cn_generation.
# This may be replaced when dependencies are built.

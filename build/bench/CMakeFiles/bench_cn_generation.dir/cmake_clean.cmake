file(REMOVE_RECURSE
  "CMakeFiles/bench_cn_generation.dir/bench_cn_generation.cc.o"
  "CMakeFiles/bench_cn_generation.dir/bench_cn_generation.cc.o.d"
  "bench_cn_generation"
  "bench_cn_generation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cn_generation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

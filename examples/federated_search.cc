// federated_search: multi-database keyword search (tutorial slide 168,
// "database selection") — given several databases, rank the ones most
// likely to answer the query (keywords must not just occur, they must be
// joinably related), then run the full pipeline on the winner.
//
//   ./example_federated_search [query...]

#include <cstdio>
#include <string>

#include "core/engine/engine.h"
#include "core/select/db_selection.h"
#include "relational/dblp.h"
#include "relational/shop.h"

int main(int argc, char** argv) {
  // Three candidate databases: two bibliographic corpora of different
  // sizes and a product catalog.
  kws::relational::DblpOptions small_opts;
  small_opts.num_papers = 100;
  small_opts.num_authors = 50;
  small_opts.seed = 1;
  kws::relational::DblpDatabase small_dblp = MakeDblpDatabase(small_opts);
  kws::relational::DblpOptions big_opts;
  big_opts.num_papers = 600;
  big_opts.num_authors = 300;
  big_opts.seed = 2;
  kws::relational::DblpDatabase big_dblp = MakeDblpDatabase(big_opts);
  kws::relational::ShopDatabase shop =
      kws::relational::MakeShopDatabase({.seed = 3, .num_products = 400});

  kws::select::DatabaseSelector selector;
  selector.AddDatabase("dblp-small", small_dblp.db.get());
  selector.AddDatabase("dblp-large", big_dblp.db.get());
  selector.AddDatabase("products", shop.db.get());

  std::string query = "james keyword";
  if (argc > 1) {
    query.clear();
    for (int i = 1; i < argc; ++i) {
      if (i > 1) query += ' ';
      query += argv[i];
    }
  }
  std::printf("query: \"%s\"\n\ndatabase ranking:\n", query.c_str());
  auto ranked = selector.Rank(query);
  for (const auto& ds : ranked) {
    std::printf("  %-12s score=%6.2f covered=%zu joinable_pairs=%zu\n",
                ds.name.c_str(), ds.score, ds.keywords_covered,
                ds.joinable_pairs);
  }
  if (ranked.empty() || ranked[0].score <= 0) {
    std::printf("no database covers this query.\n");
    return 0;
  }

  // Route the query to the winner.
  const kws::relational::Database* winner =
      ranked[0].name == "dblp-small"   ? small_dblp.db.get()
      : ranked[0].name == "dblp-large" ? big_dblp.db.get()
                                       : shop.db.get();
  std::printf("\nrouting to %s:\n", ranked[0].name.c_str());
  kws::engine::KeywordSearchEngine engine(*winner);
  kws::engine::EngineOptions opts;
  opts.k = 5;
  for (const auto& r : engine.Search(query, opts).results) {
    std::printf("  [%.3f] %s\n", r.score, r.description.c_str());
  }
  return 0;
}

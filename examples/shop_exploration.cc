// shop_exploration: the exploration side of the tutorial on a product
// catalog — faceted navigation with a log-driven cost model, Keyword++
// keyword-to-predicate translation, aggregate keyword search over an
// events table (slide 16), and text-cube TopCells.
//
//   ./example_shop_exploration

#include <cstdio>
#include <string>
#include <vector>

#include "core/analyze/aggregate.h"
#include "core/refine/facets.h"
#include "core/rewrite/keyword_pp.h"
#include "core/rewrite/related_queries.h"
#include "relational/query_log.h"
#include "relational/shop.h"

namespace {

void PrintFacetTree(const kws::refine::FacetNode& node,
                    const kws::relational::TableSchema& schema, int depth) {
  if (node.condition.has_value()) {
    std::printf("%*s%s (%zu rows)\n", depth * 2, "",
                node.condition->ToString(schema).c_str(), node.rows.size());
  }
  size_t shown = 0;
  for (const auto& child : node.children) {
    if (++shown > 4) {
      std::printf("%*s...\n", (depth + 1) * 2, "");
      break;
    }
    PrintFacetTree(child, schema, depth + 1);
  }
}

}  // namespace

int main() {
  kws::relational::ShopDatabase shop =
      kws::relational::MakeShopDatabase({.seed = 3, .num_products = 800});
  kws::relational::QueryLog log = MakeQueryLog(
      *shop.db, shop.product, {.seed = 4, .num_queries = 500});

  // --- Keyword++: translate a vague query into structured SQL ---------
  kws::rewrite::KeywordPlusPlus kpp(*shop.db, shop.product, log);
  for (const std::string query : {"small ibm laptop", "cheap civic car"}) {
    kws::rewrite::TranslatedQuery tq = kpp.Translate(query);
    std::printf("keyword++  \"%s\"\n  -> %s\n", query.c_str(),
                tq.sql.c_str());
  }

  // --- Data-only rewriting: which brands are like honda? --------------
  std::printf("\nvalues related to brand 'honda' (data only):\n");
  for (const auto& [value, sim] : kws::rewrite::RelatedValues(
           *shop.db, shop.product, 2, kws::relational::Value::Text("honda"),
           3)) {
    std::printf("  %-10s %.3f\n", value.ToString().c_str(), sim);
  }

  // --- Faceted navigation over the "laptop" result set ----------------
  std::vector<kws::relational::RowId> laptops;
  const kws::relational::Table& product = shop.db->table(shop.product);
  for (kws::relational::RowId r = 0; r < product.num_rows(); ++r) {
    if (product.cell(r, 3).AsText() == "laptop") laptops.push_back(r);
  }
  kws::refine::FacetedNavigator nav(*shop.db, shop.product, log);
  kws::refine::FacetTreeOptions fopts;
  fopts.max_depth = 2;
  const kws::refine::FacetNode tree = nav.BuildGreedy(laptops, fopts);
  std::printf("\nfaceted navigation over %zu laptops (expected cost %.1f"
              " vs flat %zu):\n",
              laptops.size(), nav.ExpectedCost(tree), laptops.size());
  PrintFacetTree(tree, product.schema(), 0);

  // --- Aggregate keyword search on the events table (slide 16) --------
  kws::relational::ShopDatabase events =
      kws::relational::MakeEventsDatabase(7, 80);
  std::printf("\naggregate search {motorcycle, pool, american food} by"
              " (month, state):\n");
  for (const auto& g : kws::analyze::AggregateKeywordSearch(
           *events.db, events.product, {1, 2},
           {"motorcycle", "pool", "american", "food"})) {
    std::printf("  %s\n",
                g.ToString(*events.db, events.product, {1, 2}).c_str());
  }

  // --- Text-cube TopCells ----------------------------------------------
  std::printf("\ntop cells for \"powerful laptop\" over (brand, category):\n");
  for (const auto& cell : kws::analyze::TopCells(*shop.db, shop.product,
                                                 {2, 3}, "powerful laptop",
                                                 4, 5)) {
    std::printf("  %-36s support=%zu relevance=%.3f\n",
                cell.ToString(*shop.db, shop.product, {2, 3}).c_str(),
                cell.support, cell.avg_relevance);
  }
  return 0;
}

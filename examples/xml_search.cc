// xml_search: the XML side of the tutorial — SLCA/ELCA keyword search,
// XSeek return-node inference, XReal return-type inference, query-biased
// snippets, and result clustering by context and by keyword role.
//
//   ./example_xml_search [keyword keyword...]

#include <cstdio>
#include <string>
#include <vector>

#include "core/analyze/clustering.h"
#include "core/analyze/snippet.h"
#include "core/lca/slca.h"
#include "core/lca/xreal.h"
#include "core/lca/xseek.h"
#include "core/infer/xpath_gen.h"
#include "xml/bibgen.h"
#include "xml/stats.h"

int main(int argc, char** argv) {
  kws::xml::BibDocument doc = kws::xml::MakeBibDocument(
      {.seed = 9, .num_venues = 9, .papers_per_venue = 8});
  const kws::xml::XmlTree& tree = doc.tree;
  std::printf("document: %zu elements\n", tree.size());

  std::vector<std::string> query;
  for (int i = 1; i < argc; ++i) query.push_back(argv[i]);
  if (query.empty()) query = {doc.vocabulary[0], doc.vocabulary[2]};
  std::printf("query: {");
  for (size_t i = 0; i < query.size(); ++i) {
    std::printf("%s%s", i ? ", " : "", query[i].c_str());
  }
  std::printf("}\n");

  auto lists = kws::lca::MatchLists(tree, query);
  if (lists.empty()) {
    std::printf("some keyword has no match; try other terms.\n");
    return 0;
  }
  const auto slca = kws::lca::SlcaIndexedLookupEager(tree, lists);
  const auto elca = kws::lca::ElcaIndexed(tree, lists);
  std::printf("\n%zu SLCA results, %zu ELCA results\n", slca.size(),
              elca.size());

  const kws::xml::PathStatistics stats = ComputePathStatistics(tree);

  // XReal: the most promising return node type for this query.
  auto types = kws::lca::InferReturnTypes(tree, query);
  std::printf("\ninferred return types (XReal):\n");
  for (size_t i = 0; i < types.size() && i < 3; ++i) {
    std::printf("  [%.3f] %s\n", types[i].score,
                types[i].label_path.c_str());
  }

  // Per-result: XSeek return nodes + a snippet.
  std::printf("\nresults:\n");
  for (size_t i = 0; i < slca.size() && i < 3; ++i) {
    const kws::lca::XSeekResult xr =
        kws::lca::InferReturnNodes(tree, stats, query, slca[i]);
    std::printf("-- result %zu at %s (display root %s)\n", i + 1,
                tree.LabelPath(slca[i]).c_str(),
                tree.LabelPath(xr.result_root).c_str());
    const auto snippet = kws::analyze::GenerateSnippet(
        tree, stats, xr.result_root, query, {.max_items = 4});
    std::printf("%s", SnippetToString(tree, snippet).c_str());
  }

  // Probabilistic structured-query generation (Petkova-style).
  std::printf("\ngenerated structured queries:\n");
  for (const auto& q : kws::infer::GenerateXPathQueries(tree, query)) {
    std::printf("  [%.4f] %s  (%zu results)\n", q.probability,
                q.ToString(query).c_str(), q.results.size());
  }

  // Clustering: by root context (XBridge) and by keyword role.
  std::printf("\nclusters by context (XBridge):\n");
  for (const auto& c : kws::analyze::ClusterByContext(tree, slca, query)) {
    std::printf("  [%.2f] %-28s %zu results\n", c.score, c.label.c_str(),
                c.results.size());
  }
  std::printf("\nclusters by keyword role:\n");
  for (const auto& c : kws::analyze::ClusterByKeywordRoles(tree, slca, query)) {
    std::printf("  %-40s %zu results\n", c.label.c_str(), c.results.size());
  }
  return 0;
}

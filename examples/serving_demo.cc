// Serving-layer walkthrough: a worker pool answering concurrent keyword
// queries over the DBLP corpus, with the result cache, per-query budgets,
// the metrics snapshot, and the operational-telemetry surface (windowed
// metrics + the Statusz health document).

#include <cstdio>
#include <future>
#include <vector>

#include "relational/dblp.h"
#include "serve/server.h"

int main() {
  using namespace kws;

  relational::DblpOptions opts;
  opts.num_authors = 60;
  opts.num_papers = 120;
  opts.num_conferences = 8;
  relational::DblpDatabase dblp = MakeDblpDatabase(opts);
  engine::KeywordSearchEngine eng(*dblp.db);

  serve::ServeOptions so;
  so.num_workers = 4;
  so.queue_capacity = 16;
  so.cache_capacity = 64;
  serve::ServingEngine server(&eng, nullptr, so);

  // --- Concurrent submissions. -----------------------------------------
  const std::vector<std::string> queries = {
      "keyword search", "query processing", "database system"};
  std::printf("submitting %zu queries to %zu workers\n\n", queries.size(),
              so.num_workers);
  std::vector<std::future<serve::QueryOutcome>> futures(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    serve::QueryRequest req;
    req.query = queries[i];
    Status admitted = server.Submit(req, &futures[i]);
    if (!admitted.ok()) {
      std::printf("rejected: %s\n", admitted.ToString().c_str());
    }
  }
  for (size_t i = 0; i < futures.size(); ++i) {
    serve::QueryOutcome out = futures[i].get();
    std::printf("[%zu] \"%s\" -> %s, %zu results%s (%.1f us)\n", i,
                queries[i].c_str(), out.status.ToString().c_str(),
                out.relational ? out.relational->results.size() : 0,
                out.cache_hit ? " [cache hit]" : "", out.latency_micros);
    if (out.relational != nullptr && !out.relational->results.empty()) {
      std::printf("     top: %s\n",
                  out.relational->results.front().description.c_str());
    }
  }

  // --- A repeat of a finished query is answered from the cache. --------
  serve::QueryRequest repeat;
  repeat.query = "Keyword  SEARCH";  // normalizes to the cached key
  serve::QueryOutcome cached = server.Query(repeat);
  std::printf("\nrepeat \"%s\" -> %s%s (%.1f us)\n", repeat.query.c_str(),
              cached.status.ToString().c_str(),
              cached.cache_hit ? " [cache hit]" : "", cached.latency_micros);

  // --- A starved budget surfaces as kDeadlineExceeded, not a crash. ----
  serve::QueryRequest starved;
  starved.query = "query optimization";
  starved.budget_micros = 1;
  serve::QueryOutcome out = server.Query(starved);
  std::printf("\n1 us budget -> %s\n", out.status.ToString().c_str());

  // --- What the server counted. ----------------------------------------
  std::printf("\nmetrics snapshot:\n%s", server.metrics().RenderText().c_str());

  // --- The operational-telemetry surface. -------------------------------
  // The windowed instruments answer "what is happening *now*": totals
  // over the retained ring of windows, decaying to zero when traffic
  // stops — unlike the cumulative counters above. One JSON document
  // carries both sides.
  std::printf("\ntelemetry (cumulative + windowed):\n%s\n",
              server.telemetry().RenderJson().c_str());

  // Statusz is the single-call health snapshot an operator (or a
  // dashboard scraper) reads: queue depth, in-flight count, rejection and
  // deadline rates with their recent windowed counterparts, per-shard
  // result-cache occupancy, epoch lag, and the slow-query-ring digest.
  std::printf("\nstatusz:\n%s\n", server.Statusz().c_str());
  return 0;
}

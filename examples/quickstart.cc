// Quickstart: build a synthetic bibliographic database, run keyword
// queries through the full pipeline (cleaning -> candidate-network search
// -> ranking -> refinement suggestions), and try type-ahead completion.
//
//   ./example_quickstart [query...]

#include <cstdio>
#include <string>

#include "core/engine/engine.h"
#include "relational/dblp.h"

int main(int argc, char** argv) {
  // 1. A small DBLP-like database: conference / author / paper / writes /
  //    cite, with Zipf-skewed title vocabulary.
  kws::relational::DblpOptions opts;
  opts.num_authors = 120;
  opts.num_papers = 300;
  opts.num_conferences = 10;
  kws::relational::DblpDatabase dblp = MakeDblpDatabase(opts);
  std::printf("database: %zu tables, %zu rows\n", dblp.db->num_tables(),
              dblp.db->TotalRows());

  // 2. The engine wires every stage together.
  kws::engine::KeywordSearchEngine engine(*dblp.db);

  std::string query = "keywrd search";  // note the typo
  if (argc > 1) {
    query.clear();
    for (int i = 1; i < argc; ++i) {
      if (i > 1) query += ' ';
      query += argv[i];
    }
  }
  std::printf("\nquery: \"%s\"\n", query.c_str());

  kws::engine::EngineOptions eopts;
  eopts.k = 5;
  kws::engine::EngineResponse response = engine.Search(query, eopts);
  if (response.query_was_corrected) {
    std::printf("did you mean:");
    for (const std::string& t : response.cleaned_query) {
      std::printf(" %s", t.c_str());
    }
    std::printf("\n");
  }
  std::printf("\ntop results (joined tuple trees):\n");
  for (const kws::engine::EngineResult& r : response.results) {
    std::printf("  [%.3f] %s\n", r.score, r.description.c_str());
  }
  if (!response.suggestions.empty()) {
    std::printf("\nrefine with:");
    for (const std::string& s : response.suggestions) {
      std::printf(" %s", s.c_str());
    }
    std::printf("\n");
  }

  // 3. Type-ahead: completions of a partially typed keyword.
  std::printf("\ntype-ahead for \"que\":");
  for (const std::string& c : engine.Complete("que")) {
    std::printf(" %s", c.c_str());
  }
  std::printf("\n");
  return 0;
}

// dblp_explorer: the relational side of the tutorial in one program —
// candidate networks (what structured interpretations a keyword query
// has), the three DISCOVER2 evaluation strategies, SPARK's non-monotonic
// ranking, auto-generated query forms, and IQP interpretation ranking.
//
//   ./example_dblp_explorer [query...]

#include <cstdio>
#include <string>
#include <vector>

#include "core/cn/search.h"
#include "core/cn/spark.h"
#include "core/forms/forms.h"
#include "core/infer/correlation.h"
#include "core/infer/precis.h"
#include "core/infer/iqp.h"
#include "relational/dblp.h"
#include "text/tokenizer.h"

int main(int argc, char** argv) {
  kws::relational::DblpOptions opts;
  opts.num_authors = 200;
  opts.num_papers = 500;
  kws::relational::DblpDatabase dblp = MakeDblpDatabase(opts);
  const kws::relational::Database& db = *dblp.db;

  std::string query = "james chen keyword";
  if (argc > 1) {
    query.clear();
    for (int i = 1; i < argc; ++i) {
      if (i > 1) query += ' ';
      query += argv[i];
    }
  }
  std::printf("query: \"%s\"\n", query.c_str());
  const std::vector<std::string> keywords =
      kws::text::Tokenizer().Tokenize(query);

  // --- Candidate networks: the structured interpretations -------------
  kws::cn::CnKeywordSearch search(db);
  std::vector<kws::cn::CandidateNetwork> cns;
  kws::cn::SearchOptions sopts;
  sopts.k = 5;
  sopts.max_cn_size = 4;
  kws::cn::SearchStats stats;
  auto results = search.Search(query, sopts, &cns, &stats);
  std::printf("\n%zu candidate networks (max size %zu), e.g.:\n", cns.size(),
              sopts.max_cn_size);
  for (size_t i = 0; i < cns.size() && i < 5; ++i) {
    std::printf("  CN%zu: %s\n", i + 1, cns[i].ToString(db, keywords).c_str());
  }
  std::printf("\ntop joined results (monotonic DISCOVER2 score):\n");
  for (const auto& r : results) {
    std::printf("  [%.3f]", r.score);
    for (const auto& t : r.tuples) {
      std::printf(" %s", db.TupleToString(t).c_str());
    }
    std::printf("\n");
  }

  // --- SPARK: virtual-document scoring ---------------------------------
  kws::cn::SparkSearch spark(db);
  kws::cn::SparkOptions spopts;
  spopts.k = 3;
  spopts.max_cn_size = 4;
  auto spark_results = spark.Search(query, spopts, nullptr);
  std::printf("\nSPARK top results (non-monotonic score):\n");
  for (const auto& r : spark_results) {
    std::printf("  [%.3f] %zu tuples\n", r.score, r.tuples.size());
  }

  // --- Query forms ------------------------------------------------------
  auto forms = kws::forms::GenerateForms(db, {.max_tables = 3});
  kws::forms::FormIndex form_index(db, std::move(forms));
  std::printf("\nrelevant query forms:\n");
  auto ranked = form_index.Search(query, 6);
  auto groups = form_index.GroupBySkeleton(ranked);
  for (size_t g = 0; g < groups.size() && g < 3; ++g) {
    std::printf("  group %zu:\n", g + 1);
    for (const auto& rf : groups[g]) {
      std::printf("    [%.3f] %s\n", rf.score,
                  form_index.forms()[rf.form].ToString(db).c_str());
    }
  }

  // --- Précis: what to show for one result entity ----------------------
  {
    auto weights = kws::infer::SchemaWeights::FromParticipation(db);
    kws::infer::PrecisOptions popts;
    popts.max_attributes = 6;
    popts.min_weight = 0.2;
    auto schema = PrecisAnswerSchema(db, dblp.paper, weights, popts);
    std::printf("\nprecis answer for paper#0 (max 6 attrs, min weight 0.2):\n  %s\n",
                ExpandPrecisAnswer(db, dblp.paper, 0, schema).c_str());
  }

  // --- Schema statistics the rankers use -------------------------------
  std::printf("\nschema statistics:\n");
  const auto queriability = kws::forms::EntityQueriability(db);
  for (kws::relational::TableId t = 0; t < db.num_tables(); ++t) {
    std::printf("  queriability(%s) = %.3f\n", db.table(t).name().c_str(),
                queriability[t]);
  }
  for (uint32_t fk = 0; fk < db.foreign_keys().size(); ++fk) {
    std::printf("  relatedness(fk%u) = %.3f\n", fk,
                kws::infer::Relatedness(db, fk));
  }
  return 0;
}

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/steiner/answer_tree.h"
#include "core/steiner/banks.h"
#include "core/steiner/semantics.h"
#include "core/steiner/steiner_dp.h"
#include "graph/blinks_index.h"
#include "graph/data_graph.h"
#include "graph/shortest_path.h"
#include "relational/dblp.h"

namespace kws::steiner {
namespace {

using graph::DataGraph;
using graph::NodeId;

/// Path a(alpha) - b - c - d(omega), plus a shortcut a - e(beta) spur.
DataGraph PathGraph() {
  DataGraph g;
  g.AddNode("a", "alpha");
  g.AddNode("b", "");
  g.AddNode("c", "");
  g.AddNode("d", "omega");
  g.AddNode("e", "beta");
  g.AddUndirectedEdge(0, 1, 1);
  g.AddUndirectedEdge(1, 2, 1);
  g.AddUndirectedEdge(2, 3, 1);
  g.AddUndirectedEdge(0, 4, 1);
  g.BuildKeywordIndex();
  return g;
}

TEST(SteinerDpTest, PathCost) {
  DataGraph g = PathGraph();
  auto r = GroupSteinerTop1(g, std::vector<std::string>{"alpha", "omega"});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_DOUBLE_EQ(r.value().cost, 3.0);
  EXPECT_TRUE(IsWellFormed(r.value(), g));
  EXPECT_EQ(r.value().nodes.size(), 4u);
}

TEST(SteinerDpTest, ThreeGroupsStar) {
  // Star: center 0, leaves 1(x) 2(y) 3(z); optimal tree = whole star.
  DataGraph g;
  g.AddNode("c", "");
  g.AddNode("l1", "x");
  g.AddNode("l2", "y");
  g.AddNode("l3", "z");
  for (NodeId l = 1; l <= 3; ++l) g.AddUndirectedEdge(0, l, 1);
  g.BuildKeywordIndex();
  auto r = GroupSteinerTop1(g, std::vector<std::string>{"x", "y", "z"});
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.value().cost, 3.0);
  EXPECT_TRUE(IsWellFormed(r.value(), g));
}

TEST(SteinerDpTest, GroupPicksNearestMatch) {
  // "k" matches nodes 2 and 4; node 4 is much closer to "q" at node 3.
  DataGraph g;
  g.AddNode("q", "q");
  g.AddNode("mid", "");
  g.AddNode("far", "k");
  g.AddNode("root", "");
  g.AddNode("near", "k");
  g.AddUndirectedEdge(0, 1, 5);
  g.AddUndirectedEdge(1, 2, 5);
  g.AddUndirectedEdge(0, 4, 1);
  g.AddUndirectedEdge(3, 4, 1);
  g.BuildKeywordIndex();
  auto r = GroupSteinerTop1(g, std::vector<std::string>{"q", "k"});
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.value().cost, 1.0);
  EXPECT_EQ(r.value().keyword_nodes[1], 4u);
}

TEST(SteinerDpTest, SingleNodeCoversAllKeywords) {
  DataGraph g;
  g.AddNode("n", "foo bar");
  g.BuildKeywordIndex();
  auto r = GroupSteinerTop1(g, std::vector<std::string>{"foo", "bar"});
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.value().cost, 0.0);
  EXPECT_EQ(r.value().nodes.size(), 1u);
}

TEST(SteinerDpTest, DisconnectedReturnsNotFound) {
  DataGraph g;
  g.AddNode("a", "foo");
  g.AddNode("b", "bar");
  g.BuildKeywordIndex();
  auto r = GroupSteinerTop1(g, std::vector<std::string>{"foo", "bar"});
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(SteinerDpTest, MissingKeywordReturnsNotFound) {
  DataGraph g = PathGraph();
  auto r = GroupSteinerTop1(g, std::vector<std::string>{"alpha", "missing"});
  EXPECT_FALSE(r.ok());
}

TEST(BanksTest, FindsPathAnswer) {
  DataGraph g = PathGraph();
  auto results = BanksSearch(g, {"alpha", "omega"}, {.k = 3});
  ASSERT_FALSE(results.empty());
  EXPECT_DOUBLE_EQ(results[0].cost, 3.0);
  EXPECT_TRUE(IsWellFormed(results[0], g));
  // Sorted by ascending cost.
  for (size_t i = 1; i < results.size(); ++i) {
    EXPECT_GE(results[i].cost, results[i - 1].cost);
  }
}

TEST(BanksTest, DistinctRoots) {
  DataGraph g = PathGraph();
  auto results = BanksSearch(g, {"alpha", "omega"}, {.k = 10});
  std::set<NodeId> roots;
  for (const auto& t : results) {
    EXPECT_TRUE(roots.insert(t.root).second) << "duplicate root";
  }
}

TEST(BanksTest, EmptyWhenKeywordUnmatched) {
  DataGraph g = PathGraph();
  EXPECT_TRUE(BanksSearch(g, {"alpha", "nothing"}).empty());
  EXPECT_TRUE(BanksSearch(g, {}).empty());
}

TEST(BanksTest, SingleKeywordZeroCostAnswers) {
  DataGraph g = PathGraph();
  auto results = BanksSearch(g, {"alpha"}, {.k = 5});
  ASSERT_FALSE(results.empty());
  EXPECT_DOUBLE_EQ(results[0].cost, 0.0);
  EXPECT_EQ(results[0].root, 0u);
}

/// Property: BANKS I and BANKS II (bidirectional) return the same top-k
/// cost sequence — bidirectional only changes *how* candidates are found.
class BanksAgreementTest : public ::testing::TestWithParam<size_t> {};

TEST_P(BanksAgreementTest, BidirectionalMatchesBackward) {
  const size_t threshold = GetParam();
  relational::DblpOptions opts;
  opts.num_authors = 60;
  opts.num_papers = 120;
  relational::DblpDatabase dblp = MakeDblpDatabase(opts);
  graph::RelationalGraph rg = graph::BuildDataGraph(*dblp.db);
  const std::vector<std::string> query = {"keyword",
                                          dblp.vocabulary[3]};
  BanksOptions uni;
  uni.k = 8;
  auto a = BanksSearch(rg.graph, query, uni);
  BanksOptions bi;
  bi.k = 8;
  bi.bidirectional = true;
  bi.frequent_threshold = threshold;
  auto b = BanksSearch(rg.graph, query, bi);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i].cost, b[i].cost, 1e-9) << "rank " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, BanksAgreementTest,
                         ::testing::Values(0, 5, 50, 100000));

TEST(BanksTest, TreesWellFormedOnDblpGraph) {
  relational::DblpDatabase dblp = relational::MakeDblpDatabase();
  graph::RelationalGraph rg = graph::BuildDataGraph(*dblp.db);
  auto results = BanksSearch(rg.graph, {"keyword", "search"}, {.k = 10});
  ASSERT_FALSE(results.empty());
  for (const auto& t : results) {
    EXPECT_TRUE(IsWellFormed(t, rg.graph)) << t.ToString(rg.graph);
    EXPECT_EQ(t.keyword_nodes.size(), 2u);
  }
}

TEST(BanksTest, CostNeverBelowSteinerOptimum) {
  // Distinct-root cost (sum of root->keyword paths) dominates the group
  // Steiner cost.
  Rng rng(3);
  DataGraph g;
  for (int i = 0; i < 40; ++i) {
    g.AddNode("n", i % 7 == 0 ? "foo" : (i % 11 == 0 ? "bar" : ""));
  }
  for (int i = 1; i < 40; ++i) {
    g.AddUndirectedEdge(static_cast<NodeId>(i),
                        static_cast<NodeId>(rng.Index(i)), 1.0);
  }
  g.BuildKeywordIndex();
  auto banks = BanksSearch(g, {"foo", "bar"}, {.k = 1});
  auto steiner = GroupSteinerTop1(g, std::vector<std::string>{"foo", "bar"});
  ASSERT_FALSE(banks.empty());
  ASSERT_TRUE(steiner.ok());
  EXPECT_GE(banks[0].cost, steiner.value().cost - 1e-9);
}

TEST(DistinctRootTest, MatchesBanksCosts) {
  relational::DblpOptions opts;
  opts.num_authors = 50;
  opts.num_papers = 100;
  relational::DblpDatabase dblp = MakeDblpDatabase(opts);
  graph::RelationalGraph rg = graph::BuildDataGraph(*dblp.db);
  graph::KeywordDistanceIndex index(rg.graph);
  const std::vector<std::string> query = {"keyword", "search"};
  auto via_index = DistinctRootSearch(rg.graph, index, query, 5);
  auto via_banks = BanksSearch(rg.graph, query, {.k = 5});
  ASSERT_EQ(via_index.size(), via_banks.size());
  for (size_t i = 0; i < via_index.size(); ++i) {
    EXPECT_NEAR(via_index[i].cost, via_banks[i].cost, 1e-9) << "rank " << i;
    EXPECT_TRUE(IsWellFormed(via_index[i], rg.graph));
  }
}

TEST(DistinctCoreTest, FewerOrEqualAnswersThanDistinctRoot) {
  relational::DblpDatabase dblp = relational::MakeDblpDatabase();
  graph::RelationalGraph rg = graph::BuildDataGraph(*dblp.db);
  graph::KeywordDistanceIndex index(rg.graph);
  const std::vector<std::string> query = {"keyword", "search"};
  auto roots = DistinctRootSearch(rg.graph, index, query, 30);
  auto cores = DistinctCoreSearch(rg.graph, index, query, 30);
  std::set<std::vector<NodeId>> root_cores;
  for (const auto& t : roots) root_cores.insert(t.Core());
  // Distinct-core collapses same-core roots.
  std::set<std::vector<NodeId>> core_cores;
  for (const auto& t : cores) {
    EXPECT_TRUE(core_cores.insert(t.Core()).second) << "duplicate core";
  }
}

TEST(RRadiusTest, RespectsRadius) {
  DataGraph g = PathGraph();
  graph::KeywordDistanceIndex index(g);
  // alpha..omega span 3 hops; no center is within radius 1 of both.
  auto none = RRadiusSteinerSearch(g, index, {"alpha", "omega"}, 1.0, 10);
  EXPECT_TRUE(none.empty());
  auto some = RRadiusSteinerSearch(g, index, {"alpha", "omega"}, 2.0, 10);
  ASSERT_FALSE(some.empty());
  for (const auto& t : some) {
    for (const std::string term : {"alpha", "omega"}) {
      EXPECT_LE(index.Distance(t.root, term), 2.0);
    }
  }
}

TEST(AnswerTreeTest, WellFormedRejectsBrokenTrees) {
  DataGraph g = PathGraph();
  AnswerTree t;
  t.root = 0;
  t.nodes = {0, 1};
  t.edges = {{0, 1}};
  t.keyword_nodes = {1};
  EXPECT_TRUE(IsWellFormed(t, g));
  AnswerTree missing_edge = t;
  missing_edge.nodes.push_back(3);  // node without a parent edge
  EXPECT_FALSE(IsWellFormed(missing_edge, g));
  AnswerTree phantom = t;
  phantom.edges[0] = {0, 3};  // edge 0->3 does not exist
  phantom.nodes = {0, 3};
  EXPECT_FALSE(IsWellFormed(phantom, g));
  AnswerTree orphan_keyword = t;
  orphan_keyword.keyword_nodes = {4};
  EXPECT_FALSE(IsWellFormed(orphan_keyword, g));
}

}  // namespace
}  // namespace kws::steiner

namespace kws::steiner {
namespace {

TEST(SteinerTopKTest, FirstEqualsTop1AndCostsAscend) {
  relational::DblpOptions opts;
  opts.num_authors = 40;
  opts.num_papers = 80;
  relational::DblpDatabase dblp = MakeDblpDatabase(opts);
  graph::RelationalGraph rg = graph::BuildDataGraph(*dblp.db);
  const std::vector<std::string> query = {"james", "keyword"};
  auto top1 = GroupSteinerTop1(rg.graph, query);
  auto topk = GroupSteinerTopK(rg.graph, query, 8);
  ASSERT_TRUE(top1.ok());
  ASSERT_FALSE(topk.empty());
  EXPECT_DOUBLE_EQ(topk[0].cost, top1.value().cost);
  std::set<graph::NodeId> roots;
  for (size_t i = 0; i < topk.size(); ++i) {
    if (i > 0) {
      EXPECT_GE(topk[i].cost, topk[i - 1].cost);
    }
    EXPECT_TRUE(roots.insert(topk[i].root).second) << "duplicate root";
    EXPECT_TRUE(IsWellFormed(topk[i], rg.graph)) << topk[i].ToString(rg.graph);
  }
}

TEST(SteinerTopKTest, EdgeCases) {
  graph::DataGraph g;
  g.AddNode("a", "foo");
  g.AddNode("b", "bar");
  g.BuildKeywordIndex();
  // Disconnected keywords: no answers.
  EXPECT_TRUE(GroupSteinerTopK(g, std::vector<std::string>{"foo", "bar"}, 5)
                  .empty());
  // k = 0.
  EXPECT_TRUE(GroupSteinerTopK(g, std::vector<std::string>{"foo"}, 0)
                  .empty());
  // Single keyword: each match is a zero-cost root.
  auto single =
      GroupSteinerTopK(g, std::vector<std::string>{"foo"}, 5);
  ASSERT_EQ(single.size(), 1u);
  EXPECT_DOUBLE_EQ(single[0].cost, 0.0);
}

}  // namespace
}  // namespace kws::steiner

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/forms/forms.h"
#include "core/infer/correlation.h"
#include "core/infer/iqp.h"
#include "relational/dblp.h"
#include "relational/query_log.h"
#include "relational/shop.h"

namespace kws {
namespace {

using infer::JointObservation;

TEST(EntropyTest, UniformAndDegenerate) {
  EXPECT_DOUBLE_EQ(infer::Entropy({1, 1, 1, 1}), 2.0);
  EXPECT_DOUBLE_EQ(infer::Entropy({5}), 0.0);
  EXPECT_DOUBLE_EQ(infer::Entropy({}), 0.0);
  EXPECT_NEAR(infer::Entropy({2, 1, 1}), 1.5, 1e-12);
}

TEST(TotalCorrelationTest, Slide42AuthorPaperExample) {
  // Reconstruction of tutorial slide 42: six equiprobable (author, paper)
  // observations with marginals H(A) = 2.25, H(P) = 1.92, joint 2.58,
  // I(A,P) = 1.59.
  std::vector<JointObservation> joint = {
      {"a1", "p1"}, {"a1", "p2"}, {"a2", "p1"},
      {"a3", "p2"}, {"a4", "p3"}, {"a5", "p4"}};
  EXPECT_NEAR(infer::TotalCorrelation(joint), 1.59, 0.01);
}

TEST(TotalCorrelationTest, Slide43EditorPaperExample) {
  // Slide 43: two deterministic (editor, paper) pairs: H(E) = H(P) =
  // H(E,P) = 1.0, I = 1.0, I* = f(2) * 1.0 / 1.0 = 4.
  std::vector<JointObservation> joint = {{"e1", "p1"}, {"e2", "p2"}};
  EXPECT_NEAR(infer::TotalCorrelation(joint), 1.0, 1e-9);
  EXPECT_NEAR(infer::NormalizedTotalCorrelation(joint), 4.0, 1e-9);
}

TEST(TotalCorrelationTest, IndependentVariablesNearZero) {
  // Full cross product: knowing one variable says nothing about the other.
  std::vector<JointObservation> joint;
  for (int a = 0; a < 4; ++a) {
    for (int b = 0; b < 4; ++b) {
      joint.push_back({"a" + std::to_string(a), "b" + std::to_string(b)});
    }
  }
  EXPECT_NEAR(infer::TotalCorrelation(joint), 0.0, 1e-9);
}

TEST(JoinObservationsTest, ChainOverDblp) {
  relational::DblpOptions opts;
  opts.num_authors = 30;
  opts.num_papers = 60;
  relational::DblpDatabase dblp = MakeDblpDatabase(opts);
  // author <- writes -> paper chain: fks 1 (writes.aid) and 2 (writes.pid).
  auto joint = infer::JoinObservations(
      *dblp.db, {dblp.author, dblp.writes, dblp.paper}, {1, 2});
  ASSERT_FALSE(joint.empty());
  EXPECT_EQ(joint.size(), dblp.db->table(dblp.writes).num_rows());
  for (const auto& o : joint) EXPECT_EQ(o.size(), 3u);
  // Authors and papers correlate through writes.
  EXPECT_GT(infer::TotalCorrelation(joint), 0.5);
}

TEST(ParticipationTest, WritesAlwaysParticipates) {
  relational::DblpDatabase dblp = relational::MakeDblpDatabase();
  // FK 1: writes.aid -> author. Every writes row references an author.
  EXPECT_DOUBLE_EQ(infer::ParticipationRatio(*dblp.db, 1, true), 1.0);
  // Most authors wrote something, but possibly not all.
  const double back = infer::ParticipationRatio(*dblp.db, 1, false);
  EXPECT_GT(back, 0.5);
  EXPECT_LE(back, 1.0);
  const double rel = infer::Relatedness(*dblp.db, 1);
  EXPECT_NEAR(rel, (1.0 + back) / 2, 1e-12);
}

TEST(IqpTest, BindsBrandWordToBrandColumn) {
  relational::ShopDatabase shop =
      relational::MakeShopDatabase({.seed = 3, .num_products = 300});
  relational::QueryLog log = MakeQueryLog(*shop.db, shop.product,
                                          {.seed = 4, .num_queries = 100});
  infer::IqpRanker ranker(*shop.db, shop.product, log);
  // "lenovo" occurs in the brand column (and sometimes descriptions);
  // its binding probability must peak at brand (column 2).
  double best = 0;
  relational::ColumnId best_col = 0;
  for (relational::ColumnId c = 1; c < 8; ++c) {
    const double p = ranker.BindingProbability("lenovo", c);
    if (p > best) {
      best = p;
      best_col = c;
    }
  }
  EXPECT_EQ(best_col, 2u);
}

TEST(IqpTest, RankReturnsOrderedInterpretations) {
  relational::ShopDatabase shop =
      relational::MakeShopDatabase({.seed = 3, .num_products = 200});
  relational::QueryLog log = MakeQueryLog(*shop.db, shop.product,
                                          {.seed = 4, .num_queries = 100});
  infer::IqpRanker ranker(*shop.db, shop.product, log);
  auto interps = ranker.Rank({"lenovo", "laptop"}, 5);
  ASSERT_FALSE(interps.empty());
  EXPECT_LE(interps.size(), 5u);
  for (size_t i = 1; i < interps.size(); ++i) {
    EXPECT_GE(interps[i - 1].probability, interps[i].probability);
  }
  // Best interpretation: lenovo -> brand (2), laptop -> category (3).
  EXPECT_EQ(interps[0].bindings[0], 2u);
  EXPECT_EQ(interps[0].bindings[1], 3u);
  // Rendering mentions both columns.
  const std::string s = interps[0].ToString(
      shop.db->table(shop.product).schema(), {"lenovo", "laptop"});
  EXPECT_NE(s.find("brand"), std::string::npos);
  EXPECT_NE(s.find("category"), std::string::npos);
}

class FormsTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    relational::DblpOptions opts;
    opts.num_authors = 50;
    opts.num_papers = 100;
    dblp_ = new relational::DblpDatabase(MakeDblpDatabase(opts));
  }
  static void TearDownTestSuite() {
    delete dblp_;
    dblp_ = nullptr;
  }
  static relational::DblpDatabase* dblp_;
};

relational::DblpDatabase* FormsTest::dblp_ = nullptr;

TEST_F(FormsTest, EntityQueriabilitySumsToOne) {
  auto q = forms::EntityQueriability(*dblp_->db);
  ASSERT_EQ(q.size(), dblp_->db->num_tables());
  double sum = 0;
  for (double x : q) {
    EXPECT_GT(x, 0);
    sum += x;
  }
  EXPECT_NEAR(sum, 1.0, 1e-6);
}

TEST_F(FormsTest, AttributeQueriabilityFullColumns) {
  // Every paper has a title.
  EXPECT_DOUBLE_EQ(
      forms::AttributeQueriability(*dblp_->db, dblp_->paper, 1), 1.0);
}

TEST_F(FormsTest, OperatorQueriabilityShapes) {
  // Text title: projection beats aggregation.
  const double proj = forms::OperatorQueriability(
      *dblp_->db, dblp_->paper, 1, forms::FormOperator::kProject);
  const double aggr = forms::OperatorQueriability(
      *dblp_->db, dblp_->paper, 1, forms::FormOperator::kAggregate);
  EXPECT_GT(proj, aggr);
  // Numeric year: order-by beats projection.
  const double order = forms::OperatorQueriability(
      *dblp_->db, dblp_->conference, 2, forms::FormOperator::kOrderBy);
  const double proj_year = forms::OperatorQueriability(
      *dblp_->db, dblp_->conference, 2, forms::FormOperator::kProject);
  EXPECT_GT(order, proj_year);
}

TEST_F(FormsTest, GeneratesAuthorWritesPaperSkeleton) {
  auto forms_list = forms::GenerateForms(*dblp_->db, {.max_tables = 3});
  ASSERT_FALSE(forms_list.empty());
  bool found = false;
  for (const auto& f : forms_list) {
    std::vector<relational::TableId> ts = f.tables;
    std::sort(ts.begin(), ts.end());
    if (ts == std::vector<relational::TableId>{dblp_->author, dblp_->paper,
                                               dblp_->writes}) {
      found = true;
      EXPECT_FALSE(f.fields.empty());
    }
  }
  EXPECT_TRUE(found) << "author-writes-paper form missing";
}

TEST_F(FormsTest, FormsSortedByQueriability) {
  auto forms_list = forms::GenerateForms(*dblp_->db);
  for (size_t i = 1; i < forms_list.size(); ++i) {
    EXPECT_GE(forms_list[i - 1].queriability, forms_list[i].queriability);
  }
}

TEST_F(FormsTest, SearchFindsRelevantForms) {
  auto forms_list = forms::GenerateForms(*dblp_->db);
  forms::FormIndex index(*dblp_->db, std::move(forms_list));
  // An author-name keyword: the variant expansion turns it into the
  // "author" schema term (slide 57).
  const std::string author_name =
      dblp_->db->table(dblp_->author).cell(0, 1).AsText();
  const std::string first = text::Tokenizer().Tokenize(author_name)[0];
  auto ranked = index.Search(first + " paper", 10);
  ASSERT_FALSE(ranked.empty());
  // Top group must involve the author table.
  bool author_in_top = false;
  for (relational::TableId t : index.forms()[ranked[0].form].tables) {
    author_in_top |= (t == dblp_->author);
  }
  EXPECT_TRUE(author_in_top);
  // Grouping keeps every ranked form, partitioned by skeleton.
  auto groups = index.GroupBySkeleton(ranked);
  size_t total = 0;
  for (const auto& g : groups) total += g.size();
  EXPECT_EQ(total, ranked.size());
  for (const auto& g : groups) {
    for (const auto& rf : g) {
      EXPECT_EQ(index.forms()[rf.form].skeleton_key,
                index.forms()[g[0].form].skeleton_key);
    }
  }
}

}  // namespace
}  // namespace kws

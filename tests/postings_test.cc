// Oracle tests for the posting-list kernels: every fast primitive
// (skip/gallop SeekGE, cursor, multi-way intersection/union, range count)
// is compared against its brute-force linear reference over random seeds
// and adversarial shapes (empty, one element, all-equal positions,
// disjoint ranges, 1:10000 length skew), following the fuzz_test.cc
// pattern.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "common/random.h"
#include "text/postings.h"

namespace kws::text {
namespace {

// ------------------------------------------------------- shape generators

/// A random strictly increasing doc array of `len` elements drawn from
/// [0, universe). A `len` above `universe` is clamped to it (the fully
/// dense list — itself a useful adversarial shape).
std::vector<DocId> RandomSortedList(Rng& rng, size_t len, uint32_t universe) {
  len = std::min<size_t>(len, universe);
  std::set<DocId> s;
  while (s.size() < len) {
    s.insert(static_cast<DocId>(rng.Uniform(universe)));
  }
  return std::vector<DocId>(s.begin(), s.end());
}

PostingList MakeList(const std::vector<DocId>& docs) {
  PostingList list;
  for (DocId d : docs) list.Add(d);
  return list;
}

// --------------------------------------------------------------- PostingList

TEST(PostingListTest, AddBumpsTfForRepeatedDoc) {
  PostingList list;
  list.Add(7);
  list.Add(7);
  list.Add(9);
  ASSERT_EQ(list.size(), 2u);
  EXPECT_EQ(list.doc(0), 7u);
  EXPECT_EQ(list.tf(0), 2u);
  EXPECT_EQ(list.tf(1), 1u);
}

TEST(PostingListTest, OutOfOrderInsertKeepsOrderAndSkips) {
  PostingList list;
  for (DocId d = 0; d < 200; d += 2) list.Add(d);
  list.Add(131);  // out of order
  list.Add(131);  // now a tf bump via the ordered-insert path
  ASSERT_EQ(list.size(), 101u);
  EXPECT_TRUE(std::is_sorted(list.docs().begin(), list.docs().end()));
  // Skip table must be consistent after the rebuild: block b's entry is
  // the last doc of block b.
  const size_t bs = PostingList::kSkipBlockSize;
  ASSERT_EQ(list.skips().size(), (list.size() + bs - 1) / bs);
  for (size_t b = 0; b < list.skips().size(); ++b) {
    const size_t last = std::min((b + 1) * bs, list.size()) - 1;
    EXPECT_EQ(list.skips()[b], list.doc(last)) << "block " << b;
  }
  const size_t i = static_cast<size_t>(
      std::lower_bound(list.docs().begin(), list.docs().end(), 131) -
      list.docs().begin());
  EXPECT_EQ(list.tf(i), 2u);
}

TEST(PostingListTest, IncrementalSkipsMatchRebuild) {
  Rng rng(7);
  PostingList list;
  DocId next = 0;
  for (int i = 0; i < 1000; ++i) {
    next += static_cast<DocId>(1 + rng.Uniform(5));
    list.Add(next);
  }
  const size_t bs = PostingList::kSkipBlockSize;
  ASSERT_EQ(list.skips().size(), (list.size() + bs - 1) / bs);
  for (size_t b = 0; b < list.skips().size(); ++b) {
    const size_t last = std::min((b + 1) * bs, list.size()) - 1;
    EXPECT_EQ(list.skips()[b], list.doc(last)) << "block " << b;
  }
}

TEST(PostingListTest, ValueIterationMatchesColumns) {
  PostingList list;
  list.Add(3);
  list.Add(3);
  list.Add(8);
  size_t i = 0;
  for (const Posting& p : list) {
    EXPECT_EQ(p.doc, list.doc(i));
    EXPECT_EQ(p.tf, list.tf(i));
    ++i;
  }
  EXPECT_EQ(i, list.size());
}

class PostingFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PostingFuzzTest, ValidateHoldsUnderMixedOrderAdds) {
  Rng rng(GetParam());
  for (int round = 0; round < 20; ++round) {
    PostingList list;
    const int n = 1 + static_cast<int>(rng.Uniform(300));
    for (int i = 0; i < n; ++i) {
      // Mostly ascending appends with occasional out-of-order inserts and
      // duplicate docs, so both Add paths and the skip rebuild are hit.
      list.Add(static_cast<DocId>(rng.Uniform(128)));
    }
    const Status s = list.Validate();
    EXPECT_TRUE(s.ok()) << s.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PostingFuzzTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

// ------------------------------------------------------------------ SeekGE

class SeekFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SeekFuzzTest, SeekGEMatchesLinearOracle) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 200; ++trial) {
    const size_t len = rng.Uniform(300);
    const uint32_t universe = 1 + static_cast<uint32_t>(rng.Uniform(2000));
    const std::vector<DocId> docs = RandomSortedList(rng, len, universe);
    const PostingList list = MakeList(docs);
    // Probe both the skip-table span and the bare vector span.
    const PostingSpan spans[] = {PostingSpan(list), PostingSpan(docs)};
    for (const PostingSpan& span : spans) {
      for (int probe = 0; probe < 40; ++probe) {
        const size_t from = rng.Uniform(len + 2);
        const DocId target = static_cast<DocId>(rng.Uniform(universe + 2));
        EXPECT_EQ(SeekGE(span, from, target),
                  SeekGELinear(span, from, target))
            << "len=" << len << " from=" << from << " target=" << target;
      }
      // Boundary targets.
      EXPECT_EQ(SeekGE(span, 0, 0), SeekGELinear(span, 0, 0));
      EXPECT_EQ(SeekGE(span, 0, UINT32_MAX),
                SeekGELinear(span, 0, UINT32_MAX));
    }
  }
}

TEST_P(SeekFuzzTest, CursorMatchesLowerBoundOnMonotoneProbes) {
  Rng rng(GetParam() + 500);
  for (int trial = 0; trial < 100; ++trial) {
    const size_t len = 1 + rng.Uniform(400);
    const std::vector<DocId> docs = RandomSortedList(rng, len, 5000);
    const PostingList list = MakeList(docs);
    PostingCursor cur{PostingSpan(list)};
    // Nondecreasing probe sequence, as the LCA algorithms issue.
    DocId target = 0;
    size_t prev_pos = 0;
    for (int probe = 0; probe < 60; ++probe) {
      target += static_cast<DocId>(rng.Uniform(200));
      const bool found = cur.SeekGE(target);
      const auto it = std::lower_bound(docs.begin(), docs.end(), target);
      EXPECT_EQ(found, it != docs.end());
      EXPECT_EQ(cur.pos(), static_cast<size_t>(it - docs.begin()));
      // Forward-only: the cursor never moves backwards.
      EXPECT_GE(cur.pos(), prev_pos);
      prev_pos = cur.pos();
      if (cur.pos() > 0) {
        EXPECT_EQ(cur.Predecessor(), *(it - 1));
      }
    }
  }
}

TEST_P(SeekFuzzTest, CountInRangeMatchesStdCount) {
  Rng rng(GetParam() + 900);
  for (int trial = 0; trial < 150; ++trial) {
    const size_t len = rng.Uniform(300);
    const std::vector<DocId> docs = RandomSortedList(rng, len, 1000);
    const PostingList list = MakeList(docs);
    const DocId a = static_cast<DocId>(rng.Uniform(1100));
    const DocId b = static_cast<DocId>(rng.Uniform(1100));
    const DocId lo = std::min(a, b), hi = std::max(a, b);
    const size_t expected = static_cast<size_t>(
        std::count_if(docs.begin(), docs.end(),
                      [&](DocId d) { return d >= lo && d <= hi; }));
    EXPECT_EQ(CountInRange(PostingSpan(list), lo, hi), expected);
    EXPECT_EQ(CountInRange(PostingSpan(list), hi, lo),
              lo == hi ? expected : 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeekFuzzTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u));

// ------------------------------------------------- intersection and union

class SetOpFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SetOpFuzzTest, IntersectMatchesLinearOracle) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 120; ++trial) {
    const size_t num_lists = 2 + rng.Uniform(4);  // 2..5 lists
    std::vector<std::vector<DocId>> docs(num_lists);
    std::vector<PostingList> lists(num_lists);
    for (size_t i = 0; i < num_lists; ++i) {
      docs[i] = RandomSortedList(rng, rng.Uniform(200), 400);
      lists[i] = MakeList(docs[i]);
    }
    std::vector<PostingSpan> spans;
    for (const PostingList& l : lists) spans.emplace_back(l);
    EXPECT_EQ(IntersectLists(spans), IntersectListsLinear(spans));
  }
}

TEST_P(SetOpFuzzTest, UnionMatchesLinearOracle) {
  Rng rng(GetParam() + 250);
  for (int trial = 0; trial < 120; ++trial) {
    const size_t num_lists = 1 + rng.Uniform(5);
    std::vector<std::vector<DocId>> docs(num_lists);
    std::vector<PostingList> lists(num_lists);
    for (size_t i = 0; i < num_lists; ++i) {
      docs[i] = RandomSortedList(rng, rng.Uniform(150), 300);
      lists[i] = MakeList(docs[i]);
    }
    std::vector<PostingSpan> spans;
    for (const PostingList& l : lists) spans.emplace_back(l);
    EXPECT_EQ(UnionLists(spans), UnionListsLinear(spans));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SetOpFuzzTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u));

// ------------------------------------------------------ adversarial shapes

TEST(SetOpShapeTest, EmptyInputs) {
  EXPECT_TRUE(IntersectLists({}).empty());
  EXPECT_TRUE(UnionLists({}).empty());
  const std::vector<DocId> some = {1, 5, 9};
  const std::vector<DocId> none;
  std::vector<PostingSpan> spans{PostingSpan(some), PostingSpan(none)};
  EXPECT_TRUE(IntersectLists(spans).empty());
  EXPECT_EQ(UnionLists(spans), some);
}

TEST(SetOpShapeTest, SingleElementLists) {
  const std::vector<DocId> a = {42};
  const std::vector<DocId> b = {42};
  const std::vector<DocId> c = {41};
  EXPECT_EQ(IntersectLists({PostingSpan(a), PostingSpan(b)}),
            std::vector<DocId>{42});
  EXPECT_TRUE(IntersectLists({PostingSpan(a), PostingSpan(c)}).empty());
  EXPECT_EQ(UnionLists({PostingSpan(a), PostingSpan(c)}),
            (std::vector<DocId>{41, 42}));
}

TEST(SetOpShapeTest, IdenticalLists) {
  std::vector<DocId> a;
  for (DocId d = 0; d < 500; d += 3) a.push_back(d);
  std::vector<PostingSpan> spans{PostingSpan(a), PostingSpan(a),
                                 PostingSpan(a)};
  EXPECT_EQ(IntersectLists(spans), a);
  EXPECT_EQ(UnionLists(spans), a);
}

TEST(SetOpShapeTest, DisjointRanges) {
  std::vector<DocId> lo, hi;
  for (DocId d = 0; d < 100; ++d) lo.push_back(d);
  for (DocId d = 10000; d < 10100; ++d) hi.push_back(d);
  std::vector<PostingSpan> spans{PostingSpan(lo), PostingSpan(hi)};
  EXPECT_TRUE(IntersectLists(spans).empty());
  EXPECT_EQ(UnionLists(spans).size(), 200u);
}

TEST(SetOpShapeTest, ExtremeSkew1To10000) {
  // A 3-element needle against a 30000-element haystack: the galloping
  // kernel must match the linear oracle exactly (and, by construction,
  // touch only O(log) of the long list per needle element).
  std::vector<DocId> needle = {1, 14999, 29998};
  std::vector<DocId> haystack;
  haystack.reserve(30000);
  for (DocId d = 0; d < 30000; ++d) haystack.push_back(d);
  const PostingList hay_list = MakeList(haystack);
  std::vector<PostingSpan> spans{PostingSpan(needle), PostingSpan(hay_list)};
  EXPECT_EQ(IntersectLists(spans), needle);
  EXPECT_EQ(IntersectLists(spans), IntersectListsLinear(spans));
}

TEST(SetOpShapeTest, MaxDocIdBoundary) {
  const std::vector<DocId> a = {0, UINT32_MAX};
  const std::vector<DocId> b = {UINT32_MAX};
  EXPECT_EQ(IntersectLists({PostingSpan(a), PostingSpan(b)}),
            std::vector<DocId>{UINT32_MAX});
  EXPECT_EQ(UnionLists({PostingSpan(a), PostingSpan(b)}), a);
  EXPECT_EQ(CountInRange(PostingSpan(a), 0, UINT32_MAX), 2u);
}

}  // namespace
}  // namespace kws::text

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "common/concurrent_topk.h"
#include "common/deadline.h"
#include "common/thread_pool.h"
#include "common/topk.h"
#include "core/cn/candidate_network.h"
#include "core/cn/search.h"
#include "core/cn/tuple_sets.h"
#include "relational/database.h"
#include "relational/dblp.h"
#include "text/tokenizer.h"

namespace kws::cn {
namespace {

// ----------------------------------------------------- ConcurrentTopK unit

struct Item {
  double score = 0;
  int id = 0;
};

struct ItemOrder {
  bool operator()(const Item& a, const Item& b) const {
    if (a.score != b.score) return a.score > b.score;
    return a.id < b.id;
  }
};

std::vector<Item> MakeItems(size_t n) {
  // Deterministic scores with plenty of exact ties (score = id % 17).
  std::vector<Item> items;
  items.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    items.push_back(Item{static_cast<double>(i % 17), static_cast<int>(i)});
  }
  return items;
}

void ExpectSameItems(const std::vector<Item>& got,
                     const std::vector<Item>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].score, want[i].score) << "rank " << i;
    EXPECT_EQ(got[i].id, want[i].id) << "rank " << i;
  }
}

TEST(ConcurrentTopKTest, MatchesOrderedTopKSingleThread) {
  const auto items = MakeItems(200);
  OrderedTopK<Item, ItemOrder> reference(10);
  ConcurrentTopK<Item, ItemOrder> concurrent(10, 4);
  for (size_t i = 0; i < items.size(); ++i) {
    reference.Offer(items[i]);
    concurrent.Offer(i, items[i].score, items[i]);  // round-robin shards
  }
  ExpectSameItems(concurrent.TakeSorted(), reference.TakeSorted());
}

TEST(ConcurrentTopKTest, MatchesOrderedTopKUnderConcurrentOffers) {
  const auto items = MakeItems(5000);
  OrderedTopK<Item, ItemOrder> reference(16);
  for (const Item& item : items) reference.Offer(item);
  const auto want = reference.TakeSorted();
  for (const size_t threads : {2u, 4u, 8u}) {
    ConcurrentTopK<Item, ItemOrder> concurrent(16, threads);
    ThreadPool pool(threads);
    pool.RunOnAll([&](size_t w) {
      for (size_t i = w; i < items.size(); i += threads) {
        concurrent.Offer(w, items[i].score, items[i]);
      }
    });
    ExpectSameItems(concurrent.TakeSorted(), want);
  }
}

TEST(ConcurrentTopKTest, ThresholdIsLowerBoundAndNeverRejectsTies) {
  const auto items = MakeItems(300);
  ConcurrentTopK<Item, ItemOrder> concurrent(8, 2);
  for (size_t i = 0; i < items.size(); ++i) {
    concurrent.Offer(i % 2, items[i].score, items[i]);
  }
  auto best = concurrent.TakeSorted();
  ASSERT_EQ(best.size(), 8u);
  const double kth = best.back().score;
  // A fresh collector replays the offers so the threshold is live.
  ConcurrentTopK<Item, ItemOrder> replay(8, 2);
  for (size_t i = 0; i < items.size(); ++i) {
    replay.Offer(i % 2, items[i].score, items[i]);
  }
  EXPECT_LE(replay.ThresholdScore(), kth);
  // Exact ties with the final k-th score must never be rejected (their
  // tie-break key might still beat the retained worst).
  EXPECT_FALSE(replay.WouldReject(kth));
  EXPECT_TRUE(replay.WouldReject(-1.0));
}

// ----------------------------------------------- parallel-vs-serial oracle

void ExpectSameResults(const std::vector<SearchResult>& got,
                       const std::vector<SearchResult>& want,
                       const std::string& context) {
  ASSERT_EQ(got.size(), want.size()) << context;
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].score, want[i].score) << context << " rank " << i;
    EXPECT_EQ(got[i].cn_index, want[i].cn_index) << context << " rank " << i;
    EXPECT_EQ(got[i].tuples, want[i].tuples) << context << " rank " << i;
  }
}

/// Bit-identical results for every strategy and thread count, per seed.
class ParallelOracleTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParallelOracleTest, ParallelMatchesSerialBitForBit) {
  relational::DblpOptions opts;
  opts.seed = GetParam();
  opts.num_authors = 40;
  opts.num_papers = 80;
  opts.num_conferences = 6;
  relational::DblpDatabase dblp = MakeDblpDatabase(opts);
  CnKeywordSearch search(*dblp.db);
  const std::vector<std::string> queries = {"keyword search",
                                            "database query", "xml"};
  const Strategy strategies[] = {Strategy::kNaive, Strategy::kSparse,
                                 Strategy::kGlobalPipeline};
  for (const std::string& query : queries) {
    for (Strategy strategy : strategies) {
      SearchOptions so;
      so.k = 10;
      so.max_cn_size = 4;
      so.strategy = strategy;
      SearchStats serial_stats;
      const auto serial = search.Search(query, so, nullptr, &serial_stats);
      EXPECT_FALSE(serial_stats.deadline_hit);
      for (const size_t threads : {2u, 4u, 8u}) {
        so.num_threads = threads;
        SearchStats stats;
        const auto parallel = search.Search(query, so, nullptr, &stats);
        const std::string context = query + " / " +
                                    StrategyToString(strategy) + " / " +
                                    std::to_string(threads) + " threads";
        ExpectSameResults(parallel, serial, context);
        EXPECT_FALSE(stats.deadline_hit) << context;
        EXPECT_EQ(stats.cns_enumerated, serial_stats.cns_enumerated)
            << context;
        if (strategy == Strategy::kNaive) {
          // No pruning anywhere: the parallel work counters are exact and
          // equal to the serial ones.
          EXPECT_EQ(stats.cns_evaluated, serial_stats.cns_evaluated)
              << context;
          EXPECT_EQ(stats.results_materialized,
                    serial_stats.results_materialized)
              << context;
          EXPECT_EQ(stats.join_lookups, serial_stats.join_lookups) << context;
        }
        if (strategy == Strategy::kGlobalPipeline) {
          // Admission is serial in both variants: the admitted-CN count
          // is thread-count independent.
          EXPECT_EQ(stats.cns_evaluated, serial_stats.cns_evaluated)
              << context;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ParallelOracleTest,
                         ::testing::Values(3, 17, 29, 71));

/// The three strategies agree on the full ranked list — scores, CN
/// indices and tuples, ties included — thanks to the shared total order
/// (the kSparse reversed-pair sort used to flip tied-bound CNs).
class StrategyTieBreakOracleTest : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(StrategyTieBreakOracleTest, IdenticalRankedListsAcrossStrategies) {
  relational::DblpOptions opts;
  opts.seed = GetParam();
  opts.num_authors = 30;
  opts.num_papers = 60;
  opts.num_conferences = 5;
  relational::DblpDatabase dblp = MakeDblpDatabase(opts);
  CnKeywordSearch search(*dblp.db);
  for (const std::string& query :
       {std::string("keyword search"), std::string("database")}) {
    SearchOptions so;
    so.k = 20;
    so.max_cn_size = 4;
    so.strategy = Strategy::kNaive;
    const auto naive = search.Search(query, so, nullptr);
    so.strategy = Strategy::kSparse;
    const auto sparse = search.Search(query, so, nullptr);
    so.strategy = Strategy::kGlobalPipeline;
    const auto pipeline = search.Search(query, so, nullptr);
    ExpectSameResults(sparse, naive, query + " sparse-vs-naive");
    ExpectSameResults(pipeline, naive, query + " pipeline-vs-naive");
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, StrategyTieBreakOracleTest,
                         ::testing::Values(5, 23, 42, 97));

TEST(ParallelDeadlineTest, ExpiredBudgetIsIdenticalAcrossThreadCounts) {
  relational::DblpDatabase dblp = relational::MakeDblpDatabase({});
  CnKeywordSearch search(*dblp.db);
  for (const size_t threads : {1u, 2u, 8u}) {
    SearchOptions so;
    so.k = 10;
    so.strategy = Strategy::kSparse;
    so.num_threads = threads;
    so.deadline = Deadline::AfterMicros(0);
    SearchStats stats;
    const auto results = search.Search("keyword search", so, nullptr, &stats);
    EXPECT_TRUE(results.empty()) << threads << " threads";
    EXPECT_TRUE(stats.deadline_hit) << threads << " threads";
  }
}

// ------------------------------------------- dead-CN stats regression (E2)

using relational::Database;
using relational::TableSchema;
using relational::Value;
using relational::ValueType;

/// author/paper/writes with rows such that, for the query
/// "widom xml data", CNs of the shape author{widom} - writes -
/// paper{xml,data} are enumerated (paper matches xml and data in
/// *separate* rows, so the table mask admits the node) yet dead (the
/// combined tuple set is empty). The empty node sits after the live
/// author node in node order — exactly the shape the old
/// !kw_nodes.empty() test miscounted as evaluated.
struct TinyDb {
  std::unique_ptr<Database> db;
  relational::TableId author = 0, paper = 0, writes = 0;

  TinyDb() : db(std::make_unique<Database>()) {
    TableSchema a;
    a.name = "author";
    a.columns = {{"aid", ValueType::kInt, false},
                 {"name", ValueType::kText, true}};
    a.primary_key = 0;
    author = db->CreateTable(a).value();
    TableSchema p;
    p.name = "paper";
    p.columns = {{"pid", ValueType::kInt, false},
                 {"title", ValueType::kText, true}};
    p.primary_key = 0;
    paper = db->CreateTable(p).value();
    TableSchema w;
    w.name = "writes";
    w.columns = {{"wid", ValueType::kInt, false},
                 {"aid", ValueType::kInt, false},
                 {"pid", ValueType::kInt, false}};
    w.primary_key = 0;
    writes = db->CreateTable(w).value();

    auto& at = db->table(author);
    at.Append({Value::Int(0), Value::Text("widom")}).value();
    auto& pt = db->table(paper);
    pt.Append({Value::Int(0), Value::Text("xml keyword")}).value();
    pt.Append({Value::Int(1), Value::Text("data mining")}).value();
    auto& wt = db->table(writes);
    wt.Append({Value::Int(0), Value::Int(0), Value::Int(0)}).value();
    wt.Append({Value::Int(1), Value::Int(0), Value::Int(1)}).value();

    EXPECT_TRUE(db->AddForeignKey("writes", "aid", "author", "aid").ok());
    EXPECT_TRUE(db->AddForeignKey("writes", "pid", "paper", "pid").ok());
    db->BuildTextIndexes();
  }
};

TEST(SearchStatsTest, PipelineCountsOnlyAdmittedCns) {
  TinyDb tiny;
  const std::string query = "widom xml data";
  const auto keywords = text::Tokenizer().Tokenize(query);
  TupleSets ts(*tiny.db, keywords);
  const auto cns = EnumerateCandidateNetworks(*tiny.db, ts.table_masks(),
                                              ts.full_mask(), {.max_size = 4});
  ASSERT_FALSE(cns.empty());

  // Brute-force admission: a CN is live iff every non-free node's tuple
  // set is non-empty.
  size_t live = 0;
  bool overcount_possible = false;
  for (const auto& cn : cns) {
    bool dead = false;
    bool earlier_nonempty = false;
    bool dead_after_nonempty = false;
    for (const auto& node : cn.nodes) {
      if (node.free()) continue;
      if (ts.Get(node.table, node.mask).empty()) {
        dead = true;
        if (earlier_nonempty) dead_after_nonempty = true;
      } else {
        earlier_nonempty = true;
      }
    }
    live += !dead;
    // The regression shape: keyword nodes were already pushed when the
    // empty list surfaced, which the old !kw_nodes.empty() test counted.
    overcount_possible |= dead_after_nonempty;
  }
  ASSERT_TRUE(overcount_possible)
      << "workload no longer exhibits the dead-CN overcount shape";

  CnKeywordSearch search(*tiny.db);
  SearchOptions so;
  so.k = 10;
  so.max_cn_size = 4;
  so.strategy = Strategy::kGlobalPipeline;
  SearchStats stats;
  search.Search(query, so, nullptr, &stats);
  EXPECT_EQ(stats.cns_enumerated, cns.size());
  EXPECT_EQ(stats.cns_evaluated, live);
}

}  // namespace
}  // namespace kws::cn

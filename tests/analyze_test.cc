#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/analyze/aggregate.h"
#include "core/analyze/clustering.h"
#include "core/analyze/differentiation.h"
#include "core/analyze/ranking.h"
#include "core/analyze/snippet.h"
#include "core/lca/slca.h"
#include "core/steiner/banks.h"
#include "graph/pagerank.h"
#include "relational/shop.h"
#include "xml/bibgen.h"
#include "xml/stats.h"

namespace kws::analyze {
namespace {

using xml::XmlNodeId;

TEST(RankingTest, OrdersByCompositeScore) {
  graph::DataGraph g;
  g.AddNode("a", "keyword search");
  g.AddNode("b", "keyword");
  g.AddNode("c", "");
  g.AddUndirectedEdge(0, 2, 1);
  g.AddUndirectedEdge(1, 2, 1);
  g.BuildKeywordIndex();
  auto trees = steiner::BanksSearch(g, {"keyword"}, {.k = 5});
  ASSERT_GE(trees.size(), 2u);
  auto pr = graph::PageRank(g);
  auto ranked = RankAnswers(g, trees, {"keyword", "search"}, pr);
  ASSERT_EQ(ranked.size(), trees.size());
  // Node a matches both query terms: it must rank first.
  EXPECT_EQ(ranked[0].tree.root, 0u);
  for (size_t i = 1; i < ranked.size(); ++i) {
    EXPECT_GE(ranked[i - 1].total, ranked[i].total);
  }
  // The answer rooted at b (matching only "keyword") has lower content
  // than the top answer.
  for (const RankedAnswer& ra : ranked) {
    if (ra.tree.root == 1 && ra.tree.nodes.size() == 1) {
      EXPECT_GT(ranked[0].content, ra.content);
    }
  }
}

class SnippetTest : public ::testing::Test {
 protected:
  void SetUp() override {
    doc_ = xml::MakeBibDocument({.seed = 21, .num_venues = 3,
                                 .papers_per_venue = 8});
    stats_ = xml::ComputePathStatistics(doc_.tree);
  }
  xml::BibDocument doc_;
  xml::PathStatistics stats_;
};

TEST_F(SnippetTest, BoundedAndDocumentOrdered) {
  const XmlNodeId venue = doc_.tree.children(0)[0];
  SnippetOptions opts;
  opts.max_items = 4;
  auto items = GenerateSnippet(doc_.tree, stats_, venue,
                               {doc_.vocabulary[0]}, opts);
  EXPECT_LE(items.size(), 4u);
  for (size_t i = 1; i < items.size(); ++i) {
    EXPECT_LT(items[i - 1].node, items[i].node);
  }
}

TEST_F(SnippetTest, ContainsKeyAndKeywordWitness) {
  const XmlNodeId venue = doc_.tree.children(0)[0];
  auto items = GenerateSnippet(doc_.tree, stats_, venue,
                               {doc_.vocabulary[0]});
  bool has_key = false, has_keyword = false;
  for (const SnippetItem& it : items) {
    has_key |= (it.reason == SnippetItem::Reason::kKey);
    if (it.reason == SnippetItem::Reason::kKeyword) {
      has_keyword = true;
      // The witness really contains the keyword.
      EXPECT_NE(doc_.tree.text(it.node).find(doc_.vocabulary[0]),
                std::string::npos);
    }
  }
  EXPECT_TRUE(has_key);
  EXPECT_TRUE(has_keyword);
  EXPECT_FALSE(SnippetToString(doc_.tree, items).empty());
}

TEST(DifferentiationTest, DodCountsDifferingTypes) {
  FeatureSet a = {{"year", "2000"}, {"title", "olap"}};
  FeatureSet b = {{"year", "2010"}, {"title", "olap"}};
  // year differs, title equal -> DoD 1 for the pair.
  EXPECT_DOUBLE_EQ(DegreeOfDifferentiation({a, b}), 1.0);
  FeatureSet c = {{"venue", "icde"}};
  // a-c: year (one side), title (one side), venue (one side) = 3;
  // b-c likewise 3; a-b = 1.
  EXPECT_DOUBLE_EQ(DegreeOfDifferentiation({a, b, c}), 7.0);
}

TEST(DifferentiationTest, SwapSearchBeatsOrMatchesBaseline) {
  // Slide 152: common features ("data", "query") summarize but do not
  // differentiate; the swap algorithm should pick the distinguishing
  // years/titles.
  std::vector<FeatureSet> results = {
      {{"title", "data"}, {"title", "query"}, {"year", "2000"},
       {"topic", "olap"}},
      {{"title", "data"}, {"title", "query"}, {"year", "2010"},
       {"topic", "cloud"}},
      {{"title", "data"}, {"title", "query"}, {"year", "2020"},
       {"topic", "ml"}},
  };
  DifferentiationOptions opts;
  opts.max_features = 2;
  auto baseline = SelectTopFeatures(results, opts);
  auto optimized = SelectDifferentiatingFeatures(results, opts);
  EXPECT_GE(DegreeOfDifferentiation(optimized),
            DegreeOfDifferentiation(baseline));
  // Every pair can be pushed to DoD 3 by picking *different feature
  // types* per result (presence-vs-absence also differentiates), so the
  // swap optimum here is 9; selecting year+topic everywhere gives only 6.
  EXPECT_DOUBLE_EQ(DegreeOfDifferentiation(optimized), 9.0);
}

TEST(DifferentiationTest, RespectsFeatureBound) {
  std::vector<FeatureSet> results = {
      {{"a", "1"}, {"b", "2"}, {"c", "3"}, {"d", "4"}},
      {{"a", "9"}, {"b", "8"}, {"c", "7"}, {"d", "6"}},
  };
  DifferentiationOptions opts;
  opts.max_features = 2;
  for (const FeatureSet& fs : SelectDifferentiatingFeatures(results, opts)) {
    EXPECT_LE(fs.size(), 2u);
  }
}

class ClusteringTest : public ::testing::Test {
 protected:
  void SetUp() override {
    doc_ = xml::MakeBibDocument({.seed = 31, .num_venues = 9,
                                 .papers_per_venue = 6});
  }
  xml::BibDocument doc_;
};

TEST_F(ClusteringTest, ContextClustersSplitByVenueType) {
  // Query the top title term: results are papers under conference,
  // journal and workshop contexts (slide 156).
  auto lists = lca::MatchLists(doc_.tree, {doc_.vocabulary[0]});
  ASSERT_FALSE(lists.empty());
  auto slca = lca::SlcaBruteForce(doc_.tree, lists);
  auto clusters = ClusterByContext(doc_.tree, slca, {doc_.vocabulary[0]});
  ASSERT_GE(clusters.size(), 2u);
  // Labels are distinct root contexts; members actually share the path.
  std::set<std::string> labels;
  for (const auto& c : clusters) {
    EXPECT_TRUE(labels.insert(c.label).second);
    for (XmlNodeId r : c.results) {
      EXPECT_EQ(doc_.tree.LabelPath(r), c.label);
    }
  }
  // Scores descend.
  for (size_t i = 1; i < clusters.size(); ++i) {
    EXPECT_GE(clusters[i - 1].score, clusters[i].score);
  }
}

TEST_F(ClusteringTest, RoleClustersDistinguishMatchRoles) {
  // A person name appears only in <author>; a venue word only in <name>:
  // querying an ambiguous term that matches title terms yields role
  // signatures per tag.
  auto lists = lca::MatchLists(doc_.tree, {"sigmod"});
  ASSERT_FALSE(lists.empty());
  auto slca = lca::SlcaBruteForce(doc_.tree, lists);
  auto clusters = ClusterByKeywordRoles(doc_.tree, slca, {"sigmod"});
  ASSERT_FALSE(clusters.empty());
  size_t total = 0;
  for (const auto& c : clusters) total += c.results.size();
  EXPECT_EQ(total, slca.size());
}

TEST(AggregateTest, ReproducesSlide16) {
  relational::ShopDatabase events = relational::MakeEventsDatabase(1, 60);
  // Interesting attributes: month (1) and state (2).
  auto groups = AggregateKeywordSearch(
      *events.db, events.product, {1, 2},
      {"motorcycle", "pool", "american", "food"});
  ASSERT_FALSE(groups.empty());
  // Expected covers: (dec, tx) and (*, mi) as on slide 16.
  bool dec_tx = false, star_mi = false;
  for (const auto& g : groups) {
    const bool month_bound = g.shared_values[0].has_value();
    const bool state_bound = g.shared_values[1].has_value();
    if (month_bound && state_bound &&
        g.shared_values[0]->AsText() == "dec" &&
        g.shared_values[1]->AsText() == "tx") {
      dec_tx = true;
    }
    if (!month_bound && state_bound &&
        g.shared_values[1]->AsText() == "mi") {
      star_mi = true;
    }
  }
  EXPECT_TRUE(dec_tx) << "missing the (dec, tx) group";
  EXPECT_TRUE(star_mi) << "missing the (*, mi) group";
  // Every reported group covers all four keywords.
  for (const auto& g : groups) {
    std::set<std::string> covered;
    for (relational::RowId r : g.rows) {
      for (const std::string kw :
           {"motorcycle", "pool", "american", "food"}) {
        auto rows = events.db->MatchRows(events.product, kw);
        if (std::find(rows.begin(), rows.end(), r) != rows.end()) {
          covered.insert(kw);
        }
      }
    }
    EXPECT_EQ(covered.size(), 4u)
        << g.ToString(*events.db, events.product, {1, 2});
  }
}

TEST(AggregateTest, MoreSpecificGroupsFirst) {
  relational::ShopDatabase events = relational::MakeEventsDatabase(1, 60);
  auto groups = AggregateKeywordSearch(*events.db, events.product, {1, 2},
                                       {"motorcycle", "pool"});
  for (size_t i = 1; i < groups.size(); ++i) {
    EXPECT_GE(groups[i - 1].specificity, groups[i].specificity);
  }
}

TEST(TopCellsTest, FindsRelevantCells) {
  relational::ShopDatabase shop =
      relational::MakeShopDatabase({.seed = 12, .num_products = 300});
  // Dimensions: brand (2), category (3). Query "powerful laptop"
  // (slide 166).
  auto cells = TopCells(*shop.db, shop.product, {2, 3},
                        "powerful laptop", 5, 3);
  ASSERT_FALSE(cells.empty());
  for (size_t i = 1; i < cells.size(); ++i) {
    EXPECT_GE(cells[i - 1].avg_relevance, cells[i].avg_relevance);
  }
  for (const auto& c : cells) {
    EXPECT_GE(c.support, 3u);
    EXPECT_EQ(c.rows.size(), c.support);
  }
  // A laptop-ish cell should beat the all-star cell: the top cell binds
  // at least one dimension.
  bool bound = false;
  for (const auto& d : cells[0].dims) bound |= d.has_value();
  EXPECT_TRUE(bound);
}

TEST(TopCellsTest, MinSupportFiltersSparseCells) {
  relational::ShopDatabase shop =
      relational::MakeShopDatabase({.seed = 12, .num_products = 50});
  auto strict = TopCells(*shop.db, shop.product, {2, 3}, "laptop", 20, 40);
  for (const auto& c : strict) EXPECT_GE(c.support, 40u);
}

}  // namespace
}  // namespace kws::analyze

namespace kws::analyze {
namespace {

TEST(DifferentiationTest, RenderComparisonTable) {
  std::vector<FeatureSet> selection = {
      {{"conf:year", "2000"}, {"paper:title", "olap"}},
      {{"conf:year", "2010"}, {"paper:title", "cloud"},
       {"paper:title", "search"}},
  };
  const std::string table =
      RenderComparisonTable(selection, {"ICDE 2000", "ICDE 2010"});
  EXPECT_NE(table.find("feature | ICDE 2000 | ICDE 2010"),
            std::string::npos);
  EXPECT_NE(table.find("conf:year | 2000 | 2010"), std::string::npos);
  EXPECT_NE(table.find("paper:title | olap | cloud, search"),
            std::string::npos);
  // Absent values render as "-".
  std::vector<FeatureSet> sparse = {{{"a", "1"}}, {{"b", "2"}}};
  const std::string t2 = RenderComparisonTable(sparse, {});
  EXPECT_NE(t2.find("a | 1 | -"), std::string::npos);
  EXPECT_NE(t2.find("b | - | 2"), std::string::npos);
}

}  // namespace
}  // namespace kws::analyze

namespace kws::analyze {
namespace {

TEST(DifferentiationTest, StrongLocalOptimalBeatsOrMatchesWeak) {
  std::vector<FeatureSet> results = {
      {{"t", "data"}, {"t", "query"}, {"y", "2000"}, {"v", "icde"}},
      {{"t", "data"}, {"t", "query"}, {"y", "2010"}, {"v", "vldb"}},
      {{"t", "data"}, {"t", "mining"}, {"y", "2020"}, {"v", "icde"}},
      {{"t", "query"}, {"y", "2000"}, {"v", "kdd"}},
  };
  for (size_t bound : {1, 2, 3}) {
    DifferentiationOptions opts;
    opts.max_features = bound;
    const double weak = DegreeOfDifferentiation(
        SelectDifferentiatingFeatures(results, opts));
    auto strong_sel = SelectStrongLocalOptimal(results, opts);
    const double strong = DegreeOfDifferentiation(strong_sel);
    EXPECT_GE(strong, weak) << "bound " << bound;
    for (const FeatureSet& fs : strong_sel) {
      EXPECT_LE(fs.size(), bound);
    }
  }
}

}  // namespace
}  // namespace kws::analyze

namespace kws::analyze {
namespace {

TEST(ClusterSplitTest, SplitClusterByContextRespectsBound) {
  xml::BibDocument doc = xml::MakeBibDocument(
      {.seed = 41, .num_venues = 9, .papers_per_venue = 6});
  auto lists = lca::MatchLists(doc.tree, {doc.vocabulary[0]});
  ASSERT_FALSE(lists.empty());
  auto slca = lca::SlcaBruteForce(doc.tree, lists);
  auto roles = ClusterByKeywordRoles(doc.tree, slca, {doc.vocabulary[0]});
  ASSERT_FALSE(roles.empty());
  // Unbounded: contexts separate conference/journal/workshop titles.
  auto fine = SplitClusterByContext(doc.tree, roles[0],
                                    {doc.vocabulary[0]}, 100);
  EXPECT_GE(fine.size(), 2u);
  size_t total = 0;
  for (const auto& c : fine) total += c.results.size();
  EXPECT_EQ(total, roles[0].results.size());
  // Bounded: merging preserves the result multiset.
  auto coarse = SplitClusterByContext(doc.tree, roles[0],
                                      {doc.vocabulary[0]}, 2);
  EXPECT_LE(coarse.size(), 2u);
  size_t total2 = 0;
  for (const auto& c : coarse) total2 += c.results.size();
  EXPECT_EQ(total2, roles[0].results.size());
  // Zero bound: empty output.
  EXPECT_TRUE(SplitClusterByContext(doc.tree, roles[0],
                                    {doc.vocabulary[0]}, 0)
                  .empty());
}

}  // namespace
}  // namespace kws::analyze

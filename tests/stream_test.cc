#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/cn/execute.h"
#include "core/cn/stream.h"
#include "relational/dblp.h"
#include "text/tokenizer.h"

namespace kws::cn {
namespace {

/// Canonical key of one result for set comparisons.
std::string ResultKey(const SearchResult& r) {
  std::string key = std::to_string(r.cn_index) + ":";
  for (const auto& t : r.tuples) {
    key += std::to_string(t.table) + "." + std::to_string(t.row) + ",";
  }
  return key;
}

struct StreamSetup {
  relational::DblpDatabase dblp;
  std::vector<CandidateNetwork> cns;
  std::unique_ptr<TupleSets> ts;

  explicit StreamSetup(const std::string& query) {
    relational::DblpOptions opts;
    opts.num_authors = 40;
    opts.num_papers = 80;
    dblp = MakeDblpDatabase(opts);
    const auto keywords = text::Tokenizer().Tokenize(query);
    ts = std::make_unique<TupleSets>(*dblp.db, keywords);
    cns = EnumerateCandidateNetworks(*dblp.db, ts->table_masks(),
                                     ts->full_mask(), {.max_size = 4});
  }

  /// All batch results across the workload.
  std::set<std::string> BatchResults() const {
    std::set<std::string> keys;
    for (size_t c = 0; c < cns.size(); ++c) {
      for (const JoinedTree& jt : ExecuteCn(*dblp.db, cns[c], *ts)) {
        SearchResult r;
        r.cn_index = c;
        for (uint32_t n = 0; n < cns[c].nodes.size(); ++n) {
          r.tuples.push_back(
              relational::TupleId{cns[c].nodes[n].table, jt.rows[n]});
        }
        keys.insert(ResultKey(r));
      }
    }
    return keys;
  }

  /// All tuples of the database, in a seed-shuffled arrival order.
  std::vector<relational::TupleId> ArrivalOrder(uint64_t seed) const {
    std::vector<relational::TupleId> order;
    for (relational::TableId t = 0; t < dblp.db->num_tables(); ++t) {
      for (relational::RowId r = 0; r < dblp.db->table(t).num_rows(); ++r) {
        order.push_back({t, r});
      }
    }
    Rng rng(seed);
    rng.Shuffle(order);
    return order;
  }
};

TEST(StreamTest, EmitsExactlyTheBatchResults) {
  StreamSetup setup("keyword search");
  const std::set<std::string> batch = setup.BatchResults();
  ASSERT_FALSE(batch.empty());

  StreamEvaluator eval(*setup.dblp.db, setup.cns, *setup.ts);
  std::set<std::string> streamed;
  for (const auto& tuple : setup.ArrivalOrder(7)) {
    for (const SearchResult& r : eval.OnArrival(tuple)) {
      EXPECT_TRUE(streamed.insert(ResultKey(r)).second)
          << "duplicate emission " << ResultKey(r);
    }
  }
  EXPECT_EQ(streamed, batch);
}

/// Property: emission is exactly-once and order-independent.
class StreamOrderTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StreamOrderTest, OrderIndependent) {
  StreamSetup setup("james keyword");
  const std::set<std::string> batch = setup.BatchResults();
  StreamEvaluator eval(*setup.dblp.db, setup.cns, *setup.ts);
  std::set<std::string> streamed;
  for (const auto& tuple : setup.ArrivalOrder(GetParam())) {
    for (const SearchResult& r : eval.OnArrival(tuple)) {
      EXPECT_TRUE(streamed.insert(ResultKey(r)).second);
    }
  }
  EXPECT_EQ(streamed, batch);
}

INSTANTIATE_TEST_SUITE_P(Sweep, StreamOrderTest,
                         ::testing::Values(1, 2, 3, 42));

TEST(StreamTest, ResultsRequireLastTuple) {
  StreamSetup setup("keyword search");
  StreamEvaluator eval(*setup.dblp.db, setup.cns, *setup.ts);
  // Feeding a tuple twice is a no-op.
  const relational::TupleId t{setup.dblp.paper, 0};
  (void)eval.OnArrival(t);
  EXPECT_TRUE(eval.OnArrival(t).empty());
  EXPECT_EQ(eval.arrived_count(), 1u);
  // Results only appear once all participants arrived: with a single
  // arrived tuple, any emitted result must be a single-node CN.
  for (const SearchResult& r :
       StreamEvaluator(*setup.dblp.db, setup.cns, *setup.ts).OnArrival(t)) {
    EXPECT_EQ(r.tuples.size(), 1u);
  }
}

TEST(StreamTest, StatsAccumulate) {
  StreamSetup setup("keyword search");
  StreamEvaluator eval(*setup.dblp.db, setup.cns, *setup.ts);
  StreamStats stats;
  for (const auto& tuple : setup.ArrivalOrder(5)) {
    (void)eval.OnArrival(tuple, &stats);
  }
  EXPECT_EQ(stats.arrivals, setup.dblp.db->TotalRows());
  EXPECT_EQ(stats.results_emitted, setup.BatchResults().size());
  EXPECT_GT(stats.probes, 0u);
}

}  // namespace
}  // namespace kws::cn

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "common/deadline.h"
#include "common/trace.h"
#include "core/cn/search.h"
#include "relational/database.h"
#include "relational/dblp.h"
#include "relational/shop.h"
#include "shard/sharded_corpus.h"
#include "shard/sharded_engine.h"

namespace kws::shard {
namespace {

relational::DblpOptions SmallDblp(uint64_t seed) {
  relational::DblpOptions opts;
  opts.seed = seed;
  opts.num_conferences = 6;
  opts.num_authors = 40;
  opts.num_papers = 80;
  return opts;
}

// Queries mixing common title terms with rare author surnames: the rare
// ones are what give selection-based pruning something to prune on small
// shards.
const std::vector<std::string>& Queries() {
  static const std::vector<std::string> kQueries = {
      "keyword search", "database query", "hristidis papakonstantinou",
      "xml"};
  return kQueries;
}

// ------------------------------------------------------- corpus invariants

TEST(ShardedCorpusTest, CombinedIsTheConcatenationOfTheShards) {
  for (const size_t shards : {1u, 3u, 5u}) {
    const ShardedCorpus corpus = MakeShardedDblp(SmallDblp(7), shards);
    ASSERT_EQ(corpus.num_shards(), shards);
    const size_t num_tables = corpus.combined->num_tables();
    for (relational::TableId t = 0; t < num_tables; ++t) {
      size_t offset = 0;
      for (size_t s = 0; s < shards; ++s) {
        EXPECT_EQ(corpus.row_offsets[s][t], offset)
            << shards << " shards, table " << t << ", shard " << s;
        const relational::Table& local = corpus.shards[s]->table(t);
        // Every shard row reappears verbatim at its offset position.
        for (relational::RowId r = 0; r < local.num_rows(); ++r) {
          EXPECT_EQ(corpus.combined->table(t).row(offset + r), local.row(r))
              << shards << " shards, table " << t << ", row " << r;
        }
        offset += local.num_rows();
      }
      EXPECT_EQ(corpus.combined->table(t).num_rows(), offset);
    }
  }
}

TEST(ShardedCorpusTest, KeyRemappingKeepsPrimaryKeysGloballyUnique) {
  const ShardedCorpus corpus = MakeShardedDblp(SmallDblp(11), 4);
  for (relational::TableId t = 0; t < corpus.combined->num_tables(); ++t) {
    const relational::Table& table = corpus.combined->table(t);
    const relational::ColumnId pk = table.schema().primary_key;
    std::set<int64_t> seen;
    for (relational::RowId r = 0; r < table.num_rows(); ++r) {
      EXPECT_TRUE(seen.insert(table.cell(r, pk).AsInt()).second)
          << "duplicate primary key in table " << table.name();
    }
  }
}

TEST(ShardedCorpusTest, ShopCorpusMergesToo) {
  relational::ShopOptions opts;
  opts.seed = 5;
  opts.num_products = 60;
  const ShardedCorpus corpus = MakeShardedShop(opts, 3);
  ASSERT_EQ(corpus.num_shards(), 3u);
  size_t rows = 0;
  for (const auto& shard : corpus.shards) rows += shard->TotalRows();
  EXPECT_EQ(corpus.combined->TotalRows(), rows);
}

// ------------------------------------------------ sharded-vs-serial oracle

void ExpectSameResults(const std::vector<cn::SearchResult>& got,
                       const std::vector<cn::SearchResult>& want,
                       const std::string& context) {
  ASSERT_EQ(got.size(), want.size()) << context;
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].score, want[i].score) << context << " rank " << i;
    EXPECT_EQ(got[i].cn_index, want[i].cn_index) << context << " rank " << i;
    EXPECT_EQ(got[i].tuples, want[i].tuples) << context << " rank " << i;
  }
}

/// The determinism contract: the merged top-k is bit-identical to the
/// unsharded engine over the combined database — for every seed, shard
/// count, thread count, and pruning setting — and pruning is sound
/// (every pruned shard contributes zero results even when searched).
class ShardOracleTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ShardOracleTest, MergedTopKMatchesUnshardedBitForBit) {
  const uint64_t seed = GetParam();
  ShardedEngineOptions eo;
  eo.max_cn_size = 4;
  size_t pruned_total = 0;
  for (const size_t shards : {1u, 2u, 3u, 5u, 8u}) {
    const ShardedCorpus corpus = MakeShardedDblp(SmallDblp(seed), shards);
    const cn::CnKeywordSearch oracle(*corpus.combined);
    const ShardedEngine engine(corpus, eo);
    for (const std::string& query : Queries()) {
      cn::SearchOptions so;
      so.k = 10;
      so.max_cn_size = eo.max_cn_size;
      so.strategy = cn::Strategy::kSparse;
      const std::vector<cn::SearchResult> want =
          oracle.Search(query, so, nullptr);
      // The unpruned run doubles as the pruning-soundness witness below.
      ShardedSearchStats unpruned_stats;
      for (const bool prune : {false, true}) {
        for (const size_t threads : {1u, 4u}) {
          ShardedSearchOptions sso;
          sso.k = so.k;
          sso.strategy = so.strategy;
          sso.prune = prune;
          sso.num_threads = threads;
          const ShardedResponse got = engine.Search(query, sso);
          const std::string context =
              query + " / " + std::to_string(shards) + " shards / " +
              std::to_string(threads) + " threads / prune=" +
              (prune ? "on" : "off");
          EXPECT_TRUE(got.status.ok()) << context;
          EXPECT_FALSE(got.stats.deadline_hit) << context;
          ExpectSameResults(got.results, want, context);
          // Renderings come from the owning shard but must read as the
          // combined database's.
          ASSERT_EQ(got.descriptions.size(), got.results.size()) << context;
          ASSERT_EQ(got.result_shards.size(), got.results.size()) << context;
          for (size_t i = 0; i < got.results.size(); ++i) {
            std::string want_desc;
            for (size_t j = 0; j < got.results[i].tuples.size(); ++j) {
              if (j > 0) want_desc += " -- ";
              want_desc +=
                  corpus.combined->TupleToString(got.results[i].tuples[j]);
            }
            EXPECT_EQ(got.descriptions[i], want_desc)
                << context << " rank " << i;
          }
          EXPECT_EQ(got.stats.shards_total, shards) << context;
          EXPECT_EQ(got.stats.shards_pruned + got.stats.shards_searched,
                    shards)
              << context;
          if (!prune) {
            EXPECT_EQ(got.stats.shards_pruned, 0u) << context;
            unpruned_stats = got.stats;
          } else {
            pruned_total += got.stats.shards_pruned;
            // Soundness: a shard the selector pruned produced nothing
            // when it *was* searched (the prune=off run above).
            for (size_t s = 0; s < shards; ++s) {
              if (got.stats.shard_pruned[s]) {
                EXPECT_EQ(unpruned_stats.shard_results[s], 0u)
                    << context << " shard " << s;
              }
            }
          }
        }
      }
    }
  }
  // The sweep must actually exercise pruning, not just tolerate it.
  EXPECT_GT(pruned_total, 0u) << "no query pruned any shard; the rare-term "
                                 "queries no longer discriminate";
}

INSTANTIATE_TEST_SUITE_P(Sweep, ShardOracleTest,
                         ::testing::Values(3, 17, 29, 71));

// ------------------------------------------------------------ search modes

TEST(ShardedEngineTest, EmptyQueryIsOkAndEmpty) {
  const ShardedCorpus corpus = MakeShardedDblp(SmallDblp(3), 2);
  const ShardedEngine engine(corpus);
  const ShardedResponse resp = engine.Search("   ");
  EXPECT_TRUE(resp.status.ok());
  EXPECT_TRUE(resp.keywords.empty());
  EXPECT_TRUE(resp.results.empty());
}

TEST(ShardedEngineTest, ResultShardsOwnTheirTuples) {
  const ShardedCorpus corpus = MakeShardedDblp(SmallDblp(17), 4);
  const ShardedEngine engine(corpus);
  const ShardedResponse resp = engine.Search("keyword search");
  ASSERT_FALSE(resp.results.empty());
  for (size_t i = 0; i < resp.results.size(); ++i) {
    const size_t s = resp.result_shards[i];
    for (const relational::TupleId& tid : resp.results[i].tuples) {
      // All of a result's tuples live in one shard (joins are
      // shard-closed by construction).
      EXPECT_EQ(engine.OwningShard(tid), s) << "rank " << i;
      const relational::RowId offset = corpus.row_offsets[s][tid.table];
      EXPECT_GE(tid.row, offset);
      EXPECT_LT(tid.row - offset, corpus.shards[s]->table(tid.table).num_rows());
    }
  }
}

TEST(ShardedEngineTest, ExpiredGlobalDeadlineReportsPartial) {
  const ShardedCorpus corpus = MakeShardedDblp(SmallDblp(3), 2);
  const ShardedEngine engine(corpus);
  ShardedSearchOptions sso;
  sso.deadline = Deadline::AfterMicros(0);
  const ShardedResponse resp = engine.Search("keyword search", sso);
  EXPECT_EQ(resp.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(resp.stats.deadline_hit);
}

TEST(ShardedEngineTest, GenerousShardBudgetStaysComplete) {
  const ShardedCorpus corpus = MakeShardedDblp(SmallDblp(3), 2);
  const ShardedEngine engine(corpus);
  ShardedSearchOptions sso;
  sso.shard_budget_micros = 60'000'000;
  const ShardedResponse resp = engine.Search("keyword search", sso);
  EXPECT_TRUE(resp.status.ok());
  EXPECT_FALSE(resp.stats.deadline_hit);
}

TEST(ShardedEngineTest, CountersAccumulateAcrossQueries) {
  const ShardedCorpus corpus = MakeShardedDblp(SmallDblp(3), 3);
  const ShardedEngine engine(corpus);
  engine.Search("keyword search");
  engine.Search("database");
  EXPECT_EQ(engine.metrics().GetCounter("shard.queries")->value(), 2u);
  EXPECT_EQ(engine.metrics().GetCounter("shard.fanout")->value() +
                engine.metrics().GetCounter("shard.pruned")->value(),
            6u);
}

// -------------------------------------------------------- trace structure

TEST(ShardTraceTest, SpanStructureIsShardAndThreadCountInvariant) {
  std::string baseline;
  for (const size_t shards : {1u, 2u, 4u}) {
    const ShardedCorpus corpus = MakeShardedDblp(SmallDblp(29), shards);
    const ShardedEngine engine(corpus);
    for (const size_t threads : {1u, 4u}) {
      trace::Tracer tracer;
      ShardedSearchOptions sso;
      sso.num_threads = threads;
      sso.tracer = &tracer;
      engine.Search("keyword search", sso);
      // Names-only signature: counter *values* (fanout, pruned) do vary
      // with the shard count; the span/counter structure must not.
      const std::string sig = tracer.StructureSignature(false);
      if (baseline.empty()) {
        baseline = sig;
      } else {
        EXPECT_EQ(sig, baseline)
            << shards << " shards, " << threads << " threads";
      }
    }
  }
}

TEST(ShardTraceTest, ExplainRendersScatterGatherSpans) {
  const ShardedCorpus corpus = MakeShardedDblp(SmallDblp(3), 2);
  const ShardedEngine engine(corpus);
  const ShardedExplainResult explained = engine.Explain("keyword search");
  EXPECT_TRUE(explained.response.status.ok());
  for (const char* span :
       {"shard.search", "shard.select", "shard.scatter", "shard.gather"}) {
    EXPECT_NE(explained.tree.find(span), std::string::npos) << span;
    EXPECT_NE(explained.json.find(span), std::string::npos) << span;
  }
  // Explain's answer is the same search.
  const ShardedResponse direct = engine.Search("keyword search");
  ExpectSameResults(explained.response.results, direct.results, "explain");
}

// ------------------------------------------------------------- statusz

TEST(ShardStatuszTest, ReportsPerShardCountersAndGatherLatency) {
  const size_t shards = 3;
  const ShardedCorpus corpus = MakeShardedDblp(SmallDblp(17), shards);
  const ShardedEngine engine(corpus);

  // Fresh engine: one per_shard object per shard, all counters zero.
  std::string doc = engine.Statusz();
  EXPECT_NE(doc.find("\"shards\":3"), std::string::npos) << doc;
  size_t objects = 0;
  for (size_t pos = 0; (pos = doc.find("{\"rows\":", pos)) !=
                       std::string::npos;
       ++pos) {
    ++objects;
  }
  EXPECT_EQ(objects, shards) << doc;
  EXPECT_NE(doc.find("\"queries\":0"), std::string::npos) << doc;

  ShardedSearchOptions sso;
  sso.prune = true;
  const ShardedResponse resp = engine.Search("keyword search", sso);
  ASSERT_TRUE(resp.status.ok());

  // The per-shard instruments agree with the response's own stats.
  uint64_t searched = 0;
  uint64_t pruned = 0;
  uint64_t gathered = 0;
  for (size_t s = 0; s < shards; ++s) {
    const std::string prefix = "shard.s" + std::to_string(s);
    searched += engine.metrics().GetCounter(prefix + ".searched")->value();
    pruned += engine.metrics().GetCounter(prefix + ".pruned")->value();
    gathered +=
        engine.metrics().GetHistogram(prefix + ".gather_micros")->count();
  }
  EXPECT_EQ(searched, resp.stats.shards_searched);
  EXPECT_EQ(pruned, resp.stats.shards_pruned);
  // Every searched shard recorded exactly one gather latency sample.
  EXPECT_EQ(gathered, resp.stats.shards_searched);

  doc = engine.Statusz();
  EXPECT_NE(doc.find("\"queries\":1"), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"gather\":{\"count\":"), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"tuple_cache\":{\"configured\":true"),
            std::string::npos)
      << doc;
  // Two identical calls with no traffic in between are byte-identical
  // except the gather means/percentiles never change without traffic —
  // i.e. fully identical.
  EXPECT_EQ(doc, engine.Statusz());
}

}  // namespace
}  // namespace kws::shard

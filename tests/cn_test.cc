#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "core/cn/candidate_network.h"
#include "core/cn/execute.h"
#include "core/cn/search.h"
#include "core/cn/spark.h"
#include "core/cn/tuple_sets.h"
#include "relational/database.h"
#include "relational/dblp.h"

namespace kws::cn {
namespace {

using relational::Database;
using relational::Row;
using relational::TableSchema;
using relational::Value;
using relational::ValueType;

/// The tutorial's running example: author -- writes -- paper, with
/// hand-picked rows so expected results are known.
///
///   author: (0 widom), (1 john xml), (2 mark)
///   paper:  (0 "xml keyword search"), (1 "join processing"),
///           (2 "widom systems")
///   writes: widom->p0, john->p1, mark->p0, widom->p1
struct MiniDb {
  std::unique_ptr<Database> db;
  relational::TableId author, paper, writes;

  MiniDb() : db(std::make_unique<Database>()) {
    TableSchema a;
    a.name = "author";
    a.columns = {{"aid", ValueType::kInt, false},
                 {"name", ValueType::kText, true}};
    a.primary_key = 0;
    author = db->CreateTable(a).value();
    TableSchema p;
    p.name = "paper";
    p.columns = {{"pid", ValueType::kInt, false},
                 {"title", ValueType::kText, true}};
    p.primary_key = 0;
    paper = db->CreateTable(p).value();
    TableSchema w;
    w.name = "writes";
    w.columns = {{"wid", ValueType::kInt, false},
                 {"aid", ValueType::kInt, false},
                 {"pid", ValueType::kInt, false}};
    w.primary_key = 0;
    writes = db->CreateTable(w).value();

    auto& at = db->table(author);
    at.Append({Value::Int(0), Value::Text("widom")}).value();
    at.Append({Value::Int(1), Value::Text("john xml")}).value();
    at.Append({Value::Int(2), Value::Text("mark")}).value();
    auto& pt = db->table(paper);
    pt.Append({Value::Int(0), Value::Text("xml keyword search")}).value();
    pt.Append({Value::Int(1), Value::Text("join processing")}).value();
    pt.Append({Value::Int(2), Value::Text("widom systems")}).value();
    auto& wt = db->table(writes);
    wt.Append({Value::Int(0), Value::Int(0), Value::Int(0)}).value();
    wt.Append({Value::Int(1), Value::Int(1), Value::Int(1)}).value();
    wt.Append({Value::Int(2), Value::Int(2), Value::Int(0)}).value();
    wt.Append({Value::Int(3), Value::Int(0), Value::Int(1)}).value();

    EXPECT_TRUE(db->AddForeignKey("writes", "aid", "author", "aid").ok());
    EXPECT_TRUE(db->AddForeignKey("writes", "pid", "paper", "pid").ok());
    db->BuildTextIndexes();
  }
};

TEST(TupleSetsTest, ExactMasks) {
  MiniDb mini;
  TupleSets ts(*mini.db, {"widom", "xml"});
  EXPECT_EQ(ts.full_mask(), 3u);
  EXPECT_EQ(ts.table_mask(mini.author), 3u);
  EXPECT_EQ(ts.table_mask(mini.paper), 3u);
  EXPECT_EQ(ts.table_mask(mini.writes), 0u);
  // author 0 matches exactly {widom}, author 1 exactly {xml}.
  EXPECT_EQ(ts.RowMask(mini.author, 0), 1u);
  EXPECT_EQ(ts.RowMask(mini.author, 1), 2u);
  EXPECT_EQ(ts.RowMask(mini.author, 2), 0u);
  EXPECT_EQ(ts.Get(mini.author, 1).size(), 1u);
  EXPECT_EQ(ts.Get(mini.author, 3).size(), 0u);
  EXPECT_TRUE(ts.Matches(mini.author, 2, 0));
  EXPECT_FALSE(ts.Matches(mini.author, 0, 0));
}

TEST(TupleSetsTest, ScoresPositiveAndSorted) {
  MiniDb mini;
  TupleSets ts(*mini.db, {"xml"});
  const auto& rows = ts.Get(mini.paper, 1);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_GT(rows[0].score, 0.0);
  EXPECT_EQ(ts.MaxScore(mini.paper, 1), rows[0].score);
  EXPECT_GT(ts.Idf(0), 0.0);
}

TEST(TupleSetsTest, TermFrequencies) {
  MiniDb mini;
  TupleSets ts(*mini.db, {"xml", "widom"});
  EXPECT_EQ(ts.RowTf(mini.paper, 0, 0), 1u);
  EXPECT_EQ(ts.RowTf(mini.paper, 0, 1), 0u);
  EXPECT_EQ(ts.RowTf(mini.writes, 0, 0), 0u);
}

std::vector<KeywordMask> FullMasks(const Database& db, KeywordMask m,
                                   relational::TableId except) {
  std::vector<KeywordMask> masks(db.num_tables(), m);
  masks[except] = 0;
  return masks;
}

TEST(CnEnumTest, Slide28Networks) {
  MiniDb mini;
  // Both keywords can occur in author and paper, none in writes —
  // the exact setting of tutorial slide 28.
  auto masks = FullMasks(*mini.db, 3u, mini.writes);
  auto cns = EnumerateCandidateNetworks(*mini.db, masks, 3u,
                                        {.max_size = 5});
  ASSERT_FALSE(cns.empty());
  // Every CN is valid: full coverage, non-free necessary leaves.
  for (const auto& cn : cns) {
    EXPECT_EQ(cn.Coverage(), 3u);
    EXPECT_EQ(cn.edges.size(), cn.nodes.size() - 1);
  }
  // Expected members (slide 28): single-node A{both}, P{both};
  // A{k} - W - P{k'}; the size-5 "two authors one paper" and
  // "one author two papers" shapes.
  size_t size1 = 0, size3 = 0, size5 = 0;
  for (const auto& cn : cns) {
    if (cn.size() == 1) ++size1;
    if (cn.size() == 3) ++size3;
    if (cn.size() == 5) ++size5;
    EXPECT_NE(cn.size(), 2u);  // A-W or W-P alone can never be valid
  }
  EXPECT_EQ(size1, 2u);  // author{widom xml}, paper{widom xml}
  EXPECT_EQ(size3, 2u);  // author{widom}-W-paper{xml} and the swap
  EXPECT_GT(size5, 0u);
}

TEST(CnEnumTest, DuplicateFree) {
  MiniDb mini;
  auto masks = FullMasks(*mini.db, 3u, mini.writes);
  auto cns = EnumerateCandidateNetworks(*mini.db, masks, 3u,
                                        {.max_size = 5});
  std::set<std::string> keys;
  for (const auto& cn : cns) {
    EXPECT_TRUE(keys.insert(cn.CanonicalKey()).second)
        << "duplicate CN: " << cn.ToString(*mini.db, {"widom", "xml"});
  }
}

TEST(CnEnumTest, GrowsWithMaxSize) {
  MiniDb mini;
  auto masks = FullMasks(*mini.db, 3u, mini.writes);
  const size_t n3 =
      EnumerateCandidateNetworks(*mini.db, masks, 3u, {.max_size = 3}).size();
  const size_t n5 =
      EnumerateCandidateNetworks(*mini.db, masks, 3u, {.max_size = 5}).size();
  const size_t n7 =
      EnumerateCandidateNetworks(*mini.db, masks, 3u, {.max_size = 7}).size();
  EXPECT_LT(n3, n5);
  EXPECT_LT(n5, n7);
}

TEST(CnEnumTest, RespectsTableMasks) {
  MiniDb mini;
  // widom only in author, xml only in paper.
  std::vector<KeywordMask> masks(mini.db->num_tables(), 0);
  masks[mini.author] = 1u;
  masks[mini.paper] = 2u;
  auto cns = EnumerateCandidateNetworks(*mini.db, masks, 3u,
                                        {.max_size = 3});
  ASSERT_EQ(cns.size(), 1u);
  EXPECT_EQ(cns[0].size(), 3u);
  // The single CN is author{widom} - writes - paper{xml}.
  std::multiset<std::pair<relational::TableId, KeywordMask>> got;
  for (const CnNode& n : cns[0].nodes) got.emplace(n.table, n.mask);
  std::multiset<std::pair<relational::TableId, KeywordMask>> want = {
      {mini.author, 1u}, {mini.writes, 0u}, {mini.paper, 2u}};
  EXPECT_EQ(got, want);
}

TEST(CnEnumTest, CanonicalKeyInvariantUnderRelabeling) {
  MiniDb mini;
  // Build A{1} - W - P{2} with two different node orders.
  CandidateNetwork a;
  a.nodes = {{mini.author, 1}, {mini.writes, 0}, {mini.paper, 2}};
  a.edges = {{1, 0, 0, true}, {1, 2, 1, true}};
  CandidateNetwork b;
  b.nodes = {{mini.paper, 2}, {mini.author, 1}, {mini.writes, 0}};
  b.edges = {{2, 0, 1, true}, {2, 1, 0, true}};
  EXPECT_EQ(a.CanonicalKey(), b.CanonicalKey());
  // Different mask assignment is a different CN.
  CandidateNetwork c = a;
  c.nodes[0].mask = 2;
  c.nodes[2].mask = 1;
  EXPECT_NE(a.CanonicalKey(), c.CanonicalKey());
}

TEST(ExecuteCnTest, JoinsExpectedTuples) {
  MiniDb mini;
  TupleSets ts(*mini.db, {"widom", "xml"});
  // author{widom} - writes - paper{xml}
  CandidateNetwork cn;
  cn.nodes = {{mini.author, 1}, {mini.writes, 0}, {mini.paper, 2}};
  cn.edges = {{1, 0, 0, true}, {1, 2, 1, true}};
  auto results = ExecuteCn(*mini.db, cn, ts);
  // widom wrote p0 ("xml keyword search") via w0. p0 matches exactly
  // {xml}. widom->p1 does not match. So exactly one result.
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].rows[0], 0u);  // author widom
  EXPECT_EQ(results[0].rows[2], 0u);  // paper xml keyword search
  EXPECT_GT(results[0].score, 0.0);
}

TEST(ExecuteCnTest, FixedRowsConstrainResults) {
  MiniDb mini;
  TupleSets ts(*mini.db, {"widom", "xml"});
  CandidateNetwork cn;
  cn.nodes = {{mini.author, 1}, {mini.writes, 0}, {mini.paper, 2}};
  cn.edges = {{1, 0, 0, true}, {1, 2, 1, true}};
  std::vector<std::optional<relational::RowId>> fixed(3);
  fixed[0] = 0;  // widom
  fixed[2] = 0;  // the xml paper
  EXPECT_EQ(ExecuteCn(*mini.db, cn, ts, fixed).size(), 1u);
  fixed[2] = 1;  // "join processing" does not match {xml}
  EXPECT_TRUE(ExecuteCn(*mini.db, cn, ts, fixed).empty());
}

TEST(ExecuteCnTest, LimitCapsResults) {
  MiniDb mini;
  TupleSets ts(*mini.db, {"widom"});
  // author{widom} - writes (writes rows are keyword-free): widom wrote
  // two papers, so the CN author{widom}-W has 2 results... but W leaf is
  // free; execute directly regardless (executor does not re-validate).
  CandidateNetwork cn;
  cn.nodes = {{mini.author, 1}, {mini.writes, 0}};
  cn.edges = {{1, 0, 0, true}};
  EXPECT_EQ(ExecuteCn(*mini.db, cn, ts).size(), 2u);
  EXPECT_EQ(ExecuteCn(*mini.db, cn, ts, {}, 1).size(), 1u);
}

TEST(ExecuteCnTest, ScoreBoundDominatesResults) {
  MiniDb mini;
  TupleSets ts(*mini.db, {"widom", "xml"});
  CandidateNetwork cn;
  cn.nodes = {{mini.author, 1}, {mini.writes, 0}, {mini.paper, 2}};
  cn.edges = {{1, 0, 0, true}, {1, 2, 1, true}};
  const double bound = CnScoreBound(cn, ts);
  for (const auto& jt : ExecuteCn(*mini.db, cn, ts)) {
    EXPECT_LE(jt.score, bound + 1e-12);
  }
}

TEST(SearchTest, FindsWidomXmlConnection) {
  MiniDb mini;
  CnKeywordSearch search(*mini.db);
  std::vector<CandidateNetwork> cns;
  auto results = search.Search("widom xml", {.k = 10}, &cns);
  ASSERT_FALSE(results.empty());
  // Top results must include the author0-writes0-paper0 join.
  bool found = false;
  for (const auto& r : results) {
    std::set<std::pair<relational::TableId, relational::RowId>> tuples;
    for (const auto& t : r.tuples) tuples.emplace(t.table, t.row);
    if (tuples.count({mini.author, 0}) && tuples.count({mini.paper, 0})) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(SearchTest, EmptyQueryGivesNoResults) {
  MiniDb mini;
  CnKeywordSearch search(*mini.db);
  EXPECT_TRUE(search.Search("", {.k = 5}, nullptr).empty());
  EXPECT_TRUE(search.Search("zzzzz", {.k = 5}, nullptr).empty());
}

/// Property: all three strategies return the same top-k score sequence.
class StrategyAgreementTest
    : public ::testing::TestWithParam<std::tuple<const char*, size_t>> {};

TEST_P(StrategyAgreementTest, SameTopKScores) {
  const std::string query = std::get<0>(GetParam());
  const size_t k = std::get<1>(GetParam());
  relational::DblpOptions opts;
  opts.num_authors = 80;
  opts.num_papers = 150;
  opts.num_conferences = 8;
  relational::DblpDatabase dblp = MakeDblpDatabase(opts);
  CnKeywordSearch search(*dblp.db);

  auto run = [&](Strategy s) {
    SearchOptions so;
    so.k = k;
    so.max_cn_size = 4;
    so.strategy = s;
    return search.Search(query, so, nullptr);
  };
  auto naive = run(Strategy::kNaive);
  auto sparse = run(Strategy::kSparse);
  auto pipeline = run(Strategy::kGlobalPipeline);
  ASSERT_EQ(naive.size(), sparse.size());
  ASSERT_EQ(naive.size(), pipeline.size());
  for (size_t i = 0; i < naive.size(); ++i) {
    EXPECT_NEAR(naive[i].score, sparse[i].score, 1e-9) << "rank " << i;
    EXPECT_NEAR(naive[i].score, pipeline[i].score, 1e-9) << "rank " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, StrategyAgreementTest,
    ::testing::Combine(::testing::Values("keyword search", "database query",
                                         "james chen", "xml"),
                       ::testing::Values(1, 5, 20)));

TEST(SearchStatsTest, SparseEvaluatesFewerCnsThanNaive) {
  relational::DblpOptions opts;
  opts.num_authors = 100;
  opts.num_papers = 200;
  relational::DblpDatabase dblp = MakeDblpDatabase(opts);
  CnKeywordSearch search(*dblp.db);
  SearchStats naive_stats, sparse_stats;
  SearchOptions so;
  so.k = 5;
  so.max_cn_size = 4;
  so.strategy = Strategy::kNaive;
  search.Search("keyword search", so, nullptr, &naive_stats);
  so.strategy = Strategy::kSparse;
  search.Search("keyword search", so, nullptr, &sparse_stats);
  EXPECT_EQ(naive_stats.cns_enumerated, sparse_stats.cns_enumerated);
  EXPECT_LE(sparse_stats.cns_evaluated, naive_stats.cns_evaluated);
  EXPECT_LE(sparse_stats.results_materialized,
            naive_stats.results_materialized);
}

/// Garbage-filled stats handed to an early-returning Search must come
/// back fully reset: Search value-initializes `*stats` on entry, so no
/// exit path can leak a previous query's numbers.
SearchStats GarbageStats() {
  SearchStats s;
  s.cns_enumerated = 111;
  s.cns_evaluated = 222;
  s.results_materialized = 333;
  s.join_lookups = 444;
  s.candidates_verified = 555;
  s.deadline_hit = true;
  return s;
}

TEST(SearchStatsTest, EmptyQueryResetsReusedStats) {
  MiniDb mini;
  CnKeywordSearch search(*mini.db);
  SearchStats stats = GarbageStats();
  EXPECT_TRUE(search.Search("", {}, nullptr, &stats).empty());
  EXPECT_EQ(stats.cns_enumerated, 0u);
  EXPECT_EQ(stats.cns_evaluated, 0u);
  EXPECT_EQ(stats.results_materialized, 0u);
  EXPECT_EQ(stats.join_lookups, 0u);
  EXPECT_EQ(stats.candidates_verified, 0u);
  EXPECT_FALSE(stats.deadline_hit);
}

TEST(SearchStatsTest, NoMatchQueryResetsReusedStats) {
  MiniDb mini;
  CnKeywordSearch search(*mini.db);
  SearchStats stats = GarbageStats();
  EXPECT_TRUE(
      search.Search("zzzznothing qqqqnomatch", {}, nullptr, &stats).empty());
  EXPECT_EQ(stats.cns_evaluated, 0u);
  EXPECT_EQ(stats.results_materialized, 0u);
  EXPECT_FALSE(stats.deadline_hit);
}

TEST(SearchStatsTest, ExpiredDeadlineResetsStatsThenMarksTheHit) {
  MiniDb mini;
  CnKeywordSearch search(*mini.db);
  for (Strategy strategy :
       {Strategy::kNaive, Strategy::kSparse, Strategy::kGlobalPipeline}) {
    SearchStats stats = GarbageStats();
    SearchOptions so;
    so.strategy = strategy;
    so.deadline = Deadline::AfterMicros(0);
    search.Search("widom xml", so, nullptr, &stats);
    EXPECT_TRUE(stats.deadline_hit) << StrategyToString(strategy);
    // Everything else restarted from zero, so no counter can still carry
    // the garbage watermark.
    EXPECT_LT(stats.results_materialized, 333u) << StrategyToString(strategy);
    EXPECT_LT(stats.join_lookups, 444u) << StrategyToString(strategy);
    EXPECT_LT(stats.candidates_verified, 555u) << StrategyToString(strategy);
  }
}

/// Property: SPARK algorithms agree with the naive reference.
class SparkAgreementTest : public ::testing::TestWithParam<const char*> {};

TEST_P(SparkAgreementTest, SameTopKScores) {
  const std::string query = GetParam();
  relational::DblpOptions opts;
  opts.num_authors = 60;
  opts.num_papers = 120;
  relational::DblpDatabase dblp = MakeDblpDatabase(opts);
  SparkSearch search(*dblp.db);
  auto run = [&](SparkAlgorithm a) {
    SparkOptions so;
    so.k = 10;
    so.max_cn_size = 4;
    so.algorithm = a;
    return search.Search(query, so, nullptr);
  };
  auto naive = run(SparkAlgorithm::kNaive);
  auto sweep = run(SparkAlgorithm::kSkylineSweep);
  auto block = run(SparkAlgorithm::kBlockPipeline);
  ASSERT_EQ(naive.size(), sweep.size());
  ASSERT_EQ(naive.size(), block.size());
  for (size_t i = 0; i < naive.size(); ++i) {
    EXPECT_NEAR(naive[i].score, sweep[i].score, 1e-9) << "rank " << i;
    EXPECT_NEAR(naive[i].score, block[i].score, 1e-9) << "rank " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, SparkAgreementTest,
                         ::testing::Values("keyword search", "database",
                                           "james chen"));

TEST(SparkScoreTest, VirtualDocumentSublinearity) {
  MiniDb mini;
  TupleSets ts(*mini.db, {"xml"});
  // Two results: author{xml} alone (tf=1) vs a tree where xml appears in
  // author and paper (tf=2). The combined tree's score must be less than
  // the sum of the parts' (1+ln tf) contributions — that is the
  // non-monotonicity SPARK handles.
  CandidateNetwork single;
  single.nodes = {{mini.author, 1}};
  const double s1 = SparkScore(single, ts, {1});
  CandidateNetwork tree;
  tree.nodes = {{mini.author, 1}, {mini.writes, 0}, {mini.paper, 1}};
  tree.edges = {{1, 0, 0, true}, {1, 2, 1, true}};
  const double s3 = SparkScore(tree, ts, {1, 1, 0});
  // Virtual document: tf=2 -> (1+ln2)*idf / penalty(3).
  EXPECT_GT(s1, 0.0);
  EXPECT_GT(s3, 0.0);
  EXPECT_LT(s3, 2 * s1);  // dampened + size-penalized
}

TEST(SparkStatsTest, SweepScoresFewerCandidatesThanNaive) {
  relational::DblpOptions opts;
  opts.num_authors = 100;
  opts.num_papers = 200;
  relational::DblpDatabase dblp = MakeDblpDatabase(opts);
  SparkSearch search(*dblp.db);
  SparkStats naive_stats, sweep_stats;
  SparkOptions so;
  so.k = 5;
  so.max_cn_size = 4;
  so.algorithm = SparkAlgorithm::kNaive;
  search.Search("keyword search", so, nullptr, &naive_stats);
  so.algorithm = SparkAlgorithm::kSkylineSweep;
  search.Search("keyword search", so, nullptr, &sweep_stats);
  EXPECT_LT(sweep_stats.candidates_scored, naive_stats.candidates_scored);
}

}  // namespace
}  // namespace kws::cn

// ------------------------------------------------- semijoin reduction

#include "core/cn/semijoin.h"

namespace kws::cn {
namespace {

class SemiJoinOracleTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SemiJoinOracleTest, SameResultsAsPlainExecution) {
  relational::DblpOptions opts;
  opts.seed = GetParam();
  opts.num_authors = 30;
  opts.num_papers = 60;
  relational::DblpDatabase dblp = MakeDblpDatabase(opts);
  TupleSets ts(*dblp.db, {"keyword", "search"});
  auto cns = EnumerateCandidateNetworks(*dblp.db, ts.table_masks(),
                                        ts.full_mask(), {.max_size = 4});
  for (const auto& network : cns) {
    auto plain = ExecuteCn(*dblp.db, network, ts);
    SemiJoinStats sj;
    auto reduced = ExecuteCnSemiJoin(*dblp.db, network, ts, &sj);
    std::vector<std::vector<relational::RowId>> a, b;
    for (const auto& jt : plain) a.push_back(jt.rows);
    for (const auto& jt : reduced) b.push_back(jt.rows);
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b);
    EXPECT_LE(sj.rows_after, sj.rows_before);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, SemiJoinOracleTest,
                         ::testing::Values(3, 5, 8));

TEST(SemiJoinTest, FullReducerKeepsOnlyParticipants) {
  MiniDb mini;
  TupleSets ts(*mini.db, {"widom", "xml"});
  CandidateNetwork cn;
  cn.nodes = {{mini.author, 1}, {mini.writes, 0}, {mini.paper, 2}};
  cn.edges = {{1, 0, 0, true}, {1, 2, 1, true}};
  auto sets = SemiJoinReduce(*mini.db, cn, ts);
  // The only result is widom(a0) - w0 - p0: after full reduction every
  // set holds exactly the participating row.
  ASSERT_EQ(sets.size(), 3u);
  EXPECT_EQ(sets[0], (std::vector<relational::RowId>{0}));
  EXPECT_EQ(sets[1], (std::vector<relational::RowId>{0}));
  EXPECT_EQ(sets[2], (std::vector<relational::RowId>{0}));
}

TEST(SemiJoinTest, EmptySetShortCircuits) {
  MiniDb mini;
  TupleSets ts(*mini.db, {"widom", "nonexistent"});
  CandidateNetwork cn;
  cn.nodes = {{mini.author, 1}, {mini.writes, 0}, {mini.paper, 2}};
  cn.edges = {{1, 0, 0, true}, {1, 2, 1, true}};
  EXPECT_TRUE(ExecuteCnSemiJoin(*mini.db, cn, ts).empty());
}

}  // namespace
}  // namespace kws::cn

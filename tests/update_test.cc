// Oracle tests for live inserts: incremental index maintenance,
// incremental tuple sets, continual top-k queries, and the serve layer's
// write-invalidation protocol. The central contract everywhere is
// bit-identity with a from-scratch rebuild over the post-insert database.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "common/deadline.h"
#include "core/cn/continual.h"
#include "core/cn/stream.h"
#include "core/cn/tuple_set_cache.h"
#include "core/cn/tuple_sets.h"
#include "core/engine/engine.h"
#include "relational/database.h"
#include "relational/dblp.h"
#include "serve/cache.h"
#include "serve/server.h"

namespace kws {
namespace {

using relational::DblpDatabase;
using relational::DblpInsertOptions;
using relational::DblpOptions;
using relational::MakeDblpDatabase;
using relational::MakeDblpInsertBatch;
using relational::RowInsert;
using relational::WriteReport;

DblpOptions SmallDblp(uint64_t seed) {
  DblpOptions opts;
  opts.seed = seed;
  opts.num_conferences = 6;
  opts.num_authors = 30;
  opts.num_papers = 60;
  opts.vocab_size = 80;
  return opts;
}

DblpInsertOptions BatchOptions(uint64_t seed, size_t papers) {
  DblpInsertOptions opts;
  opts.seed = seed;
  opts.num_papers = papers;
  opts.num_authors = papers >= 4 ? 2 : 1;
  return opts;
}

// The query keywords: frequent vocabulary terms, so tuple sets and CNs
// are non-trivial on the small corpus.
std::vector<std::string> QueryKeywords(const DblpDatabase& dblp) {
  return {dblp.vocabulary[0], dblp.vocabulary[1]};
}

// ---------------------------------------------------------------------------
// Database::ApplyInserts semantics.

TEST(ApplyInsertsTest, AppendsRowsReportsTermsAndBumpsEpoch) {
  DblpDatabase dblp = MakeDblpDatabase(SmallDblp(42));
  relational::Database& db = *dblp.db;
  EXPECT_EQ(db.epoch(), 0u);
  const size_t papers_before = db.table(dblp.paper).num_rows();

  std::vector<RowInsert> batch = MakeDblpInsertBatch(dblp, BatchOptions(7, 4));
  ASSERT_FALSE(batch.empty());
  const Result<WriteReport> applied = db.ApplyInserts(batch);
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  const WriteReport& report = applied.value();

  EXPECT_EQ(report.epoch, 1u);
  EXPECT_EQ(db.epoch(), 1u);
  // Every batch row landed, in order, with monotone row ids.
  ASSERT_EQ(report.inserted.size(), batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(report.inserted[i].table, batch[i].table);
  }
  EXPECT_EQ(db.table(dblp.paper).num_rows(), papers_before + 4);
  // Touched terms: sorted, deduplicated, and non-empty (titles carry
  // text); they must all be findable in the updated paper index.
  ASSERT_FALSE(report.touched_terms.empty());
  EXPECT_TRUE(std::is_sorted(report.touched_terms.begin(),
                             report.touched_terms.end()));
  EXPECT_EQ(std::adjacent_find(report.touched_terms.begin(),
                               report.touched_terms.end()),
            report.touched_terms.end());
}

TEST(ApplyInsertsTest, RejectedBatchLeavesDatabaseUntouched) {
  DblpDatabase dblp = MakeDblpDatabase(SmallDblp(42));
  relational::Database& db = *dblp.db;
  const size_t rows_before = db.TotalRows();

  // Primary key 0 already exists in author.
  RowInsert dup;
  dup.table = dblp.author;
  dup.row = {relational::Value::Int(0), relational::Value::Text("someone")};
  const Result<WriteReport> applied = db.ApplyInserts({dup});
  ASSERT_FALSE(applied.ok());
  EXPECT_EQ(applied.status().code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(db.TotalRows(), rows_before);
  EXPECT_EQ(db.epoch(), 0u);
}

TEST(ApplyInsertsTest, IntraBatchDuplicatePkRejectsWholeBatch) {
  DblpDatabase dblp = MakeDblpDatabase(SmallDblp(42));
  relational::Database& db = *dblp.db;
  const size_t rows_before = db.TotalRows();
  const int64_t fresh_pk =
      static_cast<int64_t>(db.table(dblp.author).num_rows());

  RowInsert a;
  a.table = dblp.author;
  a.row = {relational::Value::Int(fresh_pk), relational::Value::Text("one")};
  RowInsert b;
  b.table = dblp.author;
  b.row = {relational::Value::Int(fresh_pk), relational::Value::Text("two")};
  const Result<WriteReport> applied = db.ApplyInserts({a, b});
  ASSERT_FALSE(applied.ok());
  EXPECT_EQ(db.TotalRows(), rows_before);
  EXPECT_EQ(db.epoch(), 0u);
}

TEST(ApplyInsertsTest, EmptyBatchDoesNotBumpEpoch) {
  DblpDatabase dblp = MakeDblpDatabase(SmallDblp(42));
  const Result<WriteReport> applied = dblp.db->ApplyInserts({});
  ASSERT_TRUE(applied.ok());
  EXPECT_TRUE(applied.value().inserted.empty());
  EXPECT_EQ(applied.value().epoch, 0u);
  EXPECT_EQ(dblp.db->epoch(), 0u);
}

// ---------------------------------------------------------------------------
// Incremental index maintenance vs. a from-scratch rebuild.

void ExpectSameIndexes(const relational::Database& incremental,
                       const relational::Database& rebuilt) {
  ASSERT_EQ(incremental.num_tables(), rebuilt.num_tables());
  for (relational::TableId t = 0; t < incremental.num_tables(); ++t) {
    const text::InvertedIndex& a = incremental.TextIndex(t);
    const text::InvertedIndex& b = rebuilt.TextIndex(t);
    EXPECT_EQ(a.num_docs(), b.num_docs()) << "table " << t;
    std::vector<std::string> va = a.Vocabulary();
    std::vector<std::string> vb = b.Vocabulary();
    std::sort(va.begin(), va.end());
    std::sort(vb.begin(), vb.end());
    ASSERT_EQ(va, vb) << "table " << t;
    for (const std::string& term : va) {
      const text::PostingList& pa = a.GetPostings(term);
      const text::PostingList& pb = b.GetPostings(term);
      ASSERT_EQ(pa.docs(), pb.docs()) << "table " << t << " term " << term;
      ASSERT_EQ(pa.tfs(), pb.tfs()) << "table " << t << " term " << term;
    }
    for (relational::RowId r = 0; r < incremental.table(t).num_rows(); ++r) {
      ASSERT_EQ(a.DocLength(r), b.DocLength(r))
          << "table " << t << " row " << r;
    }
  }
}

TEST(ApplyInsertsTest, IncrementalIndexMatchesFromScratchRebuild) {
  const DblpOptions base = SmallDblp(42);
  DblpDatabase live = MakeDblpDatabase(base);
  DblpDatabase reference = MakeDblpDatabase(base);

  for (size_t b = 0; b < 4; ++b) {
    const std::vector<RowInsert> batch =
        MakeDblpInsertBatch(live, BatchOptions(100 + b, 3 + b));
    ASSERT_TRUE(live.db->ApplyInserts(batch).ok());
    // Reference path: raw appends, then the bulk index rebuild.
    for (const RowInsert& ins : batch) {
      relational::Row row = ins.row;
      ASSERT_TRUE(
          reference.db->table(ins.table).Append(std::move(row)).ok());
    }
    reference.db->BuildTextIndexes();
    ExpectSameIndexes(*live.db, *reference.db);
  }
}

// ---------------------------------------------------------------------------
// TupleSets::ApplyInserts vs. fresh construction — the tentpole oracle.

void ExpectSameTupleSets(const relational::Database& db,
                         const cn::TupleSets& incremental,
                         const cn::TupleSets& fresh) {
  ASSERT_FALSE(incremental.truncated());
  ASSERT_FALSE(fresh.truncated());
  ASSERT_EQ(incremental.num_keywords(), fresh.num_keywords());
  EXPECT_EQ(incremental.table_masks(), fresh.table_masks());
  for (size_t k = 0; k < incremental.num_keywords(); ++k) {
    // Bit-identical, not just close: both sides must run the exact same
    // smoothed-IDF arithmetic over the exact same df / corpus size.
    ASSERT_EQ(incremental.Idf(k), fresh.Idf(k)) << "keyword " << k;
  }
  for (relational::TableId t = 0; t < db.num_tables(); ++t) {
    for (relational::RowId r = 0; r < db.table(t).num_rows(); ++r) {
      ASSERT_EQ(incremental.RowMask(t, r), fresh.RowMask(t, r))
          << "table " << t << " row " << r;
      ASSERT_EQ(incremental.RowScore(t, r), fresh.RowScore(t, r))
          << "table " << t << " row " << r;
      for (size_t k = 0; k < incremental.num_keywords(); ++k) {
        ASSERT_EQ(incremental.RowTf(t, r, k), fresh.RowTf(t, r, k))
            << "table " << t << " row " << r << " keyword " << k;
      }
    }
    for (cn::KeywordMask m = 1; m <= fresh.full_mask(); ++m) {
      const std::vector<cn::ScoredRow>& ia = incremental.Get(t, m);
      const std::vector<cn::ScoredRow>& fa = fresh.Get(t, m);
      ASSERT_EQ(ia.size(), fa.size()) << "table " << t << " mask " << m;
      for (size_t i = 0; i < ia.size(); ++i) {
        ASSERT_EQ(ia[i].row, fa[i].row);
        ASSERT_EQ(ia[i].score, fa[i].score);
      }
    }
  }
}

class TupleSetsUpdateOracle
    : public ::testing::TestWithParam<std::tuple<uint64_t, size_t>> {};

TEST_P(TupleSetsUpdateOracle, IncrementalMatchesFreshConstruction) {
  const uint64_t seed = std::get<0>(GetParam());
  const size_t batch_papers = std::get<1>(GetParam());
  DblpDatabase dblp = MakeDblpDatabase(SmallDblp(seed));
  relational::Database& db = *dblp.db;
  const std::vector<std::string> keywords = QueryKeywords(dblp);

  cn::TupleSets live(db, keywords);
  for (size_t b = 0; b < 3; ++b) {
    const std::vector<RowInsert> batch = MakeDblpInsertBatch(
        dblp, BatchOptions(seed * 100 + b, batch_papers));
    const Result<WriteReport> applied = db.ApplyInserts(batch);
    ASSERT_TRUE(applied.ok()) << applied.status().ToString();
    ASSERT_TRUE(live.ApplyInserts(db, applied.value().inserted).ok());
    const cn::TupleSets fresh(db, keywords);
    ExpectSameTupleSets(db, live, fresh);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndBatchSizes, TupleSetsUpdateOracle,
    ::testing::Combine(::testing::Values<uint64_t>(42, 43, 44, 45),
                       ::testing::Values<size_t>(1, 4, 12)));

// ---------------------------------------------------------------------------
// ContinualQuery vs. a freshly registered query — standing top-k oracle.

void ExpectSameResults(const std::vector<cn::SearchResult>& a,
                       const std::vector<cn::SearchResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].cn_index, b[i].cn_index) << "rank " << i;
    ASSERT_EQ(a[i].score, b[i].score) << "rank " << i;
    ASSERT_EQ(a[i].tuples, b[i].tuples) << "rank " << i;
  }
}

class ContinualQueryOracle
    : public ::testing::TestWithParam<std::tuple<uint64_t, size_t>> {};

TEST_P(ContinualQueryOracle, PropagatedTopKMatchesFreshRegistration) {
  const uint64_t seed = std::get<0>(GetParam());
  const size_t num_threads = std::get<1>(GetParam());
  DblpDatabase dblp = MakeDblpDatabase(SmallDblp(seed));
  relational::Database& db = *dblp.db;
  const std::vector<std::string> keywords = QueryKeywords(dblp);

  cn::ContinualOptions opts;
  opts.k = 10;
  opts.num_threads = num_threads;
  cn::ContinualQuery standing(db, keywords, opts);
  cn::ContinualStats stats;
  for (size_t b = 0; b < 3; ++b) {
    const std::vector<RowInsert> batch =
        MakeDblpInsertBatch(dblp, BatchOptions(seed * 10 + b, 5));
    const Result<WriteReport> applied = db.ApplyInserts(batch);
    ASSERT_TRUE(applied.ok()) << applied.status().ToString();
    ASSERT_TRUE(standing.OnInsertBatch(applied.value().inserted, {}, &stats)
                    .ok());
    ASSERT_FALSE(standing.stale());
    // The oracle: registering the same query fresh over the post-insert
    // database (full enumeration + evaluation, serial) must agree
    // bit-for-bit — full standing set and top-k alike.
    const cn::ContinualQuery fresh(db, keywords);
    ExpectSameResults(standing.results(), fresh.results());
    ExpectSameResults(standing.TopK(), fresh.TopK());
  }
  EXPECT_EQ(stats.batches, 3u);
  EXPECT_GT(stats.inserts, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndThreads, ContinualQueryOracle,
    ::testing::Combine(::testing::Values<uint64_t>(42, 77, 123),
                       ::testing::Values<size_t>(1, 2, 4)));

TEST(ContinualQueryTest, MaskWideningBatchForcesWorkloadRebuild) {
  DblpDatabase dblp = MakeDblpDatabase(SmallDblp(42));
  relational::Database& db = *dblp.db;
  // "zzzunique" appears nowhere, so the author table's mask for it is 0
  // until the insert lands — the batch must widen the mask and trigger
  // CN re-enumeration.
  const std::vector<std::string> keywords = {dblp.vocabulary[0], "zzzunique"};
  cn::ContinualQuery standing(db, keywords);

  RowInsert ins;
  ins.table = dblp.author;
  ins.row = {relational::Value::Int(
                 static_cast<int64_t>(db.table(dblp.author).num_rows())),
             relational::Value::Text("zzzunique")};
  const Result<WriteReport> applied = db.ApplyInserts({ins});
  ASSERT_TRUE(applied.ok());
  cn::ContinualStats stats;
  ASSERT_TRUE(
      standing.OnInsertBatch(applied.value().inserted, {}, &stats).ok());
  EXPECT_EQ(stats.full_rebuilds, 1u);
  const cn::ContinualQuery fresh(db, keywords);
  ExpectSameResults(standing.results(), fresh.results());
}

// ---------------------------------------------------------------------------
// S1: deadlines through the incremental paths.

TEST(UpdateDeadlineTest, ExpiredDeadlineTruncatesTupleSetApply) {
  DblpDatabase dblp = MakeDblpDatabase(SmallDblp(42));
  relational::Database& db = *dblp.db;
  cn::TupleSets live(db, QueryKeywords(dblp));
  const Result<WriteReport> applied =
      db.ApplyInserts(MakeDblpInsertBatch(dblp, BatchOptions(7, 4)));
  ASSERT_TRUE(applied.ok());
  const Status s = live.ApplyInserts(db, applied.value().inserted,
                                     Deadline::AfterMicros(0));
  EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(live.truncated());
  // A truncated object refuses further incremental work.
  EXPECT_EQ(live.ApplyInserts(db, applied.value().inserted).code(),
            StatusCode::kFailedPrecondition);
}

TEST(UpdateDeadlineTest, StreamProbeHonorsDeadlineWithPartialEmission) {
  DblpDatabase dblp = MakeDblpDatabase(SmallDblp(42));
  relational::Database& db = *dblp.db;
  const std::vector<std::string> keywords = QueryKeywords(dblp);
  cn::TupleSets ts(db, keywords);
  cn::CnEnumOptions eo;
  std::vector<cn::CandidateNetwork> cns = cn::EnumerateCandidateNetworks(
      db, ts.table_masks(), ts.full_mask(), eo);
  ASSERT_FALSE(cns.empty());
  cn::StreamEvaluator eval(db, std::move(cns), std::move(ts));
  eval.MarkAllArrived();

  // Find a tuple whose unconstrained probe emits something, then probe it
  // again with an expired deadline: the status must report the cut and
  // the tuple must stay marked arrived.
  for (relational::RowId r = 0; r < db.table(dblp.paper).num_rows(); ++r) {
    const relational::TupleId tuple{dblp.paper, r};
    std::vector<cn::SearchResult> full;
    ASSERT_TRUE(eval.Probe(tuple, &full).ok());
    if (full.empty()) continue;
    std::vector<cn::SearchResult> cut;
    const Status s = eval.Probe(tuple, &cut, nullptr,
                                Deadline::AfterMicros(0));
    EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded);
    EXPECT_LE(cut.size(), full.size());
    return;
  }
  FAIL() << "no paper tuple completed any joined tree";
}

TEST(UpdateDeadlineTest, ContinualQueryTurnsStaleAndRebuildRecovers) {
  DblpDatabase dblp = MakeDblpDatabase(SmallDblp(42));
  relational::Database& db = *dblp.db;
  const std::vector<std::string> keywords = QueryKeywords(dblp);
  cn::ContinualQuery standing(db, keywords);

  const Result<WriteReport> applied =
      db.ApplyInserts(MakeDblpInsertBatch(dblp, BatchOptions(7, 6)));
  ASSERT_TRUE(applied.ok());
  const Status s = standing.OnInsertBatch(applied.value().inserted,
                                          Deadline::AfterMicros(0));
  EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(standing.stale());
  // Stale queries refuse propagation until rebuilt.
  EXPECT_EQ(standing.OnInsertBatch(applied.value().inserted).code(),
            StatusCode::kFailedPrecondition);
  ASSERT_TRUE(standing.Rebuild().ok());
  EXPECT_FALSE(standing.stale());
  const cn::ContinualQuery fresh(db, keywords);
  ExpectSameResults(standing.results(), fresh.results());
}

// ---------------------------------------------------------------------------
// S2: the result cache enforces its global budget exactly.

TEST(CacheBudgetTest, ResidentEntriesNeverExceedCapacity) {
  // (capacity, shards) combos where ceil-division used to overshoot —
  // 9 over 8 shards admitted 16 resident entries.
  const std::vector<std::pair<size_t, size_t>> combos = {
      {9, 8}, {7, 3}, {1, 8}, {5, 5}, {3, 16}, {16, 4}};
  for (const auto& [capacity, shards] : combos) {
    serve::ShardedResultCache cache(capacity, shards);
    EXPECT_EQ(cache.capacity(), capacity);
    for (int i = 0; i < 200; ++i) {
      serve::CachedResult entry;
      entry.relational = std::make_shared<engine::EngineResponse>();
      cache.Put("key-" + std::to_string(i), std::move(entry));
      ASSERT_LE(cache.size(), capacity)
          << "capacity " << capacity << " shards " << shards;
    }
    // With far more keys than slots every shard slice fills up, so the
    // cache holds exactly its configured budget.
    EXPECT_EQ(cache.size(), capacity)
        << "capacity " << capacity << " shards " << shards;
  }
}

// ---------------------------------------------------------------------------
// S3 + tentpole serve-layer invalidation.

TEST(ServeWriteTest, RawFallbackKeySpaceIsTaggedApartFromRelational) {
  DblpDatabase dblp = MakeDblpDatabase(SmallDblp(42));
  const engine::KeywordSearchEngine engine(*dblp.db);
  serve::ServeOptions so;
  so.num_workers = 0;
  const serve::ServingEngine with_engine(&engine, nullptr, so);
  const serve::ServingEngine without_engine(nullptr, nullptr, so);

  serve::QueryRequest req;
  req.query = "keyword search";
  EXPECT_EQ(with_engine.CacheKey(req).rfind("e0|rel|", 0), 0u)
      << with_engine.CacheKey(req);
  // No relational engine: the raw-tokenizer fallback must not share the
  // engine-normalized key space.
  EXPECT_EQ(without_engine.CacheKey(req).rfind("e0|relraw|", 0), 0u)
      << without_engine.CacheKey(req);
}

TEST(ServeWriteTest, TupleSetCacheDropsExactlyTouchedTerms) {
  DblpDatabase dblp = MakeDblpDatabase(SmallDblp(42));
  cn::TupleSetCache cache(*dblp.db, 16);
  const std::string a = dblp.vocabulary[0];
  const std::string b = dblp.vocabulary[1];
  ASSERT_NE(cache.Get(a), nullptr);
  ASSERT_NE(cache.Get(b), nullptr);
  ASSERT_EQ(cache.size(), 2u);

  EXPECT_EQ(cache.Invalidate({a, "not-resident"}), 1u);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.stats().invalidations, 1u);
  // The untouched term is still a hit; the dropped one rebuilds.
  const uint64_t hits_before = cache.stats().hits;
  ASSERT_NE(cache.Get(b), nullptr);
  EXPECT_EQ(cache.stats().hits, hits_before + 1);
  const uint64_t misses_before = cache.stats().misses;
  ASSERT_NE(cache.Get(a), nullptr);
  EXPECT_EQ(cache.stats().misses, misses_before + 1);
}

TEST(ServeWriteTest, NotifyWriteBumpsEpochAndDefeatsStaleHits) {
  DblpDatabase dblp = MakeDblpDatabase(SmallDblp(42));
  relational::Database& db = *dblp.db;
  const engine::KeywordSearchEngine engine(db);
  serve::ServeOptions so;
  so.num_workers = 0;  // synchronous Query path only
  serve::ServingEngine server(&engine, nullptr, so);

  serve::QueryRequest req;
  req.query = dblp.vocabulary[0] + " " + dblp.vocabulary[1];
  const serve::QueryOutcome cold = server.Query(req);
  ASSERT_TRUE(cold.status.ok());
  EXPECT_FALSE(cold.cache_hit);
  EXPECT_TRUE(server.Query(req).cache_hit);
  const std::string xml_key_before =
      server.CacheKey({/*query=*/req.query, serve::Pipeline::kXml});

  // The write: applied to the database first, then announced.
  const Result<WriteReport> applied =
      db.ApplyInserts(MakeDblpInsertBatch(dblp, BatchOptions(7, 5)));
  ASSERT_TRUE(applied.ok());
  server.NotifyWrite(applied.value());
  EXPECT_EQ(server.data_epoch(), 1u);

  // The pre-write entry is unreachable: the same request misses and is
  // answered fresh from the post-write database.
  const serve::QueryOutcome after = server.Query(req);
  ASSERT_TRUE(after.status.ok());
  EXPECT_FALSE(after.cache_hit);
  const engine::EngineResponse want = engine.Search(req.query);
  ASSERT_EQ(after.relational->results.size(), want.results.size());
  for (size_t i = 0; i < want.results.size(); ++i) {
    EXPECT_EQ(after.relational->results[i].score, want.results[i].score);
    EXPECT_EQ(after.relational->results[i].tuples, want.results[i].tuples);
  }
  // XML answers cannot depend on relational writes: their key space is
  // not epoch-tagged, so XML hits survive the bump.
  EXPECT_EQ(server.CacheKey({/*query=*/req.query, serve::Pipeline::kXml}),
            xml_key_before);
  EXPECT_EQ(server.metrics().GetCounter("serve.writes.notified")->value(),
            1u);
}

TEST(ServeWriteTest, NotifyWriteInvalidatesTouchedTupleCacheTerms) {
  DblpDatabase dblp = MakeDblpDatabase(SmallDblp(42));
  relational::Database& db = *dblp.db;
  const engine::KeywordSearchEngine engine(db);
  serve::ServeOptions so;
  so.num_workers = 0;
  serve::ServingEngine server(&engine, nullptr, so);
  ASSERT_NE(server.tuple_cache(), nullptr);

  serve::QueryRequest req;
  req.query = dblp.vocabulary[0] + " " + dblp.vocabulary[1];
  ASSERT_TRUE(server.Query(req).status.ok());
  const size_t resident_before = server.tuple_cache()->size();
  ASSERT_GE(resident_before, 2u);

  const Result<WriteReport> applied =
      db.ApplyInserts(MakeDblpInsertBatch(dblp, BatchOptions(7, 5)));
  ASSERT_TRUE(applied.ok());
  const WriteReport& report = applied.value();
  // The Zipf-skewed titles all but surely touch the head vocabulary
  // terms; require it so the test actually exercises the drop.
  ASSERT_TRUE(std::binary_search(report.touched_terms.begin(),
                                 report.touched_terms.end(),
                                 dblp.vocabulary[0]));
  server.NotifyWrite(report);
  EXPECT_LT(server.tuple_cache()->size(), resident_before);
  EXPECT_GT(server.tuple_cache()->stats().invalidations, 0u);
  EXPECT_GT(
      server.metrics().GetCounter("serve.tuple_cache.invalidated")->value(),
      0u);
}

TEST(ServeWriteTest, StandingQueryStaysCurrentAcrossWrites) {
  DblpDatabase dblp = MakeDblpDatabase(SmallDblp(42));
  relational::Database& db = *dblp.db;
  const engine::KeywordSearchEngine engine(db);
  serve::ServeOptions so;
  so.num_workers = 0;
  serve::ServingEngine server(&engine, nullptr, so);

  const std::string query = dblp.vocabulary[0] + " " + dblp.vocabulary[1];
  const Result<uint64_t> id = server.RegisterQuery(query, /*k=*/10);
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  EXPECT_FALSE(server.StandingResults(99).ok());

  for (size_t b = 0; b < 2; ++b) {
    const Result<WriteReport> applied =
        db.ApplyInserts(MakeDblpInsertBatch(dblp, BatchOptions(50 + b, 5)));
    ASSERT_TRUE(applied.ok());
    server.NotifyWrite(applied.value());
    const Result<std::vector<cn::SearchResult>> got =
        server.StandingResults(id.value());
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    const cn::ContinualQuery fresh(db, engine.Normalize(query));
    ExpectSameResults(got.value(), fresh.TopK());
  }
}

TEST(ServeWriteTest, StandingQueryWithoutRelationalEngineFails) {
  serve::ServeOptions so;
  so.num_workers = 0;
  serve::ServingEngine server(nullptr, nullptr, so);
  const Result<uint64_t> id = server.RegisterQuery("anything");
  ASSERT_FALSE(id.ok());
  EXPECT_EQ(id.status().code(), StatusCode::kFailedPrecondition);
}

// ---------------------------------------------------------------------------
// Concurrency: NotifyWrite racing reads (TSan-gated via ci.sh). The write
// itself is applied before the server takes traffic — the protocol
// requires quiescing searches around ApplyInserts — so this exercises the
// announcement (tuple-cache drop + standing-query refresh + epoch
// publish) against a live read load, which IS allowed to overlap.
TEST(ServeWriteTest, NotifyWriteIsSafeAgainstConcurrentQueries) {
  DblpDatabase dblp = MakeDblpDatabase(SmallDblp(42));
  relational::Database& db = *dblp.db;

  std::vector<WriteReport> reports;
  for (size_t b = 0; b < 3; ++b) {
    const Result<WriteReport> applied =
        db.ApplyInserts(MakeDblpInsertBatch(dblp, BatchOptions(30 + b, 4)));
    ASSERT_TRUE(applied.ok());
    reports.push_back(applied.value());
  }

  const engine::KeywordSearchEngine engine(db);
  serve::ServeOptions so;
  so.num_workers = 4;
  serve::ServingEngine server(&engine, nullptr, so);
  const std::string query = dblp.vocabulary[0] + " " + dblp.vocabulary[1];
  ASSERT_TRUE(server.RegisterQuery(query).ok());

  std::vector<std::future<serve::QueryOutcome>> futures;
  for (int i = 0; i < 24; ++i) {
    serve::QueryRequest req;
    req.query = query;
    req.k = 10;
    std::future<serve::QueryOutcome> f;
    if (server.Submit(std::move(req), &f).ok()) {
      futures.push_back(std::move(f));
      if (futures.size() % 8 == 4) server.NotifyWrite(reports[i / 8]);
    }
  }
  for (std::future<serve::QueryOutcome>& f : futures) {
    EXPECT_TRUE(f.get().status.ok());
  }
  EXPECT_EQ(server.data_epoch(), reports.back().epoch);
}

}  // namespace
}  // namespace kws

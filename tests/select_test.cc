#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/select/db_selection.h"
#include "relational/database.h"

namespace kws::select {
namespace {

using relational::Database;
using relational::TableSchema;
using relational::Value;
using relational::ValueType;

/// author(name) <- writes -> paper(title); one author "alice", one paper
/// "encryption"; `connect` controls whether a writes row links them.
std::unique_ptr<Database> MakeDb(bool connect) {
  auto db = std::make_unique<Database>();
  TableSchema a;
  a.name = "author";
  a.columns = {{"aid", ValueType::kInt, false},
               {"name", ValueType::kText, true}};
  a.primary_key = 0;
  db->CreateTable(a).value();
  TableSchema p;
  p.name = "paper";
  p.columns = {{"pid", ValueType::kInt, false},
               {"title", ValueType::kText, true}};
  p.primary_key = 0;
  db->CreateTable(p).value();
  TableSchema w;
  w.name = "writes";
  w.columns = {{"wid", ValueType::kInt, false},
               {"aid", ValueType::kInt, false},
               {"pid", ValueType::kInt, false}};
  w.primary_key = 0;
  db->CreateTable(w).value();
  db->table(0).Append({Value::Int(0), Value::Text("alice")}).value();
  db->table(0).Append({Value::Int(1), Value::Text("bob")}).value();
  db->table(1).Append({Value::Int(0), Value::Text("encryption")}).value();
  db->table(1).Append({Value::Int(1), Value::Text("compilers")}).value();
  if (connect) {
    db->table(2).Append({Value::Int(0), Value::Int(0), Value::Int(0)})
        .value();
  } else {
    // alice wrote the *other* paper; encryption stays unconnected to her.
    db->table(2).Append({Value::Int(0), Value::Int(0), Value::Int(1)})
        .value();
  }
  EXPECT_TRUE(db->AddForeignKey("writes", "aid", "author", "aid").ok());
  EXPECT_TRUE(db->AddForeignKey("writes", "pid", "paper", "pid").ok());
  db->BuildTextIndexes();
  return db;
}

TEST(DbSelectionTest, JoinableDatabaseRanksFirst) {
  auto connected = MakeDb(true);
  auto disconnected = MakeDb(false);
  DatabaseSelector selector;
  selector.AddDatabase("connected", connected.get());
  selector.AddDatabase("disconnected", disconnected.get());
  auto ranked = selector.Rank("alice encryption");
  ASSERT_EQ(ranked.size(), 2u);
  // Both cover both keywords...
  EXPECT_EQ(ranked[0].keywords_covered, 2u);
  EXPECT_EQ(ranked[1].keywords_covered, 2u);
  // ...but only one relates them through a join.
  EXPECT_EQ(ranked[0].name, "connected");
  EXPECT_EQ(ranked[0].joinable_pairs, 1u);
  EXPECT_EQ(ranked[1].joinable_pairs, 0u);
  EXPECT_GT(ranked[0].score, ranked[1].score);
}

TEST(DbSelectionTest, CoverageBreaksTies) {
  auto both = MakeDb(false);
  auto half = MakeDb(false);
  DatabaseSelector selector;
  selector.AddDatabase("both", both.get());
  selector.AddDatabase("half", half.get());
  // "alice compilers" joins in both (alice wrote compilers when
  // connect=false); "zzz" matches nowhere: coverage dominates.
  auto ranked = selector.Rank("alice zzz");
  ASSERT_EQ(ranked.size(), 2u);
  EXPECT_EQ(ranked[0].keywords_covered, 1u);
  EXPECT_EQ(ranked[0].joinable_pairs, 0u);
}

TEST(DbSelectionTest, EqualScoresRankInRegistrationOrder) {
  // Two identical databases score exactly equal; registration order must
  // decide the ranking, not the (reverse-sorted here) names.
  auto a = MakeDb(true);
  auto b = MakeDb(true);
  DatabaseSelector selector;
  selector.AddDatabase("zeta", a.get());
  selector.AddDatabase("alpha", b.get());
  auto ranked = selector.Rank("alice encryption");
  ASSERT_EQ(ranked.size(), 2u);
  EXPECT_EQ(ranked[0].score, ranked[1].score);
  EXPECT_EQ(ranked[0].name, "zeta");
  EXPECT_EQ(ranked[0].index, 0u);
  EXPECT_EQ(ranked[1].name, "alpha");
  EXPECT_EQ(ranked[1].index, 1u);
}

TEST(DbSelectionTest, CoveredMaskTracksKeywordPositions) {
  auto db = MakeDb(true);
  DatabaseSelector selector;
  selector.AddDatabase("only", db.get());
  // Keyword 0 ("zzz") matches nowhere, keyword 1 ("alice") does.
  auto ranked = selector.Rank("zzz alice");
  ASSERT_EQ(ranked.size(), 1u);
  EXPECT_EQ(ranked[0].covered_mask, 0x2u);
  EXPECT_EQ(ranked[0].keywords_covered, 1u);
}

TEST(DbSelectionTest, EmptyQueryScoresZero) {
  auto db = MakeDb(true);
  DatabaseSelector selector;
  selector.AddDatabase("only", db.get());
  auto ranked = selector.Rank("");
  ASSERT_EQ(ranked.size(), 1u);
  EXPECT_EQ(ranked[0].score, 0.0);
}

TEST(DbSelectionTest, DistanceBoundControlsRelationship) {
  auto connected = MakeDb(true);
  // A tiny radius makes even the joined pair unrelated.
  SelectorOptions tight;
  tight.max_distance = 0.5;
  DatabaseSelector selector(tight);
  selector.AddDatabase("connected", connected.get());
  auto ranked = selector.Rank("alice encryption");
  ASSERT_EQ(ranked.size(), 1u);
  EXPECT_EQ(ranked[0].joinable_pairs, 0u);
}

}  // namespace
}  // namespace kws::select

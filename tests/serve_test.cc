#include <gtest/gtest.h>

#include <future>
#include <memory>
#include <string>
#include <vector>

#include "common/deadline.h"
#include "core/cn/tuple_set_cache.h"
#include "core/cn/tuple_sets.h"
#include "core/engine/engine.h"
#include "core/engine/xml_engine.h"
#include "relational/dblp.h"
#include "relational/query_log.h"
#include "serve/cache.h"
#include "serve/loadgen.h"
#include "serve/server.h"
#include "shard/sharded_corpus.h"
#include "shard/sharded_engine.h"
#include "xml/bibgen.h"

namespace kws::serve {
namespace {

// ---------------------------------------------------------------------------
// ShardedResultCache unit tests.

CachedResult MakeEntry(double score) {
  auto response = std::make_shared<engine::EngineResponse>();
  engine::EngineResult result;
  result.score = score;
  response->results.push_back(result);
  CachedResult entry;
  entry.relational = std::move(response);
  return entry;
}

double EntryScore(const CachedResult& entry) {
  return entry.relational->results.at(0).score;
}

TEST(ResultCacheTest, GetReturnsWhatPutStored) {
  ShardedResultCache cache(8);
  EXPECT_FALSE(cache.Get("a").has_value());
  cache.Put("a", MakeEntry(1.0));
  auto hit = cache.Get("a");
  ASSERT_TRUE(hit.has_value());
  EXPECT_DOUBLE_EQ(EntryScore(*hit), 1.0);
  CacheStats s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.insertions, 1u);
  EXPECT_EQ(s.evictions, 0u);
}

TEST(ResultCacheTest, EvictsLeastRecentlyUsed) {
  // One shard so the LRU order is global and fully predictable.
  ShardedResultCache cache(/*capacity=*/2, /*num_shards=*/1);
  cache.Put("a", MakeEntry(1.0));
  cache.Put("b", MakeEntry(2.0));
  cache.Put("c", MakeEntry(3.0));  // evicts "a"
  EXPECT_FALSE(cache.Get("a").has_value());
  EXPECT_TRUE(cache.Get("b").has_value());
  EXPECT_TRUE(cache.Get("c").has_value());
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(ResultCacheTest, GetRefreshesRecency) {
  ShardedResultCache cache(2, 1);
  cache.Put("a", MakeEntry(1.0));
  cache.Put("b", MakeEntry(2.0));
  ASSERT_TRUE(cache.Get("a").has_value());  // "b" is now the LRU tail
  cache.Put("c", MakeEntry(3.0));           // evicts "b", not "a"
  EXPECT_TRUE(cache.Get("a").has_value());
  EXPECT_FALSE(cache.Get("b").has_value());
}

TEST(ResultCacheTest, PutRefreshesExistingKey) {
  ShardedResultCache cache(2, 1);
  cache.Put("a", MakeEntry(1.0));
  cache.Put("a", MakeEntry(9.0));
  EXPECT_EQ(cache.size(), 1u);
  auto hit = cache.Get("a");
  ASSERT_TRUE(hit.has_value());
  EXPECT_DOUBLE_EQ(EntryScore(*hit), 9.0);
}

TEST(ResultCacheTest, ZeroCapacityDisables) {
  ShardedResultCache cache(0);
  EXPECT_FALSE(cache.enabled());
  cache.Put("a", MakeEntry(1.0));
  EXPECT_FALSE(cache.Get("a").has_value());
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().insertions, 0u);
}

TEST(ResultCacheTest, EvictionDoesNotInvalidateHandedOutResponses) {
  ShardedResultCache cache(1, 1);
  cache.Put("a", MakeEntry(1.0));
  auto hit = cache.Get("a");
  ASSERT_TRUE(hit.has_value());
  cache.Put("b", MakeEntry(2.0));  // evicts "a"
  // The shared_ptr we hold keeps the evicted response alive and intact.
  EXPECT_DOUBLE_EQ(EntryScore(*hit), 1.0);
}

TEST(ResultCacheTest, ClearDropsEntriesButKeepsStats) {
  ShardedResultCache cache(8);
  cache.Put("a", MakeEntry(1.0));
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.Get("a").has_value());
  EXPECT_EQ(cache.stats().insertions, 1u);
}

// ---------------------------------------------------------------------------
// Shared corpora for the serving tests.

class ServeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    relational::DblpOptions opts;
    opts.num_authors = 60;
    opts.num_papers = 120;
    opts.num_conferences = 8;
    dblp_ = new relational::DblpDatabase(MakeDblpDatabase(opts));
    engine_ = new engine::KeywordSearchEngine(*dblp_->db);
    xml::BibOptions bib;
    bib.num_venues = 6;
    bib.papers_per_venue = 8;
    bib_ = new xml::BibDocument(MakeBibDocument(bib));
    xml_engine_ = new engine::XmlKeywordSearch(bib_->tree);
  }
  static void TearDownTestSuite() {
    delete xml_engine_;
    delete bib_;
    delete engine_;
    delete dblp_;
    xml_engine_ = nullptr;
    bib_ = nullptr;
    engine_ = nullptr;
    dblp_ = nullptr;
  }
  static relational::DblpDatabase* dblp_;
  static engine::KeywordSearchEngine* engine_;
  static xml::BibDocument* bib_;
  static engine::XmlKeywordSearch* xml_engine_;
};

relational::DblpDatabase* ServeTest::dblp_ = nullptr;
engine::KeywordSearchEngine* ServeTest::engine_ = nullptr;
xml::BibDocument* ServeTest::bib_ = nullptr;
engine::XmlKeywordSearch* ServeTest::xml_engine_ = nullptr;

// ---------------------------------------------------------------------------
// Deadline enforcement: a ~zero budget must surface kDeadlineExceeded from
// both pipelines, not crash and not masquerade as an empty success.

TEST_F(ServeTest, RelationalZeroBudgetReturnsDeadlineExceeded) {
  engine::EngineOptions opts;
  opts.deadline = Deadline::AfterMicros(0);
  engine::EngineResponse r = engine_->Search("keyword search", opts);
  EXPECT_EQ(r.status.code(), StatusCode::kDeadlineExceeded);
}

TEST_F(ServeTest, XmlZeroBudgetReturnsDeadlineExceeded) {
  engine::XmlEngineOptions opts;
  opts.deadline = Deadline::AfterMicros(0);
  engine::XmlResponse r = xml_engine_->Search("keyword search", opts);
  EXPECT_EQ(r.status.code(), StatusCode::kDeadlineExceeded);
}

TEST_F(ServeTest, XmlElcaZeroBudgetReturnsDeadlineExceeded) {
  engine::XmlEngineOptions opts;
  opts.semantics = engine::XmlSemantics::kElca;
  opts.deadline = Deadline::AfterMicros(0);
  engine::XmlResponse r = xml_engine_->Search("keyword search", opts);
  EXPECT_EQ(r.status.code(), StatusCode::kDeadlineExceeded);
}

TEST_F(ServeTest, UnlimitedBudgetIsOk) {
  engine::EngineResponse r = engine_->Search("keyword search");
  EXPECT_TRUE(r.status.ok());
  EXPECT_FALSE(r.results.empty());
}

TEST_F(ServeTest, ServerEnforcesTinyBudget) {
  ServeOptions so;
  so.num_workers = 1;
  ServingEngine server(engine_, xml_engine_, so);
  QueryRequest req;
  req.query = "keyword search";
  req.budget_micros = 1;
  QueryOutcome out = server.Query(req);
  EXPECT_EQ(out.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(server.metrics().GetCounter("serve.deadline_exceeded")->value(),
            1u);
  // A deadline-truncated answer must not poison the cache.
  QueryOutcome again = server.Query(req);
  EXPECT_FALSE(again.cache_hit);
}

TEST_F(ServeTest, BudgetExpiredWhileQueuedDropsBeforeBackendWork) {
  // One worker, pinned down by a long modeled-IO request: the second
  // request starves in the queue past its budget. Its deadline is
  // anchored at Submit, so the worker must drop it at dequeue with
  // kDeadlineExceeded — before any backend work (null response) — rather
  // than granting it a fresh budget when it finally runs.
  ServeOptions so;
  so.num_workers = 1;
  ServingEngine server(engine_, xml_engine_, so);
  QueryRequest blocker;
  blocker.query = "keyword search";
  blocker.bypass_cache = true;
  blocker.simulated_io_micros = 60'000;
  QueryRequest starved;
  starved.query = "database query";
  starved.bypass_cache = true;
  starved.budget_micros = 5'000;
  std::future<QueryOutcome> f1, f2;
  ASSERT_TRUE(server.Submit(blocker, &f1).ok());
  ASSERT_TRUE(server.Submit(starved, &f2).ok());
  EXPECT_TRUE(f1.get().status.ok());
  QueryOutcome out = f2.get();
  EXPECT_EQ(out.status.code(), StatusCode::kDeadlineExceeded);
  // Dropped at dispatch, not truncated mid-search: no partial response.
  EXPECT_EQ(out.relational, nullptr);
  EXPECT_GE(server.metrics().GetCounter("serve.deadline_exceeded")->value(),
            1u);
}

TEST_F(ServeTest, SynchronousQueryBudgetStartsAtTheCall) {
  // The Query path has no queue: a generous budget anchored at the call
  // must let the same request succeed.
  ServeOptions so;
  so.num_workers = 1;
  ServingEngine server(engine_, xml_engine_, so);
  QueryRequest req;
  req.query = "keyword search";
  req.budget_micros = 10'000'000;
  QueryOutcome out = server.Query(req);
  EXPECT_TRUE(out.status.ok()) << out.status.ToString();
}

TEST_F(ServeTest, SearchThreadsProduceIdenticalResponses) {
  auto run = [&](size_t threads) {
    ServeOptions so;
    so.num_workers = 1;
    so.search_threads = threads;
    ServingEngine server(engine_, xml_engine_, so);
    QueryRequest req;
    req.query = "keyword search";
    req.bypass_cache = true;
    return server.Query(req);
  };
  const QueryOutcome serial = run(1);
  const QueryOutcome parallel = run(4);
  ASSERT_TRUE(serial.status.ok());
  ASSERT_TRUE(parallel.status.ok());
  ASSERT_NE(serial.relational, nullptr);
  ASSERT_NE(parallel.relational, nullptr);
  ASSERT_EQ(serial.relational->results.size(),
            parallel.relational->results.size());
  for (size_t i = 0; i < serial.relational->results.size(); ++i) {
    const auto& a = serial.relational->results[i];
    const auto& b = parallel.relational->results[i];
    EXPECT_EQ(a.score, b.score) << "rank " << i;
    EXPECT_EQ(a.tuples, b.tuples) << "rank " << i;
    EXPECT_EQ(a.description, b.description) << "rank " << i;
  }
}

// ---------------------------------------------------------------------------
// Admission control and lifecycle.

TEST_F(ServeTest, AdmissionControlRejectsWhenQueueFull) {
  ServeOptions so;
  so.num_workers = 0;  // nothing drains: queue occupancy is deterministic
  so.queue_capacity = 2;
  ServingEngine server(engine_, xml_engine_, so);
  QueryRequest req;
  req.query = "keyword search";
  std::future<QueryOutcome> f1, f2, f3;
  EXPECT_TRUE(server.Submit(req, &f1).ok());
  EXPECT_TRUE(server.Submit(req, &f2).ok());
  Status rejected = server.Submit(req, &f3);
  EXPECT_EQ(rejected.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(server.metrics().GetCounter("serve.rejected")->value(), 1u);

  server.Shutdown();
  // Queued-but-never-run tasks fail rather than abandoning their futures.
  EXPECT_EQ(f1.get().status.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(f2.get().status.code(), StatusCode::kFailedPrecondition);

  std::future<QueryOutcome> f4;
  Status after = server.Submit(req, &f4);
  EXPECT_EQ(after.code(), StatusCode::kFailedPrecondition);
}

TEST_F(ServeTest, WorkersDrainQueueAndFulfilFutures) {
  ServeOptions so;
  so.num_workers = 2;
  ServingEngine server(engine_, xml_engine_, so);
  std::vector<std::future<QueryOutcome>> futures(8);
  for (auto& f : futures) {
    QueryRequest req;
    req.query = "keyword search";
    ASSERT_TRUE(server.Submit(req, &f).ok());
  }
  for (auto& f : futures) {
    QueryOutcome out = f.get();
    EXPECT_TRUE(out.status.ok()) << out.status.ToString();
    ASSERT_NE(out.relational, nullptr);
    EXPECT_FALSE(out.relational->results.empty());
  }
  EXPECT_EQ(server.metrics().GetCounter("serve.completed")->value(), 8u);
  // One miss filled the cache; the duplicates hit it.
  EXPECT_GE(server.cache_stats().hits, 1u);
}

TEST_F(ServeTest, MissingPipelineFailsPrecondition) {
  ServingEngine server(engine_, /*xml=*/nullptr, {});
  QueryRequest req;
  req.query = "keyword search";
  req.pipeline = Pipeline::kXml;
  EXPECT_EQ(server.Query(req).status.code(),
            StatusCode::kFailedPrecondition);
}

// ---------------------------------------------------------------------------
// Cache-key normalization: case/whitespace variants and cleanable typos
// collapse to one key; different k does not.

TEST_F(ServeTest, CacheKeyNormalizesQueryText) {
  ServingEngine server(engine_, xml_engine_, {});
  QueryRequest a, b, c, d;
  a.query = "keyword search";
  b.query = "  Keyword   SEARCH ";
  c.query = "keywrd searh";  // cleaner fixes both typos
  d.query = "keyword search";
  d.k = 20;
  EXPECT_EQ(server.CacheKey(a), server.CacheKey(b));
  EXPECT_EQ(server.CacheKey(a), server.CacheKey(c));
  EXPECT_NE(server.CacheKey(a), server.CacheKey(d));
  QueryRequest x = a;
  x.pipeline = Pipeline::kXml;
  EXPECT_NE(server.CacheKey(a), server.CacheKey(x));
}

TEST_F(ServeTest, NormalizedVariantHitsCache) {
  ServingEngine server(engine_, xml_engine_, {});
  QueryRequest req;
  req.query = "keyword search";
  QueryOutcome first = server.Query(req);
  ASSERT_TRUE(first.status.ok());
  EXPECT_FALSE(first.cache_hit);
  req.query = "Keyword  SEARCH";
  QueryOutcome second = server.Query(req);
  EXPECT_TRUE(second.cache_hit);
  // Hits share the immutable response object, not a copy.
  EXPECT_EQ(second.relational.get(), first.relational.get());
}

// ---------------------------------------------------------------------------
// Oracle: serving through the cache returns bit-identical answers to the
// uncached engine, over a sweep of seeds and repeated (Zipf-skewed) issues.

class ServeOracleTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ServeOracleTest, CachedAnswersMatchUncached) {
  const uint64_t seed = GetParam();
  relational::DblpOptions opts;
  opts.seed = seed;
  opts.num_authors = 40;
  opts.num_papers = 80;
  opts.num_conferences = 6;
  relational::DblpDatabase dblp = MakeDblpDatabase(opts);
  engine::KeywordSearchEngine eng(*dblp.db);

  relational::QueryLogOptions lopts;
  lopts.seed = seed;
  lopts.num_queries = 40;
  const std::vector<std::string> pool =
      QueryPool(MakeQueryLog(*dblp.db, dblp.paper, lopts));
  ASSERT_FALSE(pool.empty());

  ServeOptions so;
  so.num_workers = 1;
  so.cache_capacity = 64;
  ServingEngine cached(&eng, nullptr, so);

  Rng rng(SplitSeed(seed, 7));
  const ZipfSampler zipf(pool.size(), 0.9);
  for (int i = 0; i < 60; ++i) {
    QueryRequest req;
    req.query = pool[zipf.Sample(rng)];
    QueryOutcome served = cached.Query(req);
    ASSERT_TRUE(served.status.ok()) << served.status.ToString();
    ASSERT_NE(served.relational, nullptr);

    engine::EngineResponse direct = eng.Search(req.query);
    ASSERT_EQ(served.relational->results.size(), direct.results.size())
        << "query: " << req.query;
    for (size_t r = 0; r < direct.results.size(); ++r) {
      EXPECT_DOUBLE_EQ(served.relational->results[r].score,
                       direct.results[r].score);
      EXPECT_EQ(served.relational->results[r].tuples,
                direct.results[r].tuples);
      EXPECT_EQ(served.relational->results[r].description,
                direct.results[r].description);
    }
    EXPECT_EQ(served.relational->cleaned_query, direct.cleaned_query);
  }
  // The skewed replay must actually have exercised the cache.
  EXPECT_GT(cached.cache_stats().hits, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ServeOracleTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u));

TEST_F(ServeTest, XmlServingMatchesDirectSearch) {
  ServingEngine server(engine_, xml_engine_, {});
  QueryRequest req;
  req.query = "keyword search";
  req.pipeline = Pipeline::kXml;
  QueryOutcome served = server.Query(req);
  ASSERT_TRUE(served.status.ok()) << served.status.ToString();
  ASSERT_NE(served.xml, nullptr);
  engine::XmlResponse direct = xml_engine_->Search(req.query);
  ASSERT_EQ(served.xml->results.size(), direct.results.size());
  for (size_t i = 0; i < direct.results.size(); ++i) {
    EXPECT_EQ(served.xml->results[i].anchor, direct.results[i].anchor);
    EXPECT_EQ(served.xml->results[i].display_root,
              direct.results[i].display_root);
    EXPECT_DOUBLE_EQ(served.xml->results[i].score, direct.results[i].score);
    EXPECT_EQ(served.xml->results[i].snippet, direct.results[i].snippet);
  }
}

// ---------------------------------------------------------------------------
// Load generator.

TEST_F(ServeTest, QueryPoolDeduplicatesInLogOrder) {
  relational::QueryLog log;
  log.push_back({{"a", "b"}, {}, 1});
  log.push_back({{}, {}, 1});          // empty: dropped
  log.push_back({{"c"}, {}, 1});
  log.push_back({{"a", "b"}, {}, 3});  // duplicate: dropped
  EXPECT_EQ(QueryPool(log), (std::vector<std::string>{"a b", "c"}));
}

TEST_F(ServeTest, ClosedLoopAccountsEveryRequest) {
  ServeOptions so;
  so.num_workers = 2;
  so.queue_capacity = 4;
  ServingEngine server(engine_, xml_engine_, so);
  relational::QueryLogOptions lopts;
  lopts.num_queries = 30;
  const std::vector<std::string> pool =
      QueryPool(MakeQueryLog(*dblp_->db, dblp_->paper, lopts));
  ASSERT_FALSE(pool.empty());

  LoadGenOptions gen;
  gen.num_clients = 3;
  gen.requests_per_client = 10;
  LoadReport report = RunClosedLoop(server, pool, gen);
  EXPECT_EQ(report.requests, 30u);
  EXPECT_EQ(report.ok + report.deadline_exceeded + report.failed, 30u);
  EXPECT_EQ(report.failed, 0u);
  EXPECT_EQ(report.ok, 30u);
  EXPECT_EQ(server.metrics().GetCounter("serve.completed")->value(), 30u);
  EXPECT_GT(report.qps, 0.0);
}

TEST_F(ServeTest, ClosedLoopScheduleIsSeedDeterministic) {
  relational::QueryLogOptions lopts;
  lopts.num_queries = 30;
  const std::vector<std::string> pool =
      QueryPool(MakeQueryLog(*dblp_->db, dblp_->paper, lopts));
  ASSERT_FALSE(pool.empty());

  // The per-client query schedule is a pure function of (seed, client), so
  // two single-threaded replays against fresh servers produce identical
  // hit counts regardless of wall-clock timing.
  auto replay = [&]() {
    ServeOptions so;
    so.num_workers = 1;
    ServingEngine server(engine_, xml_engine_, so);
    LoadGenOptions gen;
    gen.num_clients = 1;
    gen.requests_per_client = 40;
    gen.seed = 99;
    return RunClosedLoop(server, pool, gen);
  };
  LoadReport a = replay();
  LoadReport b = replay();
  EXPECT_EQ(a.requests, b.requests);
  EXPECT_EQ(a.ok, b.ok);
  EXPECT_EQ(a.cache_hits, b.cache_hits);
  EXPECT_GT(a.cache_hits, 0u);  // Zipf replay repeats popular queries
}

// ---------------------------------------------------------------------------
// Tuple-set frontier cache: term-level reuse across queries, capacity
// bounds, and the complete-answers-only rule under deadlines.

TEST_F(ServeTest, TupleCacheHitsAcrossQueriesSharingTerms) {
  ServeOptions so;
  so.num_workers = 1;
  so.cache_capacity = 0;  // isolate the tuple cache from the result cache
  ServingEngine server(engine_, xml_engine_, so);
  ASSERT_NE(server.tuple_cache(), nullptr);

  QueryRequest req;
  req.query = "keyword search";
  ASSERT_TRUE(server.Query(req).status.ok());
  const uint64_t misses_after_first =
      server.metrics().GetCounter("serve.tuple_cache.misses")->value();
  EXPECT_GT(misses_after_first, 0u);
  EXPECT_EQ(server.metrics().GetCounter("serve.tuple_cache.hits")->value(),
            0u);

  // A *different* query sharing the term "keyword": the result cache
  // cannot help (different key), the term cache must.
  req.query = "keyword";
  ASSERT_TRUE(server.Query(req).status.ok());
  EXPECT_GT(server.metrics().GetCounter("serve.tuple_cache.hits")->value(),
            0u);
  EXPECT_EQ(server.metrics().GetCounter("serve.tuple_cache.misses")->value(),
            misses_after_first);
}

TEST_F(ServeTest, TupleCacheRepeatQueryIsAllHits) {
  ServeOptions so;
  so.num_workers = 1;
  so.cache_capacity = 0;
  ServingEngine server(engine_, xml_engine_, so);
  QueryRequest req;
  req.query = "keyword search";
  ASSERT_TRUE(server.Query(req).status.ok());
  const uint64_t misses =
      server.metrics().GetCounter("serve.tuple_cache.misses")->value();
  ASSERT_TRUE(server.Query(req).status.ok());
  // The repeat resolved every term from the cache: no new misses.
  EXPECT_EQ(server.metrics().GetCounter("serve.tuple_cache.misses")->value(),
            misses);
  EXPECT_GE(server.metrics().GetCounter("serve.tuple_cache.hits")->value(),
            misses);
}

TEST_F(ServeTest, TupleCacheCapacityBoundEvicts) {
  ServeOptions so;
  so.num_workers = 1;
  so.cache_capacity = 0;
  so.tuple_cache_capacity = 1;  // a two-term query must evict
  ServingEngine server(engine_, xml_engine_, so);
  QueryRequest req;
  req.query = "keyword search";
  ASSERT_TRUE(server.Query(req).status.ok());
  EXPECT_GE(
      server.metrics().GetCounter("serve.tuple_cache.evictions")->value(),
      1u);
  ASSERT_NE(server.tuple_cache(), nullptr);
  EXPECT_EQ(server.tuple_cache()->size(), 1u);
}

TEST_F(ServeTest, TupleCacheDisabledByZeroCapacity) {
  ServeOptions so;
  so.num_workers = 1;
  so.tuple_cache_capacity = 0;
  ServingEngine server(engine_, xml_engine_, so);
  EXPECT_EQ(server.tuple_cache(), nullptr);
  // Queries still work, just without term reuse.
  QueryRequest req;
  req.query = "keyword search";
  EXPECT_TRUE(server.Query(req).status.ok());
}

TEST_F(ServeTest, TupleCacheNeverStoresDeadlineTruncatedBuilds) {
  cn::TupleSetCache cache(*dblp_->db, 8);
  // An already-expired deadline aborts the frontier build: the caller
  // gets nullptr and nothing is inserted.
  EXPECT_EQ(cache.Get("keyword", Deadline::AfterMicros(0)), nullptr);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().insertions, 0u);
  EXPECT_EQ(cache.stats().misses, 1u);

  // The same term with budget builds and caches a complete frontier.
  auto frontier = cache.Get("keyword");
  ASSERT_NE(frontier, nullptr);
  EXPECT_GT(frontier->num_rows, 0u);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.stats().insertions, 1u);

  // And the truncated attempt did not poison it: a re-Get hits.
  EXPECT_EQ(cache.Get("keyword"), frontier);
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST_F(ServeTest, TupleSetsIdenticalWithAndWithoutCache) {
  // The cached path must reproduce the uncached TupleSets bit for bit:
  // same masks, same scores, same set contents.
  const std::vector<std::string> keywords = {"keyword", "search"};
  cn::TupleSets plain(*dblp_->db, keywords);
  cn::TupleSetCache cache(*dblp_->db, 8);
  cn::TupleSets warm(*dblp_->db, keywords, &cache);   // fills the cache
  cn::TupleSets cached(*dblp_->db, keywords, &cache);  // all hits
  EXPECT_GT(cache.stats().hits, 0u);
  for (size_t k = 0; k < keywords.size(); ++k) {
    EXPECT_DOUBLE_EQ(plain.Idf(k), cached.Idf(k));
  }
  const size_t num_tables = dblp_->db->num_tables();
  for (relational::TableId t = 0; t < num_tables; ++t) {
    ASSERT_EQ(plain.table_mask(t), cached.table_mask(t));
    for (cn::KeywordMask mask = 1; mask < (1u << keywords.size()); ++mask) {
      const auto& a = plain.Get(t, mask);
      const auto& b = cached.Get(t, mask);
      ASSERT_EQ(a.size(), b.size()) << "t=" << t << " mask=" << mask;
      for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].row, b[i].row);
        EXPECT_DOUBLE_EQ(a[i].score, b[i].score);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Slow-query log and the deterministic trace sampler.

TEST_F(ServeTest, SlowQueryLogIsOldestFirstWithIncreasingSequence) {
  ServeOptions so;
  so.num_workers = 0;
  // slow_query_micros = 0 (the default): every completed query is logged.
  ServingEngine server(engine_, xml_engine_, so);
  const std::vector<std::string> queries = {"keyword search", "database query",
                                            "xml data"};
  for (const std::string& q : queries) {
    QueryRequest req;
    req.query = q;
    req.bypass_cache = true;
    ASSERT_TRUE(server.Query(req).status.ok()) << q;
  }
  const std::vector<SlowQueryEntry> log = server.SlowQueries();
  ASSERT_EQ(log.size(), queries.size());
  for (size_t i = 0; i < log.size(); ++i) {
    EXPECT_EQ(log[i].sequence, i);
    EXPECT_EQ(log[i].query, queries[i]);
    EXPECT_EQ(log[i].queue_wait_micros, 0.0);  // synchronous path
    EXPECT_FALSE(log[i].cache_hit);
    EXPECT_FALSE(log[i].sampled);   // sampler off
    EXPECT_TRUE(log[i].trace.empty());
    EXPECT_EQ(log[i].code, StatusCode::kOk);
    EXPECT_GT(log[i].latency_micros, 0.0);
  }
  server.Shutdown();
}

TEST_F(ServeTest, SlowQueryLogCapacityEvictsOldestEntries) {
  ServeOptions so;
  so.num_workers = 0;
  so.slow_query_log_capacity = 2;
  ServingEngine server(engine_, xml_engine_, so);
  for (int i = 0; i < 5; ++i) {
    QueryRequest req;
    req.query = "keyword search";
    req.bypass_cache = true;
    ASSERT_TRUE(server.Query(req).status.ok());
  }
  const std::vector<SlowQueryEntry> log = server.SlowQueries();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0].sequence, 3u);
  EXPECT_EQ(log[1].sequence, 4u);
  server.Shutdown();
}

TEST_F(ServeTest, SlowQueryThresholdAndZeroCapacityFilter) {
  // An unreachable latency threshold keeps the log empty...
  ServeOptions so;
  so.num_workers = 0;
  so.slow_query_micros = 1'000'000'000'000ull;
  {
    ServingEngine server(engine_, xml_engine_, so);
    QueryRequest req;
    req.query = "keyword search";
    ASSERT_TRUE(server.Query(req).status.ok());
    EXPECT_TRUE(server.SlowQueries().empty());
    server.Shutdown();
  }
  // ...and capacity 0 disables the log even for sampled queries.
  so.slow_query_micros = 0;
  so.slow_query_log_capacity = 0;
  so.trace_sample_every_n = 1;
  {
    ServingEngine server(engine_, xml_engine_, so);
    QueryRequest req;
    req.query = "keyword search";
    ASSERT_TRUE(server.Query(req).status.ok());
    EXPECT_TRUE(server.SlowQueries().empty());
    server.Shutdown();
  }
}

TEST_F(ServeTest, TraceSamplingIsDeterministicByExecutionSequence) {
  ServeOptions so;
  so.num_workers = 0;
  so.trace_sample_every_n = 4;
  so.slow_query_log_capacity = 64;
  ServingEngine server(engine_, xml_engine_, so);
  for (int i = 0; i < 12; ++i) {
    QueryRequest req;
    req.query = "keyword search";
    req.bypass_cache = true;
    ASSERT_TRUE(server.Query(req).status.ok());
  }
  const std::vector<SlowQueryEntry> log = server.SlowQueries();
  ASSERT_EQ(log.size(), 12u);
  size_t sampled = 0;
  for (const SlowQueryEntry& e : log) {
    const bool expect_sampled = e.sequence % 4 == 0;
    EXPECT_EQ(e.sampled, expect_sampled) << "sequence " << e.sequence;
    if (e.sampled) {
      ++sampled;
      // Sampled entries carry the rendered span tree of their execution.
      EXPECT_NE(e.trace.find("serve.query"), std::string::npos);
      EXPECT_NE(e.trace.find("serve.execute"), std::string::npos);
      EXPECT_NE(e.trace.find("engine.search"), std::string::npos);
    } else {
      EXPECT_TRUE(e.trace.empty());
    }
  }
  EXPECT_EQ(sampled, 3u);  // sequences 0, 4, 8
  const std::string text = server.metrics().RenderText();
  EXPECT_NE(text.find("serve.trace.sampled 3"), std::string::npos) << text;
  server.Shutdown();
}

TEST_F(ServeTest, MetricsRenderAfterServing) {
  ServingEngine server(engine_, xml_engine_, {});
  QueryRequest req;
  req.query = "keyword search";
  ASSERT_TRUE(server.Query(req).status.ok());
  const std::string text = server.metrics().RenderText();
  EXPECT_NE(text.find("serve.submitted 1"), std::string::npos) << text;
  EXPECT_NE(text.find("serve.latency_micros count=1"), std::string::npos)
      << text;
}

// ---------------------------------------------------------------------------
// Sharded relational backend behind the server.

class ShardedServeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    relational::DblpOptions opts;
    opts.num_authors = 40;
    opts.num_papers = 80;
    opts.num_conferences = 6;
    corpus_ = new shard::ShardedCorpus(shard::MakeShardedDblp(opts, 4));
    sharded_ = new shard::ShardedEngine(*corpus_);
  }
  static void TearDownTestSuite() {
    delete sharded_;
    delete corpus_;
    sharded_ = nullptr;
    corpus_ = nullptr;
  }
  static ServeOptions ShardedOptions() {
    ServeOptions so;
    so.num_workers = 1;
    so.num_shards = 4;
    return so;
  }
  static shard::ShardedCorpus* corpus_;
  static shard::ShardedEngine* sharded_;
};

shard::ShardedCorpus* ShardedServeTest::corpus_ = nullptr;
shard::ShardedEngine* ShardedServeTest::sharded_ = nullptr;

TEST_F(ShardedServeTest, RoutesRelationalQueriesToTheShardedEngine) {
  ServingEngine server(nullptr, nullptr, sharded_, ShardedOptions());
  QueryRequest req;
  req.query = "keyword search";
  const QueryOutcome out = server.Query(req);
  ASSERT_TRUE(out.status.ok());
  ASSERT_NE(out.relational, nullptr);
  // The served response is the sharded engine's answer, repackaged.
  shard::ShardedSearchOptions sso;
  sso.k = req.k;
  const shard::ShardedResponse want = sharded_->Search(req.query, sso);
  EXPECT_EQ(out.relational->cleaned_query, want.keywords);
  ASSERT_EQ(out.relational->results.size(), want.results.size());
  for (size_t i = 0; i < want.results.size(); ++i) {
    EXPECT_EQ(out.relational->results[i].score, want.results[i].score);
    EXPECT_EQ(out.relational->results[i].tuples, want.results[i].tuples);
    EXPECT_EQ(out.relational->results[i].description, want.descriptions[i]);
  }
}

TEST_F(ShardedServeTest, ShardedAnswersAreCachedUnderADistinctKeySpace) {
  ServingEngine server(nullptr, nullptr, sharded_, ShardedOptions());
  QueryRequest req;
  req.query = "keyword search";
  const std::string key = server.CacheKey(req);
  // Epoch tag first (no writes yet -> epoch 0), then the sharded tag.
  EXPECT_EQ(key.rfind("e0|shard|", 0), 0u) << key;
  EXPECT_FALSE(server.Query(req).cache_hit);
  EXPECT_TRUE(server.Query(req).cache_hit);
}

TEST_F(ShardedServeTest, TinyBudgetIsPartialAndNotCached) {
  ServingEngine server(nullptr, nullptr, sharded_, ShardedOptions());
  QueryRequest req;
  req.query = "keyword search";
  req.budget_micros = 1;
  const QueryOutcome out = server.Query(req);
  EXPECT_EQ(out.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_FALSE(server.Query(req).cache_hit);
}

TEST_F(ShardedServeTest, ZeroNumShardsIgnoresTheAttachedEngine) {
  relational::DblpOptions opts;
  opts.num_authors = 40;
  opts.num_papers = 80;
  opts.num_conferences = 6;
  const relational::DblpDatabase dblp = MakeDblpDatabase(opts);
  const engine::KeywordSearchEngine unsharded(*dblp.db);
  ServeOptions so;
  so.num_workers = 1;
  so.num_shards = 0;
  ServingEngine server(&unsharded, nullptr, sharded_, so);
  QueryRequest req;
  req.query = "keyword search";
  EXPECT_EQ(server.CacheKey(req).rfind("e0|rel|", 0), 0u);
  const QueryOutcome out = server.Query(req);
  ASSERT_TRUE(out.status.ok());
  // Served by the unsharded engine: its cleaned query, its results.
  EXPECT_EQ(out.relational->cleaned_query,
            unsharded.Search(req.query).cleaned_query);
}

// ---------------------------------------------------------------------------
// Statusz: the health snapshot tracks writes and epochs.

TEST(ServingStatuszEpochsTest, ReportsWriteEpochsAndNotifications) {
  relational::DblpOptions opts;
  opts.num_authors = 30;
  opts.num_papers = 60;
  opts.num_conferences = 6;
  relational::DblpDatabase dblp = MakeDblpDatabase(opts);
  const engine::KeywordSearchEngine engine(*dblp.db);
  ServeOptions so;
  so.num_workers = 1;
  ServingEngine server(&engine, /*xml=*/nullptr, so);

  std::string doc = server.Statusz();
  EXPECT_NE(doc.find("\"epochs\":{\"published\":0,\"last_write\":0,"
                     "\"lag\":0,\"writes_notified\":0"),
            std::string::npos)
      << doc;

  // One write round-trip: apply the batch, hand the report to the server.
  relational::DblpInsertOptions batch_opts;
  batch_opts.seed = 5;
  batch_opts.num_papers = 3;
  const std::vector<relational::RowInsert> batch =
      MakeDblpInsertBatch(dblp, batch_opts);
  const Result<relational::WriteReport> applied =
      dblp.db->ApplyInserts(batch);
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  server.NotifyWrite(applied.value());

  doc = server.Statusz();
  // Published and last-write epochs agree again (lag closes once
  // NotifyWrite finishes), and the notification was counted.
  EXPECT_NE(doc.find("\"epochs\":{\"published\":1,\"last_write\":1,"
                     "\"lag\":0,\"writes_notified\":1"),
            std::string::npos)
      << doc;
  // New cache keys carry the published epoch.
  QueryRequest req;
  req.query = "keyword search";
  EXPECT_EQ(server.CacheKey(req).rfind("e1|rel|", 0), 0u);
}

}  // namespace
}  // namespace kws::serve

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "xml/bibgen.h"
#include "xml/parser.h"
#include "xml/stats.h"
#include "xml/tree.h"

namespace kws::xml {
namespace {

/// conf -> (name, year, paper -> (title, author, author)).
XmlTree SmallTree() {
  XmlTree t;
  const XmlNodeId conf = t.AddElement(kNoXmlNode, "conf");
  const XmlNodeId name = t.AddElement(conf, "name");
  t.AppendText(name, "SIGMOD");
  const XmlNodeId year = t.AddElement(conf, "year");
  t.AppendText(year, "2007");
  const XmlNodeId paper = t.AddElement(conf, "paper");
  const XmlNodeId title = t.AddElement(paper, "title");
  t.AppendText(title, "keyword search");
  const XmlNodeId a1 = t.AddElement(paper, "author");
  t.AppendText(a1, "mark");
  const XmlNodeId a2 = t.AddElement(paper, "author");
  t.AppendText(a2, "chen");
  t.BuildKeywordIndex();
  return t;
}

TEST(XmlTreeTest, PreorderIdsAndDepths) {
  XmlTree t = SmallTree();
  EXPECT_EQ(t.size(), 7u);
  EXPECT_EQ(t.tag(0), "conf");
  EXPECT_EQ(t.depth(0), 0u);
  EXPECT_EQ(t.depth(3), 1u);  // paper
  EXPECT_EQ(t.depth(4), 2u);  // title
  EXPECT_EQ(t.parent(4), 3u);
  EXPECT_EQ(t.parent(0), kNoXmlNode);
}

TEST(XmlTreeTest, DeweyEncodesChildPath) {
  XmlTree t = SmallTree();
  EXPECT_TRUE(t.dewey(0).empty());
  EXPECT_EQ(t.dewey(3), (Dewey{2}));     // paper is conf's 3rd child
  EXPECT_EQ(t.dewey(6), (Dewey{2, 2}));  // second author
}

TEST(XmlTreeTest, AncestorOrSelf) {
  XmlTree t = SmallTree();
  EXPECT_TRUE(t.IsAncestorOrSelf(0, 6));
  EXPECT_TRUE(t.IsAncestorOrSelf(3, 4));
  EXPECT_TRUE(t.IsAncestorOrSelf(3, 3));
  EXPECT_FALSE(t.IsAncestorOrSelf(4, 3));
  EXPECT_FALSE(t.IsAncestorOrSelf(1, 2));
}

TEST(XmlTreeTest, LcaComputations) {
  XmlTree t = SmallTree();
  EXPECT_EQ(t.Lca(5, 6), 3u);  // two authors -> paper
  EXPECT_EQ(t.Lca(1, 4), 0u);  // name x title -> conf
  EXPECT_EQ(t.Lca(3, 4), 3u);  // ancestor of the other
  EXPECT_EQ(t.Lca(2, 2), 2u);
}

TEST(XmlTreeTest, LabelPath) {
  XmlTree t = SmallTree();
  EXPECT_EQ(t.LabelPath(0), "/conf");
  EXPECT_EQ(t.LabelPath(4), "/conf/paper/title");
}

TEST(XmlTreeTest, KeywordIndexDocumentOrder) {
  XmlTree t = SmallTree();
  EXPECT_EQ(t.MatchNodes("mark"), (std::vector<XmlNodeId>{5}));
  EXPECT_EQ(t.MatchNodes("keyword"), (std::vector<XmlNodeId>{4}));
  EXPECT_TRUE(t.MatchNodes("absent").empty());
  auto vocab = t.Vocabulary();
  EXPECT_TRUE(std::is_sorted(vocab.begin(), vocab.end()));
}

TEST(XmlTreeTest, SerializeRoundTripThroughParser) {
  XmlTree t = SmallTree();
  const std::string serialized = t.ToXmlString(0);
  Result<XmlTree> parsed = ParseXml(serialized);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const XmlTree& p = parsed.value();
  ASSERT_EQ(p.size(), t.size());
  for (XmlNodeId n = 0; n < t.size(); ++n) {
    EXPECT_EQ(p.tag(n), t.tag(n));
    EXPECT_EQ(p.text(n), t.text(n));
    EXPECT_EQ(p.parent(n), t.parent(n));
  }
}

TEST(XmlParserTest, ParsesNestedElements) {
  auto r = ParseXml("<a><b>hello</b><c><d/>world</c></a>");
  ASSERT_TRUE(r.ok());
  const XmlTree& t = r.value();
  EXPECT_EQ(t.size(), 4u);
  EXPECT_EQ(t.tag(0), "a");
  EXPECT_EQ(t.text(1), "hello");
  EXPECT_EQ(t.tag(3), "d");
  EXPECT_EQ(t.text(2), "world");
}

TEST(XmlParserTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseXml("").ok());
  EXPECT_FALSE(ParseXml("<a>").ok());
  EXPECT_FALSE(ParseXml("<a></b>").ok());
  EXPECT_FALSE(ParseXml("<a></a><b></b>").ok());
  EXPECT_FALSE(ParseXml("text only").ok());
  EXPECT_FALSE(ParseXml("<>empty</>").ok());
}

TEST(XmlParserTest, SelfClosingAndWhitespace) {
  auto r = ParseXml("  <root>\n  <leaf/>\n  </root>  ");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().size(), 2u);
  EXPECT_TRUE(r.value().text(0).empty());
}

TEST(BibGenTest, StructureMatchesSpec) {
  BibDocument doc = MakeBibDocument({.seed = 1, .num_venues = 6,
                                     .papers_per_venue = 5});
  const XmlTree& t = doc.tree;
  EXPECT_EQ(t.tag(0), "bib");
  EXPECT_EQ(t.children(0).size(), 6u);
  size_t conferences = 0, journals = 0, workshops = 0;
  for (XmlNodeId v : t.children(0)) {
    const std::string& tag = t.tag(v);
    conferences += (tag == "conference");
    journals += (tag == "journal");
    workshops += (tag == "workshop");
    // name, year, then papers
    EXPECT_EQ(t.tag(t.children(v)[0]), "name");
    EXPECT_EQ(t.tag(t.children(v)[1]), "year");
    EXPECT_EQ(t.children(v).size(), 7u);
  }
  EXPECT_EQ(conferences, 2u);
  EXPECT_EQ(journals, 2u);
  EXPECT_EQ(workshops, 2u);
}

TEST(BibGenTest, DeterministicAndIndexed) {
  BibDocument a = MakeBibDocument({.seed = 5});
  BibDocument b = MakeBibDocument({.seed = 5});
  ASSERT_EQ(a.tree.size(), b.tree.size());
  for (XmlNodeId n = 0; n < a.tree.size(); n += 11) {
    EXPECT_EQ(a.tree.text(n), b.tree.text(n));
  }
  // Top vocabulary term matches many title nodes.
  EXPECT_GT(a.tree.MatchNodes(a.vocabulary[0]).size(), 5u);
}

class BibGenFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BibGenFuzzTest, GeneratedTreesAreValidPreorder) {
  const uint64_t seed = GetParam();
  BibDocument doc = MakeBibDocument({.seed = seed,
                                     .num_venues = 3 + seed % 5,
                                     .papers_per_venue = 2 + seed % 7});
  Status s = doc.tree.ValidatePreorder();
  EXPECT_TRUE(s.ok()) << s.ToString();

  // Parser output must satisfy the same structural contract.
  auto parsed = ParseXml(doc.tree.ToXmlString(0));
  ASSERT_TRUE(parsed.ok());
  s = parsed.value().ValidatePreorder();
  EXPECT_TRUE(s.ok()) << s.ToString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, BibGenFuzzTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

TEST(PathStatisticsTest, CountsAndRepeatability) {
  BibDocument doc = MakeBibDocument({.seed = 1, .num_venues = 3,
                                     .papers_per_venue = 4});
  PathStatistics stats = ComputePathStatistics(doc.tree);
  EXPECT_EQ(stats.total_elements, doc.tree.size());
  EXPECT_EQ(stats.path_count["/bib"], 1u);
  EXPECT_EQ(stats.path_count["/bib/conference/paper"], 4u);
  // paper repeats under a venue; name does not.
  EXPECT_TRUE(stats.path_repeatable["/bib/conference/paper"]);
  EXPECT_FALSE(stats.path_repeatable["/bib/conference/name"]);
  EXPECT_GT(stats.avg_depth, 1.0);
}

TEST(PathStatisticsTest, AuthorsRepeatable) {
  XmlTree t = SmallTree();
  PathStatistics stats = ComputePathStatistics(t);
  EXPECT_TRUE(stats.path_repeatable["/conf/paper/author"]);
  EXPECT_FALSE(stats.path_repeatable["/conf/paper/title"]);
}

}  // namespace
}  // namespace kws::xml

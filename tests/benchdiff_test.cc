// Unit tests for the benchdiff parser and diff engine — in particular
// the CI acceptance story: a synthetically-injected perf regression must
// produce an error finding, and schedule-dependent count columns must
// never fire.

#include <string>
#include <vector>

#include "benchdiff/diff.h"
#include "gtest/gtest.h"

namespace kws::benchdiff {
namespace {

/// A well-formed two-experiment export in the bench_util JsonExport
/// schema.
const char kBaseline[] =
    R"({"experiments":[)"
    R"({"id":"E20","title":"serving throughput","headers":)"
    R"(["workers","qps","p50 ms","p99 ms","cns evaluated"],)"
    R"("rows":[[1,100.0,5.0,20.0,1234],[4,350.0,6.0,25.0,4321]]},)"
    R"({"id":"E21","title":"shard scatter","headers":)"
    R"(["shards","total ms","speedup"],)"
    R"("rows":[["1",80.0,1.0],["4",25.0,3.2]]})"
    R"(]})";

/// Builds a copy of kBaseline with one numeric cell replaced. `from` and
/// `to` are exact-token substitutions, so tests inject drift precisely.
std::string Patched(const std::string& from, const std::string& to) {
  std::string doc = kBaseline;
  const size_t pos = doc.find(from);
  EXPECT_NE(pos, std::string::npos) << from;
  doc.replace(pos, from.size(), to);
  return doc;
}

TEST(BenchdiffParse, RoundTripsSchema) {
  const auto parsed = ParseReport(kBaseline);
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  const BenchReport& report = parsed.value();
  ASSERT_EQ(report.experiments.size(), 2u);
  EXPECT_EQ(report.experiments[0].id, "E20");
  EXPECT_EQ(report.experiments[0].title, "serving throughput");
  ASSERT_EQ(report.experiments[0].headers.size(), 5u);
  ASSERT_EQ(report.experiments[0].rows.size(), 2u);
  EXPECT_TRUE(report.experiments[0].rows[0][1].is_number);
  EXPECT_DOUBLE_EQ(report.experiments[0].rows[0][1].number, 100.0);
  // E21's first column is strings ("1", "4"), not numbers.
  EXPECT_FALSE(report.experiments[1].rows[0][0].is_number);
  EXPECT_EQ(report.experiments[1].rows[0][0].text, "1");
}

TEST(BenchdiffParse, RejectsMalformedDocuments) {
  EXPECT_FALSE(ParseReport("").ok());
  EXPECT_FALSE(ParseReport("garbage").ok());
  EXPECT_FALSE(ParseReport(R"({"experiments":[)").ok());
  EXPECT_FALSE(ParseReport(R"({"wrong":[]})").ok());
  // Row wider than the header list.
  EXPECT_FALSE(ParseReport(R"({"experiments":[{"id":"E1","title":"t",)"
                           R"("headers":["a"],"rows":[[1,2]]}]})")
                   .ok());
  // Missing id.
  EXPECT_FALSE(ParseReport(R"({"experiments":[{"title":"t",)"
                           R"("headers":["a"],"rows":[[1]]}]})")
                   .ok());
  // Duplicate experiment id.
  EXPECT_FALSE(
      ParseReport(R"({"experiments":[)"
                  R"({"id":"E1","title":"t","headers":["a"],"rows":[[1]]},)"
                  R"({"id":"E1","title":"t","headers":["a"],"rows":[[1]]})"
                  R"(]})")
          .ok());
  // Trailing content after the document.
  EXPECT_FALSE(ParseReport(R"({"experiments":[]}x)").ok());
}

TEST(BenchdiffHeaders, PerfColumnsAreUnitTokens) {
  EXPECT_TRUE(IsPerfHeader("p50 ms"));
  EXPECT_TRUE(IsPerfHeader("total ms"));
  EXPECT_TRUE(IsPerfHeader("us/op"));
  EXPECT_TRUE(IsPerfHeader("qps"));
  EXPECT_TRUE(IsPerfHeader("speedup"));
  EXPECT_TRUE(IsPerfHeader("build sec"));
  // Token match, not substring match: "terms" must not read as "ms".
  EXPECT_FALSE(IsPerfHeader("terms"));
  EXPECT_FALSE(IsPerfHeader("cns evaluated"));
  EXPECT_FALSE(IsPerfHeader("cache misses"));
  EXPECT_FALSE(IsPerfHeader("results"));
}

TEST(BenchdiffDiff, IdenticalReportsAreClean) {
  const auto base = ParseReport(kBaseline);
  ASSERT_TRUE(base.ok());
  const std::vector<Finding> findings =
      DiffReports(base.value(), base.value(), DiffOptions{});
  EXPECT_TRUE(findings.empty());
}

TEST(BenchdiffDiff, InjectedLatencyRegressionFails) {
  const auto base = ParseReport(kBaseline);
  // p99 of the 1-worker row: 20.0 -> 90.0 ms, far past tolerance 1.5.
  const auto cur = ParseReport(Patched("20.0", "90.0"));
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(cur.ok());
  const std::vector<Finding> findings =
      DiffReports(base.value(), cur.value(), DiffOptions{});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].experiment, "E20");
  EXPECT_EQ(findings[0].rule, "perf-regression");
  EXPECT_TRUE(findings[0].error);
}

TEST(BenchdiffDiff, InjectedThroughputDropFails) {
  const auto base = ParseReport(kBaseline);
  // qps of the 4-worker row: 350 -> 100, a 3.5x throughput drop.
  const auto cur = ParseReport(Patched("350.0", "100.0"));
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(cur.ok());
  const std::vector<Finding> findings =
      DiffReports(base.value(), cur.value(), DiffOptions{});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "perf-regression");
  EXPECT_TRUE(findings[0].error);
}

TEST(BenchdiffDiff, ToleranceBandAbsorbsNoise) {
  const auto base = ParseReport(kBaseline);
  // 20.0 -> 25.0 ms is a 1.25x drift, inside the default 1.5x band.
  const auto cur = ParseReport(Patched("20.0", "25.0"));
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(cur.ok());
  EXPECT_TRUE(DiffReports(base.value(), cur.value(), DiffOptions{}).empty());
  // A generous band (the ci.sh setting) absorbs even a 3x drift.
  const auto cur3 = ParseReport(Patched("20.0", "60.0"));
  ASSERT_TRUE(cur3.ok());
  DiffOptions generous;
  generous.tolerance = 5.0;
  EXPECT_TRUE(
      DiffReports(base.value(), cur3.value(), generous).empty());
}

TEST(BenchdiffDiff, ScheduleDependentCountsAreIgnored) {
  const auto base = ParseReport(kBaseline);
  // "cns evaluated" is a work counter: 1234 -> 999999 must not fire.
  const auto cur = ParseReport(Patched("1234", "999999"));
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(cur.ok());
  EXPECT_TRUE(DiffReports(base.value(), cur.value(), DiffOptions{}).empty());
}

TEST(BenchdiffDiff, ImprovementIsANoteNotAnError) {
  const auto base = ParseReport(kBaseline);
  // p99: 20.0 -> 5.0 ms, 4x better.
  const auto cur = ParseReport(Patched("20.0", "5.0"));
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(cur.ok());
  const std::vector<Finding> findings =
      DiffReports(base.value(), cur.value(), DiffOptions{});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "perf-improvement");
  EXPECT_FALSE(findings[0].error);
}

TEST(BenchdiffDiff, StructuralDriftIsAnError) {
  const auto base = ParseReport(kBaseline);
  ASSERT_TRUE(base.ok());
  // Missing experiment: current has only E20.
  const auto only_e20 = ParseReport(
      R"({"experiments":[{"id":"E20","title":"serving throughput",)"
      R"("headers":["workers","qps","p50 ms","p99 ms","cns evaluated"],)"
      R"("rows":[[1,100.0,5.0,20.0,1234],[4,350.0,6.0,25.0,4321]]}]})");
  ASSERT_TRUE(only_e20.ok());
  std::vector<Finding> findings =
      DiffReports(base.value(), only_e20.value(), DiffOptions{});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].experiment, "E21");
  EXPECT_EQ(findings[0].rule, "missing-experiment");
  EXPECT_TRUE(findings[0].error);

  // Changed header: "p99 ms" renamed.
  const auto renamed = ParseReport(Patched("p99 ms", "p99_ms"));
  ASSERT_TRUE(renamed.ok());
  findings = DiffReports(base.value(), renamed.value(), DiffOptions{});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "header-mismatch");

  // Changed string label.
  const auto relabeled = ParseReport(Patched(R"(["1",80.0)", R"(["2",80.0)"));
  ASSERT_TRUE(relabeled.ok());
  findings = DiffReports(base.value(), relabeled.value(), DiffOptions{});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "cell-mismatch");

  // Dropped row.
  const auto fewer = ParseReport(
      Patched(R"([["1",80.0,1.0],["4",25.0,3.2]])", R"([["1",80.0,1.0]])"));
  ASSERT_TRUE(fewer.ok());
  findings = DiffReports(base.value(), fewer.value(), DiffOptions{});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "row-count");
}

TEST(BenchdiffDiff, NewExperimentIsANote) {
  const auto base = ParseReport(
      R"({"experiments":[{"id":"E20","title":"serving throughput",)"
      R"("headers":["workers","qps","p50 ms","p99 ms","cns evaluated"],)"
      R"("rows":[[1,100.0,5.0,20.0,1234],[4,350.0,6.0,25.0,4321]]}]})");
  const auto cur = ParseReport(kBaseline);
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(cur.ok());
  const std::vector<Finding> findings =
      DiffReports(base.value(), cur.value(), DiffOptions{});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].experiment, "E21");
  EXPECT_EQ(findings[0].rule, "new-experiment");
  EXPECT_FALSE(findings[0].error);
}

TEST(BenchdiffRender, TextAndJsonAreStable) {
  const auto base = ParseReport(kBaseline);
  const auto cur = ParseReport(Patched("20.0", "90.0"));
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(cur.ok());
  const std::vector<Finding> findings =
      DiffReports(base.value(), cur.value(), DiffOptions{});
  const std::string text = RenderText("cur.json", findings);
  EXPECT_EQ(text,
            "cur.json: E20: perf-regression: row 0 column 'p99 ms': "
            "20.000 -> 90.000 (4.500x worse, tolerance 1.500x)\n");
  const std::string json = RenderJson("cur.json", findings);
  EXPECT_EQ(json,
            "{\"file\":\"cur.json\",\"findings\":[{\"experiment\":\"E20\","
            "\"rule\":\"perf-regression\",\"error\":true,\"message\":"
            "\"row 0 column 'p99 ms': 20.000 -> 90.000 (4.500x worse, "
            "tolerance 1.500x)\"}]}");
}

}  // namespace
}  // namespace kws::benchdiff

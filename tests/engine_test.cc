#include <gtest/gtest.h>

#include <string>

#include "core/engine/engine.h"
#include "relational/dblp.h"

namespace kws::engine {
namespace {

class EngineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    relational::DblpOptions opts;
    opts.num_authors = 60;
    opts.num_papers = 120;
    opts.num_conferences = 8;
    dblp_ = new relational::DblpDatabase(MakeDblpDatabase(opts));
    engine_ = new KeywordSearchEngine(*dblp_->db);
  }
  static void TearDownTestSuite() {
    delete engine_;
    delete dblp_;
    engine_ = nullptr;
    dblp_ = nullptr;
  }
  static relational::DblpDatabase* dblp_;
  static KeywordSearchEngine* engine_;
};

relational::DblpDatabase* EngineTest::dblp_ = nullptr;
KeywordSearchEngine* EngineTest::engine_ = nullptr;

TEST_F(EngineTest, EndToEndCnSearch) {
  EngineResponse r = engine_->Search("keyword search");
  EXPECT_EQ(r.cleaned_query,
            (std::vector<std::string>{"keyword", "search"}));
  ASSERT_FALSE(r.results.empty());
  for (size_t i = 1; i < r.results.size(); ++i) {
    EXPECT_GE(r.results[i - 1].score, r.results[i].score);
  }
  EXPECT_FALSE(r.results[0].description.empty());
  EXPECT_FALSE(r.results[0].tuples.empty());
}

TEST_F(EngineTest, CleansTyposBeforeSearching) {
  EngineResponse r = engine_->Search("keywrd searh");
  EXPECT_TRUE(r.query_was_corrected);
  EXPECT_EQ(r.cleaned_query,
            (std::vector<std::string>{"keyword", "search"}));
  EXPECT_FALSE(r.results.empty());
}

TEST_F(EngineTest, GraphBackendReturnsTrees) {
  EngineOptions opts;
  opts.backend = Backend::kDataGraph;
  EngineResponse r = engine_->Search("keyword search", opts);
  ASSERT_FALSE(r.results.empty());
  EXPECT_FALSE(r.results[0].tuples.empty());
}

TEST_F(EngineTest, SuggestionsExcludeQueryTerms) {
  EngineResponse r = engine_->Search("keyword");
  for (const std::string& s : r.suggestions) {
    EXPECT_NE(s, "keyword");
  }
}

TEST_F(EngineTest, CompletionWorks) {
  auto completions = engine_->Complete("key");
  ASSERT_FALSE(completions.empty());
  for (const std::string& c : completions) {
    EXPECT_TRUE(c.starts_with("key")) << c;
  }
}

TEST_F(EngineTest, EmptyAndGarbageQueries) {
  EXPECT_TRUE(engine_->Search("").results.empty());
  EngineOptions no_clean;
  no_clean.clean_query = false;
  EXPECT_TRUE(engine_->Search("qqqqxxxx zzzzyyyy", no_clean).results.empty());
}

}  // namespace
}  // namespace kws::engine

// ------------------------------------------------------- XML facade tests

#include "core/engine/xml_engine.h"
#include "xml/bibgen.h"

namespace kws::engine {
namespace {

class XmlEngineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    doc_ = new xml::BibDocument(
        xml::MakeBibDocument({.seed = 4, .num_venues = 6}));
    engine_ = new XmlKeywordSearch(doc_->tree);
  }
  static void TearDownTestSuite() {
    delete engine_;
    delete doc_;
    engine_ = nullptr;
    doc_ = nullptr;
  }
  static xml::BibDocument* doc_;
  static XmlKeywordSearch* engine_;
};

xml::BibDocument* XmlEngineTest::doc_ = nullptr;
XmlKeywordSearch* XmlEngineTest::engine_ = nullptr;

TEST_F(XmlEngineTest, RankedResultsWithSnippets) {
  XmlResponse r = engine_->Search(doc_->vocabulary[0]);
  ASSERT_FALSE(r.results.empty());
  for (size_t i = 1; i < r.results.size(); ++i) {
    EXPECT_GE(r.results[i - 1].score, r.results[i].score);
  }
  for (const XmlResult& res : r.results) {
    EXPECT_FALSE(res.snippet.empty());
    // The display root encloses or equals the anchor, or an ancestor.
    EXPECT_TRUE(doc_->tree.IsAncestorOrSelf(res.display_root, res.anchor) ||
                doc_->tree.IsAncestorOrSelf(res.anchor, res.display_root));
  }
  EXPECT_FALSE(r.clusters.empty());
}

TEST_F(XmlEngineTest, ElcaAtLeastAsManyAsSlca) {
  XmlEngineOptions slca_opts;
  slca_opts.k = 1000;
  XmlEngineOptions elca_opts = slca_opts;
  elca_opts.semantics = XmlSemantics::kElca;
  const std::string q = doc_->vocabulary[0] + " " + doc_->vocabulary[1];
  const size_t slca = engine_->Search(q, slca_opts).results.size();
  const size_t elca = engine_->Search(q, elca_opts).results.size();
  EXPECT_GE(elca, slca);
}

TEST_F(XmlEngineTest, EmptyAndUnmatchedQueries) {
  EXPECT_TRUE(engine_->Search("").results.empty());
  EXPECT_TRUE(engine_->Search("zzznope").results.empty());
}

}  // namespace
}  // namespace kws::engine

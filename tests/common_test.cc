#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cmath>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/deadline.h"
#include "common/metrics.h"
#include "common/random.h"
#include "common/status.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "common/topk.h"

namespace kws {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("no such table");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "no such table");
  EXPECT_EQ(s.ToString(), "NotFound: no such table");
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  std::set<StatusCode> codes = {
      Status::InvalidArgument("x").code(), Status::NotFound("x").code(),
      Status::AlreadyExists("x").code(),   Status::OutOfRange("x").code(),
      Status::FailedPrecondition("x").code(),
      Status::Unimplemented("x").code(),   Status::Internal("x").code(),
      Status::DeadlineExceeded("x").code(),
      Status::ResourceExhausted("x").code()};
  EXPECT_EQ(codes.size(), 9u);
}

TEST(StatusTest, ServingCodesRenderByName) {
  EXPECT_EQ(Status::DeadlineExceeded("late").ToString(),
            "DeadlineExceeded: late");
  EXPECT_EQ(Status::ResourceExhausted("full").ToString(),
            "ResourceExhausted: full");
}

Status FailsThenPropagates() {
  KWS_RETURN_IF_ERROR(Status::Internal("inner"));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorMacroPropagates) {
  Status s = FailsThenPropagates();
  EXPECT_EQ(s.code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 7);
  EXPECT_EQ(r.value_or(-1), 7);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::InvalidArgument("bad"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(RngTest, DeterministicForEqualSeeds) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.Next() == b.Next());
  EXPECT_LT(equal, 5);
}

TEST(RngTest, UniformRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.Uniform(10), 10u);
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(5);
  EXPECT_FALSE(rng.Chance(0.0));
  EXPECT_TRUE(rng.Chance(1.0));
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(11);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(ZipfTest, RankZeroMostFrequent) {
  Rng rng(42);
  ZipfSampler zipf(100, 1.0);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 20000; ++i) ++counts[zipf.Sample(rng)];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[0], counts[50]);
  // Zipf(1.0): rank 0 should get roughly 1/H(100) ~ 19% of the mass.
  EXPECT_GT(counts[0], 20000 / 10);
}

TEST(ZipfTest, ThetaZeroIsUniform) {
  Rng rng(42);
  ZipfSampler zipf(10, 0.0);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 50000; ++i) ++counts[zipf.Sample(rng)];
  for (int c : counts) {
    EXPECT_GT(c, 4000);
    EXPECT_LT(c, 6000);
  }
}

TEST(SplitSeedTest, DeterministicAndDecorrelated) {
  EXPECT_EQ(SplitSeed(42, 0), SplitSeed(42, 0));
  std::set<uint64_t> children;
  for (uint64_t stream = 0; stream < 64; ++stream) {
    children.insert(SplitSeed(42, stream));
  }
  EXPECT_EQ(children.size(), 64u);       // distinct per stream
  EXPECT_EQ(children.count(42), 0u);     // distinct from the parent
  EXPECT_NE(SplitSeed(1, 0), SplitSeed(2, 0));
  // Child streams do not collide with each other as Rng sequences either.
  Rng a(SplitSeed(42, 0)), b(SplitSeed(42, 1));
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.Next() == b.Next());
  EXPECT_LT(equal, 5);
}

TEST(DeadlineTest, DefaultIsInfinite) {
  Deadline d;
  EXPECT_TRUE(d.is_infinite());
  EXPECT_FALSE(d.Expired());
  EXPECT_TRUE(std::isinf(d.RemainingMicros()));
  EXPECT_FALSE(Deadline::Infinite().Expired());
}

TEST(DeadlineTest, ZeroBudgetExpiresImmediately) {
  Deadline d = Deadline::AfterMicros(0);
  EXPECT_FALSE(d.is_infinite());
  EXPECT_TRUE(d.Expired());
  EXPECT_LE(d.RemainingMicros(), 0.0);
}

TEST(DeadlineTest, GenerousBudgetNotYetExpired) {
  Deadline d = Deadline::AfterMillis(60000);
  EXPECT_FALSE(d.Expired());
  EXPECT_GT(d.RemainingMicros(), 0.0);
}

TEST(DeadlineCheckerTest, FirstCallChecksClock) {
  // A zero budget must trip at the very first cancellation point even
  // with a large stride.
  DeadlineChecker checker(Deadline::AfterMicros(0), /*stride=*/1024);
  EXPECT_TRUE(checker.Expired());
  EXPECT_TRUE(checker.Expired());  // latched
}

TEST(DeadlineCheckerTest, InfiniteNeverExpires) {
  DeadlineChecker checker(Deadline::Infinite());
  for (int i = 0; i < 10000; ++i) EXPECT_FALSE(checker.Expired());
}

TEST(CounterTest, AddsAndReads) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Add();
  c.Add(9);
  EXPECT_EQ(c.value(), 10u);
}

TEST(LatencyHistogramTest, CountsMeanAndSum) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.MeanMicros(), 0.0);
  EXPECT_DOUBLE_EQ(h.PercentileMicros(0.5), 0.0);
  h.Record(100);
  h.Record(200);
  h.Record(300);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_NEAR(h.sum_micros(), 600.0, 1e-6);
  EXPECT_NEAR(h.MeanMicros(), 200.0, 1e-6);
}

TEST(LatencyHistogramTest, PercentilesBracketTheData) {
  LatencyHistogram h;
  for (int i = 0; i < 99; ++i) h.Record(10);   // bucket [8, 16)
  h.Record(5000);                              // one tail outlier
  const double p50 = h.PercentileMicros(0.50);
  EXPECT_GE(p50, 8.0);
  EXPECT_LT(p50, 16.0);
  // The p99+ tail must land in the outlier's power-of-two bucket.
  EXPECT_GE(h.PercentileMicros(0.999), 4096.0);
  EXPECT_LE(h.PercentileMicros(0.999), 8192.0);
}

TEST(MetricsRegistryTest, StablePointersAndRendering) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("queries");
  EXPECT_EQ(registry.GetCounter("queries"), c);  // same instrument
  c->Add(3);
  registry.GetHistogram("latency")->Record(100);
  const std::string text = registry.RenderText();
  EXPECT_NE(text.find("queries 3"), std::string::npos) << text;
  EXPECT_NE(text.find("latency count=1"), std::string::npos) << text;
}

TEST(MetricsThreadingTest, ConcurrentRecordingLosesNothing) {
  // Exercised under TSan by ci.sh: counters and histograms must be safe
  // to bump from many threads, and no increment may be lost.
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("hits");
  LatencyHistogram* h = registry.GetHistogram("lat");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;  // stresses raw contention on purpose -- kwslint: allow(raw-thread)
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        c->Add();
        h->Record(static_cast<double>(t * 100 + 1));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c->value(), static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(h->count(), static_cast<uint64_t>(kThreads * kPerThread));
}

TEST(LatencyHistogramTest, BucketSnapshotListsOccupiedBucketsInOrder) {
  LatencyHistogram h;
  EXPECT_TRUE(h.BucketSnapshot().empty());
  h.Record(1);     // [0, 2)    -> bucket 0
  h.Record(3);     // [2, 4)    -> bucket 1
  h.Record(3);
  h.Record(1000);  // [512, 1024) -> bucket 9
  const std::vector<HistogramBucket> s = h.BucketSnapshot();
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s[0].index, 0u);
  EXPECT_EQ(s[0].lo_micros, 0.0);
  EXPECT_EQ(s[0].hi_micros, 2.0);
  EXPECT_EQ(s[0].count, 1u);
  EXPECT_EQ(s[1].index, 1u);
  EXPECT_EQ(s[1].lo_micros, 2.0);
  EXPECT_EQ(s[1].hi_micros, 4.0);
  EXPECT_EQ(s[1].count, 2u);
  EXPECT_EQ(s[2].index, 9u);
  EXPECT_EQ(s[2].lo_micros, 512.0);
  EXPECT_EQ(s[2].hi_micros, 1024.0);
  EXPECT_EQ(s[2].count, 1u);
}

TEST(MetricsRegistryTest, RenderJsonHasStableShapeAndSortedNames) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.RenderJson(), "{\"counters\":{},\"histograms\":{}}");
  // Insert out of order: rendering sorts by name.
  registry.GetCounter("serve.misses")->Add(2);
  registry.GetCounter("serve.hits")->Add(1);
  registry.GetHistogram("serve.latency_micros")->Record(100);
  const std::string json = registry.RenderJson();
  EXPECT_NE(
      json.find("\"counters\":{\"serve.hits\":1,\"serve.misses\":2}"),
      std::string::npos)
      << json;
  EXPECT_NE(json.find("\"histograms\":{\"serve.latency_micros\":{\"count\":1,"
                      "\"sum_micros\":100.000"),
            std::string::npos)
      << json;
  // 100us lands in bucket 6 ([64, 128)); only occupied buckets render.
  EXPECT_NE(json.find("\"buckets\":[{\"index\":6,\"lo_micros\":64.000,"
                      "\"hi_micros\":128.000,\"count\":1}]"),
            std::string::npos)
      << json;
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  // The JSON exporter must not disturb the text rendering.
  const std::string text = registry.RenderText();
  EXPECT_NE(text.find("serve.hits 1"), std::string::npos) << text;
  EXPECT_NE(text.find("serve.latency_micros count=1"), std::string::npos)
      << text;
}

TEST(MetricsRegistryTest, RenderJsonGoldenBytes) {
  // Dashboards and the benchdiff gate key off this document: the full
  // rendering is pinned byte for byte, so any format change is a
  // deliberate golden update.
  MetricsRegistry registry;
  registry.GetCounter("serve.hits")->Add(3);
  registry.GetHistogram("serve.latency_micros")->Record(100);
  registry.GetHistogram("serve.latency_micros")->Record(100);
  EXPECT_EQ(
      registry.RenderJson(),
      "{\"counters\":{\"serve.hits\":3},"
      "\"histograms\":{\"serve.latency_micros\":{"
      "\"count\":2,\"sum_micros\":200.000,\"mean_micros\":100.000,"
      "\"p50_micros\":96.000,\"p95_micros\":124.800,\"p99_micros\":127.360,"
      "\"buckets\":[{\"index\":6,\"lo_micros\":64.000,"
      "\"hi_micros\":128.000,\"count\":2}]}}}");
}

TEST(LatencyHistogramTest, PercentileEdgeCases) {
  // Empty: every percentile is 0.
  LatencyHistogram empty;
  EXPECT_DOUBLE_EQ(empty.PercentileMicros(0.0), 0.0);
  EXPECT_DOUBLE_EQ(empty.PercentileMicros(0.5), 0.0);
  EXPECT_DOUBLE_EQ(empty.PercentileMicros(1.0), 0.0);

  // Single occupied bucket: percentiles interpolate inside [lo, hi) and
  // never leave it.
  LatencyHistogram single;
  single.Record(100);  // bucket 6 = [64, 128)
  for (double p : {0.0, 0.25, 0.5, 0.75, 0.99, 1.0}) {
    const double v = single.PercentileMicros(p);
    EXPECT_GE(v, 64.0) << p;
    EXPECT_LE(v, 128.0) << p;
  }
  EXPECT_LT(single.PercentileMicros(0.25), single.PercentileMicros(0.75));

  // Bucket 0 covers [0, 2): sub-microsecond and zero observations land
  // there and interpolate from a lower edge of 0.
  LatencyHistogram tiny;
  tiny.Record(0);
  tiny.Record(0.5);
  const double p50 = tiny.PercentileMicros(0.5);
  EXPECT_GE(p50, 0.0);
  EXPECT_LT(p50, 2.0);
  EXPECT_DOUBLE_EQ(LatencyHistogram::BucketLowerMicros(0), 0.0);
  EXPECT_DOUBLE_EQ(LatencyHistogram::BucketUpperMicros(0), 2.0);
  EXPECT_EQ(LatencyHistogram::BucketIndexFor(0), 0u);
  EXPECT_EQ(LatencyHistogram::BucketIndexFor(1.99), 0u);
  EXPECT_EQ(LatencyHistogram::BucketIndexFor(2.0), 1u);

  // The static bucket-array form agrees with the instance method.
  std::array<uint64_t, LatencyHistogram::kNumBuckets> counts{};
  counts[6] = 1;
  EXPECT_DOUBLE_EQ(LatencyHistogram::PercentileOfBuckets(counts, 0.5),
                   single.PercentileMicros(0.5));
  std::array<uint64_t, LatencyHistogram::kNumBuckets> none{};
  EXPECT_DOUBLE_EQ(LatencyHistogram::PercentileOfBuckets(none, 0.99), 0.0);
}

TEST(MetricsThreadingTest, RenderWhileRecordingIsSafe) {
  // Exercised under TSan by ci.sh: both renderers run concurrently with
  // writers (the serve metrics endpoint vs live traffic) and must only
  // ever see valid snapshots.
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("hits");
  LatencyHistogram* h = registry.GetHistogram("lat");
  constexpr int kWriters = 3;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> threads;  // kwslint: allow(raw-thread) TSan fixture
  for (int t = 0; t < kWriters; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        c->Add();
        h->Record(static_cast<double>(t * 50 + 1));
        // Writers also race instrument creation against the renderers.
        registry.GetCounter("writer." + std::to_string(t))->Add();
      }
    });
  }
  std::string json;
  std::string text;
  for (int i = 0; i < 200; ++i) {
    json = registry.RenderJson();
    text = registry.RenderText();
  }
  for (auto& t : threads) t.join();
  json = registry.RenderJson();
  text = registry.RenderText();
  const std::string want =
      "\"hits\":" + std::to_string(kWriters * kPerThread);
  EXPECT_NE(json.find(want), std::string::npos);
  EXPECT_NE(text.find("hits " + std::to_string(kWriters * kPerThread)),
            std::string::npos);
  EXPECT_EQ(h->count(), static_cast<uint64_t>(kWriters * kPerThread));
}

TEST(StringsTest, ToLower) {
  EXPECT_EQ(ToLower("SIGMOD Paper"), "sigmod paper");
  EXPECT_EQ(ToLower(""), "");
}

TEST(StringsTest, SplitDropsEmptyPieces) {
  EXPECT_EQ(Split("a,,b,c", ","), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("  x  y ", " "), (std::vector<std::string>{"x", "y"}));
  EXPECT_TRUE(Split("", ",").empty());
}

TEST(StringsTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(StringsTest, StartsWith) {
  EXPECT_TRUE(StartsWith("database", "data"));
  EXPECT_FALSE(StartsWith("data", "database"));
  EXPECT_TRUE(StartsWith("x", ""));
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(Trim("  hi  "), "hi");
  EXPECT_EQ(Trim("hi"), "hi");
  EXPECT_EQ(Trim("   "), "");
}

TEST(TopKTest, KeepsBestK) {
  TopK<int> top(3);
  for (int i = 0; i < 10; ++i) top.Offer(i, i);
  auto sorted = top.TakeSorted();
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_EQ(sorted[0].second, 9);
  EXPECT_EQ(sorted[1].second, 8);
  EXPECT_EQ(sorted[2].second, 7);
}

TEST(TopKTest, WouldRejectMatchesOfferBehaviour) {
  TopK<int> top(2);
  EXPECT_FALSE(top.WouldReject(0.0));  // not yet full
  top.Offer(5, 1);
  top.Offer(7, 2);
  EXPECT_TRUE(top.WouldReject(4.0));
  EXPECT_TRUE(top.WouldReject(5.0));   // ties rejected
  EXPECT_FALSE(top.WouldReject(6.0));
  EXPECT_TRUE(top.Offer(6.0, 3));
  EXPECT_EQ(top.Threshold(), 6.0);
}

TEST(TopKTest, StableForEqualScores) {
  TopK<char> top(2);
  top.Offer(1.0, 'a');
  top.Offer(1.0, 'b');
  auto sorted = top.TakeSorted();
  ASSERT_EQ(sorted.size(), 2u);
  EXPECT_EQ(sorted[0].second, 'a');
  EXPECT_EQ(sorted[1].second, 'b');
}

// Property sweep: for any k and any input size, TakeSorted returns the
// lexicographically-best k scores in nonincreasing order.
class TopKPropertyTest : public ::testing::TestWithParam<std::tuple<int, int>> {
};

TEST_P(TopKPropertyTest, MatchesSortReference) {
  const int k = std::get<0>(GetParam());
  const int n = std::get<1>(GetParam());
  Rng rng(static_cast<uint64_t>(k * 1000 + n));
  TopK<int> top(static_cast<size_t>(k));
  std::vector<double> scores;
  for (int i = 0; i < n; ++i) {
    double s = static_cast<double>(rng.Uniform(50));
    scores.push_back(s);
    top.Offer(s, i);
  }
  std::sort(scores.rbegin(), scores.rend());
  auto got = top.TakeSorted();
  ASSERT_EQ(got.size(), std::min<size_t>(k, n));
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_DOUBLE_EQ(got[i].first, scores[i]) << "at rank " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TopKPropertyTest,
    ::testing::Combine(::testing::Values(1, 2, 5, 16),
                       ::testing::Values(0, 1, 10, 100, 1000)));

struct IntOrder {
  bool operator()(int a, int b) const { return a > b; }
};

TEST(OrderedTopKTest, RetainedSetIsOfferOrderIndependent) {
  const std::vector<int> forward = {5, 1, 9, 3, 9, 7, 1, 8};
  std::vector<int> backward(forward.rbegin(), forward.rend());
  OrderedTopK<int, IntOrder> a(4), b(4);
  for (int v : forward) a.Offer(v);
  for (int v : backward) b.Offer(v);
  EXPECT_EQ(a.TakeSorted(), b.TakeSorted());
}

TEST(OrderedTopKTest, WouldRejectIsExactlyOfferFailure) {
  OrderedTopK<int, IntOrder> top(3);
  for (int v : {10, 20, 30, 25}) top.Offer(v);
  // Retained: {30, 25, 20}; worst is 20.
  EXPECT_EQ(top.Worst(), 20);
  EXPECT_TRUE(top.WouldReject(20));  // equal does not rank above
  EXPECT_TRUE(top.WouldReject(5));
  EXPECT_FALSE(top.WouldReject(21));
}

TEST(ThreadPoolTest, RunOnAllCoversEveryWorkerIndexOnce) {
  ThreadPool pool(4);
  ASSERT_EQ(pool.size(), 4u);
  std::vector<std::atomic<int>> hits(4);
  pool.RunOnAll([&](size_t w) { hits[w].fetch_add(1); });
  for (size_t w = 0; w < 4; ++w) EXPECT_EQ(hits[w].load(), 1);
}

TEST(ThreadPoolTest, RegionsAreRepeatableAndBlockUntilDone) {
  ThreadPool pool(3);
  std::atomic<int> sum{0};
  for (int region = 0; region < 50; ++region) {
    pool.RunOnAll([&](size_t w) { sum.fetch_add(static_cast<int>(w) + 1); });
  }
  // Each region adds 1 + 2 + 3; RunOnAll returning proves completion.
  EXPECT_EQ(sum.load(), 50 * 6);
}

TEST(ThreadPoolTest, StaticStridingPartitionsAllItems) {
  ThreadPool pool(4);
  const size_t n = 103;
  std::vector<std::atomic<int>> seen(n);
  pool.RunOnAll([&](size_t w) {
    for (size_t i = w; i < n; i += pool.size()) seen[i].fetch_add(1);
  });
  for (size_t i = 0; i < n; ++i) EXPECT_EQ(seen[i].load(), 1) << "item " << i;
}

TEST(ThreadPoolTest, EmptyPoolRunOnAllIsANoOp) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 0u);
  bool ran = false;
  pool.RunOnAll([&](size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

}  // namespace
}  // namespace kws

// Fixture-driven tests for the kwslint rule engine: each known-bad
// snippet must trip exactly its rule, and the allow()/file-allow()
// suppression comments must silence it again. The binary's exit code
// contract (nonzero on findings) is pinned through LintFiles, which is
// what main() returns.

#include "kwslint/rules.h"

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "kwslint/source.h"

namespace kws::lint {
namespace {

std::vector<Diagnostic> Lint(const std::string& path,
                             const std::string& content) {
  return RunRules(SourceFile::Parse(path, content));
}

size_t CountRule(const std::vector<Diagnostic>& diags,
                 const std::string& rule) {
  size_t n = 0;
  for (const Diagnostic& d : diags) {
    if (d.rule == rule) ++n;
  }
  return n;
}

// --- raw-random -----------------------------------------------------------

TEST(KwslintRawRandom, FlagsEveryBannedSeedSource) {
  const std::string bad =
      "#include <cstdlib>\n"
      "int F() {\n"
      "  srand(42);\n"
      "  std::random_device rd;\n"
      "  auto seed = time(nullptr);\n"
      "  return std::rand();\n"
      "}\n";
  std::vector<Diagnostic> diags = Lint("src/core/foo.cc", bad);
  EXPECT_EQ(CountRule(diags, "raw-random"), 4u);
}

TEST(KwslintRawRandom, RngImplementationIsExempt) {
  EXPECT_EQ(CountRule(Lint("src/common/random.cc", "int x = std::rand();\n"),
                      "raw-random"),
            0u);
}

TEST(KwslintRawRandom, AppliesToTestsAndBenches) {
  EXPECT_EQ(CountRule(Lint("tests/foo_test.cc", "int x = std::rand();\n"),
                      "raw-random"),
            1u);
  EXPECT_EQ(CountRule(Lint("bench/bench_foo.cc", "std::mt19937 gen;\n"),
                      "raw-random"),
            1u);
}

// --- no-throw -------------------------------------------------------------

TEST(KwslintNoThrow, FlagsThrowOnLibraryPathsOnly) {
  const std::string bad = "void F() { throw 42; }\n";
  EXPECT_EQ(CountRule(Lint("src/core/foo.cc", bad), "no-throw"), 1u);
  // Tests may throw (gtest itself does).
  EXPECT_EQ(CountRule(Lint("tests/foo_test.cc", bad), "no-throw"), 0u);
}

TEST(KwslintNoThrow, IgnoresCommentsAndStrings) {
  const std::string ok =
      "// may throw in spirit\n"
      "const char* kMsg = \"never throw\";\n";
  EXPECT_EQ(CountRule(Lint("src/core/foo.cc", ok), "no-throw"), 0u);
}

// --- raw-thread -----------------------------------------------------------

TEST(KwslintRawThread, FlagsNakedThreadAsyncDetach) {
  const std::string bad =
      "void F() {\n"
      "  std::thread t([] {});\n"
      "  t.detach();\n"
      "  auto fut = std::async(G);\n"
      "}\n";
  EXPECT_EQ(CountRule(Lint("src/core/foo.cc", bad), "raw-thread"), 3u);
  // The rule holds in tests too: deterministic schedules need the pool.
  EXPECT_EQ(CountRule(Lint("tests/foo_test.cc", bad), "raw-thread"), 3u);
}

TEST(KwslintRawThread, ThreadPoolImplementationIsExempt) {
  EXPECT_EQ(CountRule(Lint("src/common/thread_pool.cc",
                           "std::thread t([] {});\n"),
                      "raw-thread"),
            0u);
}

// --- no-iostream ----------------------------------------------------------

TEST(KwslintNoIostream, FlagsCoutCerrInSrcOnly) {
  const std::string bad =
      "void F() { std::cout << 1; std::cerr << 2; }\n";
  EXPECT_EQ(CountRule(Lint("src/core/foo.cc", bad), "no-iostream"), 2u);
  // Benches and examples print; that is their job.
  EXPECT_EQ(CountRule(Lint("bench/bench_foo.cc", bad), "no-iostream"), 0u);
  EXPECT_EQ(CountRule(Lint("examples/demo.cc", bad), "no-iostream"), 0u);
}

// --- doc-comment ----------------------------------------------------------

std::string Header(const std::string& body) {
  return "#ifndef KWDB_FOO_BAR_H_\n#define KWDB_FOO_BAR_H_\n" + body +
         "#endif  // KWDB_FOO_BAR_H_\n";
}

TEST(KwslintDocComment, FlagsUndocumentedPublicFunction) {
  std::vector<Diagnostic> diags = Lint(
      "src/foo/bar.h", Header("namespace kws::foo {\n"
                              "int Undocumented(int x);\n"
                              "/// Documented.\n"
                              "int Documented(int x);\n"
                              "}  // namespace kws::foo\n"));
  ASSERT_EQ(CountRule(diags, "doc-comment"), 1u);
  EXPECT_EQ(diags[0].line, 4);
}

TEST(KwslintDocComment, PublicClassScopeOnly) {
  std::vector<Diagnostic> diags = Lint(
      "src/foo/bar.h", Header("namespace kws::foo {\n"
                              "/// A widget.\n"
                              "class Widget {\n"
                              " public:\n"
                              "  Widget() = default;\n"     // exempt
                              "  void Hidden();\n"          // fires
                              "  /// Doc'd.\n"
                              "  void Shown();\n"
                              "  int trivial() const { return x_; }\n"
                              " private:\n"
                              "  void Secret();\n"          // private: exempt
                              "  int x_ = 0;\n"
                              "};\n"
                              "}  // namespace kws::foo\n"));
  ASSERT_EQ(CountRule(diags, "doc-comment"), 1u);
  EXPECT_EQ(diags[0].line, 8);
}

TEST(KwslintDocComment, FlagsUndocumentedTypeAndAlias) {
  std::vector<Diagnostic> diags = Lint(
      "src/foo/bar.h", Header("namespace kws::foo {\n"
                              "struct Options {\n"
                              "  int k = 10;\n"
                              "};\n"
                              "using Id = unsigned;\n"
                              "}  // namespace kws::foo\n"));
  EXPECT_EQ(CountRule(diags, "doc-comment"), 2u);
}

TEST(KwslintDocComment, SrcHeadersOnlyAndMembersExempt) {
  // Same undocumented function in a test header: not checked.
  EXPECT_EQ(CountRule(Lint("tests/util.h",
                           "#ifndef KWDB_TESTS_UTIL_H_\n"
                           "#define KWDB_TESTS_UTIL_H_\n"
                           "int Undocumented(int x);\n"
                           "#endif  // KWDB_TESTS_UTIL_H_\n"),
                      "doc-comment"),
            0u);
  // Data members and std::function-typed fields are not declarations the
  // rule covers (the '(' in the template argument must not confuse it).
  EXPECT_EQ(CountRule(Lint("src/foo/bar.h",
                           Header("namespace kws::foo {\n"
                                  "/// S.\n"
                                  "struct S {\n"
                                  "  int count = 0;\n"
                                  "  std::function<void(int)> hook;\n"
                                  "};\n"
                                  "}  // namespace kws::foo\n")),
                      "doc-comment"),
            0u);
}

TEST(KwslintDocComment, FlagsUndocumentedMacro) {
  std::vector<Diagnostic> diags = Lint(
      "src/foo/bar.h",
      Header("#define KWS_FOO(x) ((x) + 1)\n"
             "/// Documented macro.\n"
             "#define KWS_BAR(x) ((x) - 1)\n"));
  ASSERT_EQ(CountRule(diags, "doc-comment"), 1u);
  EXPECT_EQ(diags[0].line, 3);  // KWS_FOO; the guard #define is exempt
}

// --- header-guard ---------------------------------------------------------

TEST(KwslintHeaderGuard, FlagsWrongGuardPragmaOnceAndBadFilename) {
  EXPECT_EQ(CountRule(Lint("src/foo/bar.h",
                           "#ifndef WRONG_GUARD_H_\n"
                           "#define WRONG_GUARD_H_\n"
                           "#endif\n"),
                      "header-guard"),
            1u);
  EXPECT_GE(CountRule(Lint("src/foo/bar.h", "#pragma once\nint x;\n"),
                      "header-guard"),
            1u);
  EXPECT_EQ(CountRule(Lint("src/foo/BadName.cc", "int x;\n"), "header-guard"),
            1u);
  EXPECT_EQ(CountRule(Lint("src/foo/bar.h", Header("")), "header-guard"), 0u);
}

TEST(KwslintHeaderGuard, GuardNameTracksPath) {
  // src/ is stripped; other top dirs are kept (bench_util.h convention).
  EXPECT_EQ(CountRule(Lint("bench/util.h",
                           "#ifndef KWDB_BENCH_UTIL_H_\n"
                           "#define KWDB_BENCH_UTIL_H_\n"
                           "#endif  // KWDB_BENCH_UTIL_H_\n"),
                      "header-guard"),
            0u);
}

// --- mutex-style ----------------------------------------------------------

TEST(KwslintMutexStyle, FlagsBadFieldNameAndManualLock) {
  std::vector<Diagnostic> diags = Lint(
      "src/foo/bar.h", Header("namespace kws::foo {\n"
                              "/// C.\n"
                              "class C {\n"
                              " private:\n"
                              "  std::mutex lock_;\n"       // bad name
                              "  std::mutex mu_;\n"         // fine
                              "  mutable std::mutex big_mu_;\n"  // fine
                              "};\n"
                              "}  // namespace kws::foo\n"));
  EXPECT_EQ(CountRule(diags, "mutex-style"), 1u);

  EXPECT_EQ(CountRule(Lint("src/foo/bar.cc",
                           "void F() {\n"
                           "  mu_.lock();\n"
                           "  mu_.unlock();\n"
                           "}\n"),
                      "mutex-style"),
            2u);
  // RAII guards are the blessed pattern.
  EXPECT_EQ(CountRule(Lint("src/foo/bar.cc",
                           "void F() { std::lock_guard<std::mutex> "
                           "lock(mu_); }\n"),
                      "mutex-style"),
            0u);
}

// --- metric-name ----------------------------------------------------------

TEST(KwslintMetricName, FlagsNonDottedLowercaseNames) {
  const std::string bad =
      "void F(MetricsRegistry* m, trace::Tracer* t) {\n"
      "  m->GetCounter(\"Serve.Submitted\");\n"       // uppercase
      "  m->GetHistogram(\"serve latency\");\n"       // space
      "  t->BeginSpan(\"cn-search\");\n"              // dash
      "  t->AddCounter(\"results!\", 1);\n"           // punctuation
      "  t->AddEvent(\"\");\n"                        // empty
      "}\n";
  EXPECT_EQ(CountRule(Lint("src/serve/foo.cc", bad), "metric-name"), 5u);
}

TEST(KwslintMetricName, AcceptsDottedLowercaseAndSkipsNonLiterals) {
  const std::string good =
      "void F(MetricsRegistry* m, trace::Tracer* t, const char* dyn) {\n"
      "  m->GetCounter(\"serve.cache.hits\");\n"
      "  m->GetHistogram(\"serve.latency_micros\");\n"
      "  t->BeginSpan(\"cn.execute.naive\");\n"
      "  t->AddCounter(\"frontier_rows\", 42);\n"
      "  t->BeginSpan(dyn);\n"  // non-literal: not checked
      "  trace::TraceSpan span(t, \"cn.topk\");\n"
      "}\n";
  EXPECT_EQ(CountRule(Lint("src/serve/foo.cc", good), "metric-name"), 0u);
}

TEST(KwslintMetricName, ChecksTraceSpanDeclarations) {
  const std::string bad =
      "void F(trace::Tracer* t) {\n"
      "  trace::TraceSpan span(t, \"CN.TopK\");\n"
      "}\n";
  std::vector<Diagnostic> diags = Lint("src/core/foo.cc", bad);
  ASSERT_EQ(CountRule(diags, "metric-name"), 1u);
  EXPECT_EQ(diags[0].line, 2);
  // Declarations without a literal (headers, pointer params) are silent.
  EXPECT_EQ(CountRule(Lint("src/core/foo.h",
                           Header("namespace kws::core {\n"
                                  "/// S.\n"
                                  "struct S { trace::TraceSpan* span; };\n"
                                  "}\n")),
                      "metric-name"),
            0u);
}

TEST(KwslintMetricName, ChecksLiteralOnTheContinuationLine) {
  // The common clang-format wrap: the literal lands on the line after
  // the open paren and is still checked.
  const std::string bad =
      "void F(trace::Tracer* t) {\n"
      "  trace::TraceSpan span(t,\n"
      "                        \"CN.TopK\");\n"
      "}\n";
  std::vector<Diagnostic> diags = Lint("src/core/foo.cc", bad);
  ASSERT_EQ(CountRule(diags, "metric-name"), 1u);
  EXPECT_EQ(diags[0].line, 3);
  const std::string good =
      "void F(MetricsRegistry* m) {\n"
      "  m->GetCounter(\n"
      "      \"serve.tuple_cache.evictions\");\n"
      "}\n";
  EXPECT_EQ(CountRule(Lint("src/serve/foo.cc", good), "metric-name"), 0u);
  // A literal more than one line below the open paren stays unchecked.
  const std::string far =
      "void F(trace::Tracer* t) {\n"
      "  t->AddEvent(\n"
      "      //\n"
      "      \"Bad Name\");\n"
      "}\n";
  EXPECT_EQ(CountRule(Lint("src/core/foo.cc", far), "metric-name"), 0u);
}

TEST(KwslintMetricName, AppliesToTestsAndBenches) {
  const std::string bad = "void F(T* t) { t->AddEvent(\"Bad Name\"); }\n";
  EXPECT_EQ(CountRule(Lint("tests/foo_test.cc", bad), "metric-name"), 1u);
  EXPECT_EQ(CountRule(Lint("bench/bench_foo.cc", bad), "metric-name"), 1u);
}

// --- suppression ----------------------------------------------------------

TEST(KwslintSuppression, TrailingAllowSilencesThatLineOnly) {
  const std::string body =
      "void F() {\n"
      "  std::thread a([] {});  // kwslint: allow(raw-thread)\n"
      "  std::thread b([] {});\n"
      "}\n";
  std::vector<Diagnostic> diags = Lint("src/core/foo.cc", body);
  ASSERT_EQ(CountRule(diags, "raw-thread"), 1u);
  EXPECT_EQ(diags[0].line, 3);
}

TEST(KwslintSuppression, AllowListTakesMultipleRules) {
  const std::string body =
      "void F() { std::thread t([] { throw 1; }); }"
      "  // kwslint: allow(raw-thread, no-throw)\n";
  EXPECT_TRUE(Lint("src/core/foo.cc", body).empty());
}

TEST(KwslintSuppression, FileAllowSilencesWholeFile) {
  const std::string body =
      "// kwslint: file-allow(raw-thread)\n"
      "void F() {\n"
      "  std::thread a([] {});\n"
      "  std::thread b([] {});\n"
      "}\n";
  EXPECT_EQ(CountRule(Lint("src/core/foo.cc", body), "raw-thread"), 0u);
}

TEST(KwslintSuppression, AllowDoesNotSilenceOtherRules) {
  const std::string body =
      "void F() { throw 1; }  // kwslint: allow(raw-thread)\n";
  EXPECT_EQ(CountRule(Lint("src/core/foo.cc", body), "no-throw"), 1u);
}

// --- engine contract ------------------------------------------------------

TEST(KwslintEngine, ExitCodeIsNonzeroIffFindings) {
  std::vector<Diagnostic> diags;
  EXPECT_EQ(LintFiles({{"src/core/ok.cc", "int x = 0;\n"}}, &diags), 0);
  EXPECT_TRUE(diags.empty());
  // One seeded violation per rule family; every fixture must fail.
  const std::vector<std::pair<std::string, std::string>> seeded = {
      {"src/core/a.cc", "void F() { srand(1); }\n"},
      {"src/core/b.cc", "void F() { throw 1; }\n"},
      {"src/core/c.cc", "void F() { std::thread t([] {}); }\n"},
      {"src/core/d.cc", "void F() { std::cout << 1; }\n"},
      {"src/foo/e.h", Header("namespace kws::foo {\nint G(int);\n}\n")},
      {"src/foo/f.h", "#pragma once\n"},
      {"src/core/g.cc", "void F() { mu_.lock(); }\n"},
      {"src/core/h.cc", "void F(T* t) { t->AddEvent(\"Bad Name\"); }\n"},
  };
  for (const auto& fixture : seeded) {
    std::vector<Diagnostic> d;
    EXPECT_EQ(LintFiles({fixture}, &d), 1) << fixture.first;
    EXPECT_FALSE(d.empty()) << fixture.first;
  }
}

TEST(KwslintEngine, FormatIsFileLineRuleMessage) {
  Diagnostic d{"src/foo.cc", 12, "no-throw", "boom"};
  EXPECT_EQ(FormatDiagnostic(d), "src/foo.cc:12: no-throw: boom");
}

TEST(KwslintEngine, RuleIdsAreStable) {
  const std::vector<std::string> ids = RuleIds();
  EXPECT_EQ(ids.size(), 8u);
  EXPECT_NE(std::find(ids.begin(), ids.end(), "doc-comment"), ids.end());
  EXPECT_NE(std::find(ids.begin(), ids.end(), "metric-name"), ids.end());
}

}  // namespace
}  // namespace kws::lint

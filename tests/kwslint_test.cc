// Fixture-driven tests for the kwslint rule engine: each known-bad
// snippet must trip exactly its rule, and the allow()/file-allow()
// suppression comments must silence it again. The binary's exit code
// contract (nonzero on findings) is pinned through LintFiles, which is
// what main() returns.

#include "kwslint/rules.h"

#include <algorithm>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "kwslint/output.h"
#include "kwslint/source.h"

namespace kws::lint {
namespace {

std::vector<Diagnostic> Lint(const std::string& path,
                             const std::string& content) {
  return RunRules(SourceFile::Parse(path, content));
}

size_t CountRule(const std::vector<Diagnostic>& diags,
                 const std::string& rule) {
  size_t n = 0;
  for (const Diagnostic& d : diags) {
    if (d.rule == rule) ++n;
  }
  return n;
}

// --- raw-random -----------------------------------------------------------

TEST(KwslintRawRandom, FlagsEveryBannedSeedSource) {
  const std::string bad =
      "#include <cstdlib>\n"
      "int F() {\n"
      "  srand(42);\n"
      "  std::random_device rd;\n"
      "  auto seed = time(nullptr);\n"
      "  return std::rand();\n"
      "}\n";
  std::vector<Diagnostic> diags = Lint("src/core/foo.cc", bad);
  EXPECT_EQ(CountRule(diags, "raw-random"), 4u);
}

TEST(KwslintRawRandom, RngImplementationIsExempt) {
  EXPECT_EQ(CountRule(Lint("src/common/random.cc", "int x = std::rand();\n"),
                      "raw-random"),
            0u);
}

TEST(KwslintRawRandom, AppliesToTestsAndBenches) {
  EXPECT_EQ(CountRule(Lint("tests/foo_test.cc", "int x = std::rand();\n"),
                      "raw-random"),
            1u);
  EXPECT_EQ(CountRule(Lint("bench/bench_foo.cc", "std::mt19937 gen;\n"),
                      "raw-random"),
            1u);
}

// --- no-throw -------------------------------------------------------------

TEST(KwslintNoThrow, FlagsThrowOnLibraryPathsOnly) {
  const std::string bad = "void F() { throw 42; }\n";
  EXPECT_EQ(CountRule(Lint("src/core/foo.cc", bad), "no-throw"), 1u);
  // Tests may throw (gtest itself does).
  EXPECT_EQ(CountRule(Lint("tests/foo_test.cc", bad), "no-throw"), 0u);
}

TEST(KwslintNoThrow, IgnoresCommentsAndStrings) {
  const std::string ok =
      "// may throw in spirit\n"
      "const char* kMsg = \"never throw\";\n";
  EXPECT_EQ(CountRule(Lint("src/core/foo.cc", ok), "no-throw"), 0u);
}

// --- raw-thread -----------------------------------------------------------

TEST(KwslintRawThread, FlagsNakedThreadAsyncDetach) {
  const std::string bad =
      "void F() {\n"
      "  std::thread t([] {});\n"
      "  t.detach();\n"
      "  auto fut = std::async(G);\n"
      "}\n";
  EXPECT_EQ(CountRule(Lint("src/core/foo.cc", bad), "raw-thread"), 3u);
  // The rule holds in tests too: deterministic schedules need the pool.
  EXPECT_EQ(CountRule(Lint("tests/foo_test.cc", bad), "raw-thread"), 3u);
}

TEST(KwslintRawThread, ThreadPoolImplementationIsExempt) {
  EXPECT_EQ(CountRule(Lint("src/common/thread_pool.cc",
                           "std::thread t([] {});\n"),
                      "raw-thread"),
            0u);
}

// --- no-iostream ----------------------------------------------------------

TEST(KwslintNoIostream, FlagsCoutCerrInSrcOnly) {
  const std::string bad =
      "void F() { std::cout << 1; std::cerr << 2; }\n";
  EXPECT_EQ(CountRule(Lint("src/core/foo.cc", bad), "no-iostream"), 2u);
  // Benches and examples print; that is their job.
  EXPECT_EQ(CountRule(Lint("bench/bench_foo.cc", bad), "no-iostream"), 0u);
  EXPECT_EQ(CountRule(Lint("examples/demo.cc", bad), "no-iostream"), 0u);
}

// --- doc-comment ----------------------------------------------------------

std::string Header(const std::string& body) {
  return "#ifndef KWDB_FOO_BAR_H_\n#define KWDB_FOO_BAR_H_\n" + body +
         "#endif  // KWDB_FOO_BAR_H_\n";
}

TEST(KwslintDocComment, FlagsUndocumentedPublicFunction) {
  std::vector<Diagnostic> diags = Lint(
      "src/foo/bar.h", Header("namespace kws::foo {\n"
                              "int Undocumented(int x);\n"
                              "/// Documented.\n"
                              "int Documented(int x);\n"
                              "}  // namespace kws::foo\n"));
  ASSERT_EQ(CountRule(diags, "doc-comment"), 1u);
  EXPECT_EQ(diags[0].line, 4);
}

TEST(KwslintDocComment, PublicClassScopeOnly) {
  std::vector<Diagnostic> diags = Lint(
      "src/foo/bar.h", Header("namespace kws::foo {\n"
                              "/// A widget.\n"
                              "class Widget {\n"
                              " public:\n"
                              "  Widget() = default;\n"     // exempt
                              "  void Hidden();\n"          // fires
                              "  /// Doc'd.\n"
                              "  void Shown();\n"
                              "  int trivial() const { return x_; }\n"
                              " private:\n"
                              "  void Secret();\n"          // private: exempt
                              "  int x_ = 0;\n"
                              "};\n"
                              "}  // namespace kws::foo\n"));
  ASSERT_EQ(CountRule(diags, "doc-comment"), 1u);
  EXPECT_EQ(diags[0].line, 8);
}

TEST(KwslintDocComment, FlagsUndocumentedTypeAndAlias) {
  std::vector<Diagnostic> diags = Lint(
      "src/foo/bar.h", Header("namespace kws::foo {\n"
                              "struct Options {\n"
                              "  int k = 10;\n"
                              "};\n"
                              "using Id = unsigned;\n"
                              "}  // namespace kws::foo\n"));
  EXPECT_EQ(CountRule(diags, "doc-comment"), 2u);
}

TEST(KwslintDocComment, SrcHeadersOnlyAndMembersExempt) {
  // Same undocumented function in a test header: not checked.
  EXPECT_EQ(CountRule(Lint("tests/util.h",
                           "#ifndef KWDB_TESTS_UTIL_H_\n"
                           "#define KWDB_TESTS_UTIL_H_\n"
                           "int Undocumented(int x);\n"
                           "#endif  // KWDB_TESTS_UTIL_H_\n"),
                      "doc-comment"),
            0u);
  // Data members and std::function-typed fields are not declarations the
  // rule covers (the '(' in the template argument must not confuse it).
  EXPECT_EQ(CountRule(Lint("src/foo/bar.h",
                           Header("namespace kws::foo {\n"
                                  "/// S.\n"
                                  "struct S {\n"
                                  "  int count = 0;\n"
                                  "  std::function<void(int)> hook;\n"
                                  "};\n"
                                  "}  // namespace kws::foo\n")),
                      "doc-comment"),
            0u);
}

TEST(KwslintDocComment, FlagsUndocumentedMacro) {
  std::vector<Diagnostic> diags = Lint(
      "src/foo/bar.h",
      Header("#define KWS_FOO(x) ((x) + 1)\n"
             "/// Documented macro.\n"
             "#define KWS_BAR(x) ((x) - 1)\n"));
  ASSERT_EQ(CountRule(diags, "doc-comment"), 1u);
  EXPECT_EQ(diags[0].line, 3);  // KWS_FOO; the guard #define is exempt
}

// --- header-guard ---------------------------------------------------------

TEST(KwslintHeaderGuard, FlagsWrongGuardPragmaOnceAndBadFilename) {
  EXPECT_EQ(CountRule(Lint("src/foo/bar.h",
                           "#ifndef WRONG_GUARD_H_\n"
                           "#define WRONG_GUARD_H_\n"
                           "#endif\n"),
                      "header-guard"),
            1u);
  EXPECT_GE(CountRule(Lint("src/foo/bar.h", "#pragma once\nint x;\n"),
                      "header-guard"),
            1u);
  EXPECT_EQ(CountRule(Lint("src/foo/BadName.cc", "int x;\n"), "header-guard"),
            1u);
  EXPECT_EQ(CountRule(Lint("src/foo/bar.h", Header("")), "header-guard"), 0u);
}

TEST(KwslintHeaderGuard, GuardNameTracksPath) {
  // src/ is stripped; other top dirs are kept (bench_util.h convention).
  EXPECT_EQ(CountRule(Lint("bench/util.h",
                           "#ifndef KWDB_BENCH_UTIL_H_\n"
                           "#define KWDB_BENCH_UTIL_H_\n"
                           "#endif  // KWDB_BENCH_UTIL_H_\n"),
                      "header-guard"),
            0u);
}

// --- mutex-style ----------------------------------------------------------

TEST(KwslintMutexStyle, FlagsBadFieldNameAndManualLock) {
  std::vector<Diagnostic> diags = Lint(
      "src/foo/bar.h", Header("namespace kws::foo {\n"
                              "/// C.\n"
                              "class C {\n"
                              " private:\n"
                              "  std::mutex lock_;\n"       // bad name
                              "  std::mutex mu_;\n"         // fine
                              "  mutable std::mutex big_mu_;\n"  // fine
                              "};\n"
                              "}  // namespace kws::foo\n"));
  EXPECT_EQ(CountRule(diags, "mutex-style"), 1u);

  EXPECT_EQ(CountRule(Lint("src/foo/bar.cc",
                           "void F() {\n"
                           "  mu_.lock();\n"
                           "  mu_.unlock();\n"
                           "}\n"),
                      "mutex-style"),
            2u);
  // RAII guards are the blessed pattern.
  EXPECT_EQ(CountRule(Lint("src/foo/bar.cc",
                           "void F() { std::lock_guard<std::mutex> "
                           "lock(mu_); }\n"),
                      "mutex-style"),
            0u);
}

// --- metric-name ----------------------------------------------------------

TEST(KwslintMetricName, FlagsNonDottedLowercaseNames) {
  const std::string bad =
      "void F(MetricsRegistry* m, trace::Tracer* t) {\n"
      "  m->GetCounter(\"Serve.Submitted\");\n"       // uppercase
      "  m->GetHistogram(\"serve latency\");\n"       // space
      "  t->BeginSpan(\"cn-search\");\n"              // dash
      "  t->AddCounter(\"results!\", 1);\n"           // punctuation
      "  t->AddEvent(\"\");\n"                        // empty
      "}\n";
  EXPECT_EQ(CountRule(Lint("src/serve/foo.cc", bad), "metric-name"), 5u);
}

TEST(KwslintMetricName, AcceptsDottedLowercaseAndSkipsNonLiterals) {
  const std::string good =
      "void F(MetricsRegistry* m, trace::Tracer* t, const char* dyn) {\n"
      "  m->GetCounter(\"serve.cache.hits\");\n"
      "  m->GetHistogram(\"serve.latency_micros\");\n"
      "  t->BeginSpan(\"cn.execute.naive\");\n"
      "  t->AddCounter(\"frontier_rows\", 42);\n"
      "  t->BeginSpan(dyn);\n"  // non-literal: not checked
      "  trace::TraceSpan span(t, \"cn.topk\");\n"
      "}\n";
  EXPECT_EQ(CountRule(Lint("src/serve/foo.cc", good), "metric-name"), 0u);
}

TEST(KwslintMetricName, CoversWindowedInstrumentGetters) {
  // The windowed registry entry points are checked exactly like the
  // cumulative ones.
  const std::string bad =
      "void F(obs::TelemetryRegistry* t) {\n"
      "  t->GetWindowedCounter(\"Serve.Submitted\");\n"
      "  t->GetWindowedHistogram(\"serve latency\");\n"
      "}\n";
  EXPECT_EQ(CountRule(Lint("src/serve/foo.cc", bad), "metric-name"), 2u);
  const std::string good =
      "void F(obs::TelemetryRegistry* t, const std::string& dyn) {\n"
      "  t->GetWindowedCounter(\"serve.submitted\");\n"
      "  t->GetWindowedHistogram(\"serve.latency_micros\");\n"
      "  t->GetWindowedCounter(dyn);\n"  // non-literal: not checked
      "}\n";
  EXPECT_EQ(CountRule(Lint("src/serve/foo.cc", good), "metric-name"), 0u);
}

TEST(KwslintMetricName, ChecksTraceSpanDeclarations) {
  const std::string bad =
      "void F(trace::Tracer* t) {\n"
      "  trace::TraceSpan span(t, \"CN.TopK\");\n"
      "}\n";
  std::vector<Diagnostic> diags = Lint("src/core/foo.cc", bad);
  ASSERT_EQ(CountRule(diags, "metric-name"), 1u);
  EXPECT_EQ(diags[0].line, 2);
  // Declarations without a literal (headers, pointer params) are silent.
  EXPECT_EQ(CountRule(Lint("src/core/foo.h",
                           Header("namespace kws::core {\n"
                                  "/// S.\n"
                                  "struct S { trace::TraceSpan* span; };\n"
                                  "}\n")),
                      "metric-name"),
            0u);
}

TEST(KwslintMetricName, ChecksLiteralOnTheContinuationLine) {
  // The common clang-format wrap: the literal lands on the line after
  // the open paren and is still checked.
  const std::string bad =
      "void F(trace::Tracer* t) {\n"
      "  trace::TraceSpan span(t,\n"
      "                        \"CN.TopK\");\n"
      "}\n";
  std::vector<Diagnostic> diags = Lint("src/core/foo.cc", bad);
  ASSERT_EQ(CountRule(diags, "metric-name"), 1u);
  EXPECT_EQ(diags[0].line, 3);
  const std::string good =
      "void F(MetricsRegistry* m) {\n"
      "  m->GetCounter(\n"
      "      \"serve.tuple_cache.evictions\");\n"
      "}\n";
  EXPECT_EQ(CountRule(Lint("src/serve/foo.cc", good), "metric-name"), 0u);
  // The scan runs to the call's matching close paren, so a literal any
  // number of lines below the open paren is still checked.
  const std::string far =
      "void F(trace::Tracer* t) {\n"
      "  t->AddEvent(\n"
      "      //\n"
      "      \"Bad Name\");\n"
      "}\n";
  std::vector<Diagnostic> far_diags = Lint("src/core/foo.cc", far);
  ASSERT_EQ(CountRule(far_diags, "metric-name"), 1u);
  EXPECT_EQ(far_diags[0].line, 4);
  // ...but a literal in a *different* call on a later line is not blamed
  // on this one: the scan stops at the close paren / statement end.
  const std::string next_call =
      "void F(trace::Tracer* t) {\n"
      "  t->BeginSpan(\n"
      "      \"cn.execute\");\n"
      "  Unrelated(\"Not A Metric\");\n"
      "}\n";
  EXPECT_EQ(CountRule(Lint("src/core/foo.cc", next_call), "metric-name"), 0u);
}

TEST(KwslintMetricName, AppliesToTestsAndBenches) {
  const std::string bad = "void F(T* t) { t->AddEvent(\"Bad Name\"); }\n";
  EXPECT_EQ(CountRule(Lint("tests/foo_test.cc", bad), "metric-name"), 1u);
  EXPECT_EQ(CountRule(Lint("bench/bench_foo.cc", bad), "metric-name"), 1u);
}

// --- suppression ----------------------------------------------------------

TEST(KwslintSuppression, TrailingAllowSilencesThatLineOnly) {
  const std::string body =
      "void F() {\n"
      "  std::thread a([] {});  // fixture -- kwslint: allow(raw-thread)\n"
      "  std::thread b([] {});\n"
      "}\n";
  std::vector<Diagnostic> diags = Lint("src/core/foo.cc", body);
  ASSERT_EQ(CountRule(diags, "raw-thread"), 1u);
  EXPECT_EQ(diags[0].line, 3);
}

TEST(KwslintSuppression, AllowListTakesMultipleRules) {
  const std::string body =
      "void F() { std::thread t([] { throw 1; }); }"
      "  // fixture -- kwslint: allow(raw-thread, no-throw)\n";
  EXPECT_TRUE(Lint("src/core/foo.cc", body).empty());
}

TEST(KwslintSuppression, FileAllowSilencesWholeFile) {
  const std::string body =
      "// kwslint: file-allow(raw-thread)\n"
      "void F() {\n"
      "  std::thread a([] {});\n"
      "  std::thread b([] {});\n"
      "}\n";
  EXPECT_EQ(CountRule(Lint("src/core/foo.cc", body), "raw-thread"), 0u);
}

TEST(KwslintSuppression, AllowDoesNotSilenceOtherRules) {
  const std::string body =
      "void F() { throw 1; }  // kwslint: allow(raw-thread)\n";
  EXPECT_EQ(CountRule(Lint("src/core/foo.cc", body), "no-throw"), 1u);
}

// --- status-discard -------------------------------------------------------

TEST(KwslintStatusDiscard, FlagsBareCallToIndexedFunction) {
  // The model is cross-file: the header declares, the .cc discards.
  std::vector<Diagnostic> diags = LintProject(
      {{"src/foo/api.h", Header("namespace kws::foo {\n"
                                "/// Applies a batch.\n"
                                "Status ApplyBatch(int n);\n"
                                "/// Finds a row.\n"
                                "Result<int> FindRow(int id);\n"
                                "}  // namespace kws::foo\n")},
       {"src/foo/use.cc",
        "void F() {\n"
        "  ApplyBatch(3);\n"                      // fires
        "  FindRow(7);\n"                         // fires
        "  Status s = ApplyBatch(4);\n"           // checked: fine
        "  (void)ApplyBatch(5);\n"                // explicit discard: fine
        "  if (!ApplyBatch(6).ok()) return;\n"    // consumed: fine
        "}\n"}},
      1);
  EXPECT_EQ(CountRule(diags, "status-discard"), 2u);
}

TEST(KwslintStatusDiscard, AllowSuppressesIt) {
  std::vector<Diagnostic> diags = LintProject(
      {{"src/foo/api.h", Header("namespace kws::foo {\n"
                                "/// Applies a batch.\n"
                                "Status ApplyBatch(int n);\n"
                                "}  // namespace kws::foo\n")},
       {"src/foo/use.cc",
        "void F() {\n"
        "  ApplyBatch(3);  // best-effort warmup -- kwslint: "
        "allow(status-discard)\n"
        "}\n"}},
      1);
  EXPECT_EQ(CountRule(diags, "status-discard"), 0u);
}

// --- unordered-iteration --------------------------------------------------

TEST(KwslintUnorderedIteration, FlagsRangeForOverDeclaredContainer) {
  const std::string body =
      "void F() {\n"
      "  std::unordered_map<int, int> acc;\n"
      "  for (const auto& [k, v] : acc) { Use(k, v); }\n"   // fires
      "  std::vector<int> sorted;\n"
      "  for (int x : sorted) { Use(x, x); }\n"             // fine
      "}\n";
  std::vector<Diagnostic> diags = Lint("src/core/foo.cc", body);
  ASSERT_EQ(CountRule(diags, "unordered-iteration"), 1u);
  EXPECT_EQ(diags[0].line, 3);
  // The rule guards library determinism only: tests/benches may iterate.
  EXPECT_EQ(CountRule(Lint("tests/foo_test.cc", body),
                      "unordered-iteration"),
            0u);
}

TEST(KwslintUnorderedIteration, SeesMembersDeclaredInIncludedHeader) {
  std::vector<Diagnostic> diags = LintProject(
      {{"src/foo/holder.h", Header("namespace kws::foo {\n"
                                   "/// Holds postings.\n"
                                   "struct Holder {\n"
                                   "  std::unordered_map<int, int> acc_;\n"
                                   "};\n"
                                   "}  // namespace kws::foo\n")},
       {"src/foo/holder.cc",
        "#include \"foo/holder.h\"\n"
        "void G(Holder& h) {\n"
        "  for (const auto& [k, v] : h.acc_) { Use(k, v); }\n"
        "}\n"}},
      1);
  // Note: the range expression's last token is `acc_`, declared in the
  // included header and therefore visible through the include graph.
  EXPECT_EQ(CountRule(diags, "unordered-iteration"), 1u);
}

TEST(KwslintUnorderedIteration, AllowSuppressesIt) {
  const std::string body =
      "void F() {\n"
      "  std::unordered_set<int> seen;\n"
      "  for (int x : seen) { Use(x, x); }  // order-independent sum -- "
      "kwslint: allow(unordered-iteration)\n"
      "}\n";
  EXPECT_EQ(CountRule(Lint("src/core/foo.cc", body), "unordered-iteration"),
            0u);
}

// --- deadline-loop --------------------------------------------------------

TEST(KwslintDeadlineLoop, FlagsLoopThatNeverPollsTheDeadline) {
  const std::string bad =
      "void Scan(const Deadline& deadline, int n) {\n"
      "  for (int i = 0; i < n; ++i) {\n"   // fires: deadline unused
      "    Work(i);\n"
      "  }\n"
      "}\n";
  std::vector<Diagnostic> diags = Lint("src/core/foo.cc", bad);
  ASSERT_EQ(CountRule(diags, "deadline-loop"), 1u);
  EXPECT_EQ(diags[0].line, 2);
}

TEST(KwslintDeadlineLoop, PollingOrForwardingSilencesIt) {
  const std::string polls =
      "void Scan(const Deadline& deadline, int n) {\n"
      "  DeadlineChecker checker(deadline);\n"
      "  for (int i = 0; i < n; ++i) {\n"
      "    if (checker.Expired()) break;\n"
      "    Work(i);\n"
      "  }\n"
      "}\n";
  EXPECT_EQ(CountRule(Lint("src/core/foo.cc", polls), "deadline-loop"), 0u);
  const std::string forwards =
      "void Scan(const Deadline& deadline, int n) {\n"
      "  for (int i = 0; i < n; ++i) {\n"
      "    Work(i, deadline);\n"
      "  }\n"
      "}\n";
  EXPECT_EQ(CountRule(Lint("src/core/foo.cc", forwards), "deadline-loop"),
            0u);
  // Functions that never take a deadline are out of scope.
  const std::string no_deadline =
      "void Scan(int n) {\n"
      "  for (int i = 0; i < n; ++i) { Work(i); }\n"
      "}\n";
  EXPECT_EQ(CountRule(Lint("src/core/foo.cc", no_deadline), "deadline-loop"),
            0u);
}

TEST(KwslintDeadlineLoop, AllowSuppressesIt) {
  const std::string body =
      "void Scan(const Deadline& deadline, int n) {\n"
      "  for (int i = 0; i < 4; ++i) {  // bounded by fanout -- kwslint: "
      "allow(deadline-loop)\n"
      "    Work(i);\n"
      "  }\n"
      "}\n";
  EXPECT_EQ(CountRule(Lint("src/core/foo.cc", body), "deadline-loop"), 0u);
}

// --- allow-justification --------------------------------------------------

TEST(KwslintAllowJustification, FlagsBareAllow) {
  const std::string bare =
      "void F() {\n"
      "  std::thread t([] {});  // kwslint: allow(raw-thread)\n"
      "}\n";
  std::vector<Diagnostic> diags = Lint("src/core/foo.cc", bare);
  ASSERT_EQ(CountRule(diags, "allow-justification"), 1u);
  EXPECT_EQ(diags[0].line, 2);
  // The allow itself still works; only the missing reason is flagged.
  EXPECT_EQ(CountRule(diags, "raw-thread"), 0u);
}

TEST(KwslintAllowJustification, JustifiedAllowIsClean) {
  const std::string justified =
      "void F() {\n"
      "  std::thread t([] {});  // outside-caller model -- kwslint: "
      "allow(raw-thread)\n"
      "}\n";
  EXPECT_TRUE(Lint("src/core/foo.cc", justified).empty());
  // A self-allow is legal but must still carry a reason. (Justified here
  // so the fixture itself is clean.)
  const std::string self_allowed =
      "void F() {\n"
      "  std::thread t([] {});  // fixture -- kwslint: allow(raw-thread, "
      "allow-justification)\n"
      "}\n";
  EXPECT_TRUE(Lint("src/core/foo.cc", self_allowed).empty());
}

// --- include-cycle --------------------------------------------------------

TEST(KwslintIncludeCycle, FlagsMutualIncludes) {
  std::vector<Diagnostic> diags = LintProject(
      {{"src/a/x.h", "#ifndef KWDB_A_X_H_\n#define KWDB_A_X_H_\n"
                     "#include \"a/y.h\"\n"
                     "#endif  // KWDB_A_X_H_\n"},
       {"src/a/y.h", "#ifndef KWDB_A_Y_H_\n#define KWDB_A_Y_H_\n"
                     "#include \"a/x.h\"\n"
                     "#endif  // KWDB_A_Y_H_\n"}},
      1);
  ASSERT_EQ(CountRule(diags, "include-cycle"), 1u);
  // Reported once, on the lexicographically smallest member.
  EXPECT_EQ(diags[0].path, "src/a/x.h");
  EXPECT_EQ(diags[0].line, 3);
}

TEST(KwslintIncludeCycle, AcyclicGraphAndFileAllowAreClean) {
  EXPECT_EQ(CountRule(LintProject({{"src/a/x.h",
                                    "#ifndef KWDB_A_X_H_\n"
                                    "#define KWDB_A_X_H_\n"
                                    "#include \"a/y.h\"\n"
                                    "#endif  // KWDB_A_X_H_\n"},
                                   {"src/a/y.h", "#ifndef KWDB_A_Y_H_\n"
                                                 "#define KWDB_A_Y_H_\n"
                                                 "#endif  // KWDB_A_Y_H_\n"}},
                                  1),
                      "include-cycle"),
            0u);
  // file-allow silences the report (placed in the reported file).
  std::vector<Diagnostic> allowed = LintProject(
      {{"src/a/x.h",
        "// interface split pending -- kwslint: file-allow(include-cycle)\n"
        "#ifndef KWDB_A_X_H_\n#define KWDB_A_X_H_\n"
        "#include \"a/y.h\"\n"
        "#endif  // KWDB_A_X_H_\n"},
       {"src/a/y.h", "#ifndef KWDB_A_Y_H_\n#define KWDB_A_Y_H_\n"
                     "#include \"a/x.h\"\n"
                     "#endif  // KWDB_A_Y_H_\n"}},
      1);
  EXPECT_EQ(CountRule(allowed, "include-cycle"), 0u);
}

// --- engine contract ------------------------------------------------------

TEST(KwslintEngine, ExitCodeIsNonzeroIffFindings) {
  std::vector<Diagnostic> diags;
  EXPECT_EQ(LintFiles({{"src/core/ok.cc", "int x = 0;\n"}}, &diags), 0);
  EXPECT_TRUE(diags.empty());
  // One seeded violation per rule family; every fixture must fail.
  const std::vector<std::pair<std::string, std::string>> seeded = {
      {"src/core/a.cc", "void F() { srand(1); }\n"},
      {"src/core/b.cc", "void F() { throw 1; }\n"},
      {"src/core/c.cc", "void F() { std::thread t([] {}); }\n"},
      {"src/core/d.cc", "void F() { std::cout << 1; }\n"},
      {"src/foo/e.h", Header("namespace kws::foo {\nint G(int);\n}\n")},
      {"src/foo/f.h", "#pragma once\n"},
      {"src/core/g.cc", "void F() { mu_.lock(); }\n"},
      {"src/core/h.cc", "void F(T* t) { t->AddEvent(\"Bad Name\"); }\n"},
  };
  for (const auto& fixture : seeded) {
    std::vector<Diagnostic> d;
    EXPECT_EQ(LintFiles({fixture}, &d), 1) << fixture.first;
    EXPECT_FALSE(d.empty()) << fixture.first;
  }
}

TEST(KwslintEngine, FormatIsFileLineRuleMessage) {
  Diagnostic d{"src/foo.cc", 12, "no-throw", "boom"};
  EXPECT_EQ(FormatDiagnostic(d), "src/foo.cc:12: no-throw: boom");
}

TEST(KwslintEngine, RuleIdsAreStable) {
  const std::vector<std::string> ids = RuleIds();
  EXPECT_EQ(ids.size(), 13u);
  EXPECT_NE(std::find(ids.begin(), ids.end(), "doc-comment"), ids.end());
  EXPECT_NE(std::find(ids.begin(), ids.end(), "metric-name"), ids.end());
  for (const char* id : {"status-discard", "unordered-iteration",
                         "deadline-loop", "allow-justification",
                         "include-cycle"}) {
    EXPECT_NE(std::find(ids.begin(), ids.end(), id), ids.end()) << id;
  }
}

// --- output formats & parallel determinism --------------------------------

/// A fixture set with findings across several rules and files, plus clean
/// files, to exercise the full two-pass engine.
std::vector<std::pair<std::string, std::string>> MixedFixtures() {
  return {
      {"src/a/x.h", "#ifndef KWDB_A_X_H_\n#define KWDB_A_X_H_\n"
                    "#include \"a/y.h\"\n"
                    "#endif  // KWDB_A_X_H_\n"},
      {"src/a/y.h", "#ifndef KWDB_A_Y_H_\n#define KWDB_A_Y_H_\n"
                    "#include \"a/x.h\"\n"
                    "#endif  // KWDB_A_Y_H_\n"},
      {"src/foo/api.h", Header("namespace kws::foo {\n"
                               "/// Applies a batch.\n"
                               "Status ApplyBatch(int n);\n"
                               "}  // namespace kws::foo\n")},
      {"src/foo/use.cc", "void F() { ApplyBatch(3); }\n"},
      {"src/core/a.cc", "void F() { srand(1); }\n"},
      {"src/core/b.cc", "void F() { throw 1; }\n"},
      {"src/core/clean1.cc", "int x = 0;\n"},
      {"src/core/clean2.cc", "int y = 1;\n"},
      {"tests/t_test.cc", "void F() { std::thread t([] {}); }\n"},
  };
}

TEST(KwslintEngine, DiagnosticsAreByteIdenticalAcrossJobCounts) {
  const auto files = MixedFixtures();
  const std::vector<Diagnostic> serial = LintProject(files, 1);
  ASSERT_FALSE(serial.empty());
  for (int jobs : {2, 4, 8}) {
    const std::vector<Diagnostic> parallel = LintProject(files, jobs);
    // Byte-level comparison through both renderers: any drift in order,
    // content or count shows up as a string mismatch.
    EXPECT_EQ(RenderJson(serial, files.size(), 0),
              RenderJson(parallel, files.size(), 0))
        << "jobs=" << jobs;
    EXPECT_EQ(RenderSarif(serial), RenderSarif(parallel)) << "jobs=" << jobs;
  }
}

TEST(KwslintEngine, DiagnosticsAreOrderedByPathLineRule) {
  const std::vector<Diagnostic> diags = LintProject(MixedFixtures(), 1);
  for (size_t i = 1; i < diags.size(); ++i) {
    const auto key = [](const Diagnostic& d) {
      return std::make_tuple(d.path, d.line, d.rule, d.message);
    };
    EXPECT_LE(key(diags[i - 1]), key(diags[i]));
  }
}

TEST(KwslintOutput, JsonAndSarifAgreeOnFindings) {
  const std::vector<Diagnostic> diags = LintProject(MixedFixtures(), 1);
  const std::string json = RenderJson(diags, 9, 0);
  const std::string sarif = RenderSarif(diags);
  for (const Diagnostic& d : diags) {
    EXPECT_NE(json.find("\"" + JsonEscape(d.rule) + "\""), std::string::npos)
        << d.rule;
    EXPECT_NE(sarif.find("\"" + JsonEscape(d.rule) + "\""), std::string::npos)
        << d.rule;
    EXPECT_NE(json.find(JsonEscape(d.path)), std::string::npos) << d.path;
    EXPECT_NE(sarif.find(JsonEscape(d.path)), std::string::npos) << d.path;
  }
  // Result counts agree between the two renders.
  size_t json_results = 0, sarif_results = 0;
  for (size_t p = json.find("\"rule\":"); p != std::string::npos;
       p = json.find("\"rule\":", p + 1)) {
    ++json_results;
  }
  for (size_t p = sarif.find("\"ruleId\":"); p != std::string::npos;
       p = sarif.find("\"ruleId\":", p + 1)) {
    ++sarif_results;
  }
  EXPECT_EQ(json_results, diags.size());
  EXPECT_EQ(sarif_results, diags.size());
}

TEST(KwslintOutput, JsonEscapesSpecials) {
  EXPECT_EQ(JsonEscape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
}

TEST(KwslintOutput, BaselineParsesAndSuppresses) {
  Baseline b;
  std::string err;
  ASSERT_TRUE(Baseline::Parse("# comment\n"
                              "\n"
                              "src/core/a.cc: raw-random\n",
                              &b, &err))
      << err;
  EXPECT_EQ(b.size(), 1u);
  const std::vector<Diagnostic> diags = LintProject(MixedFixtures(), 1);
  size_t suppressed = 0;
  const std::vector<Diagnostic> kept = ApplyBaseline(diags, b, &suppressed);
  EXPECT_EQ(suppressed, 1u);
  EXPECT_EQ(kept.size(), diags.size() - 1);
  for (const Diagnostic& d : kept) {
    EXPECT_FALSE(d.path == "src/core/a.cc" && d.rule == "raw-random");
  }
  // Malformed lines are a hard error, not silently ignored.
  Baseline bad;
  EXPECT_FALSE(Baseline::Parse("no separator here\n", &bad, &err));
  EXPECT_FALSE(err.empty());
}

}  // namespace
}  // namespace kws::lint

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "relational/database.h"
#include "relational/dblp.h"
#include "relational/query_log.h"
#include "relational/shop.h"
#include "relational/value.h"

namespace kws::relational {
namespace {

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_TRUE(Value().is_null());
  EXPECT_EQ(Value::Int(5).type(), ValueType::kInt);
  EXPECT_EQ(Value::Real(1.5).type(), ValueType::kReal);
  EXPECT_EQ(Value::Text("x").type(), ValueType::kText);
  EXPECT_EQ(Value::Int(5).AsInt(), 5);
  EXPECT_EQ(Value::Real(1.5).AsReal(), 1.5);
  EXPECT_EQ(Value::Text("x").AsText(), "x");
}

TEST(ValueTest, NumericCrossTypeEquality) {
  EXPECT_EQ(Value::Int(3), Value::Real(3.0));
  EXPECT_NE(Value::Int(3), Value::Real(3.5));
  EXPECT_NE(Value::Int(3), Value::Text("3"));
  EXPECT_EQ(Value(), Value());
  EXPECT_NE(Value(), Value::Int(0));
}

TEST(ValueTest, OrderingNullNumbersText) {
  EXPECT_LT(Value(), Value::Int(0));
  EXPECT_LT(Value::Int(1), Value::Int(2));
  EXPECT_LT(Value::Int(100), Value::Text("a"));
  EXPECT_LT(Value::Text("a"), Value::Text("b"));
  EXPECT_LT(Value::Int(1), Value::Real(1.5));
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value().ToString(), "NULL");
  EXPECT_EQ(Value::Int(7).ToString(), "7");
  EXPECT_EQ(Value::Text("hi").ToString(), "hi");
}

TEST(ValueTest, HashConsistentWithEquality) {
  ValueHash h;
  EXPECT_EQ(h(Value::Text("abc")), h(Value::Text("abc")));
  EXPECT_EQ(h(Value::Int(42)), h(Value::Int(42)));
}

TableSchema TwoColSchema(const std::string& name) {
  TableSchema s;
  s.name = name;
  s.columns = {{"id", ValueType::kInt, false}, {"txt", ValueType::kText, true}};
  s.primary_key = 0;
  return s;
}

TEST(TableTest, AppendAndFetch) {
  Table t(TwoColSchema("t"));
  auto r0 = t.Append({Value::Int(1), Value::Text("alpha")});
  ASSERT_TRUE(r0.ok());
  EXPECT_EQ(r0.value(), 0u);
  EXPECT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.cell(0, 1).AsText(), "alpha");
}

TEST(TableTest, RejectsArityMismatch) {
  Table t(TwoColSchema("t"));
  auto r = t.Append({Value::Int(1)});
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(TableTest, RejectsDuplicatePrimaryKey) {
  Table t(TwoColSchema("t"));
  ASSERT_TRUE(t.Append({Value::Int(1), Value::Text("a")}).ok());
  auto r = t.Append({Value::Int(1), Value::Text("b")});
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(t.num_rows(), 1u);
}

TEST(TableTest, FindByKey) {
  Table t(TwoColSchema("t"));
  t.Append({Value::Int(10), Value::Text("x")}).value();
  t.Append({Value::Int(20), Value::Text("y")}).value();
  EXPECT_EQ(t.FindByKey(Value::Int(20)).value(), 1u);
  EXPECT_FALSE(t.FindByKey(Value::Int(99)).ok());
}

TEST(TableTest, FindByValueScanAndIndexAgree) {
  Table t(TwoColSchema("t"));
  for (int i = 0; i < 10; ++i) {
    t.Append({Value::Int(i), Value::Text(i % 2 ? "odd" : "even")}).value();
  }
  auto scan = t.FindByValue(1, Value::Text("odd"));
  t.BuildColumnIndex(1);
  auto indexed = t.FindByValue(1, Value::Text("odd"));
  EXPECT_EQ(scan, indexed);
  EXPECT_EQ(scan.size(), 5u);
}

TEST(TableTest, IndexMaintainedAcrossAppend) {
  Table t(TwoColSchema("t"));
  t.BuildColumnIndex(1);
  t.Append({Value::Int(1), Value::Text("z")}).value();
  EXPECT_EQ(t.FindByValue(1, Value::Text("z")).size(), 1u);
}

TEST(TableTest, SearchableTextConcatenatesTextColumns) {
  TableSchema s;
  s.name = "t";
  s.columns = {{"id", ValueType::kInt, false},
               {"a", ValueType::kText, true},
               {"n", ValueType::kInt, false},
               {"b", ValueType::kText, true},
               {"hidden", ValueType::kText, false}};
  s.primary_key = 0;
  Table t(s);
  t.Append({Value::Int(1), Value::Text("hello"), Value::Int(9),
            Value::Text("world"), Value::Text("secret")})
      .value();
  EXPECT_EQ(t.SearchableText(0), "hello world");
}

TEST(DatabaseTest, CreateAndFindTables) {
  Database db;
  EXPECT_TRUE(db.CreateTable(TwoColSchema("a")).ok());
  EXPECT_TRUE(db.CreateTable(TwoColSchema("b")).ok());
  EXPECT_FALSE(db.CreateTable(TwoColSchema("a")).ok());
  EXPECT_EQ(db.num_tables(), 2u);
  EXPECT_TRUE(db.FindTable("b").ok());
  EXPECT_FALSE(db.FindTable("c").ok());
}

TEST(DatabaseTest, ForeignKeyValidation) {
  Database db;
  db.CreateTable(TwoColSchema("parent")).value();
  TableSchema child = TwoColSchema("child");
  child.columns.push_back({"pid", ValueType::kInt, false});
  db.CreateTable(child).value();
  EXPECT_TRUE(db.AddForeignKey("child", "pid", "parent", "id").ok());
  EXPECT_FALSE(db.AddForeignKey("child", "nope", "parent", "id").ok());
  EXPECT_FALSE(db.AddForeignKey("child", "pid", "parent", "txt").ok());
  EXPECT_FALSE(db.AddForeignKey("ghost", "pid", "parent", "id").ok());
}

TEST(DatabaseTest, SchemaNeighborsBothDirections) {
  Database db;
  db.CreateTable(TwoColSchema("parent")).value();
  TableSchema child = TwoColSchema("child");
  child.columns.push_back({"pid", ValueType::kInt, false});
  db.CreateTable(child).value();
  ASSERT_TRUE(db.AddForeignKey("child", "pid", "parent", "id").ok());
  const TableId parent_id = db.FindTable("parent").value();
  const TableId child_id = db.FindTable("child").value();
  ASSERT_EQ(db.SchemaNeighbors(child_id).size(), 1u);
  EXPECT_EQ(db.SchemaNeighbors(child_id)[0].other, parent_id);
  EXPECT_TRUE(db.SchemaNeighbors(child_id)[0].forward);
  ASSERT_EQ(db.SchemaNeighbors(parent_id).size(), 1u);
  EXPECT_EQ(db.SchemaNeighbors(parent_id)[0].other, child_id);
  EXPECT_FALSE(db.SchemaNeighbors(parent_id)[0].forward);
}

class DblpTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { dblp_ = new DblpDatabase(MakeDblpDatabase()); }
  static void TearDownTestSuite() {
    delete dblp_;
    dblp_ = nullptr;
  }
  static DblpDatabase* dblp_;
};

DblpDatabase* DblpTest::dblp_ = nullptr;

TEST_F(DblpTest, TablesPopulated) {
  const Database& db = *dblp_->db;
  EXPECT_EQ(db.table(dblp_->conference).num_rows(), 20u);
  EXPECT_EQ(db.table(dblp_->author).num_rows(), 200u);
  EXPECT_EQ(db.table(dblp_->paper).num_rows(), 500u);
  EXPECT_GT(db.table(dblp_->writes).num_rows(), 400u);
  EXPECT_GT(db.table(dblp_->cite).num_rows(), 100u);
}

TEST_F(DblpTest, ForeignKeysResolve) {
  const Database& db = *dblp_->db;
  // Every paper's cid refers to an existing conference.
  const Table& paper = db.table(dblp_->paper);
  const Table& conf = db.table(dblp_->conference);
  for (RowId r = 0; r < paper.num_rows(); ++r) {
    EXPECT_TRUE(conf.FindByKey(paper.cell(r, 2)).ok());
  }
}

TEST_F(DblpTest, JoinedRowsForwardFindsReferencedRow) {
  const Database& db = *dblp_->db;
  // writes row 0 -> author via FK 1 (paper.cid is FK 0).
  TupleId w{dblp_->writes, 0};
  auto joined = db.JoinedRows(1, w, /*from_referencing=*/true);
  ASSERT_EQ(joined.size(), 1u);
  EXPECT_EQ(joined[0].table, dblp_->author);
  EXPECT_EQ(db.table(dblp_->author).cell(joined[0].row, 0),
            db.table(dblp_->writes).cell(0, 1));
}

TEST_F(DblpTest, JoinedRowsBackwardFindsAllReferencing) {
  const Database& db = *dblp_->db;
  TupleId a{dblp_->author, 0};
  auto joined = db.JoinedRows(1, a, /*from_referencing=*/false);
  for (const TupleId& t : joined) {
    EXPECT_EQ(t.table, dblp_->writes);
    EXPECT_EQ(db.table(dblp_->writes).cell(t.row, 1),
              db.table(dblp_->author).cell(0, 0));
  }
}

TEST_F(DblpTest, TextIndexFindsTitleTerms) {
  const Database& db = *dblp_->db;
  // The most frequent vocabulary term should match many papers.
  const std::string& top_term = dblp_->vocabulary[0];
  auto rows = db.MatchRows(dblp_->paper, top_term);
  EXPECT_GT(rows.size(), 20u);
  // All matched rows actually contain the term.
  for (RowId r : rows) {
    const std::string title = db.table(dblp_->paper).cell(r, 1).AsText();
    EXPECT_NE(title.find(top_term), std::string::npos);
  }
}

TEST_F(DblpTest, DeterministicAcrossRuns) {
  DblpDatabase again = MakeDblpDatabase();
  const Table& p1 = dblp_->db->table(dblp_->paper);
  const Table& p2 = again.db->table(again.paper);
  ASSERT_EQ(p1.num_rows(), p2.num_rows());
  for (RowId r = 0; r < p1.num_rows(); r += 37) {
    EXPECT_EQ(p1.cell(r, 1).AsText(), p2.cell(r, 1).AsText());
  }
}

TEST_F(DblpTest, ZipfSkewVisibleInTitleTerms) {
  const Database& db = *dblp_->db;
  const size_t top = db.MatchRows(dblp_->paper, dblp_->vocabulary[0]).size();
  const size_t mid = db.MatchRows(dblp_->paper, dblp_->vocabulary[100]).size();
  EXPECT_GT(top, 2 * std::max<size_t>(mid, 1));
}

TEST(VocabularyTest, DistinctAndSized) {
  auto v = MakeVocabulary(300);
  EXPECT_EQ(v.size(), 300u);
  std::set<std::string> dedup(v.begin(), v.end());
  EXPECT_EQ(dedup.size(), 300u);
}

TEST(PersonNamesTest, DistinctAndSized) {
  auto names = MakePersonNames(5000);
  EXPECT_EQ(names.size(), 5000u);
  std::set<std::string> dedup(names.begin(), names.end());
  EXPECT_EQ(dedup.size(), 5000u);
}

TEST(ShopTest, ProductsHavePlantedCorrelations) {
  ShopDatabase shop = MakeShopDatabase({.seed = 1, .num_products = 500});
  const Database& db = *shop.db;
  const Table& product = db.table(shop.product);
  // Keyword "ibm" appears only in lenovo product descriptions.
  auto rows = db.MatchRows(shop.product, "ibm");
  ASSERT_FALSE(rows.empty());
  for (RowId r : rows) {
    EXPECT_EQ(product.cell(r, 2).AsText(), "lenovo");
  }
  // Keyword "small" implies small screens.
  for (RowId r : db.MatchRows(shop.product, "small")) {
    EXPECT_LE(product.cell(r, 4).AsReal(), 12.0);
  }
}

TEST(EventsTest, PlantedSlide16RowsPresent) {
  ShopDatabase events = MakeEventsDatabase(1, 50);
  const Database& db = *events.db;
  EXPECT_EQ(db.table(events.product).num_rows(), 56u);
  EXPECT_FALSE(db.MatchRows(events.product, "motorcycle").empty());
  EXPECT_FALSE(db.MatchRows(events.product, "pool").empty());
  EXPECT_FALSE(db.MatchRows(events.product, "food").empty());
}

TEST(QueryLogTest, GeneratesWeightedPredicates) {
  ShopDatabase shop = MakeShopDatabase({.seed = 2, .num_products = 200});
  QueryLog log = MakeQueryLog(*shop.db, shop.product,
                              {.seed = 3, .num_queries = 300});
  EXPECT_EQ(log.size(), 300u);
  size_t with_preds = 0, with_kw = 0, with_range = 0;
  for (const LoggedQuery& q : log) {
    with_preds += !q.predicates.empty();
    with_kw += !q.keywords.empty();
    for (const LoggedPredicate& p : q.predicates) {
      if (p.lo.has_value()) {
        ++with_range;
        EXPECT_TRUE(p.hi.has_value());
        EXPECT_LE(*p.lo, *p.hi);
      } else {
        EXPECT_TRUE(p.equals.has_value());
      }
    }
  }
  EXPECT_GT(with_preds, 150u);
  EXPECT_GT(with_kw, 290u);
  EXPECT_GT(with_range, 0u);
}

TEST(QueryLogTest, DeterministicForSeed) {
  ShopDatabase shop = MakeShopDatabase({.seed = 2, .num_products = 100});
  QueryLog a = MakeQueryLog(*shop.db, shop.product, {.seed = 9});
  QueryLog b = MakeQueryLog(*shop.db, shop.product, {.seed = 9});
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].keywords, b[i].keywords);
    EXPECT_EQ(a[i].predicates.size(), b[i].predicates.size());
  }
}

}  // namespace
}  // namespace kws::relational

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/lca/slca.h"
#include "core/lca/xreal.h"
#include "core/lca/xseek.h"
#include "xml/bibgen.h"
#include "xml/stats.h"
#include "xml/tree.h"

namespace kws::lca {
namespace {

using xml::kNoXmlNode;
using xml::XmlNodeId;
using xml::XmlTree;

/// Slide 33's example document:
/// conf(name=SIGMOD, year=2007,
///      paper1(title="keyword", author="mark", author="chen"),
///      paper2(title="rdf", author="mark", author="zhang"))
XmlTree Slide33Tree() {
  XmlTree t;
  XmlNodeId conf = t.AddElement(kNoXmlNode, "conf");
  XmlNodeId name = t.AddElement(conf, "name");
  t.AppendText(name, "sigmod");
  XmlNodeId year = t.AddElement(conf, "year");
  t.AppendText(year, "2007");
  XmlNodeId p1 = t.AddElement(conf, "paper");
  XmlNodeId t1 = t.AddElement(p1, "title");
  t.AppendText(t1, "keyword");
  XmlNodeId a11 = t.AddElement(p1, "author");
  t.AppendText(a11, "mark");
  XmlNodeId a12 = t.AddElement(p1, "author");
  t.AppendText(a12, "chen");
  XmlNodeId p2 = t.AddElement(conf, "paper");
  XmlNodeId t2 = t.AddElement(p2, "title");
  t.AppendText(t2, "rdf");
  XmlNodeId a21 = t.AddElement(p2, "author");
  t.AppendText(a21, "mark");
  XmlNodeId a22 = t.AddElement(p2, "author");
  t.AppendText(a22, "zhang");
  t.BuildKeywordIndex();
  return t;
}

TEST(MatchListsTest, EmptyWhenKeywordMissing) {
  XmlTree t = Slide33Tree();
  EXPECT_TRUE(MatchLists(t, {"keyword", "nothing"}).empty());
  EXPECT_EQ(MatchLists(t, {"keyword", "mark"}).size(), 2u);
}

TEST(SlcaTest, Slide33Example) {
  XmlTree t = Slide33Tree();
  // {keyword, mark}: only paper1 contains both minimally (conf also
  // contains both but has a CA descendant).
  auto lists = MatchLists(t, {"keyword", "mark"});
  auto slca = SlcaBruteForce(t, lists);
  ASSERT_EQ(slca.size(), 1u);
  EXPECT_EQ(t.tag(slca[0]), "paper");
  EXPECT_EQ(t.LabelPath(slca[0]), "/conf/paper");
  EXPECT_EQ(SlcaIndexedLookupEager(t, lists), slca);
  EXPECT_EQ(SlcaMultiway(t, lists), slca);
}

TEST(SlcaTest, AncestorExcludedWhenDescendantQualifies) {
  XmlTree t = Slide33Tree();
  // {mark}: matches in both papers; SLCA = the two author nodes.
  auto lists = MatchLists(t, {"mark"});
  auto slca = SlcaBruteForce(t, lists);
  EXPECT_EQ(slca.size(), 2u);
  for (XmlNodeId n : slca) EXPECT_EQ(t.tag(n), "author");
}

TEST(SlcaTest, RootWhenKeywordsSpanPapers) {
  XmlTree t = Slide33Tree();
  // rdf is only in paper2, keyword only in paper1 -> SLCA = conf.
  auto lists = MatchLists(t, {"keyword", "rdf"});
  auto slca = SlcaBruteForce(t, lists);
  ASSERT_EQ(slca.size(), 1u);
  EXPECT_EQ(t.tag(slca[0]), "conf");
}

TEST(ElcaTest, AncestorWithOwnWitnessIsElca) {
  XmlTree t = Slide33Tree();
  // {mark}: ELCA = exactly the matching author nodes.
  auto lists = MatchLists(t, {"mark"});
  auto elca = ElcaBruteForce(t, lists);
  EXPECT_EQ(elca.size(), 2u);
  EXPECT_EQ(ElcaIndexed(t, lists), elca);
}

TEST(ElcaTest, ConfIsElcaWithExtraWitness) {
  // conf has its own "mark" editor beside the papers: after excluding the
  // CA paper, conf still has a witness pair -> conf is ELCA too.
  XmlTree t;
  XmlNodeId conf = t.AddElement(kNoXmlNode, "conf");
  XmlNodeId ed = t.AddElement(conf, "editor");
  t.AppendText(ed, "mark keyword");
  XmlNodeId p1 = t.AddElement(conf, "paper");
  XmlNodeId t1 = t.AddElement(p1, "title");
  t.AppendText(t1, "keyword");
  XmlNodeId a1 = t.AddElement(p1, "author");
  t.AppendText(a1, "mark");
  t.BuildKeywordIndex();
  auto lists = MatchLists(t, {"keyword", "mark"});
  auto slca = SlcaBruteForce(t, lists);
  auto elca = ElcaBruteForce(t, lists);
  // SLCA: editor (contains both) and paper. ELCA adds conf? No: conf's
  // non-CA-child witnesses... editor and paper are both CA children, so
  // conf has no witnesses left -> not ELCA.
  EXPECT_EQ(slca.size(), 2u);
  EXPECT_EQ(elca.size(), 2u);
  EXPECT_EQ(ElcaIndexed(t, lists), elca);

  // Now move "mark" out of the paper: conf becomes the only node with
  // both, and is both SLCA and ELCA.
  XmlTree t2;
  XmlNodeId conf2 = t2.AddElement(kNoXmlNode, "conf");
  XmlNodeId ed2 = t2.AddElement(conf2, "editor");
  t2.AppendText(ed2, "mark");
  XmlNodeId p21 = t2.AddElement(conf2, "paper");
  t2.AppendText(t2.AddElement(p21, "title"), "keyword");
  t2.BuildKeywordIndex();
  auto lists2 = MatchLists(t2, {"keyword", "mark"});
  EXPECT_EQ(SlcaBruteForce(t2, lists2), (std::vector<XmlNodeId>{conf2}));
  EXPECT_EQ(ElcaBruteForce(t2, lists2), (std::vector<XmlNodeId>{conf2}));
}

TEST(ElcaTest, ElcaSupersetOfSlca) {
  xml::BibDocument doc = xml::MakeBibDocument({.seed = 7});
  auto lists = MatchLists(doc.tree, {doc.vocabulary[0], doc.vocabulary[1]});
  ASSERT_FALSE(lists.empty());
  auto slca = SlcaBruteForce(doc.tree, lists);
  auto elca = ElcaBruteForce(doc.tree, lists);
  // Every SLCA is an ELCA (its witnesses cannot sit in CA children, since
  // an SLCA has no CA descendants at all).
  for (XmlNodeId s : slca) {
    EXPECT_TRUE(std::find(elca.begin(), elca.end(), s) != elca.end())
        << "SLCA " << s << " missing from ELCA";
  }
  EXPECT_GE(elca.size(), slca.size());
}

/// Random tree generator for oracle comparisons. Built depth-first so
/// node ids are document order (the XmlTree invariant).
XmlTree RandomTree(Rng& rng, size_t n, size_t max_children,
                   const std::vector<std::string>& words,
                   double text_prob) {
  XmlTree t;
  t.AddElement(kNoXmlNode, "r");
  size_t budget = n - 1;
  auto grow = [&](auto&& self, XmlNodeId parent, size_t depth) -> void {
    const size_t kids = rng.Index(max_children + 1);
    for (size_t i = 0; i < kids && budget > 0; ++i) {
      --budget;
      const XmlNodeId node = t.AddElement(parent, "e");
      if (rng.Chance(text_prob)) {
        t.AppendText(node, words[rng.Index(words.size())]);
      }
      if (depth < 12) self(self, node, depth + 1);
    }
  };
  while (budget > 0) grow(grow, 0, 1);
  t.BuildKeywordIndex();
  return t;
}

class SlcaOracleTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SlcaOracleTest, AllAlgorithmsMatchBruteForce) {
  Rng rng(GetParam());
  const std::vector<std::string> words = {"aa", "bb", "cc", "dd"};
  XmlTree t = RandomTree(rng, 300, 4, words, 0.5);
  const std::vector<std::vector<std::string>> queries = {
      {"aa", "bb"}, {"aa", "bb", "cc"}, {"dd"}, {"aa", "aa"},
      {"aa", "bb", "cc", "dd"}};
  for (const auto& q : queries) {
    auto lists = MatchLists(t, q);
    if (lists.empty()) continue;
    auto ref = SlcaBruteForce(t, lists);
    EXPECT_EQ(SlcaIndexedLookupEager(t, lists), ref) << "ILE seed "
                                                     << GetParam();
    EXPECT_EQ(SlcaMultiway(t, lists), ref) << "Multiway seed " << GetParam();
    auto elca_ref = ElcaBruteForce(t, lists);
    EXPECT_EQ(ElcaIndexed(t, lists), elca_ref) << "ELCA seed " << GetParam();
    EXPECT_EQ(ElcaDeweyJoin(t, lists), elca_ref)
        << "JDewey ELCA seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, SlcaOracleTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(SlcaStatsTest, IleTouchesFewerNodesThanBruteForceWhenSelective) {
  xml::BibDocument doc = xml::MakeBibDocument(
      {.seed = 3, .num_venues = 30, .papers_per_venue = 20});
  // Rare keyword + frequent keyword: ILE anchors on the rare list.
  const std::string rare = doc.vocabulary[doc.vocabulary.size() - 1];
  const std::string frequent = doc.vocabulary[0];
  auto lists = MatchLists(doc.tree, {rare, frequent});
  if (lists.empty()) GTEST_SKIP() << "rare term absent in this corpus";
  LcaStats brute, ile;
  SlcaBruteForce(doc.tree, lists, &brute);
  SlcaIndexedLookupEager(doc.tree, lists, &ile);
  EXPECT_LT(ile.lca_computations + ile.binary_searches,
            brute.nodes_visited / 4);
}

TEST(XSeekTest, ClassifiesEntitiesAndAttributes) {
  XmlTree t = Slide33Tree();
  xml::PathStatistics stats = xml::ComputePathStatistics(t);
  EXPECT_EQ(Classify(stats, "/conf/paper", false, false),
            NodeCategory::kEntity);
  EXPECT_EQ(Classify(stats, "/conf/name", true, true),
            NodeCategory::kAttribute);
  EXPECT_EQ(Classify(stats, "/conf/paper/author", true, true),
            NodeCategory::kEntity);  // repeats among siblings
}

TEST(XSeekTest, KeywordRoleTagVsText) {
  XmlTree t = Slide33Tree();
  auto roles = ClassifyKeywords(t, {"author", "mark"});
  ASSERT_EQ(roles.size(), 2u);
  EXPECT_TRUE(roles[0].is_tag_name);
  EXPECT_FALSE(roles[1].is_tag_name);
}

TEST(XSeekTest, ImplicitReturnIsNearestEntity) {
  XmlTree t = Slide33Tree();
  xml::PathStatistics stats = xml::ComputePathStatistics(t);
  // Query {keyword, mark} anchors at paper1; paper is an entity.
  auto lists = MatchLists(t, {"keyword", "mark"});
  auto slca = SlcaBruteForce(t, lists);
  ASSERT_EQ(slca.size(), 1u);
  XSeekResult r = InferReturnNodes(t, stats, {"keyword", "mark"}, slca[0]);
  EXPECT_EQ(t.tag(r.result_root), "paper");
  ASSERT_FALSE(r.return_nodes.empty());
  EXPECT_EQ(r.return_nodes[0], r.result_root);
}

TEST(XSeekTest, ExplicitTagKeywordSelectsThoseNodes) {
  XmlTree t = Slide33Tree();
  xml::PathStatistics stats = xml::ComputePathStatistics(t);
  // "mark, title": title is a tag -> return title nodes of mark's paper.
  auto lists = MatchLists(t, {"mark"});
  XSeekResult r = InferReturnNodes(t, stats, {"mark", "title"}, lists[0][0]);
  ASSERT_FALSE(r.return_nodes.empty());
  for (XmlNodeId n : r.return_nodes) EXPECT_EQ(t.tag(n), "title");
}

TEST(XRealTest, PaperBeatsVenueForTitleTerms) {
  xml::BibDocument doc = xml::MakeBibDocument({.seed = 11});
  auto types = InferReturnTypes(doc.tree,
                                {doc.vocabulary[0], doc.vocabulary[1]});
  ASSERT_FALSE(types.empty());
  // The top return type should be a paper or title path, not /bib.
  EXPECT_NE(types[0].label_path, "/bib");
  EXPECT_NE(types[0].label_path.find("paper"), std::string::npos)
      << types[0].label_path;
  // Scores descend.
  for (size_t i = 1; i < types.size(); ++i) {
    EXPECT_GE(types[i - 1].score, types[i].score);
  }
}

TEST(XRealTest, TypesWithoutAllKeywordsExcluded) {
  XmlTree t = Slide33Tree();
  // "sigmod" occurs only under /conf/name; "mark" never under it.
  auto types = InferReturnTypes(t, {"sigmod", "mark"}, 1);
  for (const auto& rt : types) {
    EXPECT_NE(rt.label_path, "/conf/name");
  }
}

}  // namespace
}  // namespace kws::lca

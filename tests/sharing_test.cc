#include <gtest/gtest.h>

#include "core/cn/execute.h"
#include "core/cn/sharing.h"
#include "relational/dblp.h"

namespace kws::cn {
namespace {

TEST(SharingTest, EmptyWorkload) {
  SharingStats s = AnalyzeSharing({});
  EXPECT_EQ(s.total_cns, 0u);
  EXPECT_EQ(s.EdgeSharingRatio(), 0.0);
  EXPECT_EQ(s.SubtreeSharingRatio(), 0.0);
}

TEST(SharingTest, IdenticalCnsShareEverything) {
  CandidateNetwork cn;
  cn.nodes = {{0, 1}, {1, 0}, {2, 2}};
  cn.edges = {{1, 0, 0, true}, {1, 2, 1, true}};
  SharingStats s = AnalyzeSharing({cn, cn, cn});
  EXPECT_EQ(s.total_join_edges, 6u);
  EXPECT_EQ(s.distinct_join_edges, 2u);
  EXPECT_GT(s.EdgeSharingRatio(), 0.5);
  // Every CN is composable from parts shared with its twins.
  EXPECT_EQ(s.composable_cns, 3u);
}

TEST(SharingTest, DisjointCnsShareNothing) {
  CandidateNetwork a;
  a.nodes = {{0, 1}, {1, 0}};
  a.edges = {{1, 0, 0, true}};
  CandidateNetwork b;
  b.nodes = {{2, 1}, {3, 0}};
  b.edges = {{1, 0, 5, true}};
  SharingStats s = AnalyzeSharing({a, b});
  EXPECT_EQ(s.distinct_join_edges, 2u);
  EXPECT_EQ(s.EdgeSharingRatio(), 0.0);
  EXPECT_EQ(s.composable_cns, 0u);
}

TEST(SharingTest, RealWorkloadSharesSubstantially) {
  // The slide-135 claim: enumerated CN workloads overlap heavily.
  relational::DblpOptions opts;
  opts.num_papers = 50;
  relational::DblpDatabase dblp = MakeDblpDatabase(opts);
  std::vector<KeywordMask> masks(dblp.db->num_tables(), 0);
  masks[dblp.author] = 3;
  masks[dblp.paper] = 3;
  auto cns = EnumerateCandidateNetworks(*dblp.db, masks, 3, {.max_size = 5});
  ASSERT_GT(cns.size(), 5u);
  SharingStats s = AnalyzeSharing(cns);
  EXPECT_GT(s.EdgeSharingRatio(), 0.5);
  EXPECT_GT(s.SubtreeSharingRatio(), 0.3);
  EXPECT_GT(s.composable_cns, s.total_cns / 2);
  EXPECT_EQ(s.total_subtrees, 2 * s.total_join_edges);
}

}  // namespace
}  // namespace kws::cn

namespace kws::cn {
namespace {


class SharedCountOracleTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SharedCountOracleTest, CountsMatchExecution) {
  relational::DblpOptions opts;
  opts.seed = GetParam();
  opts.num_papers = 60;
  opts.num_authors = 30;
  relational::DblpDatabase dblp = MakeDblpDatabase(opts);
  TupleSets ts(*dblp.db, {"keyword", "search"});
  auto cns = EnumerateCandidateNetworks(*dblp.db, ts.table_masks(),
                                        ts.full_mask(), {.max_size = 5});
  ASSERT_FALSE(cns.empty());
  SharedExecStats shared_stats, indep_stats;
  auto shared = SharedCountAll(*dblp.db, cns, ts, true, &shared_stats);
  auto indep = SharedCountAll(*dblp.db, cns, ts, false, &indep_stats);
  ASSERT_EQ(shared.size(), cns.size());
  EXPECT_EQ(shared, indep);
  for (size_t i = 0; i < cns.size(); ++i) {
    EXPECT_EQ(shared[i], ExecuteCn(*dblp.db, cns[i], ts).size())
        << "CN " << i;
  }
  // Sharing must actually hit the memo and do fewer join lookups.
  EXPECT_GT(shared_stats.memo_hits, 0u);
  EXPECT_LT(shared_stats.join_lookups, indep_stats.join_lookups);
}

INSTANTIATE_TEST_SUITE_P(Sweep, SharedCountOracleTest,
                         ::testing::Values(4, 9));

}  // namespace
}  // namespace kws::cn

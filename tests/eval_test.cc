#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/eval/axioms.h"
#include "core/eval/metrics.h"
#include "core/lca/slca.h"
#include "xml/bibgen.h"
#include "xml/tree.h"

namespace kws::eval {
namespace {

using xml::kNoXmlNode;
using xml::XmlNodeId;
using xml::XmlTree;

XmlTree TinyTree() {
  XmlTree t;
  XmlNodeId root = t.AddElement(kNoXmlNode, "conf");
  XmlNodeId p1 = t.AddElement(root, "paper");
  t.AppendText(t.AddElement(p1, "title"), "keyword search");
  t.AppendText(t.AddElement(p1, "author"), "mark");
  XmlNodeId p2 = t.AddElement(root, "paper");
  t.AppendText(t.AddElement(p2, "title"), "query processing");
  t.AppendText(t.AddElement(p2, "author"), "chen");
  t.BuildKeywordIndex();
  return t;
}

TEST(MetricsTest, ScoreResultExactMatch) {
  XmlTree t = TinyTree();
  // Relevant = paper1 subtree (nodes 1..3).
  Prf prf = ScoreResult(t, 1, {1, 2, 3});
  EXPECT_DOUBLE_EQ(prf.precision, 1.0);
  EXPECT_DOUBLE_EQ(prf.recall, 1.0);
  EXPECT_DOUBLE_EQ(prf.f, 1.0);
}

TEST(MetricsTest, ScoreResultOverlyLargeResult) {
  XmlTree t = TinyTree();
  // Returning the whole conf for a paper1 ground truth: full recall, low
  // precision (3 relevant of 7 nodes).
  Prf prf = ScoreResult(t, 0, {1, 2, 3});
  EXPECT_DOUBLE_EQ(prf.recall, 1.0);
  EXPECT_NEAR(prf.precision, 3.0 / 7.0, 1e-12);
  EXPECT_GT(prf.f, 0);
  EXPECT_LT(prf.f, 1);
}

TEST(MetricsTest, ScoreResultMiss) {
  XmlTree t = TinyTree();
  Prf prf = ScoreResult(t, 4, {1, 2, 3});
  EXPECT_DOUBLE_EQ(prf.precision, 0.0);
  EXPECT_DOUBLE_EQ(prf.recall, 0.0);
  EXPECT_DOUBLE_EQ(prf.f, 0.0);
}

TEST(MetricsTest, GeneralizedPrecision) {
  const std::vector<double> scores = {1.0, 0.5, 0.0};
  EXPECT_DOUBLE_EQ(GeneralizedPrecision(scores, 1), 1.0);
  EXPECT_DOUBLE_EQ(GeneralizedPrecision(scores, 2), 0.75);
  EXPECT_DOUBLE_EQ(GeneralizedPrecision(scores, 3), 0.5);
  EXPECT_DOUBLE_EQ(GeneralizedPrecision(scores, 10), 0.5);  // clamped
  EXPECT_DOUBLE_EQ(GeneralizedPrecision({}, 3), 0.0);
  EXPECT_NEAR(AverageGeneralizedPrecision(scores), (1.0 + 0.75 + 0.5) / 3,
              1e-12);
}

TEST(MetricsTest, SetPrf) {
  Prf prf = SetPrf({1, 2, 3, 4}, {3, 4, 5});
  EXPECT_DOUBLE_EQ(prf.precision, 0.5);
  EXPECT_NEAR(prf.recall, 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(SetPrf({}, {1}).f, 0.0);
}

std::vector<XmlNodeId> SlcaEngine(const XmlTree& tree,
                                  const std::vector<std::string>& q) {
  auto lists = lca::MatchLists(tree, q);
  if (lists.empty()) return {};
  return lca::SlcaBruteForce(tree, lists);
}

TEST(AxiomsTest, AppendLeafCopyKeepsOldIds) {
  XmlTree t = TinyTree();
  // Parent must be on the rightmost path: paper2 (node 4).
  XmlTree t2 = AppendLeafCopy(t, 4, "note", "bonus keyword");
  ASSERT_EQ(t2.size(), t.size() + 1);
  for (XmlNodeId n = 0; n < t.size(); ++n) {
    EXPECT_EQ(t2.tag(n), t.tag(n));
    EXPECT_EQ(t2.parent(n), t.parent(n));
  }
  EXPECT_EQ(t2.tag(t.size()), "note");
  EXPECT_FALSE(t2.MatchNodes("bonus").empty());
}

TEST(AxiomsTest, SlcaSatisfiesQueryConsistencyHere) {
  XmlTree t = TinyTree();
  auto violations = CheckQueryAxioms(SlcaEngine, t, {"keyword"}, "mark");
  for (const auto& v : violations) {
    EXPECT_NE(v.axiom, "query-consistency") << v.detail;
  }
}

TEST(AxiomsTest, DetectsViolationsOfABrokenEngine) {
  // An engine that returns the root only when the query has >= 2 keywords
  // violates query monotonicity (results grow from 0 to 1).
  XmlSearchFn broken = [](const XmlTree& tree,
                          const std::vector<std::string>& q) {
    std::vector<XmlNodeId> out;
    (void)tree;
    if (q.size() >= 2) out.push_back(0);
    return out;
  };
  XmlTree t = TinyTree();
  auto violations = CheckQueryAxioms(broken, t, {"zzz"}, "yyy");
  bool mono = false, cons = false;
  for (const auto& v : violations) {
    mono |= (v.axiom == "query-monotonicity");
    cons |= (v.axiom == "query-consistency");
  }
  EXPECT_TRUE(mono);
  EXPECT_TRUE(cons);  // the new result does not contain "yyy"
}

TEST(AxiomsTest, SlcaViolatesDataMonotonicityOnPlantedCase) {
  // Slide 108's point: SLCA-style semantics break some axioms. Adding a
  // "mark" leaf inside paper2 makes paper2 an SLCA for {keyword-of-p2,
  // mark}... and can *remove* an old result when the new node creates a
  // deeper CA. Construct: query {processing, chen}: SLCA = paper2.
  // Add a leaf under paper2's author containing "processing chen": the
  // author node becomes the (single, deeper) SLCA — same count. Then the
  // data-consistency clause must hold: new results contain the new node.
  XmlTree t = TinyTree();
  auto violations =
      CheckDataAxioms(SlcaEngine, t, 6, "note", "processing chen",
                      {"processing", "chen"});
  for (const auto& v : violations) {
    // The replacement result (the author) contains the new node, so no
    // data-consistency violation; monotonicity holds (1 -> 1).
    ADD_FAILURE() << v.axiom << ": " << v.detail;
  }
  // Now a case where SLCA genuinely drops results: query {mark}: SLCAs
  // are the matching author leaf (node 3). Adding a deeper "mark" under
  // that author... is impossible (leaf on rightmost path is node 6), so
  // instead check on paper2's author with query {chen}: old SLCA is node
  // 6; adding a "chen" note *under* node 6 moves the SLCA deeper; the old
  // result disappears, the new one contains the new node -> consistent,
  // count stable. The axiom machinery reports nothing — the point of
  // this test is that the checkers run end-to-end on data edits.
  auto v2 = CheckDataAxioms(SlcaEngine, t, 6, "note", "chen", {"chen"});
  for (const auto& v : v2) {
    EXPECT_NE(v.axiom, "data-consistency") << v.detail;
  }
}

TEST(AxiomsTest, LargeDocumentSweep) {
  xml::BibDocument doc = xml::MakeBibDocument({.seed = 17});
  const std::string kw1 = doc.vocabulary[0];
  const std::string kw2 = doc.vocabulary[1];
  auto violations = CheckQueryAxioms(SlcaEngine, doc.tree, {kw1}, kw2);
  // SLCA under AND semantics never violates query monotonicity: adding a
  // keyword can only shrink the CA set... but SLCA counts can grow when
  // one big result splits into many deeper ones — if that happens the
  // checker must say so. Either way the checker must not crash and any
  // violation must be one of the two query axioms.
  for (const auto& v : violations) {
    EXPECT_TRUE(v.axiom == "query-monotonicity" ||
                v.axiom == "query-consistency");
  }
}

}  // namespace
}  // namespace kws::eval

namespace kws::eval {
namespace {

TEST(MetricsTest, ToleranceToIrrelevance) {
  // Tolerance 1: reading stops after 2 consecutive zeros.
  const std::vector<double> scores = {1.0, 0.0, 0.0, 1.0, 1.0};
  EXPECT_DOUBLE_EQ(ToleranceToIrrelevance(scores, 1), 1.0 / 3.0);
  // Tolerance 3: the whole list is read.
  EXPECT_DOUBLE_EQ(ToleranceToIrrelevance(scores, 3), 3.0 / 5.0);
  // Tolerance 0: stops at the first zero.
  EXPECT_DOUBLE_EQ(ToleranceToIrrelevance(scores, 0), 0.5);
  EXPECT_DOUBLE_EQ(ToleranceToIrrelevance({}, 2), 0.0);
}

}  // namespace
}  // namespace kws::eval

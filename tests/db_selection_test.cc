#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "core/select/db_selection.h"
#include "graph/data_graph.h"
#include "relational/database.h"
#include "relational/dblp.h"
#include "text/tokenizer.h"

namespace kws::select {
namespace {

// Brute-force reference for DatabaseSelector over one database: coverage
// by tokenizing every node text directly, joinability by BFS over the
// unit-weight data graph — no keyword index, no distance index.
struct BruteScore {
  size_t keywords_covered = 0;
  uint32_t covered_mask = 0;
  size_t joinable_pairs = 0;
  double score = 0;
};

BruteScore BruteForceScore(const relational::Database& db,
                           const std::vector<std::string>& keywords,
                           double max_distance,
                           double relationship_weight) {
  graph::GraphBuildOptions go;
  go.degree_weighted_backward = false;  // unit weights: distance == hops
  const graph::RelationalGraph rg = graph::BuildDataGraph(db, go);
  const graph::DataGraph& g = rg.graph;
  text::Tokenizer tokenizer;

  // matches[k] = nodes whose tokenized text contains keyword k.
  std::vector<std::vector<bool>> matches(
      keywords.size(), std::vector<bool>(g.num_nodes(), false));
  std::vector<size_t> match_count(keywords.size(), 0);
  for (graph::NodeId n = 0; n < g.num_nodes(); ++n) {
    const std::vector<std::string> tokens = tokenizer.Tokenize(g.text(n));
    for (size_t k = 0; k < keywords.size(); ++k) {
      if (std::find(tokens.begin(), tokens.end(), keywords[k]) !=
          tokens.end()) {
        matches[k][n] = true;
        ++match_count[k];
      }
    }
  }

  BruteScore out;
  double coverage = 0;
  for (size_t k = 0; k < keywords.size(); ++k) {
    if (match_count[k] > 0) {
      ++out.keywords_covered;
      if (k < 32) out.covered_mask |= (1u << k);
      coverage += std::log(1.0 + static_cast<double>(match_count[k]));
    }
  }

  // BFS hop distances from the match set of keyword i; pair (i, j) is
  // joinable when some j-match lies within max_distance hops.
  const size_t radius = static_cast<size_t>(max_distance);
  double relationship = 0;
  for (size_t i = 0; i < keywords.size(); ++i) {
    std::vector<size_t> dist(g.num_nodes(), g.num_nodes() + 1);
    std::deque<graph::NodeId> frontier;
    for (graph::NodeId n = 0; n < g.num_nodes(); ++n) {
      if (matches[i][n]) {
        dist[n] = 0;
        frontier.push_back(n);
      }
    }
    while (!frontier.empty()) {
      const graph::NodeId n = frontier.front();
      frontier.pop_front();
      if (dist[n] == radius) continue;
      for (const graph::Edge& e : g.Out(n)) {
        if (dist[e.to] > dist[n] + 1) {
          dist[e.to] = dist[n] + 1;
          frontier.push_back(e.to);
        }
      }
    }
    for (size_t j = i + 1; j < keywords.size(); ++j) {
      bool related = false;
      for (graph::NodeId n = 0; n < g.num_nodes() && !related; ++n) {
        related = matches[j][n] && dist[n] <= radius;
      }
      if (related) {
        ++out.joinable_pairs;
        relationship += 1.0;
      }
    }
  }
  out.score = coverage + relationship_weight * relationship;
  return out;
}

/// Selector scores equal the brute-force reference for every registered
/// database, over random corpora and a mixed query set.
class SelectionOracleTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SelectionOracleTest, RankMatchesBruteForce) {
  const uint64_t seed = GetParam();
  std::vector<std::unique_ptr<relational::Database>> dbs;
  for (size_t i = 0; i < 3; ++i) {
    relational::DblpOptions opts;
    opts.seed = seed + i;
    opts.num_conferences = 4;
    opts.num_authors = 12;
    opts.num_papers = 25;
    dbs.push_back(std::move(relational::MakeDblpDatabase(opts).db));
  }

  SelectorOptions so;
  so.max_distance = 3.0;
  so.graph_options.degree_weighted_backward = false;
  DatabaseSelector selector(so);
  for (size_t i = 0; i < dbs.size(); ++i) {
    selector.AddDatabase("db-" + std::to_string(i), dbs[i].get());
  }

  const std::vector<std::string> queries = {
      "keyword search", "database query processing",
      "hristidis papakonstantinou", "xml zzz_nowhere"};
  for (const std::string& query : queries) {
    const std::vector<std::string> keywords =
        text::Tokenizer().Tokenize(query);
    const std::vector<DatabaseScore> ranked = selector.Rank(query);
    ASSERT_EQ(ranked.size(), dbs.size()) << query;
    for (const DatabaseScore& ds : ranked) {
      const BruteScore want = BruteForceScore(
          *dbs[ds.index], keywords, so.max_distance, so.relationship_weight);
      const std::string context = query + " / " + ds.name;
      EXPECT_EQ(ds.keywords_covered, want.keywords_covered) << context;
      EXPECT_EQ(ds.covered_mask, want.covered_mask) << context;
      EXPECT_EQ(ds.joinable_pairs, want.joinable_pairs) << context;
      EXPECT_DOUBLE_EQ(ds.score, want.score) << context;
    }
    // Best first under the strict (score desc, registration index asc)
    // order — no equal-score pair may appear index-inverted.
    for (size_t i = 1; i < ranked.size(); ++i) {
      EXPECT_TRUE(ranked[i - 1].score > ranked[i].score ||
                  (ranked[i - 1].score == ranked[i].score &&
                   ranked[i - 1].index < ranked[i].index))
          << query << " rank " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, SelectionOracleTest,
                         ::testing::Values(2, 13, 41, 67));

}  // namespace
}  // namespace kws::select

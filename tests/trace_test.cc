// Tests for kws::trace: span-tree arena semantics, the renderers' golden
// output (byte-exact via the explicit-duration EndSpan overload), the
// deterministic worker merge, and the end-to-end oracle that a traced
// query's span *structure* is identical serial vs parallel for every
// strategy, seed and thread count — only durations may differ.

#include "common/trace.h"

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

namespace kws::trace {
namespace {

TEST(TracerTest, SpanTreeShapeAndArenaHandles) {
  Tracer t;
  EXPECT_FALSE(t.InSpan());
  const size_t a = t.BeginSpan("a");
  EXPECT_TRUE(t.InSpan());
  const size_t b = t.BeginSpan("b");
  t.EndSpan();
  const size_t c = t.BeginSpan("c");
  t.EndSpan();
  t.EndSpan();
  const size_t d = t.BeginSpan("d");
  t.EndSpan();
  EXPECT_FALSE(t.InSpan());

  ASSERT_EQ(t.spans().size(), 4u);
  EXPECT_EQ(t.roots(), (std::vector<size_t>{a, d}));
  EXPECT_EQ(t.spans()[a].children, (std::vector<size_t>{b, c}));
  EXPECT_TRUE(t.spans()[b].children.empty());
  EXPECT_EQ(t.spans()[a].name, "a");
  EXPECT_EQ(t.spans()[d].name, "d");
}

TEST(TracerTest, CountersAccumulateByNameInFirstTouchOrder) {
  Tracer t;
  t.BeginSpan("s");
  t.AddCounter("rows", 3);
  t.AddCounter("hits", 1);
  t.AddCounter("rows", 2);
  t.EndSpan();
  const Span& s = t.spans()[0];
  ASSERT_EQ(s.counters.size(), 2u);
  EXPECT_EQ(s.counters[0].name, "rows");
  EXPECT_EQ(s.counters[0].value, 5u);
  EXPECT_EQ(s.counters[1].name, "hits");
  EXPECT_EQ(s.counters[1].value, 1u);
}

TEST(TracerTest, AnnotationsWithoutOpenSpanLandOnTheTrace) {
  Tracer t;
  t.AddCounter("queries", 1);
  t.AddEvent("warmup");
  t.BeginSpan("s");
  t.AddEvent("hit");
  t.EndSpan();
  t.AddCounter("queries", 1);
  ASSERT_EQ(t.counters().size(), 1u);
  EXPECT_EQ(t.counters()[0].value, 2u);
  EXPECT_EQ(t.events(), (std::vector<std::string>{"warmup"}));
  EXPECT_EQ(t.spans()[0].events, (std::vector<std::string>{"hit"}));
}

/// The fixture both golden tests share: explicit durations make the
/// output byte-stable.
Tracer GoldenTrace() {
  Tracer t;
  t.AddCounter("queries", 1);
  t.AddEvent("warmup");
  t.BeginSpan("a");
  t.AddCounter("rows", 3);
  t.AddCounter("rows", 2);
  t.BeginSpan("b");
  t.AddEvent("hit");
  t.EndSpan(7);
  t.EndSpan(40);
  return t;
}

TEST(TracerTest, RenderTreeGolden) {
  EXPECT_EQ(GoldenTrace().RenderTree(),
            "queries=1\n"
            "! warmup\n"
            "a  40us  [rows=5]\n"
            "  b  7us\n"
            "    ! hit\n");
}

TEST(TracerTest, RenderJsonGolden) {
  EXPECT_EQ(GoldenTrace().RenderJson(),
            "{\"counters\":{\"queries\":1},\"events\":[\"warmup\"],"
            "\"spans\":[{\"name\":\"a\",\"micros\":40,"
            "\"counters\":{\"rows\":5},"
            "\"spans\":[{\"name\":\"b\",\"micros\":7,"
            "\"events\":[\"hit\"]}]}]}");
}

TEST(TracerTest, RenderJsonSortKeyAndEscaping) {
  Tracer t;
  t.BeginSpan("s");
  t.SetSortKey(9);
  // Renderers must stay correct for arbitrary event payloads even though
  // call-site literals are linted.
  t.AddEvent("q\"uote\\back\nline");  // kwslint: allow(metric-name) escaping fixture
  t.EndSpan(1);
  EXPECT_EQ(t.RenderJson(),
            "{\"spans\":[{\"name\":\"s\",\"micros\":1,\"sort_key\":9,"
            "\"events\":[\"q\\\"uote\\\\back\\nline\"]}]}");
}

TEST(TracerTest, StructureSignatureTogglesValuesNeverDurations) {
  const Tracer t = GoldenTrace();
  EXPECT_EQ(t.StructureSignature(true),
            "@{queries=1}<warmup>a{rows=5}(b<hit>)");
  EXPECT_EQ(t.StructureSignature(false), "@{queries}<warmup>a{rows}(b<hit>)");
  // Same structure, different duration: signatures unchanged.
  Tracer slow;
  slow.AddCounter("queries", 1);
  slow.AddEvent("warmup");
  slow.BeginSpan("a");
  slow.AddCounter("rows", 5);
  slow.BeginSpan("b");
  slow.AddEvent("hit");
  slow.EndSpan(999999);
  slow.EndSpan(123456);
  EXPECT_EQ(slow.StructureSignature(true), t.StructureSignature(true));
}

/// Distributes `units` logical spans (sort_key = unit index) over
/// `workers` tracers by static striding, the parallel-search pattern.
std::vector<Tracer> MakeWorkers(size_t units, size_t workers) {
  std::vector<Tracer> out(workers);
  for (size_t i = 0; i < units; ++i) {
    Tracer& w = out[i % workers];
    w.BeginSpan("cn.eval");
    w.SetSortKey(i);
    w.AddCounter("results", i + 1);
    w.EndSpan(0);
  }
  return out;
}

TEST(TracerTest, MergeWorkersIsThreadCountIndependent) {
  std::string baseline;
  for (const size_t workers : {1u, 2u, 3u, 8u}) {
    Tracer parent;
    parent.BeginSpan("cn.execute.naive");
    std::vector<Tracer> w = MakeWorkers(6, workers);
    parent.MergeWorkers(&w);
    parent.EndSpan(0);
    const std::string sig = parent.StructureSignature(true);
    if (baseline.empty()) {
      baseline = sig;
      // Merged children are sort_key-ordered under the open span.
      const Span& root = parent.spans()[parent.roots()[0]];
      ASSERT_EQ(root.children.size(), 6u);
      for (size_t i = 0; i < root.children.size(); ++i) {
        EXPECT_EQ(parent.spans()[root.children[i]].sort_key, i);
      }
    } else {
      EXPECT_EQ(sig, baseline) << workers << " workers";
    }
  }
}

TEST(TracerTest, MergeWorkersFoldsTraceLevelAnnotations) {
  Tracer parent;
  parent.BeginSpan("exec");
  std::vector<Tracer> workers(2);
  workers[0].AddCounter("join_lookups", 3);
  workers[1].AddCounter("join_lookups", 4);
  workers[1].AddEvent("cn.deadline.hit");
  parent.MergeWorkers(&workers);
  parent.EndSpan(0);
  const Span& exec = parent.spans()[parent.roots()[0]];
  ASSERT_EQ(exec.counters.size(), 1u);
  EXPECT_EQ(exec.counters[0].value, 7u);
  EXPECT_EQ(exec.events, (std::vector<std::string>{"cn.deadline.hit"}));
}

TEST(TraceSpanTest, NullTracerIsANoOpEverywhere) {
  TraceSpan span(nullptr, "s");
  span.AddCounter("rows", 1);
  span.AddEvent("hit");
  span.SetSortKey(3);
  EXPECT_EQ(span.tracer(), nullptr);
  span.Close();  // still a no-op
  AddCounter(nullptr, "rows", 1);
  AddEvent(nullptr, "hit");
}

TEST(TraceSpanTest, CloseIsIdempotentAndDisarmsTheDestructor) {
  Tracer t;
  {
    TraceSpan span(&t, "s");
    EXPECT_TRUE(t.InSpan());
    span.Close();
    EXPECT_FALSE(t.InSpan());
    span.Close();  // second close must not touch the tracer
    EXPECT_EQ(span.tracer(), nullptr);
  }  // destructor after explicit Close: no double EndSpan
  EXPECT_FALSE(t.InSpan());
  ASSERT_EQ(t.spans().size(), 1u);
}

}  // namespace
}  // namespace kws::trace

// ------------------------------------------ CN search structure oracle

#include "common/deadline.h"
#include "core/cn/search.h"
#include "relational/dblp.h"

namespace kws::cn {
namespace {

/// Span structure must be bit-identical serial vs parallel for every
/// strategy; kNaive additionally pins every counter value (its per-CN
/// work is exact), while kSparse/kGlobalPipeline aggregate counters whose
/// values legitimately vary with thread count (like their SearchStats).
class TraceStructureOracleTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TraceStructureOracleTest, StructureIdenticalAcrossThreadCounts) {
  relational::DblpOptions opts;
  opts.seed = GetParam();
  opts.num_authors = 30;
  opts.num_papers = 60;
  opts.num_conferences = 5;
  relational::DblpDatabase dblp = MakeDblpDatabase(opts);
  CnKeywordSearch search(*dblp.db);
  for (const std::string& query :
       {std::string("keyword search"), std::string("database query")}) {
    for (Strategy strategy :
         {Strategy::kNaive, Strategy::kSparse, Strategy::kGlobalPipeline}) {
      const bool with_values = strategy == Strategy::kNaive;
      std::string serial_sig;
      std::vector<SearchResult> serial_results;
      for (const size_t threads : {1u, 2u, 4u, 8u}) {
        SearchOptions so;
        so.k = 10;
        so.max_cn_size = 4;
        so.strategy = strategy;
        so.num_threads = threads;
        trace::Tracer tracer;
        so.tracer = &tracer;
        const auto results = search.Search(query, so, nullptr, nullptr);
        EXPECT_FALSE(tracer.InSpan());
        const std::string context = query + " / " +
                                    StrategyToString(strategy) + " / " +
                                    std::to_string(threads) + " threads";
        if (threads == 1) {
          serial_sig = tracer.StructureSignature(with_values);
          serial_results = results;
          EXPECT_NE(serial_sig.find("cn.search"), std::string::npos)
              << context;
          EXPECT_NE(serial_sig.find("cn.tuple_sets"), std::string::npos)
              << context;
          EXPECT_NE(serial_sig.find("cn.enumerate"), std::string::npos)
              << context;
          EXPECT_NE(serial_sig.find("cn.topk"), std::string::npos) << context;
        } else {
          EXPECT_EQ(tracer.StructureSignature(with_values), serial_sig)
              << context;
          // Tracing must never perturb the answer either.
          ASSERT_EQ(results.size(), serial_results.size()) << context;
          for (size_t i = 0; i < results.size(); ++i) {
            EXPECT_EQ(results[i].score, serial_results[i].score) << context;
            EXPECT_EQ(results[i].cn_index, serial_results[i].cn_index)
                << context;
            EXPECT_EQ(results[i].tuples, serial_results[i].tuples) << context;
          }
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, TraceStructureOracleTest,
                         ::testing::Values(3, 17, 29, 71));

TEST(TraceStructureTest, TracedAndUntracedRunsAgreeBitForBit) {
  relational::DblpDatabase dblp = relational::MakeDblpDatabase({});
  CnKeywordSearch search(*dblp.db);
  SearchOptions plain;
  plain.k = 10;
  plain.max_cn_size = 4;
  SearchStats plain_stats;
  const auto want = search.Search("keyword search", plain, nullptr,
                                  &plain_stats);
  SearchOptions traced = plain;
  trace::Tracer tracer;
  traced.tracer = &tracer;
  SearchStats traced_stats;
  const auto got = search.Search("keyword search", traced, nullptr,
                                 &traced_stats);
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].score, want[i].score);
    EXPECT_EQ(got[i].tuples, want[i].tuples);
  }
  EXPECT_EQ(traced_stats.cns_enumerated, plain_stats.cns_enumerated);
  EXPECT_EQ(traced_stats.cns_evaluated, plain_stats.cns_evaluated);
  EXPECT_EQ(traced_stats.join_lookups, plain_stats.join_lookups);
  EXPECT_FALSE(tracer.spans().empty());
}

TEST(TraceStructureTest, ExpiredDeadlineEmitsDeadlineEvent) {
  relational::DblpDatabase dblp = relational::MakeDblpDatabase({});
  CnKeywordSearch search(*dblp.db);
  SearchOptions so;
  so.k = 10;
  so.deadline = Deadline::AfterMicros(0);
  trace::Tracer tracer;
  so.tracer = &tracer;
  SearchStats stats;
  const auto results = search.Search("keyword search", so, nullptr, &stats);
  EXPECT_TRUE(results.empty());
  EXPECT_TRUE(stats.deadline_hit);
  EXPECT_NE(tracer.StructureSignature(false).find("cn.deadline.hit"),
            std::string::npos);
}

}  // namespace
}  // namespace kws::cn

// ----------------------------------------------- Explain facade, engines

#include "core/engine/engine.h"
#include "core/engine/xml_engine.h"
#include "xml/bibgen.h"

namespace kws::engine {
namespace {

TEST(ExplainTest, RelationalEngineExplainCarriesTheFullSpanTree) {
  relational::DblpOptions opts;
  opts.num_authors = 24;
  opts.num_papers = 48;
  opts.num_conferences = 6;
  relational::DblpDatabase dblp = MakeDblpDatabase(opts);
  KeywordSearchEngine engine(*dblp.db);

  const EngineResponse plain = engine.Search("keyword search");
  const ExplainResult explained = engine.Explain("keyword search");
  ASSERT_EQ(explained.response.results.size(), plain.results.size());
  for (size_t i = 0; i < plain.results.size(); ++i) {
    EXPECT_EQ(explained.response.results[i].score, plain.results[i].score);
    EXPECT_EQ(explained.response.results[i].tuples, plain.results[i].tuples);
  }
  for (const char* span : {"engine.search", "engine.clean", "cn.search",
                           "cn.tuple_sets", "cn.enumerate", "cn.topk"}) {
    EXPECT_NE(explained.tree.find(span), std::string::npos) << span;
    EXPECT_NE(explained.json.find(span), std::string::npos) << span;
  }
  EXPECT_EQ(explained.json.front(), '{');
  EXPECT_EQ(explained.json.back(), '}');
}

TEST(ExplainTest, XmlEngineExplainCoversLcaAndRenderStages) {
  xml::BibDocument doc = xml::MakeBibDocument({.seed = 4, .num_venues = 6});
  XmlKeywordSearch engine(doc.tree);
  const std::string query = doc.vocabulary[0];

  const XmlResponse plain = engine.Search(query);
  const XmlExplainResult explained = engine.Explain(query);
  ASSERT_EQ(explained.response.results.size(), plain.results.size());
  for (size_t i = 0; i < plain.results.size(); ++i) {
    EXPECT_EQ(explained.response.results[i].anchor, plain.results[i].anchor);
    EXPECT_EQ(explained.response.results[i].score, plain.results[i].score);
  }
  for (const char* span :
       {"xml.search", "xml.match_lists", "lca.slca_ile", "xml.rank",
        "xml.render", "lca.xseek", "xml.cluster"}) {
    EXPECT_NE(explained.tree.find(span), std::string::npos) << span;
  }

  // ELCA semantics routes through the other LCA kernel.
  XmlEngineOptions elca;
  elca.semantics = XmlSemantics::kElca;
  const XmlExplainResult elca_explained = engine.Explain(query, elca);
  EXPECT_NE(elca_explained.tree.find("lca.elca_indexed"), std::string::npos);
}

TEST(ExplainTest, ExplainIsDeterministicModuloDurations) {
  xml::BibDocument doc = xml::MakeBibDocument({.seed = 9, .num_venues = 5});
  XmlKeywordSearch engine(doc.tree);
  XmlEngineOptions opts;
  trace::Tracer first;
  trace::Tracer second;
  opts.trace = &first;
  engine.Search(doc.vocabulary[1], opts);
  opts.trace = &second;
  engine.Search(doc.vocabulary[1], opts);
  EXPECT_EQ(first.StructureSignature(true), second.StructureSignature(true));
}

}  // namespace
}  // namespace kws::engine

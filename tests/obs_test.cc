// Tests for the kws::obs operational-telemetry layer: deterministic
// window advance under a ManualClock (byte-stable goldens), agreement
// with the cumulative instruments' bucketing, the TelemetryRegistry
// render, the ServingEngine::Statusz golden, and a concurrent-writers
// sweep that rides the ci.sh TSan gate.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/thread_pool.h"
#include "core/engine/engine.h"
#include "obs/clock.h"
#include "obs/telemetry.h"
#include "obs/windowed.h"
#include "relational/dblp.h"
#include "serve/server.h"

namespace kws::obs {
namespace {

// ---------------------------------------------------------------------------
// Clocks.

TEST(ManualClockTest, AdvancesOnlyWhenTold) {
  ManualClock clock;
  EXPECT_EQ(clock.NowMicros(), 0u);
  clock.AdvanceMicros(250);
  EXPECT_EQ(clock.NowMicros(), 250u);
  clock.AdvanceMicros(0);
  EXPECT_EQ(clock.NowMicros(), 250u);
  ManualClock seeded(1'000'000);
  EXPECT_EQ(seeded.NowMicros(), 1'000'000u);
}

TEST(SteadyClockTest, IsMonotone) {
  const SteadyClock clock;
  const uint64_t a = clock.NowMicros();
  const uint64_t b = clock.NowMicros();
  EXPECT_LE(a, b);
  EXPECT_EQ(DefaultClock(), DefaultClock());
}

// ---------------------------------------------------------------------------
// WindowedCounter under a ManualClock: every reading is exact.

TEST(WindowedCounterTest, WindowAdvanceIsDeterministic) {
  ManualClock clock;
  WindowOptions w;
  w.window_micros = 1000;
  w.num_windows = 4;
  WindowedCounter c(&clock, w);
  // Snapshot is always num_windows entries, zeros before any traffic.
  EXPECT_EQ(c.WindowSnapshot(), (std::vector<uint64_t>{0, 0, 0, 0}));

  c.Add(2);  // window 0
  clock.AdvanceMicros(1000);
  c.Add(3);  // window 1
  clock.AdvanceMicros(999);  // still window 1
  c.Add();
  EXPECT_EQ(c.total(), 6u);
  EXPECT_EQ(c.TotalInWindows(), 6u);
  // Oldest retained window first, current (partial) window last; windows
  // before the clock origin render as zeros.
  EXPECT_EQ(c.WindowSnapshot(), (std::vector<uint64_t>{0, 0, 2, 4}));

  clock.AdvanceMicros(1);  // window 2 begins
  EXPECT_EQ(c.WindowSnapshot(), (std::vector<uint64_t>{0, 2, 4, 0}));
  EXPECT_EQ(c.TotalInWindows(), 6u);
}

TEST(WindowedCounterTest, OldWindowsExpireButTotalNeverDecays) {
  ManualClock clock;
  WindowOptions w;
  w.window_micros = 1000;
  w.num_windows = 2;
  WindowedCounter c(&clock, w);
  c.Add(5);
  EXPECT_EQ(c.TotalInWindows(), 5u);
  clock.AdvanceMicros(1000);
  EXPECT_EQ(c.TotalInWindows(), 5u);  // window 0 still retained
  clock.AdvanceMicros(1000);
  EXPECT_EQ(c.TotalInWindows(), 0u);  // rotated out
  EXPECT_EQ(c.WindowSnapshot(), (std::vector<uint64_t>{0, 0}));
  EXPECT_EQ(c.total(), 5u);  // the cumulative side never decays
}

TEST(WindowedCounterTest, RatePerSecondIsExactUnderManualClock) {
  ManualClock clock;
  WindowOptions w;
  w.window_micros = 500'000;  // 0.5 s
  w.num_windows = 4;          // 2 s retained span
  WindowedCounter c(&clock, w);
  c.Add(10);
  clock.AdvanceMicros(500'000);
  c.Add(30);
  EXPECT_DOUBLE_EQ(c.RatePerSecond(), 40.0 / 2.0);
  // Rates decay to zero when traffic stops — the cumulative counters
  // cannot say this.
  clock.AdvanceMicros(4 * 500'000);
  EXPECT_DOUBLE_EQ(c.RatePerSecond(), 0.0);
}

TEST(WindowedCounterTest, RingRecyclesSlotsExactly) {
  ManualClock clock;
  WindowOptions w;
  w.window_micros = 10;
  w.num_windows = 3;
  WindowedCounter c(&clock, w);
  // Drive many full rotations; every window sees its own exact count.
  for (uint64_t i = 0; i < 50; ++i) {
    c.Add(i + 1);
    clock.AdvanceMicros(10);
  }
  // Now at window 50 (empty); retained: 49, 48 (+ current 50).
  EXPECT_EQ(c.WindowSnapshot(), (std::vector<uint64_t>{49, 50, 0}));
  EXPECT_EQ(c.TotalInWindows(), 99u);
  EXPECT_EQ(c.total(), 50u * 51u / 2u);
}

// ---------------------------------------------------------------------------
// WindowedHistogram: windowed percentiles, identical bucketing.

TEST(WindowedHistogramTest, WindowedReadingsAreExact) {
  ManualClock clock;
  WindowOptions w;
  w.window_micros = 1000;
  w.num_windows = 2;
  WindowedHistogram h(&clock, w);
  EXPECT_EQ(h.CountInWindows(), 0u);
  EXPECT_DOUBLE_EQ(h.MeanMicros(), 0.0);
  EXPECT_DOUBLE_EQ(h.PercentileMicros(0.99), 0.0);

  h.Record(100);  // window 0
  h.Record(300);
  clock.AdvanceMicros(1000);
  h.Record(500);  // window 1
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.CountInWindows(), 3u);
  EXPECT_DOUBLE_EQ(h.MeanMicros(), 300.0);

  // Window 0 (with the 100 and 300 us samples) rotates out: the recent
  // view sharpens to the one 500 us observation.
  clock.AdvanceMicros(1000);
  EXPECT_EQ(h.CountInWindows(), 1u);
  EXPECT_DOUBLE_EQ(h.MeanMicros(), 500.0);
  EXPECT_EQ(h.count(), 3u);
}

TEST(WindowedHistogramTest, BucketsIdenticallyToLatencyHistogram) {
  // Same recordings, all within live windows: the windowed percentile
  // must equal the cumulative one exactly (shared bucketing + shared
  // interpolation).
  ManualClock clock;
  WindowOptions w;
  w.window_micros = 1'000'000;
  w.num_windows = 8;
  WindowedHistogram windowed(&clock, w);
  LatencyHistogram cumulative;
  const double samples[] = {0.5, 1, 3, 10, 100, 1000, 5000, 100000};
  for (double s : samples) {
    windowed.Record(s);
    cumulative.Record(s);
  }
  for (double p : {0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(windowed.PercentileMicros(p),
                     cumulative.PercentileMicros(p))
        << p;
  }
  EXPECT_DOUBLE_EQ(windowed.MeanMicros(), cumulative.MeanMicros());
}

// ---------------------------------------------------------------------------
// TelemetryRegistry: stable pointers, spliced byte-stable render.

TEST(TelemetryRegistryTest, InstrumentPointersAreStable) {
  TelemetryRegistry reg;
  WindowedCounter* c = reg.GetWindowedCounter("serve.submitted");
  EXPECT_EQ(reg.GetWindowedCounter("serve.submitted"), c);
  EXPECT_NE(reg.GetWindowedCounter("serve.completed"), c);
  WindowedHistogram* h = reg.GetWindowedHistogram("serve.latency_micros");
  EXPECT_EQ(reg.GetWindowedHistogram("serve.latency_micros"), h);
  // The cumulative passthroughs share one registry.
  EXPECT_EQ(reg.GetCounter("serve.submitted"),
            reg.cumulative().GetCounter("serve.submitted"));
}

TEST(TelemetryRegistryTest, RenderJsonGoldenBytes) {
  ManualClock clock;
  WindowOptions w;
  w.window_micros = 1000;
  w.num_windows = 4;
  TelemetryRegistry reg(&clock, w);
  reg.GetCounter("serve.hits")->Add(2);
  WindowedCounter* wc = reg.GetWindowedCounter("serve.hits");
  wc->Add(2);
  clock.AdvanceMicros(1000);
  wc->Add(3);
  WindowedHistogram* wh = reg.GetWindowedHistogram("serve.latency_micros");
  wh->Record(100);
  wh->Record(100);
  EXPECT_EQ(
      reg.RenderJson(),
      "{\"counters\":{\"serve.hits\":2},\"histograms\":{},"
      "\"windowed\":{\"window_micros\":1000,\"num_windows\":4,"
      "\"counters\":{\"serve.hits\":{\"total\":5,\"in_windows\":5,"
      "\"rate_per_sec\":1250.000,\"windows\":[0,0,2,3]}},"
      "\"histograms\":{\"serve.latency_micros\":{\"count\":2,"
      "\"in_windows\":2,\"mean_micros\":100.000,\"p50_micros\":96.000,"
      "\"p95_micros\":124.800,\"p99_micros\":127.360}}}}");
  // Rendering twice at the same instant is byte-identical.
  EXPECT_EQ(reg.RenderJson(), reg.RenderJson());
}

TEST(TelemetryRegistryTest, CumulativeHalfMatchesMetricsRegistryAlone) {
  // The splice keeps the cumulative half byte-identical to what a plain
  // MetricsRegistry would print for the same recordings.
  TelemetryRegistry reg;
  reg.GetCounter("a.b")->Add(7);
  reg.GetHistogram("c.d")->Record(50);
  MetricsRegistry plain;
  plain.GetCounter("a.b")->Add(7);
  plain.GetHistogram("c.d")->Record(50);
  const std::string spliced = reg.RenderJson();
  const std::string alone = plain.RenderJson();
  ASSERT_GT(alone.size(), 1u);
  EXPECT_EQ(spliced.substr(0, alone.size() - 1),
            alone.substr(0, alone.size() - 1));
  EXPECT_EQ(spliced.substr(alone.size() - 1, 12), ",\"windowed\":");
}

// ---------------------------------------------------------------------------
// Concurrency: relaxed bumps + mutex rotation must lose nothing from the
// cumulative side and stay TSan-clean while the clock advances under the
// writers' feet. On the ci.sh TSan gate.

class ObsConcurrencyTest : public ::testing::TestWithParam<size_t> {};

TEST_P(ObsConcurrencyTest, ConcurrentWritersLoseNothingCumulative) {
  const size_t threads = GetParam();
  ManualClock clock;
  WindowOptions w;
  w.window_micros = 50;
  w.num_windows = 4;
  TelemetryRegistry reg(&clock, w);
  WindowedCounter* counter = reg.GetWindowedCounter("sweep.events");
  WindowedHistogram* hist = reg.GetWindowedHistogram("sweep.latency_micros");
  constexpr uint64_t kPerThread = 2000;
  ThreadPool pool(threads);
  pool.RunOnAll([&](size_t worker) {
    for (uint64_t i = 0; i < kPerThread; ++i) {
      counter->Add();
      hist->Record(static_cast<double>(worker * 10 + i % 7));
      if (worker == 0 && i % 64 == 0) {
        // One writer doubles as the clock: rotation races real traffic.
        clock.AdvanceMicros(25);
      }
      if (i % 128 == 0) {
        // Readers race the writers; values are approximate, access must
        // be clean.
        (void)counter->TotalInWindows();
        (void)hist->PercentileMicros(0.99);
        (void)reg.RenderJson();
      }
    }
  });
  // The cumulative side is exact no matter how rotation raced; the
  // windowed side never exceeds it.
  EXPECT_EQ(counter->total(), threads * kPerThread);
  EXPECT_EQ(hist->count(), threads * kPerThread);
  EXPECT_LE(counter->TotalInWindows(), counter->total());
  EXPECT_LE(hist->CountInWindows(), hist->count());
}

INSTANTIATE_TEST_SUITE_P(Sweep, ObsConcurrencyTest,
                         ::testing::Values(2, 4, 8));

// ---------------------------------------------------------------------------
// ServingEngine::Statusz under a ManualClock: the full document golden.

TEST(ServingStatuszTest, FreshServerGoldenBytes) {
  relational::DblpOptions opts;
  opts.num_authors = 20;
  opts.num_papers = 40;
  opts.num_conferences = 4;
  const relational::DblpDatabase dblp = MakeDblpDatabase(opts);
  engine::KeywordSearchEngine engine(*dblp.db);

  ManualClock clock;
  serve::ServeOptions so;
  so.num_workers = 0;  // nothing executes: the document is exact
  so.queue_capacity = 8;
  so.cache_capacity = 4;
  so.cache_shards = 2;
  so.tuple_cache_capacity = 0;
  so.slow_query_log_capacity = 4;
  so.clock = &clock;
  serve::ServingEngine server(&engine, /*xml=*/nullptr, so);

  const std::string expected =
      "{\"uptime_micros\":0,"
      "\"queue\":{\"depth\":0,\"capacity\":8,\"workers\":0,\"inflight\":0},"
      "\"requests\":{\"submitted\":0,\"completed\":0,\"ok\":0,"
      "\"rejected\":0,\"deadline_exceeded\":0,\"errors\":0,"
      "\"rejection_rate\":0.000,\"deadline_rate\":0.000,"
      "\"recent\":{\"submitted\":0,\"completed\":0,\"qps\":0.000,"
      "\"rejection_rate\":0.000,\"deadline_rate\":0.000}},"
      "\"latency\":{\"count\":0,\"mean_micros\":0.000,"
      "\"p50_micros\":0.000,\"p95_micros\":0.000,\"p99_micros\":0.000,"
      "\"recent\":{\"count\":0,\"p50_micros\":0.000,\"p99_micros\":0.000}},"
      "\"result_cache\":{\"capacity\":4,\"size\":0,\"hits\":0,"
      "\"misses\":0,\"hit_rate\":0.000,\"insertions\":0,\"evictions\":0,"
      "\"recent_hit_rate\":0.000,"
      "\"shards\":[{\"capacity\":2,\"size\":0,\"hits\":0,\"misses\":0,"
      "\"hit_rate\":0.000},"
      "{\"capacity\":2,\"size\":0,\"hits\":0,\"misses\":0,"
      "\"hit_rate\":0.000}]},"
      "\"tuple_cache\":{\"configured\":false},"
      "\"epochs\":{\"published\":0,\"last_write\":0,\"lag\":0,"
      "\"writes_notified\":0,\"tuple_entries_invalidated\":0},"
      "\"standing_queries\":0,"
      "\"slow_queries\":{\"capacity\":4,\"entries\":0,"
      "\"threshold_micros\":0,\"sampled\":0,\"deadline_exceeded\":0,"
      "\"max_latency_micros\":0.000,\"last_sequence\":0}}";
  EXPECT_EQ(server.Statusz(), expected);
  // The document is a pure function of state + clock: advancing time
  // moves only the uptime field.
  clock.AdvanceMicros(1234);
  std::string aged = expected;
  const std::string from = "\"uptime_micros\":0,";
  const std::string to = "\"uptime_micros\":1234,";
  aged.replace(aged.find(from), from.size(), to);
  EXPECT_EQ(server.Statusz(), aged);
}

TEST(ServingStatuszTest, TracksTrafficAndWindowedRates) {
  relational::DblpOptions opts;
  opts.num_authors = 20;
  opts.num_papers = 40;
  opts.num_conferences = 4;
  const relational::DblpDatabase dblp = MakeDblpDatabase(opts);
  engine::KeywordSearchEngine engine(*dblp.db);

  ManualClock clock;
  serve::ServeOptions so;
  so.num_workers = 1;
  so.clock = &clock;
  serve::ServingEngine server(&engine, /*xml=*/nullptr, so);
  serve::QueryRequest req;
  req.query = "keyword search";
  (void)server.Query(req);
  (void)server.Query(req);  // result-cache hit

  const std::string doc = server.Statusz();
  EXPECT_NE(doc.find("\"submitted\":2"), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"completed\":2"), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"hits\":1"), std::string::npos) << doc;
  // The windowed side saw the same two queries (the clock never moved,
  // so they are all in the current window).
  EXPECT_NE(doc.find("\"recent\":{\"submitted\":2,\"completed\":2"),
            std::string::npos)
      << doc;
  EXPECT_NE(doc.find("\"recent_hit_rate\":0.500"), std::string::npos) << doc;

  // Windowed rates decay once the traffic ages out of the ring; the
  // cumulative side keeps the totals.
  clock.AdvanceMicros((so.windows.num_windows + 1) * so.windows.window_micros);
  const std::string later = server.Statusz();
  EXPECT_NE(later.find("\"recent\":{\"submitted\":0,\"completed\":0"),
            std::string::npos)
      << later;
  EXPECT_NE(later.find("\"submitted\":2"), std::string::npos) << later;
}

TEST(ServingStatuszTest, WindowedMetricsOffRendersZerosAndStillServes) {
  relational::DblpOptions opts;
  opts.num_authors = 20;
  opts.num_papers = 40;
  opts.num_conferences = 4;
  const relational::DblpDatabase dblp = MakeDblpDatabase(opts);
  engine::KeywordSearchEngine engine(*dblp.db);

  ManualClock clock;
  serve::ServeOptions so;
  so.num_workers = 1;
  so.clock = &clock;
  so.windowed_metrics = false;
  serve::ServingEngine server(&engine, /*xml=*/nullptr, so);
  serve::QueryRequest req;
  req.query = "keyword search";
  const serve::QueryOutcome out = server.Query(req);
  EXPECT_TRUE(out.status.ok());
  const std::string doc = server.Statusz();
  // Cumulative counters still move; every `recent` reading is zero.
  EXPECT_NE(doc.find("\"submitted\":1"), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"recent\":{\"submitted\":0,\"completed\":0"),
            std::string::npos)
      << doc;
  // And no windowed instruments were ever created.
  EXPECT_NE(server.telemetry().RenderJson().find(
                "\"windowed\":{\"window_micros\":1000000,\"num_windows\":8,"
                "\"counters\":{},\"histograms\":{}}"),
            std::string::npos);
}

}  // namespace
}  // namespace kws::obs

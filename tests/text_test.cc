#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/random.h"
#include "text/edit_distance.h"
#include "text/inverted_index.h"
#include "text/tokenizer.h"
#include "text/trie.h"

namespace kws::text {
namespace {

TEST(TokenizerTest, SplitsAndLowercases) {
  Tokenizer t;
  EXPECT_EQ(t.Tokenize("Keyword Search, on Databases!"),
            (std::vector<std::string>{"keyword", "search", "databases"}));
}

TEST(TokenizerTest, DropsStopwords) {
  Tokenizer t;
  EXPECT_EQ(t.Tokenize("the state of the art"),
            (std::vector<std::string>{"state", "art"}));
}

TEST(TokenizerTest, KeepsStopwordsWhenDisabled) {
  TokenizerOptions opts;
  opts.drop_stopwords = false;
  Tokenizer t(opts);
  EXPECT_EQ(t.Tokenize("of the"), (std::vector<std::string>{"of", "the"}));
}

TEST(TokenizerTest, AlphanumericTokensSurvive) {
  Tokenizer t;
  EXPECT_EQ(t.Tokenize("icde2011 c++ x86"),
            (std::vector<std::string>{"icde2011", "c", "x86"}));
}

TEST(TokenizerTest, EmptyInput) {
  Tokenizer t;
  EXPECT_TRUE(t.Tokenize("").empty());
  EXPECT_TRUE(t.Tokenize("  ,,;; ").empty());
}

TEST(TokenizerTest, MinTokenLength) {
  TokenizerOptions opts;
  opts.min_token_length = 3;
  Tokenizer t(opts);
  EXPECT_EQ(t.Tokenize("db is no xml yes"),
            (std::vector<std::string>{"xml", "yes"}));
}

TEST(EditDistanceTest, Basics) {
  EXPECT_EQ(EditDistance("", ""), 0u);
  EXPECT_EQ(EditDistance("abc", "abc"), 0u);
  EXPECT_EQ(EditDistance("abc", ""), 3u);
  EXPECT_EQ(EditDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(EditDistance("datbase", "database"), 1u);
}

TEST(EditDistanceTest, Symmetric) {
  EXPECT_EQ(EditDistance("conf", "conference"),
            EditDistance("conference", "conf"));
}

TEST(BoundedEditDistanceTest, WithinBound) {
  EXPECT_EQ(BoundedEditDistance("datbase", "database", 2), 1u);
  EXPECT_EQ(BoundedEditDistance("abc", "abc", 0), 0u);
}

TEST(BoundedEditDistanceTest, ExceedsBoundReturnsSentinel) {
  EXPECT_EQ(BoundedEditDistance("aaaa", "bbbb", 2), 3u);
  EXPECT_EQ(BoundedEditDistance("short", "muchlongerword", 3), 4u);
}

TEST(BoundedEditDistanceTest, AgreesWithExactWhenWithinBound) {
  const std::vector<std::string> words = {"ipad",   "ipod",  "apple", "appl",
                                          "widom",  "xml",   "query", "quary",
                                          "sigmod", "icde"};
  for (const auto& a : words) {
    for (const auto& b : words) {
      size_t exact = EditDistance(a, b);
      for (size_t bound = 0; bound <= 4; ++bound) {
        size_t got = BoundedEditDistance(a, b, bound);
        if (exact <= bound) {
          EXPECT_EQ(got, exact) << a << " vs " << b << " bound " << bound;
        } else {
          EXPECT_EQ(got, bound + 1) << a << " vs " << b << " bound " << bound;
        }
      }
    }
  }
}

TEST(DamerauTest, TranspositionCostsOne) {
  EXPECT_EQ(DamerauEditDistance("ab", "ba"), 1u);
  EXPECT_EQ(EditDistance("ab", "ba"), 2u);
  EXPECT_EQ(DamerauEditDistance("datbaase", "database"), 1u);
}

TEST(DamerauTest, NeverExceedsLevenshtein) {
  const std::vector<std::string> words = {"ipad", "pida", "conference",
                                          "confrence", "banks", "bakns"};
  for (const auto& a : words) {
    for (const auto& b : words) {
      EXPECT_LE(DamerauEditDistance(a, b), EditDistance(a, b));
    }
  }
}

class TrieTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (const char* w : {"sig", "sigact", "sigmod", "sigweb", "sir",
                          "srivastava", "database", "data"}) {
      trie_.Insert(w);
    }
    trie_.Freeze();
  }
  Trie trie_;
};

TEST_F(TrieTest, FindExactWords) {
  EXPECT_TRUE(trie_.Find("sigmod").has_value());
  EXPECT_TRUE(trie_.Find("data").has_value());
  EXPECT_FALSE(trie_.Find("sigm").has_value());
  EXPECT_FALSE(trie_.Find("").has_value());
}

TEST_F(TrieTest, PrefixRangeCoversDescendants) {
  WordRange r = trie_.PrefixRange("sig");
  EXPECT_EQ(r.size(), 4u);  // sig, sigact, sigmod, sigweb
  for (uint32_t id = r.lo; id < r.hi; ++id) {
    EXPECT_TRUE(trie_.Word(id).starts_with("sig"));
  }
}

TEST_F(TrieTest, PrefixRangeEmptyForUnknown) {
  EXPECT_TRUE(trie_.PrefixRange("xyz").empty());
  EXPECT_TRUE(trie_.PrefixRange("sigmodx").empty());
}

TEST_F(TrieTest, EmptyPrefixCoversAll) {
  EXPECT_EQ(trie_.PrefixRange("").size(), trie_.size());
}

TEST_F(TrieTest, CompleteIsLexicographic) {
  auto out = trie_.Complete("sig", 10);
  EXPECT_EQ(out, (std::vector<std::string>{"sig", "sigact", "sigmod",
                                           "sigweb"}));
  EXPECT_EQ(trie_.Complete("sig", 2).size(), 2u);
}

TEST_F(TrieTest, DuplicatesCollapsed) {
  Trie t;
  t.Insert("a");
  t.Insert("a");
  t.Freeze();
  EXPECT_EQ(t.size(), 1u);
}

TEST_F(TrieTest, FuzzyExactPrefixIncluded) {
  auto ranges = trie_.FuzzyPrefixRanges("sig", 1);
  size_t total = 0;
  bool covers_sigmod = false;
  auto sigmod_id = trie_.Find("sigmod");
  for (const WordRange& r : ranges) {
    total += r.size();
    if (*sigmod_id >= r.lo && *sigmod_id < r.hi) covers_sigmod = true;
  }
  EXPECT_TRUE(covers_sigmod);
  EXPECT_GE(total, 4u);
}

TEST_F(TrieTest, FuzzyToleratesOneTypo) {
  // "sib" is one substitution away from prefix "sig".
  auto ranges = trie_.FuzzyPrefixRanges("sib", 1);
  auto sigmod_id = trie_.Find("sigmod");
  bool covers = false;
  for (const WordRange& r : ranges) {
    covers |= (*sigmod_id >= r.lo && *sigmod_id < r.hi);
  }
  EXPECT_TRUE(covers);
}

TEST_F(TrieTest, FuzzyZeroEditsEqualsExact) {
  auto ranges = trie_.FuzzyPrefixRanges("sig", 0);
  ASSERT_EQ(ranges.size(), 1u);
  WordRange exact = trie_.PrefixRange("sig");
  EXPECT_EQ(ranges[0].lo, exact.lo);
  EXPECT_EQ(ranges[0].hi, exact.hi);
}

TEST_F(TrieTest, FuzzyRangesAreMergedAndSorted) {
  auto ranges = trie_.FuzzyPrefixRanges("s", 1);
  for (size_t i = 1; i < ranges.size(); ++i) {
    EXPECT_GT(ranges[i].lo, ranges[i - 1].hi);
  }
}

// Property: fuzzy prefix ranges with bound d cover exactly the words having
// some prefix within Levenshtein distance d of the query prefix.
class TrieFuzzyPropertyTest : public ::testing::TestWithParam<size_t> {};

TEST_P(TrieFuzzyPropertyTest, MatchesBruteForce) {
  const size_t max_edits = GetParam();
  kws::Rng rng(99);
  Trie trie;
  std::vector<std::string> words;
  const char alphabet[] = "abc";
  for (int i = 0; i < 200; ++i) {
    std::string w;
    size_t len = 1 + rng.Index(6);
    for (size_t j = 0; j < len; ++j) w.push_back(alphabet[rng.Index(3)]);
    words.push_back(w);
    trie.Insert(w);
  }
  trie.Freeze();
  std::sort(words.begin(), words.end());
  words.erase(std::unique(words.begin(), words.end()), words.end());

  for (const std::string prefix : {"ab", "ca", "bbb", "a"}) {
    auto ranges = trie.FuzzyPrefixRanges(prefix, max_edits);
    std::vector<bool> covered(words.size(), false);
    for (const WordRange& r : ranges) {
      for (uint32_t id = r.lo; id < r.hi; ++id) covered[id] = true;
    }
    for (size_t id = 0; id < words.size(); ++id) {
      bool expect = false;
      const std::string& w = words[id];
      for (size_t plen = 0; plen <= w.size() && !expect; ++plen) {
        expect = EditDistance(w.substr(0, plen), prefix) <= max_edits;
      }
      EXPECT_EQ(covered[id], expect)
          << "word " << w << " prefix " << prefix << " d " << max_edits;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, TrieFuzzyPropertyTest,
                         ::testing::Values(0, 1, 2));

class InvertedIndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    index_.AddDocument(0, "keyword search on relational databases");
    index_.AddDocument(1, "xml keyword search");
    index_.AddDocument(2, "cloud computing platforms");
    index_.AddDocument(3, "keyword keyword keyword spam");
  }
  InvertedIndex index_;
};

TEST_F(InvertedIndexTest, CountsDocsAndTerms) {
  EXPECT_EQ(index_.num_docs(), 4u);
  EXPECT_EQ(index_.DocFreq("keyword"), 3u);
  EXPECT_EQ(index_.DocFreq("cloud"), 1u);
  EXPECT_EQ(index_.DocFreq("nonexistent"), 0u);
}

TEST_F(InvertedIndexTest, PostingsTrackTermFrequency) {
  const auto& plist = index_.GetPostings("keyword");
  ASSERT_EQ(plist.size(), 3u);
  EXPECT_EQ(plist[0].doc, 0u);
  EXPECT_EQ(plist[2].doc, 3u);
  EXPECT_EQ(plist[2].tf, 3u);
}

TEST_F(InvertedIndexTest, IdfRareBeatsCommon) {
  EXPECT_GT(index_.Idf("cloud"), index_.Idf("keyword"));
  EXPECT_GT(index_.Idf("nonexistent"), index_.Idf("cloud"));
}

TEST_F(InvertedIndexTest, SearchRanksRelevantFirst) {
  auto res = index_.Search("xml keyword", 10);
  ASSERT_FALSE(res.empty());
  EXPECT_EQ(res[0].doc, 1u);  // contains both terms
}

TEST_F(InvertedIndexTest, ConjunctiveRequiresAllTerms) {
  auto res = index_.SearchConjunctive("keyword search", 10);
  std::vector<text::DocId> docs;
  for (const auto& r : res) docs.push_back(r.doc);
  std::sort(docs.begin(), docs.end());
  EXPECT_EQ(docs, (std::vector<text::DocId>{0, 1}));
}

TEST_F(InvertedIndexTest, ConjunctiveEmptyWhenNoDocHasAll) {
  EXPECT_TRUE(index_.SearchConjunctive("xml cloud", 10).empty());
}

TEST_F(InvertedIndexTest, SearchRespectsK) {
  auto res = index_.Search("keyword", 2);
  EXPECT_EQ(res.size(), 2u);
}

TEST_F(InvertedIndexTest, OutOfOrderAddKeepsPostingsSorted) {
  InvertedIndex idx;
  idx.AddDocument(5, "zeta");
  idx.AddDocument(2, "zeta");
  idx.AddDocument(9, "zeta");
  idx.AddDocument(2, "zeta");
  const auto& plist = idx.GetPostings("zeta");
  ASSERT_EQ(plist.size(), 3u);
  EXPECT_EQ(plist[0].doc, 2u);
  EXPECT_EQ(plist[0].tf, 2u);
  EXPECT_EQ(plist[1].doc, 5u);
  EXPECT_EQ(plist[2].doc, 9u);
}

TEST_F(InvertedIndexTest, VocabularySorted) {
  auto vocab = index_.Vocabulary();
  EXPECT_TRUE(std::is_sorted(vocab.begin(), vocab.end()));
  EXPECT_TRUE(std::binary_search(vocab.begin(), vocab.end(), "keyword"));
}

TEST_F(InvertedIndexTest, ScoreZeroForIrrelevantDoc) {
  EXPECT_EQ(index_.Score(2, {"keyword"}), 0.0);
  EXPECT_GT(index_.Score(0, {"keyword"}), 0.0);
}

}  // namespace
}  // namespace kws::text

// Failure-injection and fuzz-style property tests: feed malformed,
// random and adversarial inputs to the parsing and query layers and
// check the library's contracts (graceful Status errors, no crashes,
// agreement with brute-force references on random instances).

#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/clean/cleaner.h"
#include "core/cn/execute.h"
#include "core/cn/search.h"
#include "core/cn/semijoin.h"
#include "graph/hub_index.h"
#include "graph/shortest_path.h"
#include "relational/database.h"
#include "relational/dblp.h"
#include "text/tokenizer.h"
#include "xml/parser.h"

namespace kws {
namespace {

// ------------------------------------------------------------ XML parser

class ParserFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParserFuzzTest, RandomBytesNeverCrash) {
  Rng rng(GetParam());
  const char alphabet[] = "<>/ab c\"=!-\n\t";
  for (int trial = 0; trial < 300; ++trial) {
    std::string input;
    const size_t len = rng.Index(60);
    for (size_t i = 0; i < len; ++i) {
      input.push_back(alphabet[rng.Index(sizeof(alphabet) - 1)]);
    }
    // Must either parse or return an error; never crash or hang.
    Result<xml::XmlTree> r = xml::ParseXml(input);
    if (r.ok()) {
      EXPECT_GT(r.value().size(), 0u);
    } else {
      EXPECT_FALSE(r.status().message().empty());
    }
  }
}

TEST_P(ParserFuzzTest, MutatedValidDocuments) {
  Rng rng(GetParam() + 1000);
  const std::string valid =
      "<conf><paper><title>xml search</title><author>widom</author>"
      "</paper><paper><title>mining</title></paper></conf>";
  for (int trial = 0; trial < 300; ++trial) {
    std::string input = valid;
    // 1-3 random single-character mutations.
    const size_t edits = 1 + rng.Index(3);
    for (size_t e = 0; e < edits; ++e) {
      const size_t pos = rng.Index(input.size());
      switch (rng.Index(3)) {
        case 0:
          input[pos] = static_cast<char>('a' + rng.Index(26));
          break;
        case 1:
          input.erase(pos, 1);
          break;
        default:
          input.insert(pos, 1, '<');
      }
    }
    Result<xml::XmlTree> r = xml::ParseXml(input);
    if (r.ok()) {
      // Whatever parsed must serialize and re-parse to the same shape.
      const std::string round = r.value().ToXmlString(0);
      Result<xml::XmlTree> again = xml::ParseXml(round);
      ASSERT_TRUE(again.ok()) << round;
      EXPECT_EQ(again.value().size(), r.value().size());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ParserFuzzTest, ::testing::Values(1, 2, 3));

// ------------------------------------------------ CN executor vs reference

/// Brute-force reference: enumerate ALL row combinations of a CN and keep
/// those whose every edge joins and every node matches its tuple set.
std::vector<std::vector<relational::RowId>> ReferenceExecute(
    const relational::Database& db, const cn::CandidateNetwork& network,
    const cn::TupleSets& ts) {
  std::vector<std::vector<relational::RowId>> out;
  std::vector<relational::RowId> pick(network.nodes.size(), 0);
  auto joins = [&](const cn::CnEdge& e) {
    const relational::ForeignKey& fk = db.foreign_keys()[e.fk];
    const relational::TupleId ref_side{
        e.forward ? network.nodes[e.from].table : network.nodes[e.to].table,
        e.forward ? pick[e.from] : pick[e.to]};
    const relational::RowId other =
        e.forward ? pick[e.to] : pick[e.from];
    const relational::Value& v = db.table(fk.table).cell(ref_side.row,
                                                         fk.column);
    return v == db.table(fk.ref_table).cell(other, fk.ref_column);
  };
  auto rec = [&](auto&& self, size_t i) -> void {
    if (i == network.nodes.size()) {
      for (const cn::CnEdge& e : network.edges) {
        if (!joins(e)) return;
      }
      out.push_back(pick);
      return;
    }
    const auto& node = network.nodes[i];
    for (relational::RowId r = 0; r < db.table(node.table).num_rows(); ++r) {
      if (!ts.Matches(node.table, r, node.mask)) continue;
      pick[i] = r;
      self(self, i + 1);
    }
  };
  rec(rec, 0);
  return out;
}

class CnExecutorOracleTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CnExecutorOracleTest, MatchesBruteForceJoin) {
  relational::DblpOptions opts;
  opts.seed = GetParam();
  opts.num_authors = 12;
  opts.num_papers = 18;
  opts.num_conferences = 4;
  relational::DblpDatabase dblp = MakeDblpDatabase(opts);
  const std::string query = "keyword search";
  const auto keywords = text::Tokenizer().Tokenize(query);
  cn::TupleSets ts(*dblp.db, keywords);
  auto cns = cn::EnumerateCandidateNetworks(*dblp.db, ts.table_masks(),
                                            ts.full_mask(), {.max_size = 4});
  for (const auto& network : cns) {
    auto expected = ReferenceExecute(*dblp.db, network, ts);
    auto got = ExecuteCn(*dblp.db, network, ts);
    std::vector<std::vector<relational::RowId>> got_rows;
    for (const auto& jt : got) got_rows.push_back(jt.rows);
    std::sort(expected.begin(), expected.end());
    std::sort(got_rows.begin(), got_rows.end());
    EXPECT_EQ(got_rows, expected) << "seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, CnExecutorOracleTest,
                         ::testing::Values(11, 22, 33, 44));

// ---------------------------------------------------------- query cleaner

TEST(CleanerFuzzTest, ArbitraryQueriesNeverCrash) {
  text::InvertedIndex index;
  index.AddDocument(0, "alpha beta gamma");
  index.AddDocument(1, "delta epsilon");
  clean::QueryCleaner cleaner(index);
  Rng rng(77);
  const char alphabet[] = "abcdefgh  123!@-";
  for (int trial = 0; trial < 200; ++trial) {
    std::string q;
    const size_t len = rng.Index(30);
    for (size_t i = 0; i < len; ++i) {
      q.push_back(alphabet[rng.Index(sizeof(alphabet) - 1)]);
    }
    clean::CleanedQuery cleaned = cleaner.Clean(q);
    // Tokens in == tokens out (cleaning never drops or invents tokens).
    EXPECT_EQ(cleaned.tokens.size(),
              index.tokenizer().Tokenize(q).size());
    // Segments tile the tokens exactly.
    size_t covered = 0;
    for (const auto& [start, len2] : cleaned.segments) {
      EXPECT_EQ(start, covered);
      covered += len2;
    }
    EXPECT_EQ(covered, cleaned.tokens.size());
  }
}

// ----------------------------------------------------------- empty inputs

TEST(EmptyDatabaseTest, SearchLayersDegradeGracefully) {
  relational::Database db;
  relational::TableSchema t;
  t.name = "empty";
  t.columns = {{"id", relational::ValueType::kInt, false},
               {"txt", relational::ValueType::kText, true}};
  t.primary_key = 0;
  db.CreateTable(t).value();
  db.BuildTextIndexes();
  cn::CnKeywordSearch search(db);
  EXPECT_TRUE(search.Search("anything", {.k = 5}, nullptr).empty());
  EXPECT_TRUE(search.Search("", {.k = 5}, nullptr).empty());
}

}  // namespace
}  // namespace kws

namespace kws {
namespace {

// -------------------------------------------- inverted index vs reference

/// Reference scorer: recompute TF-IDF from raw documents.
class IndexOracleTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IndexOracleTest, SearchMatchesBruteForce) {
  Rng rng(GetParam());
  const std::vector<std::string> words = {"ab", "cd", "ef", "gh", "ij"};
  std::vector<std::string> docs;
  text::InvertedIndex index;
  for (int d = 0; d < 40; ++d) {
    std::string content;
    const size_t len = 1 + rng.Index(8);
    for (size_t i = 0; i < len; ++i) {
      if (i > 0) content += ' ';
      content += words[rng.Index(words.size())];
    }
    docs.push_back(content);
    index.AddDocument(static_cast<text::DocId>(d), content);
  }
  const std::string query = "ab cd";
  const auto terms = index.tokenizer().Tokenize(query);
  // Brute force: every doc containing every term, scored via the public
  // Score accessor; compare the conjunctive search's membership and
  // score ordering.
  std::vector<std::pair<double, text::DocId>> expected;
  for (text::DocId d = 0; d < docs.size(); ++d) {
    bool all = true;
    for (const std::string& t : terms) {
      all &= docs[d].find(t) != std::string::npos;
    }
    if (all) expected.emplace_back(index.Score(d, terms), d);
  }
  auto got = index.SearchConjunctive(query, docs.size());
  ASSERT_EQ(got.size(), expected.size());
  std::sort(expected.begin(), expected.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got[i].score, expected[i].first, 1e-12) << "rank " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, IndexOracleTest,
                         ::testing::Values(1, 2, 3, 4));

// ------------------------------------------------ capped hub index bound

TEST(HubIndexCappedTest, NeverUnderestimates) {
  Rng rng(21);
  graph::DataGraph g;
  for (int i = 0; i < 50; ++i) g.AddNode("n", "");
  for (int i = 1; i < 50; ++i) {
    g.AddUndirectedEdge(static_cast<graph::NodeId>(i),
                        static_cast<graph::NodeId>(rng.Index(i)),
                        1.0 + rng.Index(3));
  }
  graph::HubDistanceIndex::Options opts;
  opts.num_hubs = 4;
  opts.max_radius = 3.0;  // capped: some local rows are truncated
  graph::HubDistanceIndex index(g, opts);
  for (int trial = 0; trial < 50; ++trial) {
    const graph::NodeId x = static_cast<graph::NodeId>(rng.Index(50));
    const graph::NodeId y = static_cast<graph::NodeId>(rng.Index(50));
    const double exact = Dijkstra(g, {x}).dist[y];
    const double est = index.Distance(x, y);
    // Every certificate the index returns is a real path.
    EXPECT_GE(est + 1e-9, exact) << x << "->" << y;
  }
}

// --------------------------------------------- semijoin full-reducer law

TEST(SemiJoinExactnessTest, ReducedSetsAreExactlyParticipants) {
  relational::DblpOptions opts;
  opts.num_authors = 25;
  opts.num_papers = 50;
  relational::DblpDatabase dblp = MakeDblpDatabase(opts);
  cn::TupleSets ts(*dblp.db, {"keyword", "search"});
  auto cns = cn::EnumerateCandidateNetworks(*dblp.db, ts.table_masks(),
                                            ts.full_mask(), {.max_size = 4});
  for (const auto& network : cns) {
    auto sets = SemiJoinReduce(*dblp.db, network, ts);
    // Participants from actual execution.
    std::vector<std::set<relational::RowId>> participants(
        network.nodes.size());
    for (const auto& jt : ExecuteCn(*dblp.db, network, ts)) {
      for (size_t i = 0; i < jt.rows.size(); ++i) {
        participants[i].insert(jt.rows[i]);
      }
    }
    for (size_t i = 0; i < sets.size(); ++i) {
      const std::set<relational::RowId> reduced(sets[i].begin(),
                                                sets[i].end());
      EXPECT_EQ(reduced, participants[i]) << "node " << i;
    }
  }
}

}  // namespace
}  // namespace kws

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <string>
#include <vector>

#include "core/infer/precis.h"
#include "core/infer/xpath_gen.h"
#include "core/lca/interconnection.h"
#include "core/lca/slca.h"
#include "core/lca/xrank.h"
#include "core/lca/xreal.h"
#include "relational/dblp.h"
#include "xml/bibgen.h"
#include "xml/tree.h"

namespace kws {
namespace {

using xml::kNoXmlNode;
using xml::XmlNodeId;
using xml::XmlTree;

/// conf with two papers, each with authors — the XSEarch running example.
struct InterTree {
  XmlTree t;
  XmlNodeId conf, p1, t1, a11, a12, p2, t2, a21;

  InterTree() {
    conf = t.AddElement(kNoXmlNode, "conf");
    p1 = t.AddElement(conf, "paper");
    t1 = t.AddElement(p1, "title");
    t.AppendText(t1, "xml search");
    a11 = t.AddElement(p1, "author");
    t.AppendText(a11, "widom");
    a12 = t.AddElement(p1, "author");
    t.AppendText(a12, "chen");
    p2 = t.AddElement(conf, "paper");
    t2 = t.AddElement(p2, "title");
    t.AppendText(t2, "graph mining");
    a21 = t.AddElement(p2, "author");
    t.AppendText(a21, "smith");
    t.BuildKeywordIndex();
  }
};

TEST(InterconnectionTest, SamePaperAuthorsConnected) {
  InterTree it;
  // author-paper-author: interior has one <paper> only.
  EXPECT_TRUE(lca::Interconnected(it.t, it.a11, it.a12));
  EXPECT_TRUE(lca::Interconnected(it.t, it.a11, it.t1));
}

TEST(InterconnectionTest, CrossPaperAuthorsNotConnected) {
  InterTree it;
  // author-paper-conf-paper-author: two <paper> interior nodes.
  EXPECT_FALSE(lca::Interconnected(it.t, it.a11, it.a21));
  EXPECT_FALSE(lca::Interconnected(it.t, it.t1, it.a21));
}

TEST(InterconnectionTest, SelfAndAncestor) {
  InterTree it;
  EXPECT_TRUE(lca::Interconnected(it.t, it.a11, it.a11));
  EXPECT_TRUE(lca::Interconnected(it.t, it.p1, it.a11));
}

TEST(InterconnectionTest, AllPairsSearchFindsSamePaperPair) {
  InterTree it;
  auto lists = lca::MatchLists(it.t, {"xml", "widom"});
  ASSERT_FALSE(lists.empty());
  auto answers = lca::AllPairsInterconnectedSearch(it.t, lists, 10);
  ASSERT_FALSE(answers.empty());
  for (const auto& a : answers) {
    EXPECT_EQ(a.root, it.p1);  // the same-paper combination only
    EXPECT_EQ(a.matches.size(), 2u);
  }
  // Cross-paper combination {graph, widom} is rejected.
  auto cross = lca::AllPairsInterconnectedSearch(
      it.t, lca::MatchLists(it.t, {"graph", "widom"}), 10);
  EXPECT_TRUE(cross.empty());
}

TEST(ElemRankTest, SumsToOneRootPopular) {
  xml::BibDocument doc = xml::MakeBibDocument({.seed = 2, .num_venues = 4});
  auto rank = lca::ElemRank(doc.tree);
  EXPECT_NEAR(std::accumulate(rank.begin(), rank.end(), 0.0), 1.0, 1e-6);
  // The root aggregates upward flow from its subtrees: well above the
  // uniform share.
  EXPECT_GT(rank[0], 1.5 / static_cast<double>(doc.tree.size()));
}

TEST(XRankResultRankingTest, DeeperMatchesDecay) {
  InterTree it;
  auto rank = lca::ElemRank(it.t);
  // Rank the two papers for query {widom}: p1 contains it, p2 does not.
  auto scored = lca::RankXmlResults(it.t, {it.p1, it.p2}, {"widom"}, rank);
  ASSERT_EQ(scored.size(), 2u);
  EXPECT_EQ(scored[0].root, it.p1);
  EXPECT_GT(scored[0].score, 0.0);
  EXPECT_EQ(scored[1].score, 0.0);
  // Decay: scoring the author directly beats scoring its paper (one hop
  // farther from the match).
  auto direct = lca::RankXmlResults(it.t, {it.a11, it.p1}, {"widom"}, rank);
  EXPECT_EQ(direct[0].root, it.a11);
}

TEST(PrecisTest, Slide52WeightExample) {
  // person -> review -> conference with weights 0.8 * 0.9 * 0.5: the
  // sponsor attribute's path weight is 0.36 < 0.4 -> excluded, exactly
  // the slide's example.
  relational::Database db;
  relational::TableSchema person;
  person.name = "person";
  person.columns = {{"pid", relational::ValueType::kInt, false},
                    {"name", relational::ValueType::kText, true}};
  person.primary_key = 0;
  db.CreateTable(person).value();
  relational::TableSchema review;
  review.name = "review";
  review.columns = {{"rid", relational::ValueType::kInt, false},
                    {"pid", relational::ValueType::kInt, false},
                    {"cid", relational::ValueType::kInt, false}};
  review.primary_key = 0;
  db.CreateTable(review).value();
  relational::TableSchema conf;
  conf.name = "conference";
  conf.columns = {{"cid", relational::ValueType::kInt, false},
                  {"cname", relational::ValueType::kText, true},
                  {"sponsor", relational::ValueType::kText, true}};
  conf.primary_key = 0;
  db.CreateTable(conf).value();
  ASSERT_TRUE(db.AddForeignKey("review", "pid", "person", "pid").ok());
  ASSERT_TRUE(db.AddForeignKey("review", "cid", "conference", "cid").ok());
  db.table(0).Append({relational::Value::Int(1),
                      relational::Value::Text("alice")}).value();
  db.table(2).Append({relational::Value::Int(7),
                      relational::Value::Text("icde"),
                      relational::Value::Text("acme")}).value();
  db.table(1).Append({relational::Value::Int(5), relational::Value::Int(1),
                      relational::Value::Int(7)}).value();
  db.BuildTextIndexes();

  infer::SchemaWeights weights;
  // person -> review (backward through fk0): 0.8; review -> conference
  // (forward through fk1): 0.9. A conference attribute then multiplies an
  // implied per-attribute factor; the slide folds 0.5 into the last hop.
  weights.Set(0, false, 0.8);
  weights.Set(1, true, 0.9 * 0.5);
  infer::PrecisOptions opts;
  opts.min_weight = 0.4;
  opts.max_attributes = 10;
  auto schema = PrecisAnswerSchema(db, 0, weights, opts);
  // person.name qualifies (weight 1); review attributes qualify (0.8);
  // conference attributes (0.36) do not.
  bool has_person_name = false, has_conf_attr = false;
  for (const auto& a : schema) {
    if (a.table == 0 && a.column == 1) has_person_name = true;
    if (a.table == 2) has_conf_attr = true;
  }
  EXPECT_TRUE(has_person_name);
  EXPECT_FALSE(has_conf_attr);
  // Raising the threshold tolerance admits the conference attributes.
  opts.min_weight = 0.3;
  auto wide = PrecisAnswerSchema(db, 0, weights, opts);
  bool conf_now = false;
  for (const auto& a : wide) conf_now |= (a.table == 2);
  EXPECT_TRUE(conf_now);
  // Expansion renders actual values through the path.
  const std::string rendered = ExpandPrecisAnswer(db, 0, 0, wide);
  EXPECT_NE(rendered.find("person.name=alice"), std::string::npos);
  EXPECT_NE(rendered.find("conference.cname=icde"), std::string::npos);
}

TEST(PrecisTest, MaxAttributesBound) {
  relational::DblpDatabase dblp = relational::MakeDblpDatabase();
  auto weights = infer::SchemaWeights::FromParticipation(*dblp.db);
  infer::PrecisOptions opts;
  opts.max_attributes = 3;
  opts.min_weight = 0.0;
  auto schema = PrecisAnswerSchema(*dblp.db, dblp.paper, weights, opts);
  EXPECT_LE(schema.size(), 3u);
  // Weights nonincreasing.
  for (size_t i = 1; i < schema.size(); ++i) {
    EXPECT_GE(schema[i - 1].weight, schema[i].weight);
  }
}

TEST(XPathGenTest, FindsTitleAuthorNesting) {
  InterTree it;
  auto queries = infer::GenerateXPathQueries(it.t, {"xml", "widom"});
  ASSERT_FALSE(queries.empty());
  // The only non-empty interpretation targets paper with title/author
  // predicates.
  const auto& q = queries[0];
  EXPECT_EQ(q.target_path, "/conf/paper");
  ASSERT_EQ(q.results.size(), 1u);
  EXPECT_EQ(q.results[0], it.p1);
  const std::string rendered = q.ToString({"xml", "widom"});
  EXPECT_NE(rendered.find("title ~ 'xml'"), std::string::npos);
  EXPECT_NE(rendered.find("author ~ 'widom'"), std::string::npos);
}

TEST(XPathGenTest, QueriesNonEmptyAndSorted) {
  xml::BibDocument doc = xml::MakeBibDocument({.seed = 13});
  auto queries = infer::GenerateXPathQueries(
      doc.tree, {doc.vocabulary[0], doc.vocabulary[1]});
  for (const auto& q : queries) {
    EXPECT_FALSE(q.results.empty());
    for (XmlNodeId n : q.results) {
      EXPECT_EQ(doc.tree.LabelPath(n), q.target_path);
    }
  }
  for (size_t i = 1; i < queries.size(); ++i) {
    EXPECT_GE(queries[i - 1].probability, queries[i].probability);
  }
}

TEST(XPathGenTest, UnmatchedKeywordYieldsNothing) {
  InterTree it;
  EXPECT_TRUE(infer::GenerateXPathQueries(it.t, {"xml", "zzz"}).empty());
}

}  // namespace
}  // namespace kws

namespace kws {
namespace {

TEST(ReturnTypeSketchTest, MatchesOnTheFlyInference) {
  xml::BibDocument doc = xml::MakeBibDocument({.seed = 19});
  lca::ReturnTypeSketch sketch(doc.tree);
  EXPECT_GT(sketch.entries(), 0u);
  for (const auto& q : std::vector<std::vector<std::string>>{
           {doc.vocabulary[0]},
           {doc.vocabulary[0], doc.vocabulary[1]},
           {doc.vocabulary[2], doc.vocabulary[5]}}) {
    auto live = lca::InferReturnTypes(doc.tree, q);
    auto sketched = sketch.Infer(q);
    ASSERT_EQ(live.size(), sketched.size());
    for (size_t i = 0; i < live.size(); ++i) {
      EXPECT_EQ(live[i].label_path, sketched[i].label_path) << "rank " << i;
      EXPECT_NEAR(live[i].score, sketched[i].score, 1e-9);
    }
  }
}

}  // namespace
}  // namespace kws

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "common/random.h"
#include "graph/blinks_index.h"
#include "graph/data_graph.h"
#include "graph/hub_index.h"
#include "graph/pagerank.h"
#include "graph/shortest_path.h"
#include "relational/dblp.h"

namespace kws::graph {
namespace {

/// Small line graph a -> b -> c with keyword text on the ends.
DataGraph LineGraph() {
  DataGraph g;
  g.AddNode("a", "alpha start");
  g.AddNode("b", "bridge");
  g.AddNode("c", "omega end");
  g.AddEdge(0, 1, 1.0, 1.0);
  g.AddEdge(1, 2, 1.0, 1.0);
  g.BuildKeywordIndex();
  return g;
}

TEST(DataGraphTest, NodesEdgesAndDegrees) {
  DataGraph g = LineGraph();
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 4u);  // two directed pairs
  EXPECT_EQ(g.OutDegree(1), 2u);
  EXPECT_EQ(g.InDegree(1), 2u);
  EXPECT_EQ(g.label(0), "a");
}

TEST(DataGraphTest, KeywordIndexMatchesText) {
  DataGraph g = LineGraph();
  EXPECT_EQ(g.MatchNodes("alpha"), (std::vector<NodeId>{0}));
  EXPECT_EQ(g.MatchNodes("omega"), (std::vector<NodeId>{2}));
  EXPECT_TRUE(g.MatchNodes("nothing").empty());
}

TEST(DataGraphTest, SuppressedBackwardEdge) {
  DataGraph g;
  g.AddNode("a", "");
  g.AddNode("b", "");
  g.AddEdge(0, 1, 1.0, /*back_weight=*/0);
  EXPECT_EQ(g.OutDegree(0), 1u);
  EXPECT_EQ(g.OutDegree(1), 0u);
  EXPECT_EQ(g.InDegree(1), 1u);
}

TEST(DijkstraTest, SingleSourceDistances) {
  DataGraph g = LineGraph();
  ShortestPaths sp = Dijkstra(g, {0});
  EXPECT_EQ(sp.dist[0], 0.0);
  EXPECT_EQ(sp.dist[1], 1.0);
  EXPECT_EQ(sp.dist[2], 2.0);
  EXPECT_EQ(sp.PathTo(2), (std::vector<NodeId>{0, 1, 2}));
}

TEST(DijkstraTest, MultiSourceTakesNearest) {
  DataGraph g = LineGraph();
  ShortestPaths sp = Dijkstra(g, {0, 2});
  EXPECT_EQ(sp.dist[1], 1.0);
  EXPECT_EQ(sp.dist[0], 0.0);
  EXPECT_EQ(sp.dist[2], 0.0);
}

TEST(DijkstraTest, RespectsMaxDist) {
  DataGraph g = LineGraph();
  ShortestPaths sp = Dijkstra(g, {0}, Direction::kForward, 1.0);
  EXPECT_TRUE(sp.Reachable(1));
  EXPECT_FALSE(sp.Reachable(2));
  EXPECT_TRUE(sp.PathTo(2).empty());
}

TEST(DijkstraTest, BackwardFollowsInEdges) {
  DataGraph g;
  g.AddNode("a", "");
  g.AddNode("b", "");
  g.AddEdge(0, 1, 3.0, /*back_weight=*/0);
  ShortestPaths fwd = Dijkstra(g, {0}, Direction::kForward);
  ShortestPaths bwd = Dijkstra(g, {1}, Direction::kBackward);
  EXPECT_EQ(fwd.dist[1], 3.0);
  EXPECT_EQ(bwd.dist[0], 3.0);
  EXPECT_FALSE(Dijkstra(g, {1}, Direction::kForward).Reachable(0));
}

TEST(DijkstraTest, PicksCheaperOfParallelPaths) {
  DataGraph g;
  for (int i = 0; i < 4; ++i) g.AddNode("n", "");
  g.AddEdge(0, 1, 1.0, 0);
  g.AddEdge(1, 3, 1.0, 0);
  g.AddEdge(0, 2, 0.4, 0);
  g.AddEdge(2, 3, 0.4, 0);
  ShortestPaths sp = Dijkstra(g, {0});
  EXPECT_DOUBLE_EQ(sp.dist[3], 0.8);
  EXPECT_EQ(sp.PathTo(3), (std::vector<NodeId>{0, 2, 3}));
}

TEST(BfsTest, CountsHopsIgnoringWeights) {
  DataGraph g;
  for (int i = 0; i < 3; ++i) g.AddNode("n", "");
  g.AddEdge(0, 1, 100.0, 0);
  g.AddEdge(1, 2, 100.0, 0);
  ShortestPaths sp = Bfs(g, {0});
  EXPECT_EQ(sp.dist[2], 2.0);
}

TEST(PageRankTest, SumsToOneAndFavorsSinks) {
  // star: 0,1,2 all point to 3.
  DataGraph g;
  for (int i = 0; i < 4; ++i) g.AddNode("n", "");
  g.AddEdge(0, 3, 1, 0);
  g.AddEdge(1, 3, 1, 0);
  g.AddEdge(2, 3, 1, 0);
  auto pr = PageRank(g);
  EXPECT_NEAR(std::accumulate(pr.begin(), pr.end(), 0.0), 1.0, 1e-6);
  EXPECT_GT(pr[3], pr[0]);
  EXPECT_GT(pr[3], pr[1]);
}

TEST(PageRankTest, SymmetricGraphUniform) {
  DataGraph g;
  for (int i = 0; i < 3; ++i) g.AddNode("n", "");
  g.AddUndirectedEdge(0, 1, 1);
  g.AddUndirectedEdge(1, 2, 1);
  g.AddUndirectedEdge(2, 0, 1);
  auto pr = PageRank(g);
  EXPECT_NEAR(pr[0], pr[1], 1e-9);
  EXPECT_NEAR(pr[1], pr[2], 1e-9);
}

TEST(PageRankTest, WeightedPrefersHeavyEdge) {
  DataGraph g;
  for (int i = 0; i < 3; ++i) g.AddNode("n", "");
  g.AddEdge(0, 1, 10.0, 0);
  g.AddEdge(0, 2, 1.0, 0);
  auto pr = WeightedPageRank(g);
  EXPECT_GT(pr[1], pr[2]);
}

TEST(BuildDataGraphTest, DblpGraphShape) {
  relational::DblpOptions opts;
  opts.num_authors = 50;
  opts.num_papers = 100;
  opts.num_conferences = 5;
  relational::DblpDatabase dblp = MakeDblpDatabase(opts);
  RelationalGraph rg = BuildDataGraph(*dblp.db);
  EXPECT_EQ(rg.graph.num_nodes(), dblp.db->TotalRows());
  EXPECT_EQ(rg.node_to_tuple.size(), rg.graph.num_nodes());
  // Every paper node connects forward to its conference node.
  const relational::Table& paper = dblp.db->table(dblp.paper);
  for (relational::RowId r = 0; r < paper.num_rows(); ++r) {
    const NodeId pn = rg.tuple_to_node.at({dblp.paper, r});
    bool found = false;
    for (const Edge& e : rg.graph.Out(pn)) {
      if (rg.node_to_tuple[e.to].table == dblp.conference) found = true;
    }
    EXPECT_TRUE(found) << "paper row " << r;
  }
}

TEST(BuildDataGraphTest, BackwardEdgesExistAndAreWeighted) {
  relational::DblpOptions opts;
  opts.num_authors = 20;
  opts.num_papers = 50;
  relational::DblpDatabase dblp = MakeDblpDatabase(opts);
  RelationalGraph rg = BuildDataGraph(*dblp.db);
  // A conference node (referenced side) must have out-edges back to the
  // papers referencing it, with weight >= 1 growing with in-degree.
  const NodeId cn = rg.tuple_to_node.at({dblp.conference, 0});
  EXPECT_GT(rg.graph.OutDegree(cn), 0u);
  for (const Edge& e : rg.graph.Out(cn)) {
    EXPECT_GT(e.weight, 0.0);
  }
}

TEST(BuildDataGraphTest, KeywordIndexCoversAuthors) {
  relational::DblpDatabase dblp = relational::MakeDblpDatabase();
  RelationalGraph rg = BuildDataGraph(*dblp.db);
  // Author 0's name tokens must match their node.
  const NodeId an = rg.tuple_to_node.at({dblp.author, 0});
  const std::string name = dblp.db->table(dblp.author).cell(0, 1).AsText();
  const auto tokens = text::Tokenizer().Tokenize(name);
  ASSERT_FALSE(tokens.empty());
  const auto& nodes = rg.graph.MatchNodes(tokens[0]);
  EXPECT_TRUE(std::find(nodes.begin(), nodes.end(), an) != nodes.end());
}

TEST(KeywordDistanceIndexTest, DistanceZeroAtMatch) {
  DataGraph g = LineGraph();
  KeywordDistanceIndex idx(g);
  idx.IndexTerm("omega");
  EXPECT_EQ(idx.Distance(2, "omega"), 0.0);
  EXPECT_EQ(idx.Distance(1, "omega"), 1.0);
  EXPECT_EQ(idx.Distance(0, "omega"), 2.0);
}

TEST(KeywordDistanceIndexTest, UnindexedTermIsInfinite) {
  DataGraph g = LineGraph();
  KeywordDistanceIndex idx(g);
  EXPECT_EQ(idx.Distance(0, "omega"), kInfDist);
}

TEST(KeywordDistanceIndexTest, RadiusCapsDistance) {
  DataGraph g = LineGraph();
  KeywordDistanceIndex idx(g, /*max_radius=*/1.0);
  idx.IndexTerm("omega");
  EXPECT_EQ(idx.Distance(0, "omega"), kInfDist);
  EXPECT_EQ(idx.Distance(1, "omega"), 1.0);
}

TEST(KeywordDistanceIndexTest, CandidateRootsSortedByCost) {
  DataGraph g = LineGraph();
  KeywordDistanceIndex idx(g);
  idx.IndexTerm("alpha");
  idx.IndexTerm("omega");
  auto roots = idx.CandidateRoots({"alpha", "omega"});
  ASSERT_EQ(roots.size(), 3u);
  // Node 1 (middle) has cost 1+1=2, ends have cost 0+2=2: all equal here.
  for (size_t i = 1; i < roots.size(); ++i) {
    EXPECT_GE(roots[i].second, roots[i - 1].second);
  }
}

/// Random undirected graph for oracle comparisons.
DataGraph RandomGraph(size_t n, size_t extra_edges, Rng& rng) {
  DataGraph g;
  for (size_t i = 0; i < n; ++i) g.AddNode("n", "");
  // Random spanning tree keeps it connected.
  for (size_t i = 1; i < n; ++i) {
    const NodeId p = static_cast<NodeId>(rng.Index(i));
    g.AddUndirectedEdge(static_cast<NodeId>(i), p,
                        1.0 + rng.Index(4));
  }
  for (size_t e = 0; e < extra_edges; ++e) {
    const NodeId u = static_cast<NodeId>(rng.Index(n));
    const NodeId v = static_cast<NodeId>(rng.Index(n));
    if (u != v) g.AddUndirectedEdge(u, v, 1.0 + rng.Index(4));
  }
  return g;
}

class HubIndexPropertyTest : public ::testing::TestWithParam<size_t> {};

TEST_P(HubIndexPropertyTest, AgreesWithDijkstraOnRandomGraphs) {
  const size_t num_hubs = GetParam();
  Rng rng(1234 + num_hubs);
  DataGraph g = RandomGraph(60, 40, rng);
  HubDistanceIndex::Options opts;
  opts.num_hubs = num_hubs;
  HubDistanceIndex index(g, opts);
  for (int trial = 0; trial < 30; ++trial) {
    const NodeId x = static_cast<NodeId>(rng.Index(g.num_nodes()));
    const NodeId y = static_cast<NodeId>(rng.Index(g.num_nodes()));
    const double exact = Dijkstra(g, {x}).dist[y];
    const double est = index.Distance(x, y);
    // The oracle never underestimates, and with unbounded radius it is
    // exact (every shortest path decomposes at its first/last hub).
    EXPECT_NEAR(est, exact, 1e-9) << "x=" << x << " y=" << y;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, HubIndexPropertyTest,
                         ::testing::Values(1, 4, 16));

TEST(HubIndexTest, StorageSmallerWithMoreHubs) {
  Rng rng(5);
  DataGraph g = RandomGraph(80, 80, rng);
  HubDistanceIndex::Options few, many;
  few.num_hubs = 2;
  many.num_hubs = 24;
  const size_t storage_few = HubDistanceIndex(g, few).StorageEntries();
  const size_t storage_many = HubDistanceIndex(g, many).StorageEntries();
  // More hubs block more paths, shrinking the per-node local rows
  // (the whole point of Goldman's hub construction).
  EXPECT_LT(storage_many, storage_few);
}

}  // namespace
}  // namespace kws::graph

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "core/clean/cleaner.h"
#include "core/complete/tastier.h"
#include "core/refine/cluster_expand.h"
#include "core/refine/data_clouds.h"
#include "core/refine/facets.h"
#include "core/rewrite/keyword_pp.h"
#include "core/rewrite/related_queries.h"
#include "graph/data_graph.h"
#include "relational/dblp.h"
#include "relational/query_log.h"
#include "relational/shop.h"
#include "text/inverted_index.h"

namespace kws {
namespace {

// ---------------------------------------------------------------- clean

class CleanerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Slide 67's product vocabulary.
    index_.AddDocument(0, "apple ipad nano");
    index_.AddDocument(1, "apple ipod nano");
    index_.AddDocument(2, "apple iphone");
    index_.AddDocument(3, "lenovo thinkpad laptop");
    index_.AddDocument(4, "database systems keyword search");
  }
  text::InvertedIndex index_;
};

TEST_F(CleanerTest, CorrectsSingleTypos) {
  clean::QueryCleaner cleaner(index_);
  clean::CleanedQuery q = cleaner.Clean("appl ipd nan");
  ASSERT_EQ(q.tokens.size(), 3u);
  EXPECT_EQ(q.tokens[0], "apple");
  EXPECT_TRUE(q.tokens[1] == "ipad" || q.tokens[1] == "ipod");
  EXPECT_EQ(q.tokens[2], "nano");
  EXPECT_TRUE(q.has_results);
}

TEST_F(CleanerTest, XCleanGuaranteeNonEmptyResults) {
  clean::QueryCleaner cleaner(index_);
  // "datbase kyword" should clean to a combination that co-occurs
  // (database + keyword share doc 4); "apple database" never co-occurs.
  clean::CleanedQuery q = cleaner.Clean("datbase kyword");
  EXPECT_TRUE(q.has_results);
  EXPECT_EQ(q.tokens, (std::vector<std::string>{"database", "keyword"}));
}

TEST_F(CleanerTest, CleanWordsPassThrough) {
  clean::QueryCleaner cleaner(index_);
  clean::CleanedQuery q = cleaner.Clean("apple nano");
  EXPECT_EQ(q.tokens, (std::vector<std::string>{"apple", "nano"}));
  EXPECT_TRUE(q.has_results);
}

TEST_F(CleanerTest, SegmentationGroupsCooccurringTokens) {
  clean::QueryCleaner cleaner(index_);
  clean::CleanedQuery q = cleaner.Clean("keyword search");
  // "keyword search" is backed by doc 4 -> a single 2-token segment.
  ASSERT_EQ(q.segments.size(), 1u);
  EXPECT_EQ(q.segments[0], (std::pair<size_t, size_t>(0, 2)));
}

TEST_F(CleanerTest, ConfusionSetOrderedAndBounded) {
  clean::CleanerOptions opts;
  opts.max_candidates = 3;
  clean::QueryCleaner cleaner(index_, opts);
  auto cs = cleaner.ConfusionSet("ipd");
  ASSERT_FALSE(cs.empty());
  EXPECT_LE(cs.size(), 3u);
  for (size_t i = 1; i < cs.size(); ++i) {
    EXPECT_GE(cs[i - 1].second, cs[i].second);
  }
}

TEST_F(CleanerTest, EmptyQuery) {
  clean::QueryCleaner cleaner(index_);
  EXPECT_TRUE(cleaner.Clean("").tokens.empty());
}

// ------------------------------------------------------------- complete

class TastierTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // author(srivastava) <- writes -> paper(sigmod optimization)
    a_ = g_.AddNode("author", "srivastava");
    p_ = g_.AddNode("paper", "sigmod query optimization");
    w_ = g_.AddNode("writes", "");
    o_ = g_.AddNode("paper2", "sigact theory");
    g_.AddEdge(w_, a_, 1, 1);
    g_.AddEdge(w_, p_, 1, 1);
    g_.BuildKeywordIndex();
  }
  graph::DataGraph g_;
  graph::NodeId a_, p_, w_, o_;
};

TEST_F(TastierTest, CompletesPrefixes) {
  complete::TastierIndex index(g_, 0);
  auto completions = index.Complete("sig", 10);
  EXPECT_EQ(completions,
            (std::vector<std::string>{"sigact", "sigmod"}));
}

TEST_F(TastierTest, DeltaZeroRequiresSameNode) {
  complete::TastierIndex index(g_, 0);
  // No single node contains both srivasta* and sig*.
  EXPECT_TRUE(index.Candidates({"srivasta", "sig"}).empty());
  // But one node contains both "sigmod" and "optimization" prefixes.
  auto c = index.Candidates({"sigmod", "optim"});
  EXPECT_EQ(c, (std::vector<graph::NodeId>{p_}));
}

TEST_F(TastierTest, DeltaOneReachesNeighbors) {
  complete::TastierIndex index(g_, 1);
  // The writes node reaches both the author and the paper in one step —
  // the slide 72/73 scenario {srivasta, sig}.
  auto c = index.Candidates({"srivasta", "sig"});
  ASSERT_FALSE(c.empty());
  EXPECT_TRUE(std::find(c.begin(), c.end(), w_) != c.end());
}

TEST_F(TastierTest, UnknownPrefixYieldsNothing) {
  complete::TastierIndex index(g_, 1);
  EXPECT_TRUE(index.Candidates({"zzz", "sig"}).empty());
}

TEST_F(TastierTest, FuzzyToleratesTypoInLastPrefix) {
  complete::TastierIndex index(g_, 1);
  // "sog" is one edit from prefix "sig".
  auto exact = index.Candidates({"srivasta", "sog"});
  EXPECT_TRUE(exact.empty());
  auto fuzzy = index.FuzzyCandidates({"srivasta", "sog"}, 1);
  EXPECT_FALSE(fuzzy.empty());
}

TEST_F(TastierTest, StatsShowFiltering) {
  complete::TastierIndex index(g_, 1);
  complete::TypeAheadStats stats;
  index.Candidates({"srivasta", "sig"}, &stats);
  EXPECT_EQ(stats.range_lookups, 2u);
  EXPECT_GE(stats.candidates_before_filter, stats.candidates_after_filter);
}

// --------------------------------------------------------------- refine

class DataCloudsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    index_.AddDocument(0, "xml keyword search engines");
    index_.AddDocument(1, "xml xpath processing");
    index_.AddDocument(2, "xml keyword ranking");
    index_.AddDocument(3, "relational database theory");
  }
  text::InvertedIndex index_;
};

TEST_F(DataCloudsTest, SuggestsCoOccurringTerms) {
  auto terms = refine::SuggestTerms(index_, "xml",
                                    refine::TermRanking::kPopularity, 3);
  ASSERT_FALSE(terms.empty());
  // "keyword" appears in 2 of the 3 xml docs -> top suggestion.
  EXPECT_EQ(terms[0].term, "keyword");
  for (const auto& t : terms) {
    EXPECT_NE(t.term, "xml");  // query terms excluded
  }
}

TEST_F(DataCloudsTest, RelevanceRankingPenalizesCommonTerms) {
  auto pop = refine::SuggestTerms(index_, "keyword",
                                  refine::TermRanking::kPopularity, 10);
  auto rel = refine::SuggestTerms(index_, "keyword",
                                  refine::TermRanking::kRelevance, 10);
  EXPECT_FALSE(pop.empty());
  EXPECT_FALSE(rel.empty());
  // Both must suggest xml (co-occurs in both keyword docs).
  auto has = [](const std::vector<refine::SuggestedTerm>& v,
                const std::string& t) {
    for (const auto& s : v) {
      if (s.term == t) return true;
    }
    return false;
  };
  EXPECT_TRUE(has(pop, "xml"));
  EXPECT_TRUE(has(rel, "xml"));
}

TEST_F(DataCloudsTest, FrequentCoOccurringMatchesNaive) {
  auto naive = refine::SuggestTerms(index_, "xml",
                                    refine::TermRanking::kPopularity, 4);
  uint64_t scanned = 0;
  auto fast = refine::FrequentCoOccurringTerms(index_, "xml", 4, &scanned);
  ASSERT_EQ(naive.size(), fast.size());
  for (size_t i = 0; i < naive.size(); ++i) {
    EXPECT_DOUBLE_EQ(naive[i].score, fast[i].score) << "rank " << i;
  }
  EXPECT_GT(scanned, 0u);
}

TEST(ClusterExpandTest, FindsDiscriminatingTerms) {
  text::InvertedIndex index;
  // Two senses of "java": the language and the island (slide 81).
  index.AddDocument(0, "java language compiler virtual machine");
  index.AddDocument(1, "java language object oriented sun");
  index.AddDocument(2, "java island indonesia provinces");
  index.AddDocument(3, "java island volcano travel");
  auto expanded = refine::ExpandQueriesForClusters(
      index, "java", {{0, 1}, {2, 3}});
  ASSERT_EQ(expanded.size(), 2u);
  // Each expanded query must separate its cluster perfectly: "language"
  // and "island" are perfect discriminators.
  EXPECT_DOUBLE_EQ(expanded[0].f_measure, 1.0);
  EXPECT_DOUBLE_EQ(expanded[1].f_measure, 1.0);
  EXPECT_TRUE(std::find(expanded[0].terms.begin(), expanded[0].terms.end(),
                        "language") != expanded[0].terms.end());
  EXPECT_TRUE(std::find(expanded[1].terms.begin(), expanded[1].terms.end(),
                        "island") != expanded[1].terms.end());
}

TEST(ClusterExpandTest, StopsWhenNoImprovement) {
  text::InvertedIndex index;
  index.AddDocument(0, "same words here");
  index.AddDocument(1, "same words here");
  auto expanded =
      refine::ExpandQueriesForClusters(index, "same", {{0}, {1}});
  ASSERT_EQ(expanded.size(), 2u);
  // Identical docs cannot be separated: F stays at the base level and no
  // phantom terms get added beyond the original query.
  EXPECT_EQ(expanded[0].terms.size(), 1u);
}

class FacetsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    shop_ = relational::MakeShopDatabase({.seed = 4, .num_products = 400});
    log_ = relational::MakeQueryLog(*shop_.db, shop_.product,
                                    {.seed = 5, .num_queries = 400});
    for (relational::RowId r = 0;
         r < shop_.db->table(shop_.product).num_rows(); ++r) {
      all_rows_.push_back(r);
    }
  }
  relational::ShopDatabase shop_;
  relational::QueryLog log_;
  std::vector<relational::RowId> all_rows_;
};

TEST_F(FacetsTest, ConditionsPartitionRows) {
  refine::FacetedNavigator nav(*shop_.db, shop_.product, log_);
  const relational::Table& table = shop_.db->table(shop_.product);
  // brand column (2) is categorical.
  auto conds = nav.ConditionsFor(2, all_rows_, {});
  ASSERT_FALSE(conds.empty());
  for (const auto& c : conds) {
    EXPECT_TRUE(c.equals.has_value());
  }
  // price column (5) is numeric: buckets must tile the number line.
  auto buckets = nav.ConditionsFor(5, all_rows_, {});
  ASSERT_GE(buckets.size(), 2u);
  size_t covered = 0;
  for (relational::RowId r : all_rows_) {
    size_t hits = 0;
    for (const auto& b : buckets) hits += b.Matches(table, r);
    EXPECT_EQ(hits, 1u) << "row must fall in exactly one bucket";
    covered += hits;
  }
  EXPECT_EQ(covered, all_rows_.size());
}

TEST_F(FacetsTest, GreedyBeatsPathologicalFixedOrder) {
  refine::FacetedNavigator nav(*shop_.db, shop_.product, log_);
  refine::FacetTreeOptions opts;
  opts.max_depth = 2;
  refine::FacetNode greedy = nav.BuildGreedy(all_rows_, opts);
  // Fixed order starting with the (useless) name column.
  refine::FacetNode fixed =
      nav.BuildFixedOrder(all_rows_, {1, 7, 3}, opts);
  EXPECT_LE(nav.ExpectedCost(greedy), nav.ExpectedCost(fixed));
}

TEST_F(FacetsTest, CostOfLeafIsRowCount) {
  refine::FacetedNavigator nav(*shop_.db, shop_.product, log_);
  refine::FacetNode leaf;
  leaf.rows = {1, 2, 3};
  EXPECT_DOUBLE_EQ(nav.ExpectedCost(leaf), 3.0);
}

TEST_F(FacetsTest, TreeChildrenNestProperly) {
  refine::FacetedNavigator nav(*shop_.db, shop_.product, log_);
  refine::FacetTreeOptions opts;
  opts.max_depth = 2;
  refine::FacetNode root = nav.BuildGreedy(all_rows_, opts);
  ASSERT_FALSE(root.children.empty());
  const relational::Table& table = shop_.db->table(shop_.product);
  for (const auto& child : root.children) {
    ASSERT_TRUE(child.condition.has_value());
    for (relational::RowId r : child.rows) {
      EXPECT_TRUE(child.condition->Matches(table, r));
    }
    EXPECT_LE(child.rows.size(), root.rows.size());
  }
}

// -------------------------------------------------------------- rewrite

class KeywordPpTest : public ::testing::Test {
 protected:
  void SetUp() override {
    shop_ = relational::MakeShopDatabase({.seed = 6, .num_products = 600});
    log_ = relational::MakeQueryLog(*shop_.db, shop_.product,
                                    {.seed = 7, .num_queries = 200});
  }
  relational::ShopDatabase shop_;
  relational::QueryLog log_;
};

TEST_F(KeywordPpTest, MapsSynonymToBrandEquality) {
  rewrite::KeywordPlusPlus kpp(*shop_.db, shop_.product, log_);
  // "ibm" appears only in lenovo descriptions (slide 95).
  rewrite::MappedPredicate p = kpp.MapKeyword("ibm");
  EXPECT_EQ(p.kind, rewrite::MappedPredicate::Kind::kEquals);
  ASSERT_TRUE(p.value.has_value());
  EXPECT_EQ(p.value->AsText(), "lenovo");
}

TEST_F(KeywordPpTest, MapsSmallToOrderByScreenAsc) {
  rewrite::KeywordPlusPlus kpp(*shop_.db, shop_.product, log_);
  rewrite::MappedPredicate p = kpp.MapKeyword("small");
  EXPECT_EQ(p.kind, rewrite::MappedPredicate::Kind::kOrderAsc);
  // column 4 is screen.
  EXPECT_EQ(p.column, 4u);
}

TEST_F(KeywordPpTest, UnknownWordFallsBackToContains) {
  rewrite::KeywordPlusPlus kpp(*shop_.db, shop_.product, log_);
  rewrite::MappedPredicate p = kpp.MapKeyword("zzzunknown");
  EXPECT_EQ(p.kind, rewrite::MappedPredicate::Kind::kContains);
}

TEST_F(KeywordPpTest, TranslateProducesSql) {
  rewrite::KeywordPlusPlus kpp(*shop_.db, shop_.product, log_);
  rewrite::TranslatedQuery tq = kpp.Translate("small ibm laptop");
  EXPECT_FALSE(tq.predicates.empty());
  EXPECT_NE(tq.sql.find("SELECT * FROM product"), std::string::npos);
  EXPECT_NE(tq.sql.find("ORDER BY screen ASC"), std::string::npos);
  EXPECT_NE(tq.sql.find("brand = 'lenovo'"), std::string::npos);
}

TEST(RelatedByClicksTest, FindsSynonymQueries) {
  std::vector<rewrite::ClickRecord> log = {
      {"indiana jones 4", {1, 2, 3}},
      {"indiana jones iv", {1, 2, 4}},
      {"star wars", {9, 10}},
      {"indiana jones 4", {3, 5}},
  };
  auto related = rewrite::RelatedByClicks(log, "indiana jones 4");
  ASSERT_FALSE(related.empty());
  EXPECT_EQ(related[0].query, "indiana jones iv");
  for (const auto& r : related) {
    EXPECT_NE(r.query, "star wars");
  }
}

TEST(RelatedByClicksTest, UnknownQueryGivesNothing) {
  std::vector<rewrite::ClickRecord> log = {{"a", {1}}};
  EXPECT_TRUE(rewrite::RelatedByClicks(log, "b").empty());
}

TEST(RelatedValuesTest, HondaRelatesToToyota) {
  relational::ShopDatabase shop =
      relational::MakeShopDatabase({.seed = 8, .num_products = 600});
  // brand column = 2. honda and toyota are both cars with similar price
  // profiles; laptop brands profile differently.
  auto related = rewrite::RelatedValues(*shop.db, shop.product, 2,
                                        relational::Value::Text("honda"), 3);
  ASSERT_FALSE(related.empty());
  EXPECT_EQ(related[0].first.AsText(), "toyota");
}

}  // namespace
}  // namespace kws

namespace kws {
namespace {

TEST_F(FacetsTest, FacetorModelPrefersNarrowingFacets) {
  refine::FacetedNavigator nav(*shop_.db, shop_.product, log_);
  refine::FacetTreeOptions opts;
  opts.max_depth = 2;
  opts.cost_model = refine::FacetCostModel::kFacetor;
  refine::FacetNode greedy = nav.BuildGreedy(all_rows_, opts);
  ASSERT_FALSE(greedy.children.empty());
  // Under FACeTOR probabilities the greedy tree still beats a
  // pathological fixed order, and a leaf costs its row count.
  refine::FacetNode fixed = nav.BuildFixedOrder(all_rows_, {1, 7, 6}, opts);
  EXPECT_LE(nav.ExpectedCost(greedy, opts), nav.ExpectedCost(fixed, opts));
  refine::FacetNode leaf;
  leaf.rows = {1, 2};
  EXPECT_DOUBLE_EQ(nav.ExpectedCost(leaf, opts), 2.0);
}

TEST_F(FacetsTest, FacetorShowMoreChargesPaging) {
  refine::FacetedNavigator nav(*shop_.db, shop_.product, log_);
  refine::FacetTreeOptions opts;
  opts.max_depth = 1;
  opts.cost_model = refine::FacetCostModel::kFacetor;
  opts.max_conditions = 8;
  refine::FacetNode tree = nav.BuildGreedy(all_rows_, opts);
  if (tree.children.size() > 2) {
    refine::FacetTreeOptions small_pages = opts;
    small_pages.facetor_page_size = 1;
    refine::FacetTreeOptions big_pages = opts;
    big_pages.facetor_page_size = 100;
    EXPECT_GT(nav.ExpectedCost(tree, small_pages),
              nav.ExpectedCost(tree, big_pages));
  }
}

}  // namespace
}  // namespace kws

#ifndef KWDB_TOOLS_KWSLINT_SOURCE_H_
#define KWDB_TOOLS_KWSLINT_SOURCE_H_

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace kws::lint {

/// One physical source line, split into the views the rules consume.
struct Line {
  /// The original text (no trailing newline).
  std::string raw;
  /// `raw` with comment text and string/char-literal contents blanked to
  /// spaces, preserving column positions. Rules match code against this so
  /// a `std::thread` inside a comment or string never fires.
  std::string code;
  /// Text of the comment on this line (from its `//` or within `/* */`),
  /// empty when the line has no comment.
  std::string comment;
  /// True when the line holds nothing but whitespace and/or comment.
  bool comment_only = false;
  /// True for a comment-only line that is part of a Doxygen block: starts
  /// with `///` or `/**`, or continues a `/** */` block.
  bool doxygen = false;
  /// True when the first non-space code character is `#` (or the line
  /// continues a preceding backslash-continued directive).
  bool preprocessor = false;
};

/// One lexical token of the blanked code view.
struct Token {
  std::string text;
  int line = 0;  ///< 1-based.
  int col = 0;   ///< 0-based byte offset.
};

/// A parsed file plus its suppression annotations.
///
/// Suppressions: a trailing `// kwslint: allow(<rule>)` comment silences
/// `<rule>` on that line; a `// kwslint: file-allow(<rule>)` comment
/// anywhere (conventionally at the top) silences it for the whole file.
class SourceFile {
 public:
  /// Parses `content` (the text of the file at repo-relative `path`,
  /// forward slashes) into line views, tokens and suppressions.
  static SourceFile Parse(std::string path, std::string_view content);

  const std::string& path() const { return path_; }
  const std::vector<Line>& lines() const { return lines_; }
  /// Identifier/number/punctuation tokens of the code view, in order.
  /// `::` is fused into one token; other punctuation is one char each.
  const std::vector<Token>& tokens() const { return tokens_; }

  /// True when `rule` is suppressed at `line` (1-based), either by a
  /// trailing allow() on that line or a file-level file-allow().
  bool Allowed(const std::string& rule, int line) const;

  /// Top-level directory of `path` ("src", "tests", "bench", "examples").
  std::string TopDir() const;
  bool IsHeader() const;
  /// True when `path` starts with `prefix` (e.g. "src/common/random.").
  bool PathStartsWith(std::string_view prefix) const;

 private:
  std::string path_;
  std::vector<Line> lines_;
  std::vector<Token> tokens_;
  std::set<std::string> file_allows_;
  std::map<int, std::set<std::string>> line_allows_;
};

}  // namespace kws::lint

#endif  // KWDB_TOOLS_KWSLINT_SOURCE_H_

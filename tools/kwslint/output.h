#ifndef KWDB_TOOLS_KWSLINT_OUTPUT_H_
#define KWDB_TOOLS_KWSLINT_OUTPUT_H_

#include <set>
#include <string>
#include <vector>

#include "kwslint/rules.h"

namespace kws::lint {

/// A checked-in set of tolerated pre-existing findings, so new rules can
/// land with their backlog burned down incrementally instead of blocking
/// CI. Each non-comment line is `path: rule` and suppresses every finding
/// of that rule in that file (line numbers drift too fast to pin).
class Baseline {
 public:
  /// Parses baseline text. Lines are `path: rule`; blank lines and lines
  /// starting with `#` are ignored. Returns false on a malformed line.
  static bool Parse(const std::string& text, Baseline* out,
                    std::string* error);

  /// True when `d` is covered by a baseline entry.
  bool Matches(const Diagnostic& d) const {
    return entries_.count(d.path + "|" + d.rule) != 0;
  }

  size_t size() const { return entries_.size(); }

 private:
  std::set<std::string> entries_;
};

/// Splits `diags` into kept findings (returned) and baseline-suppressed
/// ones (counted into `*suppressed`). Order is preserved.
std::vector<Diagnostic> ApplyBaseline(const std::vector<Diagnostic>& diags,
                                      const Baseline& baseline,
                                      size_t* suppressed);

/// Renders findings as one deterministic JSON object:
/// `{"tool":"kwslint","files":N,"findings":[...],"baseline_suppressed":M}`.
/// Byte-stable: a pure function of the arguments.
std::string RenderJson(const std::vector<Diagnostic>& diags,
                       size_t file_count, size_t baseline_suppressed);

/// Renders findings as a minimal SARIF 2.1.0 log (one run, one driver,
/// every rule id registered, one result per finding). Byte-stable.
std::string RenderSarif(const std::vector<Diagnostic>& diags);

/// Escapes `s` for embedding in a JSON string literal.
std::string JsonEscape(const std::string& s);

}  // namespace kws::lint

#endif  // KWDB_TOOLS_KWSLINT_OUTPUT_H_

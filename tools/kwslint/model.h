#ifndef KWDB_TOOLS_KWSLINT_MODEL_H_
#define KWDB_TOOLS_KWSLINT_MODEL_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "kwslint/source.h"

namespace kws::lint {

/// One `#include "..."` edge of the src/ include graph.
struct IncludeEdge {
  /// Repo-relative path of the included file (e.g. "src/common/status.h").
  std::string target;
  /// 1-based line of the #include directive in the including file.
  int line = 0;
};

/// The cross-file model built by pass 1 of the two-pass engine. It is a
/// pure function of the parsed file set, so building it once up front and
/// sharing it read-only across rule workers is race-free.
///
/// Three indexes back the semantic rules:
///  - the src/ include graph (include-cycle, and visibility for
///    unordered-iteration),
///  - a name index of functions returning kws::Status / kws::Result<T>
///    (status-discard). The index is name-based, not overload-aware: a
///    PascalCase identifier declared anywhere with a Status/Result return
///    type marks every call to that name. Lowercase identifiers are never
///    indexed (Google style makes those variables), which keeps
///    constructor-style variable declarations `Status s(code, msg)` out.
///  - per-file unordered-container declarations (`std::unordered_map<...>
///    name`), members and locals alike (unordered-iteration).
class ProjectModel {
 public:
  /// Builds the model from every parsed file. Deterministic: depends only
  /// on file contents and paths, never on scan order.
  static ProjectModel Build(const std::vector<SourceFile>& files);

  /// True when `name` is declared somewhere with a Status/Result return.
  bool IsStatusFunction(const std::string& name) const {
    return status_functions_.count(name) != 0;
  }

  /// Names declared as unordered containers in `path` itself or in any
  /// src/ header it transitively includes. Returns an empty set for
  /// unknown paths.
  const std::set<std::string>& UnorderedNamesVisible(
      const std::string& path) const;

  /// The src/ include graph: includer path -> edges, targets restricted to
  /// files present in the lint set. Edges are in directive order.
  const std::map<std::string, std::vector<IncludeEdge>>& IncludeGraph()
      const {
    return includes_;
  }

  /// All indexed Status/Result-returning function names (for tooling).
  const std::set<std::string>& StatusFunctions() const {
    return status_functions_;
  }

 private:
  std::set<std::string> status_functions_;
  std::map<std::string, std::vector<IncludeEdge>> includes_;
  /// Per-file declared unordered-container names.
  std::map<std::string, std::set<std::string>> unordered_decls_;
  /// unordered_decls_ closed over the include graph, precomputed so rule
  /// workers only read.
  std::map<std::string, std::set<std::string>> visible_unordered_;
};

}  // namespace kws::lint

#endif  // KWDB_TOOLS_KWSLINT_MODEL_H_

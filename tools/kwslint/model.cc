#include "kwslint/model.h"

#include <cctype>
#include <functional>

namespace kws::lint {

namespace {

bool IsIdent(const Token& t) {
  return !t.text.empty() &&
         (std::isalpha(static_cast<unsigned char>(t.text[0])) ||
          t.text[0] == '_');
}

/// Skips a balanced `<...>` starting at `i` (which must point at `<`).
/// Returns the index one past the matching `>`, or `toks.size()` when
/// unbalanced.
size_t SkipAngles(const std::vector<Token>& toks, size_t i) {
  int depth = 0;
  for (; i < toks.size(); ++i) {
    if (toks[i].text == "<") ++depth;
    if (toks[i].text == ">" && --depth == 0) return i + 1;
  }
  return toks.size();
}

/// Indexes `Status Foo(` / `Result<T> Foo(` / `Status Class::Foo(`
/// declaration heads in `f`'s token stream into `out`. Only PascalCase
/// names are recorded (see the class comment in model.h).
void IndexStatusFunctions(const SourceFile& f, std::set<std::string>* out) {
  const std::vector<Token>& toks = f.tokens();
  for (size_t i = 0; i < toks.size(); ++i) {
    const std::string& t = toks[i].text;
    if (t != "Status" && t != "Result") continue;
    // `obj.Status(...)` / `x->Result` are member accesses, not types.
    if (i >= 1 && (toks[i - 1].text == "." ||
                   (i >= 2 && toks[i - 1].text == ">" &&
                    toks[i - 2].text == "-"))) {
      continue;
    }
    size_t j = i + 1;
    if (t == "Result") {
      if (j >= toks.size() || toks[j].text != "<") continue;
      j = SkipAngles(toks, j);
    }
    // Declarator: ident (:: ident)* followed by '('. The last identifier
    // is the function name.
    if (j >= toks.size() || !IsIdent(toks[j])) continue;
    std::string name = toks[j].text;
    ++j;
    while (j + 1 < toks.size() && toks[j].text == "::" &&
           IsIdent(toks[j + 1])) {
      name = toks[j + 1].text;
      j += 2;
    }
    if (j >= toks.size() || toks[j].text != "(") continue;
    if (!std::isupper(static_cast<unsigned char>(name[0]))) continue;
    out->insert(name);
  }
}

/// Indexes declared unordered-container names (`std::unordered_map<...>
/// name`, members, locals and reference parameters alike) into `out`.
void IndexUnorderedDecls(const SourceFile& f, std::set<std::string>* out) {
  const std::vector<Token>& toks = f.tokens();
  for (size_t i = 0; i < toks.size(); ++i) {
    const std::string& t = toks[i].text;
    if (t != "unordered_map" && t != "unordered_set" &&
        t != "unordered_multimap" && t != "unordered_multiset") {
      continue;
    }
    size_t j = i + 1;
    if (j >= toks.size() || toks[j].text != "<") continue;
    j = SkipAngles(toks, j);
    // Declarator prefix: cv/ref/pointer tokens before the name.
    while (j < toks.size() &&
           (toks[j].text == "&" || toks[j].text == "*" ||
            toks[j].text == "const")) {
      ++j;
    }
    if (j < toks.size() && IsIdent(toks[j])) out->insert(toks[j].text);
  }
}

/// Extracts `#include "..."` targets from a raw line (the code view blanks
/// string interiors, so the path must come from `raw`).
bool ParseQuotedInclude(const std::string& raw, std::string* inc) {
  size_t h = raw.find('#');
  if (h == std::string::npos) return false;
  size_t k = raw.find("include", h);
  if (k == std::string::npos) return false;
  size_t open = raw.find('"', k);
  if (open == std::string::npos) return false;
  size_t close = raw.find('"', open + 1);
  if (close == std::string::npos) return false;
  *inc = raw.substr(open + 1, close - open - 1);
  return true;
}

}  // namespace

ProjectModel ProjectModel::Build(const std::vector<SourceFile>& files) {
  ProjectModel m;
  std::set<std::string> known_paths;
  for (const SourceFile& f : files) known_paths.insert(f.path());

  for (const SourceFile& f : files) {
    if (f.TopDir() == "src") {
      IndexStatusFunctions(f, &m.status_functions_);
    }
    std::set<std::string>& decls = m.unordered_decls_[f.path()];
    IndexUnorderedDecls(f, &decls);

    if (f.TopDir() != "src") continue;
    std::vector<IncludeEdge>& edges = m.includes_[f.path()];
    for (size_t li = 0; li < f.lines().size(); ++li) {
      const Line& line = f.lines()[li];
      if (!line.preprocessor) continue;
      std::string inc;
      if (!ParseQuotedInclude(line.raw, &inc)) continue;
      // Project includes are src/-relative ("common/status.h").
      const std::string target = "src/" + inc;
      if (known_paths.count(target) == 0) continue;
      edges.push_back(IncludeEdge{target, static_cast<int>(li) + 1});
    }
  }

  // Close unordered_decls_ over the include graph: a .cc sees the members
  // its (transitive) src/ headers declare. Iterative DFS per file keeps
  // this deterministic and cycle-safe.
  for (const SourceFile& f : files) {
    std::set<std::string> visible = m.unordered_decls_[f.path()];
    std::set<std::string> visited = {f.path()};
    std::vector<std::string> stack = {f.path()};
    while (!stack.empty()) {
      const std::string cur = stack.back();
      stack.pop_back();
      auto it = m.includes_.find(cur);
      if (it == m.includes_.end()) continue;
      for (const IncludeEdge& e : it->second) {
        if (!visited.insert(e.target).second) continue;
        auto d = m.unordered_decls_.find(e.target);
        if (d != m.unordered_decls_.end()) {
          visible.insert(d->second.begin(), d->second.end());
        }
        stack.push_back(e.target);
      }
    }
    m.visible_unordered_[f.path()] = std::move(visible);
  }
  return m;
}

const std::set<std::string>& ProjectModel::UnorderedNamesVisible(
    const std::string& path) const {
  static const std::set<std::string> kEmpty;
  auto it = visible_unordered_.find(path);
  return it == visible_unordered_.end() ? kEmpty : it->second;
}

}  // namespace kws::lint

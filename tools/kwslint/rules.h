#ifndef KWDB_TOOLS_KWSLINT_RULES_H_
#define KWDB_TOOLS_KWSLINT_RULES_H_

#include <string>
#include <utility>
#include <vector>

#include "kwslint/model.h"
#include "kwslint/source.h"

namespace kws::lint {

/// One lint finding, printed as "<path>:<line>: <rule>: <message>".
struct Diagnostic {
  std::string path;
  int line = 0;
  std::string rule;
  std::string message;
};

/// The rule ids, in reporting order.
///
/// Token rules (pass 2, per file):
///   raw-random   — nondeterministic seed/generator outside kws::Rng
///   no-throw     — `throw` on a src/ library path (use kws::Status)
///   raw-thread   — std::thread/std::async/detach outside ThreadPool
///   no-iostream  — std::cout/std::cerr in src/ (return Status instead)
///   doc-comment  — undocumented public declaration in a src/ header
///   header-guard — wrong include-guard name, #pragma once, bad filename
///   mutex-style  — mutex field not named *_mu_/mu_, or manual lock()
///   metric-name  — metric/span name literal not dotted lowercase
///                  ([a-z0-9_.]+) in GetCounter/GetHistogram/TraceSpan/
///                  BeginSpan/AddCounter/AddEvent calls, scanned to the
///                  call's matching close paren
///
/// Semantic rules (pass 2, over the pass-1 ProjectModel):
///   status-discard      — call to a kws::Status/Result-returning function
///                         used as a bare expression statement
///   unordered-iteration — range-for over a declared unordered_map/set in
///                         src/ (nondeterministic order; iterate a sorted
///                         snapshot on result paths)
///   deadline-loop       — outermost while/for in a src/ .cc function that
///                         takes a Deadline/DeadlineChecker but whose loop
///                         never polls or forwards it
///   allow-justification — `kwslint: allow(...)` without a justification
///   include-cycle       — cycle in the src/ include graph
std::vector<std::string> RuleIds();

/// Runs every per-file rule over `file` against the cross-file `model`,
/// honoring `// kwslint: allow(rule)` and `// kwslint: file-allow(rule)`
/// suppressions. Diagnostics come back in line order. include-cycle is a
/// project-level rule and reported by LintProject/CheckIncludeCycles, not
/// here.
std::vector<Diagnostic> RunRules(const SourceFile& file,
                                 const ProjectModel& model);

/// Single-file convenience overload: builds a model from `file` alone.
std::vector<Diagnostic> RunRules(const SourceFile& file);

/// Reports one include-cycle diagnostic per strongly connected component
/// of the src/ include graph (on the lexicographically smallest member's
/// offending #include line).
void CheckIncludeCycles(const std::vector<SourceFile>& files,
                        const ProjectModel& model,
                        std::vector<Diagnostic>* out);

/// Two-pass engine entry point: parses `files` (repo-relative path,
/// content), builds the ProjectModel, runs all rules and returns every
/// finding ordered by (path, line, rule, message). With `jobs > 1` the
/// parse and rule passes fan out over a kws::ThreadPool with static
/// striding, so the result is byte-identical for every jobs value.
std::vector<Diagnostic> LintProject(
    const std::vector<std::pair<std::string, std::string>>& files,
    int jobs);

/// Lints a batch serially. Appends findings to `out` and returns the
/// process exit code: 0 when clean, 1 otherwise.
int LintFiles(const std::vector<std::pair<std::string, std::string>>& files,
              std::vector<Diagnostic>* out);

/// Renders `d` in the canonical "file:line: rule-id: message" form.
std::string FormatDiagnostic(const Diagnostic& d);

}  // namespace kws::lint

#endif  // KWDB_TOOLS_KWSLINT_RULES_H_

#ifndef KWDB_TOOLS_KWSLINT_RULES_H_
#define KWDB_TOOLS_KWSLINT_RULES_H_

#include <string>
#include <utility>
#include <vector>

#include "kwslint/source.h"

namespace kws::lint {

/// One lint finding, printed as "<path>:<line>: <rule>: <message>".
struct Diagnostic {
  std::string path;
  int line = 0;
  std::string rule;
  std::string message;
};

/// The rule ids, in reporting order:
///   raw-random   — nondeterministic seed/generator outside kws::Rng
///   no-throw     — `throw` on a src/ library path (use kws::Status)
///   raw-thread   — std::thread/std::async/detach outside ThreadPool
///   no-iostream  — std::cout/std::cerr in src/ (return Status instead)
///   doc-comment  — undocumented public declaration in a src/ header
///   header-guard — wrong include-guard name, #pragma once, bad filename
///   mutex-style  — mutex field not named *_mu_/mu_, or manual lock()
///   metric-name  — metric/span name literal not dotted lowercase
///                  ([a-z0-9_.]+) in GetCounter/GetHistogram/TraceSpan/
///                  BeginSpan/AddCounter/AddEvent calls
std::vector<std::string> RuleIds();

/// Runs every rule over `file`, honoring `// kwslint: allow(rule)` and
/// `// kwslint: file-allow(rule)` suppressions. Diagnostics come back in
/// line order.
std::vector<Diagnostic> RunRules(const SourceFile& file);

/// Lints a batch of (repo-relative path, content) pairs. Appends findings
/// to `out` and returns the process exit code: 0 when clean, 1 otherwise.
int LintFiles(const std::vector<std::pair<std::string, std::string>>& files,
              std::vector<Diagnostic>* out);

/// Renders `d` in the canonical "file:line: rule-id: message" form.
std::string FormatDiagnostic(const Diagnostic& d);

}  // namespace kws::lint

#endif  // KWDB_TOOLS_KWSLINT_RULES_H_

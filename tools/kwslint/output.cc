#include "kwslint/output.h"

#include <cctype>
#include <cstdio>

namespace kws::lint {

namespace {

std::string Trim(const std::string& s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

}  // namespace

bool Baseline::Parse(const std::string& text, Baseline* out,
                     std::string* error) {
  size_t start = 0;
  int lineno = 0;
  while (start <= text.size()) {
    size_t nl = text.find('\n', start);
    const std::string line = Trim(
        nl == std::string::npos ? text.substr(start)
                                : text.substr(start, nl - start));
    start = nl == std::string::npos ? text.size() + 1 : nl + 1;
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    const size_t colon = line.rfind(": ");
    if (colon == std::string::npos || colon == 0 ||
        colon + 2 >= line.size()) {
      if (error != nullptr) {
        *error = "baseline line " + std::to_string(lineno) +
                 ": expected 'path: rule', got '" + line + "'";
      }
      return false;
    }
    out->entries_.insert(line.substr(0, colon) + "|" +
                         Trim(line.substr(colon + 2)));
  }
  return true;
}

std::vector<Diagnostic> ApplyBaseline(const std::vector<Diagnostic>& diags,
                                      const Baseline& baseline,
                                      size_t* suppressed) {
  std::vector<Diagnostic> kept;
  kept.reserve(diags.size());
  for (const Diagnostic& d : diags) {
    if (baseline.Matches(d)) {
      if (suppressed != nullptr) ++*suppressed;
    } else {
      kept.push_back(d);
    }
  }
  return kept;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string RenderJson(const std::vector<Diagnostic>& diags,
                       size_t file_count, size_t baseline_suppressed) {
  std::string out;
  out += "{\n";
  out += "  \"tool\": \"kwslint\",\n";
  out += "  \"version\": 2,\n";
  out += "  \"files\": " + std::to_string(file_count) + ",\n";
  out += "  \"baseline_suppressed\": " +
         std::to_string(baseline_suppressed) + ",\n";
  out += "  \"findings\": [";
  for (size_t i = 0; i < diags.size(); ++i) {
    const Diagnostic& d = diags[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"path\": \"" + JsonEscape(d.path) +
           "\", \"line\": " + std::to_string(d.line) + ", \"rule\": \"" +
           JsonEscape(d.rule) + "\", \"message\": \"" +
           JsonEscape(d.message) + "\"}";
  }
  out += diags.empty() ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

std::string RenderSarif(const std::vector<Diagnostic>& diags) {
  std::string out;
  out += "{\n";
  out +=
      "  \"$schema\": "
      "\"https://json.schemastore.org/sarif-2.1.0.json\",\n";
  out += "  \"version\": \"2.1.0\",\n";
  out += "  \"runs\": [{\n";
  out += "    \"tool\": {\"driver\": {\"name\": \"kwslint\", ";
  out += "\"rules\": [";
  const std::vector<std::string> ids = RuleIds();
  for (size_t i = 0; i < ids.size(); ++i) {
    if (i != 0) out += ", ";
    out += "{\"id\": \"" + JsonEscape(ids[i]) + "\"}";
  }
  out += "]}},\n";
  out += "    \"results\": [";
  for (size_t i = 0; i < diags.size(); ++i) {
    const Diagnostic& d = diags[i];
    out += i == 0 ? "\n" : ",\n";
    out += "      {\"ruleId\": \"" + JsonEscape(d.rule) +
           "\", \"level\": \"error\", \"message\": {\"text\": \"" +
           JsonEscape(d.message) +
           "\"}, \"locations\": [{\"physicalLocation\": "
           "{\"artifactLocation\": {\"uri\": \"" +
           JsonEscape(d.path) + "\"}, \"region\": {\"startLine\": " +
           std::to_string(d.line) + "}}}]}";
  }
  out += diags.empty() ? "]\n" : "\n    ]\n";
  out += "  }]\n";
  out += "}\n";
  return out;
}

}  // namespace kws::lint

#include "kwslint/rules.h"

#include <algorithm>
#include <cctype>
#include <functional>
#include <map>
#include <set>
#include <string_view>

#include "common/thread_pool.h"

namespace kws::lint {

namespace {

void Emit(const SourceFile& f, int line, const char* rule, std::string msg,
          std::vector<Diagnostic>* out) {
  if (f.Allowed(rule, line)) return;
  out->push_back(Diagnostic{f.path(), line, rule, std::move(msg)});
}

bool TokenIs(const std::vector<Token>& toks, size_t i, std::string_view s) {
  return i < toks.size() && toks[i].text == s;
}

/// True when tokens[i] is preceded by `std::` (member-access qualified).
bool PrecededByStd(const std::vector<Token>& toks, size_t i) {
  return i >= 2 && toks[i - 1].text == "::" && toks[i - 2].text == "std";
}

/// True when tokens[i] is preceded by `.` or `->` (a method call).
bool PrecededByMemberAccess(const std::vector<Token>& toks, size_t i) {
  if (i >= 1 && toks[i - 1].text == ".") return true;
  return i >= 2 && toks[i - 1].text == ">" && toks[i - 2].text == "-";
}

// --- raw-random -----------------------------------------------------------

void CheckRawRandom(const SourceFile& f, std::vector<Diagnostic>* out) {
  if (f.PathStartsWith("src/common/random.")) return;
  const std::vector<Token>& toks = f.tokens();
  for (size_t i = 0; i < toks.size(); ++i) {
    const std::string& t = toks[i].text;
    if (t == "srand") {
      Emit(f, toks[i].line, "raw-random",
           "srand seeds global state; all randomness must flow through "
           "kws::Rng with an explicit seed",
           out);
    } else if (t == "random_device" || t == "mt19937" || t == "mt19937_64" ||
               t == "default_random_engine") {
      Emit(f, toks[i].line, "raw-random",
           "std::" + t + " breaks deterministic replay; use kws::Rng / "
           "SplitSeed instead",
           out);
    } else if (t == "rand" &&
               (PrecededByStd(toks, i) || TokenIs(toks, i + 1, "("))) {
      Emit(f, toks[i].line, "raw-random",
           "rand() is nondeterministic across runs; use kws::Rng", out);
    } else if (t == "time" && TokenIs(toks, i + 1, "(") &&
               (TokenIs(toks, i + 2, "nullptr") ||
                TokenIs(toks, i + 2, "NULL") || TokenIs(toks, i + 2, "0")) &&
               TokenIs(toks, i + 3, ")")) {
      Emit(f, toks[i].line, "raw-random",
           "wall-clock seeds make runs irreproducible; use an explicit "
           "kws::Rng seed",
           out);
    }
  }
}

// --- no-throw -------------------------------------------------------------

void CheckNoThrow(const SourceFile& f, std::vector<Diagnostic>* out) {
  if (f.TopDir() != "src") return;
  for (const Token& t : f.tokens()) {
    if (t.text == "throw") {
      Emit(f, t.line, "no-throw",
           "library paths do not throw; return kws::Status / kws::Result",
           out);
    }
  }
}

// --- raw-thread -----------------------------------------------------------

void CheckRawThread(const SourceFile& f, std::vector<Diagnostic>* out) {
  if (f.PathStartsWith("src/common/thread_pool.")) return;
  const std::vector<Token>& toks = f.tokens();
  for (size_t i = 0; i < toks.size(); ++i) {
    const std::string& t = toks[i].text;
    if ((t == "thread" || t == "jthread" || t == "async") &&
        PrecededByStd(toks, i)) {
      Emit(f, toks[i].line, "raw-thread",
           "std::" + t + " outside ThreadPool loses the SplitSeed-per-"
           "worker determinism contract; use kws::ThreadPool",
           out);
    } else if (t == "detach" && PrecededByMemberAccess(toks, i) &&
               TokenIs(toks, i + 1, "(")) {
      Emit(f, toks[i].line, "raw-thread",
           "detached threads outlive their pool and break deterministic "
           "shutdown; join via kws::ThreadPool",
           out);
    }
  }
}

// --- no-iostream ----------------------------------------------------------

void CheckNoIostream(const SourceFile& f, std::vector<Diagnostic>* out) {
  if (f.TopDir() != "src") return;
  const std::vector<Token>& toks = f.tokens();
  for (size_t i = 0; i < toks.size(); ++i) {
    const std::string& t = toks[i].text;
    if ((t == "cout" || t == "cerr" || t == "clog") &&
        PrecededByStd(toks, i)) {
      Emit(f, toks[i].line, "no-iostream",
           "library code reports through kws::Status / kws::Metrics, not "
           "std::" + t,
           out);
    }
  }
}

// --- header-guard ---------------------------------------------------------

std::string ExpectedGuard(const std::string& path) {
  std::string rel = path;
  if (rel.rfind("src/", 0) == 0) rel = rel.substr(4);
  std::string guard = "KWDB_";
  for (char c : rel) {
    guard += std::isalnum(static_cast<unsigned char>(c))
                 ? static_cast<char>(
                       std::toupper(static_cast<unsigned char>(c)))
                 : '_';
  }
  guard += '_';
  return guard;
}

/// Splits a preprocessor line into (directive, first argument).
std::pair<std::string, std::string> ParseDirective(const std::string& code) {
  std::string directive;
  std::string arg;
  size_t i = code.find('#');
  if (i == std::string::npos) return {directive, arg};
  ++i;
  while (i < code.size() &&
         std::isspace(static_cast<unsigned char>(code[i]))) {
    ++i;
  }
  while (i < code.size() &&
         (std::isalnum(static_cast<unsigned char>(code[i])) ||
          code[i] == '_')) {
    directive += code[i++];
  }
  while (i < code.size() &&
         std::isspace(static_cast<unsigned char>(code[i]))) {
    ++i;
  }
  while (i < code.size() &&
         (std::isalnum(static_cast<unsigned char>(code[i])) ||
          code[i] == '_')) {
    arg += code[i++];
  }
  return {directive, arg};
}

void CheckHeaderGuard(const SourceFile& f, std::vector<Diagnostic>* out) {
  // Filename style applies to every linted file.
  const std::string& path = f.path();
  size_t slash = path.rfind('/');
  std::string base = slash == std::string::npos ? path : path.substr(slash + 1);
  bool snake = true;
  size_t dot = base.rfind('.');
  for (char c : base.substr(0, dot)) {
    if (!(std::islower(static_cast<unsigned char>(c)) ||
          std::isdigit(static_cast<unsigned char>(c)) || c == '_')) {
      snake = false;
    }
  }
  if (!snake) {
    Emit(f, 1, "header-guard",
         "filename '" + base + "' is not snake_case", out);
  }

  if (!f.IsHeader()) return;
  const std::string guard = ExpectedGuard(path);
  int ifndef_line = 0;
  int pp_index = 0;  // among non-continuation preprocessor lines
  bool guard_ok = true;
  for (size_t li = 0; li < f.lines().size(); ++li) {
    const Line& line = f.lines()[li];
    if (!line.preprocessor) continue;
    std::string_view code(line.code);
    if (code.find('#') == std::string_view::npos) continue;  // continuation
    auto [directive, arg] = ParseDirective(line.code);
    if (directive == "pragma" && arg == "once") {
      Emit(f, static_cast<int>(li) + 1, "header-guard",
           "#pragma once drifts from the project's #ifndef " + guard +
               " guard convention",
           out);
    }
    if (pp_index == 0) {
      ifndef_line = static_cast<int>(li) + 1;
      if (directive != "ifndef" || arg != guard) {
        Emit(f, ifndef_line, "header-guard",
             "first directive must be '#ifndef " + guard + "'", out);
        guard_ok = false;
      }
    } else if (pp_index == 1 && guard_ok) {
      if (directive != "define" || arg != guard) {
        Emit(f, static_cast<int>(li) + 1, "header-guard",
             "'#ifndef " + guard + "' must be followed by '#define " +
                 guard + "'",
             out);
      }
    }
    ++pp_index;
  }
  if (pp_index == 0) {
    Emit(f, 1, "header-guard", "missing include guard '#ifndef " + guard + "'",
         out);
  }
}

// --- mutex-style ----------------------------------------------------------

bool MutexNameOk(const std::string& name) {
  if (name == "mu_") return true;
  return name.size() >= 4 &&
         name.compare(name.size() - 4, 4, "_mu_") == 0;
}

void CheckMutexStyle(const SourceFile& f, std::vector<Diagnostic>* out) {
  const std::vector<Token>& toks = f.tokens();
  for (size_t i = 0; i < toks.size(); ++i) {
    const std::string& t = toks[i].text;
    // Field naming: `std::mutex name;` declarations in headers (locals in
    // .cc bodies are scoped and unexported, so only headers are checked).
    if (f.IsHeader() &&
        (t == "mutex" || t == "shared_mutex" || t == "recursive_mutex") &&
        PrecededByStd(toks, i) && i + 2 < toks.size()) {
      const Token& name = toks[i + 1];
      bool is_decl = !name.text.empty() &&
                     (std::isalpha(static_cast<unsigned char>(name.text[0])) ||
                      name.text[0] == '_') &&
                     TokenIs(toks, i + 2, ";");
      if (is_decl && !MutexNameOk(name.text)) {
        Emit(f, name.line, "mutex-style",
             "mutex field '" + name.text +
                 "' must be named 'mu_' or end in '_mu_' so guarded state "
                 "is greppable",
             out);
      }
    }
    // Manual lock()/unlock(): RAII guards only.
    if ((t == "lock" || t == "unlock") && PrecededByMemberAccess(toks, i) &&
        TokenIs(toks, i + 1, "(") && TokenIs(toks, i + 2, ")")) {
      Emit(f, toks[i].line, "mutex-style",
           "manual " + t + "() pairs leak on early return; use "
           "std::lock_guard or std::scoped_lock",
           out);
    }
  }
}

// --- doc-comment ----------------------------------------------------------

/// Collapses whitespace runs in `s` to single spaces and trims.
std::string NormalizeWs(const std::string& s) {
  std::string out;
  bool pending_space = false;
  for (char c : s) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      pending_space = !out.empty();
      continue;
    }
    if (pending_space) out += ' ';
    pending_space = false;
    out += c;
  }
  return out;
}

std::vector<std::string> SplitWords(const std::string& s) {
  std::vector<std::string> words;
  std::string cur;
  for (char c : s) {
    if (c == ' ') {
      if (!cur.empty()) words.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) words.push_back(cur);
  return words;
}

/// Removes template-argument lists `<...>` so a `(` reliably signals a
/// function declaration (`std::function<void()> f;` must not look like
/// one). `operator<`/`<<`/`<=` are kept literal.
std::string StripAngles(const std::string& s) {
  std::string out;
  int depth = 0;
  for (size_t i = 0; i < s.size(); ++i) {
    char c = s[i];
    bool after_operator =
        i >= 8 && s.compare(i - 8, 8, "operator") == 0;
    if (c == '<' && !after_operator) {
      ++depth;
      continue;
    }
    if (c == '<' && after_operator && depth == 0) {
      out += c;
      continue;
    }
    if (c == '>' && depth > 0 && (i == 0 || s[i - 1] != '-')) {
      --depth;
      continue;
    }
    if (depth == 0) out += c;
  }
  return out;
}

/// Skips a leading `template <...>` prefix of a normalized statement.
std::string SkipTemplatePrefix(const std::string& s) {
  if (s.rfind("template", 0) != 0) return s;
  size_t i = s.find('<');
  if (i == std::string::npos) return s;
  int depth = 0;
  for (; i < s.size(); ++i) {
    if (s[i] == '<') ++depth;
    if (s[i] == '>' && --depth == 0) {
      ++i;
      break;
    }
  }
  while (i < s.size() && s[i] == ' ') ++i;
  return s.substr(i);
}

const std::set<std::string>& DeclQualifiers() {
  static const std::set<std::string> kQuals = {
      "inline",   "static",   "constexpr", "consteval", "constinit",
      "virtual",  "explicit", "extern",    "mutable",   "const",
  };
  return kQuals;
}

/// First word of `s` that is not a qualifier or `[[attribute]]`.
std::string FirstKeyword(const std::string& s) {
  for (const std::string& w : SplitWords(s)) {
    if (DeclQualifiers().count(w) != 0) continue;
    if (w.rfind("[[", 0) == 0) continue;
    return w;
  }
  return std::string();
}

/// True when the line immediately above `stmt_line` (1-based) carries a
/// Doxygen comment.
bool HasDocAbove(const SourceFile& f, int stmt_line) {
  int idx = stmt_line - 2;  // 0-based index of the preceding line
  return idx >= 0 && f.lines()[static_cast<size_t>(idx)].doxygen;
}

struct Ctx {
  enum Kind { kNamespace, kClass, kOpaque };
  Kind kind;
  bool public_access;
};

void CheckDocComment(const SourceFile& f, std::vector<Diagnostic>* out) {
  if (f.TopDir() != "src" || !f.IsHeader()) return;

  // Macros: every first #define of a name needs a doc, guards excepted.
  std::set<std::string> seen_macros;
  for (size_t li = 0; li < f.lines().size(); ++li) {
    const Line& line = f.lines()[li];
    if (!line.preprocessor) continue;
    if (line.code.find('#') == std::string::npos) continue;
    auto [directive, arg] = ParseDirective(line.code);
    if (directive != "define" || arg.empty()) continue;
    if (arg.size() >= 3 && arg.compare(arg.size() - 3, 3, "_H_") == 0) {
      continue;  // include guard
    }
    if (!seen_macros.insert(arg).second) continue;  // #else redefinition
    int probe = static_cast<int>(li) - 1;
    while (probe >= 0 && f.lines()[static_cast<size_t>(probe)].preprocessor) {
      --probe;
    }
    if (probe < 0 || !f.lines()[static_cast<size_t>(probe)].doxygen) {
      Emit(f, static_cast<int>(li) + 1, "doc-comment",
           "public macro " + arg + " needs a /// doc comment", out);
    }
  }

  // Statement machine over the blanked code view. Preprocessor lines are
  // invisible to it (their braces/semicolons are not code structure).
  std::vector<Ctx> stack;
  std::string stmt;
  int stmt_line = 0;
  int paren = 0;

  auto at_public_scope = [&]() {
    if (stack.empty()) return true;  // file scope
    const Ctx& top = stack.back();
    if (top.kind == Ctx::kNamespace) return true;
    return top.kind == Ctx::kClass && top.public_access;
  };
  auto at_namespace_scope = [&]() {
    return stack.empty() || stack.back().kind == Ctx::kNamespace;
  };
  auto reset_stmt = [&]() {
    stmt.clear();
    stmt_line = 0;
  };

  auto require_doc = [&](int line, const std::string& what) {
    if (line > 0 && !HasDocAbove(f, line)) {
      Emit(f, line, "doc-comment",
           "public " + what + " needs a /// doc comment", out);
    }
  };

  auto end_statement = [&]() {
    std::string norm = NormalizeWs(stmt);
    const int line = stmt_line;
    reset_stmt();
    if (norm.empty() || !at_public_scope()) return;
    if (norm.find("= default") != std::string::npos ||
        norm.find("=default") != std::string::npos ||
        norm.find("= delete") != std::string::npos ||
        norm.find("=delete") != std::string::npos) {
      return;
    }
    norm = SkipTemplatePrefix(norm);
    const std::string kw = FirstKeyword(norm);
    if (kw == "friend" || kw == "static_assert" || kw.empty()) return;
    if (kw == "using" || kw == "typedef") {
      // Type aliases are API at namespace scope; class-scope usings
      // (iterator traits, base-ctor pulls) are implementation detail.
      if (at_namespace_scope()) require_doc(line, "type alias");
      return;
    }
    if (kw == "class" || kw == "struct" || kw == "enum" || kw == "union" ||
        kw == "namespace") {
      return;  // forward declaration
    }
    // Function declaration iff a '(' survives template-stripping and no
    // '=' precedes it (that would be a variable initializer calling a
    // function, e.g. `constexpr double kInf = f();`); data members and
    // variables are exempt.
    const std::string stripped = StripAngles(norm);
    const size_t paren_pos = stripped.find('(');
    const size_t eq = stripped.find('=');
    if (paren_pos != std::string::npos &&
        (eq == std::string::npos || paren_pos < eq)) {
      require_doc(line, "function declaration");
    }
  };

  auto classify_open = [&]() {
    std::string norm = SkipTemplatePrefix(NormalizeWs(stmt));
    const int line = stmt_line;
    reset_stmt();
    const std::string kw = FirstKeyword(norm);
    if (kw == "namespace" || norm.rfind("extern", 0) == 0 || kw.empty()) {
      stack.push_back(Ctx{Ctx::kNamespace, true});
      return;
    }
    if (kw == "class" || kw == "struct" || kw == "enum" || kw == "union") {
      if (at_public_scope() && line > 0 && !HasDocAbove(f, line)) {
        Emit(f, line, "doc-comment",
             "public type definition needs a /// doc comment", out);
      }
      if (kw == "class") {
        stack.push_back(Ctx{Ctx::kClass, false});
      } else if (kw == "struct") {
        stack.push_back(Ctx{Ctx::kClass, true});
      } else {
        stack.push_back(Ctx{Ctx::kOpaque, false});
      }
      return;
    }
    stack.push_back(Ctx{Ctx::kOpaque, false});  // function body, init, ...
  };

  for (size_t li = 0; li < f.lines().size(); ++li) {
    const Line& line = f.lines()[li];
    if (line.preprocessor) continue;
    const int lineno = static_cast<int>(li) + 1;
    const std::string& code = line.code;
    for (size_t i = 0; i < code.size(); ++i) {
      const char c = code[i];
      if (!stack.empty() && stack.back().kind == Ctx::kOpaque) {
        if (c == '{') stack.push_back(Ctx{Ctx::kOpaque, false});
        if (c == '}') stack.pop_back();
        continue;
      }
      if (c == '(') {
        ++paren;
        stmt += c;
        continue;
      }
      if (c == ')') {
        --paren;
        stmt += c;
        continue;
      }
      if (c == '{' && paren == 0) {
        classify_open();
        continue;
      }
      if (c == '{') {  // brace inside parens: lambda body / brace-init
        stack.push_back(Ctx{Ctx::kOpaque, false});
        continue;
      }
      if (c == '}') {
        if (!stack.empty()) stack.pop_back();
        reset_stmt();
        continue;
      }
      if (c == ';' && paren == 0) {
        end_statement();
        continue;
      }
      if (c == ':' && !stack.empty() && stack.back().kind == Ctx::kClass &&
          (i + 1 >= code.size() || code[i + 1] != ':') &&
          (i == 0 || code[i - 1] != ':')) {
        std::string norm = NormalizeWs(stmt);
        if (norm == "public" || norm == "private" || norm == "protected") {
          stack.back().public_access = norm == "public";
          reset_stmt();
          continue;
        }
      }
      if (stmt_line == 0 && !std::isspace(static_cast<unsigned char>(c))) {
        stmt_line = lineno;
      }
      stmt += c;
    }
    if (!stmt.empty()) stmt += ' ';  // line break inside a statement
  }
}

// --- metric-name ----------------------------------------------------------

/// The registry/tracer entry points whose first string-literal argument
/// is a metric or span name.
const std::set<std::string>& MetricNameCalls() {
  static const std::set<std::string> kCalls = {
      "GetCounter",         "GetHistogram", "GetWindowedCounter",
      "GetWindowedHistogram", "BeginSpan",  "TraceSpan",
      "AddCounter",         "AddEvent",
  };
  return kCalls;
}

bool MetricNameOk(const std::string& name) {
  if (name.empty()) return false;
  for (char c : name) {
    const unsigned char u = static_cast<unsigned char>(c);
    if (!(std::islower(u) || std::isdigit(u) || c == '_' || c == '.')) {
      return false;
    }
  }
  return true;
}

bool IsIdentToken(const Token& t) {
  return !t.text.empty() &&
         (std::isalpha(static_cast<unsigned char>(t.text[0])) ||
          t.text[0] == '_');
}

void CheckMetricName(const SourceFile& f, std::vector<Diagnostic>* out) {
  const std::vector<Token>& toks = f.tokens();
  for (size_t i = 0; i < toks.size(); ++i) {
    if (MetricNameCalls().count(toks[i].text) == 0) continue;
    // Call forms: `Name(...)`, or the RAII declaration
    // `TraceSpan var(tracer, "name")` with the variable between.
    size_t open = i + 1;
    if (TokenIs(toks, open, "(")) {
      // direct call
    } else if (toks[i].text == "TraceSpan" && open < toks.size() &&
               IsIdentToken(toks[open]) && TokenIs(toks, open + 1, "(")) {
      ++open;
    } else {
      continue;  // declaration, pointer type, forward reference, ...
    }
    // The name is the call's first string literal. The code view blanks
    // literal interiors, so a literal is two consecutive `"` tokens; the
    // raw text between their columns (same physical line only) is the
    // name. The scan runs to the call's matching close paren, so a
    // literal any number of wrapped lines below the open paren is still
    // checked (three-line clang-format wraps used to slip through).
    int call_depth = 1;
    for (size_t j = open + 1; j < toks.size() && call_depth > 0; ++j) {
      const std::string& t = toks[j].text;
      if (t == "(") {
        ++call_depth;
        continue;
      }
      if (t == ")") {
        --call_depth;
        continue;
      }
      if (t == ";") break;
      if (t != "\"") continue;
      if (j + 1 >= toks.size() || toks[j + 1].text != "\"" ||
          toks[j + 1].line != toks[j].line) {
        break;  // unterminated on this line (continuation); skip
      }
      const std::string& raw =
          f.lines()[static_cast<size_t>(toks[j].line) - 1].raw;
      const size_t begin = static_cast<size_t>(toks[j].col) + 1;
      const size_t end = static_cast<size_t>(toks[j + 1].col);
      const std::string name = raw.substr(begin, end - begin);
      if (!MetricNameOk(name)) {
        Emit(f, toks[j].line, "metric-name",
             "metric/span name \"" + name +
                 "\" must be dotted lowercase ([a-z0-9_.]+) so dashboards "
                 "and the trace renderer can rely on one naming scheme",
             out);
      }
      break;
    }
  }
}

// --- status-discard -------------------------------------------------------

/// Finds bare expression statements `chain.Foo(...);` where `Foo` is in
/// the model's Status/Result return-type index. The compiler's
/// [[nodiscard]] on Status/Result is the authoritative check; this rule
/// lets CI catch the same defect without a compile.
void CheckStatusDiscard(const SourceFile& f, const ProjectModel& model,
                        std::vector<Diagnostic>* out) {
  const std::vector<Token>& toks = f.tokens();
  bool stmt_start = true;
  for (size_t i = 0; i < toks.size(); ++i) {
    const std::string& t = toks[i].text;
    if (t == ";" || t == "{" || t == "}") {
      stmt_start = true;
      continue;
    }
    if (!stmt_start) continue;
    stmt_start = false;
    if (!IsIdentToken(toks[i])) continue;
    // Parse the access chain `ident (('.'|'->'|'::') ident)*`; the last
    // identifier names the called function. Two adjacent identifiers
    // (`return Foo`, `Status s`) end the chain before the call, so
    // consumed results never match.
    size_t j = i;
    std::string last = toks[j].text;
    while (true) {
      if ((TokenIs(toks, j + 1, ".") || TokenIs(toks, j + 1, "::")) &&
          j + 2 < toks.size() && IsIdentToken(toks[j + 2])) {
        j += 2;
        last = toks[j].text;
        continue;
      }
      if (TokenIs(toks, j + 1, "-") && TokenIs(toks, j + 2, ">") &&
          j + 3 < toks.size() && IsIdentToken(toks[j + 3])) {
        j += 3;
        last = toks[j].text;
        continue;
      }
      break;
    }
    if (!TokenIs(toks, j + 1, "(")) continue;
    if (!model.IsStatusFunction(last)) continue;
    // Discarded iff the statement ends right after the call's close paren.
    int depth = 0;
    size_t k = j + 1;
    for (; k < toks.size(); ++k) {
      if (toks[k].text == "(") ++depth;
      if (toks[k].text == ")" && --depth == 0) break;
    }
    if (k < toks.size() && TokenIs(toks, k + 1, ";")) {
      Emit(f, toks[j].line, "status-discard",
           last + "() returns kws::Status/Result; check it, propagate it, "
           "or discard explicitly with (void)",
           out);
    }
  }
}

// --- unordered-iteration --------------------------------------------------

void CheckUnorderedIteration(const SourceFile& f, const ProjectModel& model,
                             std::vector<Diagnostic>* out) {
  if (f.TopDir() != "src") return;
  const std::set<std::string>& names = model.UnorderedNamesVisible(f.path());
  if (names.empty()) return;
  const std::vector<Token>& toks = f.tokens();
  for (size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].text != "for" || !TokenIs(toks, i + 1, "(")) continue;
    // Range-for: `for ( decl : expr )` — find the depth-1 ':' (the
    // tokenizer fuses '::', so scope operators never match) and the
    // matching close paren.
    int depth = 0;
    size_t colon = 0;
    size_t close = 0;
    for (size_t j = i + 1; j < toks.size(); ++j) {
      const std::string& t = toks[j].text;
      if (t == "(") {
        ++depth;
      } else if (t == ")") {
        if (--depth == 0) {
          close = j;
          break;
        }
      } else if (t == ":" && depth == 1 && colon == 0) {
        colon = j;
      }
    }
    if (colon == 0 || close == 0 || close <= colon + 1) continue;
    // Only a range expression that is a plain id-expression (possibly a
    // member chain) can be resolved against the declaration index; calls
    // and subscripts yield values the index does not describe.
    const Token& range_end = toks[close - 1];
    if (!IsIdentToken(range_end)) continue;
    if (names.count(range_end.text) == 0) continue;
    Emit(f, range_end.line, "unordered-iteration",
         "range-for over unordered container '" + range_end.text +
             "' is iteration-order nondeterministic; iterate a sorted "
             "snapshot on result paths (or justify with an allow)",
         out);
  }
}

// --- deadline-loop --------------------------------------------------------

/// Flags outermost while/for loops inside a .cc function definition that
/// takes a Deadline/DeadlineChecker parameter when the loop neither polls
/// nor forwards any deadline-ish local/parameter. Nested loops inherit
/// the enclosing loop's verdict (an outer poll bounds them).
void CheckDeadlineLoop(const SourceFile& f, std::vector<Diagnostic>* out) {
  if (f.TopDir() != "src" || f.IsHeader()) return;
  const std::vector<Token>& toks = f.tokens();
  const size_t n = toks.size();
  for (size_t i = 0; i < n; ++i) {
    if (toks[i].text != "{") continue;
    // A function definition: `( params )` [qualifiers] `{`.
    size_t p = i;
    while (p > 0 && (toks[p - 1].text == "const" ||
                     toks[p - 1].text == "noexcept" ||
                     toks[p - 1].text == "override" ||
                     toks[p - 1].text == "mutable")) {
      --p;
    }
    if (p == 0 || toks[p - 1].text != ")") continue;
    size_t open = n;
    int d = 0;
    for (size_t k = p; k-- > 0;) {
      if (toks[k].text == ")") ++d;
      if (toks[k].text == "(" && --d == 0) {
        open = k;
        break;
      }
    }
    if (open == n || open == 0) continue;
    const std::string& before = toks[open - 1].text;
    if (before == "if" || before == "for" || before == "while" ||
        before == "switch" || before == "catch") {
      continue;
    }
    bool has_deadline = false;
    for (size_t k = open + 1; k + 1 < p; ++k) {
      if (toks[k].text == "Deadline" || toks[k].text == "DeadlineChecker") {
        has_deadline = true;
        break;
      }
    }
    if (!has_deadline) continue;
    size_t body_end = n;
    int bd = 0;
    for (size_t k = i; k < n; ++k) {
      if (toks[k].text == "{") ++bd;
      if (toks[k].text == "}" && --bd == 0) {
        body_end = k;
        break;
      }
    }
    if (body_end == n) continue;
    // Deadline-ish names: parameters plus locals declared in the body
    // (`DeadlineChecker checker(...)`). `Expired` covers member fields.
    std::set<std::string> names = {"Expired"};
    auto collect = [&](size_t from, size_t to) {
      for (size_t k = from; k < to; ++k) {
        if (toks[k].text != "Deadline" &&
            toks[k].text != "DeadlineChecker") {
          continue;
        }
        size_t m = k + 1;
        while (m < to && (toks[m].text == "&" || toks[m].text == "*" ||
                          toks[m].text == "const")) {
          ++m;
        }
        if (m < to && IsIdentToken(toks[m])) names.insert(toks[m].text);
      }
    };
    collect(open + 1, p - 1);
    collect(i + 1, body_end);
    // Walk the body's outermost loops.
    for (size_t k = i + 1; k < body_end; ++k) {
      const std::string& t = toks[k].text;
      if ((t != "while" && t != "for") || !TokenIs(toks, k + 1, "(")) {
        continue;
      }
      size_t hdr_end = n;
      int hd = 0;
      for (size_t m = k + 1; m < body_end; ++m) {
        if (toks[m].text == "(") ++hd;
        if (toks[m].text == ")" && --hd == 0) {
          hdr_end = m;
          break;
        }
      }
      if (hdr_end == n) break;
      size_t loop_end = hdr_end;
      if (TokenIs(toks, hdr_end + 1, "{")) {
        int ld = 0;
        for (size_t m = hdr_end + 1; m < body_end; ++m) {
          if (toks[m].text == "{") ++ld;
          if (toks[m].text == "}" && --ld == 0) {
            loop_end = m;
            break;
          }
        }
      } else {
        while (loop_end < body_end && toks[loop_end].text != ";") {
          ++loop_end;
        }
      }
      bool polls = false;
      for (size_t m = k; m <= loop_end && m < body_end; ++m) {
        if (names.count(toks[m].text) != 0) {
          polls = true;
          break;
        }
      }
      if (!polls) {
        Emit(f, toks[k].line, "deadline-loop",
             "loop in a Deadline-taking function never polls or forwards "
             "the deadline; add a DeadlineChecker cancellation point (or "
             "justify with an allow if provably bounded)",
             out);
      }
      k = loop_end;
    }
    i = body_end;
  }
}

// --- allow-justification --------------------------------------------------

void CheckAllowJustification(const SourceFile& f,
                             std::vector<Diagnostic>* out) {
  for (size_t li = 0; li < f.lines().size(); ++li) {
    const std::string& c = f.lines()[li].comment;
    if (c.find("kwslint:") == std::string::npos) continue;
    if (c.find("allow(") == std::string::npos) continue;
    // Strip every `kwslint: [file-]allow(...)` annotation; whatever word
    // content remains is the justification.
    std::string rest = c;
    size_t pos;
    while ((pos = rest.find("kwslint:")) != std::string::npos) {
      size_t close = rest.find(')', pos);
      if (close == std::string::npos) {
        rest.erase(pos);
        break;
      }
      rest.erase(pos, close - pos + 1);
    }
    bool has_word = false;
    for (char ch : rest) {
      if (std::isalnum(static_cast<unsigned char>(ch))) {
        has_word = true;
        break;
      }
    }
    if (!has_word) {
      Emit(f, static_cast<int>(li) + 1, "allow-justification",
           "kwslint allow() needs a short justification in the same "
           "comment (e.g. `// benches need wall-clock -- kwslint: "
           "allow(raw-random)`)",
           out);
    }
  }
}

}  // namespace

// --- include-cycle --------------------------------------------------------

void CheckIncludeCycles(const std::vector<SourceFile>& files,
                        const ProjectModel& model,
                        std::vector<Diagnostic>* out) {
  const std::map<std::string, std::vector<IncludeEdge>>& g =
      model.IncludeGraph();
  // Tarjan SCC, visiting roots in sorted path order so component
  // discovery (and thus reporting) is deterministic.
  std::map<std::string, int> index;
  std::map<std::string, int> low;
  std::set<std::string> on_stack;
  std::vector<std::string> stack;
  std::vector<std::vector<std::string>> cycles;
  int counter = 0;
  std::function<void(const std::string&)> dfs = [&](const std::string& v) {
    index[v] = low[v] = counter++;
    stack.push_back(v);
    on_stack.insert(v);
    auto it = g.find(v);
    if (it != g.end()) {
      for (const IncludeEdge& e : it->second) {
        if (index.count(e.target) == 0) {
          dfs(e.target);
          low[v] = std::min(low[v], low[e.target]);
        } else if (on_stack.count(e.target) != 0) {
          low[v] = std::min(low[v], index[e.target]);
        }
      }
    }
    if (low[v] == index[v]) {
      std::vector<std::string> scc;
      while (true) {
        std::string w = stack.back();
        stack.pop_back();
        on_stack.erase(w);
        scc.push_back(w);
        if (w == v) break;
      }
      bool self_loop = false;
      if (scc.size() == 1 && it != g.end()) {
        for (const IncludeEdge& e : it->second) {
          if (e.target == v) self_loop = true;
        }
      }
      if (scc.size() > 1 || self_loop) {
        std::sort(scc.begin(), scc.end());
        cycles.push_back(std::move(scc));
      }
    }
  };
  for (const auto& [node, edges] : g) {
    (void)edges;
    if (index.count(node) == 0) dfs(node);
  }

  std::map<std::string, const SourceFile*> by_path;
  for (const SourceFile& f : files) by_path[f.path()] = &f;
  for (const std::vector<std::string>& scc : cycles) {
    const std::string& rep = scc.front();
    std::set<std::string> members(scc.begin(), scc.end());
    // Anchor the diagnostic on rep's first #include into the component.
    int line = 1;
    auto it = g.find(rep);
    if (it != g.end()) {
      for (const IncludeEdge& e : it->second) {
        if (members.count(e.target) != 0) {
          line = e.line;
          break;
        }
      }
    }
    std::string chain;
    for (const std::string& m : scc) chain += m + " -> ";
    chain += rep;
    Diagnostic d{rep, line, "include-cycle",
                 "src/ include cycle: " + chain +
                     "; break it with a forward declaration or an "
                     "interface split"};
    auto fit = by_path.find(rep);
    if (fit != by_path.end() && fit->second->Allowed(d.rule, line)) continue;
    out->push_back(std::move(d));
  }
}

std::vector<std::string> RuleIds() {
  return {"raw-random",     "no-throw",
          "raw-thread",     "no-iostream",
          "doc-comment",    "header-guard",
          "mutex-style",    "metric-name",
          "status-discard", "unordered-iteration",
          "deadline-loop",  "allow-justification",
          "include-cycle"};
}

std::vector<Diagnostic> RunRules(const SourceFile& file,
                                 const ProjectModel& model) {
  std::vector<Diagnostic> out;
  CheckRawRandom(file, &out);
  CheckNoThrow(file, &out);
  CheckRawThread(file, &out);
  CheckNoIostream(file, &out);
  CheckDocComment(file, &out);
  CheckHeaderGuard(file, &out);
  CheckMutexStyle(file, &out);
  CheckMetricName(file, &out);
  CheckStatusDiscard(file, model, &out);
  CheckUnorderedIteration(file, model, &out);
  CheckDeadlineLoop(file, &out);
  CheckAllowJustification(file, &out);
  std::sort(out.begin(), out.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return out;
}

std::vector<Diagnostic> RunRules(const SourceFile& file) {
  return RunRules(file, ProjectModel::Build({file}));
}

std::vector<Diagnostic> LintProject(
    const std::vector<std::pair<std::string, std::string>>& files,
    int jobs) {
  std::vector<std::pair<std::string, std::string>> sorted = files;
  std::sort(sorted.begin(), sorted.end());
  const size_t n = sorted.size();

  // Pass 0: parse. Static striding (item i -> worker i % size) makes the
  // file->worker assignment a pure function of the sorted list, and each
  // worker writes only its own slots, so no synchronization is needed.
  std::vector<SourceFile> parsed(n);
  auto parse_stride = [&](size_t w, size_t stride) {
    for (size_t i = w; i < n; i += stride) {
      parsed[i] = SourceFile::Parse(sorted[i].first, sorted[i].second);
    }
  };
  if (jobs > 1) {
    ThreadPool pool(static_cast<size_t>(jobs));
    pool.RunOnAll([&](size_t w) { parse_stride(w, pool.size()); });
  } else {
    parse_stride(0, 1);
  }

  // Pass 1: the cross-file model (serial; cheap token scans).
  const ProjectModel model = ProjectModel::Build(parsed);

  // Pass 2: per-file rules, same deterministic striding.
  std::vector<std::vector<Diagnostic>> per(n);
  auto rules_stride = [&](size_t w, size_t stride) {
    for (size_t i = w; i < n; i += stride) {
      per[i] = RunRules(parsed[i], model);
    }
  };
  if (jobs > 1) {
    ThreadPool pool(static_cast<size_t>(jobs));
    pool.RunOnAll([&](size_t w) { rules_stride(w, pool.size()); });
  } else {
    rules_stride(0, 1);
  }

  std::vector<Diagnostic> out;
  for (size_t i = 0; i < n; ++i) {
    out.insert(out.end(), per[i].begin(), per[i].end());
  }
  CheckIncludeCycles(parsed, model, &out);
  std::sort(out.begin(), out.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              if (a.path != b.path) return a.path < b.path;
              if (a.line != b.line) return a.line < b.line;
              if (a.rule != b.rule) return a.rule < b.rule;
              return a.message < b.message;
            });
  return out;
}

int LintFiles(const std::vector<std::pair<std::string, std::string>>& files,
              std::vector<Diagnostic>* out) {
  std::vector<Diagnostic> diags = LintProject(files, /*jobs=*/1);
  out->insert(out->end(), diags.begin(), diags.end());
  return diags.empty() ? 0 : 1;
}

std::string FormatDiagnostic(const Diagnostic& d) {
  return d.path + ":" + std::to_string(d.line) + ": " + d.rule + ": " +
         d.message;
}

}  // namespace kws::lint

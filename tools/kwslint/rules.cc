#include "kwslint/rules.h"

#include <algorithm>
#include <cctype>
#include <set>
#include <string_view>

namespace kws::lint {

namespace {

void Emit(const SourceFile& f, int line, const char* rule, std::string msg,
          std::vector<Diagnostic>* out) {
  if (f.Allowed(rule, line)) return;
  out->push_back(Diagnostic{f.path(), line, rule, std::move(msg)});
}

bool TokenIs(const std::vector<Token>& toks, size_t i, std::string_view s) {
  return i < toks.size() && toks[i].text == s;
}

/// True when tokens[i] is preceded by `std::` (member-access qualified).
bool PrecededByStd(const std::vector<Token>& toks, size_t i) {
  return i >= 2 && toks[i - 1].text == "::" && toks[i - 2].text == "std";
}

/// True when tokens[i] is preceded by `.` or `->` (a method call).
bool PrecededByMemberAccess(const std::vector<Token>& toks, size_t i) {
  if (i >= 1 && toks[i - 1].text == ".") return true;
  return i >= 2 && toks[i - 1].text == ">" && toks[i - 2].text == "-";
}

// --- raw-random -----------------------------------------------------------

void CheckRawRandom(const SourceFile& f, std::vector<Diagnostic>* out) {
  if (f.PathStartsWith("src/common/random.")) return;
  const std::vector<Token>& toks = f.tokens();
  for (size_t i = 0; i < toks.size(); ++i) {
    const std::string& t = toks[i].text;
    if (t == "srand") {
      Emit(f, toks[i].line, "raw-random",
           "srand seeds global state; all randomness must flow through "
           "kws::Rng with an explicit seed",
           out);
    } else if (t == "random_device" || t == "mt19937" || t == "mt19937_64" ||
               t == "default_random_engine") {
      Emit(f, toks[i].line, "raw-random",
           "std::" + t + " breaks deterministic replay; use kws::Rng / "
           "SplitSeed instead",
           out);
    } else if (t == "rand" &&
               (PrecededByStd(toks, i) || TokenIs(toks, i + 1, "("))) {
      Emit(f, toks[i].line, "raw-random",
           "rand() is nondeterministic across runs; use kws::Rng", out);
    } else if (t == "time" && TokenIs(toks, i + 1, "(") &&
               (TokenIs(toks, i + 2, "nullptr") ||
                TokenIs(toks, i + 2, "NULL") || TokenIs(toks, i + 2, "0")) &&
               TokenIs(toks, i + 3, ")")) {
      Emit(f, toks[i].line, "raw-random",
           "wall-clock seeds make runs irreproducible; use an explicit "
           "kws::Rng seed",
           out);
    }
  }
}

// --- no-throw -------------------------------------------------------------

void CheckNoThrow(const SourceFile& f, std::vector<Diagnostic>* out) {
  if (f.TopDir() != "src") return;
  for (const Token& t : f.tokens()) {
    if (t.text == "throw") {
      Emit(f, t.line, "no-throw",
           "library paths do not throw; return kws::Status / kws::Result",
           out);
    }
  }
}

// --- raw-thread -----------------------------------------------------------

void CheckRawThread(const SourceFile& f, std::vector<Diagnostic>* out) {
  if (f.PathStartsWith("src/common/thread_pool.")) return;
  const std::vector<Token>& toks = f.tokens();
  for (size_t i = 0; i < toks.size(); ++i) {
    const std::string& t = toks[i].text;
    if ((t == "thread" || t == "jthread" || t == "async") &&
        PrecededByStd(toks, i)) {
      Emit(f, toks[i].line, "raw-thread",
           "std::" + t + " outside ThreadPool loses the SplitSeed-per-"
           "worker determinism contract; use kws::ThreadPool",
           out);
    } else if (t == "detach" && PrecededByMemberAccess(toks, i) &&
               TokenIs(toks, i + 1, "(")) {
      Emit(f, toks[i].line, "raw-thread",
           "detached threads outlive their pool and break deterministic "
           "shutdown; join via kws::ThreadPool",
           out);
    }
  }
}

// --- no-iostream ----------------------------------------------------------

void CheckNoIostream(const SourceFile& f, std::vector<Diagnostic>* out) {
  if (f.TopDir() != "src") return;
  const std::vector<Token>& toks = f.tokens();
  for (size_t i = 0; i < toks.size(); ++i) {
    const std::string& t = toks[i].text;
    if ((t == "cout" || t == "cerr" || t == "clog") &&
        PrecededByStd(toks, i)) {
      Emit(f, toks[i].line, "no-iostream",
           "library code reports through kws::Status / kws::Metrics, not "
           "std::" + t,
           out);
    }
  }
}

// --- header-guard ---------------------------------------------------------

std::string ExpectedGuard(const std::string& path) {
  std::string rel = path;
  if (rel.rfind("src/", 0) == 0) rel = rel.substr(4);
  std::string guard = "KWDB_";
  for (char c : rel) {
    guard += std::isalnum(static_cast<unsigned char>(c))
                 ? static_cast<char>(
                       std::toupper(static_cast<unsigned char>(c)))
                 : '_';
  }
  guard += '_';
  return guard;
}

/// Splits a preprocessor line into (directive, first argument).
std::pair<std::string, std::string> ParseDirective(const std::string& code) {
  std::string directive;
  std::string arg;
  size_t i = code.find('#');
  if (i == std::string::npos) return {directive, arg};
  ++i;
  while (i < code.size() &&
         std::isspace(static_cast<unsigned char>(code[i]))) {
    ++i;
  }
  while (i < code.size() &&
         (std::isalnum(static_cast<unsigned char>(code[i])) ||
          code[i] == '_')) {
    directive += code[i++];
  }
  while (i < code.size() &&
         std::isspace(static_cast<unsigned char>(code[i]))) {
    ++i;
  }
  while (i < code.size() &&
         (std::isalnum(static_cast<unsigned char>(code[i])) ||
          code[i] == '_')) {
    arg += code[i++];
  }
  return {directive, arg};
}

void CheckHeaderGuard(const SourceFile& f, std::vector<Diagnostic>* out) {
  // Filename style applies to every linted file.
  const std::string& path = f.path();
  size_t slash = path.rfind('/');
  std::string base = slash == std::string::npos ? path : path.substr(slash + 1);
  bool snake = true;
  size_t dot = base.rfind('.');
  for (char c : base.substr(0, dot)) {
    if (!(std::islower(static_cast<unsigned char>(c)) ||
          std::isdigit(static_cast<unsigned char>(c)) || c == '_')) {
      snake = false;
    }
  }
  if (!snake) {
    Emit(f, 1, "header-guard",
         "filename '" + base + "' is not snake_case", out);
  }

  if (!f.IsHeader()) return;
  const std::string guard = ExpectedGuard(path);
  int ifndef_line = 0;
  int pp_index = 0;  // among non-continuation preprocessor lines
  bool guard_ok = true;
  for (size_t li = 0; li < f.lines().size(); ++li) {
    const Line& line = f.lines()[li];
    if (!line.preprocessor) continue;
    std::string_view code(line.code);
    if (code.find('#') == std::string_view::npos) continue;  // continuation
    auto [directive, arg] = ParseDirective(line.code);
    if (directive == "pragma" && arg == "once") {
      Emit(f, static_cast<int>(li) + 1, "header-guard",
           "#pragma once drifts from the project's #ifndef " + guard +
               " guard convention",
           out);
    }
    if (pp_index == 0) {
      ifndef_line = static_cast<int>(li) + 1;
      if (directive != "ifndef" || arg != guard) {
        Emit(f, ifndef_line, "header-guard",
             "first directive must be '#ifndef " + guard + "'", out);
        guard_ok = false;
      }
    } else if (pp_index == 1 && guard_ok) {
      if (directive != "define" || arg != guard) {
        Emit(f, static_cast<int>(li) + 1, "header-guard",
             "'#ifndef " + guard + "' must be followed by '#define " +
                 guard + "'",
             out);
      }
    }
    ++pp_index;
  }
  if (pp_index == 0) {
    Emit(f, 1, "header-guard", "missing include guard '#ifndef " + guard + "'",
         out);
  }
}

// --- mutex-style ----------------------------------------------------------

bool MutexNameOk(const std::string& name) {
  if (name == "mu_") return true;
  return name.size() >= 4 &&
         name.compare(name.size() - 4, 4, "_mu_") == 0;
}

void CheckMutexStyle(const SourceFile& f, std::vector<Diagnostic>* out) {
  const std::vector<Token>& toks = f.tokens();
  for (size_t i = 0; i < toks.size(); ++i) {
    const std::string& t = toks[i].text;
    // Field naming: `std::mutex name;` declarations in headers (locals in
    // .cc bodies are scoped and unexported, so only headers are checked).
    if (f.IsHeader() &&
        (t == "mutex" || t == "shared_mutex" || t == "recursive_mutex") &&
        PrecededByStd(toks, i) && i + 2 < toks.size()) {
      const Token& name = toks[i + 1];
      bool is_decl = !name.text.empty() &&
                     (std::isalpha(static_cast<unsigned char>(name.text[0])) ||
                      name.text[0] == '_') &&
                     TokenIs(toks, i + 2, ";");
      if (is_decl && !MutexNameOk(name.text)) {
        Emit(f, name.line, "mutex-style",
             "mutex field '" + name.text +
                 "' must be named 'mu_' or end in '_mu_' so guarded state "
                 "is greppable",
             out);
      }
    }
    // Manual lock()/unlock(): RAII guards only.
    if ((t == "lock" || t == "unlock") && PrecededByMemberAccess(toks, i) &&
        TokenIs(toks, i + 1, "(") && TokenIs(toks, i + 2, ")")) {
      Emit(f, toks[i].line, "mutex-style",
           "manual " + t + "() pairs leak on early return; use "
           "std::lock_guard or std::scoped_lock",
           out);
    }
  }
}

// --- doc-comment ----------------------------------------------------------

/// Collapses whitespace runs in `s` to single spaces and trims.
std::string NormalizeWs(const std::string& s) {
  std::string out;
  bool pending_space = false;
  for (char c : s) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      pending_space = !out.empty();
      continue;
    }
    if (pending_space) out += ' ';
    pending_space = false;
    out += c;
  }
  return out;
}

std::vector<std::string> SplitWords(const std::string& s) {
  std::vector<std::string> words;
  std::string cur;
  for (char c : s) {
    if (c == ' ') {
      if (!cur.empty()) words.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) words.push_back(cur);
  return words;
}

/// Removes template-argument lists `<...>` so a `(` reliably signals a
/// function declaration (`std::function<void()> f;` must not look like
/// one). `operator<`/`<<`/`<=` are kept literal.
std::string StripAngles(const std::string& s) {
  std::string out;
  int depth = 0;
  for (size_t i = 0; i < s.size(); ++i) {
    char c = s[i];
    bool after_operator =
        i >= 8 && s.compare(i - 8, 8, "operator") == 0;
    if (c == '<' && !after_operator) {
      ++depth;
      continue;
    }
    if (c == '<' && after_operator && depth == 0) {
      out += c;
      continue;
    }
    if (c == '>' && depth > 0 && (i == 0 || s[i - 1] != '-')) {
      --depth;
      continue;
    }
    if (depth == 0) out += c;
  }
  return out;
}

/// Skips a leading `template <...>` prefix of a normalized statement.
std::string SkipTemplatePrefix(const std::string& s) {
  if (s.rfind("template", 0) != 0) return s;
  size_t i = s.find('<');
  if (i == std::string::npos) return s;
  int depth = 0;
  for (; i < s.size(); ++i) {
    if (s[i] == '<') ++depth;
    if (s[i] == '>' && --depth == 0) {
      ++i;
      break;
    }
  }
  while (i < s.size() && s[i] == ' ') ++i;
  return s.substr(i);
}

const std::set<std::string>& DeclQualifiers() {
  static const std::set<std::string> kQuals = {
      "inline",   "static",   "constexpr", "consteval", "constinit",
      "virtual",  "explicit", "extern",    "mutable",   "const",
  };
  return kQuals;
}

/// First word of `s` that is not a qualifier or `[[attribute]]`.
std::string FirstKeyword(const std::string& s) {
  for (const std::string& w : SplitWords(s)) {
    if (DeclQualifiers().count(w) != 0) continue;
    if (w.rfind("[[", 0) == 0) continue;
    return w;
  }
  return std::string();
}

/// True when the line immediately above `stmt_line` (1-based) carries a
/// Doxygen comment.
bool HasDocAbove(const SourceFile& f, int stmt_line) {
  int idx = stmt_line - 2;  // 0-based index of the preceding line
  return idx >= 0 && f.lines()[static_cast<size_t>(idx)].doxygen;
}

struct Ctx {
  enum Kind { kNamespace, kClass, kOpaque };
  Kind kind;
  bool public_access;
};

void CheckDocComment(const SourceFile& f, std::vector<Diagnostic>* out) {
  if (f.TopDir() != "src" || !f.IsHeader()) return;

  // Macros: every first #define of a name needs a doc, guards excepted.
  std::set<std::string> seen_macros;
  for (size_t li = 0; li < f.lines().size(); ++li) {
    const Line& line = f.lines()[li];
    if (!line.preprocessor) continue;
    if (line.code.find('#') == std::string::npos) continue;
    auto [directive, arg] = ParseDirective(line.code);
    if (directive != "define" || arg.empty()) continue;
    if (arg.size() >= 3 && arg.compare(arg.size() - 3, 3, "_H_") == 0) {
      continue;  // include guard
    }
    if (!seen_macros.insert(arg).second) continue;  // #else redefinition
    int probe = static_cast<int>(li) - 1;
    while (probe >= 0 && f.lines()[static_cast<size_t>(probe)].preprocessor) {
      --probe;
    }
    if (probe < 0 || !f.lines()[static_cast<size_t>(probe)].doxygen) {
      Emit(f, static_cast<int>(li) + 1, "doc-comment",
           "public macro " + arg + " needs a /// doc comment", out);
    }
  }

  // Statement machine over the blanked code view. Preprocessor lines are
  // invisible to it (their braces/semicolons are not code structure).
  std::vector<Ctx> stack;
  std::string stmt;
  int stmt_line = 0;
  int paren = 0;

  auto at_public_scope = [&]() {
    if (stack.empty()) return true;  // file scope
    const Ctx& top = stack.back();
    if (top.kind == Ctx::kNamespace) return true;
    return top.kind == Ctx::kClass && top.public_access;
  };
  auto at_namespace_scope = [&]() {
    return stack.empty() || stack.back().kind == Ctx::kNamespace;
  };
  auto reset_stmt = [&]() {
    stmt.clear();
    stmt_line = 0;
  };

  auto require_doc = [&](int line, const std::string& what) {
    if (line > 0 && !HasDocAbove(f, line)) {
      Emit(f, line, "doc-comment",
           "public " + what + " needs a /// doc comment", out);
    }
  };

  auto end_statement = [&]() {
    std::string norm = NormalizeWs(stmt);
    const int line = stmt_line;
    reset_stmt();
    if (norm.empty() || !at_public_scope()) return;
    if (norm.find("= default") != std::string::npos ||
        norm.find("=default") != std::string::npos ||
        norm.find("= delete") != std::string::npos ||
        norm.find("=delete") != std::string::npos) {
      return;
    }
    norm = SkipTemplatePrefix(norm);
    const std::string kw = FirstKeyword(norm);
    if (kw == "friend" || kw == "static_assert" || kw.empty()) return;
    if (kw == "using" || kw == "typedef") {
      // Type aliases are API at namespace scope; class-scope usings
      // (iterator traits, base-ctor pulls) are implementation detail.
      if (at_namespace_scope()) require_doc(line, "type alias");
      return;
    }
    if (kw == "class" || kw == "struct" || kw == "enum" || kw == "union" ||
        kw == "namespace") {
      return;  // forward declaration
    }
    // Function declaration iff a '(' survives template-stripping and no
    // '=' precedes it (that would be a variable initializer calling a
    // function, e.g. `constexpr double kInf = f();`); data members and
    // variables are exempt.
    const std::string stripped = StripAngles(norm);
    const size_t paren_pos = stripped.find('(');
    const size_t eq = stripped.find('=');
    if (paren_pos != std::string::npos &&
        (eq == std::string::npos || paren_pos < eq)) {
      require_doc(line, "function declaration");
    }
  };

  auto classify_open = [&]() {
    std::string norm = SkipTemplatePrefix(NormalizeWs(stmt));
    const int line = stmt_line;
    reset_stmt();
    const std::string kw = FirstKeyword(norm);
    if (kw == "namespace" || norm.rfind("extern", 0) == 0 || kw.empty()) {
      stack.push_back(Ctx{Ctx::kNamespace, true});
      return;
    }
    if (kw == "class" || kw == "struct" || kw == "enum" || kw == "union") {
      if (at_public_scope() && line > 0 && !HasDocAbove(f, line)) {
        Emit(f, line, "doc-comment",
             "public type definition needs a /// doc comment", out);
      }
      if (kw == "class") {
        stack.push_back(Ctx{Ctx::kClass, false});
      } else if (kw == "struct") {
        stack.push_back(Ctx{Ctx::kClass, true});
      } else {
        stack.push_back(Ctx{Ctx::kOpaque, false});
      }
      return;
    }
    stack.push_back(Ctx{Ctx::kOpaque, false});  // function body, init, ...
  };

  for (size_t li = 0; li < f.lines().size(); ++li) {
    const Line& line = f.lines()[li];
    if (line.preprocessor) continue;
    const int lineno = static_cast<int>(li) + 1;
    const std::string& code = line.code;
    for (size_t i = 0; i < code.size(); ++i) {
      const char c = code[i];
      if (!stack.empty() && stack.back().kind == Ctx::kOpaque) {
        if (c == '{') stack.push_back(Ctx{Ctx::kOpaque, false});
        if (c == '}') stack.pop_back();
        continue;
      }
      if (c == '(') {
        ++paren;
        stmt += c;
        continue;
      }
      if (c == ')') {
        --paren;
        stmt += c;
        continue;
      }
      if (c == '{' && paren == 0) {
        classify_open();
        continue;
      }
      if (c == '{') {  // brace inside parens: lambda body / brace-init
        stack.push_back(Ctx{Ctx::kOpaque, false});
        continue;
      }
      if (c == '}') {
        if (!stack.empty()) stack.pop_back();
        reset_stmt();
        continue;
      }
      if (c == ';' && paren == 0) {
        end_statement();
        continue;
      }
      if (c == ':' && !stack.empty() && stack.back().kind == Ctx::kClass &&
          (i + 1 >= code.size() || code[i + 1] != ':') &&
          (i == 0 || code[i - 1] != ':')) {
        std::string norm = NormalizeWs(stmt);
        if (norm == "public" || norm == "private" || norm == "protected") {
          stack.back().public_access = norm == "public";
          reset_stmt();
          continue;
        }
      }
      if (stmt_line == 0 && !std::isspace(static_cast<unsigned char>(c))) {
        stmt_line = lineno;
      }
      stmt += c;
    }
    if (!stmt.empty()) stmt += ' ';  // line break inside a statement
  }
}

// --- metric-name ----------------------------------------------------------

/// The registry/tracer entry points whose first string-literal argument
/// is a metric or span name.
const std::set<std::string>& MetricNameCalls() {
  static const std::set<std::string> kCalls = {
      "GetCounter", "GetHistogram", "BeginSpan",
      "TraceSpan",  "AddCounter",   "AddEvent",
  };
  return kCalls;
}

bool MetricNameOk(const std::string& name) {
  if (name.empty()) return false;
  for (char c : name) {
    const unsigned char u = static_cast<unsigned char>(c);
    if (!(std::islower(u) || std::isdigit(u) || c == '_' || c == '.')) {
      return false;
    }
  }
  return true;
}

bool IsIdentToken(const Token& t) {
  return !t.text.empty() &&
         (std::isalpha(static_cast<unsigned char>(t.text[0])) ||
          t.text[0] == '_');
}

void CheckMetricName(const SourceFile& f, std::vector<Diagnostic>* out) {
  const std::vector<Token>& toks = f.tokens();
  for (size_t i = 0; i < toks.size(); ++i) {
    if (MetricNameCalls().count(toks[i].text) == 0) continue;
    // Call forms: `Name(...)`, or the RAII declaration
    // `TraceSpan var(tracer, "name")` with the variable between.
    size_t open = i + 1;
    if (TokenIs(toks, open, "(")) {
      // direct call
    } else if (toks[i].text == "TraceSpan" && open < toks.size() &&
               IsIdentToken(toks[open]) && TokenIs(toks, open + 1, "(")) {
      ++open;
    } else {
      continue;  // declaration, pointer type, forward reference, ...
    }
    // The name is the call's first string literal. The code view blanks
    // literal interiors, so a literal is two consecutive `"` tokens; the
    // raw text between their columns (same physical line only) is the
    // name. The scan covers the open paren's line and the next one (the
    // common clang-format wrap that puts the literal on a continuation
    // line); a longer multi-line call with the literal further down is
    // simply not checked.
    for (size_t j = open + 1;
         j < toks.size() && toks[j].line - toks[open].line <= 1; ++j) {
      const std::string& t = toks[j].text;
      if (t == ";") break;
      if (t != "\"") continue;
      if (j + 1 >= toks.size() || toks[j + 1].text != "\"" ||
          toks[j + 1].line != toks[j].line) {
        break;  // unterminated on this line (continuation); skip
      }
      const std::string& raw =
          f.lines()[static_cast<size_t>(toks[j].line) - 1].raw;
      const size_t begin = static_cast<size_t>(toks[j].col) + 1;
      const size_t end = static_cast<size_t>(toks[j + 1].col);
      const std::string name = raw.substr(begin, end - begin);
      if (!MetricNameOk(name)) {
        Emit(f, toks[j].line, "metric-name",
             "metric/span name \"" + name +
                 "\" must be dotted lowercase ([a-z0-9_.]+) so dashboards "
                 "and the trace renderer can rely on one naming scheme",
             out);
      }
      break;
    }
  }
}

}  // namespace

std::vector<std::string> RuleIds() {
  return {"raw-random",   "no-throw",     "raw-thread",
          "no-iostream",  "doc-comment",  "header-guard",
          "mutex-style",  "metric-name"};
}

std::vector<Diagnostic> RunRules(const SourceFile& file) {
  std::vector<Diagnostic> out;
  CheckRawRandom(file, &out);
  CheckNoThrow(file, &out);
  CheckRawThread(file, &out);
  CheckNoIostream(file, &out);
  CheckDocComment(file, &out);
  CheckHeaderGuard(file, &out);
  CheckMutexStyle(file, &out);
  CheckMetricName(file, &out);
  std::sort(out.begin(), out.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return out;
}

int LintFiles(const std::vector<std::pair<std::string, std::string>>& files,
              std::vector<Diagnostic>* out) {
  bool clean = true;
  for (const auto& [path, content] : files) {
    SourceFile f = SourceFile::Parse(path, content);
    std::vector<Diagnostic> diags = RunRules(f);
    if (!diags.empty()) clean = false;
    out->insert(out->end(), diags.begin(), diags.end());
  }
  return clean ? 0 : 1;
}

std::string FormatDiagnostic(const Diagnostic& d) {
  return d.path + ":" + std::to_string(d.line) + ": " + d.rule + ": " +
         d.message;
}

}  // namespace kws::lint

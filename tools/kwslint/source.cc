#include "kwslint/source.h"

#include <cctype>

namespace kws::lint {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

std::string_view Trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

/// Splits `content` into lines without their newline terminators.
std::vector<std::string> SplitLines(std::string_view content) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= content.size()) {
    size_t nl = content.find('\n', start);
    if (nl == std::string_view::npos) {
      if (start < content.size()) out.emplace_back(content.substr(start));
      break;
    }
    std::string_view line = content.substr(start, nl - start);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    out.emplace_back(line);
    start = nl + 1;
  }
  return out;
}

/// Parses the rule list out of `comment` after `marker`, e.g.
/// "kwslint: allow(no-throw, raw-thread)" -> {"no-throw", "raw-thread"}.
std::set<std::string> ParseRuleList(std::string_view comment,
                                    std::string_view marker) {
  std::set<std::string> out;
  size_t pos = comment.find(marker);
  if (pos == std::string_view::npos) return out;
  pos += marker.size();
  size_t close = comment.find(')', pos);
  if (close == std::string_view::npos) return out;
  std::string_view list = comment.substr(pos, close - pos);
  while (!list.empty()) {
    size_t comma = list.find(',');
    std::string_view item = Trim(list.substr(0, comma));
    if (!item.empty()) out.emplace(item);
    if (comma == std::string_view::npos) break;
    list.remove_prefix(comma + 1);
  }
  return out;
}

}  // namespace

SourceFile SourceFile::Parse(std::string path, std::string_view content) {
  SourceFile f;
  f.path_ = std::move(path);
  std::vector<std::string> raw_lines = SplitLines(content);
  f.lines_.reserve(raw_lines.size());

  bool in_block_comment = false;
  bool block_is_doxygen = false;
  bool pp_continuation = false;

  for (std::string& raw : raw_lines) {
    Line line;
    line.raw = std::move(raw);
    line.code.assign(line.raw.size(), ' ');
    const std::string& s = line.raw;

    bool continued_doxygen = in_block_comment && block_is_doxygen;
    size_t i = 0;
    while (i < s.size()) {
      if (in_block_comment) {
        size_t end = s.find("*/", i);
        size_t stop = end == std::string::npos ? s.size() : end + 2;
        line.comment.append(s, i, stop - i);
        if (end == std::string::npos) {
          i = s.size();
        } else {
          i = end + 2;
          in_block_comment = false;
        }
        continue;
      }
      char c = s[i];
      if (c == '/' && i + 1 < s.size() && s[i + 1] == '/') {
        line.comment.append(s, i, s.size() - i);
        i = s.size();
        continue;
      }
      if (c == '/' && i + 1 < s.size() && s[i + 1] == '*') {
        in_block_comment = true;
        block_is_doxygen = i + 2 < s.size() && s[i + 2] == '*';
        size_t end = s.find("*/", i + 2);
        size_t stop = end == std::string::npos ? s.size() : end + 2;
        line.comment.append(s, i, stop - i);
        if (end == std::string::npos) {
          i = s.size();
        } else {
          i = end + 2;
          in_block_comment = false;
        }
        continue;
      }
      if (c == '"') {
        // Raw string literal? Look back for the R prefix.
        bool raw_literal = i > 0 && s[i - 1] == 'R';
        line.code[i] = '"';
        ++i;
        if (raw_literal) {
          // R"delim( ... )delim" — find the opening paren, then the
          // closing sequence. Multi-line raw strings are not handled
          // (none exist in this tree); treat end-of-line as terminator.
          size_t open = s.find('(', i);
          std::string delim =
              open == std::string::npos ? "" : s.substr(i, open - i);
          std::string closer = ")" + delim + "\"";
          size_t end = open == std::string::npos ? std::string::npos
                                                 : s.find(closer, open + 1);
          i = end == std::string::npos ? s.size() : end + closer.size();
        } else {
          while (i < s.size()) {
            if (s[i] == '\\') {
              i += 2;
              continue;
            }
            if (s[i] == '"') {
              line.code[i] = '"';
              ++i;
              break;
            }
            ++i;
          }
        }
        continue;
      }
      if (c == '\'') {
        line.code[i] = '\'';
        ++i;
        while (i < s.size()) {
          if (s[i] == '\\') {
            i += 2;
            continue;
          }
          if (s[i] == '\'') {
            line.code[i] = '\'';
            ++i;
            break;
          }
          ++i;
        }
        continue;
      }
      line.code[i] = c;
      ++i;
    }

    std::string_view code_trim = Trim(line.code);
    line.comment_only = code_trim.empty() && !line.comment.empty();
    std::string_view raw_trim = Trim(line.raw);
    line.doxygen =
        line.comment_only &&
        (raw_trim.substr(0, 3) == "///" || raw_trim.substr(0, 3) == "/**" ||
         continued_doxygen);
    line.preprocessor =
        pp_continuation || (!code_trim.empty() && code_trim.front() == '#');
    pp_continuation =
        line.preprocessor && !code_trim.empty() && code_trim.back() == '\\';

    f.lines_.push_back(std::move(line));
  }

  // Tokenize the code view and collect suppressions.
  for (size_t li = 0; li < f.lines_.size(); ++li) {
    const Line& line = f.lines_[li];
    const int lineno = static_cast<int>(li) + 1;
    const std::string& code = line.code;
    size_t i = 0;
    while (i < code.size()) {
      char c = code[i];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      Token t;
      t.line = lineno;
      t.col = static_cast<int>(i);
      if (IsIdentStart(c)) {
        size_t j = i;
        while (j < code.size() && IsIdentChar(code[j])) ++j;
        t.text = code.substr(i, j - i);
        i = j;
      } else if (std::isdigit(static_cast<unsigned char>(c))) {
        size_t j = i;
        while (j < code.size() &&
               (IsIdentChar(code[j]) || code[j] == '.' || code[j] == '\'')) {
          ++j;
        }
        t.text = code.substr(i, j - i);
        i = j;
      } else if (c == ':' && i + 1 < code.size() && code[i + 1] == ':') {
        t.text = "::";
        i += 2;
      } else {
        t.text.assign(1, c);
        ++i;
      }
      f.tokens_.push_back(std::move(t));
    }

    if (line.comment.find("kwslint:") != std::string::npos) {
      for (const std::string& r :
           ParseRuleList(line.comment, "file-allow(")) {
        f.file_allows_.insert(r);
      }
      // Make sure plain allow( does not re-match the tail of file-allow(.
      std::string c2 = line.comment;
      size_t fa = c2.find("file-allow(");
      if (fa != std::string::npos) c2.erase(fa, 11);
      for (const std::string& r : ParseRuleList(c2, "allow(")) {
        f.line_allows_[lineno].insert(r);
      }
    }
  }
  return f;
}

bool SourceFile::Allowed(const std::string& rule, int line) const {
  if (file_allows_.count(rule) != 0) return true;
  auto it = line_allows_.find(line);
  return it != line_allows_.end() && it->second.count(rule) != 0;
}

std::string SourceFile::TopDir() const {
  size_t slash = path_.find('/');
  return slash == std::string::npos ? std::string() : path_.substr(0, slash);
}

bool SourceFile::IsHeader() const {
  return path_.size() >= 2 && path_.compare(path_.size() - 2, 2, ".h") == 0;
}

bool SourceFile::PathStartsWith(std::string_view prefix) const {
  return path_.compare(0, prefix.size(), prefix) == 0;
}

}  // namespace kws::lint

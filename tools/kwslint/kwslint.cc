// kwslint: the project's invariant checker.
//
// Tokenizes every .h/.cc under src/, tests/, bench/ and examples/ and
// enforces the conventions CLAUDE.md documents as machine-checked rules
// (deterministic seeding, no-throw library paths, ThreadPool-only
// concurrency, Status-not-iostream error reporting, Doxygen on public
// API, include-guard style, mutex hygiene).
//
// Usage:
//   kwslint [--list-rules] [root]
//     root: repository root to lint (default ".").
//
// Exit code 0 when the tree is clean, 1 when any rule fired, 2 on usage
// or I/O errors. Diagnostics go to stdout as "file:line: rule: message".
// Suppressions: trailing "// kwslint: allow(<rule>)" on the offending
// line, or "// kwslint: file-allow(<rule>)" anywhere in the file.

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "kwslint/rules.h"

namespace fs = std::filesystem;

namespace {

/// The subtrees kwslint owns. tools/ itself is exempt: the linter prints
/// to stdout and walks the filesystem, which the library rules forbid.
constexpr const char* kLintedDirs[] = {"src", "tests", "bench", "examples"};

bool IsSourceFile(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".cc";
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") {
      for (const std::string& r : kws::lint::RuleIds()) {
        std::cout << r << "\n";
      }
      return 0;
    }
    if (arg == "--help" || arg == "-h") {
      std::cout << "usage: kwslint [--list-rules] [root]\n";
      return 0;
    }
    if (!arg.empty() && arg[0] == '-') {
      std::cerr << "kwslint: unknown flag '" << arg << "'\n";
      return 2;
    }
    root = arg;
  }

  std::vector<std::pair<std::string, std::string>> files;
  for (const char* dir : kLintedDirs) {
    const fs::path base = fs::path(root) / dir;
    if (!fs::exists(base)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file() || !IsSourceFile(entry.path())) continue;
      std::ifstream in(entry.path(), std::ios::binary);
      if (!in) {
        std::cerr << "kwslint: cannot read " << entry.path() << "\n";
        return 2;
      }
      std::ostringstream buf;
      buf << in.rdbuf();
      // Repo-relative path with forward slashes, as the rules expect.
      const std::string rel =
          fs::relative(entry.path(), root).generic_string();
      files.emplace_back(rel, buf.str());
    }
  }
  std::sort(files.begin(), files.end());

  std::vector<kws::lint::Diagnostic> diags;
  const int rc = kws::lint::LintFiles(files, &diags);
  for (const kws::lint::Diagnostic& d : diags) {
    std::cout << kws::lint::FormatDiagnostic(d) << "\n";
  }
  std::cout << "kwslint: " << files.size() << " files, " << diags.size()
            << " finding" << (diags.size() == 1 ? "" : "s") << "\n";
  return rc;
}

// kwslint: the project's invariant checker.
//
// A two-pass, project-wide analysis engine. Pass 1 parses every .h/.cc
// under src/, tests/, bench/ and examples/ and builds a cross-file model
// (src/ include graph, an index of kws::Status/Result-returning
// functions, per-file unordered-container declarations). Pass 2 runs the
// token rules (deterministic seeding, no-throw library paths,
// ThreadPool-only concurrency, Status-not-iostream error reporting,
// Doxygen on public API, include-guard style, mutex hygiene, metric
// naming) plus the semantic rules (status-discard, unordered-iteration,
// deadline-loop, allow-justification, include-cycle).
//
// Usage:
//   kwslint [--list-rules] [--format=text|json|sarif] [--jobs=N]
//           [--baseline=FILE | --no-baseline] [root]
//     root: repository root to lint (default ".").
//
// --jobs fans the parse and rule passes out over a kws::ThreadPool with
// static striding; diagnostics are byte-identical for every jobs value.
// The baseline (default <root>/tools/kwslint/baseline.txt when present)
// holds tolerated pre-existing findings as `path: rule` lines; baselined
// findings are counted but do not fail the run.
//
// Exit code 0 when the tree is clean (after baselining), 1 when any
// non-baselined finding fired, 2 on usage or I/O errors. Text diagnostics
// go to stdout as "file:line: rule: message"; --format=json|sarif emits
// one machine-readable document on stdout instead. Suppressions: trailing
// "// kwslint: allow(<rule>)" on the offending line, or "// kwslint:
// file-allow(<rule>)" anywhere in the file — both need a justification in
// the same comment (the allow-justification rule enforces it).

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "kwslint/output.h"
#include "kwslint/rules.h"

namespace fs = std::filesystem;

namespace {

/// The subtrees kwslint owns. tools/ itself is exempt: the linter prints
/// to stdout and walks the filesystem, which the library rules forbid.
constexpr const char* kLintedDirs[] = {"src", "tests", "bench", "examples"};

bool IsSourceFile(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".cc";
}

int DefaultJobs() {
  const unsigned hw = std::thread::hardware_concurrency();
  return static_cast<int>(std::min(8u, std::max(1u, hw)));
}

bool ReadFile(const fs::path& p, std::string* out) {
  std::ifstream in(p, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string format = "text";
  std::string baseline_path;
  bool baseline_explicit = false;
  bool no_baseline = false;
  int jobs = DefaultJobs();
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") {
      for (const std::string& r : kws::lint::RuleIds()) {
        std::cout << r << "\n";
      }
      return 0;
    }
    if (arg == "--help" || arg == "-h") {
      std::cout << "usage: kwslint [--list-rules] [--format=text|json|sarif]"
                   " [--jobs=N] [--baseline=FILE | --no-baseline] [root]\n";
      return 0;
    }
    if (arg.rfind("--format=", 0) == 0) {
      format = arg.substr(9);
      if (format != "text" && format != "json" && format != "sarif") {
        std::cerr << "kwslint: unknown format '" << format
                  << "' (want text, json or sarif)\n";
        return 2;
      }
      continue;
    }
    if (arg.rfind("--jobs=", 0) == 0) {
      jobs = std::atoi(arg.c_str() + 7);
      if (jobs < 1 || jobs > 64) {
        std::cerr << "kwslint: --jobs must be in [1, 64]\n";
        return 2;
      }
      continue;
    }
    if (arg.rfind("--baseline=", 0) == 0) {
      baseline_path = arg.substr(11);
      baseline_explicit = true;
      continue;
    }
    if (arg == "--no-baseline") {
      no_baseline = true;
      continue;
    }
    if (!arg.empty() && arg[0] == '-') {
      std::cerr << "kwslint: unknown flag '" << arg << "'\n";
      return 2;
    }
    root = arg;
  }

  std::vector<std::pair<std::string, std::string>> files;
  for (const char* dir : kLintedDirs) {
    const fs::path base = fs::path(root) / dir;
    if (!fs::exists(base)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file() || !IsSourceFile(entry.path())) continue;
      std::string content;
      if (!ReadFile(entry.path(), &content)) {
        std::cerr << "kwslint: cannot read " << entry.path() << "\n";
        return 2;
      }
      // Repo-relative path with forward slashes, as the rules expect.
      const std::string rel =
          fs::relative(entry.path(), root).generic_string();
      files.emplace_back(rel, std::move(content));
    }
  }

  std::vector<kws::lint::Diagnostic> diags =
      kws::lint::LintProject(files, jobs);

  kws::lint::Baseline baseline;
  if (!no_baseline) {
    if (!baseline_explicit) {
      baseline_path =
          (fs::path(root) / "tools" / "kwslint" / "baseline.txt")
              .generic_string();
    }
    std::string text;
    if (ReadFile(baseline_path, &text)) {
      std::string error;
      if (!kws::lint::Baseline::Parse(text, &baseline, &error)) {
        std::cerr << "kwslint: " << baseline_path << ": " << error << "\n";
        return 2;
      }
    } else if (baseline_explicit) {
      std::cerr << "kwslint: cannot read baseline " << baseline_path << "\n";
      return 2;
    }
  }

  size_t suppressed = 0;
  diags = kws::lint::ApplyBaseline(diags, baseline, &suppressed);

  if (format == "json") {
    std::cout << kws::lint::RenderJson(diags, files.size(), suppressed);
  } else if (format == "sarif") {
    std::cout << kws::lint::RenderSarif(diags);
  } else {
    for (const kws::lint::Diagnostic& d : diags) {
      std::cout << kws::lint::FormatDiagnostic(d) << "\n";
    }
    std::cout << "kwslint: " << files.size() << " files, " << diags.size()
              << " finding" << (diags.size() == 1 ? "" : "s");
    if (suppressed != 0) {
      std::cout << " (+" << suppressed << " baselined)";
    }
    std::cout << "\n";
  }
  return diags.empty() ? 0 : 1;
}

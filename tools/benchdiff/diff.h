#ifndef KWDB_TOOLS_BENCHDIFF_DIFF_H_
#define KWDB_TOOLS_BENCHDIFF_DIFF_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace kws::benchdiff {

/// One table cell from a bench JSON export. `JsonExport::WriteCell` emits
/// numeric-looking cells as JSON numbers and everything else as strings;
/// the parser preserves that distinction because the diff treats them
/// differently (labels are structural, numbers may be perf-checked).
struct Cell {
  bool is_number = false;
  double number = 0;
  /// The cell's text form: the original string for string cells, the raw
  /// number token for numeric cells (for diagnostics).
  std::string text;
};

/// One experiment table (`{"id","title","headers","rows"}`).
struct Experiment {
  std::string id;
  std::string title;
  std::vector<std::string> headers;
  std::vector<std::vector<Cell>> rows;
};

/// A parsed `--json=` export: `{"experiments":[...]}`.
struct BenchReport {
  std::vector<Experiment> experiments;
};

/// Parses one bench JSON export. Fails with `kInvalidArgument` on
/// malformed JSON or on documents that do not follow the export schema
/// (missing keys, non-array rows, a row wider than its header list, a
/// duplicate experiment id).
Result<BenchReport> ParseReport(const std::string& json);

/// One diff (or `--check`) diagnostic. `rule` is a stable dashed id in
/// kwslint style; `error` findings fail the run, notes (currently only
/// `perf-improvement`) are informational.
struct Finding {
  /// Experiment id the finding is about (empty for whole-file problems).
  std::string experiment;
  std::string rule;
  std::string message;
  bool error = true;
};

/// Diff tuning knobs.
struct DiffOptions {
  /// Allowed ratio band for perf columns: current vs baseline must stay
  /// within [1/tolerance, tolerance]. Must be > 1.
  double tolerance = 1.5;
  /// Values whose baseline and current magnitudes are both below this
  /// floor are skipped (timer noise dominates tiny measurements).
  double min_value = 1e-3;
};

/// True when `header` names a performance column the diff ratio-checks:
/// one of its `[a-z0-9]+` tokens (lowercased) is a time/throughput unit
/// (`ms`, `us`, `ns`, `micros`, `millis`, `sec`, `qps`, `speedup`).
/// Count-like columns (results, CNs evaluated, cache hits) never match —
/// under kSparse those are schedule-dependent by design.
bool IsPerfHeader(const std::string& header);

/// Compares `current` against `baseline`. Structural drift — a baseline
/// experiment missing from current, changed headers, changed row count,
/// or a changed *string* cell (labels and parameter columns) — is an
/// error. Numeric cells in perf columns (see `IsPerfHeader`) are
/// ratio-checked against `options.tolerance`: slower/lower-throughput
/// beyond the band is a `perf-regression` error, faster beyond the band
/// is a `perf-improvement` note (refresh the baseline). All other
/// numeric cells are ignored. Experiments only in `current` are a note.
/// Findings are ordered by (experiment, rule, message).
std::vector<Finding> DiffReports(const BenchReport& baseline,
                                 const BenchReport& current,
                                 const DiffOptions& options);

/// Renders findings in kwslint text style, one per line:
/// `<file>: <experiment>: <rule>: <message>`.
std::string RenderText(const std::string& file,
                       const std::vector<Finding>& findings);

/// Renders findings as one byte-stable JSON document:
/// `{"file":...,"findings":[{"experiment","rule","error","message"},...]}`.
std::string RenderJson(const std::string& file,
                       const std::vector<Finding>& findings);

}  // namespace kws::benchdiff

#endif  // KWDB_TOOLS_BENCHDIFF_DIFF_H_

// benchdiff: the CI perf-regression gate over bench JSON exports.
//
// Every bench binary mirrors its printed tables into one JSON document
// per experiment (`--json=<path>`, schema
// `{"experiments":[{"id","title","headers","rows"}]}`). benchdiff
// compares such a document against a checked-in baseline
// (bench/baselines/E*.json): structural drift — a missing experiment,
// changed headers, a changed row count, or a changed string cell — is an
// error, and numeric cells in time/throughput columns (headers with a
// `ms`/`us`/`ns`/`sec`/`qps`/`speedup` token) are ratio-checked against a
// tolerance band. Count-like columns are ignored: under kSparse the work
// counters are schedule-dependent by design. A current value *better*
// than baseline beyond the band is a note, not an error — refresh the
// baseline when it sticks.
//
// Usage:
//   benchdiff --check FILE...                 validate export schema only
//   benchdiff [--tolerance=X] [--format=text|json] BASELINE CURRENT
//
// Exit code 0 when clean (notes allowed), 1 when any check failed or any
// error finding fired, 2 on usage or I/O errors. Text diagnostics go to
// stdout as "file: experiment: rule: message" ordered by (experiment,
// rule, message); --format=json emits one machine-readable document.
//
// Baseline refresh workflow: run the bench with --json, eyeball the
// diff output, then copy bench-out/E*.json over bench/baselines/.

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "benchdiff/diff.h"

namespace {

int Usage() {
  std::cerr
      << "usage: benchdiff --check FILE...\n"
      << "       benchdiff [--tolerance=X] [--format=text|json] "
         "BASELINE CURRENT\n";
  return 2;
}

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool check_only = false;
  std::string format = "text";
  double tolerance = 1.5;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--check") {
      check_only = true;
    } else if (arg.rfind("--format=", 0) == 0) {
      format = arg.substr(9);
      if (format != "text" && format != "json") return Usage();
    } else if (arg.rfind("--tolerance=", 0) == 0) {
      char* end = nullptr;
      tolerance = std::strtod(arg.c_str() + 12, &end);
      if (end == nullptr || *end != '\0' || tolerance <= 1.0) {
        std::cerr << "benchdiff: --tolerance must be a number > 1\n";
        return 2;
      }
    } else if (arg.rfind("--", 0) == 0) {
      return Usage();
    } else {
      files.push_back(arg);
    }
  }

  if (check_only) {
    if (files.empty()) return Usage();
    int bad = 0;
    for (const std::string& path : files) {
      std::string text;
      if (!ReadFile(path, &text)) {
        std::cerr << "benchdiff: cannot read " << path << "\n";
        return 2;
      }
      const auto parsed = kws::benchdiff::ParseReport(text);
      if (!parsed.ok()) {
        std::cout << path << ": check: " << parsed.status().message() << "\n";
        ++bad;
      } else if (parsed.value().experiments.empty()) {
        std::cout << path << ": check: document has no experiments\n";
        ++bad;
      }
    }
    return bad > 0 ? 1 : 0;
  }

  if (files.size() != 2) return Usage();
  std::string base_text;
  std::string cur_text;
  if (!ReadFile(files[0], &base_text)) {
    std::cerr << "benchdiff: cannot read " << files[0] << "\n";
    return 2;
  }
  if (!ReadFile(files[1], &cur_text)) {
    std::cerr << "benchdiff: cannot read " << files[1] << "\n";
    return 2;
  }
  const auto base = kws::benchdiff::ParseReport(base_text);
  if (!base.ok()) {
    std::cerr << "benchdiff: " << files[0] << ": "
              << base.status().message() << "\n";
    return 2;
  }
  const auto cur = kws::benchdiff::ParseReport(cur_text);
  if (!cur.ok()) {
    std::cerr << "benchdiff: " << files[1] << ": " << cur.status().message()
              << "\n";
    return 2;
  }

  kws::benchdiff::DiffOptions options;
  options.tolerance = tolerance;
  const std::vector<kws::benchdiff::Finding> findings =
      kws::benchdiff::DiffReports(base.value(), cur.value(), options);
  if (format == "json") {
    std::cout << kws::benchdiff::RenderJson(files[1], findings) << "\n";
  } else {
    std::cout << kws::benchdiff::RenderText(files[1], findings);
  }
  for (const kws::benchdiff::Finding& f : findings) {
    if (f.error) return 1;
  }
  return 0;
}

#include "benchdiff/diff.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <map>
#include <set>
#include <utility>

namespace kws::benchdiff {
namespace {

// ---------------------------------------------------------------------------
// A minimal recursive-descent JSON reader, just enough for the bench
// export schema. No exceptions: every step reports through Status.
// ---------------------------------------------------------------------------

/// Cursor over the input document.
struct Reader {
  const std::string& text;
  size_t pos = 0;

  void SkipWs() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r')) {
      ++pos;
    }
  }

  bool AtEnd() {
    SkipWs();
    return pos >= text.size();
  }

  /// Peeks the next non-whitespace character ('\0' at end).
  char Peek() {
    SkipWs();
    return pos < text.size() ? text[pos] : '\0';
  }

  Status Expect(char c) {
    SkipWs();
    if (pos >= text.size() || text[pos] != c) {
      return Status::InvalidArgument("expected '" + std::string(1, c) +
                                     "' at offset " + std::to_string(pos));
    }
    ++pos;
    return Status::OK();
  }

  Status ParseString(std::string* out) {
    KWS_RETURN_IF_ERROR(Expect('"'));
    out->clear();
    while (pos < text.size()) {
      const char c = text[pos++];
      if (c == '"') return Status::OK();
      if (c == '\\') {
        if (pos >= text.size()) break;
        const char esc = text[pos++];
        switch (esc) {
          case '"': *out += '"'; break;
          case '\\': *out += '\\'; break;
          case '/': *out += '/'; break;
          case 'n': *out += '\n'; break;
          case 't': *out += '\t'; break;
          case 'r': *out += '\r'; break;
          case 'b': *out += '\b'; break;
          case 'f': *out += '\f'; break;
          case 'u':
            // The exporter never emits \u escapes; accept and keep the
            // raw text so foreign documents still parse.
            *out += "\\u";
            break;
          default:
            return Status::InvalidArgument("bad escape at offset " +
                                           std::to_string(pos - 1));
        }
      } else {
        *out += c;
      }
    }
    return Status::InvalidArgument("unterminated string");
  }

  Status ParseNumber(Cell* out) {
    SkipWs();
    const size_t start = pos;
    if (pos < text.size() && (text[pos] == '-' || text[pos] == '+')) ++pos;
    while (pos < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[pos])) != 0 ||
            text[pos] == '.' || text[pos] == 'e' || text[pos] == 'E' ||
            text[pos] == '+' || text[pos] == '-')) {
      ++pos;
    }
    if (pos == start) {
      return Status::InvalidArgument("expected number at offset " +
                                     std::to_string(pos));
    }
    out->is_number = true;
    out->text = text.substr(start, pos - start);
    char* end = nullptr;
    out->number = std::strtod(out->text.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      return Status::InvalidArgument("bad number '" + out->text + "'");
    }
    return Status::OK();
  }

  /// Parses one cell value: string or number (the only kinds the
  /// exporter writes into rows).
  Status ParseCell(Cell* out) {
    if (Peek() == '"') {
      out->is_number = false;
      return ParseString(&out->text);
    }
    return ParseNumber(out);
  }
};

Status ParseExperiment(Reader* r, Experiment* exp) {
  KWS_RETURN_IF_ERROR(r->Expect('{'));
  bool first = true;
  bool saw_id = false;
  bool saw_headers = false;
  bool saw_rows = false;
  while (r->Peek() != '}') {
    if (!first) KWS_RETURN_IF_ERROR(r->Expect(','));
    first = false;
    std::string key;
    KWS_RETURN_IF_ERROR(r->ParseString(&key));
    KWS_RETURN_IF_ERROR(r->Expect(':'));
    if (key == "id") {
      KWS_RETURN_IF_ERROR(r->ParseString(&exp->id));
      saw_id = true;
    } else if (key == "title") {
      KWS_RETURN_IF_ERROR(r->ParseString(&exp->title));
    } else if (key == "headers") {
      KWS_RETURN_IF_ERROR(r->Expect('['));
      while (r->Peek() != ']') {
        if (!exp->headers.empty()) KWS_RETURN_IF_ERROR(r->Expect(','));
        std::string h;
        KWS_RETURN_IF_ERROR(r->ParseString(&h));
        exp->headers.push_back(std::move(h));
      }
      KWS_RETURN_IF_ERROR(r->Expect(']'));
      saw_headers = true;
    } else if (key == "rows") {
      KWS_RETURN_IF_ERROR(r->Expect('['));
      while (r->Peek() != ']') {
        if (!exp->rows.empty()) KWS_RETURN_IF_ERROR(r->Expect(','));
        std::vector<Cell> row;
        KWS_RETURN_IF_ERROR(r->Expect('['));
        while (r->Peek() != ']') {
          if (!row.empty()) KWS_RETURN_IF_ERROR(r->Expect(','));
          Cell cell;
          KWS_RETURN_IF_ERROR(r->ParseCell(&cell));
          row.push_back(std::move(cell));
        }
        KWS_RETURN_IF_ERROR(r->Expect(']'));
        exp->rows.push_back(std::move(row));
      }
      KWS_RETURN_IF_ERROR(r->Expect(']'));
      saw_rows = true;
    } else {
      return Status::InvalidArgument("unknown experiment key '" + key + "'");
    }
  }
  KWS_RETURN_IF_ERROR(r->Expect('}'));
  if (!saw_id || !saw_headers || !saw_rows) {
    return Status::InvalidArgument("experiment missing id/headers/rows");
  }
  if (exp->id.empty()) {
    return Status::InvalidArgument("experiment with empty id");
  }
  for (size_t i = 0; i < exp->rows.size(); ++i) {
    if (exp->rows[i].size() != exp->headers.size()) {
      return Status::InvalidArgument(
          exp->id + ": row " + std::to_string(i) + " has " +
          std::to_string(exp->rows[i].size()) + " cells, headers have " +
          std::to_string(exp->headers.size()));
    }
  }
  return Status::OK();
}

void AppendEscaped(const std::string& s, std::string* out) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      *out += '\\';
      *out += c;
    } else if (c == '\n') {
      *out += "\\n";
    } else {
      *out += c;
    }
  }
}

/// Orders findings for byte-stable output.
bool FindingLess(const Finding& a, const Finding& b) {
  if (a.experiment != b.experiment) return a.experiment < b.experiment;
  if (a.rule != b.rule) return a.rule < b.rule;
  return a.message < b.message;
}

/// Columns whose ratio-check direction is "bigger is better".
bool IsThroughputToken(const std::string& token) {
  return token == "qps" || token == "speedup" || token == "throughput";
}

/// Columns measured in time units ("smaller is better").
bool IsTimeToken(const std::string& token) {
  return token == "ms" || token == "us" || token == "ns" ||
         token == "micros" || token == "millis" || token == "nanos" ||
         token == "sec" || token == "secs";
}

/// Splits `header` into lowercase `[a-z0-9]+` tokens.
std::vector<std::string> HeaderTokens(const std::string& header) {
  std::vector<std::string> tokens;
  std::string cur;
  for (char c : header) {
    const unsigned char u = static_cast<unsigned char>(c);
    if (std::isalnum(u) != 0) {
      cur += static_cast<char>(std::tolower(u));
    } else if (!cur.empty()) {
      tokens.push_back(std::move(cur));
      cur.clear();
    }
  }
  if (!cur.empty()) tokens.push_back(std::move(cur));
  return tokens;
}

/// -1: smaller is better (time), +1: bigger is better (throughput),
/// 0: not a perf column.
int PerfDirection(const std::string& header) {
  for (const std::string& t : HeaderTokens(header)) {
    if (IsTimeToken(t)) return -1;
    if (IsThroughputToken(t)) return 1;
  }
  return 0;
}

std::string FmtDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

}  // namespace

Result<BenchReport> ParseReport(const std::string& json) {
  Reader r{json};
  BenchReport report;
  KWS_RETURN_IF_ERROR(r.Expect('{'));
  std::string key;
  KWS_RETURN_IF_ERROR(r.ParseString(&key));
  if (key != "experiments") {
    return Status::InvalidArgument("expected top-level key 'experiments'");
  }
  KWS_RETURN_IF_ERROR(r.Expect(':'));
  KWS_RETURN_IF_ERROR(r.Expect('['));
  while (r.Peek() != ']') {
    if (!report.experiments.empty()) KWS_RETURN_IF_ERROR(r.Expect(','));
    Experiment exp;
    KWS_RETURN_IF_ERROR(ParseExperiment(&r, &exp));
    report.experiments.push_back(std::move(exp));
  }
  KWS_RETURN_IF_ERROR(r.Expect(']'));
  KWS_RETURN_IF_ERROR(r.Expect('}'));
  if (!r.AtEnd()) {
    return Status::InvalidArgument("trailing content after document");
  }
  std::set<std::string> ids;
  for (const Experiment& exp : report.experiments) {
    if (!ids.insert(exp.id).second) {
      return Status::InvalidArgument("duplicate experiment id '" + exp.id +
                                     "'");
    }
  }
  return report;
}

bool IsPerfHeader(const std::string& header) {
  return PerfDirection(header) != 0;
}

std::vector<Finding> DiffReports(const BenchReport& baseline,
                                 const BenchReport& current,
                                 const DiffOptions& options) {
  std::vector<Finding> findings;
  const double tol = options.tolerance > 1.0 ? options.tolerance : 1.0;
  std::map<std::string, const Experiment*> cur_by_id;
  for (const Experiment& exp : current.experiments) {
    cur_by_id[exp.id] = &exp;
  }
  std::set<std::string> base_ids;
  for (const Experiment& base : baseline.experiments) {
    base_ids.insert(base.id);
    const auto it = cur_by_id.find(base.id);
    if (it == cur_by_id.end()) {
      findings.push_back({base.id, "missing-experiment",
                          "experiment present in baseline but not in current",
                          true});
      continue;
    }
    const Experiment& cur = *it->second;
    if (cur.headers != base.headers) {
      findings.push_back({base.id, "header-mismatch",
                          "column headers changed; refresh the baseline",
                          true});
      continue;
    }
    if (cur.rows.size() != base.rows.size()) {
      findings.push_back(
          {base.id, "row-count",
           "baseline has " + std::to_string(base.rows.size()) +
               " rows, current has " + std::to_string(cur.rows.size()),
           true});
      continue;
    }
    for (size_t r = 0; r < base.rows.size(); ++r) {
      for (size_t c = 0; c < base.headers.size(); ++c) {
        const Cell& b = base.rows[r][c];
        const Cell& n = cur.rows[r][c];
        const std::string where = "row " + std::to_string(r) + " column '" +
                                  base.headers[c] + "'";
        if (b.is_number != n.is_number) {
          findings.push_back({base.id, "cell-type",
                              where + ": cell changed kind ('" + b.text +
                                  "' vs '" + n.text + "')",
                              true});
          continue;
        }
        if (!b.is_number) {
          // String cells are labels and parameter columns: any change is
          // structural drift.
          if (b.text != n.text) {
            findings.push_back({base.id, "cell-mismatch",
                                where + ": '" + b.text + "' became '" +
                                    n.text + "'",
                                true});
          }
          continue;
        }
        const int dir = PerfDirection(base.headers[c]);
        if (dir == 0) continue;  // count-like / schedule-dependent
        const double bv = b.number;
        const double nv = n.number;
        if (std::abs(bv) < options.min_value &&
            std::abs(nv) < options.min_value) {
          continue;  // both under the noise floor
        }
        if (bv <= 0 || nv <= 0) continue;  // no meaningful ratio
        // Normalize so `ratio > tol` always means "worse".
        const double ratio = dir < 0 ? nv / bv : bv / nv;
        if (ratio > tol) {
          findings.push_back(
              {base.id, "perf-regression",
               where + ": " + FmtDouble(bv) + " -> " + FmtDouble(nv) +
                   " (" + FmtDouble(ratio) + "x worse, tolerance " +
                   FmtDouble(tol) + "x)",
               true});
        } else if (1.0 / ratio > tol) {
          findings.push_back(
              {base.id, "perf-improvement",
               where + ": " + FmtDouble(bv) + " -> " + FmtDouble(nv) +
                   " (" + FmtDouble(1.0 / ratio) +
                   "x better; consider refreshing the baseline)",
               false});
        }
      }
    }
  }
  for (const Experiment& exp : current.experiments) {
    if (base_ids.count(exp.id) == 0) {
      findings.push_back({exp.id, "new-experiment",
                          "experiment not in baseline; add it on the next "
                          "baseline refresh",
                          false});
    }
  }
  std::sort(findings.begin(), findings.end(), FindingLess);
  return findings;
}

std::string RenderText(const std::string& file,
                       const std::vector<Finding>& findings) {
  std::string out;
  for (const Finding& f : findings) {
    out += file;
    out += ": ";
    out += f.experiment;
    out += ": ";
    out += f.rule;
    out += ": ";
    out += f.message;
    if (!f.error) out += " [note]";
    out += '\n';
  }
  return out;
}

std::string RenderJson(const std::string& file,
                       const std::vector<Finding>& findings) {
  std::string out = "{\"file\":\"";
  AppendEscaped(file, &out);
  out += "\",\"findings\":[";
  for (size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    if (i > 0) out += ',';
    out += "{\"experiment\":\"";
    AppendEscaped(f.experiment, &out);
    out += "\",\"rule\":\"";
    AppendEscaped(f.rule, &out);
    out += "\",\"error\":";
    out += f.error ? "true" : "false";
    out += ",\"message\":\"";
    AppendEscaped(f.message, &out);
    out += "\"}";
  }
  out += "]}";
  return out;
}

}  // namespace kws::benchdiff

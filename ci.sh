#!/usr/bin/env bash
# The full gate: tier-1 build + tests, then ThreadSanitizer over the
# concurrent serving suites. Run from anywhere; paths are repo-relative.
set -euo pipefail
cd "$(dirname "$0")"

jobs="$(nproc)"

echo "== tier 1: configure + build + ctest (Release) =="
cmake --preset default
cmake --build build -j "${jobs}"
ctest --test-dir build --output-on-failure

echo "== tier 2: ThreadSanitizer (serve_test, common_test, cn_parallel_test) =="
cmake --preset tsan
cmake --build build-tsan -j "${jobs}" --target serve_test common_test cn_parallel_test
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/serve_test
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/common_test
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/cn_parallel_test

echo "== tier 3: smoke benches (E20 postings, E21 parallel CN; < 10 s) =="
./build/bench/bench_postings --smoke
./build/bench/bench_cn_parallel --smoke

echo "CI OK"

#!/usr/bin/env bash
# The full gate: kwslint, tier-1 build + tests, ASan/UBSan over the full
# suite, ThreadSanitizer over the concurrent serving suites, then the
# smoke benches. Run from anywhere; paths are repo-relative. Each tier's
# wall-clock is recorded and a timing summary prints at the end.
set -euo pipefail
cd "$(dirname "$0")"

jobs="$(nproc)"

tier_names=()
tier_secs=()
tier_start=${SECONDS}
tier_begin() {
  tier_start=${SECONDS}
  echo "== $1 =="
}
tier_end() {
  tier_names+=("$1")
  tier_secs+=("$((SECONDS - tier_start))")
}

tier_begin "tier 0: kwslint (invariant checker, JSON export)"
cmake --preset default
cmake --build build -j "${jobs}" --target kwslint
mkdir -p bench-out
# Fails (exit 1) on any non-baselined finding; the JSON snapshot rides
# along in bench-out/ with the experiment exports. On failure re-run in
# text mode so the log shows readable file:line diagnostics.
if ! ./build/tools/kwslint . --format=json > bench-out/kwslint.json; then
  echo "kwslint found non-baselined findings:"
  ./build/tools/kwslint . || true
  exit 1
fi
tier_end "tier 0 kwslint"

tier_begin "tier 1: build + ctest (Release)"
cmake --build build -j "${jobs}"
ctest --test-dir build --output-on-failure
tier_end "tier 1 build+ctest"

tier_begin "tier 2: ASan+UBSan (full ctest, Debug, contracts live)"
cmake --preset asan
cmake --build build-asan -j "${jobs}"
ASAN_OPTIONS="detect_leaks=1:halt_on_error=1" \
  ctest --test-dir build-asan --output-on-failure
tier_end "tier 2 asan/ubsan"

tier_begin "tier 3: ThreadSanitizer (serve, common, cn_parallel, trace, shard, update, obs)"
cmake --preset tsan
cmake --build build-tsan -j "${jobs}" --target serve_test common_test \
  cn_parallel_test trace_test shard_test update_test obs_test
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/serve_test
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/common_test
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/cn_parallel_test
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/trace_test
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/shard_test
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/update_test
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/obs_test
tier_end "tier 3 tsan"

tier_begin "tier 4: smoke benches + JSON export + benchdiff gate (E20..E25)"
cmake --build build -j "${jobs}" --target benchdiff
./build/bench/bench_postings --smoke --json=bench-out/E20.json
./build/bench/bench_cn_parallel --smoke --json=bench-out/E21.json
./build/bench/bench_trace --smoke --json=bench-out/E22.json
./build/bench/bench_sharding --smoke --json=bench-out/E23.json
./build/bench/bench_updates --smoke --json=bench-out/E24.json
./build/bench/bench_obs --smoke --json=bench-out/E25.json
# Every export must exist and parse as a bench JSON document.
for f in bench-out/E20.json bench-out/E21.json bench-out/E22.json \
         bench-out/E23.json bench-out/E24.json bench-out/E25.json; do
  [ -s "$f" ] || { echo "missing bench JSON: $f"; exit 1; }
  ./build/tools/benchdiff --check "$f"
done
# The perf-regression gate: structural drift always fails; smoke-run
# timings are noisy, so the ratio band is generous — a real regression
# is an order-of-magnitude event, not a 2x one. Refresh workflow: rerun
# the smoke benches and copy bench-out/E*.json over bench/baselines/.
for f in E20 E21 E22 E23 E24 E25; do
  ./build/tools/benchdiff --tolerance=5.0 \
    "bench/baselines/${f}.json" "bench-out/${f}.json"
done
tier_end "tier 4 benches"

echo "== timings =="
for i in "${!tier_names[@]}"; do
  printf '%-22s %4ss\n' "${tier_names[$i]}" "${tier_secs[$i]}"
done
echo "CI OK"

#include "xml/stats.h"

namespace kws::xml {

PathStatistics ComputePathStatistics(const XmlTree& tree) {
  PathStatistics stats;
  stats.total_elements = tree.size();
  double depth_sum = 0;
  for (XmlNodeId n = 0; n < tree.size(); ++n) {
    const std::string path = tree.LabelPath(n);
    ++stats.path_count[path];
    depth_sum += tree.depth(n);
    // Repeatability: count same-tag children under this parent.
    std::unordered_map<std::string, size_t> tag_counts;
    for (XmlNodeId c : tree.children(n)) ++tag_counts[tree.tag(c)];
    for (const auto& [tag, count] : tag_counts) {  // independent per-tag OR-updates -- kwslint: allow(unordered-iteration)
      const std::string child_path = path + "/" + tag;
      bool& repeatable = stats.path_repeatable[child_path];
      repeatable = repeatable || (count > 1);
    }
  }
  stats.avg_depth =
      tree.size() == 0 ? 0 : depth_sum / static_cast<double>(tree.size());
  return stats;
}

}  // namespace kws::xml

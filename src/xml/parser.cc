#include "xml/parser.h"

#include <cctype>
#include <vector>

#include "common/strings.h"

namespace kws::xml {

namespace {

/// Cursor over the input with the usual scanning helpers.
struct Cursor {
  std::string_view input;
  size_t pos = 0;

  bool AtEnd() const { return pos >= input.size(); }
  char Peek() const { return input[pos]; }
  bool Consume(char c) {
    if (!AtEnd() && input[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }
  void SkipSpace() {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(input[pos]))) {
      ++pos;
    }
  }
  std::string_view TakeName() {
    const size_t start = pos;
    while (!AtEnd()) {
      const char c = input[pos];
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
          c == '-' || c == '.') {
        ++pos;
      } else {
        break;
      }
    }
    return input.substr(start, pos - start);
  }
};

Status ParseElement(Cursor& cur, XmlTree& tree, XmlNodeId parent) {
  if (!cur.Consume('<')) {
    return Status::InvalidArgument("expected '<' at position " +
                                   std::to_string(cur.pos));
  }
  const std::string_view name = cur.TakeName();
  if (name.empty()) {
    return Status::InvalidArgument("empty tag name at position " +
                                   std::to_string(cur.pos));
  }
  const XmlNodeId node = tree.AddElement(parent, std::string(name));
  cur.SkipSpace();
  // Self-closing form <tag/>.
  if (cur.Consume('/')) {
    if (!cur.Consume('>')) {
      return Status::InvalidArgument("malformed self-closing tag " +
                                     std::string(name));
    }
    return Status::OK();
  }
  if (!cur.Consume('>')) {
    return Status::InvalidArgument("expected '>' after tag " +
                                   std::string(name));
  }
  // Content: interleaved text and child elements until </name>.
  for (;;) {
    const size_t text_start = cur.pos;
    while (!cur.AtEnd() && cur.Peek() != '<') ++cur.pos;
    const std::string_view raw =
        cur.input.substr(text_start, cur.pos - text_start);
    const std::string_view trimmed = kws::Trim(raw);
    if (!trimmed.empty()) tree.AppendText(node, trimmed);
    if (cur.AtEnd()) {
      return Status::InvalidArgument("unterminated element " +
                                     std::string(name));
    }
    // Closing tag?
    if (cur.pos + 1 < cur.input.size() && cur.input[cur.pos + 1] == '/') {
      cur.pos += 2;
      const std::string_view close = cur.TakeName();
      if (close != name) {
        return Status::InvalidArgument("mismatched close tag </" +
                                       std::string(close) + "> for <" +
                                       std::string(name) + ">");
      }
      cur.SkipSpace();
      if (!cur.Consume('>')) {
        return Status::InvalidArgument("malformed close tag for " +
                                       std::string(name));
      }
      return Status::OK();
    }
    KWS_RETURN_IF_ERROR(ParseElement(cur, tree, node));
  }
}

}  // namespace

Result<XmlTree> ParseXml(std::string_view input) {
  Cursor cur{input};
  cur.SkipSpace();
  if (cur.AtEnd()) return Status::InvalidArgument("empty document");
  XmlTree tree;
  Status s = ParseElement(cur, tree, kNoXmlNode);
  if (!s.ok()) return s;
  cur.SkipSpace();
  if (!cur.AtEnd()) {
    return Status::InvalidArgument("trailing content after root element");
  }
  tree.BuildKeywordIndex();
  return tree;
}

}  // namespace kws::xml

#ifndef KWDB_XML_TREE_H_
#define KWDB_XML_TREE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/strings.h"
#include "text/tokenizer.h"

namespace kws::xml {

/// Node id in an XmlTree. Ids are assigned in document (preorder) order,
/// so sorting ids sorts nodes in document order — the invariant every
/// LCA-family algorithm relies on.
using XmlNodeId = uint32_t;

/// Sentinel for "no node".
constexpr XmlNodeId kNoXmlNode = UINT32_MAX;

/// Dewey label: the child-index path from the root (root's is empty).
using Dewey = std::vector<uint32_t>;

/// An in-memory XML document tree. Elements carry a tag and optional
/// text content. Build in document order (a node's parent must already
/// exist); then call BuildKeywordIndex before keyword queries.
class XmlTree {
 public:
  XmlTree() = default;

  /// Adds an element under `parent` (kNoXmlNode for the root — allowed
  /// exactly once, first). Returns the new node id.
  XmlNodeId AddElement(XmlNodeId parent, std::string tag);

  /// Appends text content to `node` (keyword matches attach to this node).
  void AppendText(XmlNodeId node, std::string_view text);

  size_t size() const { return tags_.size(); }
  const std::string& tag(XmlNodeId n) const { return tags_[n]; }
  const std::string& text(XmlNodeId n) const { return texts_[n]; }
  /// Parent id, or kNoXmlNode for the root.
  XmlNodeId parent(XmlNodeId n) const { return parents_[n]; }
  const std::vector<XmlNodeId>& children(XmlNodeId n) const {
    return children_[n];
  }
  uint32_t depth(XmlNodeId n) const { return depths_[n]; }
  const Dewey& dewey(XmlNodeId n) const { return deweys_[n]; }

  /// True when `a` is an ancestor of `b` or a == b.
  bool IsAncestorOrSelf(XmlNodeId a, XmlNodeId b) const;

  /// Lowest common ancestor of `a` and `b`.
  XmlNodeId Lca(XmlNodeId a, XmlNodeId b) const;

  /// The label path "/bib/conf/paper" of `n`.
  std::string LabelPath(XmlNodeId n) const;

  /// Largest preorder id in the subtree of `n` (== n for leaves). With
  /// preorder ids, subtree(n) is exactly the id range [n, SubtreeEnd(n)],
  /// which is what the skip-based LCA algorithms binary-search on.
  /// Valid after BuildKeywordIndex().
  XmlNodeId SubtreeEnd(XmlNodeId n) const { return subtree_end_[n]; }

  /// Builds the keyword index (term -> nodes whose own text contains it,
  /// in document order).
  void BuildKeywordIndex();

  /// Nodes directly containing `term`; sorted in document order.
  /// Heterogeneous lookup: no string is materialized for the probe.
  const std::vector<XmlNodeId>& MatchNodes(std::string_view term) const;

  /// Nodes whose tag is exactly `tag`; sorted in document order.
  /// Maintained incrementally by AddElement (preorder ids ascend), so it
  /// is available before BuildKeywordIndex. This is what lets query
  /// classification and return-node inference probe tags in O(log n)
  /// instead of sweeping every node.
  const std::vector<XmlNodeId>& TagNodes(std::string_view tag) const;

  /// All distinct indexed terms.
  std::vector<std::string> Vocabulary() const;

  /// Serializes the subtree rooted at `n` (whole document for the root).
  std::string ToXmlString(XmlNodeId n, int indent = 0) const;

  /// Full structural audit of the preorder-id invariant: parents precede
  /// children, child lists are strictly increasing, and a depth-first walk
  /// from the root reproduces the ids 0..size-1 in order (i.e. ids ARE
  /// document order). O(n); compiled in every build — oracle tests call it
  /// after building random trees, complementing the per-AddElement
  /// KWS_DCHECK contract checks active in debug/sanitizer builds.
  Status ValidatePreorder() const;

 private:
  std::vector<std::string> tags_;
  std::vector<std::string> texts_;
  std::vector<XmlNodeId> parents_;
  std::vector<std::vector<XmlNodeId>> children_;
  std::vector<uint32_t> depths_;
  std::vector<Dewey> deweys_;
  std::unordered_map<std::string, std::vector<XmlNodeId>, StringHash,
                     std::equal_to<>>
      keyword_index_;
  std::unordered_map<std::string, std::vector<XmlNodeId>, StringHash,
                     std::equal_to<>>
      tag_index_;
  std::vector<XmlNodeId> subtree_end_;
  std::vector<XmlNodeId> empty_;
  text::Tokenizer tokenizer_;
};

}  // namespace kws::xml

#endif  // KWDB_XML_TREE_H_

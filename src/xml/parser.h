#ifndef KWDB_XML_PARSER_H_
#define KWDB_XML_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "xml/tree.h"

namespace kws::xml {

/// Parses a minimal XML dialect into an XmlTree: nested elements and text
/// content only (attributes, comments, processing instructions, entities
/// and namespaces are not supported — the synthetic corpora never emit
/// them). Whitespace-only text is dropped. The keyword index is built on
/// success.
Result<XmlTree> ParseXml(std::string_view input);

}  // namespace kws::xml

#endif  // KWDB_XML_PARSER_H_

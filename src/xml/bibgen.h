#ifndef KWDB_XML_BIBGEN_H_
#define KWDB_XML_BIBGEN_H_

#include <string>
#include <vector>

#include "xml/tree.h"

namespace kws::xml {

/// Parameters of the synthetic XML bibliography used by the LCA-family
/// experiments (tutorial slides 32-34, 137-141, 156).
struct BibOptions {
  uint64_t seed = 42;
  /// Venues are split round-robin across conference/journal/workshop so
  /// XBridge-style context clustering has several root contexts.
  size_t num_venues = 12;
  size_t papers_per_venue = 10;
  /// Mean authors per paper (sampled 1 .. 2*mean-1).
  size_t authors_per_paper = 2;
  size_t vocab_size = 300;
  double zipf_theta = 1.0;
  size_t title_terms_min = 3;
  size_t title_terms_max = 6;
};

/// The generated document plus the vocabulary (rank order = frequency
/// order, as for the relational generator).
struct BibDocument {
  XmlTree tree;
  std::vector<std::string> vocabulary;
};

/// Generates
///
///   <bib>
///     <conference><name/><year/>
///       <paper><title/><author/>...</paper>...
///     </conference>
///     <journal>...  <workshop>...
///   </bib>
///
/// with Zipf-skewed title terms and a shared author-name pool, and builds
/// the keyword index.
BibDocument MakeBibDocument(const BibOptions& options = {});

}  // namespace kws::xml

#endif  // KWDB_XML_BIBGEN_H_

#include "xml/bibgen.h"

#include "common/random.h"
#include "relational/dblp.h"

namespace kws::xml {

BibDocument MakeBibDocument(const BibOptions& options) {
  BibDocument out;
  Rng rng(options.seed);
  out.vocabulary = relational::MakeVocabulary(options.vocab_size);
  ZipfSampler zipf(options.vocab_size, options.zipf_theta);
  const std::vector<std::string> names = relational::MakePersonNames(
      std::max<size_t>(options.num_venues * options.papers_per_venue, 40));

  XmlTree& tree = out.tree;
  const XmlNodeId root = tree.AddElement(kNoXmlNode, "bib");
  constexpr const char* kVenueTags[] = {"conference", "journal", "workshop"};
  constexpr const char* kVenueNames[] = {"sigmod", "vldb",  "icde", "tods",
                                         "tkde",   "vldbj", "webdb", "dbrank"};
  for (size_t v = 0; v < options.num_venues; ++v) {
    const XmlNodeId venue = tree.AddElement(root, kVenueTags[v % 3]);
    const XmlNodeId name = tree.AddElement(venue, "name");
    tree.AppendText(name, kVenueNames[v % std::size(kVenueNames)]);
    const XmlNodeId year = tree.AddElement(venue, "year");
    tree.AppendText(year, std::to_string(2000 + v % 11));
    for (size_t p = 0; p < options.papers_per_venue; ++p) {
      const XmlNodeId paper = tree.AddElement(venue, "paper");
      const XmlNodeId title = tree.AddElement(paper, "title");
      const size_t terms =
          options.title_terms_min +
          rng.Index(options.title_terms_max - options.title_terms_min + 1);
      std::string title_text;
      for (size_t t = 0; t < terms; ++t) {
        if (t > 0) title_text += ' ';
        title_text += out.vocabulary[zipf.Sample(rng)];
      }
      tree.AppendText(title, title_text);
      const size_t mean = options.authors_per_paper;
      const size_t count = 1 + rng.Index(2 * mean > 1 ? 2 * mean - 1 : 1);
      for (size_t a = 0; a < count; ++a) {
        const XmlNodeId author = tree.AddElement(paper, "author");
        tree.AppendText(author, names[rng.Index(names.size())]);
      }
    }
  }
  tree.BuildKeywordIndex();
  return out;
}

}  // namespace kws::xml

#ifndef KWDB_XML_STATS_H_
#define KWDB_XML_STATS_H_

#include <string>
#include <unordered_map>

#include "xml/tree.h"

namespace kws::xml {

/// Structural statistics of a document, consumed by the return-type
/// inference (XReal/XBridge, tutorial slides 37-38) and the XSeek
/// entity/attribute classifier (slide 51).
struct PathStatistics {
  /// Elements per label path ("/bib/conference/paper" -> 120).
  std::unordered_map<std::string, size_t> path_count;
  /// Label paths whose terminal tag occurs more than once under at least
  /// one parent (XSeek: repeatable => candidate entity type).
  std::unordered_map<std::string, bool> path_repeatable;
  /// Average node depth (XBridge's proximity discount threshold).
  double avg_depth = 0;
  size_t total_elements = 0;
};

/// Single pass over the tree computing PathStatistics.
PathStatistics ComputePathStatistics(const XmlTree& tree);

}  // namespace kws::xml

#endif  // KWDB_XML_STATS_H_

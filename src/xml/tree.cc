#include "xml/tree.h"

#include <algorithm>
#include <string>

#include "common/check.h"

namespace kws::xml {

XmlNodeId XmlTree::AddElement(XmlNodeId parent, std::string tag) {
  const XmlNodeId id = static_cast<XmlNodeId>(tags_.size());
  KWS_DCHECK_MSG((parent == kNoXmlNode) == (id == 0),
                 "the first node (and only it) must be the root");
  KWS_DCHECK(parent == kNoXmlNode || parent < id);
#ifndef NDEBUG
  // Preorder invariant: the parent must be an ancestor-or-self of the
  // previously added node, i.e. construction is a depth-first walk. The
  // LCA algorithms depend on ids being document order.
  if (id > 0) {
    XmlNodeId probe = id - 1;
    while (probe != parent && probe != kNoXmlNode) probe = parents_[probe];
    KWS_DCHECK_MSG(probe == parent, "AddElement must follow document order");
  }
#endif
  tags_.push_back(std::move(tag));
  // Ids are assigned in ascending preorder, so appending keeps every
  // per-tag node list sorted in document order for free; the append-form
  // sorted contract pins that down at every insertion.
  std::vector<XmlNodeId>& tag_list = tag_index_[tags_.back()];
  KWS_DCHECK_SORTED_APPEND(tag_list, id);
  tag_list.push_back(id);
  texts_.emplace_back();
  parents_.push_back(parent);
  children_.emplace_back();
  if (parent == kNoXmlNode) {
    depths_.push_back(0);
    deweys_.emplace_back();
  } else {
    depths_.push_back(depths_[parent] + 1);
    Dewey d = deweys_[parent];
    d.push_back(static_cast<uint32_t>(children_[parent].size()));
    deweys_.push_back(std::move(d));
    KWS_DCHECK_SORTED_APPEND(children_[parent], id);
    children_[parent].push_back(id);
  }
  return id;
}

void XmlTree::AppendText(XmlNodeId node, std::string_view text) {
  if (!texts_[node].empty()) texts_[node] += ' ';
  texts_[node] += text;
}

bool XmlTree::IsAncestorOrSelf(XmlNodeId a, XmlNodeId b) const {
  const Dewey& da = deweys_[a];
  const Dewey& db = deweys_[b];
  if (da.size() > db.size()) return false;
  return std::equal(da.begin(), da.end(), db.begin());
}

XmlNodeId XmlTree::Lca(XmlNodeId a, XmlNodeId b) const {
  const Dewey& da = deweys_[a];
  const Dewey& db = deweys_[b];
  size_t common = 0;
  const size_t limit = std::min(da.size(), db.size());
  while (common < limit && da[common] == db[common]) ++common;
  // Walk down from the root along the common prefix.
  XmlNodeId node = 0;
  for (size_t i = 0; i < common; ++i) node = children_[node][da[i]];
  return node;
}

std::string XmlTree::LabelPath(XmlNodeId n) const {
  std::vector<const std::string*> parts;
  XmlNodeId cur = n;
  while (cur != kNoXmlNode) {
    parts.push_back(&tags_[cur]);
    cur = parents_[cur];
  }
  std::string out;
  for (auto it = parts.rbegin(); it != parts.rend(); ++it) {
    out += '/';
    out += **it;
  }
  return out;
}

void XmlTree::BuildKeywordIndex() {
  // Subtree extents: with preorder ids, children have larger ids than
  // their parent, so a reverse sweep folds extents upward.
  subtree_end_.resize(tags_.size());
  for (size_t i = tags_.size(); i > 0; --i) {
    const XmlNodeId n = static_cast<XmlNodeId>(i - 1);
    subtree_end_[n] = n;
    for (XmlNodeId c : children_[n]) {
      subtree_end_[n] = std::max(subtree_end_[n], subtree_end_[c]);
    }
  }
  keyword_index_.clear();
  for (XmlNodeId n = 0; n < texts_.size(); ++n) {
    tokenizer_.ForEachToken(texts_[n], [&](std::string_view t) {
      auto it = keyword_index_.find(t);
      if (it == keyword_index_.end()) {
        it = keyword_index_.emplace(std::string(t), std::vector<XmlNodeId>())
                 .first;
      }
      std::vector<XmlNodeId>& nodes = it->second;
      if (nodes.empty() || nodes.back() != n) nodes.push_back(n);
    });
  }
}

const std::vector<XmlNodeId>& XmlTree::MatchNodes(
    std::string_view term) const {
  auto it = keyword_index_.find(term);
  return it == keyword_index_.end() ? empty_ : it->second;
}

const std::vector<XmlNodeId>& XmlTree::TagNodes(std::string_view tag) const {
  auto it = tag_index_.find(tag);
  return it == tag_index_.end() ? empty_ : it->second;
}

std::vector<std::string> XmlTree::Vocabulary() const {
  std::vector<std::string> out;
  out.reserve(keyword_index_.size());
  for (const auto& [term, nodes] : keyword_index_) out.push_back(term);  // sorted right below -- kwslint: allow(unordered-iteration)
  std::sort(out.begin(), out.end());
  return out;
}

std::string XmlTree::ToXmlString(XmlNodeId n, int indent) const {
  std::string pad(static_cast<size_t>(indent) * 2, ' ');
  std::string out = pad + "<" + tags_[n] + ">";
  const bool leaf = children_[n].empty();
  if (!texts_[n].empty()) out += texts_[n];
  if (!leaf) {
    out += '\n';
    for (XmlNodeId c : children_[n]) out += ToXmlString(c, indent + 1);
    out += pad;
  }
  out += "</" + tags_[n] + ">\n";
  return out;
}

Status XmlTree::ValidatePreorder() const {
  const size_t n = tags_.size();
  if (n == 0) return Status::OK();
  if (parents_[0] != kNoXmlNode) {
    return Status::Internal("node 0 is not a root");
  }
  for (XmlNodeId i = 1; i < n; ++i) {
    if (parents_[i] == kNoXmlNode) {
      return Status::Internal("second root at node " + std::to_string(i));
    }
    if (parents_[i] >= i) {
      return Status::Internal("parent " + std::to_string(parents_[i]) +
                              " does not precede child " + std::to_string(i));
    }
  }
  for (XmlNodeId i = 0; i < n; ++i) {
    const std::vector<XmlNodeId>& kids = children_[i];
    for (size_t k = 1; k < kids.size(); ++k) {
      if (kids[k - 1] >= kids[k]) {
        return Status::Internal("children of " + std::to_string(i) +
                                " not strictly increasing");
      }
    }
  }
  // Ids must be exactly the depth-first (document-order) numbering: an
  // explicit DFS from the root re-derives them and compares.
  std::vector<XmlNodeId> stack = {0};
  XmlNodeId next = 0;
  while (!stack.empty()) {
    const XmlNodeId node = stack.back();
    stack.pop_back();
    if (node != next) {
      return Status::Internal("node " + std::to_string(node) +
                              " visited at preorder position " +
                              std::to_string(next));
    }
    ++next;
    const std::vector<XmlNodeId>& kids = children_[node];
    for (size_t k = kids.size(); k > 0; --k) stack.push_back(kids[k - 1]);
  }
  if (next != n) {
    return Status::Internal(std::to_string(n - next) +
                            " nodes unreachable from the root");
  }
  return Status::OK();
}

}  // namespace kws::xml

#include "graph/pagerank.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace kws::graph {

namespace {

std::vector<double> RunPageRank(const DataGraph& g,
                                const PageRankOptions& options,
                                bool weighted) {
  const size_t n = g.num_nodes();
  if (n == 0) return {};
  std::vector<double> rank(n, 1.0 / static_cast<double>(n));
  std::vector<double> next(n);
  std::vector<double> out_weight(n, 0.0);
  for (NodeId u = 0; u < n; ++u) {
    if (weighted) {
      for (const Edge& e : g.Out(u)) out_weight[u] += e.weight;
    } else {
      out_weight[u] = static_cast<double>(g.OutDegree(u));
    }
  }
  const double base = (1.0 - options.damping) / static_cast<double>(n);
  for (size_t iter = 0; iter < options.max_iterations; ++iter) {
    std::fill(next.begin(), next.end(), 0.0);
    double dangling = 0.0;
    for (NodeId u = 0; u < n; ++u) {
      if (out_weight[u] <= 0) {
        dangling += rank[u];
        continue;
      }
      for (const Edge& e : g.Out(u)) {
        const double share = weighted ? e.weight / out_weight[u]
                                      : 1.0 / out_weight[u];
        next[e.to] += options.damping * rank[u] * share;
      }
    }
    const double dangling_share =
        options.damping * dangling / static_cast<double>(n);
    double delta = 0.0;
    for (NodeId v = 0; v < n; ++v) {
      next[v] += base + dangling_share;
      delta += std::abs(next[v] - rank[v]);
    }
    rank.swap(next);
    if (delta < options.tolerance) break;
  }
  return rank;
}

}  // namespace

std::vector<double> PageRank(const DataGraph& g,
                             const PageRankOptions& options) {
  return RunPageRank(g, options, /*weighted=*/false);
}

std::vector<double> WeightedPageRank(const DataGraph& g,
                                     const PageRankOptions& options) {
  return RunPageRank(g, options, /*weighted=*/true);
}

}  // namespace kws::graph

#ifndef KWDB_GRAPH_HUB_INDEX_H_
#define KWDB_GRAPH_HUB_INDEX_H_

#include <unordered_map>
#include <vector>

#include "graph/data_graph.h"

namespace kws::graph {

/// Hub-based distance oracle after Goldman et al.'s proximity search
/// (VLDB 98; tutorial slide 122). Hubs are high-degree nodes; for every
/// node we store d*(u, v): shortest distances that do not pass *through*
/// a hub (hubs may be endpoints), which keeps per-node neighborhoods
/// small, plus a dense hub-to-hub distance matrix. Then
///
///   d(x, y) = min( d*(x, y),
///                  min_{A,B hubs} d*(x, A) + dH(A, B) + d*(B, y) ).
///
/// Treats the graph as undirected (uses Out-edges both ways as built by
/// BuildDataGraph, which materializes both directions).
class HubDistanceIndex {
 public:
  /// Size/precision trade-offs for the hub distance index.
  struct Options {
    /// Number of hubs (top in-degree nodes).
    size_t num_hubs = 16;
    /// Cap on stored non-hub-crossing distances.
    double max_radius = kInfDist;
  };

  /// Builds the index: one bounded Dijkstra per node (not relaxing through
  /// hubs) and one per hub.
  HubDistanceIndex(const DataGraph& g, const Options& options);

  /// Estimated shortest distance; exact whenever the true shortest path
  /// crosses at most the chosen hub set in the indexed pattern, otherwise
  /// an upper bound (or kInfDist when no certificate exists).
  double Distance(NodeId x, NodeId y) const;

  const std::vector<NodeId>& hubs() const { return hubs_; }

  /// Total number of stored (node, node, dist) entries — the space cost
  /// reported by the E8 benchmark.
  size_t StorageEntries() const;

 private:
  const DataGraph& graph_;
  std::vector<NodeId> hubs_;
  std::vector<int32_t> hub_rank_;  // -1 when not a hub
  /// d*(u, .) sparse rows: pairs (node, dist), sorted by node.
  std::vector<std::vector<std::pair<NodeId, double>>> local_;
  /// Dense hub-to-hub distances, row-major num_hubs x num_hubs.
  std::vector<double> hub_dist_;

  double Local(NodeId u, NodeId v) const;
};

}  // namespace kws::graph

#endif  // KWDB_GRAPH_HUB_INDEX_H_

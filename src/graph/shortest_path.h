#ifndef KWDB_GRAPH_SHORTEST_PATH_H_
#define KWDB_GRAPH_SHORTEST_PATH_H_

#include <vector>

#include "graph/data_graph.h"

namespace kws::graph {

/// Output of a single-source shortest-path computation: distance and
/// predecessor per node (kInfDist / -1 when unreachable).
struct ShortestPaths {
  std::vector<double> dist;
  std::vector<int32_t> parent;

  bool Reachable(NodeId n) const { return dist[n] != kInfDist; }

  /// Reconstructs the path source..n (inclusive); empty when unreachable.
  std::vector<NodeId> PathTo(NodeId n) const;
};

/// Direction of traversal relative to the stored edges.
enum class Direction {
  kForward,   // follow Out()
  kBackward,  // follow In() (i.e., shortest path *to* the sources)
};

/// Dijkstra from `sources` (multi-source: distance is to the nearest
/// source). `max_dist` prunes the search frontier; nodes farther than it
/// keep kInfDist.
ShortestPaths Dijkstra(const DataGraph& g, const std::vector<NodeId>& sources,
                       Direction direction = Direction::kForward,
                       double max_dist = kInfDist);

/// Unweighted BFS hop counts from `sources` (hops in `dist`).
ShortestPaths Bfs(const DataGraph& g, const std::vector<NodeId>& sources,
                  Direction direction = Direction::kForward,
                  double max_dist = kInfDist);

}  // namespace kws::graph

#endif  // KWDB_GRAPH_SHORTEST_PATH_H_

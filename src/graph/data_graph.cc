#include "graph/data_graph.h"

#include <algorithm>
#include <cmath>

namespace kws::graph {

NodeId DataGraph::AddNode(std::string label, std::string text) {
  const NodeId id = static_cast<NodeId>(labels_.size());
  labels_.push_back(std::move(label));
  texts_.push_back(std::move(text));
  out_.emplace_back();
  in_.emplace_back();
  return id;
}

void DataGraph::AddEdge(NodeId u, NodeId v, double weight,
                        double back_weight) {
  out_[u].push_back(Edge{v, weight});
  in_[v].push_back(Edge{u, weight});
  ++num_edges_;
  if (back_weight > 0) {
    out_[v].push_back(Edge{u, back_weight});
    in_[u].push_back(Edge{v, back_weight});
    ++num_edges_;
  }
}

void DataGraph::BuildKeywordIndex() {
  keyword_index_.clear();
  for (NodeId n = 0; n < texts_.size(); ++n) {
    for (const std::string& t : tokenizer_.Tokenize(texts_[n])) {
      std::vector<NodeId>& nodes = keyword_index_[t];
      if (nodes.empty() || nodes.back() != n) nodes.push_back(n);
    }
  }
}

const std::vector<NodeId>& DataGraph::MatchNodes(
    const std::string& term) const {
  auto it = keyword_index_.find(term);
  return it == keyword_index_.end() ? empty_ : it->second;
}

RelationalGraph BuildDataGraph(const relational::Database& db,
                               const GraphBuildOptions& options) {
  RelationalGraph out;
  // Nodes: every tuple of every table.
  for (relational::TableId t = 0; t < db.num_tables(); ++t) {
    const relational::Table& table = db.table(t);
    for (relational::RowId r = 0; r < table.num_rows(); ++r) {
      const relational::TupleId tid{t, r};
      const NodeId n = out.graph.AddNode(db.TupleToString(tid),
                                         table.SearchableText(r));
      out.node_to_tuple.push_back(tid);
      out.tuple_to_node.emplace(tid, n);
    }
  }
  // Edges: every FK instance pair, referencing -> referenced.
  for (uint32_t fk_index = 0; fk_index < db.foreign_keys().size();
       ++fk_index) {
    const relational::ForeignKey& fk = db.foreign_keys()[fk_index];
    const relational::Table& from = db.table(fk.table);
    for (relational::RowId r = 0; r < from.num_rows(); ++r) {
      const relational::TupleId src{fk.table, r};
      for (const relational::TupleId& dst :
           db.JoinedRows(fk_index, src, /*from_referencing=*/true)) {
        const NodeId u = out.tuple_to_node.at(src);
        const NodeId v = out.tuple_to_node.at(dst);
        out.graph.AddEdge(u, v, options.forward_weight, /*back_weight=*/0);
      }
    }
  }
  // Backward edges, weighted by the in-degree of the *referenced* node as
  // in BANKS II (popular nodes are expensive to traverse backwards).
  const size_t n = out.graph.num_nodes();
  std::vector<std::vector<Edge>> backward(n);
  for (NodeId v = 0; v < n; ++v) {
    for (const Edge& e : out.graph.In(v)) {
      const double w = options.degree_weighted_backward
                           ? std::log2(1.0 + static_cast<double>(
                                                 out.graph.InDegree(v)))
                           : options.forward_weight;
      backward[v].push_back(Edge{e.to, std::max(w, 1e-9)});
    }
  }
  for (NodeId v = 0; v < n; ++v) {
    for (const Edge& e : backward[v]) {
      out.graph.AddEdge(v, e.to, e.weight, /*back_weight=*/0);
    }
  }
  out.graph.BuildKeywordIndex();
  return out;
}

}  // namespace kws::graph

#ifndef KWDB_GRAPH_DATA_GRAPH_H_
#define KWDB_GRAPH_DATA_GRAPH_H_

#include <cstdint>
#include <limits>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "relational/database.h"
#include "relational/schema.h"
#include "text/tokenizer.h"

namespace kws::graph {

/// Node id in a data graph (dense, 0-based).
using NodeId = uint32_t;

constexpr double kInfDist = std::numeric_limits<double>::infinity();

/// One directed edge.
struct Edge {
  NodeId to = 0;
  double weight = 1.0;
};

/// The data-graph model of tutorial slide 29: each tuple (or arbitrary
/// object) is a node, each foreign-key pair is an edge. Directed edges are
/// stored with both out- and in-adjacency so that backward expanding
/// search (BANKS) is O(in-degree).
///
/// A keyword index maps each normalized term to the nodes whose text
/// contains it.
class DataGraph {
 public:
  DataGraph() = default;

  /// Adds a node with display `label` and searchable `text`; returns its id.
  NodeId AddNode(std::string label, std::string text);

  /// Adds a directed edge u -> v with `weight`, plus (by convention of the
  /// BANKS family) a backward edge v -> u with `back_weight`. Pass
  /// back_weight = 0 to suppress the reverse edge.
  void AddEdge(NodeId u, NodeId v, double weight, double back_weight);

  /// Convenience: undirected edge (same weight both ways).
  void AddUndirectedEdge(NodeId u, NodeId v, double weight) {
    AddEdge(u, v, weight, weight);
  }

  size_t num_nodes() const { return labels_.size(); }
  size_t num_edges() const { return num_edges_; }

  const std::string& label(NodeId n) const { return labels_[n]; }
  const std::string& text(NodeId n) const { return texts_[n]; }

  /// Outgoing edges of `n`.
  const std::vector<Edge>& Out(NodeId n) const { return out_[n]; }
  /// Incoming edges of `n` (as edges pointing to the source).
  const std::vector<Edge>& In(NodeId n) const { return in_[n]; }

  size_t OutDegree(NodeId n) const { return out_[n].size(); }
  size_t InDegree(NodeId n) const { return in_[n].size(); }

  /// Builds the keyword -> nodes index from node texts. Call after all
  /// nodes are added and before MatchNodes.
  void BuildKeywordIndex();

  /// Nodes whose text contains `term` (normalized token), sorted.
  const std::vector<NodeId>& MatchNodes(const std::string& term) const;

  /// Per-node PageRank-style prestige, if ComputePrestige was called
  /// (used by BANKS node scoring); defaults to 1.0.
  double prestige(NodeId n) const {
    return prestige_.empty() ? 1.0 : prestige_[n];
  }
  void set_prestige(std::vector<double> prestige) {
    prestige_ = std::move(prestige);
  }

 private:
  std::vector<std::string> labels_;
  std::vector<std::string> texts_;
  std::vector<std::vector<Edge>> out_;
  std::vector<std::vector<Edge>> in_;
  std::unordered_map<std::string, std::vector<NodeId>> keyword_index_;
  std::vector<double> prestige_;
  std::vector<NodeId> empty_;
  size_t num_edges_ = 0;
  text::Tokenizer tokenizer_;
};

/// Result of building a graph from a relational database: the graph plus
/// the tuple <-> node correspondence.
struct RelationalGraph {
  DataGraph graph;
  std::vector<relational::TupleId> node_to_tuple;
  std::unordered_map<relational::TupleId, NodeId, relational::TupleIdHash>
      tuple_to_node;
};

/// Options controlling edge weights when building from a database.
struct GraphBuildOptions {
  /// Weight of the FK edge (referencing -> referenced).
  double forward_weight = 1.0;
  /// Backward edges are weighted log2(1 + indegree(v)) as in BANKS II when
  /// true; fixed at forward_weight otherwise.
  bool degree_weighted_backward = true;
};

/// Materializes the data graph of `db` (tutorial slide 29): one node per
/// tuple, one edge pair per foreign-key pair. Keyword index is built.
RelationalGraph BuildDataGraph(const relational::Database& db,
                               const GraphBuildOptions& options = {});

}  // namespace kws::graph

#endif  // KWDB_GRAPH_DATA_GRAPH_H_

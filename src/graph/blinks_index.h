#ifndef KWDB_GRAPH_BLINKS_INDEX_H_
#define KWDB_GRAPH_BLINKS_INDEX_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "graph/data_graph.h"

namespace kws::graph {

/// Node-to-keyword distance index in the spirit of BLINKS / SLINKS
/// (He et al., SIGMOD 07; tutorial slide 123): for each indexed keyword,
/// the distance from every node to its nearest occurrence, following the
/// graph's directed edges (a node "reaches" a keyword through its
/// out-edges, matching the distinct-root cost cost(r, match_i)).
///
/// Space is O(K * V) for K indexed keywords, which is why real systems cap
/// K or the radius; both caps are exposed here.
class KeywordDistanceIndex {
 public:
  /// `max_radius` caps stored distances (farther = not stored, queried as
  /// kInfDist): this is the D-threshold idea of the reachability indexes
  /// of Markowetz et al. (tutorial slide 124).
  explicit KeywordDistanceIndex(const DataGraph& g,
                                double max_radius = kInfDist)
      : graph_(g), max_radius_(max_radius) {}

  /// Indexes `term`: one multi-source backward Dijkstra from its matches.
  /// No-op when already indexed.
  void IndexTerm(const std::string& term);

  /// Indexes every term in the graph's keyword index... intended for small
  /// vocabularies; cost is one Dijkstra per term.
  void IndexAllTerms(const std::vector<std::string>& vocabulary);

  bool HasTerm(const std::string& term) const {
    return distances_.count(term) > 0;
  }

  /// Distance from `node` to the nearest match of `term` (kInfDist when
  /// unreachable, beyond the radius, or term not indexed).
  double Distance(NodeId node, const std::string& term) const;

  /// Nodes that can reach every term of `terms` within the radius, i.e.
  /// candidate distinct roots, with the summed distance as cost. Sorted by
  /// ascending cost.
  std::vector<std::pair<NodeId, double>> CandidateRoots(
      const std::vector<std::string>& terms) const;

  size_t num_indexed_terms() const { return distances_.size(); }

 private:
  const DataGraph& graph_;
  double max_radius_;
  std::unordered_map<std::string, std::vector<double>> distances_;
};

}  // namespace kws::graph

#endif  // KWDB_GRAPH_BLINKS_INDEX_H_

#include "graph/blinks_index.h"

#include <algorithm>

#include "graph/shortest_path.h"

namespace kws::graph {

void KeywordDistanceIndex::IndexTerm(const std::string& term) {
  if (distances_.count(term) > 0) return;
  const std::vector<NodeId>& matches = graph_.MatchNodes(term);
  // Distance *from* any node *to* a match equals the backward distance
  // from the matches over in-edges.
  ShortestPaths sp =
      Dijkstra(graph_, matches, Direction::kBackward, max_radius_);
  distances_.emplace(term, std::move(sp.dist));
}

void KeywordDistanceIndex::IndexAllTerms(
    const std::vector<std::string>& vocabulary) {
  for (const std::string& term : vocabulary) IndexTerm(term);
}

double KeywordDistanceIndex::Distance(NodeId node,
                                      const std::string& term) const {
  auto it = distances_.find(term);
  if (it == distances_.end()) return kInfDist;
  return it->second[node];
}

std::vector<std::pair<NodeId, double>> KeywordDistanceIndex::CandidateRoots(
    const std::vector<std::string>& terms) const {
  std::vector<std::pair<NodeId, double>> out;
  if (terms.empty()) return out;
  for (NodeId n = 0; n < graph_.num_nodes(); ++n) {
    double total = 0;
    bool ok = true;
    for (const std::string& t : terms) {
      const double d = Distance(n, t);
      if (d == kInfDist) {
        ok = false;
        break;
      }
      total += d;
    }
    if (ok) out.emplace_back(n, total);
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.second < b.second; });
  return out;
}

}  // namespace kws::graph

#include "graph/hub_index.h"

#include <algorithm>
#include <queue>

namespace kws::graph {

namespace {

/// Dijkstra over Out edges that never *expands* a node in `blocked`
/// (blocked nodes can still be reached as endpoints). Bounded by
/// `max_radius`. Returns (node, dist) pairs sorted by node id.
std::vector<std::pair<NodeId, double>> BlockedDijkstra(
    const DataGraph& g, NodeId source, const std::vector<int32_t>& hub_rank,
    double max_radius) {
  std::unordered_map<NodeId, double> dist;
  using Item = std::pair<double, NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<Item>> pq;
  dist[source] = 0;
  pq.push({0.0, source});
  while (!pq.empty()) {
    auto [d, u] = pq.top();
    pq.pop();
    auto it = dist.find(u);
    if (it != dist.end() && d > it->second) continue;
    // Hubs are frontier endpoints: never expand through them (except when
    // the hub is the source itself).
    if (u != source && hub_rank[u] >= 0) continue;
    for (const Edge& e : g.Out(u)) {
      const double nd = d + e.weight;
      if (nd > max_radius) continue;
      auto [vit, inserted] = dist.emplace(e.to, nd);
      if (!inserted) {
        if (nd >= vit->second) continue;
        vit->second = nd;
      }
      pq.push({nd, e.to});
    }
  }
  std::vector<std::pair<NodeId, double>> out(dist.begin(), dist.end());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

HubDistanceIndex::HubDistanceIndex(const DataGraph& g, const Options& options)
    : graph_(g) {
  const size_t n = g.num_nodes();
  // Hubs: highest total degree.
  std::vector<NodeId> order(n);
  for (NodeId i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    const size_t da = g.OutDegree(a) + g.InDegree(a);
    const size_t db = g.OutDegree(b) + g.InDegree(b);
    if (da != db) return da > db;
    return a < b;
  });
  const size_t num_hubs = std::min(options.num_hubs, n);
  hubs_.assign(order.begin(), order.begin() + num_hubs);
  hub_rank_.assign(n, -1);
  for (size_t h = 0; h < hubs_.size(); ++h) {
    hub_rank_[hubs_[h]] = static_cast<int32_t>(h);
  }
  // Per-node local (non-hub-crossing) distance rows.
  local_.resize(n);
  for (NodeId u = 0; u < n; ++u) {
    local_[u] = BlockedDijkstra(g, u, hub_rank_, options.max_radius);
  }
  // Hub-to-hub exact distances (full Dijkstra from each hub).
  hub_dist_.assign(num_hubs * num_hubs, kInfDist);
  for (size_t h = 0; h < num_hubs; ++h) {
    // Full (unblocked) Dijkstra over Out edges.
    std::vector<double> dist(n, kInfDist);
    using Item = std::pair<double, NodeId>;
    std::priority_queue<Item, std::vector<Item>, std::greater<Item>> pq;
    dist[hubs_[h]] = 0;
    pq.push({0.0, hubs_[h]});
    while (!pq.empty()) {
      auto [d, u] = pq.top();
      pq.pop();
      if (d > dist[u]) continue;
      for (const Edge& e : g.Out(u)) {
        if (d + e.weight < dist[e.to]) {
          dist[e.to] = d + e.weight;
          pq.push({d + e.weight, e.to});
        }
      }
    }
    for (size_t h2 = 0; h2 < num_hubs; ++h2) {
      hub_dist_[h * num_hubs + h2] = dist[hubs_[h2]];
    }
  }
}

double HubDistanceIndex::Local(NodeId u, NodeId v) const {
  const auto& row = local_[u];
  auto it = std::lower_bound(
      row.begin(), row.end(), v,
      [](const std::pair<NodeId, double>& p, NodeId key) {
        return p.first < key;
      });
  if (it != row.end() && it->first == v) return it->second;
  return kInfDist;
}

double HubDistanceIndex::Distance(NodeId x, NodeId y) const {
  double best = Local(x, y);
  const size_t num_hubs = hubs_.size();
  for (size_t a = 0; a < num_hubs; ++a) {
    const double dxa = Local(x, hubs_[a]);
    if (dxa == kInfDist) continue;
    for (size_t b = 0; b < num_hubs; ++b) {
      const double dby = Local(y, hubs_[b]);  // undirected symmetry
      if (dby == kInfDist) continue;
      const double via = dxa + hub_dist_[a * num_hubs + b] + dby;
      best = std::min(best, via);
    }
  }
  return best;
}

size_t HubDistanceIndex::StorageEntries() const {
  size_t total = hub_dist_.size();
  for (const auto& row : local_) total += row.size();
  return total;
}

}  // namespace kws::graph

#include "graph/shortest_path.h"

#include <algorithm>
#include <deque>
#include <queue>

namespace kws::graph {

std::vector<NodeId> ShortestPaths::PathTo(NodeId n) const {
  if (!Reachable(n)) return {};
  std::vector<NodeId> path;
  int32_t cur = static_cast<int32_t>(n);
  while (cur >= 0) {
    path.push_back(static_cast<NodeId>(cur));
    cur = parent[cur];
  }
  std::reverse(path.begin(), path.end());
  return path;
}

ShortestPaths Dijkstra(const DataGraph& g, const std::vector<NodeId>& sources,
                       Direction direction, double max_dist) {
  ShortestPaths out;
  out.dist.assign(g.num_nodes(), kInfDist);
  out.parent.assign(g.num_nodes(), -1);
  using Item = std::pair<double, NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<Item>> pq;
  for (NodeId s : sources) {
    if (out.dist[s] > 0) {
      out.dist[s] = 0;
      pq.push({0.0, s});
    }
  }
  while (!pq.empty()) {
    auto [d, u] = pq.top();
    pq.pop();
    if (d > out.dist[u]) continue;
    const std::vector<Edge>& edges =
        direction == Direction::kForward ? g.Out(u) : g.In(u);
    for (const Edge& e : edges) {
      const double nd = d + e.weight;
      if (nd > max_dist) continue;
      if (nd < out.dist[e.to]) {
        out.dist[e.to] = nd;
        out.parent[e.to] = static_cast<int32_t>(u);
        pq.push({nd, e.to});
      }
    }
  }
  return out;
}

ShortestPaths Bfs(const DataGraph& g, const std::vector<NodeId>& sources,
                  Direction direction, double max_dist) {
  ShortestPaths out;
  out.dist.assign(g.num_nodes(), kInfDist);
  out.parent.assign(g.num_nodes(), -1);
  std::deque<NodeId> queue;
  for (NodeId s : sources) {
    if (out.dist[s] != 0) {
      out.dist[s] = 0;
      queue.push_back(s);
    }
  }
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop_front();
    const double nd = out.dist[u] + 1;
    if (nd > max_dist) continue;
    const std::vector<Edge>& edges =
        direction == Direction::kForward ? g.Out(u) : g.In(u);
    for (const Edge& e : edges) {
      if (out.dist[e.to] == kInfDist) {
        out.dist[e.to] = nd;
        out.parent[e.to] = static_cast<int32_t>(u);
        queue.push_back(e.to);
      }
    }
  }
  return out;
}

}  // namespace kws::graph

#ifndef KWDB_GRAPH_PAGERANK_H_
#define KWDB_GRAPH_PAGERANK_H_

#include <vector>

#include "graph/data_graph.h"

namespace kws::graph {

/// PageRank parameters. The tutorial adapts PageRank twice: as node
/// authority for ranking (slide 145) and as entity "queriability" for form
/// generation (slide 60); both use this routine.
struct PageRankOptions {
  double damping = 0.85;
  size_t max_iterations = 50;
  double tolerance = 1e-9;
};

/// Standard power-iteration PageRank over the graph's directed edges.
/// Scores sum to 1. Dangling mass is redistributed uniformly.
std::vector<double> PageRank(const DataGraph& g,
                             const PageRankOptions& options = {});

/// Weighted PageRank: a node spreads score to out-neighbors proportionally
/// to edge weight (used by the form-generation queriability model, where
/// weights encode average participation).
std::vector<double> WeightedPageRank(const DataGraph& g,
                                     const PageRankOptions& options = {});

}  // namespace kws::graph

#endif  // KWDB_GRAPH_PAGERANK_H_

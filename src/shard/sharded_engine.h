#ifndef KWDB_SHARD_SHARDED_ENGINE_H_
#define KWDB_SHARD_SHARDED_ENGINE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/deadline.h"
#include "common/metrics.h"
#include "common/status.h"
#include "common/trace.h"
#include "core/cn/search.h"
#include "core/cn/tuple_set_cache.h"
#include "core/select/db_selection.h"
#include "shard/sharded_corpus.h"

namespace kws::shard {

/// Construction-time knobs of the sharded engine.
struct ShardedEngineOptions {
  /// CN size bound (DISCOVER's Tmax), fixed at construction because the
  /// shard-pruning distance index is built with radius `max_cn_size - 1`.
  /// Must be >= 1.
  size_t max_cn_size = 5;
  /// Capacity of each shard's term -> tuple-set frontier cache
  /// (0 disables caching; responses are identical either way).
  size_t tuple_cache_capacity = 128;
};

/// Per-query knobs of `ShardedEngine::Search`.
struct ShardedSearchOptions {
  size_t k = 10;
  cn::Strategy strategy = cn::Strategy::kSparse;
  /// Global query budget; expiry yields partial results with
  /// `kDeadlineExceeded`.
  Deadline deadline = {};
  /// Additional per-shard budget in microseconds, anchored when the
  /// shard's evaluation starts (0 = none); the tighter of this and
  /// `deadline` governs each shard. Any shard running out marks the whole
  /// response partial.
  uint64_t shard_budget_micros = 0;
  /// Selection-based shard pruning: skip shards whose keyword coverage or
  /// joinability says they cannot contribute a result. Sound — pruning
  /// never changes the merged top-k (the oracle test sweeps both
  /// settings).
  bool prune = true;
  /// Scatter worker threads fanning the per-shard searches out (static
  /// striding over the searched-shard list). Results are bit-identical
  /// for every value.
  size_t num_threads = 1;
  /// Models the per-CN RDBMS round-trip each shard would pay in a real
  /// deployment (forwarded to `cn::SearchOptions::simulated_cn_io_micros`,
  /// the E19/E21 convention); the scatter overlaps whole shards. 0 (the
  /// default) disables the simulation.
  uint64_t simulated_cn_io_micros = 0;
  /// Optional per-query tracer (not owned). Produces a `shard.search`
  /// span with `shard.select`, `cn.enumerate`, `shard.scatter` and
  /// `shard.gather` children; the span *structure* is independent of
  /// both `num_threads` and the shard count.
  trace::Tracer* tracer = nullptr;
};

/// Counters of one sharded search; `Search` fills every field on every
/// exit path.
struct ShardedSearchStats {
  size_t shards_total = 0;
  /// Shards skipped by selection-based pruning.
  size_t shards_pruned = 0;
  /// Shards actually searched (`shards_total - shards_pruned`).
  size_t shards_searched = 0;
  /// Size of the (global) candidate-network list every shard evaluated.
  size_t cns_enumerated = 0;
  /// Per shard: true when pruning skipped it.
  std::vector<bool> shard_pruned;
  /// Per shard: results its evaluation materialized and offered to the
  /// gather — always 0 for pruned shards and for shards that cannot
  /// contribute. Under kSparse the shared early-termination threshold
  /// makes the exact counts schedule-dependent (like the kSparse
  /// aggregate counters of `cn::SearchStats`); the merged top-k never is.
  std::vector<size_t> shard_results;
  /// Per shard: CNs its evaluation admitted — the per-shard round-trip
  /// count a real deployment would pay. Schedule-dependent under kSparse
  /// exactly like `shard_results`.
  std::vector<size_t> shard_cns_evaluated;
  /// True when any budget (global or per-shard) cut the search short.
  bool deadline_hit = false;
};

/// One sharded query round-trip. `results` carry *combined* (global)
/// tuple ids under `cn::SearchResultOrder` — bit-identical to
/// `cn::CnKeywordSearch::Search` over `ShardedCorpus::combined` for every
/// seed, shard count and thread count.
struct ShardedResponse {
  /// OK for a complete answer, `kDeadlineExceeded` for a partial one.
  Status status = {};
  /// The tokenized (and 16-capped) query the shards evaluated.
  std::vector<std::string> keywords;
  std::vector<cn::SearchResult> results;
  /// Owning shard of each result (parallel to `results`).
  std::vector<size_t> result_shards;
  /// Rendering of each result's tuples, joined with " -- " (parallel to
  /// `results`); identical to the combined database's rendering.
  std::vector<std::string> descriptions;
  ShardedSearchStats stats;
};

/// A `ShardedResponse` with its rendered execution trace (the EXPLAIN
/// ANALYZE counterpart of `ShardedEngine::Search`).
struct ShardedExplainResult {
  ShardedResponse response;
  /// Human-readable span tree (`trace::Tracer::RenderTree`).
  std::string tree;
  /// Machine-readable form with stable key order
  /// (`trace::Tracer::RenderJson`).
  std::string json;
};

/// Scatter-gather keyword search over a `ShardedCorpus` (the Mragyati /
/// EMBANKS scale-out story at the middleware layer): each shard owns its
/// database, inverted indexes and tuple-set cache; a query is planned
/// once at the coordinator — per-shard keyword statistics feed a
/// `DatabaseSelector` that prunes non-contributing shards, corpus-wide
/// IDFs and table masks are derived from summed per-shard statistics, and
/// ONE candidate-network list is enumerated — then fanned out over a
/// `ThreadPool` with static striding and merged through `ConcurrentTopK`
/// under `cn::SearchResultOrder`. Under kSparse (the default) the
/// collector's threshold — the global k-th best score offered so far —
/// is shared back into every shard's evaluation
/// (`cn::EvaluateCnsSparseToSink`), so shards stop paying per-CN
/// round-trips as soon as the *merged* top-k says their remaining bounds
/// cannot contribute, not only when their own local top-k fills.
///
/// Determinism contract (tests/shard_test.cc): the merged top-k equals
/// the unsharded engine's answer bit for bit, for every seed, shard
/// count, thread count, and pruning setting. The pieces: global IDFs make
/// per-row scores identical; key remapping (see `ShardedCorpus`) keeps
/// every join inside one shard; the shared CN list keeps `cn_index`
/// aligned; monotone row offsets keep tuple tie-breaks aligned; and each
/// shard contributes its exact serial top-k, of which the gather keeps
/// the global k best.
class ShardedEngine {
 public:
  /// Builds per-shard machinery: tuple-set caches and the shard selector
  /// (unit-weight data graphs, distance radius `max_cn_size - 1` — the
  /// largest hop distance inside any result tree, which is what makes
  /// joinability pruning sound). The corpus must outlive the engine.
  explicit ShardedEngine(const ShardedCorpus& corpus,
                         const ShardedEngineOptions& options = {});

  /// Runs `query` across the shards and merges the global top-k.
  ShardedResponse Search(const std::string& query,
                         const ShardedSearchOptions& options = {}) const;

  /// Runs `query` under a fresh tracer (any `options.tracer` is ignored)
  /// and returns the response with its rendered trace.
  ShardedExplainResult Explain(const std::string& query,
                               const ShardedSearchOptions& options = {}) const;

  /// The normalized (tokenized, 16-capped) form of `query`, for result
  /// cache keys: equal normalizations imply equal responses for equal
  /// options.
  std::vector<std::string> Normalize(const std::string& query) const;

  /// The shard owning combined-id tuple `global` (by row-offset lookup).
  size_t OwningShard(relational::TupleId global) const;

  size_t num_shards() const { return corpus_.num_shards(); }
  const ShardedCorpus& corpus() const { return corpus_; }

  /// Engine-lifetime counters: `shard.queries`, `shard.fanout`,
  /// `shard.pruned`, `shard.deadline.hits`, plus per-shard instruments
  /// `shard.s<i>.searched` / `shard.s<i>.pruned` (selection skipped the
  /// shard) and the `shard.s<i>.gather_micros` histogram (the shard's
  /// evaluation latency as seen by the gather).
  MetricsRegistry& metrics() const { return metrics_; }

  /// One operational health snapshot as a JSON document with fixed key
  /// order: engine-lifetime counters, then one object per shard — row
  /// count, searched/pruned counts, tuple-cache stats, and the gather
  /// latency histogram (count, mean, p50/p95/p99). Floats are `%.3f`;
  /// the document is a pure function of the instruments' current values.
  /// Safe to call at any time from any thread.
  std::string Statusz() const;

 private:
  const ShardedCorpus& corpus_;
  const ShardedEngineOptions options_;
  /// Total rows across all shards (the combined corpus size), for the
  /// global IDF denominator.
  size_t total_rows_ = 0;
  select::DatabaseSelector selector_;
  /// One frontier cache per shard (empty when caching is disabled).
  std::vector<std::unique_ptr<cn::TupleSetCache>> tuple_caches_;
  mutable MetricsRegistry metrics_;
  // Instruments resolved once; hot paths touch only atomics.
  Counter* queries_;
  Counter* fanout_;
  Counter* pruned_;
  Counter* deadline_hits_;
  // Per-shard instruments (index = shard), resolved at construction so
  // scatter workers touch only atomics.
  std::vector<Counter*> shard_searched_;
  std::vector<Counter*> shard_pruned_;
  std::vector<LatencyHistogram*> shard_gather_micros_;
};

}  // namespace kws::shard

#endif  // KWDB_SHARD_SHARDED_ENGINE_H_

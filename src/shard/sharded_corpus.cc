#include "shard/sharded_corpus.h"

#include <string>
#include <unordered_map>
#include <utility>

#include "common/check.h"
#include "common/random.h"

namespace kws::shard {

namespace {

using relational::ColumnId;
using relational::Database;
using relational::ForeignKey;
using relational::RowId;
using relational::TableId;
using relational::Value;
using relational::ValueType;

/// Size of shard `s` when `total` items are split across `n` shards:
/// remainder items go to the lowest-index shards, and every shard gets at
/// least one so its tables are never degenerate.
size_t ShardSlice(size_t total, size_t s, size_t n) {
  const size_t base = total / n;
  const size_t size = base + (s < total % n ? 1 : 0);
  return size == 0 ? 1 : size;
}

/// For table `t`, which table's key-offset each key-carrying column
/// shifts by: the table itself for the primary key, the referenced table
/// for foreign-key columns.
std::unordered_map<ColumnId, TableId> KeyColumns(const Database& db,
                                                 TableId t) {
  std::unordered_map<ColumnId, TableId> out;
  out.emplace(db.table(t).schema().primary_key, t);
  for (const ForeignKey& fk : db.foreign_keys()) {
    if (fk.table != t) continue;
    auto [it, inserted] = out.emplace(fk.column, fk.ref_table);
    // A column that is both the primary key and a foreign key would need
    // two different offsets; the generators never produce one.
    KWS_CHECK_MSG(inserted || it->second == fk.ref_table,
                  "conflicting key offsets for one column");
  }
  return out;
}

}  // namespace

ShardedCorpus MergeParts(
    std::vector<std::unique_ptr<Database>> parts) {
  KWS_CHECK_MSG(!parts.empty(), "MergeParts needs at least one part");
  const Database& proto = *parts[0];
  const size_t num_tables = proto.num_tables();
  const size_t n = parts.size();
  for (const auto& part : parts) {
    KWS_CHECK_MSG(part->num_tables() == num_tables,
                  "part schemas differ in table count");
    for (TableId t = 0; t < num_tables; ++t) {
      KWS_CHECK_MSG(part->table(t).name() == proto.table(t).name(),
                    "part schemas differ in table names");
      KWS_CHECK_MSG(part->table(t).num_columns() == proto.table(t).num_columns(),
                    "part schemas differ in column count");
    }
  }

  // Per-part, per-table key offset: the cumulative key span (max key + 1)
  // of the same table in earlier parts, making every key globally unique
  // while preserving within-part key order.
  std::vector<std::vector<int64_t>> key_base(n,
                                             std::vector<int64_t>(num_tables));
  std::vector<int64_t> next_base(num_tables, 0);
  for (size_t s = 0; s < n; ++s) {
    for (TableId t = 0; t < num_tables; ++t) {
      key_base[s][t] = next_base[t];
      const relational::Table& table = parts[s]->table(t);
      const ColumnId pk = table.schema().primary_key;
      int64_t max_key = -1;
      for (RowId r = 0; r < table.num_rows(); ++r) {
        const Value& v = table.cell(r, pk);
        KWS_CHECK_MSG(v.type() == ValueType::kInt,
                      "shard merge requires INT primary keys");
        if (v.AsInt() > max_key) max_key = v.AsInt();
      }
      next_base[t] += max_key + 1;
    }
  }

  ShardedCorpus out;
  out.combined = std::make_unique<Database>();
  for (TableId t = 0; t < num_tables; ++t) {
    out.combined->CreateTable(proto.table(t).schema()).value();
  }
  out.shards.reserve(n);
  out.row_offsets.assign(n, std::vector<RowId>(num_tables, 0));
  for (size_t s = 0; s < n; ++s) {
    auto shard_db = std::make_unique<Database>();
    for (TableId t = 0; t < num_tables; ++t) {
      shard_db->CreateTable(proto.table(t).schema()).value();
    }
    for (TableId t = 0; t < num_tables; ++t) {
      out.row_offsets[s][t] =
          static_cast<RowId>(out.combined->table(t).num_rows());
      const auto key_cols = KeyColumns(proto, t);
      const relational::Table& src = parts[s]->table(t);
      for (RowId r = 0; r < src.num_rows(); ++r) {
        relational::Row row = src.row(r);
        for (const auto& [col, base_table] : key_cols) {
          const Value& v = row[col];
          if (v.is_null()) continue;
          KWS_CHECK_MSG(v.type() == ValueType::kInt,
                        "shard merge requires INT key columns");
          row[col] = Value::Int(v.AsInt() + key_base[s][base_table]);
        }
        shard_db->table(t).Append(row).value();
        out.combined->table(t).Append(std::move(row)).value();
      }
    }
    out.shards.push_back(std::move(shard_db));
  }

  // Keys and indexes last, mirroring the generators' order (data, then
  // foreign keys, then text indexes).
  for (const ForeignKey& fk : proto.foreign_keys()) {
    const std::string& table = proto.table(fk.table).name();
    const std::string& column =
        proto.table(fk.table).schema().columns[fk.column].name;
    const std::string& ref_table = proto.table(fk.ref_table).name();
    const std::string& ref_column =
        proto.table(fk.ref_table).schema().columns[fk.ref_column].name;
    for (auto& shard_db : out.shards) {
      Status st = shard_db->AddForeignKey(table, column, ref_table,
                                          ref_column);
      KWS_CHECK_MSG(st.ok(), st.ToString());
    }
    Status st =
        out.combined->AddForeignKey(table, column, ref_table, ref_column);
    KWS_CHECK_MSG(st.ok(), st.ToString());
  }
  for (auto& shard_db : out.shards) shard_db->BuildTextIndexes();
  out.combined->BuildTextIndexes();
  return out;
}

ShardedCorpus MakeShardedDblp(const relational::DblpOptions& options,
                              size_t num_shards) {
  KWS_CHECK_MSG(num_shards > 0, "num_shards must be positive");
  std::vector<std::unique_ptr<Database>> parts;
  parts.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    relational::DblpOptions sub = options;
    sub.seed = SplitSeed(options.seed, s);
    sub.num_conferences = ShardSlice(options.num_conferences, s, num_shards);
    sub.num_authors = ShardSlice(options.num_authors, s, num_shards);
    sub.num_papers = ShardSlice(options.num_papers, s, num_shards);
    parts.push_back(std::move(relational::MakeDblpDatabase(sub).db));
  }
  return MergeParts(std::move(parts));
}

ShardedCorpus MakeShardedShop(const relational::ShopOptions& options,
                              size_t num_shards) {
  KWS_CHECK_MSG(num_shards > 0, "num_shards must be positive");
  std::vector<std::unique_ptr<Database>> parts;
  parts.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    relational::ShopOptions sub = options;
    sub.seed = SplitSeed(options.seed, s);
    sub.num_products = ShardSlice(options.num_products, s, num_shards);
    parts.push_back(std::move(relational::MakeShopDatabase(sub).db));
  }
  return MergeParts(std::move(parts));
}

}  // namespace kws::shard

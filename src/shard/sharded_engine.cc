#include "shard/sharded_engine.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <utility>

#include "common/check.h"
#include "common/concurrent_topk.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "core/cn/candidate_network.h"
#include "core/cn/tuple_sets.h"
#include "text/tokenizer.h"

namespace kws::shard {

namespace {

/// Selector configuration that makes joinability pruning sound: unit
/// edge weights turn `Distance` into hop distance, and a result tree of
/// at most `max_cn_size` tuples keeps every keyword pair within
/// `max_cn_size - 1` hops inside its shard's data graph.
select::SelectorOptions PruningSelectorOptions(
    const ShardedEngineOptions& options) {
  select::SelectorOptions so;
  so.max_distance = static_cast<double>(options.max_cn_size - 1);
  so.graph_options.degree_weighted_backward = false;
  return so;
}

}  // namespace

ShardedEngine::ShardedEngine(const ShardedCorpus& corpus,
                             const ShardedEngineOptions& options)
    : corpus_(corpus),
      options_(options),
      selector_(PruningSelectorOptions(options)),
      queries_(metrics_.GetCounter("shard.queries")),
      fanout_(metrics_.GetCounter("shard.fanout")),
      pruned_(metrics_.GetCounter("shard.pruned")),
      deadline_hits_(metrics_.GetCounter("shard.deadline.hits")) {
  KWS_CHECK_MSG(corpus_.num_shards() > 0, "corpus has no shards");
  KWS_CHECK_MSG(options_.max_cn_size >= 1, "max_cn_size must be >= 1");
  for (size_t s = 0; s < corpus_.num_shards(); ++s) {
    const relational::Database& db = *corpus_.shards[s];
    total_rows_ += db.TotalRows();
    selector_.AddDatabase("shard-" + std::to_string(s), &db);
    if (options_.tuple_cache_capacity > 0) {
      tuple_caches_.push_back(std::make_unique<cn::TupleSetCache>(
          db, options_.tuple_cache_capacity));
    }
    const std::string prefix = "shard.s" + std::to_string(s);
    shard_searched_.push_back(metrics_.GetCounter(prefix + ".searched"));
    shard_pruned_.push_back(metrics_.GetCounter(prefix + ".pruned"));
    shard_gather_micros_.push_back(
        metrics_.GetHistogram(prefix + ".gather_micros"));
  }
}

std::vector<std::string> ShardedEngine::Normalize(
    const std::string& query) const {
  std::vector<std::string> keywords = text::Tokenizer().Tokenize(query);
  if (keywords.size() > 16) keywords.resize(16);
  return keywords;
}

size_t ShardedEngine::OwningShard(relational::TupleId global) const {
  size_t owner = 0;
  for (size_t s = 1; s < corpus_.num_shards(); ++s) {
    if (corpus_.row_offsets[s][global.table] <= global.row) {
      owner = s;
    } else {
      break;
    }
  }
  return owner;
}

ShardedResponse ShardedEngine::Search(
    const std::string& query, const ShardedSearchOptions& options) const {
  queries_->Add();
  ShardedResponse resp;
  ShardedSearchStats& stats = resp.stats;
  const size_t n = corpus_.num_shards();
  stats.shards_total = n;
  stats.shard_pruned.assign(n, false);
  stats.shard_results.assign(n, 0);
  stats.shard_cns_evaluated.assign(n, 0);

  resp.keywords = Normalize(query);
  const std::vector<std::string>& keywords = resp.keywords;
  if (keywords.empty()) return resp;
  const size_t nk = keywords.size();
  const cn::KeywordMask full_mask =
      static_cast<cn::KeywordMask>((1u << nk) - 1);

  trace::Tracer* const tracer = options.tracer;
  trace::TraceSpan search_span(tracer, "shard.search");
  search_span.AddCounter("keywords", nk);

  // --- Plan at the coordinator -----------------------------------------
  // Selection-based pruning: a shard can only contribute when it covers
  // every keyword some shard covers (any valid result covers them all)
  // and every keyword pair is joinable within the CN size bound there.
  {
    trace::TraceSpan select_span(tracer, "shard.select");
    if (options.prune) {
      const std::vector<select::DatabaseScore> ranked =
          selector_.Rank(Join(keywords, " "));
      uint32_t union_mask = 0;
      for (const select::DatabaseScore& ds : ranked) {
        union_mask |= ds.covered_mask;
      }
      const size_t all_pairs = nk * (nk - 1) / 2;
      for (const select::DatabaseScore& ds : ranked) {
        const bool covers = union_mask == full_mask &&
                            ds.covered_mask == full_mask;
        const bool joinable = ds.joinable_pairs >= all_pairs;
        stats.shard_pruned[ds.index] = !(covers && joinable);
      }
    }
    for (size_t s = 0; s < n; ++s) {
      stats.shards_pruned += stats.shard_pruned[s] ? 1 : 0;
    }
    stats.shards_searched = n - stats.shards_pruned;
    select_span.AddCounter("pruned", stats.shards_pruned);
  }
  pruned_->Add(stats.shards_pruned);
  fanout_->Add(stats.shards_searched);
  for (size_t s = 0; s < n; ++s) {
    if (stats.shard_pruned[s]) shard_pruned_[s]->Add();
  }

  // Corpus-wide keyword statistics from summed per-shard integers: the
  // global IDFs (identical doubles to the combined database's
  // BuildTermFrontier) and the global table masks feeding CN enumeration.
  // Pruned shards still count — statistics describe the corpus, not the
  // fanout.
  std::vector<double> idf(nk, 0);
  const size_t num_tables = corpus_.shards[0]->num_tables();
  std::vector<cn::KeywordMask> table_masks(num_tables, 0);
  for (size_t k = 0; k < nk; ++k) {
    size_t df = 0;
    for (size_t s = 0; s < n; ++s) {
      for (relational::TableId t = 0; t < num_tables; ++t) {
        const size_t d = corpus_.shards[s]->TextIndex(t).DocFreq(keywords[k]);
        df += d;
        if (d > 0) table_masks[t] |= static_cast<cn::KeywordMask>(1u << k);
      }
    }
    idf[k] = std::log(1.0 + static_cast<double>(total_rows_) /
                                (1.0 + static_cast<double>(df)));
  }

  // One global CN list (the schema graph is shard-invariant), so
  // cn_index means the same thing in every shard and in the merge.
  cn::CnEnumOptions enum_opts;
  enum_opts.max_size = options_.max_cn_size;
  enum_opts.deadline = options.deadline;
  enum_opts.tracer = tracer;
  const std::vector<cn::CandidateNetwork> cns =
      cn::EnumerateCandidateNetworks(*corpus_.shards[0], table_masks,
                                     full_mask, enum_opts);
  stats.cns_enumerated = cns.size();

  // --- Scatter ----------------------------------------------------------
  std::vector<size_t> searched;
  searched.reserve(stats.shards_searched);
  for (size_t s = 0; s < n; ++s) {
    if (!stats.shard_pruned[s]) searched.push_back(s);
  }
  // One collector slot per shard: each slot keeps its shard's exact
  // top-k, so the merge is the exact global top-k no matter how the
  // scatter was threaded.
  ConcurrentTopK<cn::SearchResult, cn::SearchResultOrder> top(
      std::max<size_t>(1, options.k), n);
  std::vector<char> shard_hit(n, 0);
  trace::TraceSpan scatter_span(tracer, "shard.scatter");
  scatter_span.AddCounter("fanout", stats.shards_searched);
  const auto eval_shard = [&](size_t s) {
    // The tighter of the global deadline and the per-shard budget,
    // anchored when this shard's evaluation starts.
    Deadline shard_deadline = options.deadline;
    if (options.shard_budget_micros > 0) {
      const Deadline budget =
          Deadline::AfterMicros(options.shard_budget_micros);
      if (budget.RemainingMicros() < shard_deadline.RemainingMicros()) {
        shard_deadline = budget;
      }
    }
    const relational::Database& db = *corpus_.shards[s];
    cn::TupleSetCache* const cache =
        tuple_caches_.empty() ? nullptr : tuple_caches_[s].get();
    // Workers trace nothing (Tracer is not thread-safe, and per-shard
    // spans would make the structure shard-count-dependent); shard-side
    // scores use the corpus-wide IDFs so they match the combined view.
    const cn::TupleSets ts(db, keywords, cache, shard_deadline, nullptr,
                           &idf);
    if (ts.truncated()) {
      shard_hit[s] = 1;
      return;
    }
    cn::SearchOptions so;
    so.k = options.k;
    so.max_cn_size = options_.max_cn_size;
    so.strategy = options.strategy;
    so.deadline = shard_deadline;
    so.num_threads = 1;
    so.simulated_cn_io_micros = options.simulated_cn_io_micros;
    cn::SearchStats sstats;
    // Local -> global row ids: a per-table monotone shift, so the
    // shard-local result order is the global order restricted to this
    // shard.
    const auto to_global = [&](cn::SearchResult r) {
      for (relational::TupleId& tid : r.tuples) {
        tid.row += corpus_.row_offsets[s][tid.table];
      }
      return r;
    };
    size_t offered = 0;
    if (options.strategy == cn::Strategy::kSparse) {
      // The default path shares the gather collector's threshold across
      // every shard evaluation: once k results exist *anywhere*, a shard
      // whose remaining CN bounds fall below the global k-th score stops
      // paying round-trips — the cross-shard analogue of the serial
      // sparse break, and sound for the same tie-keeping reason.
      cn::EvaluateCnsSparseToSink(
          db, cns, ts, so,
          [&top](double bound) { return top.WouldReject(bound); },
          [&](cn::SearchResult r) {
            r = to_global(std::move(r));
            ++offered;
            const double score = r.score;
            top.Offer(s, score, std::move(r));
          },
          &sstats);
    } else {
      std::vector<cn::SearchResult> local =
          cn::EvaluateCns(db, cns, ts, so, &sstats);
      offered = local.size();
      for (cn::SearchResult& r : local) {
        r = to_global(std::move(r));
        const double score = r.score;
        top.Offer(s, score, std::move(r));
      }
    }
    if (sstats.deadline_hit) shard_hit[s] = 1;
    stats.shard_results[s] = offered;
    stats.shard_cns_evaluated[s] = sstats.cns_evaluated;
  };
  const auto run_shard = [&](size_t s) {
    const Stopwatch shard_watch;
    eval_shard(s);
    shard_searched_[s]->Add();
    shard_gather_micros_[s]->Record(shard_watch.ElapsedMicros());
  };
  if (options.num_threads <= 1 || searched.size() <= 1) {
    for (size_t s : searched) run_shard(s);
  } else {
    ThreadPool pool(std::min(options.num_threads, searched.size()));
    const size_t stride = pool.size();
    pool.RunOnAll([&](size_t w) {
      for (size_t i = w; i < searched.size(); i += stride) {
        run_shard(searched[i]);
      }
    });
  }
  scatter_span.Close();

  // --- Gather -----------------------------------------------------------
  trace::TraceSpan gather_span(tracer, "shard.gather");
  size_t offered = 0;
  for (size_t s = 0; s < n; ++s) offered += stats.shard_results[s];
  resp.results = top.TakeSorted();
  gather_span.AddCounter("offered", offered);
  gather_span.AddCounter("results", resp.results.size());
  resp.result_shards.reserve(resp.results.size());
  resp.descriptions.reserve(resp.results.size());
  for (const cn::SearchResult& r : resp.results) {
    const size_t s = OwningShard(r.tuples.front());
    resp.result_shards.push_back(s);
    std::string desc;
    for (size_t i = 0; i < r.tuples.size(); ++i) {
      if (i > 0) desc += " -- ";
      const relational::TupleId local{
          r.tuples[i].table,
          r.tuples[i].row - corpus_.row_offsets[s][r.tuples[i].table]};
      desc += corpus_.shards[s]->TupleToString(local);
    }
    resp.descriptions.push_back(std::move(desc));
  }
  gather_span.Close();

  bool hit = options.deadline.Expired();
  for (size_t s = 0; s < n; ++s) hit |= shard_hit[s] != 0;
  stats.deadline_hit = hit;
  if (hit) {
    deadline_hits_->Add();
    search_span.AddEvent("shard.deadline.hit");
    resp.status = Status::DeadlineExceeded(
        "shard search budget exhausted (results may be partial)");
  }
  return resp;
}

std::string ShardedEngine::Statusz() const {
  std::string out;
  char buf[128];
  const auto append_f = [&](const char* key, double v) {
    std::snprintf(buf, sizeof(buf), "\"%s\":%.3f", key, v);
    out += buf;
  };
  const auto append_u = [&](const char* key, uint64_t v) {
    std::snprintf(buf, sizeof(buf), "\"%s\":%llu", key,
                  static_cast<unsigned long long>(v));
    out += buf;
  };

  out += "{";
  append_u("shards", corpus_.num_shards());
  out += ",";
  append_u("total_rows", total_rows_);
  out += ",";
  append_u("queries", queries_->value());
  out += ",";
  append_u("fanout", fanout_->value());
  out += ",";
  append_u("pruned", pruned_->value());
  out += ",";
  append_u("deadline_hits", deadline_hits_->value());
  out += ",\"per_shard\":[";
  for (size_t s = 0; s < corpus_.num_shards(); ++s) {
    if (s > 0) out += ",";
    out += "{";
    append_u("rows", corpus_.shards[s]->TotalRows());
    out += ",";
    append_u("searched", shard_searched_[s]->value());
    out += ",";
    append_u("pruned", shard_pruned_[s]->value());
    out += ",\"tuple_cache\":{";
    const cn::TupleSetCache* const cache =
        tuple_caches_.empty() ? nullptr : tuple_caches_[s].get();
    out += "\"configured\":";
    out += cache != nullptr ? "true" : "false";
    if (cache != nullptr) {
      const cn::TupleSetCache::Stats cs = cache->stats();
      out += ",";
      append_u("capacity", cache->capacity());
      out += ",";
      append_u("size", cache->size());
      out += ",";
      append_u("hits", cs.hits);
      out += ",";
      append_u("misses", cs.misses);
      out += ",";
      append_u("insertions", cs.insertions);
      out += ",";
      append_u("evictions", cs.evictions);
      out += ",";
      append_u("invalidations", cs.invalidations);
    }
    out += "},\"gather\":{";
    const LatencyHistogram& h = *shard_gather_micros_[s];
    append_u("count", h.count());
    out += ",";
    append_f("mean_micros", h.MeanMicros());
    out += ",";
    append_f("p50_micros", h.PercentileMicros(0.50));
    out += ",";
    append_f("p95_micros", h.PercentileMicros(0.95));
    out += ",";
    append_f("p99_micros", h.PercentileMicros(0.99));
    out += "}}";
  }
  out += "]}";
  return out;
}

ShardedExplainResult ShardedEngine::Explain(
    const std::string& query, const ShardedSearchOptions& options) const {
  trace::Tracer tracer;
  ShardedSearchOptions traced = options;
  traced.tracer = &tracer;
  ShardedExplainResult out;
  out.response = Search(query, traced);
  out.tree = tracer.RenderTree();
  out.json = tracer.RenderJson();
  return out;
}

}  // namespace kws::shard

#ifndef KWDB_SHARD_SHARDED_CORPUS_H_
#define KWDB_SHARD_SHARDED_CORPUS_H_

#include <memory>
#include <vector>

#include "relational/database.h"
#include "relational/dblp.h"
#include "relational/shop.h"

namespace kws::shard {

/// A corpus partitioned into N schema-identical shard databases plus the
/// equivalent unsharded database — the oracle every sharded search must
/// match bit for bit.
///
/// Construction guarantees (see `MergeParts`):
///  - Primary-key values are remapped to be globally unique, and every
///    foreign-key column is shifted by its *referenced* table's offset,
///    so joins in the combined database never cross a shard boundary:
///    each combined result lives entirely inside one shard, and the
///    shards collectively produce exactly the combined result set.
///  - Combined tables concatenate the shard tables in shard order, so
///    local row ids map to combined ("global") ids by adding
///    `row_offsets[shard][table]` — a per-table monotone offset, which
///    keeps tuple orderings and tie-breaks aligned between the two views.
///  - Cell values (remapped keys included) are identical in the shard and
///    combined views, so `Database::TupleToString` renders the same text
///    either way, and searchable text — hence tf, document length, and
///    per-table df — is untouched by the remap.
struct ShardedCorpus {
  /// The shard databases, schema-identical, jointly holding every row of
  /// `combined` exactly once.
  std::vector<std::unique_ptr<relational::Database>> shards;
  /// The unsharded equivalent (same rows, same values, same order).
  std::unique_ptr<relational::Database> combined;
  /// `row_offsets[s][t]`: combined row id of shard `s`'s row 0 in table
  /// `t` (the number of table-`t` rows owned by shards before `s`).
  std::vector<std::vector<relational::RowId>> row_offsets;

  /// Number of shards.
  size_t num_shards() const { return shards.size(); }
};

/// Rebuilds independently generated, schema-identical part databases into
/// a `ShardedCorpus`: remaps primary-key and foreign-key values by
/// per-table offsets (keys must be INT columns), appends the remapped
/// rows to fresh per-shard databases and to one combined database in
/// shard order, then re-adds the foreign keys and builds text indexes in
/// the generators' order. Aborts (KWS_CHECK) on schema mismatches or
/// non-INT key columns.
ShardedCorpus MergeParts(
    std::vector<std::unique_ptr<relational::Database>> parts);

/// A DBLP corpus split into `num_shards` independently generated
/// sub-corpora (seed `SplitSeed(options.seed, shard)`, entity counts
/// divided evenly, shared vocabulary and skew), merged via `MergeParts`.
ShardedCorpus MakeShardedDblp(const relational::DblpOptions& options,
                              size_t num_shards);

/// The shop catalog split into `num_shards` sub-catalogs; see
/// `MakeShardedDblp`.
ShardedCorpus MakeShardedShop(const relational::ShopOptions& options,
                              size_t num_shards);

}  // namespace kws::shard

#endif  // KWDB_SHARD_SHARDED_CORPUS_H_

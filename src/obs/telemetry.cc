#include "obs/telemetry.h"

#include <cstdio>

namespace kws::obs {

TelemetryRegistry::TelemetryRegistry(const Clock* clock,
                                     const WindowOptions& windows)
    : clock_(clock != nullptr ? clock : DefaultClock()), windows_(windows) {}

Counter* TelemetryRegistry::GetCounter(const std::string& name) {
  return cumulative_.GetCounter(name);
}

LatencyHistogram* TelemetryRegistry::GetHistogram(const std::string& name) {
  return cumulative_.GetHistogram(name);
}

WindowedCounter* TelemetryRegistry::GetWindowedCounter(
    const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<WindowedCounter>& slot = counters_[name];
  if (slot == nullptr) {
    slot = std::make_unique<WindowedCounter>(clock_, windows_);
  }
  return slot.get();
}

WindowedHistogram* TelemetryRegistry::GetWindowedHistogram(
    const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<WindowedHistogram>& slot = histograms_[name];
  if (slot == nullptr) {
    slot = std::make_unique<WindowedHistogram>(clock_, windows_);
  }
  return slot.get();
}

std::string TelemetryRegistry::RenderJson() const {
  // The cumulative document minus its closing brace, then the windowed
  // object spliced in — so the cumulative half is byte-identical to what
  // MetricsRegistry::RenderJson alone would print.
  std::string out = cumulative_.RenderJson();
  out.pop_back();  // trailing '}'
  char buf[96];
  const auto append_f = [&](const char* key, double v) {
    std::snprintf(buf, sizeof(buf), "\"%s\":%.3f", key, v);
    out += buf;
  };
  const auto append_u = [&](const char* key, uint64_t v) {
    std::snprintf(buf, sizeof(buf), "\"%s\":%llu", key,
                  static_cast<unsigned long long>(v));
    out += buf;
  };
  std::lock_guard<std::mutex> lock(mu_);
  out += ",\"windowed\":{";
  append_u("window_micros", windows_.window_micros);
  out += ",";
  append_u("num_windows", windows_.num_windows);
  out += ",\"counters\":{";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + name + "\":{";
    append_u("total", counter->total());
    out += ",";
    append_u("in_windows", counter->TotalInWindows());
    out += ",";
    append_f("rate_per_sec", counter->RatePerSecond());
    out += ",\"windows\":[";
    const std::vector<uint64_t> snap = counter->WindowSnapshot();
    for (size_t i = 0; i < snap.size(); ++i) {
      if (i > 0) out += ",";
      std::snprintf(buf, sizeof(buf), "%llu",
                    static_cast<unsigned long long>(snap[i]));
      out += buf;
    }
    out += "]}";
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, hist] : histograms_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + name + "\":{";
    append_u("count", hist->count());
    out += ",";
    append_u("in_windows", hist->CountInWindows());
    out += ",";
    append_f("mean_micros", hist->MeanMicros());
    out += ",";
    append_f("p50_micros", hist->PercentileMicros(0.50));
    out += ",";
    append_f("p95_micros", hist->PercentileMicros(0.95));
    out += ",";
    append_f("p99_micros", hist->PercentileMicros(0.99));
    out += "}";
  }
  out += "}}}";
  return out;
}

}  // namespace kws::obs

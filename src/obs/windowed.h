#ifndef KWDB_OBS_WINDOWED_H_
#define KWDB_OBS_WINDOWED_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "common/metrics.h"
#include "obs/clock.h"

namespace kws::obs {

/// Shared shape of every windowed instrument: time is cut into
/// fixed-width windows (`window_micros`), and the instrument keeps the
/// most recent `num_windows` of them in a ring. Readings answer "what
/// happened recently", the question the cumulative `kws::MetricsRegistry`
/// instruments cannot.
struct WindowOptions {
  /// Width of one window. Window `w` covers
  /// `[w * window_micros, (w + 1) * window_micros)` on the clock.
  uint64_t window_micros = 1'000'000;
  /// Windows retained: the current (partial) one plus `num_windows - 1`
  /// completed ones.
  size_t num_windows = 8;
};

/// A counter over a ring of epoch buckets: `Add` lands in the window the
/// injected clock says is current, and reads aggregate the live windows
/// only — anything older has been recycled. Rates therefore decay to
/// zero when traffic stops, unlike a cumulative `kws::Counter`.
///
/// Thread-safety: bumps are relaxed atomics; window rotation (the first
/// `Add` of a new window recycling the oldest slot) takes a mutex. A
/// writer whose clock read predates a full ring rotation drops its
/// increment into no window (the window it belongs to no longer exists);
/// the cumulative `total()` still counts it. Under a `ManualClock`
/// advanced between quiescent phases every reading is exact and
/// deterministic.
class WindowedCounter {
 public:
  /// `clock` must outlive the instrument; nullptr selects
  /// `DefaultClock()`. `options.num_windows` must be >= 1 and
  /// `options.window_micros` >= 1 (checked).
  WindowedCounter(const Clock* clock, const WindowOptions& options);

  WindowedCounter(const WindowedCounter&) = delete;
  WindowedCounter& operator=(const WindowedCounter&) = delete;

  /// Adds `n` to the current window (and to the cumulative total).
  void Add(uint64_t n = 1);

  /// Cumulative count since construction (never decays).
  uint64_t total() const { return total_.load(std::memory_order_relaxed); }

  /// Sum over the live windows (current partial + completed retained).
  uint64_t TotalInWindows() const;

  /// Per-window counts, oldest retained window first, the current
  /// (partial) window last; always exactly `num_windows` entries, with
  /// zeros for windows that saw no events or predate the clock origin.
  std::vector<uint64_t> WindowSnapshot() const;

  /// `TotalInWindows()` divided by the full retained span in seconds
  /// (`num_windows * window_micros`). Deterministic for a given clock
  /// instant and set of recordings.
  double RatePerSecond() const;

  const WindowOptions& options() const { return options_; }

 private:
  struct Slot {
    /// Window epoch + 1 of the resident data; 0 = never used.
    std::atomic<uint64_t> tag{0};
    std::atomic<uint64_t> count{0};
  };

  /// The ring slot for `epoch`, recycled (count zeroed, tag bumped) if a
  /// stale window still occupies it. Returns nullptr when `epoch` has
  /// already been rotated past (a laggard writer).
  Slot* AcquireSlot(uint64_t epoch);

  const Clock* clock_;
  const WindowOptions options_;
  std::vector<Slot> ring_;
  std::atomic<uint64_t> total_{0};
  /// Serializes slot recycling only; bumps never take it.
  std::mutex rotate_mu_;
};

/// A latency histogram over the same window ring, bucketed identically
/// to `kws::LatencyHistogram` (shared power-of-two edges via its static
/// helpers), so cumulative and windowed percentiles are directly
/// comparable. Reads merge the live windows' bucket arrays and
/// interpolate — "p99 over the last N windows".
///
/// Thread-safety contract matches `WindowedCounter`: relaxed-atomic
/// recording, mutex-serialized rotation, laggard recordings past a full
/// ring rotation are dropped from the windows (never from `count()`).
class WindowedHistogram {
 public:
  /// `clock` must outlive the instrument; nullptr selects
  /// `DefaultClock()`. Options constraints as `WindowedCounter`.
  WindowedHistogram(const Clock* clock, const WindowOptions& options);

  WindowedHistogram(const WindowedHistogram&) = delete;
  WindowedHistogram& operator=(const WindowedHistogram&) = delete;

  /// Records one observation into the current window.
  void Record(double micros);

  /// Cumulative observation count since construction.
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }

  /// Observations in the live windows.
  uint64_t CountInWindows() const;

  /// Mean over the live windows, microseconds; 0 when empty.
  double MeanMicros() const;

  /// The `p`-quantile (p in [0,1]) over the live windows' merged
  /// buckets, interpolated exactly like
  /// `LatencyHistogram::PercentileMicros`; 0 when empty.
  double PercentileMicros(double p) const;

  const WindowOptions& options() const { return options_; }

 private:
  struct Slot {
    /// Window epoch + 1 of the resident data; 0 = never used.
    std::atomic<uint64_t> tag{0};
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> sum_nanos{0};
    std::array<std::atomic<uint64_t>, LatencyHistogram::kNumBuckets>
        buckets{};
  };

  /// As `WindowedCounter::AcquireSlot`.
  Slot* AcquireSlot(uint64_t epoch);

  /// Sums the live windows into one bucket array (plus count and sum).
  void MergeWindows(std::array<uint64_t, LatencyHistogram::kNumBuckets>* out,
                    uint64_t* count, uint64_t* sum_nanos) const;

  const Clock* clock_;
  const WindowOptions options_;
  std::vector<Slot> ring_;
  std::atomic<uint64_t> count_{0};
  /// Serializes slot recycling only; recordings never take it.
  std::mutex rotate_mu_;
};

}  // namespace kws::obs

#endif  // KWDB_OBS_WINDOWED_H_

#ifndef KWDB_OBS_TELEMETRY_H_
#define KWDB_OBS_TELEMETRY_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/metrics.h"
#include "obs/clock.h"
#include "obs/windowed.h"

namespace kws::obs {

/// The operational-telemetry registry: a cumulative `kws::MetricsRegistry`
/// plus windowed instruments over one injected clock, rendered together
/// into one byte-stable JSON document. Windowed instruments answer the
/// "right now" questions (QPS, recent hit rate, recent p99) the
/// cumulative side cannot; a metric that exists on both sides reuses the
/// SAME dotted name — the render keeps the two namespaces apart.
///
/// Like `MetricsRegistry`, instruments are created lazily, never
/// removed, and returned as stable pointers, so hot paths resolve each
/// instrument once and then touch only atomics. Thread-safe.
class TelemetryRegistry {
 public:
  /// `clock` must outlive the registry; nullptr selects `DefaultClock()`.
  /// Every windowed instrument created here shares `windows`.
  explicit TelemetryRegistry(const Clock* clock = nullptr,
                             const WindowOptions& windows = {});

  TelemetryRegistry(const TelemetryRegistry&) = delete;
  TelemetryRegistry& operator=(const TelemetryRegistry&) = delete;

  /// The cumulative side (counters + latency histograms).
  MetricsRegistry& cumulative() { return cumulative_; }

  /// Const view of the cumulative side.
  const MetricsRegistry& cumulative() const { return cumulative_; }

  /// Passthrough to `cumulative().GetCounter`.
  Counter* GetCounter(const std::string& name);

  /// Passthrough to `cumulative().GetHistogram`.
  LatencyHistogram* GetHistogram(const std::string& name);

  /// The windowed counter named `name`, created on first use. The
  /// pointer stays valid for the registry's lifetime.
  WindowedCounter* GetWindowedCounter(const std::string& name);

  /// The windowed histogram named `name`, created on first use.
  WindowedHistogram* GetWindowedHistogram(const std::string& name);

  /// The injected clock (shared by every windowed instrument).
  const Clock& clock() const { return *clock_; }

  /// The window configuration shared by every windowed instrument.
  const WindowOptions& windows() const { return windows_; }

  /// One JSON document holding every instrument, cumulative and
  /// windowed, with a fixed key order: the `MetricsRegistry::RenderJson`
  /// shape extended with a `windowed` object —
  /// `{"counters":{...},"histograms":{...},"windowed":{"window_micros":
  /// W,"num_windows":N,"counters":{name:{total,in_windows,rate_per_sec,
  /// windows:[...]},...},"histograms":{name:{count,in_windows,
  /// mean_micros,p50_micros,p95_micros,p99_micros},...}}}`. Names sort
  /// lexicographically, floats are `%.3f` — byte-stable for a given
  /// clock instant and set of recordings (exactly reproducible under a
  /// `ManualClock`).
  std::string RenderJson() const;

 private:
  const Clock* clock_;
  const WindowOptions windows_;
  MetricsRegistry cumulative_;
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<WindowedCounter>> counters_;
  std::map<std::string, std::unique_ptr<WindowedHistogram>> histograms_;
};

}  // namespace kws::obs

#endif  // KWDB_OBS_TELEMETRY_H_

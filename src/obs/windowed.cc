#include "obs/windowed.h"

#include <cmath>

#include "common/check.h"

namespace kws::obs {

namespace {

/// Slots in the ring: one per retained window plus one spare, so the
/// slot being recycled for the new current window is never one a reader
/// still counts as live.
size_t RingSize(const WindowOptions& options) {
  return options.num_windows + 1;
}

}  // namespace

WindowedCounter::WindowedCounter(const Clock* clock,
                                 const WindowOptions& options)
    : clock_(clock != nullptr ? clock : DefaultClock()),
      options_(options),
      ring_(RingSize(options_)) {
  KWS_CHECK_MSG(options_.num_windows >= 1, "num_windows must be >= 1");
  KWS_CHECK_MSG(options_.window_micros >= 1, "window_micros must be >= 1");
}

WindowedCounter::Slot* WindowedCounter::AcquireSlot(uint64_t epoch) {
  Slot& slot = ring_[epoch % ring_.size()];
  const uint64_t tag = epoch + 1;
  uint64_t cur = slot.tag.load(std::memory_order_acquire);
  if (cur == tag) return &slot;
  std::lock_guard<std::mutex> lock(rotate_mu_);
  cur = slot.tag.load(std::memory_order_relaxed);
  if (cur > tag) return nullptr;  // rotated past this epoch already
  if (cur != tag) {
    slot.count.store(0, std::memory_order_relaxed);
    slot.tag.store(tag, std::memory_order_release);
  }
  return &slot;
}

void WindowedCounter::Add(uint64_t n) {
  total_.fetch_add(n, std::memory_order_relaxed);
  const uint64_t epoch = clock_->NowMicros() / options_.window_micros;
  Slot* slot = AcquireSlot(epoch);
  if (slot == nullptr) return;  // laggard past a full ring rotation
  slot->count.fetch_add(n, std::memory_order_relaxed);
}

uint64_t WindowedCounter::TotalInWindows() const {
  uint64_t sum = 0;
  for (uint64_t c : WindowSnapshot()) sum += c;
  return sum;
}

std::vector<uint64_t> WindowedCounter::WindowSnapshot() const {
  const uint64_t now_epoch = clock_->NowMicros() / options_.window_micros;
  std::vector<uint64_t> out(options_.num_windows, 0);
  for (size_t j = 0; j < options_.num_windows; ++j) {
    if (j > now_epoch) break;  // windows before the clock origin
    const uint64_t epoch = now_epoch - j;
    const Slot& slot = ring_[epoch % ring_.size()];
    if (slot.tag.load(std::memory_order_acquire) != epoch + 1) continue;
    out[options_.num_windows - 1 - j] =
        slot.count.load(std::memory_order_relaxed);
  }
  return out;
}

double WindowedCounter::RatePerSecond() const {
  const double span_seconds =
      static_cast<double>(options_.num_windows) *
      static_cast<double>(options_.window_micros) / 1e6;
  return static_cast<double>(TotalInWindows()) / span_seconds;
}

WindowedHistogram::WindowedHistogram(const Clock* clock,
                                     const WindowOptions& options)
    : clock_(clock != nullptr ? clock : DefaultClock()),
      options_(options),
      ring_(RingSize(options_)) {
  KWS_CHECK_MSG(options_.num_windows >= 1, "num_windows must be >= 1");
  KWS_CHECK_MSG(options_.window_micros >= 1, "window_micros must be >= 1");
}

WindowedHistogram::Slot* WindowedHistogram::AcquireSlot(uint64_t epoch) {
  Slot& slot = ring_[epoch % ring_.size()];
  const uint64_t tag = epoch + 1;
  uint64_t cur = slot.tag.load(std::memory_order_acquire);
  if (cur == tag) return &slot;
  std::lock_guard<std::mutex> lock(rotate_mu_);
  cur = slot.tag.load(std::memory_order_relaxed);
  if (cur > tag) return nullptr;  // rotated past this epoch already
  if (cur != tag) {
    slot.count.store(0, std::memory_order_relaxed);
    slot.sum_nanos.store(0, std::memory_order_relaxed);
    for (auto& b : slot.buckets) b.store(0, std::memory_order_relaxed);
    slot.tag.store(tag, std::memory_order_release);
  }
  return &slot;
}

void WindowedHistogram::Record(double micros) {
  if (micros < 0 || !std::isfinite(micros)) micros = 0;
  count_.fetch_add(1, std::memory_order_relaxed);
  const uint64_t epoch = clock_->NowMicros() / options_.window_micros;
  Slot* slot = AcquireSlot(epoch);
  if (slot == nullptr) return;  // laggard past a full ring rotation
  slot->buckets[LatencyHistogram::BucketIndexFor(micros)].fetch_add(
      1, std::memory_order_relaxed);
  slot->count.fetch_add(1, std::memory_order_relaxed);
  slot->sum_nanos.fetch_add(static_cast<uint64_t>(micros * 1000.0),
                            std::memory_order_relaxed);
}

void WindowedHistogram::MergeWindows(
    std::array<uint64_t, LatencyHistogram::kNumBuckets>* out,
    uint64_t* count, uint64_t* sum_nanos) const {
  out->fill(0);
  *count = 0;
  *sum_nanos = 0;
  const uint64_t now_epoch = clock_->NowMicros() / options_.window_micros;
  for (size_t j = 0; j < options_.num_windows; ++j) {
    if (j > now_epoch) break;  // windows before the clock origin
    const uint64_t epoch = now_epoch - j;
    const Slot& slot = ring_[epoch % ring_.size()];
    if (slot.tag.load(std::memory_order_acquire) != epoch + 1) continue;
    *count += slot.count.load(std::memory_order_relaxed);
    *sum_nanos += slot.sum_nanos.load(std::memory_order_relaxed);
    for (size_t i = 0; i < LatencyHistogram::kNumBuckets; ++i) {
      (*out)[i] += slot.buckets[i].load(std::memory_order_relaxed);
    }
  }
}

uint64_t WindowedHistogram::CountInWindows() const {
  std::array<uint64_t, LatencyHistogram::kNumBuckets> merged;
  uint64_t count = 0;
  uint64_t sum = 0;
  MergeWindows(&merged, &count, &sum);
  return count;
}

double WindowedHistogram::MeanMicros() const {
  std::array<uint64_t, LatencyHistogram::kNumBuckets> merged;
  uint64_t count = 0;
  uint64_t sum = 0;
  MergeWindows(&merged, &count, &sum);
  if (count == 0) return 0.0;
  return static_cast<double>(sum) / 1000.0 / static_cast<double>(count);
}

double WindowedHistogram::PercentileMicros(double p) const {
  std::array<uint64_t, LatencyHistogram::kNumBuckets> merged;
  uint64_t count = 0;
  uint64_t sum = 0;
  MergeWindows(&merged, &count, &sum);
  return LatencyHistogram::PercentileOfBuckets(merged, p);
}

}  // namespace kws::obs

#ifndef KWDB_OBS_CLOCK_H_
#define KWDB_OBS_CLOCK_H_

#include <atomic>
#include <chrono>
#include <cstdint>

namespace kws::obs {

/// The time source behind every windowed instrument (`kws::obs`). All
/// operational telemetry reads time through an injected Clock rather
/// than a global: production code uses `DefaultClock()` (a process-wide
/// steady clock), tests inject a `ManualClock` so windowed readings —
/// which windows are live, which have expired — are byte-reproducible.
///
/// The clock is monotone by contract: `NowMicros` must never decrease.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Microseconds since an arbitrary fixed origin; monotone.
  virtual uint64_t NowMicros() const = 0;
};

/// Monotone wall clock over std::chrono::steady_clock — the production
/// time source. Stateless; one shared instance (`DefaultClock`) serves
/// the whole process.
class SteadyClock : public Clock {
 public:
  /// Microseconds since the steady clock's epoch.
  uint64_t NowMicros() const override {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }
};

/// The process-wide steady clock, used whenever no clock is injected.
inline const Clock* DefaultClock() {
  static const SteadyClock kClock;
  return &kClock;
}

/// A hand-advanced clock for deterministic tests: time moves only when
/// the test says so, so window rotation in `WindowedCounter` /
/// `WindowedHistogram` happens at exactly the chosen instants and every
/// windowed reading (and rendered JSON) is byte-reproducible.
/// Thread-safe: readers may race an `AdvanceMicros`, they just observe
/// the old or the new instant.
class ManualClock : public Clock {
 public:
  /// Starts the clock at `start_micros`.
  explicit ManualClock(uint64_t start_micros = 0) : now_(start_micros) {}

  /// The instant last set or advanced to.
  uint64_t NowMicros() const override {
    return now_.load(std::memory_order_acquire);
  }

  /// Moves time forward by `micros`.
  void AdvanceMicros(uint64_t micros) {
    now_.fetch_add(micros, std::memory_order_acq_rel);
  }

 private:
  std::atomic<uint64_t> now_;
};

}  // namespace kws::obs

#endif  // KWDB_OBS_CLOCK_H_

#include "core/refine/data_clouds.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/topk.h"

namespace kws::refine {

namespace {

/// All conjunctive result docs of `query`, sorted, plus per-doc scores.
std::vector<text::ScoredDoc> AllResults(const text::InvertedIndex& index,
                                        const std::string& query) {
  std::vector<text::ScoredDoc> results =
      index.SearchConjunctive(query, index.num_docs());
  std::sort(results.begin(), results.end(),
            [](const text::ScoredDoc& a, const text::ScoredDoc& b) {
              return a.doc < b.doc;
            });
  return results;
}

/// Sum of tf (kPopularity) or score-weighted tf*idf (kRelevance) of
/// `term` over the result docs. Returns the number of postings touched.
double TermWeight(const text::InvertedIndex& index, const std::string& term,
                  const std::vector<text::ScoredDoc>& results,
                  TermRanking ranking, uint64_t* scanned) {
  const text::PostingList& plist = index.GetPostings(term);
  double weight = 0;
  size_t i = 0;
  for (const text::Posting& p : plist) {
    if (scanned != nullptr) ++*scanned;
    while (i < results.size() && results[i].doc < p.doc) ++i;
    if (i == results.size()) break;
    if (results[i].doc != p.doc) continue;
    if (ranking == TermRanking::kPopularity) {
      weight += 1;  // result-document count; df-bounded for early stop
    } else {
      weight += results[i].score * p.tf * index.Idf(term);
    }
  }
  return weight;
}

std::vector<SuggestedTerm> TakeTop(TopK<std::string>& top) {
  std::vector<SuggestedTerm> out;
  for (auto& [score, term] : top.TakeSorted()) {
    out.push_back(SuggestedTerm{std::move(term), score});
  }
  return out;
}

}  // namespace

std::vector<SuggestedTerm> SuggestTerms(const text::InvertedIndex& index,
                                        const std::string& query,
                                        TermRanking ranking, size_t k) {
  const std::vector<text::ScoredDoc> results = AllResults(index, query);
  if (results.empty() || k == 0) return {};
  std::unordered_set<std::string> query_terms;
  for (const std::string& t : index.tokenizer().Tokenize(query)) {
    query_terms.insert(t);
  }
  TopK<std::string> top(k);
  for (const std::string& term : index.Vocabulary()) {
    if (query_terms.count(term) > 0) continue;
    const double w = TermWeight(index, term, results, ranking, nullptr);
    if (w > 0) top.Offer(w, term);
  }
  return TakeTop(top);
}

std::vector<SuggestedTerm> FrequentCoOccurringTerms(
    const text::InvertedIndex& index, const std::string& query, size_t k,
    uint64_t* postings_scanned) {
  const std::vector<text::ScoredDoc> results = AllResults(index, query);
  if (results.empty() || k == 0) return {};
  std::unordered_set<std::string> query_terms;
  for (const std::string& t : index.tokenizer().Tokenize(query)) {
    query_terms.insert(t);
  }
  // Candidates ordered by document frequency, descending: df bounds the
  // achievable co-occurrence weight, enabling early termination.
  std::vector<std::string> vocab = index.Vocabulary();
  std::sort(vocab.begin(), vocab.end(),
            [&](const std::string& a, const std::string& b) {
              const size_t da = index.DocFreq(a), db = index.DocFreq(b);
              if (da != db) return da > db;
              return a < b;
            });
  TopK<std::string> top(k);
  for (const std::string& term : vocab) {
    // Upper bound: a term cannot co-occur in more result rows than its
    // total document frequency (tf >= 1 per doc).
    if (top.Full() &&
        top.WouldReject(static_cast<double>(index.DocFreq(term)))) {
      break;  // all remaining terms have even smaller df
    }
    if (query_terms.count(term) > 0) continue;
    const double w = TermWeight(index, term, results,
                                TermRanking::kPopularity, postings_scanned);
    if (w > 0) top.Offer(w, term);
  }
  return TakeTop(top);
}

}  // namespace kws::refine

#ifndef KWDB_CORE_REFINE_FACETS_H_
#define KWDB_CORE_REFINE_FACETS_H_

#include <optional>
#include <string>
#include <vector>

#include "relational/database.h"
#include "relational/query_log.h"

namespace kws::refine {

/// One facet condition: an equality on a categorical column or a numeric
/// bucket [lo, hi) (tutorial slides 84-85).
struct FacetCondition {
  relational::ColumnId column = 0;
  std::optional<relational::Value> equals;
  std::optional<double> lo;
  std::optional<double> hi;

  /// True when `row`'s facet column falls inside this bucket.
  bool Matches(const relational::Table& table, relational::RowId row) const;
  /// Renders the bucket bounds with the facet column's name.
  std::string ToString(const relational::TableSchema& schema) const;
};

/// A node of the navigation tree: the rows satisfying the path's
/// conditions, and one child per condition of the facet expanded here.
struct FacetNode {
  /// Condition selecting this node from its parent (none at the root).
  std::optional<FacetCondition> condition;
  /// Column of the facet expanded at this node (valid when children
  /// non-empty).
  relational::ColumnId facet_column = 0;
  std::vector<relational::RowId> rows;
  std::vector<FacetNode> children;
};

/// Which probability/cost model drives ExpectedCost (and the greedy
/// builder's lookahead).
enum class FacetCostModel {
  /// Chakrabarti et al. 04 (slides 87-90): p(expand) from query-log
  /// attribute frequency, p(child relevant) from condition overlap.
  kQueryLog,
  /// FACeTOR-style (slides 92-93): p(showRes) grows as the result set
  /// shrinks, p(expand) follows per-column interestingness, and paging
  /// through facet conditions charges a SHOWMORE cost per extra page.
  kFacetor,
};

/// Size/shape caps for facet-tree construction.
struct FacetTreeOptions {
  size_t max_depth = 3;
  /// Cap on conditions per facet (top values by result frequency).
  size_t max_conditions = 8;
  /// Numeric buckets per column.
  size_t numeric_buckets = 4;
  /// Nodes with at most this many rows are not expanded further.
  size_t min_rows_to_expand = 4;
  FacetCostModel cost_model = FacetCostModel::kQueryLog;
  /// kFacetor: conditions shown per "page"; each further page costs one
  /// SHOWMORE action.
  size_t facetor_page_size = 4;
  /// kFacetor: result-set size at which showing results is as likely as
  /// expanding.
  double facetor_show_threshold = 10.0;
};

/// Builds and costs faceted navigation trees over a query's result rows
/// (Chakrabarti et al. 04 / FACeTOR; tutorial slides 84-93). All
/// probability estimates come from the query log:
///  - p(expand facet F at N): fraction of logged queries with a predicate
///    on F's column;
///  - p(child relevant): fraction of logged queries whose condition
///    overlaps the child's facet condition.
class FacetedNavigator {
 public:
  /// `log` supplies the probability estimates; the table must outlive the
  /// navigator.
  FacetedNavigator(const relational::Database& db, relational::TableId table,
                   const relational::QueryLog& log);

  /// Greedy top-down construction: at each level pick the unused column
  /// minimizing the (one-level lookahead) expected navigation cost.
  FacetNode BuildGreedy(const std::vector<relational::RowId>& rows,
                        const FacetTreeOptions& options = {}) const;

  /// Baseline: expand columns in the given fixed order regardless of cost.
  FacetNode BuildFixedOrder(const std::vector<relational::RowId>& rows,
                            const std::vector<relational::ColumnId>& order,
                            const FacetTreeOptions& options = {}) const;

  /// Expected navigation cost of a tree under the slide-88 model:
  ///   cost(N) = p(showRes) * |rows(N)|
  ///           + p(expand) * sum_child p(proc child) * (1 + cost(child))
  /// with the probabilities chosen by options.cost_model (the FACeTOR
  /// model additionally charges SHOWMORE for paged facet conditions).
  double ExpectedCost(const FacetNode& node,
                      const FacetTreeOptions& options = {}) const;

  /// p(expand) estimate for a column.
  double AttributeInterest(relational::ColumnId column) const;

  /// p(child relevant) estimate for a condition.
  double ConditionRelevance(const FacetCondition& condition) const;

  /// The facet conditions a column induces over `rows` (top categorical
  /// values, or log-driven numeric buckets).
  std::vector<FacetCondition> ConditionsFor(
      relational::ColumnId column, const std::vector<relational::RowId>& rows,
      const FacetTreeOptions& options) const;

 private:
  void Expand(FacetNode& node, std::vector<relational::ColumnId> remaining,
              bool greedy, size_t depth,
              const FacetTreeOptions& options) const;

  /// Candidate facet columns: every non-key column.
  std::vector<relational::ColumnId> CandidateColumns() const;

  const relational::Database& db_;
  relational::TableId table_;
  const relational::QueryLog& log_;
};

}  // namespace kws::refine

#endif  // KWDB_CORE_REFINE_FACETS_H_

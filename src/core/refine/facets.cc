#include "core/refine/facets.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

namespace kws::refine {

using relational::ColumnId;
using relational::QueryLog;
using relational::RowId;
using relational::Table;
using relational::Value;
using relational::ValueType;

bool FacetCondition::Matches(const Table& table, RowId row) const {
  const Value& v = table.cell(row, column);
  if (equals.has_value()) return v == *equals;
  const double x = v.AsNumber();
  if (lo.has_value() && x < *lo) return false;
  if (hi.has_value() && x >= *hi) return false;
  return true;
}

std::string FacetCondition::ToString(
    const relational::TableSchema& schema) const {
  const std::string& name = schema.columns[column].name;
  if (equals.has_value()) return name + " = " + equals->ToString();
  std::string out = name + " in [";
  out += lo.has_value() ? std::to_string(*lo) : "-inf";
  out += ", ";
  out += hi.has_value() ? std::to_string(*hi) : "+inf";
  out += ")";
  return out;
}

FacetedNavigator::FacetedNavigator(const relational::Database& db,
                                   relational::TableId table,
                                   const QueryLog& log)
    : db_(db), table_(table), log_(log) {}

double FacetedNavigator::AttributeInterest(ColumnId column) const {
  if (log_.empty()) return 0.5;
  double hits = 0, total = 0;
  for (const relational::LoggedQuery& q : log_) {
    total += q.count;
    for (const relational::LoggedPredicate& p : q.predicates) {
      if (p.column == column) {
        hits += q.count;
        break;
      }
    }
  }
  // Laplace smoothing keeps unseen attributes expandable.
  return (hits + 1.0) / (total + 2.0);
}

double FacetedNavigator::ConditionRelevance(
    const FacetCondition& condition) const {
  if (log_.empty()) return 0.5;
  double hits = 0, total = 0;
  for (const relational::LoggedQuery& q : log_) {
    total += q.count;
    for (const relational::LoggedPredicate& p : q.predicates) {
      if (p.column != condition.column) continue;
      bool overlap = false;
      if (condition.equals.has_value()) {
        overlap = p.equals.has_value() && *p.equals == *condition.equals;
      } else if (p.lo.has_value() && p.hi.has_value()) {
        const double lo = condition.lo.value_or(
            -std::numeric_limits<double>::infinity());
        const double hi = condition.hi.value_or(
            std::numeric_limits<double>::infinity());
        overlap = *p.hi >= lo && *p.lo < hi;
      }
      if (overlap) {
        hits += q.count;
        break;
      }
    }
  }
  return (hits + 1.0) / (total + 2.0);
}

std::vector<FacetCondition> FacetedNavigator::ConditionsFor(
    ColumnId column, const std::vector<RowId>& rows,
    const FacetTreeOptions& options) const {
  const Table& table = db_.table(table_);
  const ValueType type = table.schema().columns[column].type;
  std::vector<FacetCondition> out;
  if (type == ValueType::kText) {
    // Categorical: one condition per value, most frequent first
    // (slide 85: "ordered based on how many queries hit each value" —
    // we order by result frequency then log relevance).
    std::map<Value, size_t> counts;
    for (RowId r : rows) ++counts[table.cell(r, column)];
    std::vector<std::pair<size_t, Value>> ordered;
    for (const auto& [v, c] : counts) ordered.emplace_back(c, v);
    std::sort(ordered.begin(), ordered.end(),
              [](const auto& a, const auto& b) {
                if (a.first != b.first) return a.first > b.first;
                return a.second < b.second;
              });
    for (const auto& [c, v] : ordered) {
      if (out.size() >= options.max_conditions) break;
      FacetCondition fc;
      fc.column = column;
      fc.equals = v;
      out.push_back(std::move(fc));
    }
  } else {
    // Numeric: partition at the boundaries historical queries used
    // (slide 85: "if many queries start or end at x, partition at x").
    std::map<double, size_t> boundary_votes;
    for (const relational::LoggedQuery& q : log_) {
      for (const relational::LoggedPredicate& p : q.predicates) {
        if (p.column != column) continue;
        if (p.lo.has_value()) boundary_votes[*p.lo] += q.count;
        if (p.hi.has_value()) boundary_votes[*p.hi] += q.count;
      }
    }
    std::vector<std::pair<size_t, double>> ranked;
    for (const auto& [x, votes] : boundary_votes) {
      ranked.emplace_back(votes, x);
    }
    std::sort(ranked.rbegin(), ranked.rend());
    std::vector<double> cuts;
    for (const auto& [votes, x] : ranked) {
      if (cuts.size() + 1 >= options.numeric_buckets) break;
      cuts.push_back(x);
    }
    if (cuts.empty()) {
      // No history: equi-width over the observed range.
      double lo = std::numeric_limits<double>::infinity(), hi = -lo;
      for (RowId r : rows) {
        const double x = table.cell(r, column).AsNumber();
        lo = std::min(lo, x);
        hi = std::max(hi, x);
      }
      if (lo < hi) {
        for (size_t i = 1; i < options.numeric_buckets; ++i) {
          cuts.push_back(lo + (hi - lo) * static_cast<double>(i) /
                                  static_cast<double>(options.numeric_buckets));
        }
      }
    }
    std::sort(cuts.begin(), cuts.end());
    cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());
    double prev = -std::numeric_limits<double>::infinity();
    for (double c : cuts) {
      FacetCondition fc;
      fc.column = column;
      if (std::isfinite(prev)) fc.lo = prev;
      fc.hi = c;
      out.push_back(std::move(fc));
      prev = c;
    }
    FacetCondition last;
    last.column = column;
    if (std::isfinite(prev)) last.lo = prev;
    out.push_back(std::move(last));
  }
  return out;
}

std::vector<ColumnId> FacetedNavigator::CandidateColumns() const {
  const Table& table = db_.table(table_);
  std::vector<ColumnId> out;
  for (ColumnId c = 0; c < table.schema().columns.size(); ++c) {
    if (c == table.schema().primary_key) continue;
    out.push_back(c);
  }
  return out;
}

void FacetedNavigator::Expand(FacetNode& node,
                              std::vector<ColumnId> remaining, bool greedy,
                              size_t depth,
                              const FacetTreeOptions& options) const {
  if (depth >= options.max_depth || remaining.empty() ||
      node.rows.size() <= options.min_rows_to_expand) {
    return;
  }
  const Table& table = db_.table(table_);
  // Pick the column: first remaining (fixed order) or cost-greedy.
  size_t pick = 0;
  if (greedy) {
    double best = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < remaining.size(); ++i) {
      const ColumnId col = remaining[i];
      const auto conditions = ConditionsFor(col, node.rows, options);
      if (conditions.empty()) continue;
      // One-level lookahead cost: showRes cost + expected child scans.
      double p_expand;
      if (options.cost_model == FacetCostModel::kQueryLog) {
        p_expand = AttributeInterest(col);
      } else {
        const double p_show = options.facetor_show_threshold /
                              (options.facetor_show_threshold +
                               static_cast<double>(node.rows.size()));
        p_expand = 1.0 - p_show;
      }
      double child_cost = 0;
      size_t covered = 0;
      for (RowId r : node.rows) {
        bool any = false;
        for (const FacetCondition& fc : conditions) any |= fc.Matches(table, r);
        covered += any;
      }
      for (const FacetCondition& fc : conditions) {
        size_t child_rows = 0;
        for (RowId r : node.rows) child_rows += fc.Matches(table, r);
        child_cost += ConditionRelevance(fc) *
                      (1.0 + static_cast<double>(child_rows));
      }
      // Rows not covered by any shown condition must still be scanned.
      child_cost += static_cast<double>(node.rows.size() - covered);
      const double cost = (1 - p_expand) * static_cast<double>(
                                               node.rows.size()) +
                          p_expand * child_cost;
      if (cost < best) {
        best = cost;
        pick = i;
      }
    }
  }
  const ColumnId col = remaining[pick];
  remaining.erase(remaining.begin() + static_cast<long>(pick));
  const auto conditions = ConditionsFor(col, node.rows, options);
  if (conditions.empty()) return;
  node.facet_column = col;
  for (const FacetCondition& fc : conditions) {
    FacetNode child;
    child.condition = fc;
    for (RowId r : node.rows) {
      if (fc.Matches(table, r)) child.rows.push_back(r);
    }
    if (child.rows.empty()) continue;
    node.children.push_back(std::move(child));
  }
  for (FacetNode& child : node.children) {
    Expand(child, remaining, greedy, depth + 1, options);
  }
}

FacetNode FacetedNavigator::BuildGreedy(const std::vector<RowId>& rows,
                                        const FacetTreeOptions& options) const {
  FacetNode root;
  root.rows = rows;
  Expand(root, CandidateColumns(), /*greedy=*/true, 0, options);
  return root;
}

FacetNode FacetedNavigator::BuildFixedOrder(
    const std::vector<RowId>& rows, const std::vector<ColumnId>& order,
    const FacetTreeOptions& options) const {
  FacetNode root;
  root.rows = rows;
  Expand(root, order, /*greedy=*/false, 0, options);
  return root;
}

double FacetedNavigator::ExpectedCost(const FacetNode& node,
                                      const FacetTreeOptions& options) const {
  if (node.children.empty()) {
    return static_cast<double>(node.rows.size());
  }
  const relational::Table& table = db_.table(table_);
  const double n = static_cast<double>(node.rows.size());
  double p_expand;
  if (options.cost_model == FacetCostModel::kQueryLog) {
    p_expand = AttributeInterest(node.facet_column);
  } else {
    // FACeTOR: the larger the result set, the less attractive reading it
    // raw is, so expansion gets likelier.
    const double p_show =
        options.facetor_show_threshold / (options.facetor_show_threshold + n);
    p_expand = 1.0 - p_show;
  }
  double child_cost = 0;
  size_t covered = 0;
  for (RowId r : node.rows) {
    bool any = false;
    for (const FacetNode& child : node.children) {
      any |= child.condition->Matches(table, r);
    }
    covered += any;
  }
  for (const FacetNode& child : node.children) {
    double p_proc;
    if (options.cost_model == FacetCostModel::kQueryLog) {
      p_proc = ConditionRelevance(*child.condition);
    } else {
      // FACeTOR: condition popularity among the current results, scaled
      // by the column's log interestingness.
      p_proc = (static_cast<double>(child.rows.size()) / std::max(n, 1.0)) *
               AttributeInterest(node.facet_column);
    }
    child_cost += p_proc * (1.0 + ExpectedCost(child, options));
  }
  // Rows the shown conditions miss still cost a scan.
  child_cost += static_cast<double>(node.rows.size() - covered);
  if (options.cost_model == FacetCostModel::kFacetor &&
      node.children.size() > options.facetor_page_size) {
    // SHOWMORE: each extra page of facet conditions is one more action.
    child_cost += static_cast<double>(
        (node.children.size() - 1) / options.facetor_page_size);
  }
  return (1 - p_expand) * n + p_expand * child_cost;
}

}  // namespace kws::refine

#include "core/refine/cluster_expand.h"

#include <algorithm>
#include <set>
#include <unordered_set>

namespace kws::refine {

namespace {

/// Docs (from `universe`) containing every term of `terms`.
std::vector<text::DocId> Retrieve(const text::InvertedIndex& index,
                                  const std::vector<std::string>& terms,
                                  const std::vector<text::DocId>& universe) {
  std::vector<text::DocId> docs = universe;  // sorted
  for (const std::string& t : terms) {
    text::PostingCursor cur{text::PostingSpan(index.GetPostings(t))};
    std::vector<text::DocId> kept;
    kept.reserve(docs.size());
    for (text::DocId d : docs) {
      if (!cur.SeekGE(d)) break;
      if (cur.Value() == d) kept.push_back(d);
    }
    docs.swap(kept);
  }
  return docs;
}

struct PrfScores {
  double precision = 0, recall = 0, f = 0;
};

PrfScores Score(const std::vector<text::DocId>& retrieved,
                const std::unordered_set<text::DocId>& cluster) {
  PrfScores s;
  if (retrieved.empty() || cluster.empty()) return s;
  size_t hits = 0;
  for (text::DocId d : retrieved) hits += cluster.count(d);
  s.precision = static_cast<double>(hits) / retrieved.size();
  s.recall = static_cast<double>(hits) / cluster.size();
  if (s.precision + s.recall > 0) {
    s.f = 2 * s.precision * s.recall / (s.precision + s.recall);
  }
  return s;
}

}  // namespace

std::vector<ExpandedQuery> ExpandQueriesForClusters(
    const text::InvertedIndex& index, const std::string& query,
    const std::vector<std::vector<text::DocId>>& clusters,
    size_t max_extra_terms) {
  std::vector<ExpandedQuery> out;
  const std::vector<std::string> base_terms =
      index.tokenizer().Tokenize(query);
  // Universe: union of all clusters (the original result set).
  std::set<text::DocId> universe_set;
  for (const auto& c : clusters) universe_set.insert(c.begin(), c.end());
  const std::vector<text::DocId> universe(universe_set.begin(),
                                          universe_set.end());

  for (const std::vector<text::DocId>& cluster_docs : clusters) {
    const std::unordered_set<text::DocId> cluster(cluster_docs.begin(),
                                                  cluster_docs.end());
    ExpandedQuery eq;
    eq.terms = base_terms;
    std::vector<text::DocId> retrieved =
        Retrieve(index, eq.terms, universe);
    PrfScores best = Score(retrieved, cluster);
    // Candidate expansion terms: anything occurring in the cluster.
    std::set<std::string> candidates;
    {
      std::unordered_set<text::DocId> cluster_set = cluster;
      for (const std::string& term : index.Vocabulary()) {
        for (const text::Posting& p : index.GetPostings(term)) {
          if (cluster_set.count(p.doc) > 0) {
            candidates.insert(term);
            break;
          }
        }
      }
      for (const std::string& t : base_terms) candidates.erase(t);
    }
    for (size_t round = 0; round < max_extra_terms; ++round) {
      std::string best_term;
      PrfScores best_round = best;
      for (const std::string& cand : candidates) {
        std::vector<std::string> trial = eq.terms;
        trial.push_back(cand);
        PrfScores s = Score(Retrieve(index, trial, universe), cluster);
        if (s.f > best_round.f + 1e-12) {
          best_round = s;
          best_term = cand;
        }
      }
      if (best_term.empty()) break;  // no term improves F
      eq.terms.push_back(best_term);
      candidates.erase(best_term);
      best = best_round;
    }
    eq.precision = best.precision;
    eq.recall = best.recall;
    eq.f_measure = best.f;
    out.push_back(std::move(eq));
  }
  return out;
}

}  // namespace kws::refine

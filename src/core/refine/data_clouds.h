#ifndef KWDB_CORE_REFINE_DATA_CLOUDS_H_
#define KWDB_CORE_REFINE_DATA_CLOUDS_H_

#include <string>
#include <vector>

#include "text/inverted_index.h"

namespace kws::refine {

/// A suggested refinement term with its weight.
struct SuggestedTerm {
  std::string term;
  double score = 0;
};

/// How Data Clouds weighs terms found in the current result set
/// (Koutrika et al., EDBT 09; tutorial slides 76-77).
enum class TermRanking {
  /// Raw popularity: number of results containing the term. Simple but
  /// favors overly general words.
  kPopularity,
  /// Relevance-weighted: term frequency weighted by each result's query
  /// relevance score, dampened by the term's collection frequency (IDF).
  kRelevance,
};

/// Suggests up to `k` expansion terms from the results of `query`
/// (conjunctive retrieval over `index`), excluding the query's own terms.
std::vector<SuggestedTerm> SuggestTerms(const text::InvertedIndex& index,
                                        const std::string& query,
                                        TermRanking ranking, size_t k);

/// Frequent co-occurring terms (Tao & Yu, EDBT 09; slide 78): the same
/// top-k by frequency, but computed by merging postings without
/// materializing result documents — the posting list of each candidate
/// term is intersected with the query's result ids with early termination
/// once the running upper bound cannot reach the current top-k. Returns
/// the same terms as kPopularity; `postings_scanned`, when provided,
/// receives the work counter the E13 benchmark reports.
std::vector<SuggestedTerm> FrequentCoOccurringTerms(
    const text::InvertedIndex& index, const std::string& query, size_t k,
    uint64_t* postings_scanned = nullptr);

}  // namespace kws::refine

#endif  // KWDB_CORE_REFINE_DATA_CLOUDS_H_

#ifndef KWDB_CORE_REFINE_CLUSTER_EXPAND_H_
#define KWDB_CORE_REFINE_CLUSTER_EXPAND_H_

#include <string>
#include <vector>

#include "text/inverted_index.h"

namespace kws::refine {

/// One expanded query for one result cluster.
struct ExpandedQuery {
  /// Original query terms plus the added discriminating terms.
  std::vector<std::string> terms;
  double precision = 0;
  double recall = 0;
  double f_measure = 0;
};

/// Query expansion using clusters (Liu et al.; tutorial slides 80-82):
/// given the original query and a clustering of its results, produce one
/// expanded query per cluster that maximally retrieves that cluster
/// (recall) while minimally retrieving the others (precision) — i.e.
/// greedily maximizes F-measure. The exact problem is APX-hard; this is
/// the greedy heuristic: repeatedly add the co-occurring term with the
/// best F-gain until no term improves it.
///
/// `clusters[i]` lists the docs of cluster i; all docs must be results of
/// `query` under conjunctive semantics.
std::vector<ExpandedQuery> ExpandQueriesForClusters(
    const text::InvertedIndex& index, const std::string& query,
    const std::vector<std::vector<text::DocId>>& clusters,
    size_t max_extra_terms = 3);

}  // namespace kws::refine

#endif  // KWDB_CORE_REFINE_CLUSTER_EXPAND_H_

#include "core/clean/cleaner.h"

#include <algorithm>
#include <cmath>

#include "text/edit_distance.h"

namespace kws::clean {

QueryCleaner::QueryCleaner(const text::InvertedIndex& index,
                           CleanerOptions options)
    : index_(index), options_(options) {
  for (const std::string& w : index_.Vocabulary()) {
    trie_.Insert(w);
    for (const text::Posting& p : index_.GetPostings(w)) {
      total_tokens_ += p.tf;
    }
  }
  trie_.Freeze();
}

std::vector<std::pair<std::string, double>> QueryCleaner::ConfusionSet(
    const std::string& token) const {
  std::vector<std::pair<std::string, double>> out;
  for (uint32_t id = 0; id < trie_.size(); ++id) {
    const std::string& w = trie_.Word(id);
    const size_t d =
        text::BoundedEditDistance(token, w, options_.max_edits);
    if (d > options_.max_edits) continue;
    double freq = 0;
    for (const text::Posting& p : index_.GetPostings(w)) freq += p.tf;
    const double prior =
        std::log((freq + 0.5) / (total_tokens_ + 1.0));
    out.emplace_back(w, options_.edit_log_penalty * static_cast<double>(d) +
                            prior);
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  if (out.size() > options_.max_candidates) {
    out.resize(options_.max_candidates);
  }
  return out;
}

size_t QueryCleaner::ConjunctiveCount(
    const std::vector<std::string>& tokens) const {
  if (tokens.empty()) return 0;
  std::vector<text::PostingSpan> spans;
  spans.reserve(tokens.size());
  for (const std::string& t : tokens) {
    spans.emplace_back(index_.GetPostings(t));
  }
  return text::IntersectLists(spans).size();
}

CleanedQuery QueryCleaner::Clean(const std::string& raw_query) const {
  CleanedQuery best_overall;
  const std::vector<std::string> raw_tokens =
      index_.tokenizer().Tokenize(raw_query);
  if (raw_tokens.empty()) return best_overall;

  // --- Stage 1: beam over per-token confusion sets (noisy channel). ----
  struct Hypothesis {
    std::vector<std::string> tokens;
    double log_prob = 0;
  };
  std::vector<Hypothesis> beam = {{{}, 0.0}};
  constexpr size_t kBeamWidth = 32;
  for (const std::string& tok : raw_tokens) {
    std::vector<std::pair<std::string, double>> cands = ConfusionSet(tok);
    if (cands.empty()) {
      // Out-of-vocabulary token: keep verbatim with a flat penalty.
      cands.emplace_back(tok, options_.edit_log_penalty *
                                  static_cast<double>(options_.max_edits + 1));
    }
    std::vector<Hypothesis> next;
    for (const Hypothesis& h : beam) {
      for (const auto& [word, score] : cands) {
        Hypothesis n = h;
        n.tokens.push_back(word);
        n.log_prob += score;
        next.push_back(std::move(n));
      }
    }
    std::sort(next.begin(), next.end(),
              [](const Hypothesis& a, const Hypothesis& b) {
                return a.log_prob > b.log_prob;
              });
    if (next.size() > kBeamWidth) next.resize(kBeamWidth);
    beam = std::move(next);
  }

  // --- Stage 2: segment each hypothesis (Pu & Yu DP) and apply the
  // XClean non-empty-result requirement. -------------------------------
  auto segment = [&](const std::vector<std::string>& tokens,
                     std::vector<std::pair<size_t, size_t>>* segments) {
    const size_t n = tokens.size();
    // dp[i] = best log score of segmenting tokens[0..i).
    std::vector<double> dp(n + 1, -1e18);
    std::vector<size_t> from(n + 1, 0);
    dp[0] = 0;
    for (size_t i = 0; i < n; ++i) {
      if (dp[i] == -1e18) continue;
      for (size_t len = 1; len <= options_.max_segment_len && i + len <= n;
           ++len) {
        const std::vector<std::string> seg(tokens.begin() + i,
                                           tokens.begin() + i + len);
        const size_t support = ConjunctiveCount(seg);
        if (len > 1 && support == 0) continue;  // segment must be DB-backed
        // Longer supported segments score better than the same tokens
        // fragmented (slide 68: "prevent fragmentation").
        const double seg_score =
            std::log((static_cast<double>(support) + 0.5) /
                     (static_cast<double>(index_.num_docs()) + 1.0)) /
            static_cast<double>(len);
        if (dp[i] + seg_score > dp[i + len]) {
          dp[i + len] = dp[i] + seg_score;
          from[i + len] = i;
        }
      }
    }
    if (segments != nullptr) {
      segments->clear();
      size_t cur = n;
      while (cur > 0) {
        const size_t prev = from[cur];
        segments->emplace_back(prev, cur - prev);
        cur = prev;
      }
      std::reverse(segments->begin(), segments->end());
    }
    return dp[n];
  };

  bool have_any = false;
  for (const Hypothesis& h : beam) {
    CleanedQuery cq;
    cq.tokens = h.tokens;
    cq.log_prob = h.log_prob + segment(h.tokens, &cq.segments);
    cq.has_results = ConjunctiveCount(h.tokens) > 0;
    if (!have_any) {
      best_overall = cq;
      have_any = true;
    }
    if (options_.require_results && cq.has_results) {
      return cq;  // beam is score-ordered: first valid is best valid
    }
    if (!options_.require_results) return cq;
  }
  return best_overall;
}

}  // namespace kws::clean

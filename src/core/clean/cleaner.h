#ifndef KWDB_CORE_CLEAN_CLEANER_H_
#define KWDB_CORE_CLEAN_CLEANER_H_

#include <string>
#include <vector>

#include "text/inverted_index.h"
#include "text/trie.h"

namespace kws::clean {

/// One candidate interpretation of a raw query under the noisy-channel
/// model (tutorial slides 66-70): cleaned tokens, their segmentation into
/// DB-backed segments, and the posterior log-probability.
struct CleanedQuery {
  std::vector<std::string> tokens;
  /// segments[i] = (first token index, length); segments tile the tokens.
  std::vector<std::pair<size_t, size_t>> segments;
  double log_prob = 0;
  /// True when the cleaned query has at least one conjunctive result in
  /// the collection (the XClean guarantee).
  bool has_results = false;
};

/// Tuning knobs for the noisy-channel query cleaner.
struct CleanerOptions {
  /// Maximum edit distance for confusion sets.
  size_t max_edits = 2;
  /// Per-edit log penalty of the error model.
  double edit_log_penalty = -4.0;
  /// Confusion-set cap per token (keep the most frequent candidates).
  size_t max_candidates = 12;
  /// Longest segment (n-gram) considered by the segmentation DP.
  size_t max_segment_len = 3;
  /// Require the cleaned query to have non-empty conjunctive results
  /// (XClean, Lu et al. ICDE 11). When no candidate qualifies, the best
  /// unconstrained cleaning is returned with has_results == false.
  bool require_results = true;
};

/// Keyword query cleaner over a document collection's vocabulary
/// (Pu & Yu VLDB 08 segmentation + XClean's non-empty-result guarantee).
class QueryCleaner {
 public:
  /// Builds the vocabulary (with frequencies) from `index`. The index must
  /// outlive the cleaner.
  explicit QueryCleaner(const text::InvertedIndex& index,
                        CleanerOptions options = {});

  /// Cleans a raw query. Tokens are normalized with the index's tokenizer
  /// (stopwords retained as-is may vanish; that matches search behavior).
  CleanedQuery Clean(const std::string& raw_query) const;

  /// Confusion set of `token`: (vocabulary word, log prior+error score),
  /// best first. Exposed for tests and the E9 benchmark.
  std::vector<std::pair<std::string, double>> ConfusionSet(
      const std::string& token) const;

 private:
  /// Number of documents containing every token of `tokens` (> 0 check is
  /// used both for segment support and the XClean guarantee).
  size_t ConjunctiveCount(const std::vector<std::string>& tokens) const;

  const text::InvertedIndex& index_;
  CleanerOptions options_;
  text::Trie trie_;
  double total_tokens_ = 0;
};

}  // namespace kws::clean

#endif  // KWDB_CORE_CLEAN_CLEANER_H_

#include "core/infer/correlation.h"

#include <cmath>
#include <set>

namespace kws::infer {

double Entropy(const std::vector<double>& counts) {
  double total = 0;
  for (double c : counts) total += c;
  if (total <= 0) return 0;
  double h = 0;
  for (double c : counts) {
    if (c <= 0) continue;
    const double p = c / total;
    h -= p * std::log2(p);
  }
  return h;
}

namespace {

/// Marginal entropy of variable `i` and joint entropy of the whole vector.
double MarginalEntropy(const std::vector<JointObservation>& joint, size_t i) {
  std::map<std::string, double> counts;
  for (const JointObservation& o : joint) counts[o[i]] += 1;
  std::vector<double> c;
  for (const auto& [k, v] : counts) c.push_back(v);
  return Entropy(c);
}

double JointEntropy(const std::vector<JointObservation>& joint) {
  std::map<std::vector<std::string>, double> counts;
  for (const JointObservation& o : joint) counts[o] += 1;
  std::vector<double> c;
  for (const auto& [k, v] : counts) c.push_back(v);
  return Entropy(c);
}

}  // namespace

double TotalCorrelation(const std::vector<JointObservation>& joint) {
  if (joint.empty()) return 0;
  const size_t n = joint[0].size();
  double sum = 0;
  for (size_t i = 0; i < n; ++i) sum += MarginalEntropy(joint, i);
  return sum - JointEntropy(joint);
}

double NormalizedTotalCorrelation(
    const std::vector<JointObservation>& joint) {
  if (joint.empty()) return 0;
  const size_t n = joint[0].size();
  if (n < 2) return 0;
  const double h = JointEntropy(joint);
  if (h <= 0) return 0;
  const double f = (static_cast<double>(n) * static_cast<double>(n)) /
                   (static_cast<double>(n - 1) * static_cast<double>(n - 1));
  return f * TotalCorrelation(joint) / h;
}

std::vector<JointObservation> JoinObservations(
    const relational::Database& db,
    const std::vector<relational::TableId>& chain,
    const std::vector<uint32_t>& fk_chain) {
  std::vector<JointObservation> out;
  if (chain.empty() || fk_chain.size() + 1 != chain.size()) return out;
  // Seed with every row of the first table, then expand along the chain.
  std::vector<std::vector<relational::TupleId>> partials;
  for (relational::RowId r = 0; r < db.table(chain[0]).num_rows(); ++r) {
    partials.push_back({relational::TupleId{chain[0], r}});
  }
  for (size_t step = 0; step < fk_chain.size(); ++step) {
    const relational::ForeignKey& fk = db.foreign_keys()[fk_chain[step]];
    const bool from_referencing = (fk.table == chain[step]);
    std::vector<std::vector<relational::TupleId>> next;
    for (const auto& partial : partials) {
      for (const relational::TupleId& t :
           db.JoinedRows(fk_chain[step], partial.back(), from_referencing)) {
        if (t.table != chain[step + 1]) continue;
        auto extended = partial;
        extended.push_back(t);
        next.push_back(std::move(extended));
      }
    }
    partials = std::move(next);
  }
  for (const auto& p : partials) {
    JointObservation o;
    for (const relational::TupleId& t : p) {
      o.push_back(std::to_string(t.table) + ":" + std::to_string(t.row));
    }
    out.push_back(std::move(o));
  }
  return out;
}

double ParticipationRatio(const relational::Database& db, uint32_t fk_index,
                          bool from_referencing) {
  const relational::ForeignKey& fk = db.foreign_keys()[fk_index];
  const relational::TableId from = from_referencing ? fk.table : fk.ref_table;
  const relational::Table& table = db.table(from);
  if (table.num_rows() == 0) return 0;
  size_t connected = 0;
  for (relational::RowId r = 0; r < table.num_rows(); ++r) {
    connected += !db.JoinedRows(fk_index, relational::TupleId{from, r},
                                from_referencing)
                      .empty();
  }
  return static_cast<double>(connected) /
         static_cast<double>(table.num_rows());
}

double Relatedness(const relational::Database& db, uint32_t fk_index) {
  return 0.5 * (ParticipationRatio(db, fk_index, true) +
                ParticipationRatio(db, fk_index, false));
}

}  // namespace kws::infer

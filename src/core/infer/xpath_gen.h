#ifndef KWDB_CORE_INFER_XPATH_GEN_H_
#define KWDB_CORE_INFER_XPATH_GEN_H_

#include <string>
#include <vector>

#include "xml/tree.h"

namespace kws::infer {

/// A generated content-and-structure query (Petkova et al., ECIR 09;
/// tutorial slides 47-48): a target label path with one content predicate
/// per keyword, plus its posterior probability and the matching target
/// instances.
struct XPathQuery {
  /// The return path, e.g. "/bib/conference/paper".
  std::string target_path;
  /// Per keyword: the label path its predicate binds to (a descendant-or-
  /// self of target_path).
  std::vector<std::string> binding_paths;
  double probability = 0;
  /// Instances of target_path whose subtree satisfies every predicate.
  std::vector<xml::XmlNodeId> results;

  /// "/bib/conference/paper[title ~ 'xml'][author ~ 'widom']" rendering.
  std::string ToString(const std::vector<std::string>& keywords) const;
};

/// Size caps for keyword-to-XPath query generation.
struct XPathGenOptions {
  /// Bindings kept per keyword before combination.
  size_t bindings_per_keyword = 4;
  /// Queries returned.
  size_t k = 5;
};

/// Generates the top-k most probable structured queries for a keyword
/// query: per-keyword bindings are scored with a smoothed language model
/// P(kw | instances of path); combinations are reduced to a valid query
/// by nesting both predicates under their deepest common ancestor path,
/// with the joint satisfaction ratio as the structural factor. Queries
/// with no results are discarded (every returned query is non-empty).
std::vector<XPathQuery> GenerateXPathQueries(
    const xml::XmlTree& tree, const std::vector<std::string>& keywords,
    const XPathGenOptions& options = {});

}  // namespace kws::infer

#endif  // KWDB_CORE_INFER_XPATH_GEN_H_

#include "core/infer/iqp.h"

#include <algorithm>
#include <cmath>

#include "common/topk.h"
#include "text/tokenizer.h"

namespace kws::infer {

using relational::ColumnId;
using relational::RowId;
using relational::Table;
using relational::ValueType;

std::string Interpretation::ToString(
    const relational::TableSchema& schema,
    const std::vector<std::string>& keywords) const {
  std::string out;
  for (size_t i = 0; i < bindings.size() && i < keywords.size(); ++i) {
    if (i > 0) out += " AND ";
    out += schema.columns[bindings[i]].name + " ~ '" + keywords[i] + "'";
  }
  return out;
}

IqpRanker::IqpRanker(const relational::Database& db,
                     relational::TableId table,
                     const relational::QueryLog& log)
    : db_(db), table_(table) {
  const Table& t = db.table(table);
  column_prior_.assign(t.schema().columns.size(), 1.0);
  // Template prior: how often logged queries constrained each column.
  for (const relational::LoggedQuery& q : log) {
    for (const relational::LoggedPredicate& p : q.predicates) {
      if (p.column < column_prior_.size()) {
        column_prior_[p.column] += q.count;
      }
    }
  }
  double total = 0;
  for (double p : column_prior_) total += p;
  for (double& p : column_prior_) p /= total;
}

double IqpRanker::BindingProbability(const std::string& keyword,
                                     ColumnId column) const {
  const Table& t = db_.table(table_);
  text::Tokenizer tokenizer;
  // Occurrences of the keyword per column (counted over all rows).
  double in_column = 0, anywhere = 0;
  for (RowId r = 0; r < t.num_rows(); ++r) {
    for (ColumnId c = 0; c < t.schema().columns.size(); ++c) {
      const relational::Value& v = t.cell(r, c);
      if (v.type() != ValueType::kText) continue;
      for (const std::string& tok : tokenizer.Tokenize(v.AsText())) {
        if (tok == keyword) {
          anywhere += 1;
          if (c == column) in_column += 1;
        }
      }
    }
  }
  const double cols = static_cast<double>(t.schema().columns.size());
  return (in_column + 0.1) / (anywhere + 0.1 * cols);
}

std::vector<Interpretation> IqpRanker::Rank(
    const std::vector<std::string>& keywords, size_t k) const {
  const Table& t = db_.table(table_);
  const size_t num_cols = t.schema().columns.size();
  if (keywords.empty() || k == 0) return {};
  // Precompute binding probabilities.
  std::vector<std::vector<double>> bind(keywords.size(),
                                        std::vector<double>(num_cols));
  for (size_t i = 0; i < keywords.size(); ++i) {
    for (ColumnId c = 0; c < num_cols; ++c) {
      bind[i][c] = BindingProbability(keywords[i], c);
    }
  }
  // Enumerate bindings (num_cols^keywords, small for entity tables);
  // keep top-k by probability.
  TopK<Interpretation> top(k);
  std::vector<ColumnId> current(keywords.size(), 0);
  auto enumerate = [&](auto&& self, size_t i, double prob) -> void {
    if (i == keywords.size()) {
      Interpretation interp;
      interp.bindings = current;
      interp.probability = prob;
      top.Offer(prob, std::move(interp));
      return;
    }
    for (ColumnId c = 0; c < num_cols; ++c) {
      if (c == t.schema().primary_key) continue;
      current[i] = c;
      self(self, i + 1, prob * bind[i][c] * column_prior_[c]);
    }
  };
  enumerate(enumerate, 0, 1.0);
  std::vector<Interpretation> out;
  for (auto& [p, interp] : top.TakeSorted()) out.push_back(std::move(interp));
  return out;
}

}  // namespace kws::infer

#ifndef KWDB_CORE_INFER_CORRELATION_H_
#define KWDB_CORE_INFER_CORRELATION_H_

#include <map>
#include <string>
#include <vector>

#include "relational/database.h"

namespace kws::infer {

/// Entropy of a discrete distribution given by counts.
double Entropy(const std::vector<double>& counts);

/// A joined sample: one categorical symbol per joined variable. The NTC
/// machinery treats each CN node (or table position) as a random variable
/// and each joined instance as one joint observation (tutorial
/// slides 42-43).
using JointObservation = std::vector<std::string>;

/// Total correlation I(P) = sum_i H(P_i) - H(P_1..P_n): the amount of
/// information the variables share. I ~= 0 means statistically unrelated.
double TotalCorrelation(const std::vector<JointObservation>& joint);

/// NTC's normalized form I*(P) = f(n) * I(P) / H(P_1..P_n) with
/// f(n) = n^2 / (n-1)^2 (Termehchy & Winslett, CIKM 09).
double NormalizedTotalCorrelation(const std::vector<JointObservation>& joint);

/// Builds joint observations for a chain of tables joined through the
/// given foreign keys: each observation is the tuple-id string of the
/// participating rows. `fk_chain[i]` must connect chain table i and i+1
/// (either direction). This is what NTC ranks join templates by.
std::vector<JointObservation> JoinObservations(
    const relational::Database& db,
    const std::vector<relational::TableId>& chain,
    const std::vector<uint32_t>& fk_chain);

/// Participation ratio P(E1 -> E2): the fraction of rows of `from` that
/// join at least one row of the other side of foreign key `fk`
/// (Jayapandian & Jagadish, VLDB 08; slide 40). `from_referencing` selects
/// the direction.
double ParticipationRatio(const relational::Database& db, uint32_t fk,
                          bool from_referencing);

/// Relatedness of the two entity types joined by `fk`:
/// [P(E1->E2) + P(E2->E1)] / 2.
double Relatedness(const relational::Database& db, uint32_t fk);

}  // namespace kws::infer

#endif  // KWDB_CORE_INFER_CORRELATION_H_

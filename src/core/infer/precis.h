#ifndef KWDB_CORE_INFER_PRECIS_H_
#define KWDB_CORE_INFER_PRECIS_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "relational/database.h"

namespace kws::infer {

/// Edge weights of the Précis weighted schema graph (Koutrika et al.,
/// ICDE 06; tutorial slide 52): how strongly each FK direction binds the
/// two tables, in [0, 1]. Key: (fk index, direction), direction true =
/// referencing -> referenced.
class SchemaWeights {
 public:
  /// Uniform default weight 1.0 for every edge.
  SchemaWeights() = default;

  void Set(uint32_t fk, bool forward, double weight) {
    weights_[Key(fk, forward)] = weight;
  }
  double Get(uint32_t fk, bool forward) const {
    auto it = weights_.find(Key(fk, forward));
    return it == weights_.end() ? 1.0 : it->second;
  }

  /// Weights derived from participation ratios (data-driven default).
  static SchemaWeights FromParticipation(const relational::Database& db);

 private:
  static uint64_t Key(uint32_t fk, bool forward) {
    return (static_cast<uint64_t>(fk) << 1) | (forward ? 1 : 0);
  }
  std::unordered_map<uint64_t, double> weights_;
};

/// One attribute selected into a Précis answer: the table it lives in,
/// the FK path from the focal table, and the accumulated path weight.
struct PrecisAttribute {
  relational::TableId table = 0;
  relational::ColumnId column = 0;
  /// FK edges (index, forward) from the focal table to `table`.
  std::vector<std::pair<uint32_t, bool>> path;
  double weight = 0;
};

/// Tuning knobs for Precis-style result-attribute expansion.
struct PrecisOptions {
  /// Maximum number of attributes in a result (slide 52 constraint 1).
  size_t max_attributes = 8;
  /// Minimum path weight for an attribute to qualify (constraint 2).
  double min_weight = 0.4;
  /// Path length cap (the schema graph may be cyclic).
  size_t max_path_edges = 3;
};

/// Computes the Précis answer schema for results anchored at `focal`:
/// the attributes of the focal table plus attributes of related tables
/// whose multiplied path weight clears `min_weight`, best-weighted first,
/// capped at `max_attributes`.
std::vector<PrecisAttribute> PrecisAnswerSchema(
    const relational::Database& db, relational::TableId focal,
    const SchemaWeights& weights, const PrecisOptions& options = {});

/// Materializes one tuple's Précis answer: for each schema attribute,
/// follows its FK path from `row` and renders "table.column=value" parts
/// (multiple reachable rows are all included, comma-separated).
std::string ExpandPrecisAnswer(const relational::Database& db,
                               relational::TableId focal,
                               relational::RowId row,
                               const std::vector<PrecisAttribute>& schema);

}  // namespace kws::infer

#endif  // KWDB_CORE_INFER_PRECIS_H_

#ifndef KWDB_CORE_INFER_IQP_H_
#define KWDB_CORE_INFER_IQP_H_

#include <string>
#include <vector>

#include "relational/database.h"
#include "relational/query_log.h"

namespace kws::infer {

/// A structured interpretation of a keyword query: a template (which
/// column each keyword binds to) scored as Pr[A, T | Q] ∝ Pr[T] * ∏
/// Pr[A_i | T] (IQP, Demidova et al. TKDE 11; tutorial slide 46).
struct Interpretation {
  /// binding[i] = the column keyword i binds to.
  std::vector<relational::ColumnId> bindings;
  double probability = 0;

  /// Renders the predicate and its posterior probability.
  std::string ToString(const relational::TableSchema& schema,
                       const std::vector<std::string>& keywords) const;
};

/// IQP-style probabilistic interpretation ranking over one table.
/// Template priors Pr[T] and binding likelihoods Pr[A_i | T] are both
/// estimated from the query log (keyword-to-column evidence comes from
/// which logged keywords occur in which columns' values); when the log is
/// empty, flat priors with data-driven likelihoods are used.
class IqpRanker {
 public:
  /// Builds term statistics for `table` so queries can be ranked.
  IqpRanker(const relational::Database& db, relational::TableId table,
            const relational::QueryLog& log);

  /// Top-k interpretations of `keywords`, best first.
  std::vector<Interpretation> Rank(const std::vector<std::string>& keywords,
                                   size_t k) const;

  /// Pr[keyword binds to column]: fraction of the keyword's data
  /// occurrences that fall in that column, smoothed.
  double BindingProbability(const std::string& keyword,
                            relational::ColumnId column) const;

 private:
  const relational::Database& db_;
  relational::TableId table_;
  /// Per column: log-derived popularity weight (Pr[T] factor).
  std::vector<double> column_prior_;
};

}  // namespace kws::infer

#endif  // KWDB_CORE_INFER_IQP_H_

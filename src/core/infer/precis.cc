#include "core/infer/precis.h"

#include <algorithm>
#include <deque>

#include "core/infer/correlation.h"

namespace kws::infer {

using relational::ColumnId;
using relational::RowId;
using relational::TableId;

SchemaWeights SchemaWeights::FromParticipation(
    const relational::Database& db) {
  SchemaWeights w;
  for (uint32_t fk = 0; fk < db.foreign_keys().size(); ++fk) {
    w.Set(fk, true, ParticipationRatio(db, fk, true));
    w.Set(fk, false, ParticipationRatio(db, fk, false));
  }
  return w;
}

std::vector<PrecisAttribute> PrecisAnswerSchema(
    const relational::Database& db, TableId focal,
    const SchemaWeights& weights, const PrecisOptions& options) {
  // BFS over the schema graph accumulating multiplied path weights;
  // keep the best weight per reached table.
  struct Reach {
    TableId table;
    double weight;
    std::vector<std::pair<uint32_t, bool>> path;
  };
  std::vector<Reach> reached = {{focal, 1.0, {}}};
  std::deque<Reach> queue = {reached[0]};
  std::unordered_map<TableId, double> best_weight = {{focal, 1.0}};
  while (!queue.empty()) {
    Reach cur = std::move(queue.front());
    queue.pop_front();
    if (cur.path.size() >= options.max_path_edges) continue;
    for (const relational::SchemaEdge& e : db.SchemaNeighbors(cur.table)) {
      const double w = cur.weight * weights.Get(e.fk, e.forward);
      if (w < options.min_weight) continue;
      auto it = best_weight.find(e.other);
      if (it != best_weight.end() && it->second >= w) continue;
      best_weight[e.other] = w;
      Reach next{e.other, w, cur.path};
      next.path.emplace_back(e.fk, e.forward);
      reached.push_back(next);
      queue.push_back(std::move(next));
    }
  }
  // Expand reached tables into attributes (non-key columns).
  std::vector<PrecisAttribute> attrs;
  for (const Reach& r : reached) {
    if (best_weight[r.table] != r.weight) continue;  // dominated path
    const relational::TableSchema& schema = db.table(r.table).schema();
    for (ColumnId c = 0; c < schema.columns.size(); ++c) {
      if (c == schema.primary_key) continue;
      PrecisAttribute a;
      a.table = r.table;
      a.column = c;
      a.path = r.path;
      a.weight = r.weight;
      attrs.push_back(std::move(a));
    }
  }
  std::sort(attrs.begin(), attrs.end(),
            [](const PrecisAttribute& a, const PrecisAttribute& b) {
              if (a.weight != b.weight) return a.weight > b.weight;
              if (a.table != b.table) return a.table < b.table;
              return a.column < b.column;
            });
  if (attrs.size() > options.max_attributes) {
    attrs.resize(options.max_attributes);
  }
  return attrs;
}

std::string ExpandPrecisAnswer(const relational::Database& db, TableId focal,
                               RowId row,
                               const std::vector<PrecisAttribute>& schema) {
  std::string out;
  for (const PrecisAttribute& attr : schema) {
    // Follow the FK path collecting reachable tuples.
    std::vector<relational::TupleId> frontier = {{focal, row}};
    for (const auto& [fk, forward] : attr.path) {
      std::vector<relational::TupleId> next;
      for (const relational::TupleId& t : frontier) {
        for (const relational::TupleId& joined :
             db.JoinedRows(fk, t, forward)) {
          next.push_back(joined);
        }
      }
      frontier = std::move(next);
    }
    if (frontier.empty()) continue;
    if (!out.empty()) out += "; ";
    out += db.table(attr.table).name() + "." +
           db.table(attr.table).schema().columns[attr.column].name + "=";
    for (size_t i = 0; i < frontier.size(); ++i) {
      if (i > 0) out += ",";
      out += db.table(attr.table).cell(frontier[i].row, attr.column)
                 .ToString();
      if (i >= 2 && frontier.size() > 3) {
        out += ",...";
        break;
      }
    }
  }
  return out;
}

}  // namespace kws::infer

#include "core/infer/xpath_gen.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/strings.h"

namespace kws::infer {

using xml::XmlNodeId;
using xml::XmlTree;

std::string XPathQuery::ToString(
    const std::vector<std::string>& keywords) const {
  std::string out = target_path;
  for (size_t i = 0; i < binding_paths.size() && i < keywords.size(); ++i) {
    // Render the binding relative to the target.
    std::string rel = binding_paths[i];
    if (rel.size() > target_path.size() &&
        rel.compare(0, target_path.size(), target_path) == 0) {
      rel = rel.substr(target_path.size() + 1);
    } else if (rel == target_path) {
      rel = ".";
    }
    out += "[" + rel + " ~ '" + keywords[i] + "']";
  }
  return out;
}

namespace {

/// Longest common label-path prefix at segment granularity.
std::string CommonPathPrefix(const std::string& a, const std::string& b) {
  const std::vector<std::string> sa = kws::Split(a, "/");
  const std::vector<std::string> sb = kws::Split(b, "/");
  std::string out;
  for (size_t i = 0; i < std::min(sa.size(), sb.size()); ++i) {
    if (sa[i] != sb[i]) break;
    out += "/" + sa[i];
  }
  return out;
}

/// Ancestor of `n` at depth `d` (d <= depth(n)).
XmlNodeId AncestorAtDepth(const XmlTree& tree, XmlNodeId n, uint32_t d) {
  while (tree.depth(n) > d) n = tree.parent(n);
  return n;
}

struct Binding {
  std::string path;
  double prob = 0;
};

}  // namespace

std::vector<XPathQuery> GenerateXPathQueries(
    const XmlTree& tree, const std::vector<std::string>& keywords,
    const XPathGenOptions& options) {
  std::vector<XPathQuery> out;
  if (keywords.empty()) return out;
  // Instance counts per label path.
  std::map<std::string, size_t> path_count;
  for (XmlNodeId n = 0; n < tree.size(); ++n) {
    ++path_count[tree.LabelPath(n)];
  }
  // Per-keyword bindings: paths of the match nodes themselves, scored by
  // the smoothed containment ratio (the language-model factor).
  std::vector<std::vector<Binding>> bindings(keywords.size());
  for (size_t i = 0; i < keywords.size(); ++i) {
    std::map<std::string, size_t> hits;
    for (XmlNodeId m : tree.MatchNodes(keywords[i])) {
      ++hits[tree.LabelPath(m)];
    }
    for (const auto& [path, f] : hits) {
      const double p = (static_cast<double>(f) + 0.5) /
                       (static_cast<double>(path_count[path]) + 1.0);
      bindings[i].push_back(Binding{path, p});
    }
    std::sort(bindings[i].begin(), bindings[i].end(),
              [](const Binding& a, const Binding& b) {
                if (a.prob != b.prob) return a.prob > b.prob;
                return a.path < b.path;
              });
    if (bindings[i].size() > options.bindings_per_keyword) {
      bindings[i].resize(options.bindings_per_keyword);
    }
    if (bindings[i].empty()) return out;  // unmatched keyword
  }
  // Combine: one binding per keyword, nested under the common ancestor
  // path; joint satisfaction ratio is the structural factor.
  std::set<std::string> seen;
  std::vector<size_t> pick(keywords.size(), 0);
  auto evaluate = [&]() {
    std::string target = bindings[0][pick[0]].path;
    double prob = 1.0;
    for (size_t i = 0; i < keywords.size(); ++i) {
      target = CommonPathPrefix(target, bindings[i][pick[i]].path);
      prob *= bindings[i][pick[i]].prob;
    }
    if (target.empty()) return;
    XPathQuery q;
    q.target_path = target;
    for (size_t i = 0; i < keywords.size(); ++i) {
      q.binding_paths.push_back(bindings[i][pick[i]].path);
    }
    std::string key = target;
    for (const std::string& b : q.binding_paths) key += "|" + b;
    if (!seen.insert(key).second) return;
    // Joint results: target instances containing a binding-path match of
    // every keyword.
    const uint32_t target_depth = static_cast<uint32_t>(
        kws::Split(target, "/").size());
    std::set<XmlNodeId> joint;
    std::vector<size_t> sat(keywords.size(), 0);
    for (size_t i = 0; i < keywords.size(); ++i) {
      std::set<XmlNodeId> instances;
      for (XmlNodeId m : tree.MatchNodes(keywords[i])) {
        if (tree.LabelPath(m) != q.binding_paths[i]) continue;
        instances.insert(AncestorAtDepth(tree, m, target_depth - 1));
      }
      sat[i] = instances.size();
      if (i == 0) {
        joint = std::move(instances);
      } else {
        std::set<XmlNodeId> kept;
        for (XmlNodeId n : joint) {
          if (instances.count(n) > 0) kept.insert(n);
        }
        joint = std::move(kept);
      }
      if (joint.empty()) return;  // discard empty queries
    }
    // Verify the joint instances really are target-path instances.
    for (XmlNodeId n : joint) {
      if (tree.LabelPath(n) == q.target_path) q.results.push_back(n);
    }
    if (q.results.empty()) return;
    // Structural factor: the LIFT of the co-occurrence — how much more
    // often the predicates co-occur under the target than independence
    // predicts (Petkova's information-gain role). A trivial nesting
    // under the root has lift 1; a genuine structural relation (both
    // predicates in ONE paper) has lift >> 1.
    const double total =
        static_cast<double>(path_count[q.target_path]);
    double expected = total;
    for (size_t i = 0; i < keywords.size(); ++i) {
      expected *= static_cast<double>(sat[i]) / total;
    }
    const double lift =
        std::min(static_cast<double>(q.results.size()) /
                     std::max(expected, 1e-9),
                 1e3);
    q.probability = prob * lift;
    out.push_back(std::move(q));
  };
  auto enumerate = [&](auto&& self, size_t i) -> void {
    if (i == keywords.size()) {
      evaluate();
      return;
    }
    for (size_t b = 0; b < bindings[i].size(); ++b) {
      pick[i] = b;
      self(self, i + 1);
    }
  };
  enumerate(enumerate, 0);
  std::sort(out.begin(), out.end(),
            [](const XPathQuery& a, const XPathQuery& b) {
              if (a.probability != b.probability) {
                return a.probability > b.probability;
              }
              return a.target_path < b.target_path;
            });
  if (out.size() > options.k) out.resize(options.k);
  return out;
}

}  // namespace kws::infer

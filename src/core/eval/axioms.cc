#include "core/eval/axioms.h"

#include <algorithm>
#include <set>

namespace kws::eval {

using xml::XmlNodeId;
using xml::XmlTree;

xml::XmlTree AppendLeafCopy(const XmlTree& tree, XmlNodeId parent,
                            const std::string& tag, const std::string& text) {
  XmlTree copy = tree;
  const XmlNodeId leaf = copy.AddElement(parent, tag);
  copy.AppendText(leaf, text);
  copy.BuildKeywordIndex();
  return copy;
}

std::vector<AxiomViolation> CheckQueryAxioms(
    const XmlSearchFn& fn, const XmlTree& tree,
    const std::vector<std::string>& query, const std::string& extra) {
  std::vector<AxiomViolation> out;
  const std::vector<XmlNodeId> before = fn(tree, query);
  std::vector<std::string> extended = query;
  extended.push_back(extra);
  const std::vector<XmlNodeId> after = fn(tree, extended);

  if (after.size() > before.size()) {
    out.push_back(AxiomViolation{
        "query-monotonicity",
        "results grew from " + std::to_string(before.size()) + " to " +
            std::to_string(after.size()) + " after adding '" + extra + "'"});
  }
  const std::set<XmlNodeId> old_set(before.begin(), before.end());
  const std::vector<XmlNodeId>& matches = tree.MatchNodes(extra);
  for (XmlNodeId n : after) {
    if (old_set.count(n) > 0) continue;
    bool contains_extra = false;
    for (XmlNodeId m : matches) {
      if (m >= n && m <= tree.SubtreeEnd(n)) {
        contains_extra = true;
        break;
      }
    }
    if (!contains_extra) {
      out.push_back(AxiomViolation{
          "query-consistency",
          "new result " + tree.LabelPath(n) + " (#" + std::to_string(n) +
              ") does not contain '" + extra + "'"});
    }
  }
  return out;
}

std::vector<AxiomViolation> CheckDataAxioms(
    const XmlSearchFn& fn, const XmlTree& tree, XmlNodeId parent,
    const std::string& tag, const std::string& text,
    const std::vector<std::string>& query) {
  std::vector<AxiomViolation> out;
  const XmlTree extended = AppendLeafCopy(tree, parent, tag, text);
  const XmlNodeId new_node = static_cast<XmlNodeId>(extended.size() - 1);
  const std::vector<XmlNodeId> before = fn(tree, query);
  const std::vector<XmlNodeId> after = fn(extended, query);

  if (after.size() < before.size()) {
    out.push_back(AxiomViolation{
        "data-monotonicity",
        "results shrank from " + std::to_string(before.size()) + " to " +
            std::to_string(after.size()) + " after adding a node"});
  }
  const std::set<XmlNodeId> old_set(before.begin(), before.end());
  for (XmlNodeId n : after) {
    if (old_set.count(n) > 0) continue;
    if (!extended.IsAncestorOrSelf(n, new_node)) {
      out.push_back(AxiomViolation{
          "data-consistency",
          "new result " + extended.LabelPath(n) + " (#" + std::to_string(n) +
              ") does not contain the added node"});
    }
  }
  return out;
}

}  // namespace kws::eval

#ifndef KWDB_CORE_EVAL_METRICS_H_
#define KWDB_CORE_EVAL_METRICS_H_

#include <vector>

#include "xml/tree.h"

namespace kws::eval {

/// Precision / recall / F-measure triple.
struct Prf {
  double precision = 0;
  double recall = 0;
  double f = 0;
};

/// INEX-style score of ONE result subtree against highlighted ground
/// truth (tutorial slide 105), at node granularity: precision = fraction
/// of the result subtree's nodes that are relevant, recall = fraction of
/// the relevant nodes the subtree retrieves.
Prf ScoreResult(const xml::XmlTree& tree, xml::XmlNodeId result_root,
                const std::vector<xml::XmlNodeId>& relevant);

/// Generalized precision at rank k: mean of the first k per-result
/// F-scores (slide 106). `scores` are per-result F-measures in rank
/// order; k is clamped to the list size; 0 for an empty list.
double GeneralizedPrecision(const std::vector<double>& scores, size_t k);

/// Average generalized precision: mean of gP(k) over every rank k.
double AverageGeneralizedPrecision(const std::vector<double>& scores);

/// INEX's tolerance-to-irrelevance reading model (slide 105: "the user
/// stops reading after too many consecutive non-relevant fragments"):
/// walks the ranked list, stops after `tolerance` consecutive zero
/// scores, and returns the mean score of what was read (0 for an empty
/// list).
double ToleranceToIrrelevance(const std::vector<double>& scores,
                              size_t tolerance);

/// Set-based precision/recall/F for flat result lists (used by the E14
/// harness for ranking comparisons).
Prf SetPrf(const std::vector<xml::XmlNodeId>& retrieved,
           const std::vector<xml::XmlNodeId>& relevant);

}  // namespace kws::eval

#endif  // KWDB_CORE_EVAL_METRICS_H_

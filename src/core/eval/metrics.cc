#include "core/eval/metrics.h"

#include <algorithm>
#include <set>

namespace kws::eval {

Prf ScoreResult(const xml::XmlTree& tree, xml::XmlNodeId result_root,
                const std::vector<xml::XmlNodeId>& relevant) {
  Prf out;
  const xml::XmlNodeId end = tree.SubtreeEnd(result_root);
  const size_t result_size = end - result_root + 1;
  if (relevant.empty() || result_size == 0) return out;
  size_t hits = 0;
  for (xml::XmlNodeId r : relevant) {
    hits += (r >= result_root && r <= end);
  }
  out.precision = static_cast<double>(hits) / static_cast<double>(result_size);
  out.recall = static_cast<double>(hits) / static_cast<double>(relevant.size());
  if (out.precision + out.recall > 0) {
    out.f = 2 * out.precision * out.recall / (out.precision + out.recall);
  }
  return out;
}

double GeneralizedPrecision(const std::vector<double>& scores, size_t k) {
  if (scores.empty() || k == 0) return 0;
  k = std::min(k, scores.size());
  double sum = 0;
  for (size_t i = 0; i < k; ++i) sum += scores[i];
  return sum / static_cast<double>(k);
}

double AverageGeneralizedPrecision(const std::vector<double>& scores) {
  if (scores.empty()) return 0;
  double sum = 0;
  for (size_t k = 1; k <= scores.size(); ++k) {
    sum += GeneralizedPrecision(scores, k);
  }
  return sum / static_cast<double>(scores.size());
}

double ToleranceToIrrelevance(const std::vector<double>& scores,
                              size_t tolerance) {
  if (scores.empty()) return 0;
  double sum = 0;
  size_t read = 0;
  size_t consecutive_zero = 0;
  for (double s : scores) {
    ++read;
    sum += s;
    consecutive_zero = (s <= 0) ? consecutive_zero + 1 : 0;
    if (consecutive_zero > tolerance) break;
  }
  return sum / static_cast<double>(read);
}

Prf SetPrf(const std::vector<xml::XmlNodeId>& retrieved,
           const std::vector<xml::XmlNodeId>& relevant) {
  Prf out;
  if (retrieved.empty() || relevant.empty()) return out;
  std::set<xml::XmlNodeId> rel(relevant.begin(), relevant.end());
  size_t hits = 0;
  for (xml::XmlNodeId r : retrieved) hits += rel.count(r);
  out.precision = static_cast<double>(hits) / retrieved.size();
  out.recall = static_cast<double>(hits) / rel.size();
  if (out.precision + out.recall > 0) {
    out.f = 2 * out.precision * out.recall / (out.precision + out.recall);
  }
  return out;
}

}  // namespace kws::eval

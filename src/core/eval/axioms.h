#ifndef KWDB_CORE_EVAL_AXIOMS_H_
#define KWDB_CORE_EVAL_AXIOMS_H_

#include <functional>
#include <string>
#include <vector>

#include "xml/tree.h"

namespace kws::eval {

/// A pluggable XML keyword search engine: query keywords in, result
/// subtree roots out.
using XmlSearchFn = std::function<std::vector<xml::XmlNodeId>(
    const xml::XmlTree&, const std::vector<std::string>&)>;

/// One detected axiom violation.
struct AxiomViolation {
  std::string axiom;
  std::string detail;
};

/// The four axioms of Liu et al. (VLDB 08; tutorial slides 108-109),
/// AND semantics assumed:
///  - query monotonicity: adding a keyword must not increase the number
///    of results;
///  - query consistency: every NEW result after adding a keyword must
///    contain that keyword;
///  - data monotonicity: adding a node matching a query keyword must not
///    decrease the number of results;
///  - data consistency: every NEW result after adding a node must contain
///    the new node.

/// Checks the query axioms by comparing fn(tree, q) with
/// fn(tree, q + extra).
std::vector<AxiomViolation> CheckQueryAxioms(
    const XmlSearchFn& fn, const xml::XmlTree& tree,
    const std::vector<std::string>& query, const std::string& extra);

/// Checks the data axioms: builds a copy of `tree` with one extra leaf
/// (tag `tag`, text `text`) appended under `parent`, which must lie on
/// the rightmost root path so existing node ids keep their document
/// order, then compares fn on the two documents.
std::vector<AxiomViolation> CheckDataAxioms(
    const XmlSearchFn& fn, const xml::XmlTree& tree, xml::XmlNodeId parent,
    const std::string& tag, const std::string& text,
    const std::vector<std::string>& query);

/// Returns a copy of `tree` with the extra leaf appended (exposed for
/// tests). `parent` must be on the rightmost root path.
xml::XmlTree AppendLeafCopy(const xml::XmlTree& tree, xml::XmlNodeId parent,
                            const std::string& tag, const std::string& text);

}  // namespace kws::eval

#endif  // KWDB_CORE_EVAL_AXIOMS_H_

#include "core/steiner/answer_tree.h"

#include <algorithm>
#include <set>
#include <unordered_map>
#include <unordered_set>

namespace kws::steiner {

std::string AnswerTree::ToString(const graph::DataGraph& g) const {
  std::string out = g.label(root) + " -> {";
  for (size_t i = 0; i < keyword_nodes.size(); ++i) {
    if (i > 0) out += ", ";
    out += g.label(keyword_nodes[i]);
  }
  out += "} (cost " + std::to_string(cost) + ")";
  return out;
}

std::vector<graph::NodeId> AnswerTree::Core() const {
  std::vector<graph::NodeId> core = keyword_nodes;
  std::sort(core.begin(), core.end());
  core.erase(std::unique(core.begin(), core.end()), core.end());
  return core;
}

bool IsWellFormed(const AnswerTree& tree, const graph::DataGraph& g) {
  if (tree.nodes.empty()) return false;
  std::unordered_set<graph::NodeId> node_set(tree.nodes.begin(),
                                             tree.nodes.end());
  if (node_set.size() != tree.nodes.size()) return false;  // duplicates
  if (node_set.count(tree.root) == 0) return false;
  if (tree.edges.size() + 1 != tree.nodes.size()) return false;  // tree shape
  for (const auto& [u, v] : tree.edges) {
    if (node_set.count(u) == 0 || node_set.count(v) == 0) return false;
    // The edge must exist in the graph (u -> v).
    bool exists = false;
    for (const graph::Edge& e : g.Out(u)) exists |= (e.to == v);
    if (!exists) return false;
  }
  // Every non-root node has exactly one parent; the root none.
  std::unordered_map<graph::NodeId, size_t> parents;
  for (const auto& [u, v] : tree.edges) ++parents[v];
  for (graph::NodeId n : tree.nodes) {
    const size_t p = parents.count(n) ? parents[n] : 0;
    if (n == tree.root ? p != 0 : p != 1) return false;
  }
  for (graph::NodeId k : tree.keyword_nodes) {
    if (node_set.count(k) == 0) return false;
  }
  // Connectivity: every node reachable from the root along tree edges
  // (parent counts alone admit cycles off to the side).
  std::unordered_map<graph::NodeId, std::vector<graph::NodeId>> children;
  for (const auto& [u, v] : tree.edges) children[u].push_back(v);
  std::unordered_set<graph::NodeId> reached = {tree.root};
  std::vector<graph::NodeId> stack = {tree.root};
  while (!stack.empty()) {
    const graph::NodeId u = stack.back();
    stack.pop_back();
    for (graph::NodeId v : children[u]) {
      if (reached.insert(v).second) stack.push_back(v);
    }
  }
  return reached.size() == tree.nodes.size();
}

}  // namespace kws::steiner

#ifndef KWDB_CORE_STEINER_BANKS_H_
#define KWDB_CORE_STEINER_BANKS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/steiner/answer_tree.h"
#include "graph/data_graph.h"

namespace kws::steiner {

/// Options for the BANKS family of backward expanding searches
/// (Bhalotia et al. ICDE 02; Kacholia et al. VLDB 05; tutorial
/// slide 114). Answers follow the distinct-root cost model: a tree rooted
/// at r with cost = sum over keywords of the shortest directed r->match
/// path length.
struct BanksOptions {
  size_t k = 10;
  /// kBidirectional: keyword groups with more than `frequent_threshold`
  /// matches are NOT expanded backward; candidate roots found by the rare
  /// groups probe them with bounded *forward* search instead — BANKS II's
  /// remedy for frontier explosion on frequent keywords.
  bool bidirectional = false;
  size_t frequent_threshold = 1000;
  /// Safety cap on total priority-queue pops.
  uint64_t max_pops = 50'000'000;
};

/// Instrumentation for the E4 benchmark.
struct BanksStats {
  uint64_t pops = 0;            // backward PQ pops
  uint64_t edges_relaxed = 0;
  uint64_t forward_probes = 0;  // bidirectional-only forward Dijkstras
  uint64_t candidates = 0;      // completed candidate roots
};

/// Backward expanding keyword search. `keywords` are normalized tokens
/// looked up in the graph's keyword index. Results sorted by ascending
/// cost; provably the true top-k under the distinct-root cost model
/// (unless the pop cap is hit).
std::vector<AnswerTree> BanksSearch(const graph::DataGraph& g,
                                    const std::vector<std::string>& keywords,
                                    const BanksOptions& options = {},
                                    BanksStats* stats = nullptr);

}  // namespace kws::steiner

#endif  // KWDB_CORE_STEINER_BANKS_H_

#include "core/steiner/semantics.h"

#include <algorithm>
#include <set>

namespace kws::steiner {

namespace {

using graph::DataGraph;
using graph::Edge;
using graph::kInfDist;
using graph::KeywordDistanceIndex;
using graph::NodeId;

/// Walks the shortest root->match path for `term` by greedy descent on the
/// index distances (at every step some out-edge satisfies
/// w + dist(v) == dist(u) by Dijkstra optimality).
std::vector<NodeId> DescendPath(const DataGraph& g,
                                const KeywordDistanceIndex& index,
                                NodeId root, const std::string& term) {
  std::vector<NodeId> path = {root};
  NodeId cur = root;
  double d = index.Distance(cur, term);
  constexpr double kEps = 1e-9;
  while (d > kEps) {
    bool advanced = false;
    for (const Edge& e : g.Out(cur)) {
      const double dv = index.Distance(e.to, term);
      if (dv != kInfDist && e.weight + dv <= d + kEps) {
        cur = e.to;
        d = dv;
        path.push_back(cur);
        advanced = true;
        break;
      }
    }
    if (!advanced) break;  // defensive: inconsistent index
  }
  return path;
}

/// Union of per-keyword root paths as a well-formed tree.
AnswerTree BuildTree(const DataGraph& g, const KeywordDistanceIndex& index,
                     const std::vector<std::string>& keywords, NodeId root,
                     double cost) {
  AnswerTree tree;
  tree.root = root;
  tree.cost = cost;
  std::set<NodeId> nodes = {root};
  std::set<NodeId> parented;
  for (const std::string& term : keywords) {
    const std::vector<NodeId> path = DescendPath(g, index, root, term);
    for (size_t i = 0; i + 1 < path.size(); ++i) {
      nodes.insert(path[i]);
      nodes.insert(path[i + 1]);
      if (path[i + 1] != root && parented.insert(path[i + 1]).second) {
        tree.edges.emplace_back(path[i], path[i + 1]);
      }
    }
    nodes.insert(path.back());
    tree.keyword_nodes.push_back(path.back());
  }
  tree.nodes.assign(nodes.begin(), nodes.end());
  return tree;
}

void IndexAll(KeywordDistanceIndex& index,
              const std::vector<std::string>& keywords) {
  for (const std::string& k : keywords) index.IndexTerm(k);
}

}  // namespace

std::vector<AnswerTree> DistinctRootSearch(
    const DataGraph& g, KeywordDistanceIndex& index,
    const std::vector<std::string>& keywords, size_t k) {
  std::vector<AnswerTree> out;
  if (keywords.empty()) return out;
  IndexAll(index, keywords);
  auto roots = index.CandidateRoots(keywords);
  for (const auto& [root, cost] : roots) {
    if (out.size() >= k) break;
    out.push_back(BuildTree(g, index, keywords, root, cost));
  }
  return out;
}

std::vector<AnswerTree> DistinctCoreSearch(
    const DataGraph& g, KeywordDistanceIndex& index,
    const std::vector<std::string>& keywords, size_t k) {
  std::vector<AnswerTree> out;
  if (keywords.empty()) return out;
  IndexAll(index, keywords);
  std::set<std::vector<NodeId>> seen_cores;
  for (const auto& [root, cost] : index.CandidateRoots(keywords)) {
    if (out.size() >= k) break;
    AnswerTree tree = BuildTree(g, index, keywords, root, cost);
    if (seen_cores.insert(tree.Core()).second) {
      out.push_back(std::move(tree));
    }
  }
  return out;
}

std::vector<AnswerTree> RRadiusSteinerSearch(
    const DataGraph& g, KeywordDistanceIndex& index,
    const std::vector<std::string>& keywords, double radius, size_t k) {
  std::vector<AnswerTree> out;
  if (keywords.empty()) return out;
  IndexAll(index, keywords);
  std::set<std::vector<NodeId>> seen_cores;
  for (const auto& [root, cost] : index.CandidateRoots(keywords)) {
    if (out.size() >= k) break;
    // Radius condition: every keyword within `radius` of the center.
    bool ok = true;
    for (const std::string& term : keywords) {
      if (index.Distance(root, term) > radius) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    AnswerTree tree = BuildTree(g, index, keywords, root, cost);
    if (seen_cores.insert(tree.Core()).second) {
      out.push_back(std::move(tree));
    }
  }
  return out;
}

}  // namespace kws::steiner

#ifndef KWDB_CORE_STEINER_STEINER_DP_H_
#define KWDB_CORE_STEINER_STEINER_DP_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/steiner/answer_tree.h"
#include "graph/data_graph.h"

namespace kws::steiner {

/// Exact top-1 group Steiner tree by dynamic programming over terminal
/// subsets (Dreyfus-Wagner / [Ding et al., ICDE 07]; tutorial slides 30 and
/// 113): dp[S][v] = cheapest tree rooted at v spanning one node of each
/// group in S; grow transitions alternate subset merges at v with Dijkstra
/// relaxations along the graph's edges.
///
/// Exponential in the number of groups (tractable for the <= 6 keywords
/// real queries have), O(3^K V + 2^K E log V) time, O(2^K V) space.
///
/// `groups[i]` is the set of nodes matching keyword i; all must be
/// non-empty. Returns NotFound when no connected tree covers all groups.
Result<AnswerTree> GroupSteinerTop1(
    const graph::DataGraph& g,
    const std::vector<std::vector<graph::NodeId>>& groups);

/// Convenience overload: groups looked up from the graph's keyword index.
Result<AnswerTree> GroupSteinerTop1(const graph::DataGraph& g,
                                    const std::vector<std::string>& keywords);

/// Top-k min-cost connected trees under distinct-root semantics
/// (Ding et al., ICDE 07; tutorial slide 113): the same DP table yields,
/// for EVERY root v, the cheapest tree rooted at v covering all groups;
/// the k cheapest roots are returned with their (per-root optimal) trees,
/// ascending cost. results[0] equals GroupSteinerTop1's answer.
std::vector<AnswerTree> GroupSteinerTopK(
    const graph::DataGraph& g,
    const std::vector<std::vector<graph::NodeId>>& groups, size_t k);

/// Convenience overload resolving keywords through the keyword index.
std::vector<AnswerTree> GroupSteinerTopK(
    const graph::DataGraph& g, const std::vector<std::string>& keywords,
    size_t k);

}  // namespace kws::steiner

#endif  // KWDB_CORE_STEINER_STEINER_DP_H_

#include "core/steiner/banks.h"

#include <algorithm>
#include <queue>
#include <set>
#include <unordered_map>

namespace kws::steiner {

namespace {

using graph::DataGraph;
using graph::Edge;
using graph::kInfDist;
using graph::NodeId;

/// Forward Dijkstra from `root` that stops once one node of every target
/// group has been settled. Returns per-group (distance, path root..match);
/// distance kInfDist when unreachable.
struct ForwardHit {
  double dist = kInfDist;
  std::vector<NodeId> path;
};

std::vector<ForwardHit> ForwardProbe(
    const DataGraph& g, NodeId root, size_t num_groups,
    const std::unordered_map<NodeId, uint32_t>& member, double max_dist,
    BanksStats* stats) {
  std::vector<ForwardHit> hits(num_groups);
  if (num_groups == 0) return hits;
  std::unordered_map<NodeId, double> dist;
  std::unordered_map<NodeId, NodeId> parent;
  using Item = std::pair<double, NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<Item>> pq;
  dist[root] = 0;
  pq.push({0, root});
  uint32_t remaining = (1u << num_groups) - 1;
  while (!pq.empty() && remaining != 0) {
    auto [d, u] = pq.top();
    pq.pop();
    auto it = dist.find(u);
    if (it != dist.end() && d > it->second) continue;
    auto mit = member.find(u);
    if (mit != member.end() && (mit->second & remaining) != 0) {
      // Settle every not-yet-hit group u matches.
      std::vector<NodeId> path = {u};
      NodeId cur = u;
      while (cur != root) {
        cur = parent.at(cur);
        path.push_back(cur);
      }
      std::reverse(path.begin(), path.end());
      for (size_t i = 0; i < num_groups; ++i) {
        if ((mit->second & remaining & (1u << i)) != 0) {
          hits[i].dist = d;
          hits[i].path = path;
        }
      }
      remaining &= ~mit->second;
    }
    for (const Edge& e : g.Out(u)) {
      const double nd = d + e.weight;
      if (nd > max_dist) continue;  // beyond the top-k budget
      auto [vit, inserted] = dist.emplace(e.to, nd);
      if (!inserted) {
        if (nd >= vit->second) continue;
        vit->second = nd;
      }
      parent[e.to] = u;
      pq.push({nd, e.to});
    }
  }
  if (stats != nullptr) ++stats->forward_probes;
  return hits;
}

}  // namespace

std::vector<AnswerTree> BanksSearch(const DataGraph& g,
                                    const std::vector<std::string>& keywords,
                                    const BanksOptions& options,
                                    BanksStats* stats) {
  const size_t nk = keywords.size();
  std::vector<const std::vector<NodeId>*> groups;
  for (const std::string& k : keywords) {
    groups.push_back(&g.MatchNodes(k));
    if (groups.back()->empty()) return {};
  }
  if (nk == 0) return {};

  // Split groups into backward-expanded and forward-probed (BANKS II).
  std::vector<size_t> backward_ids, forward_ids;
  for (size_t i = 0; i < nk; ++i) {
    if (options.bidirectional &&
        groups[i]->size() > options.frequent_threshold) {
      forward_ids.push_back(i);
    } else {
      backward_ids.push_back(i);
    }
  }
  if (backward_ids.empty()) {
    // Everything frequent: still expand the smallest group backward.
    size_t smallest = 0;
    for (size_t i = 1; i < nk; ++i) {
      if (groups[i]->size() < groups[smallest]->size()) smallest = i;
    }
    backward_ids.push_back(smallest);
    forward_ids.erase(
        std::find(forward_ids.begin(), forward_ids.end(), smallest));
  }

  const size_t n = g.num_nodes();
  const size_t nb = backward_ids.size();
  std::vector<std::vector<double>> dist(nb, std::vector<double>(n, kInfDist));
  std::vector<std::vector<NodeId>> next_hop(
      nb, std::vector<NodeId>(n, graph::NodeId(0)));
  std::vector<std::vector<NodeId>> origin(
      nb, std::vector<NodeId>(n, graph::NodeId(0)));
  // Bit b set when node is *settled* (popped with final distance) for
  // backward group b; completion fires only on fully-settled nodes so the
  // candidate cost uses final Dijkstra distances.
  std::vector<uint32_t> settled(n, 0);
  const uint32_t all_settled = nb >= 32 ? ~0u : ((1u << nb) - 1);
  std::vector<bool> done(n, false);
  // Forward-probe membership (node -> bitmask of frequent groups), built
  // once per search: probes happen per candidate root.
  std::unordered_map<NodeId, uint32_t> forward_member;
  for (size_t f = 0; f < forward_ids.size(); ++f) {
    for (NodeId m : *groups[forward_ids[f]]) {
      forward_member[m] |= (1u << f);
    }
  }

  struct Item {
    double dist;
    uint32_t group;  // index into backward_ids
    NodeId node;
    bool operator>(const Item& o) const { return dist > o.dist; }
  };
  std::priority_queue<Item, std::vector<Item>, std::greater<Item>> pq;
  for (size_t b = 0; b < nb; ++b) {
    for (NodeId m : *groups[backward_ids[b]]) {
      if (dist[b][m] != kInfDist) continue;  // duplicate match
      dist[b][m] = 0;
      next_hop[b][m] = m;
      origin[b][m] = m;
      pq.push(Item{0, static_cast<uint32_t>(b), m});
    }
  }

  // Candidate collection: trees by cost, k smallest kept.
  struct Candidate {
    double cost;
    AnswerTree tree;
  };
  std::vector<Candidate> kept;
  auto kth_cost = [&]() {
    return kept.size() < options.k ? kInfDist : kept.back().cost;
  };
  auto keep = [&](Candidate c) {
    auto pos = std::lower_bound(
        kept.begin(), kept.end(), c.cost,
        [](const Candidate& a, double cost) { return a.cost < cost; });
    kept.insert(pos, std::move(c));
    if (kept.size() > options.k) kept.pop_back();
  };

  auto try_complete = [&](NodeId u) {
    if (done[u] || settled[u] != all_settled) return;
    done[u] = true;
    if (stats != nullptr) ++stats->candidates;
    double cost = 0;
    for (size_t b = 0; b < nb; ++b) cost += dist[b][u];
    if (cost >= kth_cost()) {
      // Backward part alone already loses (forward adds >= 0)...
      // unless we still need forward hits to even know feasibility; a
      // losing candidate can be dropped either way.
      return;
    }
    // Resolve frequent groups by forward probing. The probe only needs
    // matches within the remaining top-k budget: anything farther cannot
    // beat the current k-th answer.
    const double budget = kth_cost() == kInfDist ? kInfDist : kth_cost() - cost;
    std::vector<ForwardHit> hits = ForwardProbe(g, u, forward_ids.size(),
                                                forward_member, budget, stats);
    for (const ForwardHit& h : hits) {
      if (h.dist == kInfDist) return;  // not an answer root
      cost += h.dist;
    }
    if (cost >= kth_cost()) return;

    // Assemble the tree: union of root->keyword paths.
    Candidate cand;
    cand.cost = cost;
    AnswerTree& tree = cand.tree;
    tree.root = u;
    tree.cost = cost;
    tree.keyword_nodes.assign(nk, u);
    std::set<NodeId> nodes = {u};
    std::set<NodeId> parented;
    auto add_edge = [&](NodeId a, NodeId b) {
      nodes.insert(a);
      nodes.insert(b);
      if (b != u && parented.insert(b).second) tree.edges.emplace_back(a, b);
    };
    for (size_t b = 0; b < nb; ++b) {
      NodeId cur = u;
      while (cur != origin[b][cur]) {
        // next_hop points one step along the directed root->match path.
        const NodeId nxt = next_hop[b][cur];
        add_edge(cur, nxt);
        cur = nxt;
      }
      nodes.insert(cur);
      tree.keyword_nodes[backward_ids[b]] = origin[b][u];
    }
    for (size_t f = 0; f < forward_ids.size(); ++f) {
      const std::vector<NodeId>& path = hits[f].path;
      for (size_t i = 0; i + 1 < path.size(); ++i) {
        add_edge(path[i], path[i + 1]);
      }
      if (!path.empty()) nodes.insert(path.back());
      tree.keyword_nodes[forward_ids[f]] =
          path.empty() ? u : path.back();
    }
    tree.nodes.assign(nodes.begin(), nodes.end());
    keep(std::move(cand));
  };

  uint64_t pops = 0;
  while (!pq.empty()) {
    Item item = pq.top();
    pq.pop();
    if (++pops > options.max_pops) break;
    if (stats != nullptr) ++stats->pops;
    const size_t b = item.group;
    if (item.dist > dist[b][item.node]) continue;  // stale entry
    if ((settled[item.node] & (1u << b)) != 0) continue;
    settled[item.node] |= (1u << b);
    // Sound termination: any future candidate completes on a pop with
    // dist >= item.dist, and its total cost >= that dist.
    if (kept.size() >= options.k && item.dist > kth_cost()) break;
    try_complete(item.node);
    // Relax backwards: an in-edge u -> node means a root at u can reach
    // the keyword through node.
    for (const Edge& e : g.In(item.node)) {
      if (stats != nullptr) ++stats->edges_relaxed;
      const NodeId u = e.to;
      const double nd = item.dist + e.weight;
      if (nd < dist[b][u]) {
        dist[b][u] = nd;
        next_hop[b][u] = item.node;
        origin[b][u] = origin[b][item.node];
        pq.push(Item{nd, static_cast<uint32_t>(b), u});
      }
    }
  }

  std::vector<AnswerTree> out;
  out.reserve(kept.size());
  for (Candidate& c : kept) out.push_back(std::move(c.tree));
  return out;
}

}  // namespace kws::steiner

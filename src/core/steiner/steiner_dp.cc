#include "core/steiner/steiner_dp.h"

#include <algorithm>
#include <queue>
#include <set>


namespace kws::steiner {

namespace {

/// How dp[mask][v] was obtained, for tree reconstruction.
struct Choice {
  enum Kind : uint8_t { kNone, kLeaf, kEdge, kMerge } kind = kNone;
  /// kEdge: the child node the root attaches to. kMerge: unused.
  graph::NodeId via = 0;
  /// kMerge: one side of the split (the other is mask ^ submask).
  uint32_t submask = 0;
};

/// The full Dreyfus-Wagner table: dp[mask][v] plus the choice trace.
struct DpTables {
  std::vector<std::vector<double>> dp;
  std::vector<std::vector<Choice>> choice;
  uint32_t full = 0;
};

/// Builds the DP (see the header for the recurrence and complexity).
DpTables BuildDp(const graph::DataGraph& g,
                 const std::vector<std::vector<graph::NodeId>>& groups) {
  const size_t num_groups = groups.size();
  const size_t n = g.num_nodes();
  DpTables t;
  t.full = (1u << num_groups) - 1;
  t.dp.assign(t.full + 1, std::vector<double>(n, graph::kInfDist));
  t.choice.assign(t.full + 1, std::vector<Choice>(n));

  for (size_t i = 0; i < num_groups; ++i) {
    for (graph::NodeId v : groups[i]) {
      t.dp[1u << i][v] = 0;
      t.choice[1u << i][v].kind = Choice::kLeaf;
    }
  }

  using Item = std::pair<double, graph::NodeId>;
  for (uint32_t mask = 1; mask <= t.full; ++mask) {
    // Merge two disjoint covered subsets at the same root.
    for (uint32_t s = (mask - 1) & mask; s != 0; s = (s - 1) & mask) {
      const uint32_t other = mask ^ s;
      if (s > other) continue;  // each split once
      for (graph::NodeId v = 0; v < n; ++v) {
        if (t.dp[s][v] == graph::kInfDist ||
            t.dp[other][v] == graph::kInfDist) {
          continue;
        }
        const double c = t.dp[s][v] + t.dp[other][v];
        if (c < t.dp[mask][v]) {
          t.dp[mask][v] = c;
          t.choice[mask][v] = Choice{Choice::kMerge, 0, s};
        }
      }
    }
    // Grow along edges: a new root u attaches to child v via edge u -> v.
    std::priority_queue<Item, std::vector<Item>, std::greater<Item>> pq;
    for (graph::NodeId v = 0; v < n; ++v) {
      if (t.dp[mask][v] != graph::kInfDist) pq.push({t.dp[mask][v], v});
    }
    while (!pq.empty()) {
      auto [d, v] = pq.top();
      pq.pop();
      if (d > t.dp[mask][v]) continue;
      for (const graph::Edge& e : g.In(v)) {
        const graph::NodeId u = e.to;
        const double c = d + e.weight;
        if (c < t.dp[mask][u]) {
          t.dp[mask][u] = c;
          t.choice[mask][u] = Choice{Choice::kEdge, v, 0};
          pq.push({c, u});
        }
      }
    }
  }
  return t;
}

/// Reconstructs the optimal tree rooted at `root` from the DP trace.
AnswerTree Reconstruct(const DpTables& t,
                       const std::vector<std::vector<graph::NodeId>>& groups,
                       graph::NodeId root) {
  const size_t num_groups = groups.size();
  AnswerTree tree;
  tree.root = root;
  tree.cost = t.dp[t.full][root];
  tree.keyword_nodes.assign(num_groups, root);
  std::set<graph::NodeId> nodes;
  std::set<std::pair<graph::NodeId, graph::NodeId>> edges;
  // Equal-cost DP ties can route two branches through the same node; keep
  // the first parent so the union stays a tree.
  std::set<graph::NodeId> parented;
  auto emit = [&](auto&& self, uint32_t mask, graph::NodeId v) -> void {
    nodes.insert(v);
    const Choice& c = t.choice[mask][v];
    switch (c.kind) {
      case Choice::kLeaf: {
        for (size_t i = 0; i < num_groups; ++i) {
          if (mask == (1u << i)) tree.keyword_nodes[i] = v;
        }
        return;
      }
      case Choice::kEdge: {
        if (c.via != root && parented.insert(c.via).second) {
          edges.emplace(v, c.via);
        }
        self(self, mask, c.via);
        return;
      }
      case Choice::kMerge: {
        self(self, c.submask, v);
        self(self, mask ^ c.submask, v);
        return;
      }
      case Choice::kNone:
        return;
    }
  };
  emit(emit, t.full, root);
  tree.nodes.assign(nodes.begin(), nodes.end());
  tree.edges.assign(edges.begin(), edges.end());
  return tree;
}

Status ValidateGroups(
    const std::vector<std::vector<graph::NodeId>>& groups) {
  if (groups.empty()) {
    return Status::InvalidArgument("no keyword groups");
  }
  if (groups.size() > 10) {
    return Status::InvalidArgument("too many groups for exact DP");
  }
  for (const auto& group : groups) {
    if (group.empty()) {
      return Status::NotFound("a keyword matches no node");
    }
  }
  return Status::OK();
}

std::vector<std::vector<graph::NodeId>> LookupGroups(
    const graph::DataGraph& g, const std::vector<std::string>& keywords) {
  std::vector<std::vector<graph::NodeId>> groups;
  for (const std::string& k : keywords) {
    groups.push_back(g.MatchNodes(k));
  }
  return groups;
}

}  // namespace

Result<AnswerTree> GroupSteinerTop1(
    const graph::DataGraph& g,
    const std::vector<std::vector<graph::NodeId>>& groups) {
  KWS_RETURN_IF_ERROR(ValidateGroups(groups));
  const DpTables t = BuildDp(g, groups);
  graph::NodeId best = 0;
  double best_cost = graph::kInfDist;
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    if (t.dp[t.full][v] < best_cost) {
      best_cost = t.dp[t.full][v];
      best = v;
    }
  }
  if (best_cost == graph::kInfDist) {
    return Status::NotFound("keywords are not connected in the graph");
  }
  return Reconstruct(t, groups, best);
}

Result<AnswerTree> GroupSteinerTop1(
    const graph::DataGraph& g, const std::vector<std::string>& keywords) {
  return GroupSteinerTop1(g, LookupGroups(g, keywords));
}

std::vector<AnswerTree> GroupSteinerTopK(
    const graph::DataGraph& g,
    const std::vector<std::vector<graph::NodeId>>& groups, size_t k) {
  if (!ValidateGroups(groups).ok() || k == 0) return {};
  const DpTables t = BuildDp(g, groups);
  // The k cheapest roots.
  std::vector<std::pair<double, graph::NodeId>> roots;
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    if (t.dp[t.full][v] != graph::kInfDist) {
      roots.emplace_back(t.dp[t.full][v], v);
    }
  }
  std::sort(roots.begin(), roots.end());
  if (roots.size() > k) roots.resize(k);
  std::vector<AnswerTree> out;
  out.reserve(roots.size());
  for (const auto& [cost, root] : roots) {
    out.push_back(Reconstruct(t, groups, root));
  }
  return out;
}

std::vector<AnswerTree> GroupSteinerTopK(
    const graph::DataGraph& g, const std::vector<std::string>& keywords,
    size_t k) {
  return GroupSteinerTopK(g, LookupGroups(g, keywords), k);
}

}  // namespace kws::steiner

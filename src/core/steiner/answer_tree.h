#ifndef KWDB_CORE_STEINER_ANSWER_TREE_H_
#define KWDB_CORE_STEINER_ANSWER_TREE_H_

#include <string>
#include <utility>
#include <vector>

#include "graph/data_graph.h"

namespace kws::steiner {

/// One graph-search answer: a connected subtree of the data graph whose
/// leaves cover the query keywords (tutorial slides 29-31). Lower cost is
/// better; `score()` maps cost to a descending-is-better scale.
struct AnswerTree {
  graph::NodeId root = 0;
  /// All tree nodes (root included), no duplicates.
  std::vector<graph::NodeId> nodes;
  /// Tree edges as (parent, child) pairs, directed away from the root.
  std::vector<std::pair<graph::NodeId, graph::NodeId>> edges;
  /// The keyword match node chosen for each query keyword, by position.
  std::vector<graph::NodeId> keyword_nodes;
  double cost = 0;

  double score() const { return 1.0 / (1.0 + cost); }

  /// "root -> {a, b, c} (cost 3.0)" rendering with node labels.
  std::string ToString(const graph::DataGraph& g) const;

  /// Sorted deduplicated keyword_nodes — the "core" used by the
  /// distinct-core semantics.
  std::vector<graph::NodeId> Core() const;
};

/// Validates structural invariants (connected, acyclic, keyword nodes
/// inside the tree). Used by tests and the axiomatic checker.
bool IsWellFormed(const AnswerTree& tree, const graph::DataGraph& g);

}  // namespace kws::steiner

#endif  // KWDB_CORE_STEINER_ANSWER_TREE_H_

#ifndef KWDB_CORE_STEINER_SEMANTICS_H_
#define KWDB_CORE_STEINER_SEMANTICS_H_

#include <string>
#include <vector>

#include "core/steiner/answer_tree.h"
#include "graph/blinks_index.h"
#include "graph/data_graph.h"

namespace kws::steiner {

/// Alternative answer semantics surveyed on tutorial slides 29-31. All
/// three operate on the same distance machinery (one backward Dijkstra per
/// keyword, shared through a KeywordDistanceIndex).

/// Distinct-root semantics (Kacholia et al. VLDB 05, He et al. SIGMOD 07):
/// at most one answer per root r, cost(T_r) = sum_i dist(r, match_i).
/// Returns the k cheapest roots with their path-union trees.
std::vector<AnswerTree> DistinctRootSearch(
    const graph::DataGraph& g, graph::KeywordDistanceIndex& index,
    const std::vector<std::string>& keywords, size_t k);

/// Distinct-core semantics (Qin et al. ICDE 09): answers are grouped by
/// the distinct combination of keyword matches (the "core"); each core
/// keeps its cheapest tree. Returns the k cheapest cores.
std::vector<AnswerTree> DistinctCoreSearch(
    const graph::DataGraph& g, graph::KeywordDistanceIndex& index,
    const std::vector<std::string>& keywords, size_t k);

/// r-radius Steiner semantics (EASE, Li et al. SIGMOD 08): answers are
/// centered subgraphs of radius <= r containing every keyword; the
/// returned tree is the Steiner part (paths from the center to the
/// matches), which drops the unnecessary nodes of the full r-ball.
std::vector<AnswerTree> RRadiusSteinerSearch(
    const graph::DataGraph& g, graph::KeywordDistanceIndex& index,
    const std::vector<std::string>& keywords, double radius, size_t k);

}  // namespace kws::steiner

#endif  // KWDB_CORE_STEINER_SEMANTICS_H_

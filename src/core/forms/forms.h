#ifndef KWDB_CORE_FORMS_FORMS_H_
#define KWDB_CORE_FORMS_FORMS_H_

#include <string>
#include <vector>

#include "relational/database.h"
#include "text/inverted_index.h"

namespace kws::forms {

/// SQL operator classes a form field can expose (tutorial slide 63).
enum class FormOperator { kSelect, kProject, kOrderBy, kAggregate };

/// One predicate field of a query form.
struct FormField {
  relational::TableId table = 0;
  relational::ColumnId column = 0;
  FormOperator op = FormOperator::kSelect;
  double queriability = 0;
};

/// A query form: a skeleton template (joined tables; slide 56) plus
/// predicate fields whose operator/expression the user fills in.
struct QueryForm {
  /// Tables of the skeleton (each at most once).
  std::vector<relational::TableId> tables;
  /// Foreign keys joining them (tables.size() - 1 entries).
  std::vector<uint32_t> fks;
  std::vector<FormField> fields;
  /// Canonical skeleton identity, used for grouping (slide 58).
  std::string skeleton_key;
  double queriability = 0;

  /// "author JOIN writes JOIN paper (author.name, paper.title)" rendering.
  std::string ToString(const relational::Database& db) const;
};

/// Size caps for offline query-form generation.
struct FormGenOptions {
  size_t max_tables = 3;
  size_t max_fields = 4;
  size_t max_forms = 128;
};

/// Entity queriability per table (slide 60): weighted PageRank over the
/// schema graph with participation-ratio edge weights — entities that
/// navigation reaches often are likely to be queried.
std::vector<double> EntityQueriability(const relational::Database& db);

/// Attribute queriability (slide 62): fraction of non-null occurrences.
double AttributeQueriability(const relational::Database& db,
                             relational::TableId table,
                             relational::ColumnId column);

/// Operator-specific queriability (slide 63): highly selective attributes
/// suit selection, text fields suit projection, numeric fields suit
/// order-by/aggregation.
double OperatorQueriability(const relational::Database& db,
                            relational::TableId table,
                            relational::ColumnId column, FormOperator op);

/// Offline form generation (Chu et al. SIGMOD 09 / Jayapandian & Jagadish
/// PVLDB 08; slides 54-63): enumerate skeleton templates (connected
/// acyclic table subsets), keep the most queriable, attach the most
/// queriable fields with their best operators.
std::vector<QueryForm> GenerateForms(const relational::Database& db,
                                     const FormGenOptions& options = {});

/// Online form selection (slide 57-58): forms indexed as documents over
/// their table and column names; keyword queries are expanded by
/// replacing data-matching keywords with the names of the tables whose
/// rows match them, and the union of all variants' hits is ranked.
class FormIndex {
 public:
  /// One keyword-matched form with its queriability-weighted score.
  struct RankedForm {
    size_t form = 0;  // index into forms()
    double score = 0;
  };

  /// Indexes `forms` over `db` for keyword-to-form lookup.
  FormIndex(const relational::Database& db, std::vector<QueryForm> forms);

  const std::vector<QueryForm>& forms() const { return forms_; }

  /// Top-k relevant forms for a keyword query.
  std::vector<RankedForm> Search(const std::string& query, size_t k) const;

  /// Groups ranked forms by skeleton (slide 58), preserving rank order of
  /// the best member in each group.
  std::vector<std::vector<RankedForm>> GroupBySkeleton(
      const std::vector<RankedForm>& ranked) const;

 private:
  const relational::Database& db_;
  std::vector<QueryForm> forms_;
  text::InvertedIndex index_;
};

}  // namespace kws::forms

#endif  // KWDB_CORE_FORMS_FORMS_H_

#include "core/forms/forms.h"

#include <algorithm>
#include <deque>
#include <set>
#include <unordered_map>

#include "common/topk.h"
#include "core/infer/correlation.h"
#include "graph/data_graph.h"
#include "graph/pagerank.h"

namespace kws::forms {

using relational::ColumnId;
using relational::RowId;
using relational::Table;
using relational::TableId;
using relational::ValueType;

std::string QueryForm::ToString(const relational::Database& db) const {
  std::string out;
  for (size_t i = 0; i < tables.size(); ++i) {
    if (i > 0) out += " JOIN ";
    out += db.table(tables[i]).name();
  }
  out += " (";
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out += ", ";
    out += db.table(fields[i].table).name() + "." +
           db.table(fields[i].table).schema().columns[fields[i].column].name;
  }
  out += ")";
  return out;
}

std::vector<double> EntityQueriability(const relational::Database& db) {
  // Schema-level graph: one node per table; FK edges weighted by the
  // participation ratio of the traversal direction.
  graph::DataGraph schema_graph;
  for (TableId t = 0; t < db.num_tables(); ++t) {
    schema_graph.AddNode(db.table(t).name(), "");
  }
  for (uint32_t fk = 0; fk < db.foreign_keys().size(); ++fk) {
    const relational::ForeignKey& f = db.foreign_keys()[fk];
    const double w_fwd =
        std::max(infer::ParticipationRatio(db, fk, true), 1e-3);
    const double w_bwd =
        std::max(infer::ParticipationRatio(db, fk, false), 1e-3);
    schema_graph.AddEdge(f.table, f.ref_table, w_fwd, 0);
    schema_graph.AddEdge(f.ref_table, f.table, w_bwd, 0);
  }
  return graph::WeightedPageRank(schema_graph);
}

double AttributeQueriability(const relational::Database& db, TableId table,
                             ColumnId column) {
  const Table& t = db.table(table);
  if (t.num_rows() == 0) return 0;
  size_t non_null = 0;
  for (RowId r = 0; r < t.num_rows(); ++r) {
    non_null += !t.cell(r, column).is_null();
  }
  return static_cast<double>(non_null) / static_cast<double>(t.num_rows());
}

double OperatorQueriability(const relational::Database& db, TableId table,
                            ColumnId column, FormOperator op) {
  const Table& t = db.table(table);
  if (t.num_rows() == 0) return 0;
  const ValueType type = t.schema().columns[column].type;
  // Distinct-value ratio = selectivity of equality predicates.
  std::set<std::string> distinct;
  for (RowId r = 0; r < t.num_rows(); ++r) {
    distinct.insert(t.cell(r, column).ToString());
  }
  const double selectivity = static_cast<double>(distinct.size()) /
                             static_cast<double>(t.num_rows());
  const double base = AttributeQueriability(db, table, column);
  switch (op) {
    case FormOperator::kSelect:
      // Highly selective attributes identify instances (slide 63).
      return base * selectivity;
    case FormOperator::kProject:
      // Text fields are informative to read.
      return type == ValueType::kText ? base : base * 0.2;
    case FormOperator::kOrderBy:
      // Single-valued mandatory (we model: numeric) attributes.
      return type == ValueType::kText ? base * 0.1 : base;
    case FormOperator::kAggregate:
      // Numeric attributes aggregate.
      return (type == ValueType::kInt || type == ValueType::kReal)
                 ? base * selectivity
                 : 0.0;
  }
  return 0;
}

namespace {

struct Skeleton {
  std::vector<TableId> tables;
  std::vector<uint32_t> fks;

  std::string Key() const {
    std::vector<TableId> ts = tables;
    std::sort(ts.begin(), ts.end());
    std::vector<uint32_t> fs = fks;
    std::sort(fs.begin(), fs.end());
    std::string key = "T";
    for (TableId t : ts) key += std::to_string(t) + ",";
    key += "F";
    for (uint32_t f : fs) key += std::to_string(f) + ",";
    return key;
  }
};

}  // namespace

std::vector<QueryForm> GenerateForms(const relational::Database& db,
                                     const FormGenOptions& options) {
  const std::vector<double> entity_q = EntityQueriability(db);
  // Enumerate connected acyclic skeletons with each table at most once.
  std::vector<Skeleton> skeletons;
  std::set<std::string> seen;
  std::deque<Skeleton> queue;
  for (TableId t = 0; t < db.num_tables(); ++t) {
    Skeleton s;
    s.tables = {t};
    if (seen.insert(s.Key()).second) {
      queue.push_back(s);
      skeletons.push_back(s);
    }
  }
  while (!queue.empty()) {
    Skeleton s = std::move(queue.front());
    queue.pop_front();
    if (s.tables.size() >= options.max_tables) continue;
    for (TableId t : s.tables) {
      for (const relational::SchemaEdge& e : db.SchemaNeighbors(t)) {
        if (std::find(s.tables.begin(), s.tables.end(), e.other) !=
            s.tables.end()) {
          continue;  // each table once
        }
        Skeleton next = s;
        next.tables.push_back(e.other);
        next.fks.push_back(e.fk);
        if (seen.insert(next.Key()).second) {
          skeletons.push_back(next);
          queue.push_back(std::move(next));
        }
      }
    }
  }

  // Score skeletons: product of entity queriabilities times pairwise
  // relatedness (slides 60-61).
  std::vector<QueryForm> forms;
  for (const Skeleton& s : skeletons) {
    QueryForm form;
    form.tables = s.tables;
    form.fks = s.fks;
    form.skeleton_key = s.Key();
    form.queriability = 1.0;
    for (TableId t : s.tables) form.queriability *= entity_q[t];
    for (uint32_t fk : s.fks) {
      form.queriability *= std::max(infer::Relatedness(db, fk), 1e-3);
    }
    // Fields: most queriable (attribute, operator) pairs across tables.
    TopK<FormField> top(options.max_fields);
    for (TableId t : s.tables) {
      const Table& table = db.table(t);
      for (ColumnId c = 0; c < table.schema().columns.size(); ++c) {
        if (c == table.schema().primary_key) continue;
        for (FormOperator op :
             {FormOperator::kSelect, FormOperator::kProject,
              FormOperator::kOrderBy, FormOperator::kAggregate}) {
          const double q =
              OperatorQueriability(db, t, c, op) *
              AttributeQueriability(db, t, c);
          if (q > 0) top.Offer(q, FormField{t, c, op, q});
        }
      }
    }
    for (auto& [q, field] : top.TakeSorted()) form.fields.push_back(field);
    forms.push_back(std::move(form));
  }
  std::sort(forms.begin(), forms.end(),
            [](const QueryForm& a, const QueryForm& b) {
              if (a.queriability != b.queriability) {
                return a.queriability > b.queriability;
              }
              return a.skeleton_key < b.skeleton_key;
            });
  if (forms.size() > options.max_forms) forms.resize(options.max_forms);
  return forms;
}

FormIndex::FormIndex(const relational::Database& db,
                     std::vector<QueryForm> forms)
    : db_(db), forms_(std::move(forms)) {
  for (size_t i = 0; i < forms_.size(); ++i) {
    std::string doc;
    for (TableId t : forms_[i].tables) {
      doc += db.table(t).name() + " ";
    }
    for (const FormField& f : forms_[i].fields) {
      doc += db.table(f.table).schema().columns[f.column].name + " ";
    }
    index_.AddDocument(static_cast<text::DocId>(i), doc);
  }
}

std::vector<FormIndex::RankedForm> FormIndex::Search(const std::string& query,
                                                     size_t k) const {
  // Variants: the raw query, plus copies where each data-matching keyword
  // is replaced by the names of the tables matching it (slide 57).
  const std::vector<std::string> tokens =
      index_.tokenizer().Tokenize(query);
  std::vector<std::string> variants = {query};
  for (const std::string& tok : tokens) {
    for (TableId t = 0; t < db_.num_tables(); ++t) {
      if (!db_.MatchRows(t, tok).empty()) {
        std::string variant;
        for (const std::string& other : tokens) {
          if (!variant.empty()) variant += ' ';
          variant += (other == tok) ? db_.table(t).name() : other;
        }
        variants.push_back(std::move(variant));
      }
    }
  }
  // Union of variant hits; keep each form's best score.
  std::unordered_map<size_t, double> best;
  for (const std::string& v : variants) {
    for (const text::ScoredDoc& d : index_.Search(v, forms_.size())) {
      double& s = best[d.doc];
      s = std::max(s, d.score);
    }
  }
  // TopK breaks score ties by insertion order, so offer from a sorted
  // snapshot: iterating the unordered map directly would make the
  // retained set hash-order-dependent at tied scores.
  std::vector<std::pair<size_t, double>> by_form(best.begin(), best.end());
  std::sort(by_form.begin(), by_form.end());
  TopK<size_t> top(k);
  for (const auto& [form, score] : by_form) top.Offer(score, form);
  std::vector<RankedForm> out;
  for (auto& [score, form] : top.TakeSorted()) {
    out.push_back(RankedForm{form, score});
  }
  return out;
}

std::vector<std::vector<FormIndex::RankedForm>> FormIndex::GroupBySkeleton(
    const std::vector<RankedForm>& ranked) const {
  std::vector<std::vector<RankedForm>> groups;
  std::unordered_map<std::string, size_t> group_of;
  for (const RankedForm& rf : ranked) {
    const std::string& key = forms_[rf.form].skeleton_key;
    auto [it, inserted] = group_of.emplace(key, groups.size());
    if (inserted) groups.emplace_back();
    groups[it->second].push_back(rf);
  }
  return groups;
}

}  // namespace kws::forms

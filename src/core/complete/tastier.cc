#include "core/complete/tastier.h"

#include <algorithm>
#include <deque>
#include <set>

#include "text/tokenizer.h"

namespace kws::complete {

using graph::NodeId;
using text::WordRange;

TastierIndex::TastierIndex(const graph::DataGraph& g, size_t delta)
    : graph_(g), delta_(delta) {
  text::Tokenizer tokenizer;
  // Vocabulary and per-node own tokens.
  std::vector<std::vector<std::string>> own(g.num_nodes());
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    own[n] = tokenizer.Tokenize(g.text(n));
    for (const std::string& t : own[n]) trie_.Insert(t);
  }
  trie_.Freeze();
  // delta-step forward index: BFS out to `delta` hops collecting word ids.
  forward_.resize(g.num_nodes());
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    std::set<uint32_t> words;
    std::set<NodeId> visited = {n};
    std::deque<std::pair<NodeId, size_t>> queue = {{n, 0}};
    while (!queue.empty()) {
      auto [u, hops] = queue.front();
      queue.pop_front();
      for (const std::string& t : own[u]) {
        words.insert(*trie_.Find(t));
      }
      if (hops == delta) continue;
      for (const graph::Edge& e : g.Out(u)) {
        if (visited.insert(e.to).second) queue.push_back({e.to, hops + 1});
      }
    }
    forward_[n].assign(words.begin(), words.end());
  }
}

std::set<NodeId> TastierIndex::WidenByDelta(
    const std::set<NodeId>& seed) const {
  std::set<NodeId> out = seed;
  std::set<NodeId> frontier = seed;
  for (size_t step = 0; step < delta_; ++step) {
    std::set<NodeId> next;
    for (NodeId c : frontier) {
      for (const graph::Edge& e : graph_.In(c)) {
        if (out.insert(e.to).second) next.insert(e.to);
      }
    }
    frontier = std::move(next);
    if (frontier.empty()) break;
  }
  return out;
}

bool TastierIndex::NodeMatchesRanges(
    NodeId n, const std::vector<WordRange>& ranges) const {
  const std::vector<uint32_t>& words = forward_[n];
  for (const WordRange& r : ranges) {
    auto it = std::lower_bound(words.begin(), words.end(), r.lo);
    if (it != words.end() && *it < r.hi) return true;
  }
  return false;
}

std::vector<NodeId> TastierIndex::Candidates(
    const std::vector<std::string>& prefixes, TypeAheadStats* stats) const {
  std::vector<NodeId> out;
  if (prefixes.empty()) return out;
  // Resolve each prefix to its trie range; pick the most selective one to
  // seed candidates.
  std::vector<WordRange> ranges;
  for (const std::string& p : prefixes) {
    if (stats != nullptr) ++stats->range_lookups;
    const WordRange r = trie_.PrefixRange(p);
    if (r.empty()) return out;  // some prefix has no completion at all
    ranges.push_back(r);
  }
  size_t seed = 0;
  for (size_t i = 1; i < ranges.size(); ++i) {
    if (ranges[i].size() < ranges[seed].size()) seed = i;
  }
  // Seed candidates: nodes whose forward index intersects the seed range.
  std::set<NodeId> candidates;
  for (uint32_t id = ranges[seed].lo; id < ranges[seed].hi; ++id) {
    for (NodeId m : graph_.MatchNodes(trie_.Word(id))) {
      candidates.insert(m);
    }
  }
  // Keyword matches give nodes *containing* the word; any node within
  // delta in-steps of a match may also hold it in its forward index.
  std::set<NodeId> widened = WidenByDelta(candidates);
  if (stats != nullptr) stats->candidates_before_filter += widened.size();
  for (NodeId c : widened) {
    bool all = true;
    for (size_t i = 0; i < ranges.size(); ++i) {
      if (!NodeMatchesRanges(c, {ranges[i]})) {
        all = false;
        break;
      }
    }
    if (all) out.push_back(c);
  }
  if (stats != nullptr) stats->candidates_after_filter += out.size();
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<NodeId> TastierIndex::FuzzyCandidates(
    const std::vector<std::string>& prefixes, size_t max_edits,
    TypeAheadStats* stats) const {
  std::vector<NodeId> out;
  if (prefixes.empty()) return out;
  // Exact ranges for all but the last prefix; fuzzy ranges for the last
  // (the keyword being typed).
  std::vector<std::vector<WordRange>> range_sets;
  for (size_t i = 0; i + 1 < prefixes.size(); ++i) {
    if (stats != nullptr) ++stats->range_lookups;
    const WordRange r = trie_.PrefixRange(prefixes[i]);
    if (r.empty()) return out;
    range_sets.push_back({r});
  }
  if (stats != nullptr) ++stats->range_lookups;
  std::vector<WordRange> fuzzy =
      trie_.FuzzyPrefixRanges(prefixes.back(), max_edits);
  if (fuzzy.empty()) return out;
  range_sets.push_back(std::move(fuzzy));

  // Seed from the first range set's words.
  std::set<NodeId> candidates;
  for (const WordRange& r : range_sets[0]) {
    for (uint32_t id = r.lo; id < r.hi; ++id) {
      for (NodeId m : graph_.MatchNodes(trie_.Word(id))) {
        candidates.insert(m);
      }
    }
  }
  std::set<NodeId> widened = WidenByDelta(candidates);
  if (stats != nullptr) stats->candidates_before_filter += widened.size();
  for (NodeId c : widened) {
    bool all = true;
    for (const auto& rs : range_sets) {
      if (!NodeMatchesRanges(c, rs)) {
        all = false;
        break;
      }
    }
    if (all) out.push_back(c);
  }
  if (stats != nullptr) stats->candidates_after_filter += out.size();
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::string> TastierIndex::Complete(const std::string& prefix,
                                                size_t limit) const {
  return trie_.Complete(prefix, limit);
}

}  // namespace kws::complete

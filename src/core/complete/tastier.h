#ifndef KWDB_CORE_COMPLETE_TASTIER_H_
#define KWDB_CORE_COMPLETE_TASTIER_H_

#include <set>
#include <string>
#include <vector>

#include "graph/data_graph.h"
#include "text/trie.h"

namespace kws::complete {

/// Per-keystroke statistics for the E10 benchmark.
struct TypeAheadStats {
  uint64_t range_lookups = 0;
  uint64_t candidates_before_filter = 0;
  uint64_t candidates_after_filter = 0;
};

/// TASTIER-style type-ahead search over a data graph (Li et al.,
/// SIGMOD 09; tutorial slides 72-73): every token is indexed in a trie so
/// a prefix maps to one contiguous word-id range, and each node carries a
/// "delta-step forward index" — the sorted word ids reachable within delta
/// steps — so prefix containment is a range probe instead of string work.
class TastierIndex {
 public:
  /// Builds the trie and the delta-step forward index (delta = 0 indexes
  /// only the node's own tokens).
  TastierIndex(const graph::DataGraph& g, size_t delta);

  /// Nodes that can reach, within delta steps, a completion of every
  /// prefix in `prefixes` (each keyword treated as a prefix — the
  /// TASTIER query semantics). Candidates are seeded from the most
  /// selective prefix and filtered with the forward index.
  std::vector<graph::NodeId> Candidates(
      const std::vector<std::string>& prefixes,
      TypeAheadStats* stats = nullptr) const;

  /// Error-tolerant variant of the last keyword (Chaudhuri & Kaushik;
  /// slide 71): the final prefix may contain up to `max_edits` typos.
  std::vector<graph::NodeId> FuzzyCandidates(
      const std::vector<std::string>& prefixes, size_t max_edits,
      TypeAheadStats* stats = nullptr) const;

  /// Top `limit` completions of `prefix` from the graph's vocabulary.
  std::vector<std::string> Complete(const std::string& prefix,
                                    size_t limit) const;

  size_t vocabulary_size() const { return trie_.size(); }

 private:
  /// True when node `n` has some forward-index word id inside any of the
  /// given ranges.
  bool NodeMatchesRanges(graph::NodeId n,
                         const std::vector<text::WordRange>& ranges) const;

  /// Widens a node set by in-neighbors, delta times: the nodes whose
  /// delta-step forward index could contain a word held by the set.
  std::set<graph::NodeId> WidenByDelta(
      const std::set<graph::NodeId>& seed) const;

  const graph::DataGraph& graph_;
  size_t delta_;
  text::Trie trie_;
  /// forward_[n] = sorted word ids reachable from n within delta steps.
  std::vector<std::vector<uint32_t>> forward_;
};

}  // namespace kws::complete

#endif  // KWDB_CORE_COMPLETE_TASTIER_H_

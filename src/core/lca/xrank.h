#ifndef KWDB_CORE_LCA_XRANK_H_
#define KWDB_CORE_LCA_XRANK_H_

#include <string>
#include <vector>

#include "xml/tree.h"

namespace kws::lca {

/// ElemRank parameters (XRank, Guo et al. SIGMOD 03; tutorial slide 137):
/// PageRank adapted to XML where importance flows both down (containment)
/// and up (reverse containment) the element tree.
struct ElemRankOptions {
  double damping = 0.85;
  /// Relative weight of the upward (child -> parent) flow vs downward.
  double upward_weight = 1.0;
  size_t max_iterations = 50;
};

/// Per-element importance scores (sum to 1).
std::vector<double> ElemRank(const xml::XmlTree& tree,
                             const ElemRankOptions& options = {});

/// A ranked XML result.
struct ScoredXmlResult {
  xml::XmlNodeId root = 0;
  double score = 0;
};

/// Tuning knobs for XRank result-root scoring.
struct XRankOptions {
  /// Per-edge decay applied to a match's ElemRank as it propagates from
  /// the match node up to the result root (XRank's decay factor).
  double decay = 0.75;
};

/// XRank-style ranking of result roots: for each query keyword take the
/// best decayed ElemRank of its matches inside the result subtree, sum
/// over keywords. Results sorted best-first.
std::vector<ScoredXmlResult> RankXmlResults(
    const xml::XmlTree& tree, const std::vector<xml::XmlNodeId>& results,
    const std::vector<std::string>& keywords,
    const std::vector<double>& elem_rank, const XRankOptions& options = {});

}  // namespace kws::lca

#endif  // KWDB_CORE_LCA_XRANK_H_

#include "core/lca/interconnection.h"

#include <algorithm>
#include <set>

namespace kws::lca {

using xml::XmlNodeId;
using xml::XmlTree;

bool Interconnected(const XmlTree& tree, XmlNodeId a, XmlNodeId b) {
  if (a == b) return true;
  const XmlNodeId lca = tree.Lca(a, b);
  // Collect the tags along a..lca..b; two distinct interior nodes sharing
  // a tag make the relationship ambiguous. The endpoints themselves are
  // allowed to share a tag (two <author>s of one paper are fine: the
  // interior path is author-(paper)-author).
  std::set<std::string> seen;
  bool clash = false;
  auto walk = [&](XmlNodeId from) {
    XmlNodeId cur = from;
    while (cur != lca && !clash) {
      if (cur != from) {
        if (!seen.insert(tree.tag(cur)).second) clash = true;
      }
      cur = tree.parent(cur);
    }
  };
  walk(a);
  walk(b);
  // The LCA is interior unless it is one of the endpoints.
  if (!clash && lca != a && lca != b &&
      !seen.insert(tree.tag(lca)).second) {
    clash = true;
  }
  // Endpoint tags: allowed to equal each other, but an endpoint equal to
  // an interior tag is a clash (e.g. author under author).
  if (!clash && seen.count(tree.tag(a)) > 0) clash = true;
  if (!clash && a != b && seen.count(tree.tag(b)) > 0) clash = true;
  return !clash;
}

std::vector<InterconnectedAnswer> AllPairsInterconnectedSearch(
    const XmlTree& tree, const std::vector<std::vector<XmlNodeId>>& lists,
    size_t limit) {
  std::vector<InterconnectedAnswer> out;
  if (lists.empty() || limit == 0) return out;
  size_t anchor_list = 0;
  for (size_t i = 1; i < lists.size(); ++i) {
    if (lists[i].size() < lists[anchor_list].size()) anchor_list = i;
  }
  std::set<std::vector<XmlNodeId>> seen;
  for (XmlNodeId anchor : lists[anchor_list]) {
    if (out.size() >= limit) break;
    // Candidates per keyword: the nearest matches around the anchor (and
    // the anchor's own position for its list).
    std::vector<std::vector<XmlNodeId>> candidates(lists.size());
    for (size_t i = 0; i < lists.size(); ++i) {
      if (i == anchor_list) {
        candidates[i] = {anchor};
        continue;
      }
      const auto& list = lists[i];
      auto it = std::lower_bound(list.begin(), list.end(), anchor);
      // Up to two neighbors each side.
      for (int d = -2; d <= 1; ++d) {
        auto jt = it + d;
        if (jt >= list.begin() && jt < list.end()) {
          candidates[i].push_back(*jt);
        }
      }
      if (candidates[i].empty()) return out;  // keyword unmatched nearby
    }
    // Enumerate the small candidate product, checking pairwise
    // interconnection.
    std::vector<XmlNodeId> pick(lists.size());
    auto enumerate = [&](auto&& self, size_t i) -> void {
      if (out.size() >= limit) return;
      if (i == lists.size()) {
        std::vector<XmlNodeId> key = pick;
        std::sort(key.begin(), key.end());
        if (!seen.insert(key).second) return;
        InterconnectedAnswer ans;
        ans.matches = pick;
        ans.root = pick[0];
        for (XmlNodeId m : pick) ans.root = tree.Lca(ans.root, m);
        out.push_back(std::move(ans));
        return;
      }
      for (XmlNodeId cand : candidates[i]) {
        bool ok = true;
        for (size_t j = 0; j < i && ok; ++j) {
          ok = Interconnected(tree, pick[j], cand);
        }
        if (!ok) continue;
        pick[i] = cand;
        self(self, i + 1);
      }
    };
    enumerate(enumerate, 0);
  }
  return out;
}

}  // namespace kws::lca

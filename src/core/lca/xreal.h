#ifndef KWDB_CORE_LCA_XREAL_H_
#define KWDB_CORE_LCA_XREAL_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "xml/tree.h"

namespace kws::lca {

/// A candidate search-for node type with its confidence score.
struct ReturnType {
  std::string label_path;
  double score = 0;
};

/// XReal's search-for-node-type inference (Bao et al., ICDE 09; tutorial
/// slides 37-38): rank element types T by
///
///   score(T) = sum_k log(1 + f(T, k))
///
/// where f(T, k) counts T-instances whose subtree contains keyword k —
/// zeroing T when some keyword never occurs under it ("T must have the
/// potential to match all query keywords"). Only repeatable-ish types with
/// at least `min_instances` instances are considered (a type with one
/// instance, e.g. the root, explains nothing).
std::vector<ReturnType> InferReturnTypes(
    const xml::XmlTree& tree, const std::vector<std::string>& keywords,
    size_t min_instances = 2);

/// XBridge's offline alternative (Li et al., EDBT 10; tutorial slide 38):
/// a precomputed structure+value sketch — f(path, term) for every term —
/// so query-time inference is pure lookup instead of per-query ancestor
/// walks. Produces exactly InferReturnTypes' ranking.
class ReturnTypeSketch {
 public:
  /// Builds the sketch: one pass per indexed term (O(total matches * d)).
  explicit ReturnTypeSketch(const xml::XmlTree& tree);

  /// Same contract as InferReturnTypes, answered from the sketch.
  std::vector<ReturnType> Infer(const std::vector<std::string>& keywords,
                                size_t min_instances = 2) const;

  /// Sketch size in (path, term) entries — the space cost the E18
  /// benchmark reports.
  size_t entries() const;

 private:
  /// f[path][term] = number of path-instances containing term.
  std::unordered_map<std::string, std::unordered_map<std::string, size_t>>
      f_;
  std::unordered_map<std::string, size_t> instances_;
};

}  // namespace kws::lca

#endif  // KWDB_CORE_LCA_XREAL_H_

#ifndef KWDB_CORE_LCA_INTERCONNECTION_H_
#define KWDB_CORE_LCA_INTERCONNECTION_H_

#include <string>
#include <vector>

#include "xml/tree.h"

namespace kws::lca {

/// XSEarch's interconnection relationship (Cohen et al., VLDB 03;
/// tutorial slide 34): two nodes are meaningfully related when the tree
/// path between them contains no two distinct nodes with the same tag —
/// e.g. two <author> nodes of *different* papers are connected through
/// paper–conf–paper, whose two <paper> nodes signal an accidental pairing.
bool Interconnected(const xml::XmlTree& tree, xml::XmlNodeId a,
                    xml::XmlNodeId b);

/// One all-pairs interconnected answer.
struct InterconnectedAnswer {
  /// LCA of the match nodes (the answer root).
  xml::XmlNodeId root = 0;
  /// One match node per query keyword.
  std::vector<xml::XmlNodeId> matches;
};

/// All-pairs interconnection search: combinations of keyword matches
/// (one per keyword) that are pairwise interconnected. Anchored on the
/// smallest match list with nearest-match candidates per remaining
/// keyword (a pragmatic cap on the exponential combination space); at
/// most `limit` answers, document order by anchor.
std::vector<InterconnectedAnswer> AllPairsInterconnectedSearch(
    const xml::XmlTree& tree,
    const std::vector<std::vector<xml::XmlNodeId>>& lists, size_t limit);

}  // namespace kws::lca

#endif  // KWDB_CORE_LCA_INTERCONNECTION_H_

#include "core/lca/slca.h"

#include <algorithm>

#include "text/postings.h"

namespace kws::lca {

namespace {

using text::PostingCursor;
using text::PostingSpan;
using xml::XmlNodeId;
using xml::XmlTree;

/// Index of the smallest list (the anchor list).
size_t SmallestList(const std::vector<std::vector<XmlNodeId>>& lists) {
  size_t best = 0;
  for (size_t i = 1; i < lists.size(); ++i) {
    if (lists[i].size() < lists[best].size()) best = i;
  }
  return best;
}

/// One forward cursor per match list. The anchor sequences below are
/// nondecreasing, so a cursor's SeekGE degenerates to an amortized single
/// forward pass per list instead of a fresh O(log n) binary search from
/// scratch per anchor.
std::vector<PostingCursor> MakeCursors(
    const std::vector<std::vector<XmlNodeId>>& lists) {
  std::vector<PostingCursor> cursors;
  cursors.reserve(lists.size());
  for (const std::vector<XmlNodeId>& l : lists) {
    cursors.emplace_back(PostingSpan(l));
  }
  return cursors;
}

/// Lowest ancestor of `anchor` containing a match of every list: for each
/// list take the closest match left/right of the anchor (one SeekGE gives
/// both: the cursor value is the successor, the element left of the
/// cursor the predecessor), keep the deeper of the two LCAs, then the
/// shallowest across lists. Requires anchors to be fed in nondecreasing
/// order for a given cursor set (cursors never move backwards).
XmlNodeId LowestCaAncestor(const XmlTree& tree,
                           std::vector<PostingCursor>& cursors,
                           size_t anchor_list, XmlNodeId anchor,
                           LcaStats* stats) {
  XmlNodeId candidate = anchor;
  uint32_t candidate_depth = tree.depth(anchor);
  bool first = true;
  for (size_t i = 0; i < cursors.size(); ++i) {
    if (i == anchor_list) continue;
    PostingCursor& cur = cursors[i];
    const bool has_successor = cur.SeekGE(anchor);
    if (stats != nullptr) ++stats->binary_searches;
    XmlNodeId best = xml::kNoXmlNode;
    uint32_t best_depth = 0;
    if (has_successor) {
      const XmlNodeId x = tree.Lca(anchor, cur.Value());
      if (stats != nullptr) ++stats->lca_computations;
      best = x;
      best_depth = tree.depth(x);
    }
    if (cur.pos() > 0) {
      const XmlNodeId x = tree.Lca(anchor, cur.Predecessor());
      if (stats != nullptr) ++stats->lca_computations;
      if (best == xml::kNoXmlNode || tree.depth(x) > best_depth) {
        best = x;
        best_depth = tree.depth(x);
      }
    }
    // best is the lowest ancestor of anchor containing a match of list i.
    if (first || best_depth < candidate_depth) {
      candidate = best;
      candidate_depth = best_depth;
    }
    first = false;
  }
  return candidate;
}

/// Minimal elements (no candidate is an ancestor of a kept one) of a
/// candidate multiset, in document order.
std::vector<XmlNodeId> AntiChain(const XmlTree& tree,
                                 std::vector<XmlNodeId> candidates) {
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  std::vector<XmlNodeId> stack;
  for (XmlNodeId c : candidates) {
    while (!stack.empty() && tree.IsAncestorOrSelf(stack.back(), c)) {
      stack.pop_back();
    }
    stack.push_back(c);
  }
  return stack;
}

/// Per-node per-keyword subtree match counts (the brute-force substrate).
std::vector<uint32_t> SubtreeCounts(
    const XmlTree& tree, const std::vector<std::vector<XmlNodeId>>& lists,
    LcaStats* stats) {
  const size_t k = lists.size();
  std::vector<uint32_t> counts(tree.size() * k, 0);
  for (size_t i = 0; i < k; ++i) {
    for (XmlNodeId m : lists[i]) {
      XmlNodeId cur = m;
      for (;;) {
        ++counts[static_cast<size_t>(cur) * k + i];
        if (stats != nullptr) ++stats->nodes_visited;
        if (cur == 0) break;
        cur = tree.parent(cur);
      }
    }
  }
  return counts;
}

/// Matches of list i inside subtree(v) = the id range [v, SubtreeEnd(v)],
/// via two skip-based seeks on the sorted match list.
uint32_t RangeCount(const XmlTree& tree, const std::vector<XmlNodeId>& list,
                    XmlNodeId v, LcaStats* stats) {
  if (stats != nullptr) ++stats->binary_searches;
  return static_cast<uint32_t>(
      text::CountInRange(PostingSpan(list), v, tree.SubtreeEnd(v)));
}

/// Span guard for the indexed LCA algorithms: routes stats through a
/// local struct when only the tracer needs them, and turns this call's
/// LcaStats *growth* into span counters — callers are allowed to pass
/// stats accumulated across calls, so only deltas are traced.
class LcaSpan {
 public:
  LcaSpan(trace::Tracer* tracer, const char* name, LcaStats* stats)
      : span_(tracer, name),
        st_(stats != nullptr ? stats
                             : (tracer != nullptr ? &local_ : nullptr)),
        base_(st_ != nullptr ? *st_ : LcaStats{}) {}

  /// The stats sink the algorithm should record into (may be null).
  LcaStats* stats() { return st_; }

  /// Extra algorithm-specific counter on the span.
  void AddCounter(const char* name, uint64_t value) {
    span_.AddCounter(name, value);
  }

  /// Point event on the span (e.g. a deadline expiry).
  void AddEvent(const char* name) { span_.AddEvent(name); }

  /// Annotates the span with the stats deltas and the result count.
  void Finish(size_t results) {
    if (st_ == nullptr || span_.tracer() == nullptr) return;
    span_.AddCounter("lca_computations",
                     st_->lca_computations - base_.lca_computations);
    span_.AddCounter("binary_searches",
                     st_->binary_searches - base_.binary_searches);
    span_.AddCounter("nodes_visited",
                     st_->nodes_visited - base_.nodes_visited);
    span_.AddCounter("results", results);
  }

 private:
  trace::TraceSpan span_;
  LcaStats local_;
  LcaStats* st_;
  LcaStats base_;
};

}  // namespace

std::vector<std::vector<XmlNodeId>> MatchLists(
    const XmlTree& tree, const std::vector<std::string>& keywords) {
  std::vector<std::vector<XmlNodeId>> lists;
  for (const std::string& k : keywords) {
    const std::vector<XmlNodeId>& l = tree.MatchNodes(k);
    if (l.empty()) return {};
    lists.push_back(l);
  }
  return lists;
}

std::vector<XmlNodeId> SlcaBruteForce(
    const XmlTree& tree, const std::vector<std::vector<XmlNodeId>>& lists,
    LcaStats* stats) {
  if (lists.empty()) return {};
  const size_t k = lists.size();
  const std::vector<uint32_t> counts = SubtreeCounts(tree, lists, stats);
  std::vector<XmlNodeId> out;
  for (XmlNodeId v = 0; v < tree.size(); ++v) {
    if (stats != nullptr) ++stats->nodes_visited;
    bool ca = true;
    for (size_t i = 0; i < k && ca; ++i) {
      ca = counts[static_cast<size_t>(v) * k + i] > 0;
    }
    if (!ca) continue;
    bool child_ca = false;
    for (XmlNodeId c : tree.children(v)) {
      bool cca = true;
      for (size_t i = 0; i < k && cca; ++i) {
        cca = counts[static_cast<size_t>(c) * k + i] > 0;
      }
      child_ca |= cca;
      if (child_ca) break;
    }
    if (!child_ca) out.push_back(v);
  }
  return out;
}

std::vector<XmlNodeId> SlcaIndexedLookupEager(
    const XmlTree& tree, const std::vector<std::vector<XmlNodeId>>& lists,
    LcaStats* stats, const Deadline* deadline, trace::Tracer* tracer) {
  if (lists.empty()) return {};
  LcaSpan span(tracer, "lca.slca_ile", stats);
  const size_t anchor_list = SmallestList(lists);
  DeadlineChecker checker(deadline == nullptr ? Deadline() : *deadline);
  std::vector<PostingCursor> cursors = MakeCursors(lists);
  std::vector<XmlNodeId> candidates;
  candidates.reserve(lists[anchor_list].size());
  // Anchors ascend (the anchor list is sorted), so the cursors only ever
  // move forward: the whole sweep costs one amortized pass per list.
  for (XmlNodeId v : lists[anchor_list]) {
    if (checker.Expired()) {  // cancellation point: partial answer
      span.AddEvent("lca.deadline.hit");
      break;
    }
    candidates.push_back(
        LowestCaAncestor(tree, cursors, anchor_list, v, span.stats()));
  }
  span.AddCounter("anchors", candidates.size());
  std::vector<XmlNodeId> out = AntiChain(tree, std::move(candidates));
  span.Finish(out.size());
  return out;
}

std::vector<XmlNodeId> SlcaMultiway(
    const XmlTree& tree, const std::vector<std::vector<XmlNodeId>>& lists,
    LcaStats* stats, trace::Tracer* tracer) {
  if (lists.empty()) return {};
  LcaSpan span(tracer, "lca.slca_multiway", stats);
  LcaStats* const st = span.stats();
  const size_t k = lists.size();
  // Heads double as the probe cursors of LowestCaAncestor: both uses are
  // monotone in the (strictly increasing) anchor sequence.
  std::vector<PostingCursor> heads = MakeCursors(lists);
  std::vector<XmlNodeId> candidates;
  for (;;) {
    // Anchor: the maximum of the current heads.
    XmlNodeId anchor = 0;
    size_t anchor_list = 0;
    bool exhausted = false;
    for (size_t i = 0; i < k; ++i) {
      if (heads[i].AtEnd()) {
        exhausted = true;
        break;
      }
      if (heads[i].Value() >= anchor) {
        anchor = heads[i].Value();
        anchor_list = i;
      }
    }
    if (exhausted) break;
    candidates.push_back(
        LowestCaAncestor(tree, heads, anchor_list, anchor, st));
    // Advance every head to the first match after the anchor.
    for (size_t i = 0; i < k; ++i) {
      if (st != nullptr) ++st->binary_searches;
      heads[i].SeekGE(anchor + 1);
    }
  }
  span.AddCounter("anchors", candidates.size());
  std::vector<XmlNodeId> out = AntiChain(tree, std::move(candidates));
  span.Finish(out.size());
  return out;
}

std::vector<XmlNodeId> ElcaBruteForce(
    const XmlTree& tree, const std::vector<std::vector<XmlNodeId>>& lists,
    LcaStats* stats) {
  if (lists.empty()) return {};
  const size_t k = lists.size();
  const std::vector<uint32_t> counts = SubtreeCounts(tree, lists, stats);
  auto is_ca = [&](XmlNodeId v) {
    for (size_t i = 0; i < k; ++i) {
      if (counts[static_cast<size_t>(v) * k + i] == 0) return false;
    }
    return true;
  };
  std::vector<XmlNodeId> out;
  for (XmlNodeId v = 0; v < tree.size(); ++v) {
    if (stats != nullptr) ++stats->nodes_visited;
    if (!is_ca(v)) continue;
    // Exclude matches inside CA children; v must keep a witness of every
    // keyword.
    bool elca = true;
    for (size_t i = 0; i < k && elca; ++i) {
      uint32_t remaining = counts[static_cast<size_t>(v) * k + i];
      for (XmlNodeId c : tree.children(v)) {
        if (is_ca(c)) remaining -= counts[static_cast<size_t>(c) * k + i];
      }
      elca = remaining > 0;
    }
    if (elca) out.push_back(v);
  }
  return out;
}

std::vector<XmlNodeId> ElcaIndexed(
    const XmlTree& tree, const std::vector<std::vector<XmlNodeId>>& lists,
    LcaStats* stats, const Deadline* deadline, trace::Tracer* tracer) {
  if (lists.empty()) return {};
  LcaSpan span(tracer, "lca.elca_indexed", stats);
  LcaStats* const st = span.stats();
  const size_t k = lists.size();
  const size_t anchor_list = SmallestList(lists);
  DeadlineChecker checker(deadline == nullptr ? Deadline() : *deadline);
  std::vector<PostingCursor> cursors = MakeCursors(lists);
  std::vector<XmlNodeId> candidates;
  candidates.reserve(lists[anchor_list].size());
  for (XmlNodeId v : lists[anchor_list]) {
    if (checker.Expired()) {  // cancellation point: partial answer
      span.AddEvent("lca.deadline.hit");
      break;
    }
    candidates.push_back(
        LowestCaAncestor(tree, cursors, anchor_list, v, st));
  }
  span.AddCounter("anchors", candidates.size());
  // Candidates anchored on one list miss ELCAs whose anchor-list witness
  // sits under a CA child; add the ancestors of candidates that are CA —
  // ELCAs are always CA, and every ELCA is the lowest CA ancestor of one
  // of ITS witnesses, which for the anchor keyword is a match v whose
  // lowest CA ancestor is exactly the ELCA. (See slca.h.) So the anchor
  // pass suffices; dedup and verify each.
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());

  auto is_ca = [&](XmlNodeId v) {
    for (size_t i = 0; i < k; ++i) {  // bounded by keyword count; caller loop polls -- kwslint: allow(deadline-loop)
      if (RangeCount(tree, lists[i], v, st) == 0) return false;
    }
    return true;
  };
  std::vector<XmlNodeId> out;
  for (XmlNodeId v : candidates) {
    if (checker.Expired()) {  // cancellation point: verified prefix
      span.AddEvent("lca.deadline.hit");
      break;
    }
    bool elca = true;
    // CA children of v, found once.
    std::vector<XmlNodeId> ca_children;
    for (XmlNodeId c : tree.children(v)) {
      if (is_ca(c)) ca_children.push_back(c);
    }
    for (size_t i = 0; i < k && elca; ++i) {
      uint32_t remaining = RangeCount(tree, lists[i], v, st);
      for (XmlNodeId c : ca_children) {
        remaining -= RangeCount(tree, lists[i], c, st);
      }
      elca = remaining > 0;
    }
    if (elca) out.push_back(v);
  }
  span.AddCounter("candidates", candidates.size());
  span.Finish(out.size());
  return out;
}

std::vector<XmlNodeId> ElcaDeweyJoin(
    const XmlTree& tree, const std::vector<std::vector<XmlNodeId>>& lists,
    LcaStats* stats, trace::Tracer* tracer) {
  if (lists.empty()) return {};
  LcaSpan span(tracer, "lca.elca_dewey", stats);
  LcaStats* const st = span.stats();
  const size_t k = lists.size();
  // Ancestor closure per keyword: every Dewey prefix of every match.
  std::vector<std::vector<XmlNodeId>> closures(k);
  for (size_t i = 0; i < k; ++i) {
    for (XmlNodeId m : lists[i]) {
      XmlNodeId cur = m;
      for (;;) {
        closures[i].push_back(cur);
        if (st != nullptr) ++st->nodes_visited;
        if (cur == 0) break;
        cur = tree.parent(cur);
      }
    }
    std::sort(closures[i].begin(), closures[i].end());
    closures[i].erase(std::unique(closures[i].begin(), closures[i].end()),
                      closures[i].end());
  }
  // CA set: the multi-way galloping intersection of the closures.
  std::vector<PostingSpan> spans;
  spans.reserve(k);
  for (const std::vector<XmlNodeId>& c : closures) {
    spans.emplace_back(c);
  }
  const std::vector<XmlNodeId> ca = text::IntersectLists(spans);
  auto is_ca = [&](XmlNodeId v) {
    return std::binary_search(ca.begin(), ca.end(), v);
  };
  // ELCA verification via range counts, as in ElcaIndexed.
  std::vector<XmlNodeId> out;
  for (XmlNodeId v : ca) {
    std::vector<XmlNodeId> ca_children;
    for (XmlNodeId c : tree.children(v)) {
      if (is_ca(c)) ca_children.push_back(c);
    }
    bool elca = true;
    for (size_t i = 0; i < k && elca; ++i) {
      uint32_t remaining = RangeCount(tree, lists[i], v, st);
      for (XmlNodeId c : ca_children) {
        remaining -= RangeCount(tree, lists[i], c, st);
      }
      elca = remaining > 0;
    }
    if (elca) out.push_back(v);
  }
  span.AddCounter("ca_nodes", ca.size());
  span.Finish(out.size());
  return out;
}

}  // namespace kws::lca

#ifndef KWDB_CORE_LCA_XSEEK_H_
#define KWDB_CORE_LCA_XSEEK_H_

#include <string>
#include <vector>

#include "common/trace.h"
#include "xml/stats.h"
#include "xml/tree.h"

namespace kws::lca {

/// XSeek's node-category model (Liu & Chen, SIGMOD 07; tutorial slide 51):
/// a node type is an *entity* when it repeats among siblings, an
/// *attribute* when it is unique under its parent and carries leaf text,
/// and a *connection* otherwise.
enum class NodeCategory { kEntity, kAttribute, kConnection };

/// Buckets a node by its path statistics (XSeek entity inference).
NodeCategory Classify(const xml::PathStatistics& stats,
                      const std::string& label_path, bool has_text,
                      bool is_leaf);

/// How each query keyword matched, for return-node inference: a keyword
/// equal to a tag name is an explicit return-node specifier; a keyword
/// matching text content is a predicate.
struct KeywordRole {
  std::string keyword;
  bool is_tag_name = false;
};

/// One inferred result for a query anchored at an SLCA node.
struct XSeekResult {
  /// The node whose subtree is the answer.
  xml::XmlNodeId result_root = 0;
  /// Explicit or inferred return nodes within/around the result root.
  std::vector<xml::XmlNodeId> return_nodes;
};

/// XSeek inference: given the SLCA `anchor` of a keyword match, decide
/// what to return (tutorial slides 51-52):
///  - keywords naming a tag are explicit return nodes: return the matching
///    descendants of (or nearest to) the anchor;
///  - otherwise return the nearest entity ancestor-or-self of the anchor
///    (the "implicit" return node), falling back to the anchor itself.
/// A non-null `tracer` wraps the inference in an `lca.xseek` span
/// (classified nodes + return-node count).
XSeekResult InferReturnNodes(const xml::XmlTree& tree,
                             const xml::PathStatistics& stats,
                             const std::vector<std::string>& keywords,
                             xml::XmlNodeId anchor,
                             trace::Tracer* tracer = nullptr);

/// Classifies the query's keywords against the tree's tag vocabulary.
std::vector<KeywordRole> ClassifyKeywords(
    const xml::XmlTree& tree, const std::vector<std::string>& keywords);

}  // namespace kws::lca

#endif  // KWDB_CORE_LCA_XSEEK_H_

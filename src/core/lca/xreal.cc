#include "core/lca/xreal.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <unordered_map>

namespace kws::lca {

std::vector<ReturnType> InferReturnTypes(
    const xml::XmlTree& tree, const std::vector<std::string>& keywords,
    size_t min_instances) {
  const size_t k = keywords.size();
  // f(path, keyword): number of path-instances whose subtree contains the
  // keyword. Computed by walking ancestors of each match, counting each
  // (instance, keyword) pair once.
  std::unordered_map<std::string, std::vector<size_t>> f;
  for (size_t i = 0; i < k; ++i) {
    std::set<xml::XmlNodeId> counted;
    for (xml::XmlNodeId m : tree.MatchNodes(keywords[i])) {
      xml::XmlNodeId cur = m;
      for (;;) {
        if (counted.insert(cur).second) {
          auto& row = f[tree.LabelPath(cur)];
          if (row.empty()) row.assign(k, 0);
          ++row[i];
        }
        if (cur == 0) break;
        cur = tree.parent(cur);
      }
    }
  }
  // Instance counts per path.
  std::unordered_map<std::string, size_t> instances;
  for (xml::XmlNodeId n = 0; n < tree.size(); ++n) {
    ++instances[tree.LabelPath(n)];
  }
  std::vector<ReturnType> out;
  for (const auto& [path, row] : f) {  // out gets a strict total sort (score, path) below -- kwslint: allow(unordered-iteration)
    if (instances[path] < min_instances) continue;
    double score = 0;
    bool all = true;
    for (size_t i = 0; i < k; ++i) {
      if (row[i] == 0) {
        all = false;
        break;
      }
      score += std::log(1.0 + static_cast<double>(row[i]));
    }
    if (!all) continue;  // no potential to match every keyword
    out.push_back(ReturnType{path, score});
  }
  std::sort(out.begin(), out.end(), [](const ReturnType& a,
                                       const ReturnType& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.label_path < b.label_path;
  });
  return out;
}

ReturnTypeSketch::ReturnTypeSketch(const xml::XmlTree& tree) {
  for (xml::XmlNodeId n = 0; n < tree.size(); ++n) {
    ++instances_[tree.LabelPath(n)];
  }
  for (const std::string& term : tree.Vocabulary()) {
    std::set<xml::XmlNodeId> counted;
    for (xml::XmlNodeId m : tree.MatchNodes(term)) {
      xml::XmlNodeId cur = m;
      for (;;) {
        if (counted.insert(cur).second) {
          ++f_[tree.LabelPath(cur)][term];
        }
        if (cur == 0) break;
        cur = tree.parent(cur);
      }
    }
  }
}

std::vector<ReturnType> ReturnTypeSketch::Infer(
    const std::vector<std::string>& keywords, size_t min_instances) const {
  std::vector<ReturnType> out;
  for (const auto& [path, terms] : f_) {  // out gets a strict total sort (score, path) below -- kwslint: allow(unordered-iteration)
    auto iit = instances_.find(path);
    if (iit == instances_.end() || iit->second < min_instances) continue;
    double score = 0;
    bool all = true;
    for (const std::string& k : keywords) {
      auto tit = terms.find(k);
      if (tit == terms.end()) {
        all = false;
        break;
      }
      score += std::log(1.0 + static_cast<double>(tit->second));
    }
    if (!all) continue;
    out.push_back(ReturnType{path, score});
  }
  std::sort(out.begin(), out.end(), [](const ReturnType& a,
                                       const ReturnType& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.label_path < b.label_path;
  });
  return out;
}

size_t ReturnTypeSketch::entries() const {
  size_t total = 0;
  for (const auto& [path, terms] : f_) total += terms.size();  // order-independent sum -- kwslint: allow(unordered-iteration)
  return total;
}

}  // namespace kws::lca

#ifndef KWDB_CORE_LCA_SLCA_H_
#define KWDB_CORE_LCA_SLCA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/deadline.h"
#include "common/trace.h"
#include "xml/tree.h"

namespace kws::lca {

/// Instrumentation for the E6/E7 benchmarks.
struct LcaStats {
  uint64_t lca_computations = 0;
  uint64_t binary_searches = 0;
  uint64_t nodes_visited = 0;  // brute-force sweeps
};

/// Resolves keywords to match lists via the tree's keyword index; returns
/// an empty optional-like empty vector-of-vectors if any keyword has no
/// match (AND semantics: result set is then empty).
std::vector<std::vector<xml::XmlNodeId>> MatchLists(
    const xml::XmlTree& tree, const std::vector<std::string>& keywords);

/// Reference SLCA (smallest lowest common ancestors, Xu & Papakonstantinou
/// SIGMOD 05; tutorial slide 33): subtree roots containing every keyword,
/// with no descendant also containing every keyword. Brute-force O(N * k)
/// subtree-count sweep — the correctness oracle and the "scan" baseline
/// of experiment E6.
std::vector<xml::XmlNodeId> SlcaBruteForce(
    const xml::XmlTree& tree,
    const std::vector<std::vector<xml::XmlNodeId>>& lists,
    LcaStats* stats = nullptr);

/// Indexed-Lookup-Eager SLCA: anchors on the smallest list, binary-searches
/// the others, O(k * d * |Smin| * log |Smax|) (tutorial slide 138).
/// A non-null `deadline` adds a cancellation point per anchor: on expiry
/// the sweep stops and the answer is computed from the anchors processed
/// so far (a subset of the true SLCA set). A non-null `tracer` wraps the
/// sweep in an `lca.slca_ile` span carrying this call's anchor count and
/// LcaStats deltas.
std::vector<xml::XmlNodeId> SlcaIndexedLookupEager(
    const xml::XmlTree& tree,
    const std::vector<std::vector<xml::XmlNodeId>>& lists,
    LcaStats* stats = nullptr, const Deadline* deadline = nullptr,
    trace::Tracer* tracer = nullptr);

/// Multiway SLCA (Sun et al., WWW 07; tutorial slide 139): like ILE but the
/// anchor is re-chosen as the maximum of the current heads each round and
/// whole subtrees are skipped after each candidate, reducing anchor count
/// when matches cluster. A non-null `tracer` wraps the sweep in an
/// `lca.slca_multiway` span (anchor count + LcaStats deltas).
std::vector<xml::XmlNodeId> SlcaMultiway(
    const xml::XmlTree& tree,
    const std::vector<std::vector<xml::XmlNodeId>>& lists,
    LcaStats* stats = nullptr, trace::Tracer* tracer = nullptr);

/// Reference ELCA (XRank, Guo et al. SIGMOD 03; tutorial slide 34): nodes
/// that still contain every keyword after excluding the keyword matches
/// lying inside descendant nodes that themselves contain every keyword.
std::vector<xml::XmlNodeId> ElcaBruteForce(
    const xml::XmlTree& tree,
    const std::vector<std::vector<xml::XmlNodeId>>& lists,
    LcaStats* stats = nullptr);

/// Index-Stack-style ELCA (Xu & Papakonstantinou, EDBT 08; tutorial
/// slide 140): candidates are slca({v}, S2..Sk) for v in the smallest
/// list; each candidate is verified with O(log) range counts on the match
/// lists instead of subtree sweeps. A non-null `deadline` adds
/// cancellation points to the anchor sweep and the verification loop; on
/// expiry the ELCAs confirmed so far are returned. A non-null `tracer`
/// wraps the run in an `lca.elca_indexed` span (anchor/candidate counts +
/// LcaStats deltas).
std::vector<xml::XmlNodeId> ElcaIndexed(
    const xml::XmlTree& tree,
    const std::vector<std::vector<xml::XmlNodeId>>& lists,
    LcaStats* stats = nullptr, const Deadline* deadline = nullptr,
    trace::Tracer* tracer = nullptr);

/// JDewey-join-style ELCA (Chen & Papakonstantinou, ICDE 10; tutorial
/// slide 141): computed bottom-up from the matches' ancestor chains
/// (Dewey prefixes) — the CA set is the intersection of the per-keyword
/// ancestor closures, verified with range counts. O(sum |Si| * d) work to
/// build the closures, independent of document size. A non-null `tracer`
/// wraps the run in an `lca.elca_dewey` span (CA count + LcaStats deltas).
std::vector<xml::XmlNodeId> ElcaDeweyJoin(
    const xml::XmlTree& tree,
    const std::vector<std::vector<xml::XmlNodeId>>& lists,
    LcaStats* stats = nullptr, trace::Tracer* tracer = nullptr);

}  // namespace kws::lca

#endif  // KWDB_CORE_LCA_SLCA_H_

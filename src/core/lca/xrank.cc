#include "core/lca/xrank.h"

#include <algorithm>
#include <cmath>

namespace kws::lca {

using xml::XmlNodeId;
using xml::XmlTree;

std::vector<double> ElemRank(const XmlTree& tree,
                             const ElemRankOptions& options) {
  const size_t n = tree.size();
  if (n == 0) return {};
  std::vector<double> rank(n, 1.0 / static_cast<double>(n));
  std::vector<double> next(n);
  const double base = (1.0 - options.damping) / static_cast<double>(n);
  for (size_t iter = 0; iter < options.max_iterations; ++iter) {
    std::fill(next.begin(), next.end(), base);
    for (XmlNodeId v = 0; v < n; ++v) {
      // Out-weight: children (downward) + parent (upward).
      const double down = static_cast<double>(tree.children(v).size());
      const double up = tree.parent(v) == xml::kNoXmlNode
                            ? 0.0
                            : options.upward_weight;
      const double total = down + up;
      if (total <= 0) {
        // Dangling leaf-root: redistribute uniformly.
        for (XmlNodeId u = 0; u < n; ++u) {
          next[u] += options.damping * rank[v] / static_cast<double>(n);
        }
        continue;
      }
      for (XmlNodeId c : tree.children(v)) {
        next[c] += options.damping * rank[v] / total;
      }
      if (up > 0) {
        next[tree.parent(v)] += options.damping * rank[v] * up / total;
      }
    }
    rank.swap(next);
  }
  return rank;
}

std::vector<ScoredXmlResult> RankXmlResults(
    const XmlTree& tree, const std::vector<XmlNodeId>& results,
    const std::vector<std::string>& keywords,
    const std::vector<double>& elem_rank, const XRankOptions& options) {
  std::vector<ScoredXmlResult> out;
  out.reserve(results.size());
  for (XmlNodeId root : results) {
    const XmlNodeId end = tree.SubtreeEnd(root);
    double score = 0;
    for (const std::string& k : keywords) {
      double best = 0;
      for (XmlNodeId m : tree.MatchNodes(k)) {
        if (m < root || m > end) continue;
        const double hops =
            static_cast<double>(tree.depth(m) - tree.depth(root));
        best = std::max(best,
                        elem_rank[m] * std::pow(options.decay, hops));
      }
      score += best;
    }
    out.push_back(ScoredXmlResult{root, score});
  }
  std::sort(out.begin(), out.end(),
            [](const ScoredXmlResult& a, const ScoredXmlResult& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.root < b.root;
            });
  return out;
}

}  // namespace kws::lca

#include "core/lca/xseek.h"

#include "text/postings.h"

namespace kws::lca {

using xml::XmlNodeId;
using xml::XmlTree;

NodeCategory Classify(const xml::PathStatistics& stats,
                      const std::string& label_path, bool has_text,
                      bool is_leaf) {
  auto it = stats.path_repeatable.find(label_path);
  const bool repeatable = it != stats.path_repeatable.end() && it->second;
  if (repeatable && !is_leaf) return NodeCategory::kEntity;
  if (repeatable && is_leaf && !has_text) return NodeCategory::kEntity;
  if (!repeatable && is_leaf && has_text) return NodeCategory::kAttribute;
  if (repeatable) return NodeCategory::kEntity;
  return NodeCategory::kConnection;
}

std::vector<KeywordRole> ClassifyKeywords(
    const XmlTree& tree, const std::vector<std::string>& keywords) {
  std::vector<KeywordRole> roles;
  roles.reserve(keywords.size());
  for (const std::string& k : keywords) {
    // Tag-index probe: O(1) per keyword instead of a full-document sweep
    // building a tag set per query.
    roles.push_back(KeywordRole{k, !tree.TagNodes(k).empty()});
  }
  return roles;
}

XSeekResult InferReturnNodes(const XmlTree& tree,
                             const xml::PathStatistics& stats,
                             const std::vector<std::string>& keywords,
                             XmlNodeId anchor, trace::Tracer* tracer) {
  trace::TraceSpan span(tracer, "lca.xseek");
  XSeekResult out;
  const std::vector<KeywordRole> roles = ClassifyKeywords(tree, keywords);

  // Result root: the nearest entity ancestor-or-self of the anchor.
  XmlNodeId root = anchor;
  XmlNodeId cur = anchor;
  bool found_entity = false;
  uint64_t classified = 0;
  for (;;) {
    ++classified;
    const NodeCategory cat =
        Classify(stats, tree.LabelPath(cur), !tree.text(cur).empty(),
                 tree.children(cur).empty());
    if (cat == NodeCategory::kEntity) {
      root = cur;
      found_entity = true;
      break;
    }
    if (cur == 0) break;
    cur = tree.parent(cur);
  }
  if (!found_entity) root = anchor;
  out.result_root = root;
  span.AddCounter("classified", classified);

  // Explicit return nodes: keywords that name tags select the matching
  // descendants of the result root; when the nearest entity does not
  // contain such a node (e.g. query "mark, title" anchored at an author),
  // widen to enclosing ancestors until one does.
  bool has_tag_keyword = false;
  for (const KeywordRole& role : roles) has_tag_keyword |= role.is_tag_name;
  if (has_tag_keyword) {
    XmlNodeId scope = root;
    for (;;) {
      const XmlNodeId end = tree.SubtreeEnd(scope);
      for (const KeywordRole& role : roles) {
        if (!role.is_tag_name) continue;
        // Matching descendants = the slice of the (sorted, doc-order)
        // per-tag node list inside [scope, SubtreeEnd(scope)]: one seek
        // plus the matches, instead of scanning the whole subtree.
        const std::vector<XmlNodeId>& tagged = tree.TagNodes(role.keyword);
        const text::PostingSpan span{tagged};
        for (size_t i = text::SeekGE(span, 0, scope);
             i < span.size && span[i] <= end; ++i) {
          out.return_nodes.push_back(span[i]);
        }
      }
      if (!out.return_nodes.empty()) {
        out.result_root = scope;
        span.AddCounter("return_nodes", out.return_nodes.size());
        return out;
      }
      if (scope == 0) break;
      scope = tree.parent(scope);
    }
  }

  // Implicit: the entity itself plus its attribute children.
  out.return_nodes.push_back(root);
  for (XmlNodeId c : tree.children(root)) {
    const NodeCategory cat =
        Classify(stats, tree.LabelPath(c), !tree.text(c).empty(),
                 tree.children(c).empty());
    if (cat == NodeCategory::kAttribute) out.return_nodes.push_back(c);
  }
  span.AddCounter("return_nodes", out.return_nodes.size());
  return out;
}

}  // namespace kws::lca

#ifndef KWDB_CORE_REWRITE_KEYWORD_PP_H_
#define KWDB_CORE_REWRITE_KEYWORD_PP_H_

#include <optional>
#include <string>
#include <vector>

#include "relational/database.h"
#include "relational/query_log.h"

namespace kws::rewrite {

/// A structured predicate a keyword maps to (Keyword++, Xin et al.
/// VLDB 10; tutorial slides 95-100).
struct MappedPredicate {
  /// How the predicate translates into SQL.
  enum class Kind {
    kEquals,     // categorical: column = value
    kOrderAsc,   // non-quantitative "small": ORDER BY column ASC
    kOrderDesc,  // non-quantitative "large": ORDER BY column DESC
    kContains,   // fall back to full-text LIKE
  };
  Kind kind = Kind::kContains;
  relational::ColumnId column = 0;
  std::optional<relational::Value> value;
  /// Differential significance (higher = stronger mapping).
  double score = 0;

  /// Renders the rewritten terms and their score.
  std::string ToString(const relational::TableSchema& schema) const;
};

/// The translated query: one predicate per query segment plus the CNF
/// SQL-style rendering of slide 96.
struct TranslatedQuery {
  std::vector<std::string> segments;  // surface form per predicate
  std::vector<MappedPredicate> predicates;
  std::string sql;
};

/// Keyword-to-predicate mapper over one entity table. Mappings are learned
/// from differential query pairs (DQPs): for keyword k, compare the
/// attribute-value distributions of results of queries with and without k
/// — KL divergence for categorical columns, mean shift (a 1-D
/// earth-mover surrogate) for numeric columns.
class KeywordPlusPlus {
 public:
  /// Learns mappings for every keyword appearing in `log` (and lazily for
  /// unseen keywords at translation time, using the single synthetic DQP
  /// (Qb = {}, Qf = {k})).
  KeywordPlusPlus(const relational::Database& db, relational::TableId table,
                  const relational::QueryLog& log);

  /// Best mapping for one keyword; kContains when nothing is significant.
  MappedPredicate MapKeyword(const std::string& keyword) const;

  /// Translates a whole keyword query: dynamic-programming segmentation
  /// over 1- and 2-grams (slide 100), then one predicate per segment.
  TranslatedQuery Translate(const std::string& query) const;

 private:
  /// Result rows of a conjunctive keyword query on the table.
  std::vector<relational::RowId> Results(
      const std::vector<std::string>& terms) const;

  /// Differential analysis of one DQP for `keyword`.
  MappedPredicate AnalyzeDqp(const std::vector<std::string>& background,
                             const std::string& keyword) const;

  const relational::Database& db_;
  relational::TableId table_;
  const relational::QueryLog& log_;
  /// Minimum significance for a non-kContains mapping.
  double min_score_ = 0.15;
};

}  // namespace kws::rewrite

#endif  // KWDB_CORE_REWRITE_KEYWORD_PP_H_

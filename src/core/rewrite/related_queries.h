#ifndef KWDB_CORE_REWRITE_RELATED_QUERIES_H_
#define KWDB_CORE_REWRITE_RELATED_QUERIES_H_

#include <string>
#include <vector>

#include "relational/database.h"
#include "text/inverted_index.h"

namespace kws::rewrite {

/// One click-log record: a query and the documents users clicked for it.
struct ClickRecord {
  std::string query;
  std::vector<text::DocId> clicked;
};

/// A related query with its overlap strength.
struct RelatedQuery {
  std::string query;
  double similarity = 0;
};

/// Click-log query rewriting (Cheng et al., ICDE 10; tutorial slide 101):
/// historical queries whose clicked results significantly overlap the
/// clicks of `query` are its synonyms/hypernyms ("indiana jones iv" vs
/// "indiana jones 4"). Similarity = Jaccard of click sets; results above
/// `min_similarity`, best first.
std::vector<RelatedQuery> RelatedByClicks(
    const std::vector<ClickRecord>& click_log, const std::string& query,
    double min_similarity = 0.2);

/// Data-only value rewriting (Nambiar & Kambhampati, ICDE 06; slide 102):
/// two values of `column` (e.g. "honda" and "toyota") are similar when the
/// tuples selecting them have similar distributions over the OTHER
/// columns. Similarity = average per-column distribution overlap
/// (Jaccard-weighted histogram intersection). Returns values related to
/// `value`, best first.
std::vector<std::pair<relational::Value, double>> RelatedValues(
    const relational::Database& db, relational::TableId table,
    relational::ColumnId column, const relational::Value& value,
    size_t k = 5);

}  // namespace kws::rewrite

#endif  // KWDB_CORE_REWRITE_RELATED_QUERIES_H_

#include "core/rewrite/keyword_pp.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "common/strings.h"

namespace kws::rewrite {

using relational::ColumnId;
using relational::RowId;
using relational::Table;
using relational::Value;
using relational::ValueType;

std::string MappedPredicate::ToString(
    const relational::TableSchema& schema) const {
  const std::string& name = schema.columns[column].name;
  switch (kind) {
    case Kind::kEquals:
      return name + " = '" + value->ToString() + "'";
    case Kind::kOrderAsc:
      return "ORDER BY " + name + " ASC";
    case Kind::kOrderDesc:
      return "ORDER BY " + name + " DESC";
    case Kind::kContains:
      return "text LIKE '%" + (value ? value->ToString() : "") + "%'";
  }
  return "?";
}

KeywordPlusPlus::KeywordPlusPlus(const relational::Database& db,
                                 relational::TableId table,
                                 const relational::QueryLog& log)
    : db_(db), table_(table), log_(log) {}

std::vector<RowId> KeywordPlusPlus::Results(
    const std::vector<std::string>& terms) const {
  const Table& table = db_.table(table_);
  if (terms.empty()) {
    std::vector<RowId> all(table.num_rows());
    for (RowId r = 0; r < table.num_rows(); ++r) all[r] = r;
    return all;
  }
  std::vector<RowId> rows = db_.MatchRows(table_, terms[0]);
  for (size_t i = 1; i < terms.size() && !rows.empty(); ++i) {
    const std::vector<RowId> other = db_.MatchRows(table_, terms[i]);
    std::vector<RowId> kept;
    std::set_intersection(rows.begin(), rows.end(), other.begin(),
                          other.end(), std::back_inserter(kept));
    rows.swap(kept);
  }
  return rows;
}

namespace {

/// Categorical distribution of a column over a row set.
std::map<Value, double> Distribution(const Table& table, ColumnId col,
                                     const std::vector<RowId>& rows) {
  std::map<Value, double> d;
  for (RowId r : rows) d[table.cell(r, col)] += 1;
  for (auto& [v, p] : d) p /= static_cast<double>(rows.size());
  return d;
}

struct Moments {
  double mean = 0, stddev = 0;
};

Moments NumericMoments(const Table& table, ColumnId col,
                       const std::vector<RowId>& rows) {
  Moments m;
  if (rows.empty()) return m;
  for (RowId r : rows) m.mean += table.cell(r, col).AsNumber();
  m.mean /= static_cast<double>(rows.size());
  for (RowId r : rows) {
    const double d = table.cell(r, col).AsNumber() - m.mean;
    m.stddev += d * d;
  }
  m.stddev = std::sqrt(m.stddev / static_cast<double>(rows.size()));
  return m;
}

}  // namespace

MappedPredicate KeywordPlusPlus::AnalyzeDqp(
    const std::vector<std::string>& background,
    const std::string& keyword) const {
  MappedPredicate best;
  best.kind = MappedPredicate::Kind::kContains;
  best.value = Value::Text(keyword);
  best.score = 0;
  std::vector<std::string> fg = background;
  fg.push_back(keyword);
  const std::vector<RowId> f_rows = Results(fg);
  const std::vector<RowId> b_rows = Results(background);
  if (f_rows.empty() || b_rows.size() < 2) return best;
  const Table& table = db_.table(table_);
  for (ColumnId c = 0; c < table.schema().columns.size(); ++c) {
    if (c == table.schema().primary_key) continue;
    const ValueType type = table.schema().columns[c].type;
    if (type == ValueType::kText) {
      // Categorical: the value whose foreground mass rises the most.
      const auto fd = Distribution(table, c, f_rows);
      const auto bd = Distribution(table, c, b_rows);
      for (const auto& [v, pf] : fd) {
        auto it = bd.find(v);
        const double pb = it == bd.end() ? 0 : it->second;
        const double score = pf * (pf - pb);
        if (score > best.score) {
          best.kind = MappedPredicate::Kind::kEquals;
          best.column = c;
          best.value = v;
          best.score = score;
        }
      }
    } else {
      // Numeric: a significant mean shift maps to an ORDER BY direction
      // (the 1-D earth-mover surrogate of slide 99).
      const Moments fm = NumericMoments(table, c, f_rows);
      const Moments bm = NumericMoments(table, c, b_rows);
      if (bm.stddev <= 1e-12) continue;
      const double shift = (fm.mean - bm.mean) / bm.stddev;
      const double score = std::min(1.0, std::abs(shift)) * 0.6;
      if (score > best.score) {
        best.kind = shift < 0 ? MappedPredicate::Kind::kOrderAsc
                              : MappedPredicate::Kind::kOrderDesc;
        best.column = c;
        best.value.reset();
        best.score = score;
      }
    }
  }
  if (best.score < min_score_) {
    best.kind = MappedPredicate::Kind::kContains;
    best.column = 0;
    best.value = Value::Text(keyword);
    best.score = 0;
  }
  return best;
}

MappedPredicate KeywordPlusPlus::MapKeyword(const std::string& keyword) const {
  // DQPs: logged queries containing the keyword give (background =
  // the other keywords); always include the synthetic empty background.
  std::set<std::vector<std::string>> backgrounds = {{}};
  for (const relational::LoggedQuery& q : log_) {
    if (backgrounds.size() >= 8) break;
    if (std::find(q.keywords.begin(), q.keywords.end(), keyword) ==
        q.keywords.end()) {
      continue;
    }
    std::vector<std::string> bg;
    for (const std::string& k : q.keywords) {
      if (k != keyword) bg.push_back(k);
    }
    std::sort(bg.begin(), bg.end());
    bg.erase(std::unique(bg.begin(), bg.end()), bg.end());
    backgrounds.insert(std::move(bg));
  }
  // Average the significance of identical mappings across DQPs; pick the
  // mapping with the best average.
  struct Agg {
    MappedPredicate pred;
    double total = 0;
    size_t count = 0;
  };
  std::map<std::string, Agg> agg;
  for (const auto& bg : backgrounds) {
    MappedPredicate p = AnalyzeDqp(bg, keyword);
    if (p.kind == MappedPredicate::Kind::kContains) continue;
    std::string key = std::to_string(static_cast<int>(p.kind)) + ":" +
                      std::to_string(p.column) + ":" +
                      (p.value ? p.value->ToString() : "");
    Agg& a = agg[key];
    a.pred = p;
    a.total += p.score;
    ++a.count;
  }
  MappedPredicate best;
  best.kind = MappedPredicate::Kind::kContains;
  best.value = Value::Text(keyword);
  double best_avg = min_score_;
  for (const auto& [key, a] : agg) {
    const double avg = a.total / static_cast<double>(a.count);
    if (avg >= best_avg) {
      best = a.pred;
      best.score = avg;
      best_avg = avg;
    }
  }
  return best;
}

TranslatedQuery KeywordPlusPlus::Translate(const std::string& query) const {
  TranslatedQuery out;
  const std::vector<std::string> tokens =
      db_.TextIndex(table_).tokenizer().Tokenize(query);
  if (tokens.empty()) return out;
  // 1-/2-gram segmentation DP (slide 100): prefer segments whose mapping
  // is significant.
  const size_t n = tokens.size();
  struct Cell {
    double score = -1;
    size_t from = 0;
    MappedPredicate pred;
  };
  std::vector<Cell> dp(n + 1);
  dp[0].score = 0;
  auto map_segment = [&](size_t i, size_t len) {
    // Single tokens map through the DQP machinery; 2-grams are mapped by
    // treating both tokens as one foreground delta with the first as
    // context.
    if (len == 1) return MapKeyword(tokens[i]);
    MappedPredicate p = AnalyzeDqp({tokens[i]}, tokens[i + 1]);
    return p;
  };
  for (size_t i = 0; i < n; ++i) {
    if (dp[i].score < 0) continue;
    for (size_t len = 1; len <= 2 && i + len <= n; ++len) {
      MappedPredicate p = map_segment(i, len);
      const double seg_score =
          p.kind == MappedPredicate::Kind::kContains ? 0.05 : p.score;
      if (dp[i].score + seg_score > dp[i + len].score) {
        dp[i + len].score = dp[i].score + seg_score;
        dp[i + len].from = i;
        dp[i + len].pred = p;
      }
    }
  }
  // Reconstruct.
  std::vector<std::pair<size_t, size_t>> spans;
  size_t cur = n;
  while (cur > 0) {
    const size_t from = dp[cur].from;
    spans.emplace_back(from, cur - from);
    cur = from;
  }
  std::reverse(spans.begin(), spans.end());
  const relational::TableSchema& schema = db_.table(table_).schema();
  std::string where;
  std::string order;
  for (const auto& [from, len] : spans) {
    std::vector<std::string> seg_tokens(tokens.begin() + from,
                                        tokens.begin() + from + len);
    out.segments.push_back(Join(seg_tokens, " "));
    MappedPredicate p = dp[from + len].pred;
    if (p.kind == MappedPredicate::Kind::kContains) {
      p.value = Value::Text(out.segments.back());
    }
    if (p.kind == MappedPredicate::Kind::kOrderAsc ||
        p.kind == MappedPredicate::Kind::kOrderDesc) {
      if (!order.empty()) order += ", ";
      order += schema.columns[p.column].name;
      order += p.kind == MappedPredicate::Kind::kOrderAsc ? " ASC" : " DESC";
    } else {
      if (!where.empty()) where += " AND ";
      where += p.ToString(schema);
    }
    out.predicates.push_back(std::move(p));
  }
  out.sql = "SELECT * FROM " + schema.name;
  if (!where.empty()) out.sql += " WHERE " + where;
  if (!order.empty()) out.sql += " ORDER BY " + order;
  return out;
}

}  // namespace kws::rewrite

#include "core/rewrite/related_queries.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

namespace kws::rewrite {

using relational::ColumnId;
using relational::RowId;
using relational::Table;
using relational::Value;
using relational::ValueType;

std::vector<RelatedQuery> RelatedByClicks(
    const std::vector<ClickRecord>& click_log, const std::string& query,
    double min_similarity) {
  // Ground truth of the probe query: union of its click sets in the log.
  std::set<text::DocId> mine;
  for (const ClickRecord& r : click_log) {
    if (r.query == query) mine.insert(r.clicked.begin(), r.clicked.end());
  }
  std::vector<RelatedQuery> out;
  if (mine.empty()) return out;
  // Aggregate other queries' click sets and compare.
  std::map<std::string, std::set<text::DocId>> others;
  for (const ClickRecord& r : click_log) {
    if (r.query == query) continue;
    others[r.query].insert(r.clicked.begin(), r.clicked.end());
  }
  for (const auto& [q, clicks] : others) {
    size_t inter = 0;
    for (text::DocId d : clicks) inter += mine.count(d);
    const size_t uni = mine.size() + clicks.size() - inter;
    const double sim =
        uni == 0 ? 0 : static_cast<double>(inter) / static_cast<double>(uni);
    if (sim >= min_similarity) out.push_back(RelatedQuery{q, sim});
  }
  std::sort(out.begin(), out.end(),
            [](const RelatedQuery& a, const RelatedQuery& b) {
              if (a.similarity != b.similarity) {
                return a.similarity > b.similarity;
              }
              return a.query < b.query;
            });
  return out;
}

namespace {

/// Histogram of `column` over the rows selecting `value` in
/// `select_column`. Numeric columns are bucketed by value decile over the
/// whole table.
std::map<std::string, double> ProfileColumn(const Table& table,
                                            ColumnId select_column,
                                            const Value& value,
                                            ColumnId column) {
  std::map<std::string, double> hist;
  double total = 0;
  for (RowId r = 0; r < table.num_rows(); ++r) {
    if (!(table.cell(r, select_column) == value)) continue;
    const Value& v = table.cell(r, column);
    std::string key;
    if (v.type() == ValueType::kText) {
      key = v.AsText();
    } else {
      // Coarse log-scale bucket keeps numeric profiles comparable.
      const double x = v.AsNumber();
      key = "b" + std::to_string(static_cast<int>(
                      std::floor(std::log10(std::abs(x) + 1.0) * 4)));
    }
    hist[key] += 1;
    total += 1;
  }
  for (auto& [k, p] : hist) p /= std::max(total, 1.0);
  return hist;
}

double HistogramOverlap(const std::map<std::string, double>& a,
                        const std::map<std::string, double>& b) {
  double overlap = 0;
  for (const auto& [k, pa] : a) {
    auto it = b.find(k);
    if (it != b.end()) overlap += std::min(pa, it->second);
  }
  return overlap;
}

}  // namespace

std::vector<std::pair<Value, double>> RelatedValues(
    const relational::Database& db, relational::TableId table_id,
    ColumnId column, const Value& value, size_t k) {
  const Table& table = db.table(table_id);
  // Candidate values: the distinct values of the column.
  std::set<Value> values;
  for (RowId r = 0; r < table.num_rows(); ++r) {
    values.insert(table.cell(r, column));
  }
  // Profile = per-other-column histograms of the selecting tuples.
  std::vector<ColumnId> other_cols;
  for (ColumnId c = 0; c < table.schema().columns.size(); ++c) {
    if (c != column && c != table.schema().primary_key) {
      other_cols.push_back(c);
    }
  }
  auto profile = [&](const Value& v) {
    std::vector<std::map<std::string, double>> p;
    for (ColumnId c : other_cols) {
      p.push_back(ProfileColumn(table, column, v, c));
    }
    return p;
  };
  const auto mine = profile(value);
  std::vector<std::pair<Value, double>> out;
  for (const Value& v : values) {
    if (v == value) continue;
    const auto theirs = profile(v);
    double sim = 0;
    for (size_t i = 0; i < other_cols.size(); ++i) {
      sim += HistogramOverlap(mine[i], theirs[i]);
    }
    if (!other_cols.empty()) sim /= static_cast<double>(other_cols.size());
    out.emplace_back(v, sim);
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  if (out.size() > k) out.resize(k);
  return out;
}

}  // namespace kws::rewrite

#include "core/select/db_selection.h"

#include <algorithm>
#include <cmath>

#include "text/tokenizer.h"

namespace kws::select {

void DatabaseSelector::AddDatabase(const std::string& name,
                                   const relational::Database* db) {
  auto entry = std::make_unique<Entry>();
  entry->name = name;
  entry->db = db;
  entry->graph = graph::BuildDataGraph(*db, options_.graph_options);
  entry->index = std::make_unique<graph::KeywordDistanceIndex>(
      entry->graph.graph, options_.max_distance);
  entries_.push_back(std::move(entry));
}

std::vector<DatabaseScore> DatabaseSelector::Rank(
    const std::string& query) const {
  const std::vector<std::string> keywords =
      text::Tokenizer().Tokenize(query);
  std::vector<DatabaseScore> out;
  for (size_t e = 0; e < entries_.size(); ++e) {
    const auto& entry = entries_[e];
    DatabaseScore ds;
    ds.name = entry->name;
    ds.index = e;
    const graph::DataGraph& g = entry->graph.graph;
    // Coverage: ln(1 + matches) per keyword.
    double coverage = 0;
    for (size_t ki = 0; ki < keywords.size(); ++ki) {
      const size_t matches = g.MatchNodes(keywords[ki]).size();
      if (matches > 0) {
        ++ds.keywords_covered;
        if (ki < 32) ds.covered_mask |= (1u << ki);
        coverage += std::log(1.0 + static_cast<double>(matches));
      }
    }
    // Relationship: keyword pairs with some match of one within
    // max_distance of some match of the other.
    double relationship = 0;
    for (size_t i = 0; i < keywords.size(); ++i) {
      entry->index->IndexTerm(keywords[i]);
    }
    for (size_t i = 0; i < keywords.size(); ++i) {
      for (size_t j = i + 1; j < keywords.size(); ++j) {
        bool related = false;
        for (graph::NodeId m : g.MatchNodes(keywords[i])) {
          if (entry->index->Distance(m, keywords[j]) <=
              options_.max_distance) {
            related = true;
            break;
          }
        }
        if (related) {
          ++ds.joinable_pairs;
          relationship += 1.0;
        }
      }
    }
    ds.score = coverage + options_.relationship_weight * relationship;
    out.push_back(std::move(ds));
  }
  // Registration index breaks score ties: a pure function of AddDatabase
  // order, unlike names (callers may register duplicates) — shard pruning
  // built on this ranking must be reproducible everywhere.
  std::sort(out.begin(), out.end(),
            [](const DatabaseScore& a, const DatabaseScore& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.index < b.index;
            });
  return out;
}

}  // namespace kws::select

#ifndef KWDB_CORE_SELECT_DB_SELECTION_H_
#define KWDB_CORE_SELECT_DB_SELECTION_H_

#include <memory>
#include <string>
#include <vector>

#include "graph/blinks_index.h"
#include "graph/data_graph.h"
#include "relational/database.h"

namespace kws::select {

/// Per-database score breakdown.
struct DatabaseScore {
  std::string name;
  /// Registration index of the database (AddDatabase order). Equal-score
  /// databases rank in this order, so rankings — and any pruning built on
  /// them — are reproducible across platforms and std::sort
  /// implementations.
  size_t index = 0;
  double score = 0;
  /// Coverage part: how many query keywords match at all.
  size_t keywords_covered = 0;
  /// Bit i set when query keyword i (tokenized order, first 32 only)
  /// matches somewhere in the database. `kws::shard` compares these masks
  /// across shards to prune shards that miss a keyword every answer needs.
  uint32_t covered_mask = 0;
  /// Relationship part: how many keyword pairs are joinable within the
  /// distance bound.
  size_t joinable_pairs = 0;
};

/// Tuning knobs for keyword-relationship database selection.
struct SelectorOptions {
  /// Maximum join distance for two keywords to count as related (the
  /// keyword-relationship radius of Yu et al.).
  double max_distance = 4.0;
  /// Weight of the relationship part vs the coverage part.
  double relationship_weight = 2.0;
  /// Edge weights for the per-database data graphs. The default
  /// (degree-weighted backward edges) matches BANKS II ranking; pruning
  /// that needs `Distance` to bound *hop* counts (`kws::shard`) must set
  /// `degree_weighted_backward = false` for unit weights.
  graph::GraphBuildOptions graph_options = {};
};

/// Keyword-based selection of relational databases (Yu et al.,
/// SIGMOD 07; tutorial slide 168): in a multi-database setting, rank the
/// databases most likely to answer a keyword query — not merely the ones
/// *containing* the keywords, but the ones where the keywords are
/// *joinably related*. Scores combine idf-weighted keyword coverage with
/// a keyword-relationship measure: the number of keyword pairs connected
/// within a distance bound in the database's data graph.
class DatabaseSelector {
 public:
  explicit DatabaseSelector(SelectorOptions options = {})
      : options_(options) {}

  /// Registers a database (must outlive the selector); builds its data
  /// graph and distance machinery.
  void AddDatabase(const std::string& name, const relational::Database* db);

  /// Ranks all registered databases for `query`, best first.
  std::vector<DatabaseScore> Rank(const std::string& query) const;

  size_t num_databases() const { return entries_.size(); }

 private:
  struct Entry {
    std::string name;
    const relational::Database* db = nullptr;
    graph::RelationalGraph graph;
    std::unique_ptr<graph::KeywordDistanceIndex> index;
  };

  SelectorOptions options_;
  std::vector<std::unique_ptr<Entry>> entries_;
};

}  // namespace kws::select

#endif  // KWDB_CORE_SELECT_DB_SELECTION_H_

#ifndef KWDB_CORE_ANALYZE_RANKING_H_
#define KWDB_CORE_ANALYZE_RANKING_H_

#include <string>
#include <vector>

#include "core/steiner/answer_tree.h"
#include "graph/data_graph.h"

namespace kws::analyze {

/// Weights of the three ranking-factor families the tutorial surveys
/// (slides 144-145): content (TF-IDF over the answer's node texts),
/// proximity (compactness of the answer tree), and authority
/// (PageRank-style node prestige).
struct RankWeights {
  double content = 1.0;
  double proximity = 1.0;
  double authority = 0.5;
};

/// A composite-scored answer.
struct RankedAnswer {
  steiner::AnswerTree tree;
  double content = 0;
  double proximity = 0;
  double authority = 0;
  double total = 0;
};

/// Composite ranking of graph answers:
///  - content: sum over query keywords of ln(1+tf) * ln(1+N/df) over the
///    answer's nodes (the vector-space adaptation of slide 144);
///  - proximity: 1 / (1 + cost) (slide 145's weighted tree size);
///  - authority: mean PageRank of the answer's nodes, normalized by the
///    graph's max (slide 145's adaptation of PageRank).
/// Results are returned best-first.
std::vector<RankedAnswer> RankAnswers(const graph::DataGraph& g,
                                      std::vector<steiner::AnswerTree> trees,
                                      const std::vector<std::string>& keywords,
                                      const std::vector<double>& pagerank,
                                      const RankWeights& weights = {});

}  // namespace kws::analyze

#endif  // KWDB_CORE_ANALYZE_RANKING_H_

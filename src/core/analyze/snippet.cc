#include "core/analyze/snippet.h"

#include <algorithm>
#include <map>
#include <set>

#include "text/tokenizer.h"

namespace kws::analyze {

using xml::XmlNodeId;
using xml::XmlTree;

std::vector<SnippetItem> GenerateSnippet(const XmlTree& tree,
                                         const xml::PathStatistics& stats,
                                         XmlNodeId result_root,
                                         const std::vector<std::string>& keywords,
                                         const SnippetOptions& options) {
  std::vector<SnippetItem> items;
  std::set<XmlNodeId> chosen;
  const XmlNodeId end = tree.SubtreeEnd(result_root);
  text::Tokenizer tokenizer;

  auto add = [&](XmlNodeId n, SnippetItem::Reason reason) {
    if (items.size() >= options.max_items) return false;
    if (!chosen.insert(n).second) return true;
    items.push_back(SnippetItem{n, reason});
    return true;
  };

  // 1. Key of the result: the first non-repeatable text child ("name",
  //    "title", ...) identifies the result — self-containment.
  for (XmlNodeId c : tree.children(result_root)) {
    auto it = stats.path_repeatable.find(tree.LabelPath(c));
    const bool repeatable = it != stats.path_repeatable.end() && it->second;
    if (!repeatable && !tree.text(c).empty()) {
      add(c, SnippetItem::Reason::kKey);
      break;
    }
  }
  // 2. One match node per query keyword — query bias.
  for (const std::string& k : keywords) {
    for (XmlNodeId m : tree.MatchNodes(k)) {
      if (m >= result_root && m <= end) {
        add(m, SnippetItem::Reason::kKeyword);
        break;
      }
    }
  }
  // 3. Dominant features: the most frequent (tag, text) pairs among the
  //    result's descendants — informativeness.
  std::map<std::pair<std::string, std::string>, size_t> feature_counts;
  std::map<std::pair<std::string, std::string>, XmlNodeId> feature_node;
  for (XmlNodeId n = result_root; n <= end; ++n) {
    if (tree.text(n).empty()) continue;
    const std::vector<std::string> toks = tokenizer.Tokenize(tree.text(n));
    for (const std::string& t : toks) {
      const auto key = std::make_pair(tree.tag(n), t);
      ++feature_counts[key];
      feature_node.emplace(key, n);
    }
  }
  std::vector<std::pair<size_t, std::pair<std::string, std::string>>> ranked;
  for (const auto& [key, count] : feature_counts) {
    ranked.emplace_back(count, key);
  }
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });
  for (const auto& [count, key] : ranked) {
    if (items.size() >= options.max_items) break;
    if (count < 2) break;  // dominant means repeated
    add(feature_node[key], SnippetItem::Reason::kDominantFeature);
  }
  // 4. Pad with entity children if there is room.
  for (XmlNodeId c : tree.children(result_root)) {
    if (items.size() >= options.max_items) break;
    auto it = stats.path_repeatable.find(tree.LabelPath(c));
    if (it != stats.path_repeatable.end() && it->second) {
      add(c, SnippetItem::Reason::kEntity);
    }
  }
  std::sort(items.begin(), items.end(),
            [](const SnippetItem& a, const SnippetItem& b) {
              return a.node < b.node;
            });
  return items;
}

std::string SnippetToString(const XmlTree& tree,
                            const std::vector<SnippetItem>& items) {
  std::string out;
  for (const SnippetItem& item : items) {
    out += tree.LabelPath(item.node);
    out += ": ";
    out += tree.text(item.node);
    out += '\n';
  }
  return out;
}

}  // namespace kws::analyze

#ifndef KWDB_CORE_ANALYZE_CLUSTERING_H_
#define KWDB_CORE_ANALYZE_CLUSTERING_H_

#include <string>
#include <vector>

#include "xml/tree.h"

namespace kws::analyze {

/// One cluster of XML results.
struct ResultCluster {
  /// Human-readable cluster label (a context path or a role signature).
  std::string label;
  /// Result roots in the cluster, document order.
  std::vector<xml::XmlNodeId> results;
  double score = 0;
};

/// XBridge context clustering (Li et al., EDBT 10; tutorial slides
/// 156-160): results (SLCA roots) are grouped by the label path of their
/// root — papers under /bib/conference vs /bib/journal land in different
/// clusters. Cluster score = sum of the top-R individual result scores,
/// R = min(average cluster size, |cluster|), so big clusters do not win
/// by bulk. Individual results score by content (tf * inverse element
/// frequency) and structural proximity (root-to-keyword path lengths,
/// discounted beyond the average document depth, with shared path
/// segments counted once). Clusters returned best-first.
std::vector<ResultCluster> ClusterByContext(
    const xml::XmlTree& tree, const std::vector<xml::XmlNodeId>& results,
    const std::vector<std::string>& keywords);

/// Describable clustering (Liu & Chen, TODS 10; slides 161-162): results
/// are grouped by the *roles* their keyword matches play — the label
/// paths (relative to the result root) at which each keyword matched —
/// so each cluster has a describable semantics ("Tom as seller" vs "Tom
/// as buyer"). Clusters are ordered by size, largest first.
std::vector<ResultCluster> ClusterByKeywordRoles(
    const xml::XmlTree& tree, const std::vector<xml::XmlNodeId>& results,
    const std::vector<std::string>& keywords);

/// Individual result score used by ClusterByContext (exposed for tests):
/// content weight minus the discounted structural distance.
double XBridgeResultScore(const xml::XmlTree& tree, xml::XmlNodeId root,
                          const std::vector<std::string>& keywords,
                          double avg_depth);

/// Granularity control for describable clustering (Liu & Chen TODS 10,
/// slide 162): refines one role-cluster by the *context* of the keyword
/// matches — the label path of each match's parent — then, to respect the
/// `max_clusters` bound while keeping clusters balanced, repeatedly
/// merges the two smallest sub-clusters (the paper solves this split by
/// dynamic programming; greedy smallest-pair merging is the standard
/// approximation and preserves describability: a merged cluster's label
/// is the union of its context signatures).
std::vector<ResultCluster> SplitClusterByContext(
    const xml::XmlTree& tree, const ResultCluster& cluster,
    const std::vector<std::string>& keywords, size_t max_clusters);

}  // namespace kws::analyze

#endif  // KWDB_CORE_ANALYZE_CLUSTERING_H_

#include "core/analyze/aggregate.h"

#include <algorithm>
#include <map>

#include "common/topk.h"

namespace kws::analyze {

using relational::ColumnId;
using relational::RowId;
using relational::Table;
using relational::Value;

std::string AggregateGroup::ToString(
    const relational::Database& db, relational::TableId table,
    const std::vector<ColumnId>& columns) const {
  std::string out;
  const auto& schema = db.table(table).schema();
  for (size_t i = 0; i < columns.size(); ++i) {
    if (i > 0) out += ' ';
    out += schema.columns[columns[i]].name + "=";
    out += shared_values[i].has_value() ? shared_values[i]->ToString() : "*";
  }
  out += " (" + std::to_string(rows.size()) + " rows)";
  return out;
}

std::string CubeCell::ToString(const relational::Database& db,
                               relational::TableId table,
                               const std::vector<ColumnId>& columns) const {
  std::string out = "{";
  const auto& schema = db.table(table).schema();
  for (size_t i = 0; i < columns.size(); ++i) {
    if (i > 0) out += ", ";
    out += schema.columns[columns[i]].name + ":";
    out += dims[i].has_value() ? dims[i]->ToString() : "*";
  }
  out += "}";
  return out;
}

namespace {

/// Keyword-coverage mask per row.
std::vector<uint32_t> RowMasks(const relational::Database& db,
                               relational::TableId table,
                               const std::vector<std::string>& keywords,
                               size_t num_rows) {
  std::vector<uint32_t> masks(num_rows, 0);
  for (size_t k = 0; k < keywords.size(); ++k) {
    for (RowId r : db.MatchRows(table, keywords[k])) {
      masks[r] |= (1u << k);
    }
  }
  return masks;
}

}  // namespace

std::vector<AggregateGroup> AggregateKeywordSearch(
    const relational::Database& db, relational::TableId table,
    const std::vector<ColumnId>& interesting_columns,
    const std::vector<std::string>& keywords) {
  const Table& t = db.table(table);
  const uint32_t full = (1u << keywords.size()) - 1;
  const std::vector<uint32_t> masks =
      RowMasks(db, table, keywords, t.num_rows());

  // For every nonempty subset of interesting columns, group rows by their
  // values and keep covering groups.
  struct RawGroup {
    uint32_t subset = 0;  // bitmask over interesting_columns
    std::vector<std::optional<Value>> values;
    std::vector<RowId> rows;
  };
  std::vector<RawGroup> covering;
  const size_t nc = interesting_columns.size();
  for (uint32_t subset = 1; subset < (1u << nc); ++subset) {
    std::map<std::vector<std::string>, RawGroup> groups;
    for (RowId r = 0; r < t.num_rows(); ++r) {
      std::vector<std::string> key;
      std::vector<std::optional<Value>> values(nc);
      for (size_t c = 0; c < nc; ++c) {
        if ((subset >> c) & 1u) {
          const Value& v = t.cell(r, interesting_columns[c]);
          key.push_back(v.ToString());
          values[c] = v;
        }
      }
      RawGroup& g = groups[key];
      if (g.rows.empty()) {
        g.subset = subset;
        g.values = values;
      }
      g.rows.push_back(r);
    }
    for (auto& [key, g] : groups) {
      uint32_t cover = 0;
      for (RowId r : g.rows) cover |= masks[r];
      if (cover == full) covering.push_back(std::move(g));
    }
  }
  // Dominance pruning: drop a group when a strictly more specific
  // covering group agrees with it on all its bound attributes.
  std::vector<AggregateGroup> out;
  for (const RawGroup& g : covering) {
    bool dominated = false;
    for (const RawGroup& other : covering) {
      if (other.subset == g.subset ||
          (other.subset & g.subset) != g.subset) {
        continue;  // not strictly more specific
      }
      bool consistent = true;
      for (size_t c = 0; c < nc && consistent; ++c) {
        if ((g.subset >> c) & 1u) {
          consistent = other.values[c].has_value() &&
                       *other.values[c] == *g.values[c];
        }
      }
      if (consistent) {
        dominated = true;
        break;
      }
    }
    if (dominated) continue;
    AggregateGroup ag;
    ag.shared_values = g.values;
    ag.rows = g.rows;
    ag.specificity = static_cast<size_t>(__builtin_popcount(g.subset));
    out.push_back(std::move(ag));
  }
  std::sort(out.begin(), out.end(),
            [](const AggregateGroup& a, const AggregateGroup& b) {
              if (a.specificity != b.specificity) {
                return a.specificity > b.specificity;
              }
              if (a.rows.size() != b.rows.size()) {
                return a.rows.size() < b.rows.size();
              }
              return a.rows < b.rows;
            });
  return out;
}

std::vector<CubeCell> TopCells(const relational::Database& db,
                               relational::TableId table,
                               const std::vector<ColumnId>& dimensions,
                               const std::string& query, size_t k,
                               size_t min_support) {
  const Table& t = db.table(table);
  const std::vector<std::string> terms =
      db.TextIndex(table).tokenizer().Tokenize(query);
  // Per-row relevance.
  std::vector<double> relevance(t.num_rows(), 0);
  for (RowId r = 0; r < t.num_rows(); ++r) {
    relevance[r] = db.TextIndex(table).Score(r, terms);
  }
  TopK<CubeCell> top(k);
  const size_t nd = dimensions.size();
  for (uint32_t subset = 0; subset < (1u << nd); ++subset) {
    std::map<std::vector<std::string>, CubeCell> cells;
    for (RowId r = 0; r < t.num_rows(); ++r) {
      std::vector<std::string> key;
      std::vector<std::optional<Value>> dims(nd);
      for (size_t d = 0; d < nd; ++d) {
        if ((subset >> d) & 1u) {
          const Value& v = t.cell(r, dimensions[d]);
          key.push_back(v.ToString());
          dims[d] = v;
        }
      }
      CubeCell& cell = cells[key];
      if (cell.rows.empty()) cell.dims = dims;
      cell.rows.push_back(r);
    }
    for (auto& [key, cell] : cells) {
      cell.support = cell.rows.size();
      if (cell.support < min_support) continue;
      double sum = 0;
      for (RowId r : cell.rows) sum += relevance[r];
      cell.avg_relevance = sum / static_cast<double>(cell.support);
      if (cell.avg_relevance <= 0) continue;
      top.Offer(cell.avg_relevance, std::move(cell));
    }
  }
  std::vector<CubeCell> out;
  for (auto& [score, cell] : top.TakeSorted()) out.push_back(std::move(cell));
  return out;
}

}  // namespace kws::analyze

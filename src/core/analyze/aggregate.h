#ifndef KWDB_CORE_ANALYZE_AGGREGATE_H_
#define KWDB_CORE_ANALYZE_AGGREGATE_H_

#include <optional>
#include <string>
#include <vector>

#include "relational/database.h"
#include "text/inverted_index.h"

namespace kws::analyze {

/// One aggregate answer (tutorial slides 16, 164-165): a group of tuples
/// sharing values on a subset of the user's interesting attributes, whose
/// union of text covers every query keyword.
struct AggregateGroup {
  /// One optional value per interesting attribute; unset renders as "*".
  std::vector<std::optional<relational::Value>> shared_values;
  std::vector<relational::RowId> rows;
  /// Number of bound (non-*) attributes — higher is more specific.
  size_t specificity = 0;

  /// Renders the group key and metrics for snippet display.
  std::string ToString(const relational::Database& db,
                       relational::TableId table,
                       const std::vector<relational::ColumnId>& columns) const;
};

/// Table analysis (Zhou & Pei, EDBT 09): clusters the table's rows by
/// every subset of `interesting_columns` and keeps the groups covering
/// all keywords, pruning dominated groups — a group is dominated when a
/// strictly more specific group covers the keywords with a subset of its
/// rows' attribute bindings. Most specific groups first; within equal
/// specificity, smaller groups first.
std::vector<AggregateGroup> AggregateKeywordSearch(
    const relational::Database& db, relational::TableId table,
    const std::vector<relational::ColumnId>& interesting_columns,
    const std::vector<std::string>& keywords);

/// A text-cube cell (Ding et al., ICDE 10; slides 166-167): a partial
/// assignment of dimension values plus its aggregated documents.
struct CubeCell {
  std::vector<std::optional<relational::Value>> dims;
  std::vector<relational::RowId> rows;
  size_t support = 0;
  double avg_relevance = 0;

  /// Renders the cluster label and aggregate relevance.
  std::string ToString(const relational::Database& db,
                       relational::TableId table,
                       const std::vector<relational::ColumnId>& columns) const;
};

/// TopCells keyword search on a text cube: the top-k cells over the given
/// dimensions with support >= `min_support`, ranked by the average
/// relevance of their rows' text to the query.
std::vector<CubeCell> TopCells(
    const relational::Database& db, relational::TableId table,
    const std::vector<relational::ColumnId>& dimensions,
    const std::string& query, size_t k, size_t min_support = 2);

}  // namespace kws::analyze

#endif  // KWDB_CORE_ANALYZE_AGGREGATE_H_

#ifndef KWDB_CORE_ANALYZE_DIFFERENTIATION_H_
#define KWDB_CORE_ANALYZE_DIFFERENTIATION_H_

#include <cstdint>
#include <string>
#include <vector>

namespace kws::analyze {

/// A feature of a result: a typed name ("paper:title") and a value.
struct Feature {
  std::string type;
  std::string value;

  bool operator==(const Feature& o) const {
    return type == o.type && value == o.value;
  }
  bool operator<(const Feature& o) const {
    return type != o.type ? type < o.type : value < o.value;
  }
};

/// One result's full feature set (input) or selected subset (output).
using FeatureSet = std::vector<Feature>;

/// Degree of Differentiation of a selection (one FeatureSet per result):
/// over all result pairs, the number of feature types where the two
/// selections differ — either different values or presence vs absence
/// (Liu et al., VLDB 09; tutorial slides 149-153).
double DegreeOfDifferentiation(const std::vector<FeatureSet>& selection);

/// Tuning knobs for the greedy/local-search feature differentiation.
struct DifferentiationOptions {
  /// Maximum features kept per result (the "concise" bound).
  size_t max_features = 3;
  /// Swap-improvement rounds for the local-search algorithm.
  size_t max_rounds = 8;
};

/// Baseline: each result keeps its `max_features` most frequent features
/// (a summary, but not necessarily differentiating).
std::vector<FeatureSet> SelectTopFeatures(
    const std::vector<FeatureSet>& results,
    const DifferentiationOptions& options = {});

/// Swap-based local search achieving weak local optimality: starting from
/// the baseline, repeatedly replace one selected feature of one result by
/// an unselected one when that increases the DoD; stops at a fixed point
/// or after max_rounds. (The exact optimum is NP-hard.)
std::vector<FeatureSet> SelectDifferentiatingFeatures(
    const std::vector<FeatureSet>& results,
    const DifferentiationOptions& options = {});

/// Strong local optimality (Liu et al.'s stronger guarantee): no result
/// can improve the DoD by replacing its whole selection with ANY other
/// <= max_features subset of its features (exhaustive per result, holding
/// the others fixed); iterated to a fixed point. Feature pools are capped
/// at `max_pool` per result to bound the subset enumeration.
std::vector<FeatureSet> SelectStrongLocalOptimal(
    const std::vector<FeatureSet>& results,
    const DifferentiationOptions& options = {}, size_t max_pool = 12);

/// Renders a selection as the slide-151 comparison table: one row per
/// feature type, one column per result, "-" for absent values.
std::string RenderComparisonTable(const std::vector<FeatureSet>& selection,
                                  const std::vector<std::string>& headers);

}  // namespace kws::analyze

#endif  // KWDB_CORE_ANALYZE_DIFFERENTIATION_H_

#include "core/analyze/clustering.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

namespace kws::analyze {

using xml::XmlNodeId;
using xml::XmlTree;

double XBridgeResultScore(const XmlTree& tree, XmlNodeId root,
                          const std::vector<std::string>& keywords,
                          double avg_depth) {
  const XmlNodeId end = tree.SubtreeEnd(root);
  double content = 0;
  // Nodes on root->match paths; shared segments counted once (slide 160).
  std::set<XmlNodeId> path_nodes;
  for (const std::string& k : keywords) {
    const std::vector<XmlNodeId>& matches = tree.MatchNodes(k);
    // ief = N / #nodes containing the token (slide 158).
    const double ief =
        static_cast<double>(tree.size()) /
        std::max<size_t>(matches.size(), 1);
    XmlNodeId chosen = xml::kNoXmlNode;
    for (XmlNodeId m : matches) {
      if (m >= root && m <= end) {
        chosen = m;
        break;
      }
    }
    if (chosen == xml::kNoXmlNode) continue;
    content += std::log(ief);
    XmlNodeId cur = chosen;
    while (cur != root) {
      path_nodes.insert(cur);
      cur = tree.parent(cur);
    }
  }
  // Structural proximity with the long-path discount (slide 159):
  // distance beyond the average document depth counts half.
  double dist = static_cast<double>(path_nodes.size());
  if (dist > avg_depth) dist = avg_depth + (dist - avg_depth) * 0.5;
  return content - dist;
}

std::vector<ResultCluster> ClusterByContext(
    const XmlTree& tree, const std::vector<XmlNodeId>& results,
    const std::vector<std::string>& keywords) {
  // Average depth for the proximity discount.
  double avg_depth = 0;
  for (XmlNodeId n = 0; n < tree.size(); ++n) avg_depth += tree.depth(n);
  avg_depth /= std::max<size_t>(tree.size(), 1);

  std::map<std::string, ResultCluster> by_path;
  std::map<std::string, std::vector<double>> scores;
  for (XmlNodeId r : results) {
    const std::string path = tree.LabelPath(r);
    ResultCluster& c = by_path[path];
    c.label = path;
    c.results.push_back(r);
    scores[path].push_back(XBridgeResultScore(tree, r, keywords, avg_depth));
  }
  // Cluster score: top-R results, R = min(avg cluster size, |cluster|).
  const double avg_size =
      by_path.empty()
          ? 0
          : static_cast<double>(results.size()) /
                static_cast<double>(by_path.size());
  std::vector<ResultCluster> out;
  for (auto& [path, cluster] : by_path) {
    std::vector<double>& s = scores[path];
    std::sort(s.rbegin(), s.rend());
    const size_t r = std::min<size_t>(
        s.size(), static_cast<size_t>(std::max(avg_size, 1.0)));
    cluster.score = 0;
    for (size_t i = 0; i < r; ++i) cluster.score += s[i];
    out.push_back(std::move(cluster));
  }
  std::sort(out.begin(), out.end(),
            [](const ResultCluster& a, const ResultCluster& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.label < b.label;
            });
  return out;
}

std::vector<ResultCluster> ClusterByKeywordRoles(
    const XmlTree& tree, const std::vector<XmlNodeId>& results,
    const std::vector<std::string>& keywords) {
  std::map<std::string, ResultCluster> by_role;
  for (XmlNodeId r : results) {
    const XmlNodeId end = tree.SubtreeEnd(r);
    // Role signature: for each keyword, the tag of its first match node
    // within the result (the role the keyword plays).
    std::string signature;
    for (const std::string& k : keywords) {
      signature += k + "@";
      bool found = false;
      for (XmlNodeId m : tree.MatchNodes(k)) {
        if (m >= r && m <= end) {
          signature += tree.tag(m);
          found = true;
          break;
        }
      }
      if (!found) signature += "-";
      signature += " ";
    }
    ResultCluster& c = by_role[signature];
    c.label = signature;
    c.results.push_back(r);
  }
  std::vector<ResultCluster> out;
  for (auto& [sig, cluster] : by_role) {
    cluster.score = static_cast<double>(cluster.results.size());
    out.push_back(std::move(cluster));
  }
  std::sort(out.begin(), out.end(),
            [](const ResultCluster& a, const ResultCluster& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.label < b.label;
            });
  return out;
}

std::vector<ResultCluster> SplitClusterByContext(
    const XmlTree& tree, const ResultCluster& cluster,
    const std::vector<std::string>& keywords, size_t max_clusters) {
  std::vector<ResultCluster> out;
  if (max_clusters == 0) return out;
  // Context signature: per keyword, the label path of the first match's
  // parent inside the result.
  std::map<std::string, ResultCluster> by_context;
  for (XmlNodeId r : cluster.results) {
    const XmlNodeId end = tree.SubtreeEnd(r);
    std::string signature;
    for (const std::string& k : keywords) {
      for (XmlNodeId m : tree.MatchNodes(k)) {
        if (m < r || m > end) continue;
        const XmlNodeId ctx = m == 0 ? 0 : tree.parent(m);
        signature += k + "@" + tree.LabelPath(ctx) + " ";
        break;
      }
    }
    ResultCluster& c = by_context[signature];
    c.label = signature;
    c.results.push_back(r);
  }
  for (auto& [sig, c] : by_context) {
    c.score = static_cast<double>(c.results.size());
    out.push_back(std::move(c));
  }
  // Merge smallest pairs until the bound holds.
  auto smallest = [&]() {
    size_t idx = 0;
    for (size_t i = 1; i < out.size(); ++i) {
      if (out[i].results.size() < out[idx].results.size()) idx = i;
    }
    return idx;
  };
  while (out.size() > max_clusters) {
    const size_t a = smallest();
    ResultCluster merged = std::move(out[a]);
    out.erase(out.begin() + static_cast<long>(a));
    const size_t b = smallest();
    out[b].label += "| " + merged.label;
    out[b].results.insert(out[b].results.end(), merged.results.begin(),
                          merged.results.end());
    std::sort(out[b].results.begin(), out[b].results.end());
    out[b].score = static_cast<double>(out[b].results.size());
  }
  std::sort(out.begin(), out.end(),
            [](const ResultCluster& a, const ResultCluster& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.label < b.label;
            });
  return out;
}

}  // namespace kws::analyze

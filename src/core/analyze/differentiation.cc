#include "core/analyze/differentiation.h"

#include <algorithm>
#include <map>
#include <set>

namespace kws::analyze {

namespace {

/// Per-type values of one selection (a result never selects two values of
/// the same type here; if it does, the set comparison still works).
std::map<std::string, std::set<std::string>> ByType(const FeatureSet& fs) {
  std::map<std::string, std::set<std::string>> m;
  for (const Feature& f : fs) m[f.type].insert(f.value);
  return m;
}

double PairDod(const FeatureSet& a, const FeatureSet& b) {
  const auto ma = ByType(a);
  const auto mb = ByType(b);
  std::set<std::string> types;
  for (const auto& [t, v] : ma) types.insert(t);
  for (const auto& [t, v] : mb) types.insert(t);
  double dod = 0;
  for (const std::string& t : types) {
    auto ia = ma.find(t);
    auto ib = mb.find(t);
    if (ia == ma.end() || ib == mb.end()) {
      dod += 1;  // present in one only
    } else if (ia->second != ib->second) {
      dod += 1;  // both present, different values
    }
  }
  return dod;
}

}  // namespace

double DegreeOfDifferentiation(const std::vector<FeatureSet>& selection) {
  double total = 0;
  for (size_t i = 0; i < selection.size(); ++i) {
    for (size_t j = i + 1; j < selection.size(); ++j) {
      total += PairDod(selection[i], selection[j]);
    }
  }
  return total;
}

std::vector<FeatureSet> SelectTopFeatures(
    const std::vector<FeatureSet>& results,
    const DifferentiationOptions& options) {
  // Global feature frequency.
  std::map<Feature, size_t> freq;
  for (const FeatureSet& fs : results) {
    for (const Feature& f : fs) ++freq[f];
  }
  std::vector<FeatureSet> out;
  for (const FeatureSet& fs : results) {
    FeatureSet sorted = fs;
    std::sort(sorted.begin(), sorted.end(),
              [&](const Feature& a, const Feature& b) {
                const size_t fa = freq[a], fb = freq[b];
                if (fa != fb) return fa > fb;
                return a < b;
              });
    if (sorted.size() > options.max_features) {
      sorted.resize(options.max_features);
    }
    out.push_back(std::move(sorted));
  }
  return out;
}

std::vector<FeatureSet> SelectDifferentiatingFeatures(
    const std::vector<FeatureSet>& results,
    const DifferentiationOptions& options) {
  std::vector<FeatureSet> selection = SelectTopFeatures(results, options);
  // DoD contribution of result i against all others.
  auto dod_of = [&](size_t i) {
    double d = 0;
    for (size_t j = 0; j < selection.size(); ++j) {
      if (j != i) d += PairDod(selection[i], selection[j]);
    }
    return d;
  };
  for (size_t round = 0; round < options.max_rounds; ++round) {
    bool improved = false;
    for (size_t i = 0; i < results.size(); ++i) {
      double current = dod_of(i);
      // Try replacing each selected feature with each unselected one.
      for (size_t s = 0; s < selection[i].size(); ++s) {
        for (const Feature& candidate : results[i]) {
          if (std::find(selection[i].begin(), selection[i].end(),
                        candidate) != selection[i].end()) {
            continue;
          }
          const Feature old = selection[i][s];
          selection[i][s] = candidate;
          const double with_swap = dod_of(i);
          if (with_swap > current + 1e-12) {
            current = with_swap;
            improved = true;
          } else {
            selection[i][s] = old;
          }
        }
      }
      // Results with spare capacity may also add features.
      if (selection[i].size() < options.max_features) {
        for (const Feature& candidate : results[i]) {
          if (selection[i].size() >= options.max_features) break;
          if (std::find(selection[i].begin(), selection[i].end(),
                        candidate) != selection[i].end()) {
            continue;
          }
          selection[i].push_back(candidate);
          const double with_add = dod_of(i);
          if (with_add > current + 1e-12) {
            current = with_add;
            improved = true;
          } else {
            selection[i].pop_back();
          }
        }
      }
    }
    if (!improved) break;
  }
  return selection;
}

std::vector<FeatureSet> SelectStrongLocalOptimal(
    const std::vector<FeatureSet>& results,
    const DifferentiationOptions& options, size_t max_pool) {
  // Start from the (weakly optimal) swap solution.
  std::vector<FeatureSet> selection =
      SelectDifferentiatingFeatures(results, options);
  auto dod_of = [&](size_t i) {
    double d = 0;
    for (size_t j = 0; j < selection.size(); ++j) {
      if (j != i) d += PairDod(selection[i], selection[j]);
    }
    return d;
  };
  for (size_t round = 0; round < options.max_rounds; ++round) {
    bool improved = false;
    for (size_t i = 0; i < results.size(); ++i) {
      FeatureSet pool = results[i];
      if (pool.size() > max_pool) pool.resize(max_pool);
      const size_t n = pool.size();
      if (n > 20) continue;  // subset enumeration guard
      double best = dod_of(i);
      FeatureSet best_set = selection[i];
      // All subsets of size <= max_features.
      for (uint32_t mask = 1; mask < (1u << n); ++mask) {
        if (static_cast<size_t>(__builtin_popcount(mask)) >
            options.max_features) {
          continue;
        }
        FeatureSet candidate;
        for (size_t b = 0; b < n; ++b) {
          if ((mask >> b) & 1u) candidate.push_back(pool[b]);
        }
        selection[i] = candidate;
        const double d = dod_of(i);
        if (d > best + 1e-12) {
          best = d;
          best_set = std::move(candidate);
          improved = true;
        }
      }
      selection[i] = std::move(best_set);
    }
    if (!improved) break;
  }
  return selection;
}

std::string RenderComparisonTable(const std::vector<FeatureSet>& selection,
                                  const std::vector<std::string>& headers) {
  // Collect all feature types, then per result the values per type.
  std::set<std::string> types;
  for (const FeatureSet& fs : selection) {
    for (const Feature& f : fs) types.insert(f.type);
  }
  auto cell = [&](size_t result, const std::string& type) {
    std::string value;
    for (const Feature& f : selection[result]) {
      if (f.type != type) continue;
      if (!value.empty()) value += ", ";
      value += f.value;
    }
    return value.empty() ? std::string("-") : value;
  };
  std::string out = "feature";
  for (size_t r = 0; r < selection.size(); ++r) {
    out += " | ";
    out += r < headers.size() ? headers[r]
                              : "result " + std::to_string(r + 1);
  }
  out += '\n';
  for (const std::string& type : types) {
    out += type;
    for (size_t r = 0; r < selection.size(); ++r) {
      out += " | " + cell(r, type);
    }
    out += '\n';
  }
  return out;
}

}  // namespace kws::analyze

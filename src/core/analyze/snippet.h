#ifndef KWDB_CORE_ANALYZE_SNIPPET_H_
#define KWDB_CORE_ANALYZE_SNIPPET_H_

#include <string>
#include <vector>

#include "xml/stats.h"
#include "xml/tree.h"

namespace kws::analyze {

/// One line of a generated snippet.
struct SnippetItem {
  xml::XmlNodeId node = 0;
  /// Why the node made it into the snippet.
  enum class Reason { kKeyword, kKey, kEntity, kDominantFeature } reason;
};

/// Tuning knobs for greedy snippet construction.
struct SnippetOptions {
  /// Maximum items in a snippet (the "concise" constraint; the exact
  /// optimization is NP-hard, this module is the standard greedy).
  size_t max_items = 6;
};

/// Query-biased snippet generation for one XML result subtree (Huang et
/// al., SIGMOD 08; tutorial slide 148). The snippet is self-contained
/// (includes the result's identifying key), informative (keyword matches
/// and dominant features) and concise (bounded size). Items are returned
/// in document order.
std::vector<SnippetItem> GenerateSnippet(
    const xml::XmlTree& tree, const xml::PathStatistics& stats,
    xml::XmlNodeId result_root, const std::vector<std::string>& keywords,
    const SnippetOptions& options = {});

/// Renders snippet items as "path: text" lines.
std::string SnippetToString(const xml::XmlTree& tree,
                            const std::vector<SnippetItem>& items);

}  // namespace kws::analyze

#endif  // KWDB_CORE_ANALYZE_SNIPPET_H_

#include "core/analyze/ranking.h"

#include <algorithm>
#include <cmath>

#include "text/tokenizer.h"

namespace kws::analyze {

std::vector<RankedAnswer> RankAnswers(
    const graph::DataGraph& g, std::vector<steiner::AnswerTree> trees,
    const std::vector<std::string>& keywords,
    const std::vector<double>& pagerank, const RankWeights& weights) {
  const double n = static_cast<double>(g.num_nodes());
  double max_pr = 1e-12;
  for (double p : pagerank) max_pr = std::max(max_pr, p);
  text::Tokenizer tokenizer;

  std::vector<RankedAnswer> out;
  out.reserve(trees.size());
  for (steiner::AnswerTree& tree : trees) {
    RankedAnswer ra;
    // Content: per keyword, tf aggregated over the answer's nodes.
    for (const std::string& k : keywords) {
      uint64_t tf = 0;
      for (graph::NodeId node : tree.nodes) {
        for (const std::string& tok : tokenizer.Tokenize(g.text(node))) {
          tf += (tok == k);
        }
      }
      if (tf > 0) {
        const double df =
            std::max<size_t>(g.MatchNodes(k).size(), 1);
        ra.content += std::log(1.0 + static_cast<double>(tf)) *
                      std::log(1.0 + n / df);
      }
    }
    ra.proximity = 1.0 / (1.0 + tree.cost);
    if (!pagerank.empty()) {
      double sum = 0;
      for (graph::NodeId node : tree.nodes) sum += pagerank[node];
      ra.authority = sum / (static_cast<double>(tree.nodes.size()) * max_pr);
    }
    ra.total = weights.content * ra.content +
               weights.proximity * ra.proximity +
               weights.authority * ra.authority;
    ra.tree = std::move(tree);
    out.push_back(std::move(ra));
  }
  std::sort(out.begin(), out.end(),
            [](const RankedAnswer& a, const RankedAnswer& b) {
              if (a.total != b.total) return a.total > b.total;
              return a.tree.root < b.tree.root;
            });
  return out;
}

}  // namespace kws::analyze

#ifndef KWDB_CORE_CN_SEMIJOIN_H_
#define KWDB_CORE_CN_SEMIJOIN_H_

#include <cstdint>
#include <vector>

#include "core/cn/candidate_network.h"
#include "core/cn/execute.h"
#include "core/cn/tuple_sets.h"

namespace kws::cn {

/// Counters for the semijoin reduction (E2's extra row).
struct SemiJoinStats {
  uint64_t rows_before = 0;
  uint64_t rows_after = 0;
  uint64_t semijoin_passes = 0;
};

/// Full semijoin reduction of a CN ("the power of RDBMS", Qin et al.
/// SIGMOD 09; tutorial slides 126-127): every CN node starts with its
/// tuple-set rows (free nodes with the keyword-less rows); one leaf-to-
/// root and one root-to-leaf semijoin pass then discard every row that
/// cannot participate in ANY complete joined tree. On the acyclic CN
/// this is a full reducer: the surviving sets are exactly the
/// participating rows.
///
/// Returns per-node admissible row lists (indexed like cn.nodes).
std::vector<std::vector<relational::RowId>> SemiJoinReduce(
    const relational::Database& db, const CandidateNetwork& cn,
    const TupleSets& ts, SemiJoinStats* stats = nullptr);

/// Executes `cn` after semijoin reduction: identical results to
/// ExecuteCn, with dead-end join probes eliminated up front.
std::vector<JoinedTree> ExecuteCnSemiJoin(const relational::Database& db,
                                          const CandidateNetwork& cn,
                                          const TupleSets& ts,
                                          SemiJoinStats* sj_stats = nullptr,
                                          ExecStats* exec_stats = nullptr);

}  // namespace kws::cn

#endif  // KWDB_CORE_CN_SEMIJOIN_H_

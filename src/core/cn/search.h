#ifndef KWDB_CORE_CN_SEARCH_H_
#define KWDB_CORE_CN_SEARCH_H_

#include <string>
#include <vector>

#include "common/deadline.h"
#include "core/cn/candidate_network.h"
#include "core/cn/execute.h"
#include "core/cn/tuple_sets.h"
#include "relational/database.h"

namespace kws::cn {

/// Top-k evaluation strategies over the enumerated CNs (DISCOVER2,
/// Hristidis et al. VLDB 03; tutorial slide 116).
enum class Strategy {
  /// Evaluate every CN fully, then sort.
  kNaive,
  /// Evaluate CNs in decreasing score-bound order; stop as soon as the
  /// next CN's bound cannot beat the current k-th result.
  kSparse,
  /// One shared priority queue of candidate tuple combinations across all
  /// CNs, verified lazily (the global-pipeline idea).
  kGlobalPipeline,
};

const char* StrategyToString(Strategy s);

/// A final ranked answer.
struct SearchResult {
  /// Index into the CN list returned alongside the results.
  size_t cn_index = 0;
  std::vector<relational::TupleId> tuples;  // one per CN node
  double score = 0;
};

struct SearchOptions {
  size_t k = 10;
  size_t max_cn_size = 5;
  Strategy strategy = Strategy::kSparse;
  /// Cooperative query budget, threaded through tuple-set construction,
  /// CN enumeration and every evaluation strategy; on expiry the search
  /// stops and returns the best results found so far, with
  /// `SearchStats::deadline_hit` set.
  Deadline deadline = {};
  /// Optional shared term -> tuple-set frontier cache. Not owned; must
  /// outlive the search. Results are identical with or without it.
  TupleSetCache* tuple_cache = nullptr;
};

/// Counters for the E2 benchmark.
struct SearchStats {
  size_t cns_enumerated = 0;
  size_t cns_evaluated = 0;       // CNs actually joined (fully or partially)
  uint64_t results_materialized = 0;
  uint64_t join_lookups = 0;
  uint64_t candidates_verified = 0;  // pipeline combination checks
  /// True when the deadline cut the search short (results are partial).
  bool deadline_hit = false;
};

/// Schema-based relational keyword search (the DISCOVER / DISCOVER2 /
/// SPARK family's front half): enumerate CNs once per query, then answer
/// top-k under a chosen strategy.
class CnKeywordSearch {
 public:
  explicit CnKeywordSearch(const relational::Database& db) : db_(db) {}

  /// Runs `query` (free text) and returns ranked results, best first,
  /// under the monotonic DISCOVER2 score. `cns_out`, when non-null,
  /// receives the enumerated CN list that `SearchResult::cn_index`
  /// refers to.
  std::vector<SearchResult> Search(const std::string& query,
                                   const SearchOptions& options,
                                   std::vector<CandidateNetwork>* cns_out,
                                   SearchStats* stats = nullptr) const;

 private:
  const relational::Database& db_;
};

}  // namespace kws::cn

#endif  // KWDB_CORE_CN_SEARCH_H_

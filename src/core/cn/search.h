#ifndef KWDB_CORE_CN_SEARCH_H_
#define KWDB_CORE_CN_SEARCH_H_

#include <functional>
#include <string>
#include <vector>

#include "common/deadline.h"
#include "common/trace.h"
#include "core/cn/candidate_network.h"
#include "core/cn/execute.h"
#include "core/cn/tuple_sets.h"
#include "relational/database.h"

namespace kws::cn {

/// Top-k evaluation strategies over the enumerated CNs (DISCOVER2,
/// Hristidis et al. VLDB 03; tutorial slide 116).
enum class Strategy {
  /// Evaluate every CN fully, then sort.
  kNaive,
  /// Evaluate CNs in decreasing score-bound order; stop as soon as the
  /// next CN's bound cannot beat the current k-th result.
  kSparse,
  /// One shared priority queue of candidate tuple combinations across all
  /// CNs, verified lazily (the global-pipeline idea).
  kGlobalPipeline,
};

/// Stable display name for a search strategy (e.g. "SingleTopK").
const char* StrategyToString(Strategy s);

/// A final ranked answer.
struct SearchResult {
  /// Index into the CN list returned alongside the results.
  size_t cn_index = 0;
  std::vector<relational::TupleId> tuples;  // one per CN node
  double score = 0;
};

/// The deterministic result order: score descending, then cn_index
/// ascending, then tuples ascending (lexicographic). This is a strict
/// total order over distinct results, so the ranked list — ties included
/// — is a pure function of the result *set*: identical across the three
/// strategies and across serial and parallel execution, which is the
/// invariant the parallel-vs-serial oracle test enforces.
struct SearchResultOrder {
  bool operator()(const SearchResult& a, const SearchResult& b) const {
    if (a.score != b.score) return a.score > b.score;
    if (a.cn_index != b.cn_index) return a.cn_index < b.cn_index;
    return a.tuples < b.tuples;
  }
};

/// Tuning knobs for candidate-network keyword search.
struct SearchOptions {
  size_t k = 10;
  size_t max_cn_size = 5;
  Strategy strategy = Strategy::kSparse;
  /// Cooperative query budget, threaded through tuple-set construction,
  /// CN enumeration and every evaluation strategy; on expiry the search
  /// stops and returns the best results found so far, with
  /// `SearchStats::deadline_hit` set.
  Deadline deadline = {};
  /// Optional shared term -> tuple-set frontier cache. Not owned; must
  /// outlive the search. Results are identical with or without it.
  TupleSetCache* tuple_cache = nullptr;
  /// Worker threads for CN evaluation. 1 (the default) runs the serial
  /// path — no pool, no atomics. n > 1 evaluates independent CNs (for
  /// kGlobalPipeline: candidate combinations) concurrently over the
  /// shared tuple sets into a `ConcurrentTopK`, with static striding
  /// (worker w owns items i with i % n == w). Results are bit-identical
  /// to the serial path for every thread count; the work counters in
  /// SearchStats stay exact sums of the work done, but under kSparse /
  /// kGlobalPipeline how much work the shared score threshold prunes may
  /// vary with thread count.
  size_t num_threads = 1;
  /// Models the per-CN backend round-trip a DISCOVER-style deployment
  /// pays against its RDBMS (one SQL statement per CN): each CN
  /// evaluation sleeps this long before joining. E21 uses it to measure
  /// worker-pool overlap on a single-core host, mirroring
  /// `serve::QueryRequest::simulated_io_micros`. 0 (the default)
  /// disables the simulation.
  uint64_t simulated_cn_io_micros = 0;
  /// Optional per-query execution tracer (not owned; must outlive the
  /// search). When set, the search wraps each phase in spans
  /// (`cn.tuple_sets`, `cn.enumerate`, `cn.execute.<strategy>`,
  /// `cn.topk`) with work counters; kNaive additionally gets one
  /// `cn.eval` span per CN, merged deterministically from the parallel
  /// workers. Span *structure* (names, nesting, events) is independent
  /// of `num_threads` for every strategy; under kSparse /
  /// kGlobalPipeline the aggregate counter *values* may vary with thread
  /// count exactly like the SearchStats they mirror.
  trace::Tracer* tracer = nullptr;
};

/// Counters for the E2 benchmark. `Search` value-initializes the caller's
/// struct on entry and fills it on *every* exit path — including an empty
/// query, empty tuple sets and an immediately-expired deadline — so a
/// reused stats object never carries values from a previous search.
struct SearchStats {
  size_t cns_enumerated = 0;
  /// CNs actually admitted to evaluation: joined (fully or partially) by
  /// kNaive/kSparse, or entered into the combination queue by
  /// kGlobalPipeline. A CN whose tuple-set list turns out empty is dead
  /// and never counts, even when earlier keyword nodes had rows.
  size_t cns_evaluated = 0;
  uint64_t results_materialized = 0;
  uint64_t join_lookups = 0;
  uint64_t candidates_verified = 0;  // pipeline combination checks
  /// True when the deadline cut the search short (results are partial).
  bool deadline_hit = false;
};

/// Evaluates an already-enumerated CN list over already-built tuple sets
/// and returns the ranked top-k — the back half of `CnKeywordSearch::
/// Search`, exposed so a coordinator can enumerate once and evaluate the
/// same list against many tuple-set builds (`kws::shard` evaluates one
/// global CN list per shard). Honors `options.strategy`, `options.k`,
/// `options.num_threads`, `options.deadline` and `options.tracer`
/// (emitting the `cn.execute.<strategy>` / `cn.topk` spans); ignores
/// `options.tuple_cache` (the tuple sets are the caller's). `stats`, when
/// non-null, is value-initialized and fully filled, with
/// `cns_enumerated = cns.size()`; deadline expiry sets
/// `stats->deadline_hit` but emits no trace event — the caller owns the
/// enclosing span and its `<layer>.deadline.hit` event.
std::vector<SearchResult> EvaluateCns(const relational::Database& db,
                                      const std::vector<CandidateNetwork>& cns,
                                      const TupleSets& ts,
                                      const SearchOptions& options,
                                      SearchStats* stats = nullptr);

/// kSparse evaluation against a caller-owned collector: CNs run in
/// (bound descending, index ascending) order, `would_reject(bound)` is
/// consulted before each CN (a `true` stops the whole scan — the sparse
/// break), and every materialized result is handed to `emit` instead of
/// a private top-k. This is how a scatter-gather coordinator shares one
/// early-termination threshold across shard evaluations (`kws::shard`):
/// sound whenever the caller's threshold is a monotone nondecreasing
/// lower bound on its final k-th best score and `would_reject` keeps
/// score ties (`ConcurrentTopK::WouldReject` is both). Honors
/// `options.deadline` and `options.simulated_cn_io_micros`; ignores
/// `options.strategy`, `options.k` and `options.num_threads` (the
/// collector owns selection). `stats` follows the `EvaluateCns` contract.
void EvaluateCnsSparseToSink(
    const relational::Database& db, const std::vector<CandidateNetwork>& cns,
    const TupleSets& ts, const SearchOptions& options,
    const std::function<bool(double)>& would_reject,
    const std::function<void(SearchResult)>& emit,
    SearchStats* stats = nullptr);

/// Schema-based relational keyword search (the DISCOVER / DISCOVER2 /
/// SPARK family's front half): enumerate CNs once per query, then answer
/// top-k under a chosen strategy.
class CnKeywordSearch {
 public:
  explicit CnKeywordSearch(const relational::Database& db) : db_(db) {}

  /// Runs `query` (free text) and returns ranked results, best first,
  /// under the monotonic DISCOVER2 score. `cns_out`, when non-null,
  /// receives the enumerated CN list that `SearchResult::cn_index`
  /// refers to.
  std::vector<SearchResult> Search(const std::string& query,
                                   const SearchOptions& options,
                                   std::vector<CandidateNetwork>* cns_out,
                                   SearchStats* stats = nullptr) const;

 private:
  const relational::Database& db_;
};

}  // namespace kws::cn

#endif  // KWDB_CORE_CN_SEARCH_H_

#include "core/cn/tuple_sets.h"

#include <algorithm>
#include <cmath>

namespace kws::cn {

TupleSets::TupleSets(const relational::Database& db,
                     std::vector<std::string> keywords, TupleSetCache* cache,
                     const Deadline& deadline, trace::Tracer* tracer,
                     const std::vector<double>* idf_override)
    : keywords_(std::move(keywords)) {
  trace::TraceSpan span(tracer, "cn.tuple_sets");
  const size_t num_tables = db.num_tables();
  const size_t nk = keywords_.size();
  span.AddCounter("terms", nk);
  table_masks_.assign(num_tables, 0);
  row_info_.resize(num_tables);
  sets_.resize(num_tables);

  // Per-keyword frontiers — the query-independent (rows, tfs, idf)
  // slices — from the shared cache when one is wired in. A nullptr
  // frontier means the deadline expired mid-build: stop with no sets.
  std::vector<std::shared_ptr<const TermFrontier>> frontiers(nk);
  idf_.assign(nk, 0);
  size_t frontier_rows = 0;
  for (size_t k = 0; k < nk; ++k) {
    frontiers[k] = cache != nullptr
                       ? cache->Get(keywords_[k], deadline, tracer)
                       : BuildTermFrontier(db, keywords_[k], deadline, tracer);
    if (frontiers[k] == nullptr) {
      truncated_ = true;
      span.AddEvent("cn.deadline.hit");
      return;
    }
    idf_[k] = idf_override != nullptr ? (*idf_override)[k]
                                      : frontiers[k]->idf;
    frontier_rows += frontiers[k]->num_rows;
  }
  span.AddCounter("frontier_rows", frontier_rows);

  for (relational::TableId t = 0; t < num_tables; ++t) {
    auto& info = row_info_[t];
    size_t touched = 0;
    for (size_t k = 0; k < nk; ++k) {
      touched += frontiers[k]->tables[t].rows.size();
    }
    info.reserve(touched);
    for (size_t k = 0; k < nk; ++k) {
      const TermFrontier::TableFrontier& ft = frontiers[k]->tables[t];
      for (size_t i = 0; i < ft.rows.size(); ++i) {
        RowInfo& ri = info[ft.rows[i]];
        if (ri.tf.empty()) ri.tf.assign(nk, 0);
        ri.mask |= (1u << k);
        ri.tf[k] = ft.tfs[i];
        table_masks_[t] |= (1u << k);
      }
    }
    // Monotonic per-tuple score: sum over matched keywords of
    // (1 + ln tf) * idf, normalized by sqrt(doc length).
    for (auto& [row, ri] : info) {
      const double len =
          std::max<uint32_t>(db.TextIndex(t).DocLength(row), 1);
      double score = 0;
      for (size_t k = 0; k < nk; ++k) {
        if (ri.tf[k] > 0) {
          score += (1.0 + std::log(static_cast<double>(ri.tf[k]))) * idf_[k];
        }
      }
      ri.score = score / std::sqrt(len);
      sets_[t][ri.mask].push_back(ScoredRow{row, ri.score});
    }
    for (auto& [mask, rows] : sets_[t]) {
      std::sort(rows.begin(), rows.end(),
                [](const ScoredRow& a, const ScoredRow& b) {
                  if (a.score != b.score) return a.score > b.score;
                  return a.row < b.row;
                });
    }
  }
}

const std::vector<ScoredRow>& TupleSets::Get(relational::TableId t,
                                             KeywordMask mask) const {
  auto it = sets_[t].find(mask);
  return it == sets_[t].end() ? empty_ : it->second;
}

KeywordMask TupleSets::RowMask(relational::TableId t,
                               relational::RowId r) const {
  auto it = row_info_[t].find(r);
  return it == row_info_[t].end() ? 0 : it->second.mask;
}

double TupleSets::RowScore(relational::TableId t, relational::RowId r) const {
  auto it = row_info_[t].find(r);
  return it == row_info_[t].end() ? 0 : it->second.score;
}

uint32_t TupleSets::RowTf(relational::TableId t, relational::RowId r,
                          size_t k) const {
  auto it = row_info_[t].find(r);
  if (it == row_info_[t].end() || it->second.tf.size() <= k) return 0;
  return it->second.tf[k];
}

double TupleSets::MaxScore(relational::TableId t, KeywordMask mask) const {
  const std::vector<ScoredRow>& rows = Get(t, mask);
  return rows.empty() ? 0 : rows.front().score;
}

}  // namespace kws::cn

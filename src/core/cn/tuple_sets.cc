#include "core/cn/tuple_sets.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/check.h"
#include "text/postings.h"

namespace kws::cn {

namespace {

/// The smoothed IDF shared by construction and incremental maintenance;
/// one expression so both paths produce bit-identical doubles.
double SmoothedIdf(double total_rows, size_t df) {
  return std::log(1.0 + total_rows / (1.0 + static_cast<double>(df)));
}

}  // namespace

TupleSets::TupleSets(const relational::Database& db,
                     std::vector<std::string> keywords, TupleSetCache* cache,
                     const Deadline& deadline, trace::Tracer* tracer,
                     const std::vector<double>* idf_override)
    : keywords_(std::move(keywords)),
      has_idf_override_(idf_override != nullptr) {
  trace::TraceSpan span(tracer, "cn.tuple_sets");
  const size_t num_tables = db.num_tables();
  const size_t nk = keywords_.size();
  span.AddCounter("terms", nk);
  table_masks_.assign(num_tables, 0);
  row_info_.resize(num_tables);
  sets_.resize(num_tables);

  // Per-keyword frontiers — the query-independent (rows, tfs, df)
  // slices — from the shared cache when one is wired in. A nullptr
  // frontier means the deadline expired mid-build: stop with no sets.
  std::vector<std::shared_ptr<const TermFrontier>> frontiers(nk);
  idf_.assign(nk, 0);
  const double total_rows = static_cast<double>(db.TotalRows());
  size_t frontier_rows = 0;
  for (size_t k = 0; k < nk; ++k) {
    frontiers[k] = cache != nullptr
                       ? cache->Get(keywords_[k], deadline, tracer)
                       : BuildTermFrontier(db, keywords_[k], deadline, tracer);
    if (frontiers[k] == nullptr) {
      truncated_ = true;
      span.AddEvent("cn.deadline.hit");
      return;
    }
    // The IDF is derived here from the frontier's document frequency and
    // the LIVE total row count, never stored in the frontier: that is
    // what keeps cached frontiers of untouched terms exactly valid
    // across inserts (the insert changed total_rows, not their rows).
    idf_[k] = idf_override != nullptr ? (*idf_override)[k]
                                      : SmoothedIdf(total_rows,
                                                    frontiers[k]->df);
    frontier_rows += frontiers[k]->num_rows;
  }
  span.AddCounter("frontier_rows", frontier_rows);

  for (relational::TableId t = 0; t < num_tables; ++t) {
    auto& info = row_info_[t];
    size_t touched = 0;
    for (size_t k = 0; k < nk; ++k) {
      touched += frontiers[k]->tables[t].rows.size();
    }
    info.reserve(touched);
    for (size_t k = 0; k < nk; ++k) {
      const TermFrontier::TableFrontier& ft = frontiers[k]->tables[t];
      for (size_t i = 0; i < ft.rows.size(); ++i) {
        RowInfo& ri = info[ft.rows[i]];
        if (ri.tf.empty()) ri.tf.assign(nk, 0);
        ri.mask |= (1u << k);
        ri.tf[k] = ft.tfs[i];
        table_masks_[t] |= (1u << k);
      }
    }
  }
  if (!RescoreAndRebuildSets(db, deadline)) {
    truncated_ = true;
    span.AddEvent("cn.deadline.hit");
  }
}

Status TupleSets::ApplyInserts(
    const relational::Database& db,
    const std::vector<relational::TupleId>& inserted,
    const Deadline& deadline) {
  KWS_CHECK_MSG(!has_idf_override_,
                "ApplyInserts is unsupported on idf_override tuple sets "
                "(the shard coordinator rebuilds per-shard sets instead)");
  if (truncated_) {
    return Status::FailedPrecondition(
        "ApplyInserts on truncated tuple sets; rebuild them first");
  }
  const size_t nk = keywords_.size();
  DeadlineChecker checker(deadline);

  // Refresh every keyword's IDF from the live postings: the insert grew
  // the corpus, which moves total_rows (and so every IDF), not only the
  // touched terms'.
  const double total_rows = static_cast<double>(db.TotalRows());
  for (size_t k = 0; k < nk; ++k) {  // keywords x tables, must finish for IDF consistency -- kwslint: allow(deadline-loop)
    size_t df = 0;
    for (relational::TableId t = 0; t < db.num_tables(); ++t) {
      df += db.TextIndex(t).GetPostings(keywords_[k]).size();
    }
    idf_[k] = SmoothedIdf(total_rows, df);
  }

  // Masks and term frequencies of the new rows, via stateless
  // random-access postings probes (existing rows are untouched by an
  // append, so their tf vectors stay valid).
  for (const relational::TupleId& tuple : inserted) {
    if (checker.Expired()) {
      truncated_ = true;
      return Status::DeadlineExceeded("deadline expired absorbing inserts");
    }
    RowInfo ri;
    ri.tf.assign(nk, 0);
    for (size_t k = 0; k < nk; ++k) {
      const text::PostingList& plist =
          db.TextIndex(tuple.table).GetPostings(keywords_[k]);
      const text::PostingSpan span(plist);
      const size_t pos = text::SeekGE(span, 0, tuple.row);
      if (pos < span.size && span[pos] == tuple.row) {
        ri.mask |= (1u << k);
        ri.tf[k] = plist.tf(pos);
      }
    }
    if (ri.mask == 0) continue;
    table_masks_[tuple.table] |= ri.mask;
    row_info_[tuple.table][tuple.row] = std::move(ri);
  }

  // Every stored score embeds the IDFs, so rescore all matching rows and
  // rebuild the sorted per-mask sets.
  if (!RescoreAndRebuildSets(db, deadline)) {
    truncated_ = true;
    return Status::DeadlineExceeded("deadline expired rescoring tuple sets");
  }
  return Status::OK();
}

bool TupleSets::RescoreAndRebuildSets(const relational::Database& db,
                                      const Deadline& deadline) {
  const size_t nk = keywords_.size();
  for (relational::TableId t = 0; t < db.num_tables(); ++t) {
    // Cancellation point per table, matching construction granularity.
    if (deadline.Expired()) return false;
    auto& info = row_info_[t];
    sets_[t].clear();
    // Monotonic per-tuple score: sum over matched keywords of
    // (1 + ln tf) * idf, normalized by sqrt(doc length).
    for (auto& [row, ri] : info) {
      const double len =
          std::max<uint32_t>(db.TextIndex(t).DocLength(row), 1);
      double score = 0;
      for (size_t k = 0; k < nk; ++k) {
        if (ri.tf[k] > 0) {
          score += (1.0 + std::log(static_cast<double>(ri.tf[k]))) * idf_[k];
        }
      }
      ri.score = score / std::sqrt(len);
      sets_[t][ri.mask].push_back(ScoredRow{row, ri.score});
    }
    for (auto& [mask, rows] : sets_[t]) {
      std::sort(rows.begin(), rows.end(),
                [](const ScoredRow& a, const ScoredRow& b) {
                  if (a.score != b.score) return a.score > b.score;
                  return a.row < b.row;
                });
    }
  }
  return true;
}

const std::vector<ScoredRow>& TupleSets::Get(relational::TableId t,
                                             KeywordMask mask) const {
  auto it = sets_[t].find(mask);
  return it == sets_[t].end() ? empty_ : it->second;
}

KeywordMask TupleSets::RowMask(relational::TableId t,
                               relational::RowId r) const {
  auto it = row_info_[t].find(r);
  return it == row_info_[t].end() ? 0 : it->second.mask;
}

double TupleSets::RowScore(relational::TableId t, relational::RowId r) const {
  auto it = row_info_[t].find(r);
  return it == row_info_[t].end() ? 0 : it->second.score;
}

uint32_t TupleSets::RowTf(relational::TableId t, relational::RowId r,
                          size_t k) const {
  auto it = row_info_[t].find(r);
  if (it == row_info_[t].end() || it->second.tf.size() <= k) return 0;
  return it->second.tf[k];
}

double TupleSets::MaxScore(relational::TableId t, KeywordMask mask) const {
  const std::vector<ScoredRow>& rows = Get(t, mask);
  return rows.empty() ? 0 : rows.front().score;
}

}  // namespace kws::cn

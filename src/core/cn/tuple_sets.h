#ifndef KWDB_CORE_CN_TUPLE_SETS_H_
#define KWDB_CORE_CN_TUPLE_SETS_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/deadline.h"
#include "common/status.h"
#include "core/cn/candidate_network.h"
#include "core/cn/tuple_set_cache.h"
#include "relational/database.h"

namespace kws::cn {

/// One tuple with its precomputed relevance score.
struct ScoredRow {
  relational::RowId row = 0;
  double score = 0;
};

/// The query-dependent tuple sets R^Q_K of DISCOVER (tutorial slide 28),
/// under exact semantics: Get(T, K) holds the rows of T containing exactly
/// the query keywords in K (so tuple sets partition each table and CN
/// results are duplicate-free).
///
/// Each row carries two scores:
///  - a monotonic per-tuple TF-IDF score (DISCOVER2-style, summed across
///    the CN's tuples), and
///  - per-keyword term frequencies for SPARK's non-monotonic virtual-
///    document score.
class TupleSets {
 public:
  /// `keywords` must already be normalized tokens. When `cache` is
  /// non-null the per-keyword frontiers (rows, tfs, idf) come from it —
  /// shared across CNs within the query and across queries — otherwise
  /// they are built directly. Either way the query-dependent masks and
  /// scores are recomputed here with identical arithmetic, so responses
  /// do not depend on whether a cache was wired in. A finite `deadline`
  /// adds a cancellation point per keyword per table: on expiry
  /// construction stops, `truncated()` turns true, and the object holds
  /// no tuple sets (callers must not treat it as an empty answer). A
  /// non-null `tracer` wraps the build in a `cn.tuple_sets` span with
  /// term/row counters and cache hit/miss attribution. A non-null
  /// `idf_override` (one value per keyword) replaces the locally computed
  /// IDFs in every score: `kws::shard` passes corpus-wide IDFs here so a
  /// shard scores its rows exactly as the combined corpus would — when
  /// the override equals the local values the scores are bit-identical
  /// to the default.
  TupleSets(const relational::Database& db, std::vector<std::string> keywords,
            TupleSetCache* cache = nullptr, const Deadline& deadline = {},
            trace::Tracer* tracer = nullptr,
            const std::vector<double>* idf_override = nullptr);

  /// Incrementally absorbs a batch of live inserts that has already been
  /// applied to `db` (the same database this object was built from):
  /// computes the new rows' keyword masks and term frequencies by probing
  /// the updated postings, refreshes every keyword's IDF from the live
  /// document frequencies (inserts grow the corpus, which shifts ALL
  /// IDFs, not just the touched terms'), rescores every matching row and
  /// rebuilds the sorted tuple sets. The resulting state is bit-identical
  /// to constructing fresh TupleSets over the post-insert database — the
  /// oracle `tests/update_test.cc` enforces. Unsupported (checked) on
  /// objects built with `idf_override` (sharded tuple sets are rebuilt by
  /// their coordinator instead). A finite `deadline` adds cancellation
  /// points; on expiry the object becomes `truncated()` (unusable, not
  /// partially updated) and kDeadlineExceeded is returned.
  Status ApplyInserts(const relational::Database& db,
                      const std::vector<relational::TupleId>& inserted,
                      const Deadline& deadline = {});

  /// True when the deadline expired during construction or ApplyInserts
  /// (tuple sets are then absent, not merely empty).
  bool truncated() const { return truncated_; }

  const std::vector<std::string>& keywords() const { return keywords_; }
  size_t num_keywords() const { return keywords_.size(); }
  KeywordMask full_mask() const {
    return static_cast<KeywordMask>((1u << keywords_.size()) - 1);
  }

  /// Keywords table `t` matches at all (union of its rows' masks).
  KeywordMask table_mask(relational::TableId t) const {
    return table_masks_[t];
  }
  /// table_mask for every table, indexed by TableId.
  const std::vector<KeywordMask>& table_masks() const { return table_masks_; }

  /// Rows of `t` whose keyword set is exactly `mask`, sorted by descending
  /// monotonic score. `mask` must be nonzero (free sets are not
  /// materialized; use Matches for membership).
  const std::vector<ScoredRow>& Get(relational::TableId t,
                                    KeywordMask mask) const;

  /// Exact keyword mask of a row (0 when it matches no query keyword).
  KeywordMask RowMask(relational::TableId t, relational::RowId r) const;

  /// True when row r belongs to tuple set (t, mask) — including mask == 0,
  /// the free set of keyword-less tuples.
  bool Matches(relational::TableId t, relational::RowId r,
               KeywordMask mask) const {
    return RowMask(t, r) == mask;
  }

  /// Monotonic score of a row (0 for keyword-less rows).
  double RowScore(relational::TableId t, relational::RowId r) const;

  /// Term frequency of query keyword `k` in row r (0 when absent).
  uint32_t RowTf(relational::TableId t, relational::RowId r, size_t k) const;

  /// Highest monotonic score in tuple set (t, mask); 0 when empty.
  double MaxScore(relational::TableId t, KeywordMask mask) const;

  /// Global smoothed IDF of keyword `k` over all tables.
  double Idf(size_t k) const { return idf_[k]; }

 private:
  /// Recomputes every matching row's score from the current tf / idf
  /// state and rebuilds the sorted per-mask tuple sets. Returns false
  /// when `deadline` expired mid-rebuild (state is then incomplete and
  /// the caller must mark the object truncated).
  bool RescoreAndRebuildSets(const relational::Database& db,
                             const Deadline& deadline);

  struct RowInfo {
    KeywordMask mask = 0;
    double score = 0;
    std::vector<uint32_t> tf;  // per keyword
  };

  std::vector<std::string> keywords_;
  std::vector<KeywordMask> table_masks_;
  /// Per table: info for rows matching >= 1 keyword.
  std::vector<std::unordered_map<relational::RowId, RowInfo>> row_info_;
  /// Per table: mask -> sorted scored rows.
  std::vector<std::unordered_map<KeywordMask, std::vector<ScoredRow>>> sets_;
  std::vector<double> idf_;
  std::vector<ScoredRow> empty_;
  bool truncated_ = false;
  /// True when the constructor took an idf_override; ApplyInserts cannot
  /// refresh overridden IDFs and refuses (checked).
  bool has_idf_override_ = false;
};

}  // namespace kws::cn

#endif  // KWDB_CORE_CN_TUPLE_SETS_H_

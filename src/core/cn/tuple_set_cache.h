#ifndef KWDB_CORE_CN_TUPLE_SET_CACHE_H_
#define KWDB_CORE_CN_TUPLE_SET_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/deadline.h"
#include "common/metrics.h"
#include "common/strings.h"
#include "common/trace.h"
#include "relational/database.h"

namespace kws::cn {

/// The query-independent slice of a keyword's tuple sets: per table, the
/// matching rows (ascending) with their term frequencies, plus the
/// keyword's document frequency. Everything query-dependent — keyword
/// masks, per-row scores, the mask partition — is recomputed per query by
/// `TupleSets` from these frontiers with the original arithmetic, so
/// cached and uncached queries produce bit-identical responses.
///
/// The frontier deliberately stores the raw document frequency, not the
/// IDF: the smoothed IDF `log(1 + total_rows / (1 + df))` depends on the
/// database's *total* row count, which every insert changes even for
/// terms the insert never touches. `TupleSets` derives the IDF at build
/// time from `df` and the live `Database::TotalRows()`, so a cached
/// frontier of an untouched term stays exactly valid across writes and
/// term-targeted invalidation (`TupleSetCache::Invalidate`) is sound.
struct TermFrontier {
  /// Matching rows (with term frequencies) of one table.
  struct TableFrontier {
    std::vector<relational::RowId> rows;
    std::vector<uint32_t> tfs;  // parallel to rows
  };
  /// Indexed by TableId.
  std::vector<TableFrontier> tables;
  /// Document frequency: matching documents summed over all tables.
  size_t df = 0;
  /// Total matching rows across tables (for capacity accounting / stats).
  size_t num_rows = 0;
};

/// Builds the frontier of `term` directly from the database's per-table
/// text indexes. Polls `deadline` between tables and returns nullptr when
/// it expires mid-build (the partial frontier is discarded — a truncated
/// frontier must never be observed, let alone cached). A non-null `tracer`
/// records the rows materialized (`cn.frontier.rows`/`cn.frontier.built`).
std::shared_ptr<const TermFrontier> BuildTermFrontier(
    const relational::Database& db, std::string_view term,
    const Deadline& deadline = {}, trace::Tracer* tracer = nullptr);

/// A term -> TermFrontier LRU cache shared across CNs within a query and
/// across queries in `kws::serve`. The database is append-only but NOT
/// immutable: `relational::Database::ApplyInserts` grows postings in
/// place, so a resident frontier of a touched term goes stale the moment
/// a batch lands. The invalidation protocol (see serve/server.h for the
/// full sequence) is term-targeted: after each applied batch the owner
/// calls `Invalidate` with the batch's `WriteReport::touched_terms`,
/// which drops exactly those entries. Untouched entries remain exactly
/// valid — an append never changes existing rows or tfs, and IDFs are
/// derived per query from the live row totals (see TermFrontier::df) —
/// so nothing else needs to be dropped. Eviction otherwise remains the
/// capacity bound only.
///
/// Thread-safe: lookups and insertions take a mutex, frontiers are
/// published as shared_ptr<const> so readers hold them lock-free, and
/// builds run outside the lock (two threads may race to build the same
/// term; the loser's frontier is dropped in favor of the cached one).
///
/// Deadline safety: a build cut short by an expired deadline yields
/// nullptr and is NOT inserted — the same complete-answers-only rule the
/// serve result cache follows.
class TupleSetCache {
 public:
  /// Aggregate usage counters (all relaxed atomics).
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t insertions = 0;
    /// Entries dropped by `Invalidate` (write-driven, not capacity).
    uint64_t invalidations = 0;
  };

  /// `capacity` bounds the number of cached terms; 0 disables caching
  /// (every Get builds, nothing is stored).
  TupleSetCache(const relational::Database& db, size_t capacity);

  TupleSetCache(const TupleSetCache&) = delete;
  TupleSetCache& operator=(const TupleSetCache&) = delete;

  /// Mirrors hit/miss/eviction events into externally owned metrics
  /// counters (e.g. a serve MetricsRegistry). Call before concurrent use.
  void AttachCounters(Counter* hits, Counter* misses, Counter* evictions);

  /// The frontier of `term`, from cache or built on demand. Returns
  /// nullptr only when `deadline` expired mid-build. A non-null `tracer`
  /// (always the caller's per-query tracer, never shared) attributes the
  /// lookup (`cn.tuple_cache.hits` / `cn.tuple_cache.misses`) to the
  /// query's current span.
  std::shared_ptr<const TermFrontier> Get(std::string_view term,
                                          const Deadline& deadline = {},
                                          trace::Tracer* tracer = nullptr);

  /// Drops the cached frontiers of exactly `terms` (terms not resident
  /// are ignored); returns how many entries were dropped. Called by the
  /// serve layer with a write batch's `touched_terms` after the batch has
  /// been applied, so the next lookup of an affected term rebuilds its
  /// frontier from the updated postings. Thread-safe; in-flight readers
  /// holding a dropped frontier keep their shared_ptr alive, which is
  /// staleness-safe for them (their query was keyed before the write's
  /// epoch bump — see the protocol in serve/server.h).
  size_t Invalidate(const std::vector<std::string>& terms);

  /// Number of cached terms.
  size_t size() const;

  size_t capacity() const { return capacity_; }
  const relational::Database& db() const { return db_; }

  /// Hit/miss/eviction counters accumulated since construction.
  Stats stats() const;

 private:
  struct Entry {
    std::string term;
    std::shared_ptr<const TermFrontier> frontier;
  };
  using LruList = std::list<Entry>;

  const relational::Database& db_;
  const size_t capacity_;

  mutable std::mutex mu_;
  /// Most-recently-used first.
  LruList lru_;
  std::unordered_map<std::string, LruList::iterator, StringHash,
                     std::equal_to<>>
      index_;

  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> insertions_{0};
  std::atomic<uint64_t> invalidations_{0};
  Counter* hit_counter_ = nullptr;
  Counter* miss_counter_ = nullptr;
  Counter* eviction_counter_ = nullptr;
};

}  // namespace kws::cn

#endif  // KWDB_CORE_CN_TUPLE_SET_CACHE_H_

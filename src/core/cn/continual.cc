#include "core/cn/continual.h"

#include <algorithm>
#include <atomic>
#include <set>
#include <utility>

#include "common/thread_pool.h"

namespace kws::cn {

ContinualQuery::ContinualQuery(const relational::Database& db,
                               std::vector<std::string> keywords,
                               const ContinualOptions& options)
    : db_(db), keywords_(std::move(keywords)), options_(options) {
  TupleSets ts(db_, keywords_);
  const Status s = RebuildWorkload(std::move(ts), Deadline::Infinite());
  (void)s;  // infinite deadline: cannot fail
}

Status ContinualQuery::Rebuild(const Deadline& deadline) {
  stale_ = false;
  TupleSets ts(db_, keywords_, nullptr, deadline);
  if (ts.truncated()) {
    stale_ = true;
    return Status::DeadlineExceeded("deadline expired rebuilding tuple sets");
  }
  return RebuildWorkload(std::move(ts), deadline);
}

Status ContinualQuery::RebuildWorkload(TupleSets ts, const Deadline& deadline) {
  CnEnumOptions eo;
  eo.max_size = options_.max_cn_size;
  eo.deadline = deadline;
  std::vector<CandidateNetwork> cns = EnumerateCandidateNetworks(
      db_, ts.table_masks(), ts.full_mask(), eo);
  if (deadline.Expired()) {
    stale_ = true;
    return Status::DeadlineExceeded("deadline expired enumerating CNs");
  }
  eval_ = std::make_unique<StreamEvaluator>(db_, std::move(cns),
                                            std::move(ts));
  eval_->MarkAllArrived();
  return EvaluateAll(deadline);
}

Status ContinualQuery::EvaluateAll(const Deadline& deadline) {
  results_.clear();
  const std::vector<CandidateNetwork>& cns = eval_->cns();
  const TupleSets& ts = eval_->tuple_sets();
  for (size_t c = 0; c < cns.size(); ++c) {
    if (deadline.Expired()) {
      stale_ = true;
      return Status::DeadlineExceeded("deadline expired evaluating CNs");
    }
    const CandidateNetwork& cn = cns[c];
    for (JoinedTree& jt : ExecuteCn(db_, cn, ts, {}, SIZE_MAX, nullptr,
                                    nullptr, &deadline)) {
      SearchResult r;
      r.cn_index = c;
      r.score = jt.score;
      r.tuples.reserve(cn.nodes.size());
      for (uint32_t n = 0; n < cn.nodes.size(); ++n) {
        r.tuples.push_back(relational::TupleId{cn.nodes[n].table, jt.rows[n]});
      }
      results_.push_back(std::move(r));
    }
    // ExecuteCn truncates silently on expiry; surface it.
    if (deadline.Expired()) {
      stale_ = true;
      return Status::DeadlineExceeded("deadline expired evaluating CNs");
    }
  }
  std::sort(results_.begin(), results_.end(), SearchResultOrder{});
  return Status::OK();
}

void ContinualQuery::RescoreAll() {
  const std::vector<CandidateNetwork>& cns = eval_->cns();
  const TupleSets& ts = eval_->tuple_sets();
  for (SearchResult& r : results_) {
    const CandidateNetwork& cn = cns[r.cn_index];
    // Exactly the ExecuteCn leaf arithmetic, so rescored standing trees
    // stay bit-identical to freshly materialized ones.
    double sum = 0;
    for (uint32_t i = 0; i < cn.nodes.size(); ++i) {
      if (!cn.nodes[i].free()) {
        sum += ts.RowScore(cn.nodes[i].table, r.tuples[i].row);
      }
    }
    r.score = sum / static_cast<double>(cn.nodes.size());
  }
}

Status ContinualQuery::OnInsertBatch(
    const std::vector<relational::TupleId>& inserted, const Deadline& deadline,
    ContinualStats* stats) {
  if (stale_) {
    return Status::FailedPrecondition(
        "continual query is stale (a previous propagation was cut short); "
        "call Rebuild()");
  }
  if (stats != nullptr) {
    ++stats->batches;
    stats->inserts += inserted.size();
  }
  TupleSets& ts = eval_->tuple_sets();
  const std::vector<KeywordMask> old_masks = ts.table_masks();
  Status s = ts.ApplyInserts(db_, inserted, deadline);
  if (!s.ok()) {
    stale_ = true;
    return s;
  }
  // Mark the whole batch arrived before probing so a tree joining two or
  // more new tuples is visible to each member's probe (deduped below).
  std::vector<relational::TupleId> fresh;
  fresh.reserve(inserted.size());
  for (const relational::TupleId& tuple : inserted) {  // bounded by batch size -- kwslint: allow(deadline-loop)
    if (eval_->MarkArrived(tuple)) fresh.push_back(tuple);
  }
  if (ts.table_masks() != old_masks) {
    // The batch gave some table a keyword it did not match before: the
    // CN workload itself changes, so delta propagation is unsound.
    // Re-enumerate and re-evaluate (rare — it needs a term previously
    // absent from the whole table).
    if (stats != nullptr) ++stats->full_rebuilds;
    return RebuildWorkload(std::move(ts), deadline);
  }

  // Probe every new tuple against the post-insert state. Each probe
  // finds exactly the arrived trees its tuple participates in, so the
  // union over the batch is every tree containing >= 1 new tuple —
  // found once per new member, deduped below into a set that is
  // independent of probe order and thread count.
  const size_t old_count = results_.size();
  std::vector<SearchResult> found;
  Status probe_status = Status::OK();
  StreamStats probe_stats;
  if (options_.num_threads <= 1 || fresh.size() <= 1) {
    for (const relational::TupleId& tuple : fresh) {
      probe_status = eval_->Probe(tuple, &found, &probe_stats, deadline);
      if (!probe_status.ok()) break;
    }
  } else {
    ThreadPool pool(options_.num_threads);
    std::vector<std::vector<SearchResult>> per_worker(pool.size());
    std::vector<StreamStats> per_stats(pool.size());
    std::atomic<bool> expired{false};
    pool.RunOnAll([&](size_t w) {
      // Static striding: worker w owns batch items i with i % size == w.
      for (size_t i = w; i < fresh.size(); i += pool.size()) {
        if (expired.load(std::memory_order_relaxed)) return;
        const Status ps =
            eval_->Probe(fresh[i], &per_worker[w], &per_stats[w], deadline);
        if (!ps.ok()) expired.store(true, std::memory_order_relaxed);
      }
    });
    for (size_t w = 0; w < pool.size(); ++w) {  // bounded by thread count -- kwslint: allow(deadline-loop)
      for (SearchResult& r : per_worker[w]) found.push_back(std::move(r));
      probe_stats.probes += per_stats[w].probes;
      probe_stats.join_lookups += per_stats[w].join_lookups;
      probe_stats.results_emitted += per_stats[w].results_emitted;
    }
    if (expired.load(std::memory_order_relaxed)) {
      probe_status = Status::DeadlineExceeded(
          "deadline expired probing insert batch");
    }
  }
  if (stats != nullptr) {
    stats->probes += probe_stats.probes;
    stats->join_lookups += probe_stats.join_lookups;
  }
  if (!probe_status.ok()) {
    stale_ = true;
    return probe_status;
  }

  // Dedup across the batch by identity (cn_index, tuples); duplicates
  // are bitwise-equal results, so which copy survives cannot matter.
  std::set<std::pair<size_t, std::vector<relational::TupleId>>> seen;
  std::vector<SearchResult> unique_trees;
  for (SearchResult& r : found) {  // dedup of already-produced probes -- kwslint: allow(deadline-loop)
    if (seen.emplace(r.cn_index, r.tuples).second) {
      unique_trees.push_back(std::move(r));
    }
  }

  // The batch moved every IDF (the corpus grew), so rescore the standing
  // trees; the probed trees were scored against the post-insert tuple
  // sets already.
  RescoreAll();
  for (SearchResult& r : unique_trees) results_.push_back(std::move(r));  // bounded by batch output -- kwslint: allow(deadline-loop)
  std::sort(results_.begin(), results_.end(), SearchResultOrder{});
  if (stats != nullptr) {
    stats->trees_added += results_.size() - old_count;
    stats->rescored += old_count;
  }
  return Status::OK();
}

std::vector<SearchResult> ContinualQuery::TopK() const {
  const size_t n = std::min(options_.k, results_.size());
  return {results_.begin(), results_.begin() + static_cast<long>(n)};
}

}  // namespace kws::cn

#include "core/cn/candidate_network.h"

#include <algorithm>
#include <deque>
#include <unordered_set>

namespace kws::cn {

namespace {

struct AdjEntry {
  uint32_t neighbor = 0;
  uint32_t fk = 0;
  /// True when the neighbor (child when rooted) is the referencing side.
  bool child_referencing = false;
};

std::vector<std::vector<AdjEntry>> BuildAdjacency(
    const CandidateNetwork& cn) {
  std::vector<std::vector<AdjEntry>> adj(cn.nodes.size());
  for (const CnEdge& e : cn.edges) {
    // forward: `from` is referencing. Seen from `from`, the child `to`
    // is the referenced side, and vice versa.
    adj[e.from].push_back(AdjEntry{e.to, e.fk, !e.forward});
    adj[e.to].push_back(AdjEntry{e.from, e.fk, e.forward});
  }
  return adj;
}

std::string EncodeRooted(const CandidateNetwork& cn,
                         const std::vector<std::vector<AdjEntry>>& adj,
                         uint32_t node, uint32_t parent) {
  std::string label = "T" + std::to_string(cn.nodes[node].table) + "K" +
                      std::to_string(cn.nodes[node].mask);
  std::vector<std::string> child_codes;
  for (const AdjEntry& e : adj[node]) {
    if (e.neighbor == parent) continue;
    std::string code = "F" + std::to_string(e.fk) +
                       (e.child_referencing ? "r" : "d") +
                       EncodeRooted(cn, adj, e.neighbor, node);
    child_codes.push_back(std::move(code));
  }
  std::sort(child_codes.begin(), child_codes.end());
  std::string out = "(" + label;
  for (const std::string& c : child_codes) out += c;
  out += ")";
  return out;
}

/// True if `node` already acts as the referencing side of `fk` on some
/// edge of `cn` (a tuple has a single FK value, so a second such join
/// would force a duplicate tuple in every result).
bool UsesFkAsReferencing(const CandidateNetwork& cn, uint32_t node,
                         uint32_t fk) {
  for (const CnEdge& e : cn.edges) {
    const uint32_t referencing = e.forward ? e.from : e.to;
    if (referencing == node && e.fk == fk) return true;
  }
  return false;
}

std::vector<size_t> NodeDegrees(const CandidateNetwork& cn) {
  std::vector<size_t> deg(cn.nodes.size(), 0);
  for (const CnEdge& e : cn.edges) {
    ++deg[e.from];
    ++deg[e.to];
  }
  return deg;
}

/// A CN is a final answer template when all keywords are covered, every
/// leaf is a keyword node, and every leaf's mask is necessary.
bool IsValidFinal(const CandidateNetwork& cn, KeywordMask full_mask) {
  if (cn.Coverage() != full_mask) return false;
  const std::vector<size_t> deg = NodeDegrees(cn);
  for (uint32_t i = 0; i < cn.nodes.size(); ++i) {
    const bool leaf = (cn.nodes.size() == 1) || deg[i] == 1;
    if (!leaf) continue;
    if (cn.nodes[i].free()) return false;
    KeywordMask others = 0;
    for (uint32_t j = 0; j < cn.nodes.size(); ++j) {
      if (j != i) others |= cn.nodes[j].mask;
    }
    if ((others | cn.nodes[i].mask) == others) return false;  // redundant leaf
  }
  return true;
}

/// All nonzero submasks of `mask`, smallest first.
std::vector<KeywordMask> Submasks(KeywordMask mask) {
  std::vector<KeywordMask> out;
  for (KeywordMask s = mask; s != 0; s = (s - 1) & mask) out.push_back(s);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

KeywordMask CandidateNetwork::Coverage() const {
  KeywordMask m = 0;
  for (const CnNode& n : nodes) m |= n.mask;
  return m;
}

std::string CandidateNetwork::CanonicalKey() const {
  const auto adj = BuildAdjacency(*this);
  std::string best;
  for (uint32_t root = 0; root < nodes.size(); ++root) {
    std::string code = EncodeRooted(*this, adj, root, UINT32_MAX);
    if (best.empty() || code < best) best = std::move(code);
  }
  return best;
}

std::string CandidateNetwork::RootedKey(uint32_t root,
                                        uint32_t parent) const {
  const auto adj = BuildAdjacency(*this);
  return EncodeRooted(*this, adj, root, parent);
}

std::string CandidateNetwork::ToString(
    const relational::Database& db,
    const std::vector<std::string>& keywords) const {
  std::string out;
  for (uint32_t i = 0; i < nodes.size(); ++i) {
    if (i > 0) out += ", ";
    out += db.table(nodes[i].table).name();
    if (!nodes[i].free()) {
      out += '{';
      bool first = true;
      for (size_t k = 0; k < keywords.size(); ++k) {
        if ((nodes[i].mask >> k) & 1u) {
          if (!first) out += ' ';
          out += keywords[k];
          first = false;
        }
      }
      out += '}';
    }
  }
  for (const CnEdge& e : edges) {
    out += "; " + std::to_string(e.from) + (e.forward ? "->" : "<-") +
           std::to_string(e.to);
  }
  return out;
}

std::vector<CandidateNetwork> EnumerateCandidateNetworks(
    const relational::Database& db, const std::vector<KeywordMask>& table_masks,
    KeywordMask full_mask, const CnEnumOptions& options) {
  std::vector<CandidateNetwork> result;
  if (full_mask == 0) return result;
  trace::TraceSpan span(options.tracer, "cn.enumerate");
  std::unordered_set<std::string> seen;
  std::unordered_set<std::string> emitted;
  std::deque<CandidateNetwork> queue;

  // Seeds: every single keyword node.
  for (relational::TableId t = 0; t < db.num_tables(); ++t) {
    for (KeywordMask m : Submasks(table_masks[t] & full_mask)) {
      CandidateNetwork cn;
      cn.nodes.push_back(CnNode{t, m});
      if (seen.insert(cn.CanonicalKey()).second) queue.push_back(cn);
    }
  }
  span.AddCounter("seeds", queue.size());

  uint64_t expansions = 0;
  DeadlineChecker checker(options.deadline);
  while (!queue.empty()) {
    // Cancellation point: one check per BFS expansion (amortized).
    if (checker.Expired()) {
      span.AddEvent("cn.deadline.hit");
      break;
    }
    ++expansions;
    CandidateNetwork cn = std::move(queue.front());
    queue.pop_front();
    if (IsValidFinal(cn, full_mask)) {
      if (emitted.insert(cn.CanonicalKey()).second) result.push_back(cn);
    }
    if (cn.size() >= options.max_size) continue;
    // Expand: attach one new node to any existing node via a schema edge.
    for (uint32_t i = 0; i < cn.nodes.size(); ++i) {
      for (const relational::SchemaEdge& se :
           db.SchemaNeighbors(cn.nodes[i].table)) {
        // FK-uniqueness: the referencing endpoint of this new edge must
        // not already use this FK.
        if (se.forward && UsesFkAsReferencing(cn, i, se.fk)) continue;
        std::vector<KeywordMask> masks = {0};
        for (KeywordMask m : Submasks(table_masks[se.other] & full_mask)) {
          masks.push_back(m);
        }
        for (KeywordMask m : masks) {
          CandidateNetwork next = cn;
          const uint32_t j = static_cast<uint32_t>(next.nodes.size());
          next.nodes.push_back(CnNode{se.other, m});
          next.edges.push_back(CnEdge{i, j, se.fk, se.forward});
          if (seen.insert(next.CanonicalKey()).second) {
            queue.push_back(std::move(next));
          }
        }
      }
    }
  }
  // Order by size then canonical key for deterministic output.
  std::sort(result.begin(), result.end(),
            [](const CandidateNetwork& a, const CandidateNetwork& b) {
              if (a.size() != b.size()) return a.size() < b.size();
              return a.CanonicalKey() < b.CanonicalKey();
            });
  span.AddCounter("expansions", expansions);
  span.AddCounter("candidates_seen", seen.size());
  span.AddCounter("cns", result.size());
  return result;
}

}  // namespace kws::cn

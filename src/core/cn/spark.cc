#include "core/cn/spark.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <set>

#include "common/topk.h"
#include "text/tokenizer.h"

namespace kws::cn {

namespace {

/// Per-row dampened score Sum_k (1 + ln tf) * idf — the unit the skyline
/// bounds are built from.
double NodeSparkScore(const TupleSets& ts, relational::TableId table,
                      relational::RowId row) {
  double s = 0;
  for (size_t k = 0; k < ts.num_keywords(); ++k) {
    const uint32_t tf = ts.RowTf(table, row, k);
    if (tf > 0) s += (1.0 + std::log(static_cast<double>(tf))) * ts.Idf(k);
  }
  return s;
}

double SizePenalty(size_t size, double lambda) {
  return 1.0 + lambda * (static_cast<double>(size) - 1.0);
}

/// Keyword-node lists of one CN, re-sorted by the SPARK node score.
struct CnLists {
  std::vector<uint32_t> kw_nodes;
  std::vector<std::vector<ScoredRow>> lists;  // score = NodeSparkScore
  bool alive = false;
};

CnLists BuildLists(const CandidateNetwork& cn, const TupleSets& ts) {
  CnLists out;
  out.alive = true;
  for (uint32_t n = 0; n < cn.nodes.size(); ++n) {
    if (cn.nodes[n].free()) continue;
    const auto& base = ts.Get(cn.nodes[n].table, cn.nodes[n].mask);
    if (base.empty()) {
      out.alive = false;
      return out;
    }
    std::vector<ScoredRow> list;
    list.reserve(base.size());
    for (const ScoredRow& sr : base) {
      list.push_back(
          ScoredRow{sr.row, NodeSparkScore(ts, cn.nodes[n].table, sr.row)});
    }
    std::sort(list.begin(), list.end(),
              [](const ScoredRow& a, const ScoredRow& b) {
                if (a.score != b.score) return a.score > b.score;
                return a.row < b.row;
              });
    out.kw_nodes.push_back(n);
    out.lists.push_back(std::move(list));
  }
  out.alive = !out.kw_nodes.empty();
  return out;
}

}  // namespace

double SparkScore(const CandidateNetwork& cn, const TupleSets& ts,
                  const std::vector<relational::RowId>& rows, double lambda) {
  double score = 0;
  for (size_t k = 0; k < ts.num_keywords(); ++k) {
    uint64_t tf = 0;
    for (uint32_t n = 0; n < cn.nodes.size(); ++n) {
      tf += ts.RowTf(cn.nodes[n].table, rows[n], k);
    }
    if (tf > 0) {
      score += (1.0 + std::log(static_cast<double>(tf))) * ts.Idf(k);
    }
  }
  return score / SizePenalty(cn.size(), lambda);
}

double SparkUpperBound(const CandidateNetwork& cn, const TupleSets& ts,
                       const std::vector<uint32_t>& kw_nodes,
                       const std::vector<double>& node_scores, double lambda) {
  (void)ts;
  (void)kw_nodes;
  double sum = 0;
  for (double s : node_scores) sum += s;
  return sum / SizePenalty(cn.size(), lambda);
}

const char* SparkAlgorithmToString(SparkAlgorithm a) {
  switch (a) {
    case SparkAlgorithm::kNaive:
      return "naive";
    case SparkAlgorithm::kSkylineSweep:
      return "skyline-sweep";
    case SparkAlgorithm::kBlockPipeline:
      return "block-pipeline";
  }
  return "?";
}

std::vector<SearchResult> SparkSearch::Search(
    const std::string& query, const SparkOptions& options,
    std::vector<CandidateNetwork>* cns_out, SparkStats* stats) const {
  text::Tokenizer tokenizer;
  std::vector<std::string> keywords = tokenizer.Tokenize(query);
  if (keywords.size() > 16) keywords.resize(16);
  if (keywords.empty()) return {};
  TupleSets ts(db_, keywords);
  CnEnumOptions enum_opts;
  enum_opts.max_size = options.max_cn_size;
  std::vector<CandidateNetwork> cns = EnumerateCandidateNetworks(
      db_, ts.table_masks(), ts.full_mask(), enum_opts);
  if (stats != nullptr) stats->cns_enumerated = cns.size();

  TopK<SearchResult> top(options.k);
  const double lambda = options.lambda;

  auto make_result = [&](size_t cn_index, const JoinedTree& jt,
                         double score) {
    SearchResult r;
    r.cn_index = cn_index;
    r.score = score;
    for (uint32_t i = 0; i < cns[cn_index].nodes.size(); ++i) {
      r.tuples.push_back(
          relational::TupleId{cns[cn_index].nodes[i].table, jt.rows[i]});
    }
    return r;
  };

  if (options.algorithm == SparkAlgorithm::kNaive) {
    for (size_t i = 0; i < cns.size(); ++i) {
      ExecStats es;
      auto results = ExecuteCn(db_, cns[i], ts, {}, SIZE_MAX, &es);
      if (stats != nullptr) stats->join_lookups += es.join_lookups;
      for (const JoinedTree& jt : results) {
        const double score = SparkScore(cns[i], ts, jt.rows, lambda);
        if (stats != nullptr) ++stats->candidates_scored;
        top.Offer(score, make_result(i, jt, score));
      }
    }
  } else {
    // Shared machinery for skyline-sweep and block-pipeline: a global
    // priority queue of (bound, cn, index-vector) where the vector indexes
    // either elements (sweep) or blocks (pipeline).
    std::vector<CnLists> lists(cns.size());
    for (size_t i = 0; i < cns.size(); ++i) lists[i] = BuildLists(cns[i], ts);

    const bool block_mode =
        options.algorithm == SparkAlgorithm::kBlockPipeline;
    const size_t bs = block_mode ? std::max<size_t>(options.block_size, 1) : 1;

    struct QueueItem {
      double bound;
      size_t cn;
      std::vector<size_t> idx;
      bool operator<(const QueueItem& o) const { return bound < o.bound; }
    };
    std::priority_queue<QueueItem> pq;
    std::vector<std::set<std::vector<size_t>>> visited(cns.size());

    auto block_bound = [&](size_t cn, const std::vector<size_t>& idx) {
      double sum = 0;
      for (size_t d = 0; d < idx.size(); ++d) {
        sum += lists[cn].lists[d][idx[d] * bs].score;
      }
      return sum / SizePenalty(cns[cn].size(), lambda);
    };

    for (size_t i = 0; i < cns.size(); ++i) {
      if (!lists[i].alive) continue;
      std::vector<size_t> zero(lists[i].kw_nodes.size(), 0);
      visited[i].insert(zero);
      pq.push(QueueItem{block_bound(i, zero), i, std::move(zero)});
    }

    // Verifies one element combination: pins keyword rows, joins, scores.
    auto verify = [&](size_t cn_index, const std::vector<size_t>& elem_idx) {
      const CandidateNetwork& cn = cns[cn_index];
      const CnLists& cl = lists[cn_index];
      // Cheap bound first: skip the join when even the bound loses.
      double bound = 0;
      for (size_t d = 0; d < elem_idx.size(); ++d) {
        bound += cl.lists[d][elem_idx[d]].score;
      }
      bound /= SizePenalty(cn.size(), lambda);
      if (top.WouldReject(bound)) return;
      std::vector<std::optional<relational::RowId>> fixed(cn.nodes.size());
      std::vector<relational::RowId> rows(cn.nodes.size(), 0);
      for (size_t d = 0; d < elem_idx.size(); ++d) {
        fixed[cl.kw_nodes[d]] = cl.lists[d][elem_idx[d]].row;
      }
      ExecStats es;
      auto results = ExecuteCn(db_, cn, ts, fixed, SIZE_MAX, &es);
      if (stats != nullptr) {
        stats->join_lookups += es.join_lookups;
        ++stats->candidates_scored;
      }
      for (const JoinedTree& jt : results) {
        const double score = SparkScore(cn, ts, jt.rows, lambda);
        top.Offer(score, make_result(cn_index, jt, score));
      }
      (void)rows;
    };

    while (!pq.empty()) {
      QueueItem item = pq.top();
      pq.pop();
      if (stats != nullptr) ++stats->queue_pops;
      if (top.Full() && top.WouldReject(item.bound)) break;
      const CnLists& cl = lists[item.cn];
      if (block_mode) {
        // Enumerate every element combination inside this block combo.
        std::vector<size_t> elem(item.idx.size());
        auto enumerate = [&](auto&& self, size_t d) -> void {
          if (d == item.idx.size()) {
            verify(item.cn, elem);
            return;
          }
          const size_t begin = item.idx[d] * bs;
          const size_t end = std::min(begin + bs, cl.lists[d].size());
          for (size_t e = begin; e < end; ++e) {
            elem[d] = e;
            self(self, d + 1);
          }
        };
        enumerate(enumerate, 0);
      } else {
        verify(item.cn, item.idx);
      }
      // Successors: advance each dimension by one step (element or block).
      for (size_t d = 0; d < item.idx.size(); ++d) {
        const size_t next_start = (item.idx[d] + 1) * bs;
        if (next_start >= cl.lists[d].size()) continue;
        std::vector<size_t> next = item.idx;
        ++next[d];
        if (!visited[item.cn].insert(next).second) continue;
        pq.push(QueueItem{block_bound(item.cn, next), item.cn,
                          std::move(next)});
      }
    }
  }

  if (cns_out != nullptr) *cns_out = std::move(cns);
  std::vector<SearchResult> out;
  for (auto& [score, result] : top.TakeSorted()) out.push_back(std::move(result));
  return out;
}

}  // namespace kws::cn

#ifndef KWDB_CORE_CN_EXECUTE_H_
#define KWDB_CORE_CN_EXECUTE_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "common/deadline.h"
#include "core/cn/candidate_network.h"
#include "core/cn/tuple_sets.h"

namespace kws::cn {

/// One joined answer: a tuple per CN node, plus the monotonic
/// (DISCOVER2-style) score: sum of per-tuple scores / CN size.
struct JoinedTree {
  std::vector<relational::RowId> rows;  // indexed by CN node
  double score = 0;
};

/// Execution counters used by the E2/E3 benchmarks.
struct ExecStats {
  uint64_t join_lookups = 0;    // FK index probes
  uint64_t results = 0;         // complete joined trees materialized
  uint64_t partial_states = 0;  // partial assignments explored
};

/// Optional row filter: rows[t][r] == false excludes row r of table t
/// (used by the stream evaluator to restrict joins to already-arrived
/// tuples). A null pointer admits everything.
using RowFilter = std::vector<std::vector<bool>>;

/// Enumerates joined trees of `cn`. Every node's tuple must belong to its
/// exact tuple set (free nodes take keyword-less tuples only). `fixed`
/// optionally pins some nodes to specific rows (used by the pipelined
/// top-k strategies to verify one candidate combination); pass an empty
/// vector to leave all nodes unconstrained. At most `limit` results.
/// A non-null `deadline` adds a cancellation point to the join expansion:
/// on expiry the enumeration stops and the trees found so far are
/// returned (the caller decides how to surface the truncation).
std::vector<JoinedTree> ExecuteCn(
    const relational::Database& db, const CandidateNetwork& cn,
    const TupleSets& ts,
    const std::vector<std::optional<relational::RowId>>& fixed = {},
    size_t limit = SIZE_MAX, ExecStats* stats = nullptr,
    const RowFilter* filter = nullptr, const Deadline* deadline = nullptr);

/// Upper bound on the monotonic score of any result of `cn`: sum of the
/// best tuple-set scores divided by CN size (the MPS bound driving the
/// Sparse and pipelined strategies).
double CnScoreBound(const CandidateNetwork& cn, const TupleSets& ts);

}  // namespace kws::cn

#endif  // KWDB_CORE_CN_EXECUTE_H_

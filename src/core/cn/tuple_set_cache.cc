#include "core/cn/tuple_set_cache.h"

#include <utility>

namespace kws::cn {

std::shared_ptr<const TermFrontier> BuildTermFrontier(
    const relational::Database& db, std::string_view term,
    const Deadline& deadline, trace::Tracer* tracer) {
  const size_t num_tables = db.num_tables();
  auto frontier = std::make_shared<TermFrontier>();
  frontier->tables.resize(num_tables);
  for (relational::TableId t = 0; t < num_tables; ++t) {
    // Cancellation point per table: a mid-build expiry discards the
    // partial frontier entirely.
    if (deadline.Expired()) return nullptr;
    const text::PostingList& plist = db.TextIndex(t).GetPostings(term);
    frontier->df += plist.size();
    TermFrontier::TableFrontier& tf = frontier->tables[t];
    tf.rows.assign(plist.docs().begin(), plist.docs().end());
    tf.tfs.assign(plist.tfs().begin(), plist.tfs().end());
    frontier->num_rows += plist.size();
  }
  trace::AddCounter(tracer, "cn.frontier.built", 1);
  trace::AddCounter(tracer, "cn.frontier.rows", frontier->num_rows);
  return frontier;
}

TupleSetCache::TupleSetCache(const relational::Database& db, size_t capacity)
    : db_(db), capacity_(capacity) {}

void TupleSetCache::AttachCounters(Counter* hits, Counter* misses,
                                   Counter* evictions) {
  hit_counter_ = hits;
  miss_counter_ = misses;
  eviction_counter_ = evictions;
}

std::shared_ptr<const TermFrontier> TupleSetCache::Get(
    std::string_view term, const Deadline& deadline, trace::Tracer* tracer) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(term);
    if (it != index_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      hits_.fetch_add(1, std::memory_order_relaxed);
      if (hit_counter_ != nullptr) hit_counter_->Add();
      // The tracer belongs to the calling query, not the shared cache, so
      // annotating under the lock is safe and race-free.
      trace::AddCounter(tracer, "cn.tuple_cache.hits", 1);
      return it->second->frontier;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  if (miss_counter_ != nullptr) miss_counter_->Add();
  trace::AddCounter(tracer, "cn.tuple_cache.misses", 1);

  // Build outside the lock: frontier construction walks every table's
  // postings and must not serialize concurrent queries on other terms.
  std::shared_ptr<const TermFrontier> frontier =
      BuildTermFrontier(db_, term, deadline, tracer);
  // Deadline-truncated builds are never cached (nor returned as data).
  if (frontier == nullptr || capacity_ == 0) return frontier;

  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(term);
  if (it != index_.end()) {
    // Another thread built and inserted it first; keep the cached one so
    // all holders share one frontier.
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->frontier;
  }
  lru_.push_front(Entry{std::string(term), frontier});
  index_.emplace(lru_.front().term, lru_.begin());
  insertions_.fetch_add(1, std::memory_order_relaxed);
  while (index_.size() > capacity_) {  // LRU eviction, bounded by one overflow entry -- kwslint: allow(deadline-loop)
    index_.erase(lru_.back().term);
    lru_.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
    if (eviction_counter_ != nullptr) eviction_counter_->Add();
  }
  return frontier;
}

size_t TupleSetCache::Invalidate(const std::vector<std::string>& terms) {
  size_t dropped = 0;
  std::lock_guard<std::mutex> lock(mu_);
  for (const std::string& term : terms) {
    auto it = index_.find(term);
    if (it == index_.end()) continue;
    lru_.erase(it->second);
    index_.erase(it);
    ++dropped;
  }
  invalidations_.fetch_add(dropped, std::memory_order_relaxed);
  return dropped;
}

size_t TupleSetCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return index_.size();
}

TupleSetCache::Stats TupleSetCache::stats() const {
  Stats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.insertions = insertions_.load(std::memory_order_relaxed);
  s.invalidations = invalidations_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace kws::cn

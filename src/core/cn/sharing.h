#ifndef KWDB_CORE_CN_SHARING_H_
#define KWDB_CORE_CN_SHARING_H_

#include <cstddef>
#include <vector>

#include "core/cn/candidate_network.h"
#include "core/cn/tuple_sets.h"

namespace kws::cn {

/// Sharing structure of a CN workload (tutorial slides 129-135: the
/// operator mesh of Markowetz et al. and SPARK2's partition graph exploit
/// that "many CNs overlap substantially with each other").
struct SharingStats {
  size_t total_cns = 0;
  /// Sum over CNs of their edge counts — the join work of evaluating each
  /// CN independently.
  size_t total_join_edges = 0;
  /// Distinct canonical single-join expressions — the join work after
  /// perfect single-edge sharing.
  size_t distinct_join_edges = 0;
  /// All split-parts: every edge split of every CN yields two rooted
  /// subtrees (the sub-expressions a mesh node could materialize).
  size_t total_subtrees = 0;
  /// Distinct canonical split-parts — the mesh size.
  size_t distinct_subtrees = 0;
  /// CNs (size > 1) with at least one edge split whose BOTH parts occur
  /// as split-parts of other CNs too — SPARK2's "CN obtainable by joining
  /// two shared sub-CNs".
  size_t composable_cns = 0;

  double EdgeSharingRatio() const {
    return total_join_edges == 0
               ? 0
               : 1.0 - static_cast<double>(distinct_join_edges) /
                           static_cast<double>(total_join_edges);
  }
  double SubtreeSharingRatio() const {
    return total_subtrees == 0
               ? 0
               : 1.0 - static_cast<double>(distinct_subtrees) /
                           static_cast<double>(total_subtrees);
  }
};

/// Analyzes how much computation a shared execution plan (operator mesh /
/// partition graph) could reuse across `cns`.
SharingStats AnalyzeSharing(const std::vector<CandidateNetwork>& cns);

/// Counters for the shared counting execution.
struct SharedExecStats {
  uint64_t memo_hits = 0;
  uint64_t memo_misses = 0;
  uint64_t join_lookups = 0;
};

/// Counts every CN's results with partition-graph style sharing: the
/// per-row result-count table of each rooted sub-expression (keyed by
/// CandidateNetwork::RootedKey) is computed once and reused across all
/// CNs containing an isomorphic subtree. With `share == false` the same
/// recursion runs without the memo — the independent-evaluation baseline
/// the E15 benchmark compares against.
///
/// Returns, per CN, exactly ExecuteCn(...).size().
std::vector<uint64_t> SharedCountAll(const relational::Database& db,
                                     const std::vector<CandidateNetwork>& cns,
                                     const TupleSets& ts, bool share = true,
                                     SharedExecStats* stats = nullptr);

}  // namespace kws::cn

#endif  // KWDB_CORE_CN_SHARING_H_

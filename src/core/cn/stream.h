#ifndef KWDB_CORE_CN_STREAM_H_
#define KWDB_CORE_CN_STREAM_H_

#include <memory>
#include <vector>

#include "core/cn/candidate_network.h"
#include "core/cn/execute.h"
#include "core/cn/search.h"
#include "core/cn/tuple_sets.h"

namespace kws::cn {

/// Counters for the E16 benchmark.
struct StreamStats {
  uint64_t arrivals = 0;
  uint64_t probes = 0;          // constrained CN executions attempted
  uint64_t results_emitted = 0;
  uint64_t join_lookups = 0;
};

/// Incremental keyword search over a relational tuple stream (Markowetz
/// et al., SIGMOD 07; tutorial slides 115, 134): the CN workload is fixed
/// up front (no CN can be pruned), tuples arrive one at a time, and every
/// joined tree is emitted exactly once — at the arrival of its LAST
/// tuple.
///
/// The simulator view: the database already holds all tuples; the
/// evaluator tracks which have "arrived" and restricts joins to them. On
/// each arrival it probes, for every CN and every node position the new
/// tuple can occupy, the joins completed by that tuple.
class StreamEvaluator {
 public:
  /// `cns` is the fixed workload (typically EnumerateCandidateNetworks
  /// output for the query's keywords); `ts` the matching tuple sets.
  /// Both are copied. The database must outlive the evaluator.
  StreamEvaluator(const relational::Database& db,
                  std::vector<CandidateNetwork> cns, TupleSets ts);

  /// Feeds one tuple; returns the joined trees completed by it (each
  /// result's tuples have all arrived, and the new tuple participates).
  std::vector<SearchResult> OnArrival(relational::TupleId tuple,
                                      StreamStats* stats = nullptr);

  /// Number of tuples arrived so far.
  uint64_t arrived_count() const { return arrived_count_; }

 private:
  const relational::Database& db_;
  std::vector<CandidateNetwork> cns_;
  TupleSets ts_;
  RowFilter arrived_;
  uint64_t arrived_count_ = 0;
};

}  // namespace kws::cn

#endif  // KWDB_CORE_CN_STREAM_H_

#ifndef KWDB_CORE_CN_STREAM_H_
#define KWDB_CORE_CN_STREAM_H_

#include <memory>
#include <vector>

#include "common/deadline.h"
#include "common/status.h"
#include "core/cn/candidate_network.h"
#include "core/cn/execute.h"
#include "core/cn/search.h"
#include "core/cn/tuple_sets.h"

namespace kws::cn {

/// Counters for the E16 benchmark.
struct StreamStats {
  uint64_t arrivals = 0;
  uint64_t probes = 0;          // constrained CN executions attempted
  uint64_t results_emitted = 0;
  uint64_t join_lookups = 0;
};

/// Incremental keyword search over a relational tuple stream (Markowetz
/// et al., SIGMOD 07; tutorial slides 115, 134): the CN workload is fixed
/// up front (no CN can be pruned), tuples arrive one at a time, and every
/// joined tree is emitted exactly once — at the arrival of its LAST
/// tuple.
///
/// The simulator view: the database already holds all tuples; the
/// evaluator tracks which have "arrived" and restricts joins to them. On
/// each arrival it probes, for every CN and every node position the new
/// tuple can occupy, the joins completed by that tuple.
///
/// Live inserts: the arrival bitmap grows on demand (`MarkArrived` /
/// `OnArrival` accept rows appended to the database after construction),
/// and `ContinualQuery` reuses the same probe (`Probe`) to propagate
/// insert batches into standing top-k results.
class StreamEvaluator {
 public:
  /// `cns` is the fixed workload (typically EnumerateCandidateNetworks
  /// output for the query's keywords); `ts` the matching tuple sets.
  /// Both are copied. The database must outlive the evaluator.
  StreamEvaluator(const relational::Database& db,
                  std::vector<CandidateNetwork> cns, TupleSets ts);

  /// Feeds one tuple: marks it arrived and appends the joined trees it
  /// completes to `*out` (each result's tuples have all arrived, and the
  /// new tuple participates). A duplicate arrival is a no-op. A finite
  /// `deadline` adds a cancellation point per probe execution (the
  /// long-running-loop convention): on expiry the trees found so far are
  /// still appended and kDeadlineExceeded is returned — the emission is
  /// PARTIAL for this arrival (the tuple stays arrived; trees missed here
  /// are not re-emitted later), so callers owning exactly-once contracts
  /// must treat the stream as broken and rebuild.
  Status OnArrival(relational::TupleId tuple, std::vector<SearchResult>* out,
                   StreamStats* stats = nullptr, const Deadline& deadline = {});

  /// Convenience wrapper: infinite deadline, results by value (the
  /// original E16 interface).
  std::vector<SearchResult> OnArrival(relational::TupleId tuple,
                                      StreamStats* stats = nullptr);

  /// Marks `tuple` arrived without probing; returns true when it was not
  /// arrived yet. Grows the arrival bitmap when the database has grown
  /// past its construction-time size (live inserts). `ContinualQuery`
  /// marks a whole insert batch before probing so trees joining several
  /// new tuples are visible to each member's probe.
  bool MarkArrived(relational::TupleId tuple);

  /// Marks every current row of every table arrived (a standing query
  /// registers against the full database, then streams inserts).
  void MarkAllArrived();

  /// Appends to `*out` the joined trees that `tuple` completes among the
  /// arrived rows, without changing any state; `tuple` itself must have
  /// arrived. Within the call the same tree reachable through different
  /// node positions is deduplicated; across calls the caller owns
  /// deduplication. Const and safe to call concurrently from several
  /// threads (the arrival bitmap and tuple sets are read-only here).
  /// Deadline semantics match `OnArrival`.
  Status Probe(relational::TupleId tuple, std::vector<SearchResult>* out,
               StreamStats* stats = nullptr,
               const Deadline& deadline = {}) const;

  /// Number of tuples arrived so far.
  uint64_t arrived_count() const { return arrived_count_; }

  /// The fixed CN workload (`SearchResult::cn_index` refers into it).
  const std::vector<CandidateNetwork>& cns() const { return cns_; }

  /// The evaluator's private tuple sets. The mutable overload exists for
  /// a continual-query owner that calls `TupleSets::ApplyInserts`
  /// between batches; it must not be used concurrently with `Probe`.
  TupleSets& tuple_sets() { return ts_; }
  const TupleSets& tuple_sets() const { return ts_; }

 private:
  const relational::Database& db_;
  std::vector<CandidateNetwork> cns_;
  TupleSets ts_;
  RowFilter arrived_;
  uint64_t arrived_count_ = 0;
};

}  // namespace kws::cn

#endif  // KWDB_CORE_CN_STREAM_H_

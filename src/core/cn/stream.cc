#include "core/cn/stream.h"

#include <set>
#include <utility>

#include "common/check.h"

namespace kws::cn {

StreamEvaluator::StreamEvaluator(const relational::Database& db,
                                 std::vector<CandidateNetwork> cns,
                                 TupleSets ts)
    : db_(db), cns_(std::move(cns)), ts_(std::move(ts)) {
  arrived_.resize(db.num_tables());
  for (relational::TableId t = 0; t < db.num_tables(); ++t) {
    arrived_[t].assign(db.table(t).num_rows(), false);
  }
}

bool StreamEvaluator::MarkArrived(relational::TupleId tuple) {
  KWS_CHECK_MSG(tuple.table < arrived_.size(), "arrival for unknown table");
  std::vector<bool>& seen = arrived_[tuple.table];
  if (tuple.row >= seen.size()) {
    // The database grew since construction (live inserts); extend the
    // bitmap to its current size.
    const size_t now = db_.table(tuple.table).num_rows();
    KWS_CHECK_MSG(tuple.row < now, "arrival for nonexistent row");
    seen.resize(now, false);
  }
  if (seen[tuple.row]) return false;
  seen[tuple.row] = true;
  ++arrived_count_;
  return true;
}

void StreamEvaluator::MarkAllArrived() {
  arrived_count_ = 0;
  for (relational::TableId t = 0; t < arrived_.size(); ++t) {
    arrived_[t].assign(db_.table(t).num_rows(), true);
    arrived_count_ += arrived_[t].size();
  }
}

Status StreamEvaluator::Probe(relational::TupleId tuple,
                              std::vector<SearchResult>* out,
                              StreamStats* stats,
                              const Deadline& deadline) const {
  const KeywordMask mask = ts_.RowMask(tuple.table, tuple.row);
  DeadlineChecker checker(deadline, /*stride=*/1);
  for (size_t c = 0; c < cns_.size(); ++c) {
    const CandidateNetwork& cn = cns_[c];
    // Within one arrival the same tree can be found through different
    // node positions the new tuple occupies; dedup by row vector.
    std::set<std::vector<relational::RowId>> seen;
    for (uint32_t i = 0; i < cn.nodes.size(); ++i) {
      if (cn.nodes[i].table != tuple.table) continue;
      if (cn.nodes[i].mask != mask) continue;  // exact tuple-set semantics
      // Cancellation point per probe execution; the deadline also
      // threads into ExecuteCn so one oversized join cannot overshoot.
      if (checker.Expired()) {
        return Status::DeadlineExceeded(
            "deadline expired probing arrival (partial emission)");
      }
      std::vector<std::optional<relational::RowId>> fixed(cn.nodes.size());
      fixed[i] = tuple.row;
      ExecStats es;
      auto results = ExecuteCn(db_, cn, ts_, fixed, SIZE_MAX, &es, &arrived_,
                               &deadline);
      if (stats != nullptr) {
        ++stats->probes;
        stats->join_lookups += es.join_lookups;
      }
      for (const JoinedTree& jt : results) {
        if (!seen.insert(jt.rows).second) continue;
        SearchResult r;
        r.cn_index = c;
        r.score = jt.score;
        for (uint32_t n = 0; n < cn.nodes.size(); ++n) {
          r.tuples.push_back(
              relational::TupleId{cn.nodes[n].table, jt.rows[n]});
        }
        out->push_back(std::move(r));
        if (stats != nullptr) ++stats->results_emitted;
      }
      // A deadline expiry inside ExecuteCn silently truncates its trees;
      // surface it so the caller knows this arrival's emission is short.
      if (deadline.Expired()) {
        return Status::DeadlineExceeded(
            "deadline expired probing arrival (partial emission)");
      }
    }
  }
  return Status::OK();
}

Status StreamEvaluator::OnArrival(relational::TupleId tuple,
                                  std::vector<SearchResult>* out,
                                  StreamStats* stats,
                                  const Deadline& deadline) {
  if (!MarkArrived(tuple)) return Status::OK();  // duplicate arrival
  if (stats != nullptr) ++stats->arrivals;
  return Probe(tuple, out, stats, deadline);
}

std::vector<SearchResult> StreamEvaluator::OnArrival(
    relational::TupleId tuple, StreamStats* stats) {
  std::vector<SearchResult> out;
  // Infinite deadline: the only non-OK status is deadline expiry, so
  // this cannot drop results.
  const Status s = OnArrival(tuple, &out, stats, Deadline::Infinite());
  (void)s;
  return out;
}

}  // namespace kws::cn

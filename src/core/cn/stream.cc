#include "core/cn/stream.h"

#include <set>

namespace kws::cn {

StreamEvaluator::StreamEvaluator(const relational::Database& db,
                                 std::vector<CandidateNetwork> cns,
                                 TupleSets ts)
    : db_(db), cns_(std::move(cns)), ts_(std::move(ts)) {
  arrived_.resize(db.num_tables());
  for (relational::TableId t = 0; t < db.num_tables(); ++t) {
    arrived_[t].assign(db.table(t).num_rows(), false);
  }
}

std::vector<SearchResult> StreamEvaluator::OnArrival(
    relational::TupleId tuple, StreamStats* stats) {
  std::vector<SearchResult> out;
  if (arrived_[tuple.table][tuple.row]) return out;  // duplicate arrival
  arrived_[tuple.table][tuple.row] = true;
  ++arrived_count_;
  if (stats != nullptr) ++stats->arrivals;
  const KeywordMask mask = ts_.RowMask(tuple.table, tuple.row);

  for (size_t c = 0; c < cns_.size(); ++c) {
    const CandidateNetwork& cn = cns_[c];
    // Within one arrival the same tree can be found through different
    // node positions the new tuple occupies; dedup by row vector.
    std::set<std::vector<relational::RowId>> seen;
    for (uint32_t i = 0; i < cn.nodes.size(); ++i) {
      if (cn.nodes[i].table != tuple.table) continue;
      if (cn.nodes[i].mask != mask) continue;  // exact tuple-set semantics
      std::vector<std::optional<relational::RowId>> fixed(cn.nodes.size());
      fixed[i] = tuple.row;
      ExecStats es;
      auto results =
          ExecuteCn(db_, cn, ts_, fixed, SIZE_MAX, &es, &arrived_);
      if (stats != nullptr) {
        ++stats->probes;
        stats->join_lookups += es.join_lookups;
      }
      for (const JoinedTree& jt : results) {
        if (!seen.insert(jt.rows).second) continue;
        SearchResult r;
        r.cn_index = c;
        r.score = jt.score;
        for (uint32_t n = 0; n < cn.nodes.size(); ++n) {
          r.tuples.push_back(
              relational::TupleId{cn.nodes[n].table, jt.rows[n]});
        }
        out.push_back(std::move(r));
        if (stats != nullptr) ++stats->results_emitted;
      }
    }
  }
  return out;
}

}  // namespace kws::cn

#include "core/cn/search.h"

#include <algorithm>
#include <queue>
#include <set>

#include "common/topk.h"
#include "text/tokenizer.h"

namespace kws::cn {

namespace {

/// Converts one joined tree into a SearchResult.
SearchResult MakeResult(size_t cn_index, const CandidateNetwork& cn,
                        const JoinedTree& jt) {
  SearchResult r;
  r.cn_index = cn_index;
  r.score = jt.score;
  r.tuples.reserve(cn.nodes.size());
  for (uint32_t i = 0; i < cn.nodes.size(); ++i) {
    r.tuples.push_back(
        relational::TupleId{cn.nodes[i].table, jt.rows[i]});
  }
  return r;
}

std::vector<SearchResult> Finish(TopK<SearchResult>& top) {
  std::vector<SearchResult> out;
  for (auto& [score, result] : top.TakeSorted()) {
    out.push_back(std::move(result));
  }
  return out;
}

void RunNaive(const relational::Database& db,
              const std::vector<CandidateNetwork>& cns, const TupleSets& ts,
              size_t k, const Deadline& deadline, bool* deadline_hit,
              TopK<SearchResult>& top, SearchStats* stats) {
  for (size_t i = 0; i < cns.size(); ++i) {
    if (deadline.Expired()) {
      *deadline_hit = true;
      break;
    }
    ExecStats es;
    auto results =
        ExecuteCn(db, cns[i], ts, {}, SIZE_MAX, &es, nullptr, &deadline);
    if (stats != nullptr) {
      ++stats->cns_evaluated;
      stats->join_lookups += es.join_lookups;
      stats->results_materialized += es.results;
    }
    for (const JoinedTree& jt : results) {
      top.Offer(jt.score, MakeResult(i, cns[i], jt));
    }
  }
  (void)k;
}

void RunSparse(const relational::Database& db,
               const std::vector<CandidateNetwork>& cns, const TupleSets& ts,
               size_t k, const Deadline& deadline, bool* deadline_hit,
               TopK<SearchResult>& top, SearchStats* stats) {
  std::vector<std::pair<double, size_t>> order;
  for (size_t i = 0; i < cns.size(); ++i) {
    const double bound = CnScoreBound(cns[i], ts);
    if (bound > 0) order.emplace_back(bound, i);
  }
  std::sort(order.rbegin(), order.rend());
  for (const auto& [bound, i] : order) {
    if (top.size() >= k && top.WouldReject(bound)) break;
    if (deadline.Expired()) {
      *deadline_hit = true;
      break;
    }
    ExecStats es;
    auto results =
        ExecuteCn(db, cns[i], ts, {}, SIZE_MAX, &es, nullptr, &deadline);
    if (stats != nullptr) {
      ++stats->cns_evaluated;
      stats->join_lookups += es.join_lookups;
      stats->results_materialized += es.results;
    }
    for (const JoinedTree& jt : results) {
      top.Offer(jt.score, MakeResult(i, cns[i], jt));
    }
  }
}

void RunGlobalPipeline(const relational::Database& db,
                       const std::vector<CandidateNetwork>& cns,
                       const TupleSets& ts, size_t k,
                       const Deadline& deadline, bool* deadline_hit,
                       TopK<SearchResult>& top, SearchStats* stats) {
  // Per-CN pipeline state: the keyword-node lists and visited index
  // combinations.
  struct CnState {
    std::vector<uint32_t> kw_nodes;
    std::vector<const std::vector<ScoredRow>*> lists;
    std::set<std::vector<size_t>> visited;
  };
  std::vector<CnState> states(cns.size());
  struct QueueItem {
    double bound;
    size_t cn;
    std::vector<size_t> idx;
    bool operator<(const QueueItem& o) const { return bound < o.bound; }
  };
  std::priority_queue<QueueItem> pq;

  for (size_t i = 0; i < cns.size(); ++i) {
    CnState& st = states[i];
    bool dead = false;
    for (uint32_t n = 0; n < cns[i].nodes.size(); ++n) {
      if (cns[i].nodes[n].free()) continue;
      const auto& list = ts.Get(cns[i].nodes[n].table, cns[i].nodes[n].mask);
      if (list.empty()) {
        dead = true;
        break;
      }
      st.kw_nodes.push_back(n);
      st.lists.push_back(&list);
    }
    if (dead || st.kw_nodes.empty()) continue;
    std::vector<size_t> zero(st.kw_nodes.size(), 0);
    double bound = 0;
    for (size_t d = 0; d < st.lists.size(); ++d) {
      bound += (*st.lists[d])[0].score;
    }
    bound /= static_cast<double>(cns[i].size());
    st.visited.insert(zero);
    pq.push(QueueItem{bound, i, std::move(zero)});
  }

  DeadlineChecker checker(deadline, 16);
  while (!pq.empty()) {
    QueueItem item = pq.top();
    pq.pop();
    if (top.size() >= k && top.WouldReject(item.bound)) break;
    if (checker.Expired()) {
      *deadline_hit = true;
      break;
    }
    const CandidateNetwork& cn = cns[item.cn];
    CnState& st = states[item.cn];
    // Verify this combination: pin the keyword nodes, join the rest.
    std::vector<std::optional<relational::RowId>> fixed(cn.nodes.size());
    for (size_t d = 0; d < st.kw_nodes.size(); ++d) {
      fixed[st.kw_nodes[d]] = (*st.lists[d])[item.idx[d]].row;
    }
    ExecStats es;
    auto results =
        ExecuteCn(db, cn, ts, fixed, SIZE_MAX, &es, nullptr, &deadline);
    if (stats != nullptr) {
      ++stats->candidates_verified;
      stats->join_lookups += es.join_lookups;
      stats->results_materialized += es.results;
    }
    for (const JoinedTree& jt : results) {
      top.Offer(jt.score, MakeResult(item.cn, cn, jt));
    }
    // Successors: advance one dimension each.
    for (size_t d = 0; d < item.idx.size(); ++d) {
      if (item.idx[d] + 1 >= st.lists[d]->size()) continue;
      std::vector<size_t> next = item.idx;
      ++next[d];
      if (!st.visited.insert(next).second) continue;
      double bound = 0;
      for (size_t d2 = 0; d2 < next.size(); ++d2) {
        bound += (*st.lists[d2])[next[d2]].score;
      }
      bound /= static_cast<double>(cn.size());
      pq.push(QueueItem{bound, item.cn, std::move(next)});
    }
  }
  if (stats != nullptr) {
    for (const CnState& st : states) {
      stats->cns_evaluated += !st.kw_nodes.empty();
    }
  }
}

}  // namespace

const char* StrategyToString(Strategy s) {
  switch (s) {
    case Strategy::kNaive:
      return "naive";
    case Strategy::kSparse:
      return "sparse";
    case Strategy::kGlobalPipeline:
      return "global-pipeline";
  }
  return "?";
}

std::vector<SearchResult> CnKeywordSearch::Search(
    const std::string& query, const SearchOptions& options,
    std::vector<CandidateNetwork>* cns_out, SearchStats* stats) const {
  text::Tokenizer tokenizer;
  std::vector<std::string> keywords = tokenizer.Tokenize(query);
  if (keywords.size() > 16) keywords.resize(16);
  if (keywords.empty()) return {};

  bool deadline_hit = false;
  TopK<SearchResult> top(options.k);
  TupleSets ts(db_, keywords, options.tuple_cache, options.deadline);
  if (ts.truncated() || options.deadline.Expired()) {
    deadline_hit = true;
    if (stats != nullptr) stats->deadline_hit = true;
    if (cns_out != nullptr) cns_out->clear();
    return {};
  }
  CnEnumOptions enum_opts;
  enum_opts.max_size = options.max_cn_size;
  enum_opts.deadline = options.deadline;
  std::vector<CandidateNetwork> cns = EnumerateCandidateNetworks(
      db_, ts.table_masks(), ts.full_mask(), enum_opts);
  if (stats != nullptr) stats->cns_enumerated = cns.size();

  if (options.deadline.Expired()) {
    deadline_hit = true;
  } else {
    switch (options.strategy) {
      case Strategy::kNaive:
        RunNaive(db_, cns, ts, options.k, options.deadline, &deadline_hit,
                 top, stats);
        break;
      case Strategy::kSparse:
        RunSparse(db_, cns, ts, options.k, options.deadline, &deadline_hit,
                  top, stats);
        break;
      case Strategy::kGlobalPipeline:
        RunGlobalPipeline(db_, cns, ts, options.k, options.deadline,
                          &deadline_hit, top, stats);
        break;
    }
  }
  if (stats != nullptr) stats->deadline_hit = deadline_hit;
  if (cns_out != nullptr) *cns_out = std::move(cns);
  return Finish(top);
}

}  // namespace kws::cn

#include "core/cn/search.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <optional>
#include <queue>
#include <set>
#include <thread>
#include <utility>

#include "common/concurrent_topk.h"
#include "common/thread_pool.h"
#include "common/topk.h"
#include "text/tokenizer.h"

namespace kws::cn {

namespace {

/// Serial collector: exact k-best under the deterministic result order.
using ResultTopK = OrderedTopK<SearchResult, SearchResultOrder>;
/// Parallel collector: one shard per worker, same selection function.
using SharedTopK = ConcurrentTopK<SearchResult, SearchResultOrder>;

/// Converts one joined tree into a SearchResult.
SearchResult MakeResult(size_t cn_index, const CandidateNetwork& cn,
                        const JoinedTree& jt) {
  SearchResult r;
  r.cn_index = cn_index;
  r.score = jt.score;
  r.tuples.reserve(cn.nodes.size());
  for (uint32_t i = 0; i < cn.nodes.size(); ++i) {
    r.tuples.push_back(
        relational::TupleId{cn.nodes[i].table, jt.rows[i]});
  }
  return r;
}

/// The best-ranked hypothetical result CN `cn_index` could still produce
/// under score bound `bound`: an empty tuple list compares below any real
/// one, so when the collector rejects this probe it rejects every real
/// result the CN could yield — the sound early-termination test under the
/// tie-aware total order.
SearchResult BoundProbe(size_t cn_index, double bound) {
  SearchResult probe;
  probe.cn_index = cn_index;
  probe.score = bound;
  return probe;
}

/// The modeled per-CN RDBMS round-trip; see
/// SearchOptions::simulated_cn_io_micros.
void SimulateCnIo(uint64_t micros) {
  if (micros > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(micros));
  }
}

void AddExec(const ExecStats& es, SearchStats* stats) {
  if (stats == nullptr) return;
  stats->join_lookups += es.join_lookups;
  stats->results_materialized += es.results;
}

/// The `cn.execute.*` span name for a strategy. Returned as data (not a
/// call-site literal) so the one metric-name the linter can't see stays
/// consistent with StrategyToString.
const char* ExecSpanName(Strategy s) {
  switch (s) {
    case Strategy::kNaive:
      return "cn.execute.naive";
    case Strategy::kSparse:
      return "cn.execute.sparse";
    case Strategy::kGlobalPipeline:
      return "cn.execute.global_pipeline";
  }
  return "cn.execute.unknown";
}

/// Mirrors the aggregate work counters onto the execution span. For
/// kNaive these are identical at every thread count; for kSparse /
/// kGlobalPipeline the values (not the names) may vary with thread count,
/// matching the SearchStats contract.
void AnnotateExec(trace::TraceSpan* span, const SearchStats* st) {
  if (st == nullptr || span->tracer() == nullptr) return;
  span->AddCounter("cns_evaluated", st->cns_evaluated);
  span->AddCounter("results_materialized", st->results_materialized);
  span->AddCounter("join_lookups", st->join_lookups);
  span->AddCounter("candidates_verified", st->candidates_verified);
}

/// CNs in (bound descending, index ascending) order, dead CNs (bound 0)
/// dropped — the kSparse evaluation order. The explicit index tie-break
/// keeps tied-bound CNs in index order, matching kNaive and the parallel
/// merge (a reversed sort here used to flip them).
std::vector<std::pair<double, size_t>> SparseOrder(
    const std::vector<CandidateNetwork>& cns, const TupleSets& ts) {
  std::vector<std::pair<double, size_t>> order;
  for (size_t i = 0; i < cns.size(); ++i) {
    const double bound = CnScoreBound(cns[i], ts);
    if (bound > 0) order.emplace_back(bound, i);
  }
  std::sort(order.begin(), order.end(),
            [](const std::pair<double, size_t>& a,
               const std::pair<double, size_t>& b) {
              if (a.first != b.first) return a.first > b.first;
              return a.second < b.second;
            });
  return order;
}

// ---------------------------------------------------------------------------
// Serial strategies (num_threads == 1; also the oracle the parallel paths
// must match bit for bit).

void RunNaive(const relational::Database& db,
              const std::vector<CandidateNetwork>& cns, const TupleSets& ts,
              const SearchOptions& options, bool* deadline_hit,
              ResultTopK& top, SearchStats* stats, trace::Tracer* tracer) {
  for (size_t i = 0; i < cns.size(); ++i) {
    if (options.deadline.Expired()) {
      *deadline_hit = true;
      break;
    }
    // kNaive evaluates every CN regardless of thread count, so a per-CN
    // span keyed by the CN index merges to the same structure the serial
    // path emits (the other strategies prune and only get aggregates).
    trace::TraceSpan cn_span(tracer, "cn.eval");
    cn_span.SetSortKey(i);
    SimulateCnIo(options.simulated_cn_io_micros);
    ExecStats es;
    auto results = ExecuteCn(db, cns[i], ts, {}, SIZE_MAX, &es, nullptr,
                             &options.deadline);
    if (stats != nullptr) ++stats->cns_evaluated;
    AddExec(es, stats);
    cn_span.AddCounter("results", es.results);
    cn_span.AddCounter("join_lookups", es.join_lookups);
    for (const JoinedTree& jt : results) {
      top.Offer(MakeResult(i, cns[i], jt));
    }
  }
}

void RunSparse(const relational::Database& db,
               const std::vector<CandidateNetwork>& cns, const TupleSets& ts,
               const SearchOptions& options, bool* deadline_hit,
               ResultTopK& top, SearchStats* stats) {
  const auto order = SparseOrder(cns, ts);
  for (const auto& [bound, i] : order) {
    // Sound break: every remaining entry has (bound', i') ranked at or
    // below this probe, so a rejection here is a rejection of them all.
    if (top.WouldReject(BoundProbe(i, bound))) break;
    if (options.deadline.Expired()) {
      *deadline_hit = true;
      break;
    }
    SimulateCnIo(options.simulated_cn_io_micros);
    ExecStats es;
    auto results = ExecuteCn(db, cns[i], ts, {}, SIZE_MAX, &es, nullptr,
                             &options.deadline);
    if (stats != nullptr) ++stats->cns_evaluated;
    AddExec(es, stats);
    for (const JoinedTree& jt : results) {
      top.Offer(MakeResult(i, cns[i], jt));
    }
  }
}

// ---------------------------------------------------------------------------
// Global pipeline: shared admission machinery for the serial and batched
// parallel variants.

/// Per-CN pipeline state: the keyword-node lists and visited index
/// combinations.
struct CnState {
  std::vector<uint32_t> kw_nodes;
  std::vector<const std::vector<ScoredRow>*> lists;
  std::set<std::vector<size_t>> visited;
  /// True when the CN entered the combination queue. Dead CNs (some
  /// tuple-set list empty) may have pushed a few kw_nodes before the
  /// empty list was found; only admitted CNs count as evaluated.
  bool admitted = false;
};

struct QueueItem {
  double bound;
  size_t cn;
  std::vector<size_t> idx;
  bool operator<(const QueueItem& o) const { return bound < o.bound; }
};

using CombinationQueue = std::priority_queue<QueueItem>;

/// Builds the per-CN states and seeds the queue with each live CN's
/// best (all-zeros) combination.
std::vector<CnState> InitPipeline(const std::vector<CandidateNetwork>& cns,
                                  const TupleSets& ts,
                                  CombinationQueue& pq) {
  std::vector<CnState> states(cns.size());
  for (size_t i = 0; i < cns.size(); ++i) {
    CnState& st = states[i];
    bool dead = false;
    for (uint32_t n = 0; n < cns[i].nodes.size(); ++n) {
      if (cns[i].nodes[n].free()) continue;
      const auto& list = ts.Get(cns[i].nodes[n].table, cns[i].nodes[n].mask);
      if (list.empty()) {
        dead = true;
        break;
      }
      st.kw_nodes.push_back(n);
      st.lists.push_back(&list);
    }
    if (dead || st.kw_nodes.empty()) continue;
    std::vector<size_t> zero(st.kw_nodes.size(), 0);
    double bound = 0;
    for (size_t d = 0; d < st.lists.size(); ++d) {
      bound += (*st.lists[d])[0].score;
    }
    bound /= static_cast<double>(cns[i].size());
    st.visited.insert(zero);
    st.admitted = true;
    pq.push(QueueItem{bound, i, std::move(zero)});
  }
  return states;
}

/// Pushes `item`'s unvisited successors (advance one dimension each).
/// Expansion depends only on the tuple-set lists, never on verification
/// results, so the parallel variant can expand at admission time.
void ExpandSuccessors(const CandidateNetwork& cn, CnState& st,
                      const QueueItem& item, CombinationQueue& pq) {
  for (size_t d = 0; d < item.idx.size(); ++d) {
    if (item.idx[d] + 1 >= st.lists[d]->size()) continue;
    std::vector<size_t> next = item.idx;
    ++next[d];
    if (!st.visited.insert(next).second) continue;
    double bound = 0;
    for (size_t d2 = 0; d2 < next.size(); ++d2) {
      bound += (*st.lists[d2])[next[d2]].score;
    }
    bound /= static_cast<double>(cn.size());
    pq.push(QueueItem{bound, item.cn, std::move(next)});
  }
}

/// Verifies one combination: pin the keyword nodes, join the rest.
std::vector<JoinedTree> VerifyCombination(const relational::Database& db,
                                          const CandidateNetwork& cn,
                                          const CnState& st,
                                          const QueueItem& item,
                                          const TupleSets& ts,
                                          const Deadline& deadline,
                                          ExecStats* es) {
  std::vector<std::optional<relational::RowId>> fixed(cn.nodes.size());
  for (size_t d = 0; d < st.kw_nodes.size(); ++d) {  // bounded by keyword count; ExecuteCn below polls -- kwslint: allow(deadline-loop)
    fixed[st.kw_nodes[d]] = (*st.lists[d])[item.idx[d]].row;
  }
  return ExecuteCn(db, cn, ts, fixed, SIZE_MAX, es, nullptr, &deadline);
}

void CountAdmitted(const std::vector<CnState>& states, SearchStats* stats) {
  if (stats == nullptr) return;
  for (const CnState& st : states) {
    stats->cns_evaluated += st.admitted;
  }
}

void RunGlobalPipeline(const relational::Database& db,
                       const std::vector<CandidateNetwork>& cns,
                       const TupleSets& ts, const SearchOptions& options,
                       bool* deadline_hit, ResultTopK& top,
                       SearchStats* stats) {
  CombinationQueue pq;
  std::vector<CnState> states = InitPipeline(cns, ts, pq);

  DeadlineChecker checker(options.deadline, 16);
  while (!pq.empty()) {
    QueueItem item = pq.top();
    pq.pop();
    if (top.WouldReject(BoundProbe(item.cn, item.bound))) {
      // Everything still queued is bounded by item.bound. Strictly below
      // the worst retained score nothing can enter: stop for good. On a
      // score tie the rejection hinged on this CN's index, and an
      // equal-bound combination from a lower-index CN may still be
      // queued — drop this item (its successors are ranked at or below
      // the rejected probe) and keep scanning.
      if (item.bound < top.Worst().score) break;
      continue;
    }
    if (checker.Expired()) {
      *deadline_hit = true;
      break;
    }
    const CandidateNetwork& cn = cns[item.cn];
    CnState& st = states[item.cn];
    SimulateCnIo(options.simulated_cn_io_micros);
    ExecStats es;
    auto results =
        VerifyCombination(db, cn, st, item, ts, options.deadline, &es);
    if (stats != nullptr) ++stats->candidates_verified;
    AddExec(es, stats);
    for (const JoinedTree& jt : results) {
      top.Offer(MakeResult(item.cn, cn, jt));
    }
    ExpandSuccessors(cn, st, item, pq);
  }
  CountAdmitted(states, stats);
}

// ---------------------------------------------------------------------------
// Parallel strategies. Work lists are deterministically ordered and
// statically strided (worker w owns items i with i % num_workers == w);
// all pruning is sound under SearchResultOrder, so the merged top-k is
// bit-identical to the serial path for every thread count.

void RunNaiveParallel(const relational::Database& db,
                      const std::vector<CandidateNetwork>& cns,
                      const TupleSets& ts, const SearchOptions& options,
                      ThreadPool& pool, SharedTopK& top,
                      std::atomic<bool>& deadline_hit,
                      std::vector<SearchStats>& worker_stats,
                      std::vector<trace::Tracer>* worker_tracers) {
  const size_t stride = pool.size();
  pool.RunOnAll([&](size_t w) {
    SearchStats& ws = worker_stats[w];
    // Each worker records into its own tracer (Tracer is not thread-
    // safe); the caller merges them by CN-index sort key afterwards.
    trace::Tracer* const wt =
        worker_tracers != nullptr ? &(*worker_tracers)[w] : nullptr;
    for (size_t i = w; i < cns.size(); i += stride) {
      if (options.deadline.Expired()) {
        deadline_hit.store(true, std::memory_order_relaxed);
        break;
      }
      trace::TraceSpan cn_span(wt, "cn.eval");
      cn_span.SetSortKey(i);
      SimulateCnIo(options.simulated_cn_io_micros);
      ExecStats es;
      auto results = ExecuteCn(db, cns[i], ts, {}, SIZE_MAX, &es, nullptr,
                               &options.deadline);
      ++ws.cns_evaluated;
      AddExec(es, &ws);
      cn_span.AddCounter("results", es.results);
      cn_span.AddCounter("join_lookups", es.join_lookups);
      for (const JoinedTree& jt : results) {
        top.Offer(w, jt.score, MakeResult(i, cns[i], jt));
      }
    }
  });
}

void RunSparseParallel(const relational::Database& db,
                       const std::vector<CandidateNetwork>& cns,
                       const TupleSets& ts, const SearchOptions& options,
                       ThreadPool& pool, SharedTopK& top,
                       std::atomic<bool>& deadline_hit,
                       std::vector<SearchStats>& worker_stats) {
  const auto order = SparseOrder(cns, ts);
  const size_t stride = pool.size();
  pool.RunOnAll([&](size_t w) {
    SearchStats& ws = worker_stats[w];
    for (size_t p = w; p < order.size(); p += stride) {
      const auto& [bound, i] = order[p];
      // The shared threshold only rises and never rejects score ties,
      // so once this worker's (descending) bounds fall below it nothing
      // the worker still owns can reach the final top-k: stop.
      if (top.WouldReject(bound)) break;
      if (options.deadline.Expired()) {
        deadline_hit.store(true, std::memory_order_relaxed);
        break;
      }
      SimulateCnIo(options.simulated_cn_io_micros);
      ExecStats es;
      auto results = ExecuteCn(db, cns[i], ts, {}, SIZE_MAX, &es, nullptr,
                               &options.deadline);
      ++ws.cns_evaluated;
      AddExec(es, &ws);
      for (const JoinedTree& jt : results) {
        top.Offer(w, jt.score, MakeResult(i, cns[i], jt));
      }
    }
  });
}

void RunGlobalPipelineParallel(const relational::Database& db,
                               const std::vector<CandidateNetwork>& cns,
                               const TupleSets& ts,
                               const SearchOptions& options,
                               ThreadPool& pool, SharedTopK& top,
                               std::atomic<bool>& deadline_hit,
                               std::vector<SearchStats>& worker_stats,
                               SearchStats* stats) {
  CombinationQueue pq;
  std::vector<CnState> states = InitPipeline(cns, ts, pq);

  // Serial admission, parallel verification: combinations are admitted
  // (and their successors expanded) in waves of batch_size, then each
  // wave's ExecuteCn verifications fan out over the pool. Between waves
  // the collector is quiescent, so the admission decisions — and with
  // them candidates_verified — are deterministic for a fixed thread
  // count; admitting a wave at a time only ever verifies combinations
  // the serial path might also have verified before its threshold rose.
  DeadlineChecker checker(options.deadline, 16);
  const size_t stride = pool.size();
  const size_t batch_size = stride * 4;
  std::vector<QueueItem> batch;
  bool stop = false;
  while (!pq.empty() && !stop) {
    batch.clear();
    while (!pq.empty() && batch.size() < batch_size) {
      QueueItem item = pq.top();
      pq.pop();
      // The score-only threshold never rejects ties, so a rejection
      // bounds everything left in the queue strictly: stop for good.
      if (top.WouldReject(item.bound)) {
        stop = true;
        break;
      }
      if (checker.Expired()) {
        deadline_hit.store(true, std::memory_order_relaxed);
        stop = true;
        break;
      }
      ExpandSuccessors(cns[item.cn], states[item.cn], item, pq);
      batch.push_back(std::move(item));
    }
    if (batch.empty()) break;
    pool.RunOnAll([&](size_t w) {
      SearchStats& ws = worker_stats[w];
      for (size_t p = w; p < batch.size(); p += stride) {
        const QueueItem& item = batch[p];
        if (options.deadline.Expired()) {
          deadline_hit.store(true, std::memory_order_relaxed);
          break;
        }
        SimulateCnIo(options.simulated_cn_io_micros);
        ExecStats es;
        auto results = VerifyCombination(db, cns[item.cn], states[item.cn],
                                         item, ts, options.deadline, &es);
        ++ws.candidates_verified;
        AddExec(es, &ws);
        for (const JoinedTree& jt : results) {
          top.Offer(w, jt.score, MakeResult(item.cn, cns[item.cn], jt));
        }
      }
    });
  }
  CountAdmitted(states, stats);
}

}  // namespace

const char* StrategyToString(Strategy s) {
  switch (s) {
    case Strategy::kNaive:
      return "naive";
    case Strategy::kSparse:
      return "sparse";
    case Strategy::kGlobalPipeline:
      return "global-pipeline";
  }
  return "?";
}

std::vector<SearchResult> EvaluateCns(const relational::Database& db,
                                      const std::vector<CandidateNetwork>& cns,
                                      const TupleSets& ts,
                                      const SearchOptions& options,
                                      SearchStats* stats) {
  // Every exit path publishes a complete stats set: value-initialize the
  // caller's struct up front so early returns never leave stale values
  // from a previous search behind.
  if (stats != nullptr) *stats = SearchStats{};
  trace::Tracer* const tracer = options.tracer;
  // The trace mirrors the stats, so tracing needs them even when the
  // caller passed none.
  SearchStats local_stats;
  SearchStats* const st =
      stats != nullptr ? stats : (tracer != nullptr ? &local_stats : nullptr);
  if (st != nullptr) st->cns_enumerated = cns.size();

  const size_t num_threads = std::max<size_t>(1, options.num_threads);
  bool deadline_hit = false;
  std::vector<SearchResult> ranked;
  if (options.deadline.Expired()) {
    deadline_hit = true;
  } else if (num_threads == 1) {
    trace::TraceSpan exec_span(tracer, ExecSpanName(options.strategy));
    ResultTopK top(options.k);
    switch (options.strategy) {
      case Strategy::kNaive:
        RunNaive(db, cns, ts, options, &deadline_hit, top, st, tracer);
        break;
      case Strategy::kSparse:
        RunSparse(db, cns, ts, options, &deadline_hit, top, st);
        break;
      case Strategy::kGlobalPipeline:
        RunGlobalPipeline(db, cns, ts, options, &deadline_hit, top, st);
        break;
    }
    AnnotateExec(&exec_span, st);
    exec_span.Close();
    trace::TraceSpan topk_span(tracer, "cn.topk");
    ranked = top.TakeSorted();
    topk_span.AddCounter("results", ranked.size());
  } else {
    ThreadPool pool(num_threads);
    SharedTopK top(options.k, num_threads);
    std::atomic<bool> hit{false};
    std::vector<SearchStats> worker_stats(num_threads);
    trace::TraceSpan exec_span(tracer, ExecSpanName(options.strategy));
    // Per-worker tracers keep recording thread-local; only kNaive emits
    // per-CN spans (see RunNaive), so only it pays for the merge.
    std::vector<trace::Tracer> worker_tracers(
        tracer != nullptr && options.strategy == Strategy::kNaive
            ? num_threads
            : 0);
    switch (options.strategy) {
      case Strategy::kNaive:
        RunNaiveParallel(db, cns, ts, options, pool, top, hit, worker_stats,
                         worker_tracers.empty() ? nullptr : &worker_tracers);
        break;
      case Strategy::kSparse:
        RunSparseParallel(db, cns, ts, options, pool, top, hit,
                          worker_stats);
        break;
      case Strategy::kGlobalPipeline:
        RunGlobalPipelineParallel(db, cns, ts, options, pool, top, hit,
                                  worker_stats, st);
        break;
    }
    if (!worker_tracers.empty()) {
      // Deterministic fold: children order by CN-index sort key, so the
      // merged tree matches the serial span structure bit for bit.
      tracer->MergeWorkers(&worker_tracers);
    }
    if (st != nullptr) {
      for (const SearchStats& ws : worker_stats) {
        st->cns_evaluated += ws.cns_evaluated;
        st->results_materialized += ws.results_materialized;
        st->join_lookups += ws.join_lookups;
        st->candidates_verified += ws.candidates_verified;
      }
    }
    AnnotateExec(&exec_span, st);
    exec_span.Close();
    if (hit.load(std::memory_order_relaxed)) deadline_hit = true;
    trace::TraceSpan topk_span(tracer, "cn.topk");
    ranked = top.TakeSorted();
    topk_span.AddCounter("results", ranked.size());
  }
  if (st != nullptr) st->deadline_hit = deadline_hit;
  return ranked;
}

void EvaluateCnsSparseToSink(
    const relational::Database& db, const std::vector<CandidateNetwork>& cns,
    const TupleSets& ts, const SearchOptions& options,
    const std::function<bool(double)>& would_reject,
    const std::function<void(SearchResult)>& emit, SearchStats* stats) {
  if (stats != nullptr) {
    *stats = SearchStats{};
    stats->cns_enumerated = cns.size();
  }
  if (options.deadline.Expired()) {
    if (stats != nullptr) stats->deadline_hit = true;
    return;
  }
  // Same loop as RunSparse, with the caller's collector standing in for
  // the private top-k: the probe is the bare bound (the collector's
  // threshold is score-primary and tie-keeping, so no tie-break key is
  // needed), and results stream out instead of being ranked here.
  const auto order = SparseOrder(cns, ts);
  for (const auto& [bound, i] : order) {
    if (would_reject(bound)) break;
    if (options.deadline.Expired()) {
      if (stats != nullptr) stats->deadline_hit = true;
      break;
    }
    SimulateCnIo(options.simulated_cn_io_micros);
    ExecStats es;
    auto results = ExecuteCn(db, cns[i], ts, {}, SIZE_MAX, &es, nullptr,
                             &options.deadline);
    if (stats != nullptr) ++stats->cns_evaluated;
    AddExec(es, stats);
    for (const JoinedTree& jt : results) {
      emit(MakeResult(i, cns[i], jt));
    }
  }
}

std::vector<SearchResult> CnKeywordSearch::Search(
    const std::string& query, const SearchOptions& options,
    std::vector<CandidateNetwork>* cns_out, SearchStats* stats) const {
  if (stats != nullptr) *stats = SearchStats{};
  trace::Tracer* const tracer = options.tracer;
  // EvaluateCns reports deadline expiry through the stats, and the trace
  // mirrors them, so tracing needs a stats object even when the caller
  // passed none.
  SearchStats local_stats;
  SearchStats* const st =
      stats != nullptr ? stats : (tracer != nullptr ? &local_stats : nullptr);

  text::Tokenizer tokenizer;
  std::vector<std::string> keywords = tokenizer.Tokenize(query);
  if (keywords.size() > 16) keywords.resize(16);
  if (keywords.empty()) {
    if (cns_out != nullptr) cns_out->clear();
    return {};
  }

  trace::TraceSpan search_span(tracer, "cn.search");
  search_span.AddCounter("keywords", keywords.size());

  TupleSets ts(db_, keywords, options.tuple_cache, options.deadline, tracer);
  if (ts.truncated() || options.deadline.Expired()) {
    search_span.AddEvent("cn.deadline.hit");
    if (st != nullptr) st->deadline_hit = true;
    if (cns_out != nullptr) cns_out->clear();
    return {};
  }
  CnEnumOptions enum_opts;
  enum_opts.max_size = options.max_cn_size;
  enum_opts.deadline = options.deadline;
  enum_opts.tracer = tracer;
  std::vector<CandidateNetwork> cns = EnumerateCandidateNetworks(
      db_, ts.table_masks(), ts.full_mask(), enum_opts);

  std::vector<SearchResult> ranked = EvaluateCns(db_, cns, ts, options, st);
  if (st != nullptr && st->deadline_hit) {
    search_span.AddEvent("cn.deadline.hit");
  }
  if (cns_out != nullptr) *cns_out = std::move(cns);
  return ranked;
}

}  // namespace kws::cn

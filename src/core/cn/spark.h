#ifndef KWDB_CORE_CN_SPARK_H_
#define KWDB_CORE_CN_SPARK_H_

#include <string>
#include <vector>

#include "core/cn/candidate_network.h"
#include "core/cn/execute.h"
#include "core/cn/search.h"
#include "core/cn/tuple_sets.h"

namespace kws::cn {

/// SPARK's virtual-document score (Luo et al., SIGMOD 07; tutorial
/// slide 117): the joined tree is treated as ONE document, so term
/// frequencies are summed across its tuples *before* the sub-linear
/// 1+ln(.) dampening — which makes the score non-monotonic in per-tuple
/// scores — then a size penalty is applied:
///
///   score(T) = [ sum_k (1 + ln tf_T(k)) * idf_k  over matched k ]
///              / (1 + lambda * (|T| - 1))
double SparkScore(const CandidateNetwork& cn, const TupleSets& ts,
                  const std::vector<relational::RowId>& rows,
                  double lambda = 0.2);

/// Monotonic upper bound on SparkScore for a combination of keyword-node
/// tuples: since ln(1+a+b) <= ln(1+a) + ln(1+b), the sum of per-tuple
/// dampened scores dominates the virtual-document score. This is the
/// bound that lets the skyline-sweep and block-pipeline algorithms stop
/// early despite non-monotonicity.
double SparkUpperBound(const CandidateNetwork& cn, const TupleSets& ts,
                       const std::vector<uint32_t>& kw_nodes,
                       const std::vector<double>& node_scores,
                       double lambda = 0.2);

/// Evaluation algorithms for the non-monotonic score.
enum class SparkAlgorithm {
  /// Materialize everything, score, sort.
  kNaive,
  /// Dominance-ordered sweep over the sorted tuple lists (SPARK's
  /// skyline-sweeping algorithm).
  kSkylineSweep,
  /// Skyline sweep over fixed-size blocks: combinations inside one block
  /// pair are verified together, trading bound tightness for fewer queue
  /// operations (SPARK's block-pipeline algorithm).
  kBlockPipeline,
};

/// Stable display name for a SPARK algorithm variant.
const char* SparkAlgorithmToString(SparkAlgorithm a);

/// Tuning knobs for the SPARK top-k executors.
struct SparkOptions {
  size_t k = 10;
  size_t max_cn_size = 5;
  double lambda = 0.2;
  SparkAlgorithm algorithm = SparkAlgorithm::kSkylineSweep;
  /// Block edge length for kBlockPipeline.
  size_t block_size = 8;
};

/// Work counters reported by one SPARK execution.
struct SparkStats {
  size_t cns_enumerated = 0;
  uint64_t candidates_scored = 0;   // exact score computations
  uint64_t join_lookups = 0;
  uint64_t queue_pops = 0;
};

/// Top-k relational keyword search under the SPARK score.
class SparkSearch {
 public:
  explicit SparkSearch(const relational::Database& db) : db_(db) {}

  /// Runs SPARK-ranked keyword search; top `k` results in score order.
  std::vector<SearchResult> Search(const std::string& query,
                                   const SparkOptions& options,
                                   std::vector<CandidateNetwork>* cns_out,
                                   SparkStats* stats = nullptr) const;

 private:
  const relational::Database& db_;
};

}  // namespace kws::cn

#endif  // KWDB_CORE_CN_SPARK_H_

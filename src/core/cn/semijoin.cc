#include "core/cn/semijoin.h"

#include <algorithm>
#include <unordered_set>

namespace kws::cn {

namespace {

using relational::RowId;
using relational::Value;
using relational::ValueHash;

/// Rooted orientation of the CN tree: parent[] and a BFS order.
struct Orientation {
  std::vector<int32_t> parent_edge;  // edge index to parent, -1 at root
  std::vector<uint32_t> order;       // BFS order from the root
};

Orientation Orient(const CandidateNetwork& cn) {
  Orientation o;
  o.parent_edge.assign(cn.nodes.size(), -1);
  std::vector<bool> visited(cn.nodes.size(), false);
  o.order.push_back(0);
  visited[0] = true;
  for (size_t i = 0; i < o.order.size(); ++i) {
    const uint32_t u = o.order[i];
    for (size_t e = 0; e < cn.edges.size(); ++e) {
      const CnEdge& edge = cn.edges[e];
      uint32_t other;
      if (edge.from == u) {
        other = edge.to;
      } else if (edge.to == u) {
        other = edge.from;
      } else {
        continue;
      }
      if (visited[other]) continue;
      visited[other] = true;
      o.parent_edge[other] = static_cast<int32_t>(e);
      o.order.push_back(other);
    }
  }
  return o;
}

/// Keeps the rows of `keep_node` that join at least one row of
/// `other_rows` through `edge`.
void SemiJoinFilter(const relational::Database& db, const CnEdge& edge,
                    uint32_t keep_node, const CandidateNetwork& cn,
                    std::vector<RowId>& keep_rows,
                    const std::vector<RowId>& other_rows,
                    SemiJoinStats* stats) {
  if (stats != nullptr) ++stats->semijoin_passes;
  const relational::ForeignKey& fk = db.foreign_keys()[edge.fk];
  const bool keep_is_referencing =
      (keep_node == edge.from) == edge.forward;
  const relational::TableId keep_table = cn.nodes[keep_node].table;
  const relational::TableId other_table =
      cn.nodes[keep_node == edge.from ? edge.to : edge.from].table;
  // Values visible from the other side.
  std::unordered_set<Value, ValueHash> other_values;
  for (RowId r : other_rows) {
    const Value& v = keep_is_referencing
                         ? db.table(other_table).cell(r, fk.ref_column)
                         : db.table(other_table).cell(r, fk.column);
    if (!v.is_null()) other_values.insert(v);
  }
  std::vector<RowId> kept;
  kept.reserve(keep_rows.size());
  for (RowId r : keep_rows) {
    const Value& v = keep_is_referencing
                         ? db.table(keep_table).cell(r, fk.column)
                         : db.table(keep_table).cell(r, fk.ref_column);
    if (!v.is_null() && other_values.count(v) > 0) kept.push_back(r);
  }
  keep_rows.swap(kept);
}

}  // namespace

std::vector<std::vector<RowId>> SemiJoinReduce(
    const relational::Database& db, const CandidateNetwork& cn,
    const TupleSets& ts, SemiJoinStats* stats) {
  std::vector<std::vector<RowId>> sets(cn.nodes.size());
  for (uint32_t i = 0; i < cn.nodes.size(); ++i) {
    const CnNode& node = cn.nodes[i];
    if (node.free()) {
      for (RowId r = 0; r < db.table(node.table).num_rows(); ++r) {
        if (ts.Matches(node.table, r, 0)) sets[i].push_back(r);
      }
    } else {
      for (const ScoredRow& sr : ts.Get(node.table, node.mask)) {
        sets[i].push_back(sr.row);
      }
      std::sort(sets[i].begin(), sets[i].end());
    }
    if (stats != nullptr) stats->rows_before += sets[i].size();
  }
  const Orientation o = Orient(cn);
  // Leaf-to-root pass: each parent keeps rows joining every child.
  for (size_t i = o.order.size(); i-- > 1;) {
    const uint32_t child = o.order[i];
    const CnEdge& edge = cn.edges[o.parent_edge[child]];
    const uint32_t parent = (edge.from == child) ? edge.to : edge.from;
    SemiJoinFilter(db, edge, parent, cn, sets[parent], sets[child], stats);
  }
  // Root-to-leaf pass: each child keeps rows joining its (now reduced)
  // parent.
  for (size_t i = 1; i < o.order.size(); ++i) {
    const uint32_t child = o.order[i];
    const CnEdge& edge = cn.edges[o.parent_edge[child]];
    const uint32_t parent = (edge.from == child) ? edge.to : edge.from;
    SemiJoinFilter(db, edge, child, cn, sets[child], sets[parent], stats);
  }
  if (stats != nullptr) {
    for (const auto& s : sets) stats->rows_after += s.size();
  }
  return sets;
}

std::vector<JoinedTree> ExecuteCnSemiJoin(const relational::Database& db,
                                          const CandidateNetwork& cn,
                                          const TupleSets& ts,
                                          SemiJoinStats* sj_stats,
                                          ExecStats* exec_stats) {
  std::vector<JoinedTree> out;
  if (cn.nodes.empty()) return out;
  const std::vector<std::vector<RowId>> sets =
      SemiJoinReduce(db, cn, ts, sj_stats);
  for (const auto& s : sets) {
    if (s.empty()) return out;  // no complete tree exists
  }
  const Orientation o = Orient(cn);
  auto admitted = [&](uint32_t node, RowId r) {
    return std::binary_search(sets[node].begin(), sets[node].end(), r);
  };
  std::vector<RowId> assignment(cn.nodes.size(), 0);
  auto expand = [&](auto&& self, size_t step) -> void {
    if (step == o.order.size()) {
      JoinedTree jt;
      jt.rows = assignment;
      double sum = 0;
      for (uint32_t i = 0; i < cn.nodes.size(); ++i) {
        if (!cn.nodes[i].free()) {
          sum += ts.RowScore(cn.nodes[i].table, assignment[i]);
        }
      }
      jt.score = sum / static_cast<double>(cn.nodes.size());
      out.push_back(std::move(jt));
      if (exec_stats != nullptr) ++exec_stats->results;
      return;
    }
    const uint32_t node = o.order[step];
    const CnEdge& edge = cn.edges[o.parent_edge[node]];
    const uint32_t parent = (edge.from == node) ? edge.to : edge.from;
    const bool from_referencing = (parent == edge.from) == edge.forward;
    if (exec_stats != nullptr) ++exec_stats->join_lookups;
    for (const relational::TupleId& cand : db.JoinedRows(
             edge.fk,
             relational::TupleId{cn.nodes[parent].table, assignment[parent]},
             from_referencing)) {
      if (!admitted(node, cand.row)) continue;
      assignment[node] = cand.row;
      if (exec_stats != nullptr) ++exec_stats->partial_states;
      self(self, step + 1);
    }
  };
  for (RowId r : sets[0]) {
    assignment[0] = r;
    if (exec_stats != nullptr) ++exec_stats->partial_states;
    expand(expand, 1);
  }
  return out;
}

}  // namespace kws::cn

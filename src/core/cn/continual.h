#ifndef KWDB_CORE_CN_CONTINUAL_H_
#define KWDB_CORE_CN_CONTINUAL_H_

#include <memory>
#include <string>
#include <vector>

#include "common/deadline.h"
#include "common/status.h"
#include "core/cn/candidate_network.h"
#include "core/cn/search.h"
#include "core/cn/stream.h"
#include "core/cn/tuple_sets.h"
#include "relational/database.h"

namespace kws::cn {

/// Tuning knobs for a registered continual query.
struct ContinualOptions {
  /// Answer size of `TopK()` (the full result set is retained
  /// internally; see ContinualQuery).
  size_t k = 10;
  /// CN enumeration bound (DISCOVER's Tmax).
  size_t max_cn_size = 5;
  /// Worker threads probing one insert batch (static striding over the
  /// batch; results are bit-identical for every value). 1 runs serial.
  size_t num_threads = 1;
};

/// Counters for the E24 benchmark and the update oracle tests.
struct ContinualStats {
  uint64_t batches = 0;
  uint64_t inserts = 0;
  uint64_t probes = 0;
  uint64_t join_lookups = 0;
  /// New joined trees discovered by probing (after batch-level dedup).
  uint64_t trees_added = 0;
  /// Existing trees rescored under the batch's refreshed IDFs.
  uint64_t rescored = 0;
  /// Batches that widened a table's keyword mask and forced CN
  /// re-enumeration + full re-evaluation instead of delta propagation.
  uint64_t full_rebuilds = 0;
};

/// A standing top-k keyword query under live inserts — the continual
/// top-k layer of "Efficient Continual Top-k Keyword Search in Relational
/// Databases" grafted onto the DISCOVER pipeline: register once, then
/// propagate each applied insert batch as a delta instead of recomputing
/// the query.
///
/// Mechanics per batch (`OnInsertBatch`): the evaluator's tuple sets
/// absorb the batch (`TupleSets::ApplyInserts`), every new tuple is
/// marked arrived and probed with the `StreamEvaluator` probe — fixing
/// the new tuple at each CN node position it can occupy finds exactly the
/// joined trees that contain at least one new tuple — and the previously
/// stored trees are rescored under the refreshed IDFs (an insert moves
/// the corpus totals, so every score drifts even when no new tree
/// appears). If the batch widens some table's keyword mask the CN
/// workload itself changes, and the query falls back to re-enumeration
/// plus full re-evaluation for that batch.
///
/// The full result set (not just k) is retained: IDF drift can promote a
/// result from rank k+1 to the top-k at any later batch, so a pruned
/// store could not stay bit-identical to recomputation. `TopK()` answers
/// are bit-identical to a from-scratch search after every batch, for
/// every seed x batch size x thread count (tests/update_test.cc).
class ContinualQuery {
 public:
  /// Registers the query: enumerates its CNs, builds tuple sets and
  /// fully evaluates the current database. `keywords` must already be
  /// normalized tokens (the serve layer normalizes). The database must
  /// outlive the query; writers must apply inserts before calling
  /// OnInsertBatch and must not mutate the database concurrently with
  /// any method of this class.
  ContinualQuery(const relational::Database& db,
                 std::vector<std::string> keywords,
                 const ContinualOptions& options = {});

  /// Propagates one applied insert batch (`WriteReport::inserted`) into
  /// the standing results. A finite `deadline` adds cancellation points
  /// through tuple-set absorption, probing and re-evaluation; on expiry
  /// the standing state is incomplete, the query turns `stale()` and
  /// every later call fails with kFailedPrecondition until `Rebuild()`.
  Status OnInsertBatch(const std::vector<relational::TupleId>& inserted,
                       const Deadline& deadline = {},
                       ContinualStats* stats = nullptr);

  /// The current top-k under `SearchResultOrder` (score desc, cn_index
  /// asc, tuples asc) — the same ranked list a fresh search over the
  /// current database would return.
  std::vector<SearchResult> TopK() const;

  /// Every standing result, ranked. `SearchResult::cn_index` refers into
  /// `cns()`.
  const std::vector<SearchResult>& results() const { return results_; }

  /// The current CN workload (re-enumerated when a batch widens a
  /// table's keyword mask).
  const std::vector<CandidateNetwork>& cns() const { return eval_->cns(); }

  /// The query's live tuple sets (exposed for the oracle tests).
  const TupleSets& tuple_sets() const { return eval_->tuple_sets(); }

  /// True after a deadline cut a propagation short; the standing results
  /// are then untrusted until `Rebuild()` succeeds.
  bool stale() const { return stale_; }

  /// Recovers from a stale state (or refreshes unconditionally) by
  /// re-enumerating and re-evaluating from the current database.
  Status Rebuild(const Deadline& deadline = {});

 private:
  /// Re-enumerates CNs from the current table masks, replaces the
  /// evaluator and fully re-evaluates every CN. `ts` is the (already
  /// up-to-date) tuple sets to adopt.
  Status RebuildWorkload(TupleSets ts, const Deadline& deadline);

  /// Evaluates every CN of the current workload from scratch into
  /// `results_` (sorted).
  Status EvaluateAll(const Deadline& deadline);

  /// Recomputes every stored result's score from the current tuple sets
  /// with the exact ExecuteCn arithmetic (sum of non-free node scores in
  /// node order, divided by CN size).
  void RescoreAll();

  const relational::Database& db_;
  std::vector<std::string> keywords_;
  ContinualOptions options_;
  std::unique_ptr<StreamEvaluator> eval_;
  /// All standing results, sorted by SearchResultOrder.
  std::vector<SearchResult> results_;
  bool stale_ = false;
};

}  // namespace kws::cn

#endif  // KWDB_CORE_CN_CONTINUAL_H_

#include "core/cn/sharing.h"

#include <map>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>

#include "relational/database.h"

namespace kws::cn {

namespace {

/// The connected component of `start` in `cn` with edge `skip` removed,
/// extracted as a standalone CandidateNetwork (canonicalizable).
CandidateNetwork Component(const CandidateNetwork& cn, uint32_t start,
                           size_t skip) {
  std::map<uint32_t, uint32_t> remap;
  CandidateNetwork part;
  std::vector<uint32_t> stack = {start};
  remap.emplace(start, 0);
  part.nodes.push_back(cn.nodes[start]);
  while (!stack.empty()) {
    const uint32_t u = stack.back();
    stack.pop_back();
    for (size_t e = 0; e < cn.edges.size(); ++e) {
      if (e == skip) continue;
      const CnEdge& edge = cn.edges[e];
      uint32_t other;
      if (edge.from == u) {
        other = edge.to;
      } else if (edge.to == u) {
        other = edge.from;
      } else {
        continue;
      }
      auto [it, inserted] =
          remap.emplace(other, static_cast<uint32_t>(part.nodes.size()));
      if (inserted) {
        part.nodes.push_back(cn.nodes[other]);
        stack.push_back(other);
      }
      // Add the edge once, when visiting its lower-remapped endpoint
      // first; dedup via a set below would be overkill — instead add it
      // when we traverse it from u and `other` was just inserted, or when
      // both ends known and u == edge.from (one canonical direction).
      if (inserted) {
        CnEdge mapped = edge;
        mapped.from = remap.at(edge.from);
        mapped.to = remap.at(edge.to);
        part.edges.push_back(mapped);
      }
    }
  }
  return part;
}

}  // namespace

SharingStats AnalyzeSharing(const std::vector<CandidateNetwork>& cns) {
  SharingStats stats;
  stats.total_cns = cns.size();
  std::set<std::string> edge_keys;
  std::set<std::string> subtree_keys;
  // Occurrence counts of split-parts, to detect cross-CN composability.
  std::map<std::string, std::set<size_t>> part_owners;

  for (size_t i = 0; i < cns.size(); ++i) {
    const CandidateNetwork& cn = cns[i];
    stats.total_join_edges += cn.edges.size();
    for (size_t e = 0; e < cn.edges.size(); ++e) {
      const CnEdge& edge = cn.edges[e];
      CandidateNetwork single;
      single.nodes = {cn.nodes[edge.from], cn.nodes[edge.to]};
      single.edges = {CnEdge{0, 1, edge.fk, edge.forward}};
      edge_keys.insert(single.CanonicalKey());
      // Split parts.
      for (uint32_t side : {edge.from, edge.to}) {
        const CandidateNetwork part = Component(cn, side, e);
        const std::string key = part.CanonicalKey();
        subtree_keys.insert(key);
        part_owners[key].insert(i);
        ++stats.total_subtrees;
      }
    }
  }
  stats.distinct_join_edges = edge_keys.size();
  stats.distinct_subtrees = subtree_keys.size();

  // Composability: some split of the CN has both halves shared with
  // other CNs' splits.
  for (size_t i = 0; i < cns.size(); ++i) {
    const CandidateNetwork& cn = cns[i];
    bool composable = false;
    for (size_t e = 0; e < cn.edges.size() && !composable; ++e) {
      const CandidateNetwork a = Component(cn, cn.edges[e].from, e);
      const CandidateNetwork b = Component(cn, cn.edges[e].to, e);
      auto shared_elsewhere = [&](const CandidateNetwork& part) {
        auto it = part_owners.find(part.CanonicalKey());
        if (it == part_owners.end()) return false;
        for (size_t owner : it->second) {
          if (owner != i) return true;
        }
        return false;
      };
      composable = shared_elsewhere(a) && shared_elsewhere(b);
    }
    stats.composable_cns += composable;
  }
  return stats;
}

std::vector<uint64_t> SharedCountAll(const relational::Database& db,
                                     const std::vector<CandidateNetwork>& cns,
                                     const TupleSets& ts, bool share,
                                     SharedExecStats* stats) {
  // Memo: rooted sub-expression key -> per-row result counts.
  using CountTable = std::unordered_map<relational::RowId, uint64_t>;
  std::unordered_map<std::string, std::shared_ptr<CountTable>> memo;

  std::vector<uint64_t> out;
  for (const CandidateNetwork& cn : cns) {
    // Adjacency (node -> (neighbor, edge index)).
    std::vector<std::vector<std::pair<uint32_t, size_t>>> adj(
        cn.nodes.size());
    for (size_t e = 0; e < cn.edges.size(); ++e) {
      adj[cn.edges[e].from].push_back({cn.edges[e].to, e});
      adj[cn.edges[e].to].push_back({cn.edges[e].from, e});
    }
    // count(node, parent): per-row counts of the subtree away from parent.
    auto count = [&](auto&& self, uint32_t node,
                     uint32_t parent) -> std::shared_ptr<CountTable> {
      const std::string key = cn.RootedKey(node, parent);
      if (share) {
        auto it = memo.find(key);
        if (it != memo.end()) {
          if (stats != nullptr) ++stats->memo_hits;
          return it->second;
        }
      }
      if (stats != nullptr) ++stats->memo_misses;
      // Child tables first.
      std::vector<std::shared_ptr<CountTable>> child_tables;
      std::vector<size_t> child_edges;
      std::vector<uint32_t> child_nodes;
      for (const auto& [other, e] : adj[node]) {
        if (other == parent) continue;
        child_tables.push_back(self(self, other, node));
        child_edges.push_back(e);
        child_nodes.push_back(other);
      }
      auto table = std::make_shared<CountTable>();
      const CnNode& n = cn.nodes[node];
      // Candidate rows of this node.
      std::vector<relational::RowId> rows;
      if (n.free()) {
        for (relational::RowId r = 0; r < db.table(n.table).num_rows();
             ++r) {
          if (ts.Matches(n.table, r, 0)) rows.push_back(r);
        }
      } else {
        for (const ScoredRow& sr : ts.Get(n.table, n.mask)) {
          rows.push_back(sr.row);
        }
      }
      for (relational::RowId r : rows) {
        uint64_t c = 1;
        for (size_t i = 0; i < child_edges.size() && c > 0; ++i) {
          const CnEdge& edge = cn.edges[child_edges[i]];
          const bool from_referencing = (node == edge.from) == edge.forward;
          if (stats != nullptr) ++stats->join_lookups;
          uint64_t sum = 0;
          for (const relational::TupleId& t : db.JoinedRows(
                   edge.fk, relational::TupleId{n.table, r},
                   from_referencing)) {
            auto it = child_tables[i]->find(t.row);
            if (it != child_tables[i]->end()) sum += it->second;
          }
          c *= sum;
        }
        if (c > 0) (*table)[r] = c;
      }
      if (share) memo.emplace(key, table);
      return table;
    };
    const auto root_table = count(count, 0, UINT32_MAX);
    uint64_t total = 0;
    for (const auto& [row, c] : *root_table) total += c;
    out.push_back(total);
  }
  return out;
}

}  // namespace kws::cn
